// Package repro is a from-scratch Go reproduction of "Perfectly-Secure
// Synchronous MPC with Asynchronous Fallback Guarantees" (Appan,
// Chandramouli, Choudhury; PODC 2022, arXiv:2201.12194).
//
// The public API lives in the mpc, circuit, field and poly packages;
// the protocol stack (Acast, phase-king SBA, ABA, ΠBC, ΠBA, ΠWPS,
// ΠVSS, ΠACS, the Beaver-triple preprocessing and ΠCirEval) lives
// under internal/. See README.md for the architecture overview,
// DESIGN.md for the system inventory and experiment index, and
// EXPERIMENTS.md for the paper-vs-measured record. The root-level
// benchmarks in bench_test.go regenerate every experiment row.
package repro
