// Package circuit provides the arithmetic-circuit representation
// evaluated by the MPC engine: circuits over GF(2^61-1) with one input
// wire per party, linear gates (addition, subtraction, constant
// addition/multiplication) evaluated locally by the protocol, and
// multiplication gates evaluated with Beaver triples.
//
// Circuits are built with a Builder, are immutable once built, and
// carry the metadata the paper's cost model uses: the multiplication
// count cM and the multiplicative depth DM.
package circuit

import (
	"fmt"

	"repro/field"
)

// Op is a gate operation.
type Op uint8

// Gate operations.
const (
	// OpInput reads party P_{Arg}'s private input.
	OpInput Op = iota + 1
	// OpConst produces the constant Const.
	OpConst
	// OpAdd produces A + B.
	OpAdd
	// OpSub produces A - B.
	OpSub
	// OpMul produces A · B (consumes one Beaver triple).
	OpMul
	// OpAddConst produces A + Const.
	OpAddConst
	// OpMulConst produces A · Const.
	OpMulConst
)

// Wire identifies a gate's output value.
type Wire int

// Gate is one circuit node.
type Gate struct {
	Op    Op
	A, B  Wire
	Arg   int // party index for OpInput
	Const field.Element
	// MulIndex numbers multiplication gates 0..cM-1 (triple assignment).
	MulIndex int
	// Depth is the multiplicative depth of the gate's output.
	Depth int
}

// Circuit is an immutable arithmetic circuit.
type Circuit struct {
	N       int // number of parties / input slots
	Gates   []Gate
	Outputs []Wire
	// MulCount is cM; MulDepth is DM.
	MulCount int
	MulDepth int
	// MulLayers groups the multiplication gates by multiplicative
	// depth: MulLayers[d] lists, in ascending gate order, the wires of
	// the OpMul gates at Depth d+1 (layers 1..DM). The online phase
	// batches each layer's Beaver reconstructions into one instance, so
	// the layer structure is part of the circuit's cost model.
	MulLayers [][]Wire
	// MulGates maps MulIndex -> gate wire (triple assignment order).
	MulGates []Wire
}

// Layers returns the per-depth multiplication-gate lists, deriving
// them on the fly for hand-assembled circuits that bypassed Build.
func (c *Circuit) Layers() [][]Wire {
	if c.MulLayers != nil || c.MulCount == 0 {
		return c.MulLayers
	}
	return mulLayers(c.Gates, c.MulDepth)
}

// MulGate returns the wire of the multiplication gate with the given
// MulIndex, deriving the index for hand-assembled circuits.
func (c *Circuit) MulGate(k int) Wire {
	if c.MulGates != nil {
		return c.MulGates[k]
	}
	for i, g := range c.Gates {
		if g.Op == OpMul && g.MulIndex == k {
			return Wire(i)
		}
	}
	panic(fmt.Sprintf("circuit: no multiplication gate with MulIndex %d", k))
}

// mulLayers computes the per-depth multiplication lists (layer d at
// index d-1) for gates of multiplicative depth dm.
func mulLayers(gates []Gate, dm int) [][]Wire {
	if dm == 0 {
		return nil
	}
	layers := make([][]Wire, dm)
	for i, g := range gates {
		if g.Op == OpMul {
			layers[g.Depth-1] = append(layers[g.Depth-1], Wire(i))
		}
	}
	return layers
}

// Builder constructs circuits.
type Builder struct {
	n     int
	gates []Gate
	outs  []Wire
	muls  int
}

// NewBuilder returns a builder for an n-party circuit.
func NewBuilder(n int) *Builder {
	if n < 1 {
		panic("circuit: need at least one party")
	}
	return &Builder{n: n}
}

func (b *Builder) push(g Gate) Wire {
	b.gates = append(b.gates, g)
	return Wire(len(b.gates) - 1)
}

func (b *Builder) wireCheck(w Wire) {
	if int(w) < 0 || int(w) >= len(b.gates) {
		panic(fmt.Sprintf("circuit: wire %d out of range", w))
	}
}

func (b *Builder) depth(w Wire) int { return b.gates[w].Depth }

// Input adds party's private input (1-based party index).
func (b *Builder) Input(party int) Wire {
	if party < 1 || party > b.n {
		panic(fmt.Sprintf("circuit: party %d out of range [1,%d]", party, b.n))
	}
	return b.push(Gate{Op: OpInput, Arg: party})
}

// Const adds a public constant.
func (b *Builder) Const(c field.Element) Wire {
	return b.push(Gate{Op: OpConst, Const: c})
}

// Add adds x + y.
func (b *Builder) Add(x, y Wire) Wire {
	b.wireCheck(x)
	b.wireCheck(y)
	return b.push(Gate{Op: OpAdd, A: x, B: y, Depth: max(b.depth(x), b.depth(y))})
}

// Sub adds x - y.
func (b *Builder) Sub(x, y Wire) Wire {
	b.wireCheck(x)
	b.wireCheck(y)
	return b.push(Gate{Op: OpSub, A: x, B: y, Depth: max(b.depth(x), b.depth(y))})
}

// Mul adds x · y, consuming one Beaver triple.
func (b *Builder) Mul(x, y Wire) Wire {
	b.wireCheck(x)
	b.wireCheck(y)
	g := Gate{Op: OpMul, A: x, B: y, MulIndex: b.muls, Depth: max(b.depth(x), b.depth(y)) + 1}
	b.muls++
	return b.push(g)
}

// AddConst adds x + c.
func (b *Builder) AddConst(x Wire, c field.Element) Wire {
	b.wireCheck(x)
	return b.push(Gate{Op: OpAddConst, A: x, Const: c, Depth: b.depth(x)})
}

// MulConst adds x · c.
func (b *Builder) MulConst(x Wire, c field.Element) Wire {
	b.wireCheck(x)
	return b.push(Gate{Op: OpMulConst, A: x, Const: c, Depth: b.depth(x)})
}

// Output marks w as a circuit output.
func (b *Builder) Output(w Wire) {
	b.wireCheck(w)
	b.outs = append(b.outs, w)
}

// Build finalises the circuit.
func (b *Builder) Build() *Circuit {
	if len(b.outs) == 0 {
		panic("circuit: no outputs marked")
	}
	dm := 0
	for _, g := range b.gates {
		if g.Depth > dm {
			dm = g.Depth
		}
	}
	gates := make([]Gate, len(b.gates))
	copy(gates, b.gates)
	outs := make([]Wire, len(b.outs))
	copy(outs, b.outs)
	mulGates := make([]Wire, b.muls)
	for i, g := range gates {
		if g.Op == OpMul {
			mulGates[g.MulIndex] = Wire(i)
		}
	}
	return &Circuit{
		N:         b.n,
		Gates:     gates,
		Outputs:   outs,
		MulCount:  b.muls,
		MulDepth:  dm,
		MulLayers: mulLayers(gates, dm),
		MulGates:  mulGates,
	}
}

// Eval evaluates the circuit in the clear on the given inputs
// (inputs[i-1] is party i's input); the reference semantics for tests
// and for the MPC engine's correctness claims.
func (c *Circuit) Eval(inputs []field.Element) ([]field.Element, error) {
	if len(inputs) != c.N {
		return nil, fmt.Errorf("circuit: got %d inputs, want %d", len(inputs), c.N)
	}
	vals := make([]field.Element, len(c.Gates))
	for i, g := range c.Gates {
		switch g.Op {
		case OpInput:
			vals[i] = inputs[g.Arg-1]
		case OpConst:
			vals[i] = g.Const
		case OpAdd:
			vals[i] = vals[g.A].Add(vals[g.B])
		case OpSub:
			vals[i] = vals[g.A].Sub(vals[g.B])
		case OpMul:
			vals[i] = vals[g.A].Mul(vals[g.B])
		case OpAddConst:
			vals[i] = vals[g.A].Add(g.Const)
		case OpMulConst:
			vals[i] = vals[g.A].Mul(g.Const)
		default:
			return nil, fmt.Errorf("circuit: unknown op %d", g.Op)
		}
	}
	out := make([]field.Element, len(c.Outputs))
	for i, w := range c.Outputs {
		out[i] = vals[w]
	}
	return out, nil
}
