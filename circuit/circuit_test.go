package circuit

import (
	"math/rand/v2"
	"testing"

	"repro/field"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 17)) }

func randInputs(r *rand.Rand, n int) []field.Element {
	out := make([]field.Element, n)
	for i := range out {
		out[i] = field.Random(r)
	}
	return out
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(3)
	x := b.Input(1)
	y := b.Input(2)
	z := b.Input(3)
	s := b.Add(x, y)
	p := b.Mul(s, z)
	q := b.MulConst(b.AddConst(p, field.New(5)), field.New(2))
	b.Output(q)
	c := b.Build()
	if c.MulCount != 1 || c.MulDepth != 1 {
		t.Fatalf("cM=%d DM=%d, want 1, 1", c.MulCount, c.MulDepth)
	}
	got, err := c.Eval([]field.Element{field.New(3), field.New(4), field.New(10)})
	if err != nil {
		t.Fatal(err)
	}
	// ((3+4)*10 + 5) * 2 = 150
	if got[0] != field.New(150) {
		t.Fatalf("Eval = %v, want 150", got[0])
	}
}

func TestEvalWrongInputCount(t *testing.T) {
	c := Sum(4)
	if _, err := c.Eval(make([]field.Element, 3)); err == nil {
		t.Fatal("wrong input count accepted")
	}
}

func TestSubAndConst(t *testing.T) {
	b := NewBuilder(2)
	d := b.Sub(b.Input(1), b.Input(2))
	b.Output(d)
	b.Output(b.Const(field.New(42)))
	c := b.Build()
	got, err := c.Eval([]field.Element{field.New(10), field.New(3)})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != field.New(7) || got[1] != field.New(42) {
		t.Fatalf("Eval = %v", got)
	}
}

func TestSumGadget(t *testing.T) {
	r := rng(1)
	c := Sum(6)
	if c.MulCount != 0 || c.MulDepth != 0 {
		t.Fatalf("Sum should be linear, got cM=%d DM=%d", c.MulCount, c.MulDepth)
	}
	in := randInputs(r, 6)
	got, err := c.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != field.Sum(in) {
		t.Fatal("Sum mismatch")
	}
}

func TestProductGadget(t *testing.T) {
	r := rng(2)
	for _, n := range []int{2, 3, 5, 8} {
		c := Product(n)
		if c.MulCount != n-1 {
			t.Fatalf("Product(%d) cM = %d, want %d", n, c.MulCount, n-1)
		}
		in := randInputs(r, n)
		want := field.One
		for _, x := range in {
			want = want.Mul(x)
		}
		got, err := c.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != want {
			t.Fatalf("Product(%d) mismatch", n)
		}
	}
	// Balanced tree: depth log2.
	if Product(8).MulDepth != 3 {
		t.Fatalf("Product(8) DM = %d, want 3", Product(8).MulDepth)
	}
}

func TestDotProductGadget(t *testing.T) {
	r := rng(3)
	k := 4
	c := DotProduct(k)
	if c.N != 8 || c.MulCount != k || c.MulDepth != 1 {
		t.Fatalf("DotProduct shape wrong: n=%d cM=%d DM=%d", c.N, c.MulCount, c.MulDepth)
	}
	in := randInputs(r, 8)
	got, err := c.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != field.Dot(in[:k], in[k:]) {
		t.Fatal("DotProduct mismatch")
	}
}

func TestSumAndVariancePieces(t *testing.T) {
	r := rng(4)
	n := 5
	c := SumAndVariancePieces(n)
	in := randInputs(r, n)
	got, err := c.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumSq field.Element
	for _, x := range in {
		sum = sum.Add(x)
		sumSq = sumSq.Add(x.Mul(x))
	}
	if got[0] != sum || got[1] != sumSq {
		t.Fatal("statistics pieces mismatch")
	}
}

func TestSetMembershipGadget(t *testing.T) {
	n := 6
	c := SetMembership(n)
	// e = 7, set = {3, 9, 7, 1, 4} -> member -> 0.
	in := []field.Element{field.New(7), field.New(3), field.New(9), field.New(7), field.New(1), field.New(4)}
	got, err := c.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].IsZero() {
		t.Fatalf("member should evaluate to 0, got %v", got[0])
	}
	in[0] = field.New(8) // not a member
	got, err = c.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].IsZero() {
		t.Fatal("non-member evaluated to 0")
	}
}

func TestPolyEvalGadget(t *testing.T) {
	// p(x) = 1 + 2x + 3x²; x=5 -> 1+10+75=86; plus x_2 + x_3.
	coeffs := []field.Element{field.New(1), field.New(2), field.New(3)}
	c := PolyEval(3, coeffs)
	got, err := c.Eval([]field.Element{field.New(5), field.New(100), field.New(1000)})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != field.New(86+100+1000) {
		t.Fatalf("PolyEval = %v, want 1186", got[0])
	}
	if c.MulCount != 2 || c.MulDepth != 2 {
		t.Fatalf("PolyEval shape: cM=%d DM=%d", c.MulCount, c.MulDepth)
	}
}

func TestMatMul2x2(t *testing.T) {
	c := MatMul2x2()
	if c.N != 8 || c.MulCount != 8 || c.MulDepth != 1 || len(c.Outputs) != 4 {
		t.Fatalf("MatMul shape: n=%d cM=%d DM=%d outs=%d", c.N, c.MulCount, c.MulDepth, len(c.Outputs))
	}
	// A = [1 2; 3 4], B = [5 6; 7 8] -> C = [19 22; 43 50].
	in := []field.Element{
		field.New(1), field.New(2), field.New(3), field.New(4),
		field.New(5), field.New(6), field.New(7), field.New(8),
	}
	got, err := c.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{19, 22, 43, 50}
	for i := range want {
		if got[i] != field.New(want[i]) {
			t.Fatalf("C[%d] = %v, want %d", i, got[i], want[i])
		}
	}
}

func TestDepthChain(t *testing.T) {
	c := DepthChain(3, 4)
	if c.MulDepth != 4 || c.MulCount != 4 {
		t.Fatalf("DepthChain shape: cM=%d DM=%d", c.MulCount, c.MulDepth)
	}
	// x=2: 2^(2^4) = 65536; + x2 + x3.
	got, err := c.Eval([]field.Element{field.New(2), field.New(1), field.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != field.New(65538) {
		t.Fatalf("DepthChain = %v, want 65538", got[0])
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []func(){
		func() { NewBuilder(0) },
		func() { NewBuilder(2).Input(3) },
		func() { NewBuilder(2).Input(0) },
		func() { b := NewBuilder(2); b.Add(Wire(0), Wire(5)) },
		func() { NewBuilder(2).Build() }, // no outputs
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMulIndexSequential(t *testing.T) {
	c := Product(5)
	seen := map[int]bool{}
	for _, g := range c.Gates {
		if g.Op == OpMul {
			if seen[g.MulIndex] {
				t.Fatalf("duplicate MulIndex %d", g.MulIndex)
			}
			seen[g.MulIndex] = true
		}
	}
	for i := 0; i < c.MulCount; i++ {
		if !seen[i] {
			t.Fatalf("missing MulIndex %d", i)
		}
	}
}

// checkLayers asserts the Build-time layer metadata invariants: every
// multiplication gate appears exactly once in the layer matching its
// depth, layers are in ascending gate order, no layer 1..DM is empty,
// and MulGates maps MulIndex to the right wire.
func checkLayers(t *testing.T, c *Circuit) {
	t.Helper()
	if len(c.MulLayers) != c.MulDepth {
		t.Fatalf("have %d layers, want DM = %d", len(c.MulLayers), c.MulDepth)
	}
	seen := 0
	for d, lay := range c.MulLayers {
		if len(lay) == 0 {
			t.Fatalf("layer %d is empty", d+1)
		}
		for k, w := range lay {
			g := c.Gates[w]
			if g.Op != OpMul {
				t.Fatalf("layer %d entry %d is not a mul gate", d+1, k)
			}
			if g.Depth != d+1 {
				t.Fatalf("gate %d in layer %d has depth %d", w, d+1, g.Depth)
			}
			if k > 0 && lay[k-1] >= w {
				t.Fatalf("layer %d not in ascending gate order", d+1)
			}
			seen++
		}
	}
	if seen != c.MulCount {
		t.Fatalf("layers hold %d muls, want cM = %d", seen, c.MulCount)
	}
	for k := 0; k < c.MulCount; k++ {
		w := c.MulGate(k)
		if g := c.Gates[w]; g.Op != OpMul || g.MulIndex != k {
			t.Fatalf("MulGate(%d) = %d, gate is %+v", k, w, g)
		}
	}
}

func TestMulLayerMetadata(t *testing.T) {
	for _, c := range []*Circuit{
		Product(8), SetMembership(8), MatMul2x2(), DepthChain(5, 4),
		DotProduct(4), SumAndVariancePieces(8), MulGrid(5, 3, 4),
	} {
		checkLayers(t, c)
	}
	if c := Sum(8); len(c.MulLayers) != 0 || len(c.MulGates) != 0 {
		t.Fatal("linear circuit must have no mul layers")
	}
}

// TestLayersFallback: hand-assembled circuits that bypassed Build
// derive the same layer structure on the fly.
func TestLayersFallback(t *testing.T) {
	built := MulGrid(5, 2, 3)
	raw := &Circuit{
		N: built.N, Gates: built.Gates, Outputs: built.Outputs,
		MulCount: built.MulCount, MulDepth: built.MulDepth,
	}
	lays := raw.Layers()
	if len(lays) != len(built.MulLayers) {
		t.Fatalf("fallback found %d layers, Build found %d", len(lays), len(built.MulLayers))
	}
	for d := range lays {
		if len(lays[d]) != len(built.MulLayers[d]) {
			t.Fatalf("layer %d: fallback %v, Build %v", d+1, lays[d], built.MulLayers[d])
		}
		for k := range lays[d] {
			if lays[d][k] != built.MulLayers[d][k] {
				t.Fatalf("layer %d: fallback %v, Build %v", d+1, lays[d], built.MulLayers[d])
			}
		}
	}
	for k := 0; k < built.MulCount; k++ {
		if raw.MulGate(k) != built.MulGate(k) {
			t.Fatalf("fallback MulGate(%d) = %d, Build %d", k, raw.MulGate(k), built.MulGate(k))
		}
	}
}

func TestMulGridGadget(t *testing.T) {
	c := MulGrid(5, 3, 4)
	if c.MulCount != 12 || c.MulDepth != 4 {
		t.Fatalf("cM=%d DM=%d, want 12/4", c.MulCount, c.MulDepth)
	}
	for d, lay := range c.MulLayers {
		if len(lay) != 3 {
			t.Fatalf("layer %d has %d muls, want width 3", d+1, len(lay))
		}
	}
	in := []field.Element{field.New(2), field.New(3), field.New(4), field.New(5), field.New(6)}
	out, err := c.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	// Chain w: product of in[w%5] and in[(w+k)%5] for k=1..4.
	want := field.Zero
	for w := 0; w < 3; w++ {
		acc := in[w%5]
		for k := 1; k <= 4; k++ {
			acc = acc.Mul(in[(w+k)%5])
		}
		want = want.Add(acc)
	}
	if out[0] != want {
		t.Fatalf("MulGrid eval = %v, want %v", out[0], want)
	}
}
