package circuit

import (
	"fmt"
	"math/rand/v2"

	"repro/field"
)

// RandSpec parameterises the seeded random circuit generator Random.
// Circuits are built layer by layer, so the spec controls the depth
// (Layers), width (gates per layer) and fan-in distributions of the
// result: each gate's first operand is drawn mostly from the previous
// layer (deep, chain-like circuits) and its second from the whole wire
// pool so far (wide fan-in across layers).
type RandSpec struct {
	// Layers is the number of gate layers (>= 1).
	Layers int
	// Width is the number of gates per layer (>= 1).
	Width int
	// MulPct is the percentage (0..100) of generated gates that are
	// multiplications; the remainder is split uniformly over the linear
	// families (Add, Sub, AddConst, MulConst).
	MulPct int
	// Outs is the number of output wires (>= 1), sampled from the last
	// layer first and then from the remaining pool.
	Outs int
}

func (s RandSpec) check() error {
	if s.Layers < 1 {
		return fmt.Errorf("circuit: random spec needs layers >= 1, have %d", s.Layers)
	}
	if s.Width < 1 {
		return fmt.Errorf("circuit: random spec needs width >= 1, have %d", s.Width)
	}
	if s.MulPct < 0 || s.MulPct > 100 {
		return fmt.Errorf("circuit: random spec needs mulPct in 0..100, have %d", s.MulPct)
	}
	if s.Outs < 1 {
		return fmt.Errorf("circuit: random spec needs outs >= 1, have %d", s.Outs)
	}
	return nil
}

// Random generates a pseudo-random n-party circuit from spec and seed:
// the same (n, spec, seed) triple always yields the identical circuit,
// which is how fuzz counterexample manifests replay a generated
// workload from five integers instead of a gate list. Every party's
// input feeds the pool, all gate families are exercised, and the
// multiplicative depth is emergent from the layer structure (at most
// spec.Layers). Random panics on an invalid spec; validate with the
// scenario layer first when the spec comes from user input.
func Random(n int, spec RandSpec, seed uint64) *Circuit {
	if err := spec.check(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewPCG(seed, 0x636972637569746d)) // "circuitm"
	b := NewBuilder(n)

	pool := make([]Wire, 0, n+2+spec.Layers*spec.Width)
	for i := 1; i <= n; i++ {
		pool = append(pool, b.Input(i))
	}
	// Two small nonzero constants keep OpConst in the generated mix.
	pool = append(pool, b.Const(field.New(rng.Uint64N(96)+1)))
	pool = append(pool, b.Const(field.New(rng.Uint64N(96)+1)))
	prev := pool

	smallConst := func() field.Element { return field.New(rng.Uint64N(255) + 1) }
	for l := 0; l < spec.Layers; l++ {
		layer := make([]Wire, 0, spec.Width)
		for g := 0; g < spec.Width; g++ {
			// Fan-in: operand a biased (3:1) to the previous layer so
			// depth actually grows; operand b uniform over everything.
			a := prev[rng.IntN(len(prev))]
			if rng.IntN(4) == 0 {
				a = pool[rng.IntN(len(pool))]
			}
			bb := pool[rng.IntN(len(pool))]
			var w Wire
			if rng.IntN(100) < spec.MulPct {
				w = b.Mul(a, bb)
			} else {
				switch rng.IntN(4) {
				case 0:
					w = b.Add(a, bb)
				case 1:
					w = b.Sub(a, bb)
				case 2:
					w = b.AddConst(a, smallConst())
				default:
					w = b.MulConst(a, smallConst())
				}
			}
			layer = append(layer, w)
		}
		pool = append(pool, layer...)
		prev = layer
	}

	// Outputs: the last layer first (so the deepest gates are always
	// observable), then earlier wires, newest first.
	outs := spec.Outs
	if outs > len(pool) {
		outs = len(pool)
	}
	for k := 0; k < outs; k++ {
		b.Output(pool[len(pool)-1-k])
	}
	return b.Build()
}
