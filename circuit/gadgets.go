package circuit

import (
	"repro/field"
)

// Sum builds the n-party circuit computing Σ x_i — the canonical
// linear-only benchmark (cM = 0, DM = 0).
func Sum(n int) *Circuit {
	b := NewBuilder(n)
	acc := b.Input(1)
	for i := 2; i <= n; i++ {
		acc = b.Add(acc, b.Input(i))
	}
	b.Output(acc)
	return b.Build()
}

// Product builds the n-party circuit computing Π x_i with a balanced
// multiplication tree (cM = n-1, DM = ⌈log2 n⌉).
func Product(n int) *Circuit {
	b := NewBuilder(n)
	wires := make([]Wire, n)
	for i := 1; i <= n; i++ {
		wires[i-1] = b.Input(i)
	}
	for len(wires) > 1 {
		var next []Wire
		for i := 0; i+1 < len(wires); i += 2 {
			next = append(next, b.Mul(wires[i], wires[i+1]))
		}
		if len(wires)%2 == 1 {
			next = append(next, wires[len(wires)-1])
		}
		wires = next
	}
	b.Output(wires[0])
	return b.Build()
}

// DotProduct builds the circuit computing Σ x_i · y_i where parties
// 1..k hold the x vector and parties k+1..2k hold the y vector
// (n = 2k parties; cM = k, DM = 1).
func DotProduct(k int) *Circuit {
	b := NewBuilder(2 * k)
	var acc Wire
	for i := 1; i <= k; i++ {
		term := b.Mul(b.Input(i), b.Input(k+i))
		if i == 1 {
			acc = term
		} else {
			acc = b.Add(acc, term)
		}
	}
	b.Output(acc)
	return b.Build()
}

// SumAndVariancePieces builds the n-party "federated statistics"
// circuit outputting (Σ x_i, Σ x_i²): mean and variance derive from
// these in the clear (E[x²] - E[x]², scaled by public n), so nothing
// beyond the two aggregates leaks. cM = n, DM = 1.
func SumAndVariancePieces(n int) *Circuit {
	b := NewBuilder(n)
	var sum, sumSq Wire
	for i := 1; i <= n; i++ {
		x := b.Input(i)
		sq := b.Mul(x, x)
		if i == 1 {
			sum, sumSq = x, sq
		} else {
			sum = b.Add(sum, x)
			sumSq = b.Add(sumSq, sq)
		}
	}
	b.Output(sum)
	b.Output(sumSq)
	return b.Build()
}

// SetMembership builds the private-set-membership circuit: party 1
// holds an element e, parties 2..n hold set elements s_2..s_n, and the
// output is Π (e - s_j), which is zero iff e appears in the set.
// cM = n-2, DM = ⌈log2 (n-1)⌉.
func SetMembership(n int) *Circuit {
	b := NewBuilder(n)
	e := b.Input(1)
	var terms []Wire
	for j := 2; j <= n; j++ {
		terms = append(terms, b.Sub(e, b.Input(j)))
	}
	for len(terms) > 1 {
		var next []Wire
		for i := 0; i+1 < len(terms); i += 2 {
			next = append(next, b.Mul(terms[i], terms[i+1]))
		}
		if len(terms)%2 == 1 {
			next = append(next, terms[len(terms)-1])
		}
		terms = next
	}
	b.Output(terms[0])
	return b.Build()
}

// PolyEval builds the circuit evaluating the public polynomial with
// the given coefficients (ascending) at party 1's private input by
// Horner's rule, with every other party's input folded in additively
// so that all n inputs participate: output = p(x_1) + Σ_{i≥2} x_i.
// cM = deg, DM = deg.
func PolyEval(n int, coeffs []field.Element) *Circuit {
	b := NewBuilder(n)
	x := b.Input(1)
	acc := b.Const(coeffs[len(coeffs)-1])
	for k := len(coeffs) - 2; k >= 0; k-- {
		acc = b.AddConst(b.Mul(acc, x), coeffs[k])
	}
	for i := 2; i <= n; i++ {
		acc = b.Add(acc, b.Input(i))
	}
	b.Output(acc)
	return b.Build()
}

// MatMul2x2 builds the 2×2 matrix-product circuit: parties 1..4 hold
// matrix A row-major, parties 5..8 hold matrix B, and the four outputs
// are C = A·B. The multiplication-heavy benchmark shape (n = 8,
// cM = 8, DM = 1).
func MatMul2x2() *Circuit {
	b := NewBuilder(8)
	a := [4]Wire{}
	bb := [4]Wire{}
	for i := 0; i < 4; i++ {
		a[i] = b.Input(i + 1)
		bb[i] = b.Input(i + 5)
	}
	// C[r][c] = Σ_k A[r][k]·B[k][c], row-major indices i = 2r + c.
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			t1 := b.Mul(a[2*r+0], bb[0*2+c])
			t2 := b.Mul(a[2*r+1], bb[1*2+c])
			b.Output(b.Add(t1, t2))
		}
	}
	return b.Build()
}

// MulGrid builds the depth-heavy, width-heavy benchmark circuit: width
// independent multiplication chains of length depth (chain w starts
// from input (w mod n)+1 and repeatedly multiplies by successive
// inputs round-robin), summed into a single output. Every
// multiplicative layer 1..depth holds exactly width gates, so
// cM = width·depth and DM = depth — the shape where per-layer batching
// of the online phase pays off most (one reconstruction instance per
// layer instead of width per layer).
func MulGrid(n, width, depth int) *Circuit {
	if width < 1 || depth < 1 {
		panic("circuit: MulGrid needs width >= 1 and depth >= 1")
	}
	b := NewBuilder(n)
	ins := make([]Wire, n)
	for i := 1; i <= n; i++ {
		ins[i-1] = b.Input(i)
	}
	chains := make([]Wire, width)
	for w := 0; w < width; w++ {
		acc := ins[w%n]
		for k := 1; k <= depth; k++ {
			acc = b.Mul(acc, ins[(w+k)%n])
		}
		chains[w] = acc
	}
	sum := chains[0]
	for w := 1; w < width; w++ {
		sum = b.Add(sum, chains[w])
	}
	b.Output(sum)
	return b.Build()
}

// DepthChain builds a worst-case-depth circuit: a chain of dm
// multiplications of party 1's input with itself, plus every other
// party's input folded in linearly (used by the DM timing sweeps).
func DepthChain(n, dm int) *Circuit {
	b := NewBuilder(n)
	acc := b.Input(1)
	for k := 0; k < dm; k++ {
		acc = b.Mul(acc, acc)
	}
	for i := 2; i <= n; i++ {
		acc = b.Add(acc, b.Input(i))
	}
	b.Output(acc)
	return b.Build()
}
