package circuit

import (
	"reflect"
	"testing"

	"repro/field"
)

func TestRandomDeterministic(t *testing.T) {
	spec := RandSpec{Layers: 3, Width: 4, MulPct: 40, Outs: 2}
	a := Random(5, spec, 99)
	b := Random(5, spec, 99)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (n, spec, seed) built different circuits")
	}
	c := Random(5, spec, 100)
	if reflect.DeepEqual(a.Gates, c.Gates) {
		t.Fatal("different seeds built identical circuits")
	}
}

func TestRandomShape(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		spec := RandSpec{
			Layers: 1 + int(seed%4),
			Width:  1 + int(seed%5),
			MulPct: int(seed % 101),
			Outs:   1 + int(seed%3),
		}
		c := Random(6, spec, seed)
		if c.N != 6 {
			t.Fatalf("seed %d: N = %d", seed, c.N)
		}
		if c.MulDepth > spec.Layers {
			t.Fatalf("seed %d: multiplicative depth %d exceeds layer count %d", seed, c.MulDepth, spec.Layers)
		}
		if len(c.Outputs) < 1 || len(c.Outputs) > spec.Outs {
			t.Fatalf("seed %d: %d outputs, want 1..%d", seed, len(c.Outputs), spec.Outs)
		}
		if want := 6 + 2 + spec.Layers*spec.Width; len(c.Gates) != want {
			t.Fatalf("seed %d: %d gates, want %d", seed, len(c.Gates), want)
		}
		// The circuit must evaluate cleanly: all wires in range, no
		// unknown ops (Eval checks both).
		inputs := make([]field.Element, 6)
		for i := range inputs {
			inputs[i] = field.New(uint64(i + 3))
		}
		if _, err := c.Eval(inputs); err != nil {
			t.Fatalf("seed %d: evaluation failed: %v", seed, err)
		}
	}
}

// TestRandomExercisesAllFamilies: over a few seeds the generator must
// emit every gate family it claims to cover.
func TestRandomExercisesAllFamilies(t *testing.T) {
	seen := map[Op]bool{}
	for seed := uint64(0); seed < 20; seed++ {
		c := Random(5, RandSpec{Layers: 4, Width: 6, MulPct: 30, Outs: 2}, seed)
		for _, g := range c.Gates {
			seen[g.Op] = true
		}
	}
	for _, op := range []Op{OpInput, OpConst, OpAdd, OpSub, OpMul, OpAddConst, OpMulConst} {
		if !seen[op] {
			t.Errorf("op %d never generated across 20 seeds", op)
		}
	}
}

func TestRandomMulPctExtremes(t *testing.T) {
	if c := Random(5, RandSpec{Layers: 3, Width: 4, MulPct: 0, Outs: 1}, 1); c.MulCount != 0 {
		t.Fatalf("mulPct 0 produced %d multiplications", c.MulCount)
	}
	if c := Random(5, RandSpec{Layers: 3, Width: 4, MulPct: 100, Outs: 1}, 1); c.MulCount != 12 {
		t.Fatalf("mulPct 100 produced %d of 12 multiplications", c.MulCount)
	}
}

func TestRandomRejectsBadSpec(t *testing.T) {
	for _, spec := range []RandSpec{
		{Layers: 0, Width: 1, Outs: 1},
		{Layers: 1, Width: 0, Outs: 1},
		{Layers: 1, Width: 1, Outs: 0},
		{Layers: 1, Width: 1, MulPct: 101, Outs: 1},
		{Layers: 1, Width: 1, MulPct: -1, Outs: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spec %+v did not panic", spec)
				}
			}()
			Random(5, spec, 1)
		}()
	}
}
