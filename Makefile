GO ?= go

.PHONY: build vet test test-short scenarios bench-smoke bench-json ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# scenarios runs the full built-in scenario corpus on a 4-worker pool.
scenarios:
	$(GO) run ./cmd/scenario run --all -parallel 4

# bench-smoke compiles and single-shots every benchmark (CI guard; no
# stable timing intended).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json regenerates BENCH_PR2.json: the tracked E7/E8 wall-clock
# trajectory against the recorded pre-PR2 baseline (docs/performance.md).
bench-json:
	$(GO) run ./cmd/scenario bench -out BENCH_PR2.json

ci: build vet test-short bench-smoke
