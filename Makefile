GO ?= go

.PHONY: build vet test test-short test-race scenarios workload-smoke pipeline-smoke par-smoke fuzz-smoke fuzz-native trace-smoke checkpoint-smoke deploy-smoke bench-smoke bench-msgs bench-json ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race -short ./...

# fuzz-smoke runs a fixed-seed slice of the property-based protocol
# fuzzing campaign (docs/fuzzing.md): deterministic, ~30s, so every PR
# checks a slice of the random scenario space against the invariant
# oracles.
fuzz-smoke:
	$(GO) run ./cmd/scenario fuzz -trials 12 -seed 1

# fuzz-native gives each Go native fuzz target a short randomized
# budget (coverage-guided, NOT deterministic — run locally, not in CI;
# CI still replays the committed corpora under testdata/fuzz/ as part
# of the normal test run).
fuzz-native:
	$(GO) test -run '^$$' -fuzz 'FuzzFieldRoundTrip$$' -fuzztime 10s ./field
	$(GO) test -run '^$$' -fuzz 'FuzzOECMatchesDecode$$' -fuzztime 10s ./internal/rs
	$(GO) test -run '^$$' -fuzz 'FuzzLoadManifest$$' -fuzztime 10s ./scenario
	$(GO) test -run '^$$' -fuzz 'FuzzCheckpointRoundTrip$$' -fuzztime 10s ./mpc

# scenarios runs the full built-in scenario corpus on a 4-worker pool.
scenarios:
	$(GO) run ./cmd/scenario run --all -parallel 4

# workload-smoke runs the fixed-seed amortization workload (8
# evaluations over one session engine) and fails unless the amortized
# per-evaluation message cost beats the one-shot cost (deterministic;
# CI guard for the session-engine refactor).
workload-smoke:
	$(GO) run ./cmd/scenario workload workload-amortize-sync workload-refill-sync workload-adversarial-sync
	$(GO) run ./cmd/scenario workload -require-savings workload-amortize-sync

# pipeline-smoke drives the PR 9 pipelined serving path end to end:
# the pipeline workload forced sequential and at depth 1 must produce
# bit-identical reports (the differential guarantee), two depth-4 runs
# must produce bit-identical reports (determinism under overlap; full
# depth-4 figures differ from sequential only by PRNG draw-order noise
# — outputs and CS are asserted identical in the test suites), and the
# watermark-refill workload must serve its under-budgeted stream
# without ever hitting the exhaustion-retry path.
pipeline-smoke:
	$(GO) run ./cmd/scenario workload -compare=false -json -pipeline -1 workload-pipeline-sync > /tmp/repro-pipe-seq.json
	$(GO) run ./cmd/scenario workload -compare=false -json -pipeline 1 workload-pipeline-sync > /tmp/repro-pipe-d1.json
	cmp /tmp/repro-pipe-seq.json /tmp/repro-pipe-d1.json
	$(GO) run ./cmd/scenario workload -compare=false -json workload-pipeline-sync > /tmp/repro-pipe-d4a.json
	$(GO) run ./cmd/scenario workload -compare=false -json workload-pipeline-sync > /tmp/repro-pipe-d4b.json
	cmp /tmp/repro-pipe-d4a.json /tmp/repro-pipe-d4b.json
	$(GO) run ./cmd/scenario workload workload-pipeline-refill-sync

# par-smoke drives the PR 10 parallel-ticks path end to end: the full
# builtin corpus run serial and on a 4-worker intra-tick pool must
# produce bit-identical JSON reports (the determinism contract of
# docs/architecture.md — parallelism buys host wall-clock only), and
# the staged-effect barrier must survive the race detector on real
# protocol traffic.
par-smoke:
	$(GO) run ./cmd/scenario run --all -json > /tmp/repro-par-serial.json
	$(GO) run ./cmd/scenario run --all -json -workers 4 > /tmp/repro-par-w4.json
	cmp /tmp/repro-par-serial.json /tmp/repro-par-w4.json
	$(GO) test -race -run 'TestParallel' ./internal/sim
	$(GO) test -race -short -run 'TestWorkersBitIdenticalShort' ./scenario

# trace-smoke runs one builtin with the PR 6 trace layer on, then
# validates the exported Chrome trace (well-formed JSON, non-empty,
# monotone timestamps). The zero-alloc nil-tracer guard and the
# trace-on/off differential run as part of the normal test suite
# (internal/sim, scenario); this checks the end-to-end export path.
trace-smoke:
	$(GO) run ./cmd/scenario trace -out /tmp/repro-trace-smoke.json sync-product-honest
	$(GO) run ./cmd/scenario trace -validate /tmp/repro-trace-smoke.json

# checkpoint-smoke drives the PR 7 crash-safety path end to end: run
# the amortization workload uninterrupted, run it again killed after 3
# steps with a checkpoint, inspect the checkpoint, resume it, and fail
# unless the resumed report is bit-identical to the uninterrupted one
# (deterministic; docs/checkpointing.md).
checkpoint-smoke:
	$(GO) run ./cmd/scenario workload -compare=false -json workload-amortize-sync > /tmp/repro-ckpt-full.json
	$(GO) run ./cmd/scenario workload -compare=false -checkpoint /tmp/repro-ckpt.bin -stop-after 3 workload-amortize-sync
	$(GO) run ./cmd/scenario checkpoint /tmp/repro-ckpt.bin
	$(GO) run ./cmd/scenario workload -compare=false -resume /tmp/repro-ckpt.bin -json workload-amortize-sync > /tmp/repro-ckpt-resumed.json
	cmp /tmp/repro-ckpt-full.json /tmp/repro-ckpt-resumed.json
	$(GO) run ./cmd/scenario fuzz -crash -trials 4 -seed 1

# deploy-smoke drives the PR 8 transport seam end to end: deploy the
# builtin unix-socket party set (parties as goroutines exchanging
# CRC-framed messages over real sockets), deploy the same set over the
# in-memory simulator, and fail unless the inner protocol reports are
# bit-identical — the differential guarantee of docs/deployment.md.
# A 2-round serve over the workload set then exercises the long-lived
# serving loop over sockets.
deploy-smoke:
	$(GO) run ./cmd/scenario deploy -out /tmp/repro-deploy-unix.json deploy-unix-n5
	$(GO) run ./cmd/scenario deploy -backend sim -out /tmp/repro-deploy-sim.json deploy-unix-n5
	cmp /tmp/repro-deploy-unix.json /tmp/repro-deploy-sim.json
	$(GO) run ./cmd/scenario serve -rounds 2 deploy-unix-n5-workload

# bench-smoke compiles and single-shots every benchmark (CI guard; no
# stable timing intended).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-msgs runs the tracked mul-deep online bench and fails if the
# layered evaluator's honest-origin message count regresses above the
# recorded per-layer baseline (deterministic; CI guard).
bench-msgs:
	$(GO) test -run 'TestMulDeepMessageBudget' -v ./internal/bench

# bench-json regenerates BENCH_PR3.json (the tracked wall-clock
# trajectory against the recorded pre-PR2 baseline plus the PR 3
# per-gate vs per-layer message-complexity rows), BENCH_PR5.json
# (the E14 session-engine amortization rows), BENCH_PR6.json (the
# E15 trace-overhead rows) and BENCH_PR7.json (the E16
# checkpoint-restore vs re-preprocess rows), BENCH_PR8.json (the
# transport-backend rows: the tracked runs carried by the simulator,
# unix sockets and TCP loopback), BENCH_PR9.json (the pipelined
# serving rows at depths 1/4/16) and BENCH_PR10.json (the parallel-
# ticks worker ladder over E8ACS n=8/n=16 and E7VSS n=32, with the
# serial-identity gate); see docs/performance.md,
# docs/observability.md, docs/checkpointing.md and docs/deployment.md.
bench-json:
	$(GO) run ./cmd/scenario bench -out BENCH_PR3.json -out5 BENCH_PR5.json -out6 BENCH_PR6.json -out7 BENCH_PR7.json -out8 BENCH_PR8.json -out9 BENCH_PR9.json -out10 BENCH_PR10.json

ci: build vet test-short bench-smoke bench-msgs workload-smoke pipeline-smoke par-smoke fuzz-smoke trace-smoke checkpoint-smoke deploy-smoke
