GO ?= go

.PHONY: build vet test test-short scenarios ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# scenarios runs the full built-in scenario corpus on a 4-worker pool.
scenarios:
	$(GO) run ./cmd/scenario run --all -parallel 4

ci: build vet test-short
