GO ?= go

.PHONY: build vet test test-short scenarios bench-smoke bench-msgs bench-json ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# scenarios runs the full built-in scenario corpus on a 4-worker pool.
scenarios:
	$(GO) run ./cmd/scenario run --all -parallel 4

# bench-smoke compiles and single-shots every benchmark (CI guard; no
# stable timing intended).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-msgs runs the tracked mul-deep online bench and fails if the
# layered evaluator's honest-origin message count regresses above the
# recorded per-layer baseline (deterministic; CI guard).
bench-msgs:
	$(GO) test -run 'TestMulDeepMessageBudget' -v ./internal/bench

# bench-json regenerates BENCH_PR3.json: the tracked wall-clock
# trajectory against the recorded pre-PR2 baseline plus the PR 3
# per-gate vs per-layer message-complexity rows (docs/performance.md).
bench-json:
	$(GO) run ./cmd/scenario bench -out BENCH_PR3.json

ci: build vet test-short bench-smoke bench-msgs
