package poly

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/field"
)

func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xdeadbeef))
}

func TestAlphaBetaDistinct(t *testing.T) {
	n := 32
	seen := map[field.Element]bool{}
	for i := 1; i <= n; i++ {
		a := Alpha(i)
		if a.IsZero() {
			t.Fatalf("Alpha(%d) is zero", i)
		}
		if seen[a] {
			t.Fatalf("Alpha(%d) collides", i)
		}
		seen[a] = true
	}
	for j := 1; j <= n; j++ {
		b := Beta(n, j)
		if b.IsZero() || seen[b] {
			t.Fatalf("Beta(%d,%d) collides with earlier point", n, j)
		}
		seen[b] = true
	}
}

func TestAlphaPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Alpha(0) should panic")
		}
	}()
	Alpha(0)
}

func TestEvalHorner(t *testing.T) {
	// p(x) = 3 + 2x + x^2
	p := NewPoly(field.New(3), field.New(2), field.New(1))
	tests := []struct {
		x, want uint64
	}{
		{0, 3}, {1, 6}, {2, 11}, {5, 38},
	}
	for _, tt := range tests {
		if got := p.Eval(field.New(tt.x)); got != field.New(tt.want) {
			t.Errorf("p(%d) = %v, want %d", tt.x, got, tt.want)
		}
	}
}

func TestDegreeAndZero(t *testing.T) {
	if d := (Poly{}).Degree(); d != -1 {
		t.Errorf("zero poly degree = %d, want -1", d)
	}
	p := NewPoly(field.New(1), field.Zero, field.Zero)
	if d := p.Degree(); d != 0 {
		t.Errorf("degree with trailing zeros = %d, want 0", d)
	}
	if !NewPoly().IsZero() || !NewPoly(field.Zero).IsZero() {
		t.Error("zero polynomial not detected")
	}
}

func TestArithmetic(t *testing.T) {
	r := rng(1)
	for i := 0; i < 100; i++ {
		p := Random(r, 5, field.Random(r))
		q := Random(r, 3, field.Random(r))
		x := field.Random(r)
		if got := p.Add(q).Eval(x); got != p.Eval(x).Add(q.Eval(x)) {
			t.Fatal("Add eval mismatch")
		}
		if got := p.Sub(q).Eval(x); got != p.Eval(x).Sub(q.Eval(x)) {
			t.Fatal("Sub eval mismatch")
		}
		if got := p.Mul(q).Eval(x); got != p.Eval(x).Mul(q.Eval(x)) {
			t.Fatal("Mul eval mismatch")
		}
		c := field.Random(r)
		if got := p.ScalarMul(c).Eval(x); got != p.Eval(x).Mul(c) {
			t.Fatal("ScalarMul eval mismatch")
		}
	}
}

func TestMulDegree(t *testing.T) {
	r := rng(2)
	p := Random(r, 4, field.RandomNonZero(r))
	q := Random(r, 7, field.RandomNonZero(r))
	if d := p.Mul(q).Degree(); d != 11 {
		t.Errorf("product degree = %d, want 11", d)
	}
	if !p.Mul(Poly{}).IsZero() {
		t.Error("p * 0 should be zero")
	}
}

func TestDivExact(t *testing.T) {
	r := rng(3)
	for i := 0; i < 50; i++ {
		p := Random(r, 6, field.Random(r))
		q := Random(r, 3, field.RandomNonZero(r))
		prod := p.Mul(q)
		quot, exact := prod.Div(q)
		if !exact {
			t.Fatal("exact division reported inexact")
		}
		if !quot.Equal(p) {
			t.Fatal("division result mismatch")
		}
	}
	// Inexact division.
	p := NewPoly(field.New(1), field.New(1)) // 1 + x
	q := NewPoly(field.New(0), field.New(1)) // x
	if _, exact := p.Div(q); exact {
		t.Error("inexact division reported exact")
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero polynomial should panic")
		}
	}()
	NewPoly(field.One).Div(Poly{})
}

func TestInterpolateRoundTrip(t *testing.T) {
	r := rng(4)
	for d := 0; d <= 12; d++ {
		p := Random(r, d, field.Random(r))
		pts := make([]Point, d+1)
		for i := range pts {
			x := Alpha(i + 1)
			pts[i] = Point{X: x, Y: p.Eval(x)}
		}
		got, err := Interpolate(pts)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(p) {
			t.Fatalf("degree %d: interpolation mismatch", d)
		}
	}
}

func TestInterpolateRejectsDuplicates(t *testing.T) {
	pts := []Point{{X: field.New(1), Y: field.New(2)}, {X: field.New(1), Y: field.New(3)}}
	if _, err := Interpolate(pts); err == nil {
		t.Fatal("duplicate X accepted")
	}
}

func TestInterpolateEmpty(t *testing.T) {
	p, err := Interpolate(nil)
	if err != nil || !p.IsZero() {
		t.Fatalf("Interpolate(nil) = %v, %v", p, err)
	}
}

func TestLagrangeCoeffs(t *testing.T) {
	r := rng(5)
	for d := 0; d <= 10; d++ {
		p := Random(r, d, field.Random(r))
		xs := make([]field.Element, d+1)
		ys := make([]field.Element, d+1)
		for i := range xs {
			xs[i] = Alpha(i + 1)
			ys[i] = p.Eval(xs[i])
		}
		target := Beta(16, 1)
		cs, err := LagrangeCoeffsAt(xs, target)
		if err != nil {
			t.Fatal(err)
		}
		if got := field.Dot(cs, ys); got != p.Eval(target) {
			t.Fatalf("degree %d: lagrange combination mismatch", d)
		}
	}
}

func TestInterpolateAt(t *testing.T) {
	r := rng(6)
	p := Random(r, 7, field.Random(r))
	pts := make([]Point, 8)
	for i := range pts {
		pts[i] = Point{X: Alpha(i + 1), Y: p.Eval(Alpha(i + 1))}
	}
	got, err := InterpolateAt(pts, field.Zero)
	if err != nil {
		t.Fatal(err)
	}
	if got != p.Eval(field.Zero) {
		t.Fatalf("InterpolateAt(0) = %v, want %v", got, p.Eval(field.Zero))
	}
}

func TestSharesLinearity(t *testing.T) {
	// d-sharing linearity (Definition 2.3): shares of c1·a + c2·b equal
	// the pointwise combination of shares.
	r := rng(7)
	const n, d = 10, 3
	fa := Random(r, d, field.Random(r))
	fb := Random(r, d, field.Random(r))
	c1, c2 := field.Random(r), field.Random(r)
	combined := fa.ScalarMul(c1).Add(fb.ScalarMul(c2))
	sa, sb, sc := fa.Shares(n), fb.Shares(n), combined.Shares(n)
	for i := 0; i < n; i++ {
		if got := sa[i].Mul(c1).Add(sb[i].Mul(c2)); got != sc[i] {
			t.Fatalf("share linearity broken at party %d", i+1)
		}
	}
}

func TestQuickInterpolation(t *testing.T) {
	r := rng(8)
	f := func(seed uint64, dRaw uint8) bool {
		d := int(dRaw % 8)
		local := rand.New(rand.NewPCG(seed, 42))
		p := Random(local, d, field.Random(local))
		pts := make([]Point, d+1)
		for i := range pts {
			pts[i] = Point{X: Alpha(i + 1), Y: p.Eval(Alpha(i + 1))}
		}
		q, err := Interpolate(pts)
		return err == nil && q.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: nil}); err != nil {
		t.Error(err)
	}
	_ = r
}

func TestSymmetricBivariate(t *testing.T) {
	r := rng(9)
	const d = 4
	q := Random(r, d, field.Random(r))
	s, err := NewSymmetricRandom(r, d, q)
	if err != nil {
		t.Fatal(err)
	}
	// F(0, y) = q(y).
	if !s.ZeroRow().Equal(q) {
		t.Fatal("F(0,y) != q(y)")
	}
	// Symmetry: F(a, b) = F(b, a).
	for i := 0; i < 50; i++ {
		a, b := field.Random(r), field.Random(r)
		if s.Eval(a, b) != s.Eval(b, a) {
			t.Fatal("symmetry violated")
		}
	}
	// Row consistency: f_i(α_j) = f_j(α_i).
	for i := 1; i <= 6; i++ {
		for j := 1; j <= 6; j++ {
			fi, fj := s.RowForParty(i), s.RowForParty(j)
			if fi.Eval(Alpha(j)) != fj.Eval(Alpha(i)) {
				t.Fatalf("pairwise consistency broken (%d,%d)", i, j)
			}
		}
	}
	// Row evaluation matches Eval.
	for i := 1; i <= 6; i++ {
		x := field.Random(r)
		if s.RowForParty(i).Eval(x) != s.Eval(x, Alpha(i)) {
			t.Fatalf("Row(%d) mismatch with Eval", i)
		}
	}
}

func TestSymmetricDegreeTooHigh(t *testing.T) {
	r := rng(10)
	q := Random(r, 5, field.Random(r))
	if _, err := NewSymmetricRandom(r, 3, q); err == nil {
		t.Fatal("embedding degree-5 polynomial into degree-3 bivariate should fail")
	}
}

func TestInterpolateSymmetric(t *testing.T) {
	r := rng(11)
	const d = 3
	q := Random(r, d, field.Random(r))
	s, err := NewSymmetricRandom(r, d, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[int]Poly{}
	for _, i := range []int{2, 4, 5, 7, 9} { // d+2 rows, arbitrary indices
		rows[i] = s.RowForParty(i)
	}
	got, err := InterpolateSymmetric(d, rows)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ZeroRow().Equal(q) {
		t.Fatal("reconstructed F(0,y) mismatch")
	}
	for i := 1; i <= 9; i++ {
		if !got.RowForParty(i).Equal(s.RowForParty(i)) {
			t.Fatalf("reconstructed row %d mismatch", i)
		}
	}
}

func TestInterpolateSymmetricRejectsInconsistent(t *testing.T) {
	r := rng(12)
	const d = 2
	s, err := NewSymmetricRandom(r, d, Random(r, d, field.Random(r)))
	if err != nil {
		t.Fatal(err)
	}
	rows := map[int]Poly{
		1: s.RowForParty(1),
		2: s.RowForParty(2),
		3: s.RowForParty(3),
		4: Random(r, d, field.Random(r)), // corrupted row
	}
	if _, err := InterpolateSymmetric(d, rows); err == nil {
		t.Fatal("inconsistent rows accepted")
	}
	if _, err := InterpolateSymmetric(d, map[int]Poly{1: s.RowForParty(1)}); err == nil {
		t.Fatal("insufficient rows accepted")
	}
}

// TestShareDistributionIdentity is the computational analogue of
// Lemma 2.2: for two candidate secrets, the joint distribution of any d
// corrupted parties' row polynomials is identical. We verify the exact
// counting identity on a toy parameterisation by exhaustively checking
// that each adversary view is consistent with both secrets equally often
// under re-randomisation (statistical smoke test on structure).
func TestShareDistributionIdentity(t *testing.T) {
	r := rng(13)
	const d = 2
	// Adversary corrupts parties 1..d. For fixed corrupted rows, the
	// bivariate polynomial is not determined: verify that for ANY secret
	// s' there exists a symmetric F' of degree d with F'(0,y)(0) = s' and
	// the same corrupted rows. Construction: interpolate through rows
	// 1..d plus a virtual row forcing the secret.
	q1 := Random(r, d, field.New(11))
	F1, err := NewSymmetricRandom(r, d, q1)
	if err != nil {
		t.Fatal(err)
	}
	advRows := map[int]Poly{1: F1.RowForParty(1), 2: F1.RowForParty(2)}
	// Target different secret 99: build q2 with q2(α_1)=f_1(0), q2(α_2)=f_2(0), q2(0)=99.
	pts := []Point{
		{X: field.Zero, Y: field.New(99)},
		{X: Alpha(1), Y: advRows[1].Eval(field.Zero)},
		{X: Alpha(2), Y: advRows[2].Eval(field.Zero)},
	}
	q2, err := Interpolate(pts)
	if err != nil {
		t.Fatal(err)
	}
	// There must exist a symmetric bivariate F2 of degree d with
	// F2(0,y)=q2 and F2(x,α_i) = advRows[i] for i=1,2. Reconstruct from
	// rows {0: q2 (as row at y=0... use x<->y symmetry), 1, 2}: a
	// symmetric polynomial is determined by d+1 = 3 pairwise-consistent
	// rows; check consistency first.
	for i := 1; i <= d; i++ {
		if q2.Eval(Alpha(i)) != advRows[i].Eval(field.Zero) {
			t.Fatal("constructed q2 not consistent with adversary rows")
		}
	}
	rows := map[int]Poly{1: advRows[1], 2: advRows[2]}
	// Use InterpolateSymmetric on rows 1,2 plus the zero row via a
	// direct coefficient construction: treat q2 as the row at point 0.
	// Interpolate coefficient-wise through points {0, α_1, α_2}.
	coeffRows := [][]field.Element{}
	for k := 0; k <= d; k++ {
		get := func(p Poly) field.Element {
			if k < len(p.Coeffs) {
				return p.Coeffs[k]
			}
			return field.Zero
		}
		g, err := Interpolate([]Point{
			{X: field.Zero, Y: get(q2)},
			{X: Alpha(1), Y: get(rows[1])},
			{X: Alpha(2), Y: get(rows[2])},
		})
		if err != nil {
			t.Fatal(err)
		}
		cs := make([]field.Element, d+1)
		for j := 0; j <= d; j++ {
			if j < len(g.Coeffs) {
				cs[j] = g.Coeffs[j]
			}
		}
		coeffRows = append(coeffRows, cs)
	}
	// Verify the implied coefficient matrix is symmetric, confirming a
	// valid F2 exists with the alternative secret: coeffRows[k][j] is the
	// coefficient of x^k y^j.
	for i := 0; i <= d; i++ {
		for j := 0; j <= d; j++ {
			if coeffRows[i][j] != coeffRows[j][i] {
				t.Fatalf("no symmetric completion exists: coeff[%d][%d] != coeff[%d][%d]", i, j, j, i)
			}
		}
	}
	if coeffRows[0][0] != field.New(99) {
		t.Fatalf("completed secret = %v, want 99", coeffRows[0][0])
	}
}

func BenchmarkInterpolate(b *testing.B) {
	r := rng(14)
	const d = 16
	p := Random(r, d, field.Random(r))
	pts := make([]Point, d+1)
	for i := range pts {
		pts[i] = Point{X: Alpha(i + 1), Y: p.Eval(Alpha(i + 1))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Interpolate(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSubDirect pins the direct element-wise subtraction against the
// defining identity p - q = p + (-1)·q, across mismatched lengths.
func TestSubDirect(t *testing.T) {
	r := rand.New(rand.NewPCG(91, 1))
	for trial := 0; trial < 100; trial++ {
		p := Random(r, r.IntN(6), field.Random(r))
		q := Random(r, r.IntN(6), field.Random(r))
		got := p.Sub(q)
		want := p.Add(q.ScalarMul(field.One.Neg()))
		if !got.Equal(want) {
			t.Fatalf("trial %d: Sub = %v, want %v", trial, got.Coeffs, want.Coeffs)
		}
		if !p.Sub(p).IsZero() {
			t.Fatalf("trial %d: p - p != 0", trial)
		}
	}
	// A single output slice, no intermediates: one allocation total.
	p := Random(r, 8, field.Random(r))
	q := Random(r, 8, field.Random(r))
	if n := testing.AllocsPerRun(100, func() { p.Sub(q) }); n > 1 {
		t.Fatalf("Sub allocates %v times per run, want ≤ 1", n)
	}
}
