package poly

import (
	"fmt"
	"math/rand/v2"

	"repro/field"
)

// Symmetric is an (ℓ, ℓ)-degree symmetric bivariate polynomial
// F(x, y) = Σ_{i,j} r_ij x^i y^j with r_ij = r_ji.
//
// In the VSS protocols a dealer with a ts-degree univariate input q(·)
// embeds it as F(0, y) = q(y) in a random symmetric bivariate polynomial
// and hands party P_i the univariate row polynomial f_i(x) = F(x, α_i).
// Symmetry yields the pair-wise consistency relation
// f_i(α_j) = F(α_j, α_i) = F(α_i, α_j) = f_j(α_i).
type Symmetric struct {
	deg int
	// coeff[i][j] for i ≤ j; the full matrix is implied by symmetry.
	coeff [][]field.Element
}

// NewSymmetricRandom returns a random (d, d)-degree symmetric bivariate
// polynomial F with F(0, y) = q(y). The degree of q must be at most d.
func NewSymmetricRandom(rng *rand.Rand, d int, q Poly) (*Symmetric, error) {
	if q.Degree() > d {
		return nil, fmt.Errorf("poly: embedded polynomial degree %d exceeds bivariate degree %d", q.Degree(), d)
	}
	s := &Symmetric{deg: d, coeff: make([][]field.Element, d+1)}
	for i := 0; i <= d; i++ {
		s.coeff[i] = make([]field.Element, d+1)
	}
	// F(0, y) = Σ_j r_0j y^j must equal q: fix row 0 (and column 0 by
	// symmetry) to q's coefficients.
	for j := 0; j <= d; j++ {
		var c field.Element
		if j < len(q.Coeffs) {
			c = q.Coeffs[j]
		}
		s.coeff[0][j] = c
		s.coeff[j][0] = c
	}
	// Remaining upper-triangular coefficients are uniform.
	for i := 1; i <= d; i++ {
		for j := i; j <= d; j++ {
			c := field.Random(rng)
			s.coeff[i][j] = c
			s.coeff[j][i] = c
		}
	}
	return s, nil
}

// Degree returns d for the (d, d)-degree polynomial.
func (s *Symmetric) Degree() int { return s.deg }

// Eval returns F(x, y).
func (s *Symmetric) Eval(x, y field.Element) field.Element {
	// Horner in y of Horner-in-x rows.
	var acc field.Element
	for j := s.deg; j >= 0; j-- {
		var row field.Element
		for i := s.deg; i >= 0; i-- {
			row = row.Mul(x).Add(s.coeff[i][j])
		}
		acc = acc.Mul(y).Add(row)
	}
	return acc
}

// Row returns the univariate polynomial f(x) = F(x, y0).
func (s *Symmetric) Row(y0 field.Element) Poly {
	coeffs := make([]field.Element, s.deg+1)
	for i := 0; i <= s.deg; i++ {
		var acc field.Element
		for j := s.deg; j >= 0; j-- {
			acc = acc.Mul(y0).Add(s.coeff[i][j])
		}
		coeffs[i] = acc
	}
	return Poly{Coeffs: coeffs}
}

// RowForParty returns f_i(x) = F(x, α_i), the polynomial the dealer sends
// to party i.
func (s *Symmetric) RowForParty(i int) Poly { return s.Row(Alpha(i)) }

// ZeroRow returns q(y) = F(0, y), the dealer's embedded input polynomial.
func (s *Symmetric) ZeroRow() Poly {
	// By symmetry F(0, y) = F(y, 0) = row at y0 = 0.
	return s.Row(field.Zero)
}

// InterpolateSymmetric reconstructs the unique (d, d)-degree symmetric
// bivariate polynomial from d+1 rows f_{i}(x) = F(x, α_{idx}) given as
// (index, polynomial) pairs with pair-wise consistent rows (Lemma 2.1).
// It returns an error if the rows are inconsistent or insufficient.
func InterpolateSymmetric(d int, rows map[int]Poly) (*Symmetric, error) {
	if len(rows) < d+1 {
		return nil, fmt.Errorf("poly: need %d rows to reconstruct, have %d", d+1, len(rows))
	}
	// Pick d+1 rows deterministically (ascending party index).
	idxs := make([]int, 0, len(rows))
	for i := range rows {
		idxs = append(idxs, i)
	}
	// Simple insertion sort keeps this dependency-free.
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && idxs[j] < idxs[j-1]; j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
	idxs = idxs[:d+1]

	// For each coefficient power k of x, interpolate in y through the
	// k-th coefficients of the selected rows.
	coeff := make([][]field.Element, d+1)
	for i := range coeff {
		coeff[i] = make([]field.Element, d+1)
	}
	for k := 0; k <= d; k++ {
		pts := make([]Point, 0, d+1)
		for _, i := range idxs {
			row := rows[i]
			var c field.Element
			if k < len(row.Coeffs) {
				c = row.Coeffs[k]
			}
			pts = append(pts, Point{X: Alpha(i), Y: c})
		}
		g, err := Interpolate(pts)
		if err != nil {
			return nil, fmt.Errorf("poly: bivariate reconstruction: %w", err)
		}
		if g.Degree() > d {
			return nil, fmt.Errorf("poly: rows do not lie on a (%d,%d)-degree polynomial", d, d)
		}
		for j := 0; j <= d; j++ {
			var c field.Element
			if j < len(g.Coeffs) {
				c = g.Coeffs[j]
			}
			coeff[k][j] = c
		}
	}
	s := &Symmetric{deg: d, coeff: coeff}
	// Verify symmetry; inconsistent rows surface here.
	for i := 0; i <= d; i++ {
		for j := i + 1; j <= d; j++ {
			if s.coeff[i][j] != s.coeff[j][i] {
				return nil, fmt.Errorf("poly: reconstructed polynomial is not symmetric")
			}
		}
	}
	// Verify all provided rows (not just the d+1 used) lie on s.
	for i, row := range rows {
		if !s.Row(Alpha(i)).Equal(row.Trim()) {
			return nil, fmt.Errorf("poly: row %d inconsistent with reconstruction", i)
		}
	}
	return s, nil
}
