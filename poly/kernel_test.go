package poly

import (
	"math/rand/v2"
	"testing"

	"repro/field"
)

func kernelRng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 7)) }

// randomDistinct returns m distinct random field elements.
func randomDistinct(r *rand.Rand, m int) []field.Element {
	seen := map[field.Element]bool{}
	out := make([]field.Element, 0, m)
	for len(out) < m {
		x := field.Random(r)
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// TestKernelDifferentialInterpolate pits Kernel.Interpolate against the
// retained naive poly.Interpolate on randomized inputs: the coefficient
// vectors must match exactly (field arithmetic is exact, so any
// accumulation order yields identical elements).
func TestKernelDifferentialInterpolate(t *testing.T) {
	r := kernelRng(1)
	for trial := 0; trial < 200; trial++ {
		m := 1 + r.IntN(12)
		xs := randomDistinct(r, m)
		ys := make([]field.Element, m)
		pts := make([]Point, m)
		for i := range ys {
			ys[i] = field.Random(r)
			pts[i] = Point{X: xs[i], Y: ys[i]}
		}
		k, err := NewKernel(xs)
		if err != nil {
			t.Fatalf("trial %d: NewKernel: %v", trial, err)
		}
		fast := k.Interpolate(ys)
		naive, err := Interpolate(pts)
		if err != nil {
			t.Fatalf("trial %d: Interpolate: %v", trial, err)
		}
		if len(fast.Coeffs) != len(naive.Coeffs) {
			t.Fatalf("trial %d: coefficient count %d != %d", trial, len(fast.Coeffs), len(naive.Coeffs))
		}
		for i := range fast.Coeffs {
			if fast.Coeffs[i] != naive.Coeffs[i] {
				t.Fatalf("trial %d: coeff %d: kernel %v, naive %v", trial, i, fast.Coeffs[i], naive.Coeffs[i])
			}
		}
	}
}

// TestKernelDifferentialCoeffs pits CoeffsAt against the retained naive
// LagrangeCoeffsAt, including evaluation points on the grid itself.
func TestKernelDifferentialCoeffs(t *testing.T) {
	r := kernelRng(2)
	for trial := 0; trial < 200; trial++ {
		m := 1 + r.IntN(12)
		xs := randomDistinct(r, m)
		k, err := NewKernel(xs)
		if err != nil {
			t.Fatalf("trial %d: NewKernel: %v", trial, err)
		}
		var x field.Element
		if trial%3 == 0 {
			x = xs[r.IntN(m)] // on-grid: must yield the indicator vector
		} else {
			x = field.Random(r)
		}
		fast := k.CoeffsAt(x)
		naive, err := LagrangeCoeffsAt(xs, x)
		if err != nil {
			t.Fatalf("trial %d: LagrangeCoeffsAt: %v", trial, err)
		}
		for i := range naive {
			if fast[i] != naive[i] {
				t.Fatalf("trial %d: coefficient %d at %v: kernel %v, naive %v", trial, i, x, fast[i], naive[i])
			}
		}
	}
}

// TestKernelDifferentialEvalAt pits EvalAt against the retained naive
// InterpolateAt on random polynomials evaluated off-grid.
func TestKernelDifferentialEvalAt(t *testing.T) {
	r := kernelRng(3)
	for trial := 0; trial < 200; trial++ {
		m := 1 + r.IntN(10)
		xs := randomDistinct(r, m)
		p := Random(r, m-1, field.Random(r))
		pts := make([]Point, m)
		ys := make([]field.Element, m)
		for i, x := range xs {
			ys[i] = p.Eval(x)
			pts[i] = Point{X: x, Y: ys[i]}
		}
		k, err := NewKernel(xs)
		if err != nil {
			t.Fatalf("trial %d: NewKernel: %v", trial, err)
		}
		x := field.Random(r)
		fast := k.EvalAt(ys, x)
		naive, err := InterpolateAt(pts, x)
		if err != nil {
			t.Fatalf("trial %d: InterpolateAt: %v", trial, err)
		}
		if fast != naive {
			t.Fatalf("trial %d: EvalAt %v, InterpolateAt %v", trial, fast, naive)
		}
		if want := p.Eval(x); fast != want {
			t.Fatalf("trial %d: EvalAt %v, direct %v", trial, fast, want)
		}
	}
}

// TestKernelDuplicatePoints mirrors the naive API's duplicate-point
// error.
func TestKernelDuplicatePoints(t *testing.T) {
	if _, err := NewKernel([]field.Element{1, 2, 1}); err == nil {
		t.Fatal("NewKernel accepted duplicate points")
	}
	if _, err := NewKernel(nil); err == nil {
		t.Fatal("NewKernel accepted an empty point set")
	}
}

// TestKernelCacheReuse checks that the cache hands back the identical
// kernel for the same point sequence and distinct kernels otherwise.
func TestKernelCacheReuse(t *testing.T) {
	c := NewKernelCache()
	a1, err := c.Alphas(4)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Alphas(4)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("cache rebuilt a kernel for the same point set")
	}
	b, err := c.Alphas(5)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == b {
		t.Fatal("cache conflated distinct point sets")
	}
	// Order matters: coefficients align with the caller's share order.
	rev, err := c.Get([]field.Element{Alpha(4), Alpha(3), Alpha(2), Alpha(1)})
	if err != nil {
		t.Fatal(err)
	}
	if rev == a1 {
		t.Fatal("cache conflated reversed point sequences")
	}
}

// TestKernelZeroAlloc guards the allocation-free contract of the hot
// kernel paths.
func TestKernelZeroAlloc(t *testing.T) {
	r := kernelRng(4)
	xs := randomDistinct(r, 8)
	ys := make([]field.Element, 8)
	for i := range ys {
		ys[i] = field.Random(r)
	}
	k, err := NewKernel(xs)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]field.Element, 8)
	x := field.Random(r)
	if n := testing.AllocsPerRun(100, func() { k.CoeffsAtInto(dst, x) }); n != 0 {
		t.Fatalf("CoeffsAtInto allocates %v times per run", n)
	}
	if n := testing.AllocsPerRun(100, func() { k.EvalAt(ys, x) }); n != 0 {
		t.Fatalf("EvalAt allocates %v times per run", n)
	}
	if n := testing.AllocsPerRun(100, func() { k.CoeffsAt(x) }); n != 0 {
		t.Fatalf("CoeffsAt allocates %v times per run", n)
	}
}

// BenchmarkKernelEvalAt measures the cached O(n) evaluation against the
// naive rebuild-everything path.
func BenchmarkKernelEvalAt(b *testing.B) {
	r := kernelRng(5)
	xs := randomDistinct(r, 9)
	ys := make([]field.Element, 9)
	pts := make([]Point, 9)
	for i := range ys {
		ys[i] = field.Random(r)
		pts[i] = Point{X: xs[i], Y: ys[i]}
	}
	x := field.Random(r)
	b.Run("kernel", func(b *testing.B) {
		k, err := NewKernel(xs)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.EvalAt(ys, x)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := InterpolateAt(pts, x); err != nil {
				b.Fatal(err)
			}
		}
	})
}
