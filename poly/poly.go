// Package poly implements univariate and symmetric bivariate polynomials
// over GF(2^61 - 1), together with the Lagrange-interpolation machinery
// used throughout the MPC protocols (d-sharing, OEC, triple
// transformation).
//
// The publicly known, distinct, non-zero evaluation points of the paper
// are fixed as α_i = i for party indices i ∈ {1..n} and β_j = n + j for
// the "fresh" extraction points (Sections 6.3, 6.4).
package poly

import (
	"fmt"
	"math/rand/v2"
	"slices"

	"repro/field"
)

// Alpha returns the public evaluation point α_i associated with party i.
// Party indices are 1-based, matching the paper.
func Alpha(i int) field.Element {
	if i <= 0 {
		panic(fmt.Sprintf("poly: Alpha index must be positive, got %d", i))
	}
	return field.New(uint64(i))
}

// Beta returns the j-th public "fresh" evaluation point β_j, distinct from
// all α_i for i ≤ n. Indices are 1-based.
func Beta(n, j int) field.Element {
	if j <= 0 {
		panic(fmt.Sprintf("poly: Beta index must be positive, got %d", j))
	}
	return field.New(uint64(n + j))
}

// Poly is a univariate polynomial stored as coefficients in ascending
// order: Coeffs[k] is the coefficient of x^k. The zero polynomial may be
// represented by an empty (or all-zero) coefficient slice.
type Poly struct {
	Coeffs []field.Element
}

// NewPoly returns a polynomial with the given ascending coefficients.
// The slice is copied.
func NewPoly(coeffs ...field.Element) Poly {
	return Poly{Coeffs: slices.Clone(coeffs)}
}

// Constant returns the degree-0 polynomial with value c.
func Constant(c field.Element) Poly {
	return Poly{Coeffs: []field.Element{c}}
}

// Random returns a uniformly random polynomial of degree at most d with
// the given constant term.
func Random(rng *rand.Rand, d int, constant field.Element) Poly {
	if d < 0 {
		panic("poly: negative degree")
	}
	coeffs := make([]field.Element, d+1)
	coeffs[0] = constant
	for k := 1; k <= d; k++ {
		coeffs[k] = field.Random(rng)
	}
	return Poly{Coeffs: coeffs}
}

// Degree returns the degree of p, with -1 for the zero polynomial.
func (p Poly) Degree() int {
	for k := len(p.Coeffs) - 1; k >= 0; k-- {
		if !p.Coeffs[k].IsZero() {
			return k
		}
	}
	return -1
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return p.Degree() == -1 }

// Eval evaluates p at x using Horner's rule with fused multiply-adds.
func (p Poly) Eval(x field.Element) field.Element {
	var acc field.Element
	for k := len(p.Coeffs) - 1; k >= 0; k-- {
		acc = p.Coeffs[k].MulAdd(acc, x)
	}
	return acc
}

// EvalMany evaluates p at every point in xs.
func (p Poly) EvalMany(xs []field.Element) []field.Element {
	out := make([]field.Element, len(xs))
	for i, x := range xs {
		out[i] = p.Eval(x)
	}
	return out
}

// Shares evaluates p at α_1..α_n, producing the n Shamir shares of the
// secret p(0).
func (p Poly) Shares(n int) []field.Element {
	out := make([]field.Element, n)
	for i := 1; i <= n; i++ {
		out[i-1] = p.Eval(Alpha(i))
	}
	return out
}

// Clone returns a deep copy of p.
func (p Poly) Clone() Poly { return Poly{Coeffs: slices.Clone(p.Coeffs)} }

// Trim returns p with trailing zero coefficients removed.
func (p Poly) Trim() Poly {
	d := p.Degree()
	return Poly{Coeffs: slices.Clone(p.Coeffs[:d+1])}
}

// Equal reports whether p and q are the same polynomial (ignoring
// trailing zeros).
func (p Poly) Equal(q Poly) bool {
	d := p.Degree()
	if d != q.Degree() {
		return false
	}
	for k := 0; k <= d; k++ {
		if p.Coeffs[k] != q.Coeffs[k] {
			return false
		}
	}
	return true
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := max(len(p.Coeffs), len(q.Coeffs))
	out := make([]field.Element, n)
	for k := range out {
		var a, b field.Element
		if k < len(p.Coeffs) {
			a = p.Coeffs[k]
		}
		if k < len(q.Coeffs) {
			b = q.Coeffs[k]
		}
		out[k] = a.Add(b)
	}
	return Poly{Coeffs: out}
}

// Sub returns p - q by direct element-wise subtraction.
func (p Poly) Sub(q Poly) Poly {
	n := max(len(p.Coeffs), len(q.Coeffs))
	out := make([]field.Element, n)
	for k := range out {
		var a, b field.Element
		if k < len(p.Coeffs) {
			a = p.Coeffs[k]
		}
		if k < len(q.Coeffs) {
			b = q.Coeffs[k]
		}
		out[k] = a.Sub(b)
	}
	return Poly{Coeffs: out}
}

// ScalarMul returns c·p.
func (p Poly) ScalarMul(c field.Element) Poly {
	out := make([]field.Element, len(p.Coeffs))
	for k, a := range p.Coeffs {
		out[k] = a.Mul(c)
	}
	return Poly{Coeffs: out}
}

// Mul returns the product polynomial p·q.
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return Poly{}
	}
	out := make([]field.Element, len(p.Coeffs)+len(q.Coeffs)-1)
	for i, a := range p.Coeffs {
		if a.IsZero() {
			continue
		}
		for j, b := range q.Coeffs {
			out[i+j] = out[i+j].Add(a.Mul(b))
		}
	}
	return Poly{Coeffs: out}
}

// Div returns the quotient p / q and reports whether the division is
// exact (zero remainder). q must be non-zero.
func (p Poly) Div(q Poly) (Poly, bool) {
	dq := q.Degree()
	if dq < 0 {
		panic("poly: division by zero polynomial")
	}
	rem := slices.Clone(p.Trim().Coeffs)
	dr := len(rem) - 1
	if dr < dq {
		return Poly{}, p.IsZero()
	}
	quot := make([]field.Element, dr-dq+1)
	lcInv := q.Coeffs[dq].MustInv()
	for dr >= dq {
		c := rem[dr].Mul(lcInv)
		quot[dr-dq] = c
		for k := 0; k <= dq; k++ {
			rem[dr-dq+k] = rem[dr-dq+k].Sub(c.Mul(q.Coeffs[k]))
		}
		dr--
		for dr >= 0 && rem[dr].IsZero() {
			dr--
		}
	}
	exact := dr < 0
	return Poly{Coeffs: quot}, exact
}

// Point is an evaluation point/value pair.
type Point struct {
	X field.Element
	Y field.Element
}

// Interpolate returns the unique polynomial of degree < len(points)
// passing through the given points. The X coordinates must be distinct.
func Interpolate(points []Point) (Poly, error) {
	n := len(points)
	if n == 0 {
		return Poly{}, nil
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if points[i].X == points[j].X {
				return Poly{}, fmt.Errorf("poly: duplicate interpolation point %v", points[i].X)
			}
		}
	}
	// Lagrange interpolation in coefficient form.
	result := make([]field.Element, n)
	// denom_i = Π_{j≠i} (x_i - x_j)
	denoms := make([]field.Element, n)
	for i := range points {
		d := field.One
		for j := range points {
			if j != i {
				d = d.Mul(points[i].X.Sub(points[j].X))
			}
		}
		denoms[i] = d
	}
	invDenoms, err := field.BatchInv(denoms)
	if err != nil {
		return Poly{}, fmt.Errorf("poly: interpolate: %w", err)
	}
	basis := make([]field.Element, 0, n)
	for i := range points {
		// Build numerator Π_{j≠i} (x - x_j) incrementally.
		basis = basis[:1]
		basis[0] = field.One
		for j := range points {
			if j == i {
				continue
			}
			basis = append(basis, 0)
			xj := points[j].X
			for k := len(basis) - 1; k >= 1; k-- {
				basis[k] = basis[k-1].Sub(basis[k].Mul(xj))
			}
			basis[0] = basis[0].Mul(xj).Neg()
		}
		scale := points[i].Y.Mul(invDenoms[i])
		for k := range basis {
			result[k] = result[k].Add(basis[k].Mul(scale))
		}
	}
	return Poly{Coeffs: result}, nil
}

// LagrangeCoeffsAt returns the coefficients c_1..c_m such that for any
// polynomial f of degree < m, f(x) = Σ c_i · f(xs[i]). This is the
// "Lagrange linear function" of the paper: evaluating a new point on a
// shared polynomial is the corresponding linear combination of shares.
func LagrangeCoeffsAt(xs []field.Element, x field.Element) ([]field.Element, error) {
	m := len(xs)
	coeffs := make([]field.Element, m)
	denoms := make([]field.Element, m)
	for i := range xs {
		d := field.One
		for j := range xs {
			if j != i {
				if xs[i] == xs[j] {
					return nil, fmt.Errorf("poly: duplicate basis point %v", xs[i])
				}
				d = d.Mul(xs[i].Sub(xs[j]))
			}
		}
		denoms[i] = d
	}
	invDenoms, err := field.BatchInv(denoms)
	if err != nil {
		return nil, fmt.Errorf("poly: lagrange coefficients: %w", err)
	}
	for i := range xs {
		num := field.One
		for j := range xs {
			if j != i {
				num = num.Mul(x.Sub(xs[j]))
			}
		}
		coeffs[i] = num.Mul(invDenoms[i])
	}
	return coeffs, nil
}

// InterpolateAt evaluates, at point x, the unique polynomial of degree
// < len(points) through the given points, without materialising its
// coefficients.
func InterpolateAt(points []Point, x field.Element) (field.Element, error) {
	xs := make([]field.Element, len(points))
	for i, p := range points {
		xs[i] = p.X
	}
	cs, err := LagrangeCoeffsAt(xs, x)
	if err != nil {
		return 0, err
	}
	var acc field.Element
	for i, c := range cs {
		acc = acc.Add(c.Mul(points[i].Y))
	}
	return acc, nil
}
