package poly

import (
	"fmt"
	"sync"

	"repro/field"
)

// Kernel is the precomputed Lagrange machinery for a fixed set of
// distinct evaluation points xs: the inverted denominators
// 1/Π_{j≠i}(x_i - x_j) (the barycentric weights) and the coefficient
// form of every Lagrange basis numerator Π_{j≠i}(x - x_j).
//
// The paper fixes the evaluation grid for a whole run (α_i = i,
// β_j = n+j), so the same point sets recur across protocol instances;
// building a Kernel once turns every later interpolation into a plain
// multiply-accumulate:
//
//   - CoeffsAt / EvalAt run in O(n) field operations via prefix/suffix
//     products, with no inversions and (for the Into/EvalAt forms) no
//     allocations;
//   - Interpolate runs in O(n²) multiply-accumulates with no inversions
//     and no basis rebuilding.
//
// The naive free functions (Interpolate, LagrangeCoeffsAt,
// InterpolateAt) are retained as the reference implementations; the
// differential tests in kernel_test.go pit the two against each other.
type Kernel struct {
	xs      []field.Element
	weights []field.Element // barycentric weights 1/Π_{j≠i}(x_i - x_j)
	basis   [][]field.Element
	// pre/suf are reusable scratch for CoeffsAt's prefix/suffix
	// products; vals is the reusable result buffer of CoeffsAt.
	pre, suf, vals []field.Element
}

// NewKernel builds the kernel for the given evaluation points, which
// must be distinct. The slice is copied.
func NewKernel(xs []field.Element) (*Kernel, error) {
	m := len(xs)
	if m == 0 {
		return nil, fmt.Errorf("poly: kernel needs at least one point")
	}
	k := &Kernel{
		xs:   append([]field.Element(nil), xs...),
		pre:  make([]field.Element, m),
		suf:  make([]field.Element, m),
		vals: make([]field.Element, m),
	}
	denoms := make([]field.Element, m)
	for i := range xs {
		d := field.One
		for j := range xs {
			if j != i {
				if xs[i] == xs[j] {
					return nil, fmt.Errorf("poly: duplicate kernel point %v", xs[i])
				}
				d = d.Mul(xs[i].Sub(xs[j]))
			}
		}
		denoms[i] = d
	}
	weights, err := field.BatchInv(denoms)
	if err != nil {
		return nil, fmt.Errorf("poly: kernel weights: %w", err)
	}
	k.weights = weights

	// Master numerator N(x) = Π_j (x - x_j), then each basis numerator
	// N_i = N / (x - x_i) by synthetic division: O(m) per basis, O(m²)
	// total, versus the naive per-call incremental rebuild.
	master := make([]field.Element, m+1)
	master[0] = field.One
	deg := 0
	for _, xj := range xs {
		master[deg+1] = master[deg]
		for t := deg; t >= 1; t-- {
			master[t] = master[t-1].Sub(master[t].Mul(xj))
		}
		master[0] = master[0].Mul(xj).Neg()
		deg++
	}
	k.basis = make([][]field.Element, m)
	flat := make([]field.Element, m*m) // one backing array for all bases
	for i, xi := range xs {
		bi := flat[i*m : (i+1)*m]
		// Divide master (monic, degree m) by (x - x_i): synthetic
		// division accumulating from the top coefficient down.
		acc := master[m]
		for t := m - 1; t >= 0; t-- {
			bi[t] = acc
			acc = master[t].MulAdd(acc, xi)
		}
		k.basis[i] = bi
	}
	return k, nil
}

// Len returns the number of kernel points.
func (k *Kernel) Len() int { return len(k.xs) }

// Points returns the kernel's evaluation points. Callers must not
// modify the returned slice.
func (k *Kernel) Points() []field.Element { return k.xs }

// CoeffsAtInto writes into dst the Lagrange coefficients c_1..c_m such
// that f(x) = Σ c_i · f(xs[i]) for any polynomial f of degree < m. dst
// must have length m. It performs no allocations and no inversions:
// c_i = w_i · Π_{j<i}(x - x_j) · Π_{j>i}(x - x_j) via prefix/suffix
// products, which also yields the exact indicator vector when x is one
// of the kernel points.
func (k *Kernel) CoeffsAtInto(dst []field.Element, x field.Element) {
	m := len(k.xs)
	if len(dst) != m {
		panic(fmt.Sprintf("poly: CoeffsAtInto dst length %d, want %d", len(dst), m))
	}
	acc := field.One
	for i := 0; i < m; i++ {
		k.pre[i] = acc
		acc = acc.Mul(x.Sub(k.xs[i]))
	}
	acc = field.One
	for i := m - 1; i >= 0; i-- {
		k.suf[i] = acc
		acc = acc.Mul(x.Sub(k.xs[i]))
	}
	for i := 0; i < m; i++ {
		dst[i] = k.weights[i].Mul(k.pre[i]).Mul(k.suf[i])
	}
}

// CoeffsAt returns the Lagrange coefficients at x in the kernel's
// internal buffer, which is overwritten by the next CoeffsAt/EvalAt
// call. Callers that retain the result must copy it.
func (k *Kernel) CoeffsAt(x field.Element) []field.Element {
	k.CoeffsAtInto(k.vals, x)
	return k.vals
}

// EvalAt evaluates, at x, the unique polynomial of degree < m through
// (xs[i], ys[i]): the dot product of the Lagrange coefficients with ys.
// It allocates nothing.
func (k *Kernel) EvalAt(ys []field.Element, x field.Element) field.Element {
	if len(ys) != len(k.xs) {
		panic(fmt.Sprintf("poly: EvalAt with %d values for %d points", len(ys), len(k.xs)))
	}
	k.CoeffsAtInto(k.vals, x)
	var acc field.Element
	for i, c := range k.vals {
		acc = acc.MulAdd(c, ys[i])
	}
	return acc
}

// Interpolate returns the unique polynomial of degree < m with
// p(xs[i]) = ys[i], by scaled accumulation of the precomputed basis
// numerators.
func (k *Kernel) Interpolate(ys []field.Element) Poly {
	m := len(k.xs)
	if len(ys) != m {
		panic(fmt.Sprintf("poly: Interpolate with %d values for %d points", len(ys), m))
	}
	out := make([]field.Element, m)
	for i := range ys {
		field.AddScaled(out, k.basis[i], ys[i].Mul(k.weights[i]))
	}
	return Poly{Coeffs: out}
}

// clone returns a kernel sharing the receiver's immutable tables (xs,
// weights, basis — never written after NewKernel) with private scratch
// buffers, so several goroutines can each own a clone of one master
// kernel and interpolate concurrently.
func (k *Kernel) clone() *Kernel {
	m := len(k.xs)
	return &Kernel{
		xs:      k.xs,
		weights: k.weights,
		basis:   k.basis,
		pre:     make([]field.Element, m),
		suf:     make([]field.Element, m),
		vals:    make([]field.Element, m),
	}
}

// KernelRegistry is the world-wide master store of kernels: one
// mutex-guarded build per distinct point set for the lifetime of a
// World, shared across parties, epochs and background refills. Parties
// do not interpolate on the masters directly — a Kernel carries mutable
// scratch — they hold per-party KernelCaches (NewCache) of clones that
// share the masters' O(m²) precomputed tables.
type KernelRegistry struct {
	mu      sync.Mutex
	kernels map[string]*Kernel
}

// NewKernelRegistry returns an empty registry.
func NewKernelRegistry() *KernelRegistry {
	return &KernelRegistry{kernels: make(map[string]*Kernel)}
}

// get returns the master kernel for the point set, building it on first
// use. Safe for concurrent callers.
func (r *KernelRegistry) get(key string, xs []field.Element) (*Kernel, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.kernels[key]; ok {
		return k, nil
	}
	k, err := NewKernel(xs)
	if err != nil {
		return nil, err
	}
	r.kernels[key] = k
	return k, nil
}

// NewCache returns a per-party cache backed by this registry: local
// lookups are map probes with no locking, misses take the registry
// mutex once and clone the master (sharing its precomputed tables).
func (r *KernelRegistry) NewCache() *KernelCache {
	return &KernelCache{kernels: make(map[string]*Kernel), reg: r}
}

// KernelCache memoises kernels per evaluation-point set. Protocol runs
// interpolate over the same few grids (prefixes of α_1..α_n, provider
// subsets) thousands of times; the cache makes every instance after the
// first hit the precomputed path. A cache is single-goroutine — one
// party owns it — but caches created from a KernelRegistry share the
// masters' precomputed tables, so the O(m²) build cost is paid once per
// World rather than once per party.
type KernelCache struct {
	kernels map[string]*Kernel
	reg     *KernelRegistry // nil: standalone cache, builds its own kernels
}

// NewKernelCache returns an empty standalone cache.
func NewKernelCache() *KernelCache {
	return &KernelCache{kernels: make(map[string]*Kernel)}
}

// Get returns the kernel for the given point set, building and caching
// it on first use. The key is the exact point sequence (order matters:
// coefficients align with the caller's share order).
func (c *KernelCache) Get(xs []field.Element) (*Kernel, error) {
	key := make([]byte, 0, 8*len(xs))
	for _, x := range xs {
		key = x.AppendBytes(key)
	}
	if k, ok := c.kernels[string(key)]; ok {
		return k, nil
	}
	var k *Kernel
	var err error
	if c.reg != nil {
		var master *Kernel
		master, err = c.reg.get(string(key), xs)
		if err == nil {
			k = master.clone()
		}
	} else {
		k, err = NewKernel(xs)
	}
	if err != nil {
		return nil, err
	}
	c.kernels[string(key)] = k
	return k, nil
}

// Alphas returns the kernel over the first m party points α_1..α_m.
func (c *KernelCache) Alphas(m int) (*Kernel, error) {
	xs := make([]field.Element, m)
	for i := range xs {
		xs[i] = Alpha(i + 1)
	}
	return c.Get(xs)
}
