// Command fallback demonstrates the paper's headline comparison for
// n = 8 (Section 1): a single best-of-both-worlds protocol tolerates
// ts = 2 faults on a synchronous network and ta = 1 fault on an
// asynchronous one, whereas
//
//   - a purely synchronous protocol (fallback paths disabled — the
//     "existing SMPC" baseline) can lose liveness under asynchrony, and
//   - a purely asynchronous protocol must set t < n/4, i.e. tolerates
//     only 1 fault even when the network happens to be synchronous.
//
// The asynchronous-baseline row is modelled by running the engine with
// ts = ta = 1: the AMPC resilience envelope.
package main

import (
	"fmt"

	"repro/circuit"
	"repro/field"
	"repro/mpc"
)

func run(name string, cfg mpc.Config, faults []int, starve bool) {
	inputs := make([]field.Element, 8)
	for i := range inputs {
		inputs[i] = field.New(uint64(10 * (i + 1)))
	}
	adv := &mpc.Adversary{Garble: faults}
	if starve {
		adv.StarveFrom = []int{8}
		adv.StarveUntil = 6000
	}
	if len(faults) > max(cfg.Ts, cfg.Ta) {
		fmt.Printf("%-34s | %-5s | %d faults | NOT TOLERATED (exceeds threshold)\n",
			name, cfg.Network, len(faults))
		return
	}
	cfg.EventLimit = 50_000_000
	res, err := mpc.Run(cfg, circuit.Sum(8), inputs, adv)
	if err != nil {
		fmt.Printf("%-34s | %-5s | %d faults | FAILED: %v\n", name, cfg.Network, len(faults), err)
		return
	}
	want, _ := mpc.ExpectedOutputs(circuit.Sum(8), inputs, res.CS)
	status := "OK"
	if res.Outputs[0] != want[0] {
		status = "WRONG OUTPUT"
	}
	fmt.Printf("%-34s | %-5s | %d faults | %s (Σ=%v, |CS|=%d)\n",
		name, cfg.Network, len(faults), status, res.Outputs[0], len(res.CS))
}

func main() {
	bobw := func(net mpc.Network) mpc.Config {
		return mpc.Config{N: 8, Ts: 2, Ta: 1, Network: net, Seed: 5}
	}
	ampc := func(net mpc.Network) mpc.Config {
		return mpc.Config{N: 8, Ts: 1, Ta: 1, Network: net, Seed: 5}
	}
	smpc := func(net mpc.Network) mpc.Config {
		c := bobw(net)
		c.SyncOnly = true
		return c
	}

	fmt.Println("n = 8 — who survives what (paper §1, reproduced):")
	fmt.Println()
	run("best-of-both-worlds (ts=2, ta=1)", bobw(mpc.Sync), []int{2, 5}, false)
	run("best-of-both-worlds (ts=2, ta=1)", bobw(mpc.Async), []int{2}, true)
	run("sync-only baseline  (SMPC-style)", smpc(mpc.Sync), []int{2, 5}, false)
	run("sync-only baseline  (SMPC-style)", smpc(mpc.Async), []int{2}, true)
	run("async-only envelope (t<n/4)", ampc(mpc.Sync), []int{2, 5}, false)
	run("async-only envelope (t<n/4)", ampc(mpc.Async), []int{2}, true)
	fmt.Println()
	fmt.Println("Only the best-of-both-worlds protocol handles both rows of its column.")
}
