// Command beacon implements a distributed randomness beacon on top of
// the MPC engine: every party contributes a private random value and
// the beacon output is their sum. As long as at least one contributor
// is honest (and the protocol guarantees |CS| ≥ n - ts contributors),
// the output is uniformly random and unbiased — the adversary fixes
// its contributions *before* learning anything about honest ones,
// because inputs are verifiably secret-shared before any opening.
//
// The beacon runs over an asynchronous network with one Byzantine
// party, producing a fresh value per epoch.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"repro/circuit"
	"repro/field"
	"repro/mpc"
)

func main() {
	const n = 8
	cfg := mpc.Config{N: n, Ts: 2, Ta: 1, Network: mpc.Async}
	adv := &mpc.Adversary{Garble: []int{2}}

	fmt.Println("epoch | beacon output (GF(2^61-1))      | contributors")
	for epoch := uint64(1); epoch <= 5; epoch++ {
		// Each party draws its contribution from its own entropy; the
		// simulation models this with per-party seeded streams.
		inputs := make([]field.Element, n)
		for i := range inputs {
			r := rand.New(rand.NewPCG(epoch, uint64(i)*0x9e3779b97f4a7c15))
			inputs[i] = field.Random(r)
		}
		cfg.Seed = epoch
		res, err := mpc.Run(cfg, circuit.Sum(n), inputs, adv)
		if err != nil {
			log.Fatalf("epoch %d: %v", epoch, err)
		}
		fmt.Printf("%5d | %-32v | %d/%d\n", epoch, res.Outputs[0], len(res.CS), n)
	}
	fmt.Println("\nEach value is the sum of ≥ n - ts secret contributions — unbiased while any one is honest.")
}
