// Command setmembership runs private set membership: party 1 holds a
// query element, parties 2..n each hold one element of a blocklist,
// and the parties jointly learn only whether the query is on the list
// — the product Π(e - s_j) is zero exactly for members, and for
// non-members it reveals nothing beyond non-membership because every
// honest run re-randomises the Beaver triples.
//
// This run happens over an *asynchronous* network with one corrupt
// list holder, exercising the fallback half of the protocol.
package main

import (
	"fmt"
	"log"

	"repro/circuit"
	"repro/field"
	"repro/mpc"
)

func main() {
	const n = 8
	blocklist := []uint64{7781, 1234, 9999, 4242, 1337, 8080, 5555}

	for _, query := range []uint64{4242, 4243} {
		inputs := make([]field.Element, n)
		inputs[0] = field.New(query)
		for i, s := range blocklist {
			inputs[i+1] = field.New(s)
		}

		cfg := mpc.Config{N: n, Ts: 2, Ta: 1, Network: mpc.Async, Seed: 99}
		adv := &mpc.Adversary{Garble: []int{8}} // holder of the last shard is Byzantine
		res, err := mpc.Run(cfg, circuit.SetMembership(n), inputs, adv)
		if err != nil {
			log.Fatal(err)
		}

		// Under asynchrony up to ta input providers may be excluded
		// (|CS| ≥ n - ts); the verdict is valid for the included list
		// shards.
		verdict := "NOT on the list"
		if res.Outputs[0].IsZero() {
			verdict = "ON the list"
		}
		fmt.Printf("query %d: %s (checked %d of %d shards, async network, 1 Byzantine holder)\n",
			query, verdict, len(res.CS)-1, len(blocklist))
	}
}
