// Command quickstart is the five-minute tour of the library: eight
// parties jointly compute the sum and the product of their private
// inputs, first over a synchronous network tolerating ts = 2 Byzantine
// parties, then over an asynchronous network tolerating ta = 1 — with
// the *same* protocol, which is the paper's contribution.
package main

import (
	"fmt"
	"log"

	"repro/circuit"
	"repro/field"
	"repro/mpc"
)

func main() {
	inputs := make([]field.Element, 8)
	for i := range inputs {
		inputs[i] = field.New(uint64(i + 1)) // party i's secret: i+1
	}

	for _, network := range []mpc.Network{mpc.Sync, mpc.Async} {
		cfg := mpc.Config{
			N: 8, Ts: 2, Ta: 1, // 3·ts + ta = 7 < 8
			Network: network,
			Seed:    42,
		}

		sum, err := mpc.Run(cfg, circuit.Sum(8), inputs, nil)
		if err != nil {
			log.Fatalf("%v run failed: %v", network, err)
		}
		prod, err := mpc.Run(cfg, circuit.Product(8), inputs, nil)
		if err != nil {
			log.Fatalf("%v run failed: %v", network, err)
		}

		fmt.Printf("network=%-5s  Σx=%v  Πx=%v  |CS|=%d  honest traffic: %d msgs / %d bytes\n",
			network, sum.Outputs[0], prod.Outputs[0], len(prod.CS),
			prod.HonestMessages, prod.HonestBytes)
	}
	fmt.Println("\nSame binary, same protocol, both network types — that is the best-of-both-worlds guarantee.")
}
