// Command statistics runs the "federated statistics" scenario from the
// paper's motivation: n hospitals hold a private measurement each and
// want the cohort mean and variance without a trusted aggregator —
// and without knowing whether their WAN behaves synchronously today.
//
// The circuit reveals only Σx and Σx²; mean and variance are public
// functions of those aggregates and the public cohort size. One of the
// hospitals is Byzantine and sends garbage; the computation still
// completes and stays correct.
package main

import (
	"fmt"
	"log"

	"repro/circuit"
	"repro/field"
	"repro/mpc"
)

func main() {
	// Eight hospitals; measurements in some clinical unit.
	readings := []uint64{142, 155, 138, 149, 151, 144, 160, 147}
	inputs := make([]field.Element, len(readings))
	for i, r := range readings {
		inputs[i] = field.New(r)
	}

	cfg := mpc.Config{N: 8, Ts: 2, Ta: 1, Network: mpc.Sync, Seed: 7}
	adv := &mpc.Adversary{Garble: []int{6}} // hospital 6 is compromised

	res, err := mpc.Run(cfg, circuit.SumAndVariancePieces(8), inputs, adv)
	if err != nil {
		log.Fatal(err)
	}

	sum := res.Outputs[0].Uint64()
	sumSq := res.Outputs[1].Uint64()
	n := uint64(len(res.CS)) // inputs that entered the computation
	// In a synchronous run every honest hospital is in CS; the corrupt
	// one may or may not be. Mean/variance are computed in the clear
	// from the two public aggregates (×1000 fixed point for display).
	mean1000 := sum * 1000 / n
	var1000 := (sumSq*1000/n - sum*sum*1000/(n*n))

	fmt.Printf("cohort size (inputs counted): %d of %d\n", n, len(readings))
	fmt.Printf("Σx   = %d\n", sum)
	fmt.Printf("Σx²  = %d\n", sumSq)
	fmt.Printf("mean ≈ %d.%03d\n", mean1000/1000, mean1000%1000)
	fmt.Printf("var  ≈ %d.%03d\n", var1000/1000, var1000%1000)
	fmt.Printf("protocol terminated at tick %d (bound %d); honest traffic %d msgs\n",
		maxTime(res.TerminatedAt), res.Deadline, res.HonestMessages)
}

func maxTime(ts []int64) int64 {
	var m int64
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}
