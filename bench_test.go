// Benchmarks regenerating the experiment rows of DESIGN.md's index
// (E1..E13), one Benchmark per table. Custom metrics report the
// figures EXPERIMENTS.md compares against the paper's bounds:
//
//	bytes/op    honest-party bytes for one protocol run
//	msgs/op     honest-party messages
//	vticks/op   virtual termination time of the last honest party
//	bound       the derived synchronous deadline
//
// Absolute wall-clock ns/op measures the *simulator*, not the
// protocol; the virtual-time and traffic metrics are the reproduction
// targets.
package repro

import (
	"fmt"
	"testing"

	"repro/circuit"
	"repro/internal/bench"
	"repro/mpc"
)

func report(b *testing.B, m bench.Measure) {
	b.Helper()
	if !m.OK {
		b.Fatalf("experiment invariant violated: %+v", m)
	}
	b.ReportMetric(float64(m.HonestBytes), "bytes/op")
	b.ReportMetric(float64(m.HonestMsgs), "msgs/op")
	b.ReportMetric(float64(m.LastOutput), "vticks/op")
	b.ReportMetric(float64(m.Bound), "bound")
}

// E1 — Lemma 2.4: Acast O(n²ℓ) bits, 3Δ liveness.
func BenchmarkE1Acast(b *testing.B) {
	for _, n := range []int{5, 8, 13} {
		for _, l := range []int{8, 256} {
			b.Run(fmt.Sprintf("n%d/l%d", n, l), func(b *testing.B) {
				var m bench.Measure
				for i := 0; i < b.N; i++ {
					m = bench.E1Acast(n, l, uint64(i))
				}
				report(b, m)
			})
		}
	}
}

// E2/E4 — Lemma 3.2 + Theorem 3.5: ΠBC regular-mode output at TBC.
func BenchmarkE4BC(b *testing.B) {
	for _, n := range []int{5, 8, 13} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var m bench.Measure
			for i := 0; i < b.N; i++ {
				m = bench.E4BC(n, 32, uint64(i))
			}
			report(b, m)
		})
	}
}

// E3/E5 — Lemma 3.3 + Theorem 3.6: ΠBA within TBA on unanimous inputs.
func BenchmarkE5BA(b *testing.B) {
	for _, n := range []int{5, 8, 13} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var m bench.Measure
			for i := 0; i < b.N; i++ {
				m = bench.E5BA(n, uint64(i))
			}
			report(b, m)
		})
	}
}

// E6 — Theorem 4.8: ΠWPS, O((n²L + n⁴) log|F|) bits.
func BenchmarkE6WPS(b *testing.B) {
	for _, l := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("n8/L%d", l), func(b *testing.B) {
			var m bench.Measure
			for i := 0; i < b.N; i++ {
				m = bench.E6WPS(bench.Config8(), l, uint64(i))
			}
			report(b, m)
		})
	}
}

// E7 — Theorem 4.16: ΠVSS, O((n³L + n⁵) log|F|) bits.
func BenchmarkE7VSS(b *testing.B) {
	for _, l := range []int{1, 8} {
		b.Run(fmt.Sprintf("n8/L%d", l), func(b *testing.B) {
			var m bench.Measure
			for i := 0; i < b.N; i++ {
				m = bench.E7VSS(bench.Config8(), l, uint64(i))
			}
			report(b, m)
		})
	}
}

// E8 — Lemma 5.1: ΠACS, O((n⁴L + n⁶) log|F|) bits, TACS.
func BenchmarkE8ACS(b *testing.B) {
	b.Run("n5/L1", func(b *testing.B) {
		var m bench.Measure
		for i := 0; i < b.N; i++ {
			m = bench.E8ACS(bench.Config5(), 1, uint64(i))
		}
		report(b, m)
	})
	b.Run("n8/L1", func(b *testing.B) {
		var m bench.Measure
		for i := 0; i < b.N; i++ {
			m = bench.E8ACS(bench.Config8(), 1, uint64(i))
		}
		report(b, m)
	})
}

// E9 — Lemma 6.1: ΠBeaver, O(n² log|F|) bits, Δ time.
func BenchmarkE9Beaver(b *testing.B) {
	for _, n := range []int{5, 8, 13} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var m bench.Measure
			for i := 0; i < b.N; i++ {
				m = bench.E9Beaver(bench.ConfigN(n), uint64(i))
			}
			report(b, m)
		})
	}
}

// E10 — Theorem 6.5: ΠPreProcessing, cM triples by TTripGen.
func BenchmarkE10Preprocessing(b *testing.B) {
	for _, cm := range []int{1, 4} {
		b.Run(fmt.Sprintf("n5/cM%d", cm), func(b *testing.B) {
			var m bench.Measure
			for i := 0; i < b.N; i++ {
				m = bench.E10Preprocessing(bench.Config5(), cm, uint64(i))
			}
			report(b, m)
		})
	}
}

// E11 — Theorem 7.1: full ΠCirEval, both networks.
func BenchmarkE11CirEval(b *testing.B) {
	circs := []struct {
		name string
		c    *circuit.Circuit
	}{
		{"sum", circuit.Sum(5)},
		{"product", circuit.Product(5)},
	}
	for _, cc := range circs {
		for _, net := range []mpc.Network{mpc.Sync, mpc.Async} {
			b.Run(fmt.Sprintf("%s/%s", cc.name, net), func(b *testing.B) {
				var m bench.Measure
				for i := 0; i < b.N; i++ {
					m = bench.E11CirEval(bench.Config5(), cc.c, net, uint64(i))
				}
				report(b, m)
			})
		}
	}
}

// E13 — the online phase in isolation (trusted-dealer setup): the
// layer-batched evaluator against the per-gate reference on the
// depth-heavy 8×8 multiplication grid (cM=64, DM=8). msgs/op is the
// headline: per-layer batching sends (DM+2)·n² honest messages where
// the reference sends (cM+2)·n².
func BenchmarkE13Online(b *testing.B) {
	circ := bench.MulDeepCircuit()
	for _, mode := range []struct {
		name    string
		perGate bool
	}{{"layered", false}, {"per-gate", true}} {
		b.Run(fmt.Sprintf("grid8x8/%s", mode.name), func(b *testing.B) {
			var m bench.Measure
			for i := 0; i < b.N; i++ {
				m = bench.E13Online(bench.Config8(), circ, mode.perGate, uint64(i))
			}
			report(b, m)
		})
	}
}

// E12 — the §1 headline matrix: BoBW survives both columns; the
// baselines each lose one.
func BenchmarkE12Matrix(b *testing.B) {
	type cell struct {
		mode    bench.MatrixMode
		net     mpc.Network
		faults  int
		wantOK  bool
		wantTol bool
	}
	cells := []cell{
		{bench.ModeBoBW, mpc.Sync, 2, true, true},
		{bench.ModeBoBW, mpc.Async, 1, true, true},
		{bench.ModeSyncOnly, mpc.Sync, 2, true, true},
		{bench.ModeSyncOnly, mpc.Async, 1, false, true},  // loses liveness
		{bench.ModeAsyncOnly, mpc.Sync, 2, false, false}, // beyond t<n/4
		{bench.ModeAsyncOnly, mpc.Async, 1, true, true},
	}
	for _, c := range cells {
		b.Run(fmt.Sprintf("%s/%s/f%d", c.mode, c.net, c.faults), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, tol := bench.E12Matrix(c.mode, c.net, c.faults, 10)
				if tol != c.wantTol || (tol && ok != c.wantOK) {
					b.Fatalf("matrix cell %+v: ok=%v tol=%v", c, ok, tol)
				}
			}
		})
	}
}

// A2 ablation — ABA coin source: deterministic-first-coins vs ideal
// common coin only; measured as ΠBA virtual time (the coin schedule
// shows up as TABA variance on unanimous inputs).
func BenchmarkA2CoinAblation(b *testing.B) {
	b.Run("scheduled-coin", func(b *testing.B) {
		var m bench.Measure
		for i := 0; i < b.N; i++ {
			m = bench.E5BA(8, uint64(i))
		}
		report(b, m)
	})
}
