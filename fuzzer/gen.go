package fuzzer

import (
	"fmt"
	"math/rand/v2"

	"repro/scenario"
)

// Generate derives trial number index of a fuzzing campaign keyed by
// masterSeed: a complete scenario manifest with random resilience
// parameters, network model (including starvation and burst-outage
// delivery schedules), circuit (mostly the generated "random" family,
// the rest drawn from the named gadget catalogue) and adversary
// strategy within the network's corruption budget. The result is a
// pure function of (masterSeed, index), which is what makes a fuzzing
// campaign a replayable space rather than a one-off random walk.
func Generate(masterSeed uint64, index int) *scenario.Manifest {
	rng := rand.New(rand.NewPCG(masterSeed, splitmix(uint64(index))))
	m := &scenario.Manifest{
		Name:       fmt.Sprintf("fuzz-s%d-t%d", masterSeed, index),
		Seed:       rng.Uint64N(1_000_000),
		EventLimit: trialEventLimit,
		Expect:     scenario.Expect{Consistent: true},
	}
	m.Parties = genParties(rng)
	m.Network = genNetwork(rng)
	m.Circuit = genCircuit(rng, m.Parties.N)
	if rng.IntN(100) < 40 {
		m.Inputs = make([]uint64, m.Parties.N)
		for i := range m.Inputs {
			m.Inputs[i] = rng.Uint64N(1000)
		}
	}
	m.Adversary = genAdversary(rng, m.Parties, m.Network)
	return m
}

// trialEventLimit caps each trial's scheduler events so a liveness bug
// surfaces as a termination-oracle violation instead of a hang.
const trialEventLimit = 50_000_000

// splitmix is the SplitMix64 finalizer: it spreads consecutive trial
// indices over the whole seed space so PCG streams do not correlate.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// partyConfigs is the weighted space of resilience parameters, every
// entry satisfying 3·Ts + Ta < N. Small N dominates to keep a trial
// cheap; the flagship and boundary configurations stay in the mix.
var partyConfigs = []struct {
	p scenario.Parties
	w int
}{
	{scenario.Parties{N: 5, Ts: 1, Ta: 1}, 6},
	{scenario.Parties{N: 6, Ts: 1, Ta: 1}, 3},
	{scenario.Parties{N: 7, Ts: 1, Ta: 1}, 2},
	{scenario.Parties{N: 7, Ts: 2, Ta: 0}, 1},
	{scenario.Parties{N: 8, Ts: 2, Ta: 1}, 1},
	{scenario.Parties{N: 9, Ts: 2, Ta: 2}, 1},
}

func genParties(rng *rand.Rand) scenario.Parties {
	total := 0
	for _, c := range partyConfigs {
		total += c.w
	}
	k := rng.IntN(total)
	for _, c := range partyConfigs {
		if k < c.w {
			return c.p
		}
		k -= c.w
	}
	panic("unreachable")
}

func genNetwork(rng *rand.Rand) scenario.NetworkSpec {
	net := scenario.NetworkSpec{Kind: "sync", Delta: 10}
	if rng.IntN(100) < 45 {
		net.Kind = "async"
	}
	if rng.IntN(100) < 30 {
		net.Delta = 4 + int64(rng.IntN(17)) // 4..20
	}
	if net.Kind == "async" {
		if rng.IntN(100) < 40 {
			net.Tail = []float64{0.1, 0.2, 0.3, 0.4, 0.5}[rng.IntN(5)]
		}
		if rng.IntN(100) < 20 {
			net.BurstPeriod = []int64{200, 300, 400, 600, 800}[rng.IntN(5)]
			net.BurstDown = net.BurstPeriod / int64(2+rng.IntN(3)) // 1/2..1/4
		}
	}
	return net
}

func genCircuit(rng *rand.Rand, n int) scenario.CircuitSpec {
	if rng.IntN(100) < 65 {
		return scenario.CircuitSpec{
			Family: "random",
			Layers: 1 + rng.IntN(4),
			Width:  1 + rng.IntN(5),
			MulPct: 10 * rng.IntN(7), // 0..60
			Outs:   1 + rng.IntN(3),
			// A small seed keeps emitted manifests readable; the space
			// is still 2^32 circuits per shape.
			GenSeed: rng.Uint64N(1 << 32),
		}
	}
	families := []string{"sum", "product", "stats", "membership", "depth", "polyeval"}
	if n%2 == 0 {
		families = append(families, "dot")
	}
	if n == 8 {
		families = append(families, "matmul")
	}
	spec := scenario.CircuitSpec{Family: families[rng.IntN(len(families))]}
	switch spec.Family {
	case "depth":
		spec.Depth = 1 + rng.IntN(4)
	case "polyeval":
		spec.Coeffs = make([]uint64, 2+rng.IntN(3))
		for i := range spec.Coeffs {
			spec.Coeffs[i] = rng.Uint64N(100)
		}
	}
	return spec
}

// dropSubs and delaySubs are the instance-path substrings targeted
// corruption draws from: the input-ACS, preprocessing, output and
// per-layer Beaver phases of the top-level run plus the inner VSS,
// Acast and BA building blocks ("" in delaySubs delays everything).
var (
	dropSubs  = []string{"mpc/in", "mpc/pp", "mpc/out", "mpc/lay", "vss", "acast", "ba"}
	delaySubs = []string{"", "mpc/in", "mpc/pp", "mpc/out", "vss", "acast"}
)

// genAdversary composes a random corruption strategy within the
// network's corruption budget (Ts under sync, Ta under async — the
// budget the paper's guarantees are quantified over), plus, under
// asynchrony, adversarial link starvation (which corrupts no one).
func genAdversary(rng *rand.Rand, p scenario.Parties, net scenario.NetworkSpec) scenario.AdversarySpec {
	var a scenario.AdversarySpec
	budget := NetworkBudget(p, net.Kind)
	count := 0
	if budget > 0 {
		count = rng.IntN(budget + 1)
	}
	perm := rng.Perm(p.N)
	for i := 0; i < count; i++ {
		party := perm[i] + 1
		switch rng.IntN(7) {
		case 0:
			a.Passive = append(a.Passive, party)
		case 1:
			a.Silent = append(a.Silent, party)
		case 2:
			a.Garble = append(a.Garble, party)
		case 3:
			if a.CrashAt == nil {
				a.CrashAt = map[int]int64{}
			}
			a.CrashAt[party] = 10 + int64(rng.IntN(400))
		case 4:
			if a.Drop == nil {
				a.Drop = map[int]string{}
			}
			a.Drop[party] = dropSubs[rng.IntN(len(dropSubs))]
		case 5:
			if a.Delay == nil {
				a.Delay = map[int]scenario.DelayRule{}
			}
			a.Delay[party] = scenario.DelayRule{
				Match: delaySubs[rng.IntN(len(delaySubs))],
				Extra: 20 + int64(rng.IntN(300)),
			}
		case 6:
			a.Equivocate = append(a.Equivocate, party)
		}
	}
	if net.Kind == "async" && rng.IntN(100) < 30 {
		a.StarveFrom = []int{1 + rng.IntN(p.N)}
		a.StarveUntil = int64(1000 * (1 + rng.IntN(5)))
	}
	return a
}

// NetworkBudget is the corruption budget the paper's guarantees are
// quantified over for the manifest's network: Ts under synchrony, Ta
// under asynchrony. (Manifest validation is laxer — it allows
// max(Ts, Ta) either way — because negative-control scenarios want to
// express over-budget-for-this-network runs.)
func NetworkBudget(p scenario.Parties, kind string) int {
	if kind == "async" {
		return p.Ta
	}
	return p.Ts
}
