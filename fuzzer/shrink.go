package fuzzer

import (
	"sort"

	"repro/scenario"
)

// Shrink greedily minimizes a failing manifest while preserving the
// primary oracle violation: it repeatedly tries the candidate
// reductions in order (aggressive first — drop the whole adversary,
// collapse the circuit — then entry-by-entry), keeps the first
// candidate that still violates the same oracle, and restarts until no
// reduction survives or maxRuns oracle evaluations are spent. The
// result is the minimized manifest and the number of Check runs used.
//
// Shrinking is deterministic: candidates are enumerated in a fixed
// order and every Check is a pure function of its manifest, so the same
// failing trial always minimizes to the same counterexample.
func Shrink(m *scenario.Manifest, primary string, maxRuns int) (*scenario.Manifest, int) {
	if maxRuns <= 0 {
		maxRuns = 200
	}
	cur := clone(m)
	runs := 0
	for {
		reduced := false
		for _, cand := range candidates(cur) {
			if runs >= maxRuns {
				return cur, runs
			}
			runs++
			if hasOracle(Check(cand), primary) {
				cur = cand
				reduced = true
				break
			}
		}
		if !reduced {
			return cur, runs
		}
	}
}

func hasOracle(v *Verdict, oracle string) bool {
	for _, viol := range v.Violations {
		if viol.Oracle == oracle {
			return true
		}
	}
	return false
}

// candidates enumerates the one-step reductions of m, most aggressive
// first. Every candidate is a deep copy; m is never mutated.
func candidates(m *scenario.Manifest) []*scenario.Manifest {
	var out []*scenario.Manifest
	try := func(mutate func(*scenario.Manifest) bool) {
		c := clone(m)
		if mutate(c) {
			out = append(out, c)
		}
	}

	// Whole-component reductions.
	try(func(c *scenario.Manifest) bool {
		if c.Adversary.IsZero() {
			return false
		}
		c.Adversary = scenario.AdversarySpec{}
		return true
	})
	try(func(c *scenario.Manifest) bool {
		if c.Circuit.Family == "sum" {
			return false
		}
		c.Circuit = scenario.CircuitSpec{Family: "sum"}
		return true
	})
	try(func(c *scenario.Manifest) bool {
		if c.Inputs == nil {
			return false
		}
		c.Inputs = nil
		return true
	})

	// Network simplifications.
	try(func(c *scenario.Manifest) bool {
		if c.Network.BurstPeriod == 0 {
			return false
		}
		c.Network.BurstPeriod, c.Network.BurstDown = 0, 0
		return true
	})
	try(func(c *scenario.Manifest) bool {
		if c.Network.Tail == 0 {
			return false
		}
		c.Network.Tail = 0
		return true
	})
	try(func(c *scenario.Manifest) bool {
		if c.Network.Delta == 10 {
			return false
		}
		c.Network.Delta = 10
		return true
	})

	// Adversary entry-by-entry reductions.
	a := m.Adversary
	removeFrom := func(field func(*scenario.AdversarySpec) *[]int, i int) {
		try(func(c *scenario.Manifest) bool {
			ps := field(&c.Adversary)
			*ps = append(append([]int(nil), (*ps)[:i]...), (*ps)[i+1:]...)
			return true
		})
	}
	for i := range a.Passive {
		removeFrom(func(s *scenario.AdversarySpec) *[]int { return &s.Passive }, i)
	}
	for i := range a.Silent {
		removeFrom(func(s *scenario.AdversarySpec) *[]int { return &s.Silent }, i)
	}
	for i := range a.Garble {
		removeFrom(func(s *scenario.AdversarySpec) *[]int { return &s.Garble }, i)
	}
	for i := range a.Equivocate {
		removeFrom(func(s *scenario.AdversarySpec) *[]int { return &s.Equivocate }, i)
	}
	for _, p := range sortedMapKeys(a.CrashAt) {
		p := p
		try(func(c *scenario.Manifest) bool {
			delete(c.Adversary.CrashAt, p)
			if len(c.Adversary.CrashAt) == 0 {
				c.Adversary.CrashAt = nil
			}
			return true
		})
	}
	for _, p := range sortedMapKeys(a.Drop) {
		p := p
		try(func(c *scenario.Manifest) bool {
			delete(c.Adversary.Drop, p)
			if len(c.Adversary.Drop) == 0 {
				c.Adversary.Drop = nil
			}
			return true
		})
	}
	for _, p := range sortedMapKeys(a.Delay) {
		p := p
		try(func(c *scenario.Manifest) bool {
			delete(c.Adversary.Delay, p)
			if len(c.Adversary.Delay) == 0 {
				c.Adversary.Delay = nil
			}
			return true
		})
	}
	try(func(c *scenario.Manifest) bool {
		if len(c.Adversary.StarveFrom) == 0 {
			return false
		}
		c.Adversary.StarveFrom, c.Adversary.StarveUntil = nil, 0
		return true
	})
	try(func(c *scenario.Manifest) bool {
		if c.Adversary.StarveUntil <= 1000 {
			return false
		}
		c.Adversary.StarveUntil = 1000
		return true
	})

	// Random-circuit parameter reductions.
	if m.Circuit.Family == "random" {
		shrinkInt := func(get func(*scenario.CircuitSpec) *int, to, minKeep int) {
			try(func(c *scenario.Manifest) bool {
				f := get(&c.Circuit)
				if *f <= minKeep {
					return false
				}
				if to >= minKeep {
					*f = to
				} else {
					*f--
				}
				return true
			})
		}
		shrinkInt(func(c *scenario.CircuitSpec) *int { return &c.MulPct }, 0, 0)
		shrinkInt(func(c *scenario.CircuitSpec) *int { return &c.Layers }, -1, 1)
		shrinkInt(func(c *scenario.CircuitSpec) *int { return &c.Width }, -1, 1)
		shrinkInt(func(c *scenario.CircuitSpec) *int { return &c.Outs }, 1, 1)
	}
	return out
}

func sortedMapKeys[V any](m map[int]V) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// clone deep-copies a manifest through its JSON form (a Manifest is
// fully JSON-tagged; Parse skips validation so deliberately invalid
// counterexamples clone too).
func clone(m *scenario.Manifest) *scenario.Manifest {
	c, err := scenario.Parse(m.JSON())
	if err != nil {
		panic(err) // our own marshal output always parses
	}
	return c
}
