package fuzzer

import (
	"reflect"
	"testing"
)

// TestGenerateWorkloadDeterminism pins the crash-trial generator: same
// (seed, index) must yield the same manifest and kill point, and every
// generated manifest must validate with an in-range kill.
func TestGenerateWorkloadDeterminism(t *testing.T) {
	for i := 0; i < 10; i++ {
		m1, k1 := GenerateWorkload(42, i)
		m2, k2 := GenerateWorkload(42, i)
		if k1 != k2 || !reflect.DeepEqual(m1, m2) {
			t.Fatalf("trial %d not deterministic", i)
		}
		if err := m1.Validate(); err != nil {
			t.Fatalf("trial %d invalid: %v", i, err)
		}
		steps := len(m1.Workload.Steps)
		if k1 < 1 || k1 >= steps {
			t.Fatalf("trial %d kill point %d out of range for %d steps", i, k1, steps)
		}
	}
}

// TestCrashCampaign runs a small kill-and-resume campaign end to end:
// every trial's resumed report must be bit-identical to its
// uninterrupted twin.
func TestCrashCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("crash trials run full workloads; run without -short")
	}
	sum, err := CrashCampaign(Options{Trials: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Passed != sum.Trials {
		for _, v := range sum.Failed {
			t.Errorf("%s (killed after %d/%d, perGateEval=%v): %v",
				v.Name, v.KillAfter, v.Steps, v.PerGateEval, v.Violations)
		}
		t.Fatalf("%d of %d crash trials diverged", sum.Trials-sum.Passed, sum.Trials)
	}
}
