package fuzzer

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/scenario"
)

// TestGenerateDeterministic: a trial is a pure function of
// (masterSeed, index) — the replayability the whole subsystem rests on.
func TestGenerateDeterministic(t *testing.T) {
	for i := 0; i < 50; i++ {
		a, b := Generate(7, i), Generate(7, i)
		if !bytes.Equal(a.JSON(), b.JSON()) {
			t.Fatalf("trial %d not deterministic:\n%s\nvs\n%s", i, a.JSON(), b.JSON())
		}
	}
	if bytes.Equal(Generate(7, 0).JSON(), Generate(7, 1).JSON()) {
		t.Fatal("consecutive trials identical: index does not feed the stream")
	}
	if bytes.Equal(Generate(7, 0).JSON(), Generate(8, 0).JSON()) {
		t.Fatal("campaign seeds 7 and 8 generate the same trial 0")
	}
}

// TestGeneratedManifestsValidate: the generator must stay inside the
// manifest schema AND the network's corruption budget — both are
// oracle preconditions.
func TestGeneratedManifestsValidate(t *testing.T) {
	for i := 0; i < 200; i++ {
		m := Generate(3, i)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d invalid: %v", i, err)
		}
		budget := NetworkBudget(m.Parties, m.Network.Kind)
		if c := m.Adversary.Corrupt(); len(c) > budget {
			t.Fatalf("trial %d corrupts %v, over the %s budget %d", i, c, m.Network.Kind, budget)
		}
	}
}

// TestGeneratorCoverage: over a few hundred trials the generator must
// actually exercise the space it claims to: both networks, random and
// named circuit families, every adversary behaviour, starvation and
// burst schedules.
func TestGeneratorCoverage(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		m := Generate(1, i)
		seen["net:"+m.Network.Kind] = true
		if m.Circuit.Family == "random" {
			seen["circuit:random"] = true
		} else {
			seen["circuit:named"] = true
		}
		a := m.Adversary
		mark := func(cond bool, label string) {
			if cond {
				seen[label] = true
			}
		}
		mark(len(a.Passive) > 0, "adv:passive")
		mark(len(a.Silent) > 0, "adv:silent")
		mark(len(a.Garble) > 0, "adv:garble")
		mark(len(a.CrashAt) > 0, "adv:crash")
		mark(len(a.Drop) > 0, "adv:drop")
		mark(len(a.Delay) > 0, "adv:delay")
		mark(len(a.Equivocate) > 0, "adv:equivocate")
		mark(len(a.StarveFrom) > 0, "adv:starve")
		mark(m.Network.BurstPeriod > 0, "net:burst")
		mark(m.Network.Tail > 0, "net:tail")
		mark(len(m.Inputs) > 0, "inputs:explicit")
	}
	for _, want := range []string{
		"net:sync", "net:async", "net:burst", "net:tail",
		"circuit:random", "circuit:named", "inputs:explicit",
		"adv:passive", "adv:silent", "adv:garble", "adv:crash",
		"adv:drop", "adv:delay", "adv:equivocate", "adv:starve",
	} {
		if !seen[want] {
			t.Errorf("300 trials never generated %s", want)
		}
	}
}

// TestFuzzDeterministicAcrossPools: the campaign summary must not
// depend on the worker-pool size (trial order and verdicts are fixed
// by the seed alone).
func TestFuzzDeterministicAcrossPools(t *testing.T) {
	opts := Options{Trials: 4, Seed: 11}
	a := Fuzz(Options{Trials: opts.Trials, Seed: opts.Seed, Parallel: 1})
	b := Fuzz(Options{Trials: opts.Trials, Seed: opts.Seed, Parallel: 4})
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("summaries differ across pool sizes:\n%s\nvs\n%s", aj, bj)
	}
}

// TestInjectedViolationCaughtShrunkReplayed is the acceptance pipeline
// end to end: a deliberately over-budget adversary must be caught by
// the corruption-budget oracle, minimized to exactly budget+1
// corruptions, emitted as JSON, and reproduced bit-identically by
// Replay of the saved file.
func TestInjectedViolationCaughtShrunkReplayed(t *testing.T) {
	sum := Fuzz(Options{Trials: 3, Seed: 1, Inject: InjectOverBudget})
	if len(sum.Failed) != 3 {
		t.Fatalf("want every injected trial to fail, got %d of 3", len(sum.Failed))
	}
	for _, ce := range sum.Failed {
		if ce.Violations[0].Oracle != OracleBudget {
			t.Fatalf("trial %d: primary oracle %q, want %q", ce.Trial, ce.Violations[0].Oracle, OracleBudget)
		}
		budget := NetworkBudget(ce.Manifest.Parties, ce.Manifest.Network.Kind)
		if c := ce.Manifest.Adversary.Corrupt(); len(c) != budget+1 {
			t.Errorf("trial %d: minimized to %d corruptions %v, want exactly budget+1 = %d",
				ce.Trial, len(c), c, budget+1)
		}

		// Save and replay: identical verdict.
		path := filepath.Join(t.TempDir(), "ce.json")
		if err := os.WriteFile(path, ce.Manifest.JSON(), 0o644); err != nil {
			t.Fatal(err)
		}
		v, err := ReplayFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(v.Violations, ce.Violations) {
			t.Errorf("trial %d: replay verdict %v, want %v", ce.Trial, v.Violations, ce.Violations)
		}
	}
}

// TestShrinkIsGreedyAndDeterministic: shrinking the same failing
// manifest twice yields the identical minimized manifest, and the
// result still violates the primary oracle.
func TestShrinkIsGreedyAndDeterministic(t *testing.T) {
	m := Generate(1, 0)
	applyInject(m, InjectOverBudget)
	v := Check(m)
	if v.OK() {
		t.Fatal("injected manifest unexpectedly passed")
	}
	a, aRuns := Shrink(m, v.Primary(), 200)
	b, bRuns := Shrink(m, v.Primary(), 200)
	if !bytes.Equal(a.JSON(), b.JSON()) || aRuns != bRuns {
		t.Fatalf("shrink not deterministic: %d vs %d runs\n%s\nvs\n%s", aRuns, bRuns, a.JSON(), b.JSON())
	}
	if !hasOracle(Check(a), v.Primary()) {
		t.Fatalf("minimized manifest no longer violates %q:\n%s", v.Primary(), a.JSON())
	}
}

// TestCheckPassesOnBuiltins: every success-asserting builtin scenario
// must satisfy the oracle suite — the invariants are universally
// quantified over in-budget runs, and the builtins are in budget.
func TestCheckPassesOnBuiltins(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus through two evaluators; skipped with -short")
	}
	for _, m := range scenario.Builtin() {
		if m.Expect.Error != "" || m.SyncOnly {
			// Negative controls and ablations deliberately break the
			// guarantees the oracles check.
			continue
		}
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			if v := Check(m); !v.OK() {
				t.Fatalf("oracle violations on builtin: %+v", v.Violations)
			}
		})
	}
}

// TestReplayJSONRejectsGarbage: the replay path must reject malformed
// and unknown-field JSON rather than running something else.
func TestReplayJSONRejectsGarbage(t *testing.T) {
	if _, err := ReplayJSON([]byte(`{"nope":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ReplayJSON([]byte(`{]`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
