package fuzzer

import (
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/scenario"
)

// Replay re-runs a manifest through the oracle suite. Because a run is
// a pure function of its manifest, Replay of a saved counterexample
// reproduces the original verdict bit for bit — the fuzz failure is a
// permanent regression test, not a flake.
func Replay(m *scenario.Manifest) *Verdict { return Check(m) }

// ReplayTraced replays a manifest with a trace sink on the primary
// run, so a counterexample's failure can be inspected on the event
// timeline (`scenario fuzz -replay ce.json -trace`).
func ReplayTraced(m *scenario.Manifest, tr obs.Tracer) *Verdict { return checkWith(m, tr) }

// ReplayFileTraced is ReplayFile with a trace sink (see ReplayTraced).
func ReplayFileTraced(path string, tr obs.Tracer) (*Verdict, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fuzzer: %w", err)
	}
	m, err := scenario.Parse(data)
	if err != nil {
		return nil, err
	}
	return ReplayTraced(m, tr), nil
}

// ReplayJSON parses a saved manifest (strictly, but without validation
// — counterexamples may deliberately violate validation, e.g. an
// over-budget adversary) and replays it.
func ReplayJSON(data []byte) (*Verdict, error) {
	m, err := scenario.Parse(data)
	if err != nil {
		return nil, err
	}
	return Replay(m), nil
}

// ReplayFile reads and replays a saved counterexample manifest.
func ReplayFile(path string) (*Verdict, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fuzzer: %w", err)
	}
	return ReplayJSON(data)
}
