// Crash-injection fuzzing: every trial runs a generated workload to
// completion, re-runs it with a simulated kill after a random step k
// (checkpointing every step), restores from the checkpoint on disk and
// finishes — and the resumed run's final report must be bit-identical
// to the uninterrupted one: outputs, CS sets, per-family traffic,
// ticks, pool accounting, amortization summary. One differential per
// (trial, evaluator mode) — the property the checkpoint subsystem
// promises (docs/checkpointing.md).
package fuzzer

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"sync"

	"repro/scenario"
)

// GenerateWorkload derives crash trial number index of a campaign
// keyed by masterSeed: a workload manifest (2..4 steps over one
// session engine, random circuits, random in-budget adversary, sync or
// async network) plus the kill point — the step count after which the
// trial's second run is stopped. A pure function of (masterSeed,
// index), like Generate.
func GenerateWorkload(masterSeed uint64, index int) (m *scenario.Manifest, killAfter int) {
	rng := rand.New(rand.NewPCG(masterSeed^0xc4a54, splitmix(uint64(index))))
	m = &scenario.Manifest{
		Name:       fmt.Sprintf("crash-s%d-t%d", masterSeed, index),
		Seed:       rng.Uint64N(1_000_000),
		EventLimit: trialEventLimit,
	}
	m.Parties = genParties(rng)
	m.Network = genNetwork(rng)
	m.Adversary = genAdversary(rng, m.Parties, m.Network)
	steps := 2 + rng.IntN(3) // 2..4: at least one step on each side of the kill
	w := &scenario.WorkloadSpec{}
	if rng.IntN(100) < 30 {
		// Deliberately under-budget so some trials cross a mid-workload
		// refill — the hardest state to restore faithfully.
		w.Budget = 1 + rng.IntN(4)
	}
	for i := 0; i < steps; i++ {
		st := scenario.WorkloadStep{
			Circuit: genCircuit(rng, m.Parties.N),
			Expect:  scenario.Expect{Consistent: true},
		}
		if rng.IntN(100) < 40 {
			st.Inputs = make([]uint64, m.Parties.N)
			for j := range st.Inputs {
				st.Inputs[j] = rng.Uint64N(1000)
			}
		}
		w.Steps = append(w.Steps, st)
	}
	m.Workload = w
	return m, 1 + rng.IntN(steps-1)
}

// CrashVerdict is one crash trial's outcome.
type CrashVerdict struct {
	Name string `json:"name"`
	// KillAfter is the step count the interrupted run stopped at;
	// PerGateEval the evaluator mode both runs used.
	KillAfter   int  `json:"killAfter"`
	Steps       int  `json:"steps"`
	PerGateEval bool `json:"perGateEval,omitempty"`
	// Violations is empty when the resumed report matched the
	// uninterrupted one bit-for-bit.
	Violations []Violation `json:"violations,omitempty"`
}

// OK reports whether the differential held.
func (v *CrashVerdict) OK() bool { return len(v.Violations) == 0 }

func (v *CrashVerdict) violate(oracle, format string, args ...any) {
	v.Violations = append(v.Violations, Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
}

// CrashTrial runs one kill-and-resume differential: the workload
// uninterrupted, then killed after killAfter steps with a checkpoint
// in dir, then resumed from that checkpoint. Any difference between
// the two final reports is a violation.
func CrashTrial(m *scenario.Manifest, killAfter int, perGate bool, dir string) *CrashVerdict {
	v := &CrashVerdict{Name: m.Name, KillAfter: killAfter, PerGateEval: perGate}
	if m.Workload != nil {
		v.Steps = len(m.Workload.Steps)
	}
	full, err := scenario.RunWorkloadOpts(m, scenario.WorkloadRunOptions{PerGateEval: perGate})
	if err != nil {
		v.violate("crash-full-run", "uninterrupted run failed: %v", err)
		return v
	}
	ckPath := filepath.Join(dir, m.Name+".ckpt")
	partial, err := scenario.RunWorkloadOpts(m, scenario.WorkloadRunOptions{
		PerGateEval:    perGate,
		CheckpointPath: ckPath,
		StopAfter:      killAfter,
	})
	if err != nil {
		v.violate("crash-kill-run", "interrupted run failed: %v", err)
		return v
	}
	if len(partial.Steps) != killAfter {
		v.violate("crash-kill-run", "interrupted run completed %d steps, wanted to stop after %d", len(partial.Steps), killAfter)
		return v
	}
	ck, err := scenario.LoadWorkloadCheckpoint(ckPath)
	if err != nil {
		v.violate("crash-checkpoint", "checkpoint unreadable: %v", err)
		return v
	}
	resumed, err := scenario.RunWorkloadOpts(m, scenario.WorkloadRunOptions{
		PerGateEval: perGate,
		Resume:      ck,
	})
	if err != nil {
		v.violate("crash-resume", "resumed run failed: %v", err)
		return v
	}
	if !reflect.DeepEqual(full, resumed) {
		fj, rj := reportJSON(full), reportJSON(resumed)
		v.violate("crash-differential", "resumed report diverged from the uninterrupted run\nfull:    %s\nresumed: %s", fj, rj)
	}
	return v
}

func reportJSON(rep *scenario.WorkloadReport) string {
	b, err := json.Marshal(rep)
	if err != nil {
		return fmt.Sprintf("<unmarshalable: %v>", err)
	}
	return string(b)
}

// CrashSummary reports a crash campaign.
type CrashSummary struct {
	Seed   uint64 `json:"seed"`
	Trials int    `json:"trials"`
	Passed int    `json:"passed"`
	// Failed holds the violating verdicts in trial order.
	Failed []*CrashVerdict `json:"failed,omitempty"`
}

// CrashCampaign runs trials kill-and-resume differentials derived from
// seed, alternating evaluator modes across trials. Checkpoints go to
// per-trial files under a temp dir, removed afterwards. Like Fuzz, the
// verdicts are a pure function of (seed, trials); parallelism only
// changes wall-clock time.
func CrashCampaign(opts Options) (*CrashSummary, error) {
	opts = opts.withDefaults()
	dir, err := os.MkdirTemp("", "crash-fuzz-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	sum := &CrashSummary{Seed: opts.Seed, Trials: opts.Trials}
	slots := make([]*CrashVerdict, opts.Trials)
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := opts.Parallel
	if workers > opts.Trials {
		workers = opts.Trials
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				m, kill := GenerateWorkload(opts.Seed, i)
				slots[i] = CrashTrial(m, kill, i%2 == 1, dir)
			}
		}()
	}
	for i := 0; i < opts.Trials; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, v := range slots {
		if v.OK() {
			sum.Passed++
			continue
		}
		sum.Failed = append(sum.Failed, v)
	}
	return sum, nil
}
