package fuzzer

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/obs"
	"repro/mpc"
	"repro/scenario"
)

// Oracle names, in the order Check evaluates them.
const (
	// OracleBudget: the adversary must stay within the corruption
	// budget the paper quantifies over (Ts under sync, Ta under async).
	// A violation means the *generator* (or an injection) broke the
	// trial's preconditions; the run is skipped.
	OracleBudget = "corruption-budget"
	// OracleManifest: the generated manifest must assemble (validate +
	// circuit build). A violation is a generator bug.
	OracleManifest = "manifest-valid"
	// OracleTermination: the run terminates — no engine panic, no
	// no-honest-output, every honest party terminated, and the last
	// honest termination meets the tick budget (the derived synchronous
	// deadline under sync, a generous fixed bound under async).
	OracleTermination = "termination"
	// OracleAgreement: honest parties agree on the output and the
	// agreed input-provider set has at least n - budget members.
	OracleAgreement = "agreement"
	// OracleConsistency: the agreed outputs equal the clear-text
	// evaluation of the circuit over the agreed input-provider set
	// (t-perfect correctness).
	OracleConsistency = "consistency"
	// OracleModeAgreement: the layered online phase and the per-gate
	// reference evaluator compute identical outputs and agreement sets.
	OracleModeAgreement = "mode-agreement"
)

// asyncTickBudget is the termination bound for asynchronous trials,
// sized an order of magnitude above the slowest asynchronous builtin
// scenario; starvation horizons are added on top by tickBudget.
const asyncTickBudget = 60_000

// Violation is one broken invariant.
type Violation struct {
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

// Verdict is the oracle evaluation of one manifest.
type Verdict struct {
	Name       string      `json:"name"`
	Violations []Violation `json:"violations,omitempty"`
	// Run figures for context (zero when the run was skipped).
	LastTick int64    `json:"lastTick,omitempty"`
	CS       []int    `json:"cs,omitempty"`
	Outputs  []uint64 `json:"outputs,omitempty"`
	Events   uint64   `json:"events,omitempty"`
	// HonestMessages/HonestBytes count the run's honest-origin traffic,
	// making fuzz trials cost-comparable against scenario sweeps and
	// workload amortization reports.
	HonestMessages uint64 `json:"honestMessages,omitempty"`
	HonestBytes    uint64 `json:"honestBytes,omitempty"`
}

// OK reports whether every oracle held.
func (v *Verdict) OK() bool { return len(v.Violations) == 0 }

// Primary returns the first violated oracle ("" when OK): the shrinker
// minimizes while preserving this oracle's failure.
func (v *Verdict) Primary() string {
	if len(v.Violations) == 0 {
		return ""
	}
	return v.Violations[0].Oracle
}

func (v *Verdict) violate(oracle, format string, args ...any) {
	v.Violations = append(v.Violations, Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
}

// Check runs the manifest through the invariant-oracle suite and
// returns the verdict. It is deterministic: the manifest fully seeds
// the simulation, so two Checks of one manifest are bit-identical —
// which is why a saved counterexample replays (Replay).
//
// Unlike scenario.Run, Check ignores the manifest's Expect block: the
// oracles are universally-quantified properties of *every* in-budget
// run, not per-scenario expectations.
func Check(m *scenario.Manifest) *Verdict { return checkWith(m, nil) }

// checkWith is Check with a trace sink on the primary (layered) run.
// The mode-agreement reference run stays untraced: it is a separate
// world whose events would interleave confusingly with the primary's.
func checkWith(m *scenario.Manifest, tr obs.Tracer) *Verdict {
	v := &Verdict{Name: m.Name}

	budget := NetworkBudget(m.Parties, m.Network.Kind)
	if c := m.Adversary.Corrupt(); len(c) > budget {
		v.violate(OracleBudget, "adversary corrupts %d parties %v, budget for the %s network is %d",
			len(c), c, m.Network.Kind, budget)
		return v // the run's guarantees are void outside the budget
	}

	art, err := scenario.Build(m)
	if err != nil {
		v.violate(OracleManifest, "%v", err)
		return v
	}

	res, runErr := runRecovered(art.Cfg, art, tr)
	if res != nil {
		v.Events = res.Events
		v.HonestMessages = res.HonestMessages
		v.HonestBytes = res.HonestBytes
		corrupt := map[int]bool{}
		for _, p := range m.Adversary.Corrupt() {
			corrupt[p] = true
		}
		for i, t := range res.TerminatedAt {
			if !corrupt[i] && t > v.LastTick {
				v.LastTick = t
			}
		}
	}
	switch {
	case errors.Is(runErr, errEnginePanic):
		v.violate(OracleTermination, "%v", runErr)
		return v
	case errors.Is(runErr, mpc.ErrNoHonestOutput):
		v.violate(OracleTermination, "no honest party terminated within %d events", m.EventLimit)
		return v
	case errors.Is(runErr, mpc.ErrDisagreement):
		v.violate(OracleAgreement, "honest parties terminated with different outputs")
		return v
	case runErr != nil:
		v.violate(OracleManifest, "engine rejected the run: %v", runErr)
		return v
	}

	v.CS = append([]int(nil), res.CS...)
	v.Outputs = make([]uint64, len(res.Outputs))
	for i, o := range res.Outputs {
		v.Outputs[i] = o.Uint64()
	}

	// Termination: everyone honest, within the tick budget.
	if !res.AllHonestTerminated(art.Adversary) {
		v.violate(OracleTermination, "an honest party did not terminate (terminatedAt=%v)", res.TerminatedAt[1:])
	}
	if tb := tickBudget(m, res); v.LastTick > tb {
		v.violate(OracleTermination, "last honest termination at tick %d exceeds the budget %d", v.LastTick, tb)
	}

	// Agreement: the input-provider set excludes at most Ts parties.
	// The bound is n - Ts under BOTH networks: under asynchrony the
	// input phase cannot wait for more than n - Ts parties without
	// risking a deadlock on corrupt ones, so honest-but-starved
	// parties may be excluded alongside the corrupt (the builtin
	// async scenarios pin the same bound).
	if minCS := m.Parties.N - m.Parties.Ts; len(res.CS) < minCS {
		v.violate(OracleAgreement, "|CS| = %d below n - ts = %d (CS=%v)",
			len(res.CS), minCS, res.CS)
	}

	// Consistency: outputs equal the plaintext circuit evaluation.
	want, err := mpc.ExpectedOutputs(art.Circuit, art.Inputs, res.CS)
	if err != nil {
		v.violate(OracleConsistency, "reference evaluation failed: %v", err)
	} else {
		for i := range want {
			if res.Outputs[i] != want[i] {
				v.violate(OracleConsistency, "output[%d] = %d, clear evaluation over CS=%v gives %d",
					i, res.Outputs[i].Uint64(), res.CS, want[i].Uint64())
			}
		}
	}

	// Mode agreement: the per-gate reference evaluator must compute the
	// same outputs and agreement set as the layered default.
	refCfg := art.Cfg
	refCfg.PerGateEval = true
	ref, refErr := runRecovered(refCfg, art, nil)
	switch {
	case refErr != nil:
		v.violate(OracleModeAgreement, "per-gate evaluator failed where layered succeeded: %v", refErr)
	default:
		if len(ref.Outputs) != len(res.Outputs) {
			v.violate(OracleModeAgreement, "per-gate evaluator produced %d outputs, layered %d", len(ref.Outputs), len(res.Outputs))
		} else {
			for i := range res.Outputs {
				if ref.Outputs[i] != res.Outputs[i] {
					v.violate(OracleModeAgreement, "output[%d]: layered %d, per-gate %d",
						i, res.Outputs[i].Uint64(), ref.Outputs[i].Uint64())
				}
			}
		}
		if !slices.Equal(ref.CS, res.CS) {
			v.violate(OracleModeAgreement, "agreement sets differ: layered %v, per-gate %v", res.CS, ref.CS)
		}
	}
	return v
}

// errEnginePanic wraps a panic recovered from the simulation so a
// crashing trial becomes a shrinkable counterexample instead of taking
// the campaign down.
var errEnginePanic = errors.New("engine panicked")

func runRecovered(cfg mpc.Config, art *scenario.RunArtifacts, tr obs.Tracer) (res *mpc.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w: %v", errEnginePanic, r)
		}
	}()
	return mpc.RunTraced(cfg, art.Circuit, art.Inputs, art.Adversary, tr)
}

// tickBudget is the termination deadline a trial must meet: the derived
// synchronous-run bound under sync (the paper's TCirEval guarantee),
// and a generous fixed bound plus the starvation horizon under async
// (asynchronous termination is eventual, not bounded, so this guards
// against runaways rather than checking a paper bound).
func tickBudget(m *scenario.Manifest, res *mpc.Result) int64 {
	if m.Network.Kind == "sync" {
		return res.Deadline
	}
	return asyncTickBudget + 4*m.Adversary.StarveUntil
}
