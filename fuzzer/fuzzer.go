// Package fuzzer is the property-based protocol fuzzer: it searches
// the space of (circuit, adversary, network-schedule) triples for runs
// that violate the paper's universally-quantified guarantees, instead
// of replaying the adversary presets someone thought of in advance.
//
// A campaign (Fuzz) derives every trial deterministically from one
// master seed: Generate builds a random scenario manifest (seeded
// random circuit, random adversary composition within the corruption
// budget, random delivery schedule including starvation and burst
// outages), Check runs it through the invariant-oracle suite
// (correctness vs clear-text evaluation, termination, agreement,
// corruption budget, layered-vs-per-gate equality), and any failure is
// greedily minimized (Shrink) into a counterexample whose manifest
// replays bit-identically (Replay) — every fuzz failure is a one-line
// reproducible regression test, ready to be promoted into the builtin
// scenario registry (see docs/fuzzing.md).
package fuzzer

import (
	"runtime"
	"sync"

	"repro/scenario"
)

// Inject deliberately breaks generated trials, to prove the
// catch → shrink → emit → replay pipeline end to end.
type Inject string

// Injection modes.
const (
	// InjectNone leaves trials untouched.
	InjectNone Inject = ""
	// InjectOverBudget adds silent corruptions beyond the network's
	// corruption budget to every trial, violating OracleBudget.
	InjectOverBudget Inject = "over-budget"
)

// Options parameterises a fuzzing campaign. The zero value is usable:
// 100 trials from seed 1 on a GOMAXPROCS pool.
type Options struct {
	// Trials is the number of generated scenarios (default 100).
	Trials int
	// Seed keys the campaign; every trial is a pure function of
	// (Seed, trial index).
	Seed uint64
	// Parallel is the worker-pool size (< 1 uses GOMAXPROCS). Trials
	// are independent simulations, so parallelism changes wall-clock
	// time only, never a verdict.
	Parallel int
	// MaxShrinkRuns caps the oracle evaluations spent minimizing one
	// counterexample (default 200).
	MaxShrinkRuns int
	// Inject optionally plants a deliberate violation in every trial.
	Inject Inject
}

func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		o.Trials = 100
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallel < 1 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.MaxShrinkRuns <= 0 {
		o.MaxShrinkRuns = 200
	}
	return o
}

// Counterexample is one failing trial after minimization.
type Counterexample struct {
	// Trial is the failing trial's index within the campaign.
	Trial int `json:"trial"`
	// Violations is the minimized manifest's verdict.
	Violations []Violation `json:"violations"`
	// Manifest is the minimized manifest ("<trial-name>-min"): save it
	// and re-run with Replay, `scenario fuzz -replay`, or promote it
	// into the builtin registry.
	Manifest *scenario.Manifest `json:"manifest"`
	// Original is the unshrunk generated manifest.
	Original *scenario.Manifest `json:"original"`
	// ShrinkRuns is the number of oracle evaluations minimization used.
	ShrinkRuns int `json:"shrinkRuns"`
}

// Summary reports a campaign.
type Summary struct {
	Seed    uint64 `json:"seed"`
	Trials  int    `json:"trials"`
	Passed  int    `json:"passed"`
	Inject  Inject `json:"inject,omitempty"`
	// HonestMessages/HonestBytes total the honest-origin traffic of the
	// trials' primary runs (shrink re-runs excluded), making a campaign
	// cost-comparable against scenario sweeps and workload reports; the
	// per-run figures are on each trial's Verdict.
	HonestMessages uint64 `json:"honestMessages"`
	HonestBytes    uint64 `json:"honestBytes"`
	// Failed holds one minimized counterexample per failing trial, in
	// trial order.
	Failed []*Counterexample `json:"failed,omitempty"`
}

// Fuzz runs a campaign: opts.Trials generated scenarios on a worker
// pool, each checked against the oracle suite, failures minimized. The
// summary is a pure function of (Seed, Trials, Inject): worker count
// only changes wall-clock time.
func Fuzz(opts Options) *Summary {
	opts = opts.withDefaults()
	sum := &Summary{Seed: opts.Seed, Trials: opts.Trials, Inject: opts.Inject}

	slots := make([]trialResult, opts.Trials)
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := opts.Parallel
	if workers > opts.Trials {
		workers = opts.Trials
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				slots[i] = runTrial(opts, i)
			}
		}()
	}
	for i := 0; i < opts.Trials; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, tr := range slots {
		sum.HonestMessages += tr.msgs
		sum.HonestBytes += tr.bytes
		if tr.ce == nil {
			sum.Passed++
			continue
		}
		sum.Failed = append(sum.Failed, tr.ce)
	}
	return sum
}

// trialResult carries one trial's counterexample (nil when the oracles
// held) plus the primary run's honest traffic.
type trialResult struct {
	ce          *Counterexample
	msgs, bytes uint64
}

// runTrial generates, checks and (on failure) shrinks trial i; the
// counterexample is nil when every oracle held.
func runTrial(opts Options, i int) trialResult {
	m := Generate(opts.Seed, i)
	applyInject(m, opts.Inject)
	v := Check(m)
	tr := trialResult{msgs: v.HonestMessages, bytes: v.HonestBytes}
	if v.OK() {
		return tr
	}
	minimized, runs := Shrink(m, v.Primary(), opts.MaxShrinkRuns)
	minimized.Name = m.Name + "-min"
	tr.ce = &Counterexample{
		Trial:      i,
		Violations: Check(minimized).Violations,
		Manifest:   minimized,
		Original:   m,
		ShrinkRuns: runs,
	}
	return tr
}

// applyInject plants the requested violation into a generated trial.
func applyInject(m *scenario.Manifest, inj Inject) {
	if inj != InjectOverBudget {
		return
	}
	// Add the lowest-indexed uncorrupted parties as silent corruptions
	// until the trial exceeds its network's budget by one.
	budget := NetworkBudget(m.Parties, m.Network.Kind)
	corrupt := map[int]bool{}
	for _, p := range m.Adversary.Corrupt() {
		corrupt[p] = true
	}
	for p := 1; p <= m.Parties.N && len(corrupt) <= budget; p++ {
		if !corrupt[p] {
			m.Adversary.Silent = append(m.Adversary.Silent, p)
			corrupt[p] = true
		}
	}
}
