package mpc

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/circuit"
	"repro/field"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/proc"
)

// ErrTransport wraps every transport fault an engine surfaces: a run
// over a real socket backend that loses a connection, reads a
// corrupted frame or times out drains to quiescence and reports the
// fault here instead of returning a bogus protocol outcome. The
// backend's own typed error (proc.ErrConnLost, proc.ErrTimeout, ...)
// is in the chain.
var ErrTransport = errors.New("mpc: transport fault")

// TransportSpec selects the message-plane backend an engine assembles
// over. It is plain data and deliberately NOT part of Config: a
// checkpoint identifies an engine by Config plus Adversary, and the
// same checkpoint restores onto any backend — the transport is a
// deployment concern, not a protocol identity.
//
// The zero value (and Kind "sim" or "") is the deterministic in-memory
// simulator. Kind "unix"/"tcp" runs each party as its own goroutine
// with honest traffic physically crossing CRC-framed sockets; on a
// fixed seed every backend produces identical outputs, common subsets,
// termination times, metrics and traces (the differential guarantee —
// see docs/deployment.md).
type TransportSpec struct {
	// Kind is "sim" (or empty), "unix" or "tcp".
	Kind string
	// Addrs optionally pins one listen address per party, Addrs[i-1]
	// for party i. Empty means auto-assign: unix socket paths under
	// Dir, TCP loopback with kernel-chosen ports.
	Addrs []string
	// Dir, with Kind "unix" and no Addrs, is the directory for the
	// auto-assigned socket paths; empty means a fresh temp directory
	// that Engine.Close removes.
	Dir string
	// IOTimeout bounds every socket write and frame wait; zero means
	// proc.DefaultIOTimeout.
	IOTimeout time.Duration
}

// Validate checks the spec against an n-party configuration.
func (s *TransportSpec) Validate(n int) error {
	if s == nil {
		return nil
	}
	switch s.Kind {
	case "", "sim", "unix", "tcp":
	default:
		return fmt.Errorf("mpc: unknown transport kind %q (want sim, unix or tcp)", s.Kind)
	}
	if len(s.Addrs) > 0 && len(s.Addrs) != n {
		return fmt.Errorf("mpc: transport spec has %d addresses for %d parties", len(s.Addrs), n)
	}
	if s.IOTimeout < 0 {
		return fmt.Errorf("mpc: negative transport IO timeout %v", s.IOTimeout)
	}
	return nil
}

// factory resolves the spec into a transport factory (nil for the
// simulator) plus a cleanup for any resources the resolution itself
// created (an auto-assigned socket directory).
func (s *TransportSpec) factory(n int) (transport.Factory, func() error, error) {
	if err := s.Validate(n); err != nil {
		return nil, nil, err
	}
	if s == nil || s.Kind == "" || s.Kind == "sim" {
		return nil, nil, nil
	}
	addrs := append([]string(nil), s.Addrs...)
	var cleanup func() error
	if len(addrs) == 0 {
		switch s.Kind {
		case "unix":
			dir := s.Dir
			if dir == "" {
				d, err := os.MkdirTemp("", "mpc-sock-*")
				if err != nil {
					return nil, nil, fmt.Errorf("mpc: transport socket dir: %w", err)
				}
				dir = d
				cleanup = func() error { return os.RemoveAll(d) }
			}
			addrs = make([]string, n)
			for i := range addrs {
				addrs[i] = filepath.Join(dir, fmt.Sprintf("party-%d.sock", i+1))
			}
		case "tcp":
			addrs = make([]string, n)
			for i := range addrs {
				addrs[i] = "127.0.0.1:0"
			}
		}
	}
	return proc.New(proc.Options{Kind: s.Kind, Addrs: addrs, IOTimeout: s.IOTimeout}), cleanup, nil
}

// EngineOptions bundles everything orthogonal to the protocol Config
// that an engine can be assembled with.
type EngineOptions struct {
	// Adversary is the session's static adversary (nil = all honest).
	Adversary *Adversary
	// Tracer receives the full typed event stream; nil disables
	// tracing. Identical across backends for the same seed.
	Tracer obs.Tracer
	// Transport selects the message-plane backend; nil means the
	// in-memory simulator.
	Transport *TransportSpec
}

// NewEngineOpts assembles a session engine with explicit options — the
// general constructor behind NewEngine/NewEngineAdv/NewEngineTraced.
// Engines over a real transport hold sockets and goroutines: callers
// must Close them (Close is a no-op for the simulator backend).
func NewEngineOpts(cfg Config, opts EngineOptions) (*Engine, error) {
	f, cleanup, err := opts.Transport.factory(cfg.N)
	if err != nil {
		return nil, err
	}
	e, err := newEngine(cfg, opts.Adversary, opts.Tracer, f)
	if err != nil {
		if cleanup != nil {
			cleanup()
		}
		return nil, err
	}
	e.cleanup = cleanup
	return e, nil
}

// RunOpts is the one-shot Run with explicit engine options: it
// assembles a fresh engine (over any transport backend), runs the full
// ΠCirEval once, and tears the engine down.
func RunOpts(cfg Config, opts EngineOptions, circ *circuit.Circuit, inputs []field.Element) (*Result, error) {
	eng, err := NewEngineOpts(cfg, opts)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	return eng.OneShot(circ, inputs)
}

// OneShot runs the full ΠCirEval once — the method behind Run and
// RunOpts. It must be the freshly assembled engine's first and only
// protocol activity: the one-shot phase owns the whole "mpc" instance
// namespace with no epoch bookkeeping, so it cannot be mixed with the
// Preprocess/Evaluate session lifecycle. Prefer Run/RunOpts; this
// exists for harnesses that need the engine handle afterwards (wire
// stats, resolved transport addresses).
func (e *Engine) OneShot(circ *circuit.Circuit, inputs []field.Element) (*Result, error) {
	if e.preprocessed || e.evals > 0 || e.oneShot {
		return nil, errors.New("mpc: OneShot on a used engine (it must be a fresh engine's only activity)")
	}
	if len(inputs) != e.cfg.N {
		return nil, fmt.Errorf("mpc: %d inputs for %d parties", len(inputs), e.cfg.N)
	}
	e.oneShot = true
	return e.runOneShot(circ, inputs)
}

// Close releases the engine's transport resources: sockets and party
// goroutines for a real backend, nothing for the simulator.
// Idempotent; the engine must not be used afterwards.
func (e *Engine) Close() error {
	err := e.world.Close()
	if e.cleanup != nil {
		if cerr := e.cleanup(); err == nil {
			err = cerr
		}
		e.cleanup = nil
	}
	return err
}

// WireStats returns the physical-byte accounting of the engine's
// transport: actual frame bytes that crossed sockets (zeros for the
// in-memory simulator, whose traffic figures are the virtual
// Result.HonestBytes accounting).
func (e *Engine) WireStats() transport.WireStats {
	return transport.Meter(e.world.Net)
}

// TransportAddrs returns the backend's resolved listen addresses
// (index i-1 for party i), or nil for the in-memory simulator. With
// tcp ":0" specs the kernel-chosen ports are filled in.
func (e *Engine) TransportAddrs() []string {
	if p, ok := e.world.Net.(*proc.Transport); ok {
		return p.Addrs()
	}
	return nil
}

// transportCheck surfaces a transport fault after a run to quiescence:
// a faulted backend skips deliveries so the scheduler drains, and the
// phase must report ErrTransport rather than a protocol-level outcome.
func (e *Engine) transportCheck() error {
	if err := e.world.TransportErr(); err != nil {
		return fmt.Errorf("%w: %w", ErrTransport, err)
	}
	return nil
}
