package mpc

import (
	"errors"
	"testing"

	"repro/circuit"
	"repro/field"
)

func cfg5(net Network, seed uint64) Config {
	return Config{N: 5, Ts: 1, Ta: 1, Network: net, Seed: seed}
}

func cfg8(net Network, seed uint64) Config {
	return Config{N: 8, Ts: 2, Ta: 1, Network: net, Seed: seed}
}

func elems(vs ...uint64) []field.Element {
	out := make([]field.Element, len(vs))
	for i, v := range vs {
		out[i] = field.New(v)
	}
	return out
}

func TestSumSyncAllHonest(t *testing.T) {
	res, err := Run(cfg5(Sync, 1), circuit.Sum(5), elems(1, 2, 3, 4, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != field.New(15) {
		t.Fatalf("sum = %v, want 15", res.Outputs[0])
	}
	if len(res.CS) != 5 {
		t.Fatalf("CS = %v, want all parties in sync", res.CS)
	}
	if !res.AllHonestTerminated(nil) {
		t.Fatal("not all parties terminated")
	}
	for i := 1; i <= 5; i++ {
		if res.TerminatedAt[i] > res.Deadline {
			t.Fatalf("party %d terminated at %d > TCirEval = %d", i, res.TerminatedAt[i], res.Deadline)
		}
	}
	if res.HonestMessages == 0 || res.HonestBytes == 0 {
		t.Fatal("metrics empty")
	}
}

func TestProductSyncAllHonest(t *testing.T) {
	res, err := Run(cfg5(Sync, 2), circuit.Product(5), elems(2, 3, 4, 5, 6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != field.New(720) {
		t.Fatalf("product = %v, want 720", res.Outputs[0])
	}
}

func TestProductAsyncAllHonest(t *testing.T) {
	res, err := Run(cfg5(Async, 3), circuit.Product(5), elems(2, 2, 2, 2, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	// In async some inputs may be replaced by 0 (|CS| ≥ n-ts); output
	// must match the clear evaluation on the agreed CS.
	want, err := ExpectedOutputs(circuit.Product(5), elems(2, 2, 2, 2, 2), res.CS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != want[0] {
		t.Fatalf("product = %v, want %v (CS=%v)", res.Outputs[0], want[0], res.CS)
	}
	if len(res.CS) < 4 {
		t.Fatalf("|CS| = %d < n-ts", len(res.CS))
	}
}

func TestSyncWithGarblingAdversary(t *testing.T) {
	adv := &Adversary{Garble: []int{3}}
	inputs := elems(1, 2, 3, 4, 5)
	res, err := Run(cfg5(Sync, 4), circuit.Sum(5), inputs, adv)
	if err != nil {
		t.Fatal(err)
	}
	// All honest must be in CS in sync; the garbler's input may or may
	// not be included.
	want, err := ExpectedOutputs(circuit.Sum(5), inputs, res.CS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != want[0] {
		t.Fatalf("output %v, want %v (CS = %v)", res.Outputs[0], want[0], res.CS)
	}
	inCS := map[int]bool{}
	for _, j := range res.CS {
		inCS[j] = true
	}
	for i := 1; i <= 5; i++ {
		if i != 3 && !inCS[i] {
			t.Fatalf("honest party %d not in CS (sync)", i)
		}
	}
}

func TestSyncWithSilentParty(t *testing.T) {
	adv := &Adversary{Silent: []int{2}}
	inputs := elems(10, 99, 30, 40, 50)
	res, err := Run(cfg5(Sync, 5), circuit.Sum(5), inputs, adv)
	if err != nil {
		t.Fatal(err)
	}
	// Silent party's input is excluded: sum = 130.
	if res.Outputs[0] != field.New(130) {
		t.Fatalf("sum = %v, want 130 (CS = %v)", res.Outputs[0], res.CS)
	}
}

func TestN8TwoFaultsSync(t *testing.T) {
	// The paper's headline: n = 8 tolerates ts = 2 faults in sync.
	adv := &Adversary{Garble: []int{2}, Silent: []int{7}}
	inputs := elems(1, 2, 3, 4, 5, 6, 7, 8)
	res, err := Run(cfg8(Sync, 6), circuit.Sum(8), inputs, adv)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExpectedOutputs(circuit.Sum(8), inputs, res.CS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != want[0] {
		t.Fatalf("output %v, want %v", res.Outputs[0], want[0])
	}
}

func TestN8OneFaultAsync(t *testing.T) {
	// ... and ta = 1 fault under asynchrony, same protocol.
	adv := &Adversary{Garble: []int{4}}
	inputs := elems(1, 2, 3, 4, 5, 6, 7, 8)
	res, err := Run(cfg8(Async, 7), circuit.Sum(8), inputs, adv)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExpectedOutputs(circuit.Sum(8), inputs, res.CS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != want[0] {
		t.Fatalf("output %v, want %v", res.Outputs[0], want[0])
	}
}

func TestSyncOnlyBaselineBreaksUnderAsync(t *testing.T) {
	// E12/A1: the purely synchronous baseline (fallbacks disabled) with
	// a starved link schedule under an asynchronous network should fail
	// to terminate for at least one honest party, while the BoBW engine
	// succeeds under the same schedule.
	adv := &Adversary{Garble: []int{5}, StarveFrom: []int{1}, StarveUntil: 4000}
	inputs := elems(1, 2, 3, 4, 5)
	cfg := cfg5(Async, 8)
	cfg.SyncOnly = true
	cfg.EventLimit = 20_000_000
	_, errBaseline := Run(cfg, circuit.Sum(5), inputs, adv)

	cfgB := cfg5(Async, 8)
	resB, errB := Run(cfgB, circuit.Sum(5), inputs, adv)
	if errB != nil {
		t.Fatalf("BoBW engine failed under async: %v", errB)
	}
	want, err := ExpectedOutputs(circuit.Sum(5), inputs, resB.CS)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Outputs[0] != want[0] {
		t.Fatal("BoBW output wrong")
	}
	if errBaseline == nil {
		t.Log("note: baseline survived this schedule (regular path met its deadlines); shape check is statistical across seeds")
	} else if !errors.Is(errBaseline, ErrNoHonestOutput) {
		t.Fatalf("baseline failed differently than expected: %v", errBaseline)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Run(Config{N: 7, Ts: 2, Ta: 1, Network: Sync}, circuit.Sum(7), elems(1, 2, 3, 4, 5, 6, 7), nil); err == nil {
		t.Fatal("invalid thresholds accepted")
	}
	if _, err := Run(cfg5(Sync, 1), circuit.Sum(5), elems(1, 2), nil); err == nil {
		t.Fatal("wrong input count accepted")
	}
	if _, err := Run(Config{N: 5, Ts: 1, Ta: 1, Network: "carrier-pigeon"}, circuit.Sum(5), elems(1, 2, 3, 4, 5), nil); err == nil {
		t.Fatal("bad network accepted")
	}
	adv := &Adversary{Garble: []int{1, 2, 3}}
	if _, err := Run(cfg5(Sync, 1), circuit.Sum(5), elems(1, 2, 3, 4, 5), adv); err == nil {
		t.Fatal("over-budget corruption accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() *Result {
		res, err := Run(cfg5(Async, 42), circuit.Sum(5), elems(5, 4, 3, 2, 1), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Outputs[0] != b.Outputs[0] || a.HonestMessages != b.HonestMessages || a.Events != b.Events {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestMatrixProductN8(t *testing.T) {
	// 2×2 matrix product among 8 parties (cM = 8) with one Byzantine
	// entry holder, synchronous network.
	inputs := elems(1, 2, 3, 4, 5, 6, 7, 8)
	adv := &Adversary{Garble: []int{6}}
	res, err := Run(cfg8(Sync, 10), circuit.MatMul2x2(), inputs, adv)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExpectedOutputs(circuit.MatMul2x2(), inputs, res.CS)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Outputs[i] != want[i] {
			t.Fatalf("C[%d] = %v, want %v (CS=%v)", i, res.Outputs[i], want[i], res.CS)
		}
	}
	// All honest parties in CS under synchrony; if the corrupt holder
	// also made it, the outputs are the true matrix product.
	if len(res.CS) == 8 {
		if res.Outputs[0] != field.New(19) || res.Outputs[3] != field.New(50) {
			t.Fatalf("full-CS product wrong: %v", res.Outputs)
		}
	}
}

func TestMultiOutputCircuit(t *testing.T) {
	inputs := elems(1, 2, 3, 4, 5)
	res, err := Run(cfg5(Sync, 9), circuit.SumAndVariancePieces(5), inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != field.New(15) || res.Outputs[1] != field.New(1+4+9+16+25) {
		t.Fatalf("outputs = %v", res.Outputs)
	}
}
