package mpc

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/circuit"
	"repro/field"
)

// TestRunDeterminism is the reproducibility regression test: two runs
// with identical config and seed must produce byte-identical results —
// outputs, per-party termination times, and the full communication
// metrics snapshot.
func TestRunDeterminism(t *testing.T) {
	cfg := Config{
		N: 5, Ts: 1, Ta: 1,
		Network: Async,
		Seed:    42,
	}
	adv := &Adversary{Garble: []int{4}}
	circ := circuit.Product(5)
	inputs := []field.Element{
		field.New(3), field.New(1), field.New(4), field.New(1), field.New(5),
	}

	run := func() *Result {
		res, err := Run(cfg, circ, inputs, adv)
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs differ:\n%+v\nvs\n%+v", a, b)
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("serialized results are not byte-identical:\n%s\nvs\n%s", aj, bj)
	}
}

// TestRunSeedSensitivity guards the other direction: a different seed
// must actually reshuffle the network schedule (otherwise the
// determinism test above would be vacuous).
func TestRunSeedSensitivity(t *testing.T) {
	cfg := Config{N: 5, Ts: 1, Ta: 1, Network: Async, Seed: 1}
	circ := circuit.Sum(5)
	inputs := make([]field.Element, 5)
	for i := range inputs {
		inputs[i] = field.New(uint64(i + 1))
	}
	a, err := Run(cfg, circ, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Run(cfg, circ, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outputs[0] != b.Outputs[0] {
		t.Fatalf("outputs must not depend on the seed: %v vs %v", a.Outputs, b.Outputs)
	}
	if reflect.DeepEqual(a.TerminatedAt, b.TerminatedAt) && a.Events == b.Events {
		t.Fatal("different seeds produced an identical schedule; the seed is not wired through")
	}
}
