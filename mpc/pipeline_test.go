package mpc

import (
	"errors"
	"testing"

	"repro/circuit"
)

// runSequentialRef runs k classic Evaluate calls on a fresh engine and
// returns the per-eval results plus the engine's summaries (by epoch).
func runSequentialRef(t *testing.T, cfg Config, circ *circuit.Circuit, k int) ([]*Result, []EvalSummary) {
	t.Helper()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Preprocess(maxInt(1, k*circ.MulCount)); err != nil {
		t.Fatal(err)
	}
	inputs := engInputs(cfg.N)
	results := make([]*Result, k)
	for i := 0; i < k; i++ {
		res, err := eng.Evaluate(circ, inputs)
		if err != nil {
			t.Fatalf("sequential eval %d: %v", i, err)
		}
		results[i] = res
	}
	return results, eng.Stats().Evals
}

// TestPipelineDifferential is the PR's acceptance gate: at pipeline
// depths 1, 4 and 16, a window of EvaluateAsync submissions over one
// engine yields outputs and CS sets bit-identical to k sequential
// Evaluate calls on the same seed — across circuits and both
// evaluator modes. At depth 1 (no overlap) the per-eval traffic and
// tick spans are bit-identical too; at depth > 1 they sit within a
// tight noise band: overlapping epochs permute the draw order of the
// shared per-party protocol PRNGs and the network jitter stream, so
// share values and delivery delays differ while reconstruction (and
// hence every output and CS vote) cancels the randomness exactly.
func TestPipelineDifferential(t *testing.T) {
	const k = 16
	circs := map[string]func() *circuit.Circuit{
		"product": func() *circuit.Circuit { return circuit.Product(5) },
		"stats":   func() *circuit.Circuit { return circuit.SumAndVariancePieces(5) },
	}
	for _, perGate := range []bool{false, true} {
		for name, mk := range circs {
			cfg := engCfg(5, 1, 1, 42)
			cfg.PerGateEval = perGate
			circ := mk()
			seqRes, seqSum := runSequentialRef(t, cfg, circ, k)

			for _, depth := range []int{1, 4, 16} {
				eng, err := NewEngine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := eng.Preprocess(maxInt(1, k*circ.MulCount)); err != nil {
					t.Fatal(err)
				}
				inputs := engInputs(cfg.N)

				// Sliding window: submit up to depth, then wait for the
				// oldest — the serving loop scenario workloads use.
				pending := make([]*PendingEval, 0, depth)
				results := make([]*Result, 0, k)
				wait := func() {
					p := pending[0]
					pending = pending[1:]
					res, err := p.Wait()
					if err != nil {
						t.Fatalf("%s perGate=%v depth %d eval %d: %v", name, perGate, depth, len(results), err)
					}
					results = append(results, res)
				}
				for i := 0; i < k; i++ {
					if len(pending) == depth {
						wait()
					}
					p, err := eng.EvaluateAsync(circ, inputs)
					if err != nil {
						t.Fatalf("%s perGate=%v depth %d submit %d: %v", name, perGate, depth, i, err)
					}
					pending = append(pending, p)
				}
				for len(pending) > 0 {
					wait()
				}
				if err := eng.Flush(); err != nil {
					t.Fatalf("%s perGate=%v depth %d: Flush: %v", name, perGate, depth, err)
				}
				if eng.InFlight() != 0 {
					t.Fatalf("depth %d: %d evals still in flight after Flush", depth, eng.InFlight())
				}

				for i, res := range results {
					ref := seqRes[i]
					if len(res.Outputs) != len(ref.Outputs) {
						t.Fatalf("%s perGate=%v depth %d eval %d: %d outputs vs sequential %d",
							name, perGate, depth, i, len(res.Outputs), len(ref.Outputs))
					}
					for j := range ref.Outputs {
						if res.Outputs[j] != ref.Outputs[j] {
							t.Errorf("%s perGate=%v depth %d eval %d: output[%d] = %d, sequential %d",
								name, perGate, depth, i, j, res.Outputs[j].Uint64(), ref.Outputs[j].Uint64())
						}
					}
					if len(res.CS) != len(ref.CS) {
						t.Errorf("%s perGate=%v depth %d eval %d: |CS| = %d, sequential %d",
							name, perGate, depth, i, len(res.CS), len(ref.CS))
					} else {
						for j := range ref.CS {
							if res.CS[j] != ref.CS[j] {
								t.Errorf("%s perGate=%v depth %d eval %d: CS[%d] = %d, sequential %d",
									name, perGate, depth, i, j, res.CS[j], ref.CS[j])
							}
						}
					}
					if depth == 1 {
						if res.HonestMessages != ref.HonestMessages || res.HonestBytes != ref.HonestBytes {
							t.Errorf("%s perGate=%v depth %d eval %d: traffic %d msgs/%d bytes, sequential %d/%d",
								name, perGate, depth, i, res.HonestMessages, res.HonestBytes, ref.HonestMessages, ref.HonestBytes)
						}
					} else {
						if !within(res.HonestMessages, ref.HonestMessages, 0.01) || !within(res.HonestBytes, ref.HonestBytes, 0.01) {
							t.Errorf("%s perGate=%v depth %d eval %d: traffic %d msgs/%d bytes outside 1%% of sequential %d/%d",
								name, perGate, depth, i, res.HonestMessages, res.HonestBytes, ref.HonestMessages, ref.HonestBytes)
						}
					}
				}

				// Per-epoch summaries: exact at depth 1; within the PRNG
				// noise band above (ticks get a ±2% / ±4-tick allowance —
				// jitter shifts round-boundary crossings) and triples
				// exact at depth > 1.
				sums := eng.Stats().Evals
				if len(sums) != len(seqSum) {
					t.Fatalf("%s perGate=%v depth %d: %d summaries vs sequential %d",
						name, perGate, depth, len(sums), len(seqSum))
				}
				byEpoch := make(map[int]EvalSummary, len(sums))
				for _, s := range sums {
					byEpoch[s.Epoch] = s
				}
				for _, ref := range seqSum {
					s, ok := byEpoch[ref.Epoch]
					if !ok {
						t.Fatalf("%s perGate=%v depth %d: no summary for epoch %d", name, perGate, depth, ref.Epoch)
					}
					bad := s.Triples != ref.Triples
					if depth == 1 {
						bad = bad || s.Ticks != ref.Ticks || s.Messages != ref.Messages || s.Bytes != ref.Bytes
					} else {
						tickSlack := maxInt64(4, ref.Ticks/50)
						bad = bad || absInt64(s.Ticks-ref.Ticks) > tickSlack ||
							!within(s.Messages, ref.Messages, 0.01) || !within(s.Bytes, ref.Bytes, 0.01)
					}
					if bad {
						t.Errorf("%s perGate=%v depth %d epoch %d: summary {ticks %d, msgs %d, bytes %d, triples %d}, sequential {%d, %d, %d, %d}",
							name, perGate, depth, ref.Epoch, s.Ticks, s.Messages, s.Bytes, s.Triples,
							ref.Ticks, ref.Messages, ref.Bytes, ref.Triples)
					}
				}
			}
		}
	}
}

// within reports |a-b| <= tol*b (relative tolerance against the
// reference b).
func within(a, b uint64, tol float64) bool {
	d := a - b
	if a < b {
		d = b - a
	}
	return float64(d) <= tol*float64(b)
}

func absInt64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestPipelineOverlapSavesTicks pins the point of pipelining: at depth
// 4 the virtual-clock span covering all evaluations is well below the
// sequential span (epochs share the Δ-grid instead of queueing).
func TestPipelineOverlapSavesTicks(t *testing.T) {
	const k = 8
	cfg := engCfg(5, 1, 1, 9)
	circ := circuit.Product(5)

	span := func(depth int) int64 {
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Preprocess(k * circ.MulCount); err != nil {
			t.Fatal(err)
		}
		inputs := engInputs(cfg.N)
		var pending []*PendingEval
		for i := 0; i < k; i++ {
			if len(pending) == depth {
				if _, err := pending[0].Wait(); err != nil {
					t.Fatal(err)
				}
				pending = pending[1:]
			}
			p, err := eng.EvaluateAsync(circ, inputs)
			if err != nil {
				t.Fatal(err)
			}
			pending = append(pending, p)
		}
		for _, p := range pending {
			if _, err := p.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		sums := eng.Stats().Evals
		first, last := sums[0].StartTick, int64(0)
		for _, s := range sums {
			if s.StartTick < first {
				first = s.StartTick
			}
			if s.EndTick > last {
				last = s.EndTick
			}
		}
		return last - first
	}

	seq := span(1)
	pipe := span(4)
	if pipe >= seq {
		t.Fatalf("depth-4 span %d ticks not below depth-1 span %d", pipe, seq)
	}
	t.Logf("span: depth 1 = %d ticks, depth 4 = %d ticks (%.2fx)", seq, pipe, float64(seq)/float64(pipe))
}

// TestPipelineGuards: the sequential entry points and Snapshot refuse
// while the pipeline is non-empty, and Flush re-enables them.
func TestPipelineGuards(t *testing.T) {
	cfg := engCfg(5, 1, 1, 5)
	circ := circuit.Product(5)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Preprocess(4 * circ.MulCount); err != nil {
		t.Fatal(err)
	}
	inputs := engInputs(cfg.N)
	p, err := eng.EvaluateAsync(circ, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Evaluate(circ, inputs); !errors.Is(err, ErrEvalsInFlight) {
		t.Fatalf("Evaluate mid-pipeline: %v, want ErrEvalsInFlight", err)
	}
	if _, err := eng.Preprocess(8); !errors.Is(err, ErrEvalsInFlight) {
		t.Fatalf("Preprocess mid-pipeline: %v, want ErrEvalsInFlight", err)
	}
	if err := eng.Snapshot(discard{}); !errors.Is(err, ErrSnapshotMidEvaluate) {
		t.Fatalf("Snapshot mid-pipeline: %v, want ErrSnapshotMidEvaluate", err)
	}
	if _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Evaluate(circ, inputs); err != nil {
		t.Fatalf("Evaluate after Flush: %v", err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestPipelineRefillUnderLoad: with the watermark armed and a pool
// budgeted for a fraction of the stream, a depth-4 serving loop never
// sees ErrTriplesExhausted — background refills land while live
// epochs advance, every output matches the clear evaluation, and the
// refill traffic is folded into the preprocessing totals.
func TestPipelineRefillUnderLoad(t *testing.T) {
	const k, depth = 24, 4
	cfg := engCfg(5, 1, 1, 23)
	circ := circuit.Product(5)
	cfg.RefillLowWater = 3 * circ.MulCount
	cfg.RefillBudget = 8 * circ.MulCount
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Preprocess(4 * circ.MulCount); err != nil {
		t.Fatal(err)
	}
	base := eng.Stats()
	inputs := engInputs(cfg.N)
	want, err := circ.Eval(inputs)
	if err != nil {
		t.Fatal(err)
	}

	var pending []*PendingEval
	wait := func() {
		p := pending[0]
		pending = pending[1:]
		res, err := p.Wait()
		if err != nil {
			t.Fatalf("epoch %d: %v", p.Epoch(), err)
		}
		for j := range want {
			if res.Outputs[j] != want[j] {
				t.Fatalf("epoch %d: output[%d] = %d, want %d", p.Epoch(), j, res.Outputs[j].Uint64(), want[j].Uint64())
			}
		}
	}
	for i := 0; i < k; i++ {
		if len(pending) == depth {
			wait()
		}
		p, err := eng.EvaluateAsync(circ, inputs)
		if err != nil {
			t.Fatalf("submit %d (available %d, refilling %v): %v", i, eng.Available(), eng.Refilling(), err)
		}
		pending = append(pending, p)
	}
	for len(pending) > 0 {
		wait()
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}

	st := eng.Stats()
	if st.Batches <= base.Batches {
		t.Fatalf("pool batches %d after the stream, want > %d (no background refill ran)", st.Batches, base.Batches)
	}
	if st.PreprocessMessages <= base.PreprocessMessages {
		t.Fatalf("preprocess traffic %d msgs, want > %d (refill traffic not folded in)",
			st.PreprocessMessages, base.PreprocessMessages)
	}
	if len(st.Evals) != k {
		t.Fatalf("%d eval summaries, want %d", len(st.Evals), k)
	}
	for _, s := range st.Evals {
		if s.Triples != circ.MulCount {
			t.Fatalf("epoch %d consumed %d triples, want %d", s.Epoch, s.Triples, circ.MulCount)
		}
	}
}

// TestPipelineExhaustionRefillRace: a submission that arrives while
// the pool is empty and the refill is still in flight must block only
// until the batch lands (single-stepping the shared scheduler, so the
// live sibling keeps advancing) — not error. Run under -race in CI;
// the scheduler is single-threaded so the interleaving is the race
// surface.
func TestPipelineExhaustionRefillRace(t *testing.T) {
	cfg := engCfg(5, 1, 1, 29)
	circ := circuit.Product(5)
	cfg.RefillLowWater = circ.MulCount
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Preprocess(circ.MulCount); err != nil {
		t.Fatal(err)
	}
	inputs := engInputs(cfg.N)
	want, err := circ.Eval(inputs)
	if err != nil {
		t.Fatal(err)
	}

	// First submission drains the pool to zero and trips the watermark.
	p1, err := eng.EvaluateAsync(circ, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Refilling() {
		t.Fatal("watermark did not trigger a background refill")
	}
	if eng.Available() != 0 {
		t.Fatalf("pool holds %d after the draining submission, want 0", eng.Available())
	}
	// Second submission races the refill: Available is 0, the batch is
	// mid-flight. It must wait for the landing, not fail.
	p2, err := eng.EvaluateAsync(circ, inputs)
	if err != nil {
		t.Fatalf("submission racing the refill: %v", err)
	}
	for _, p := range []*PendingEval{p1, p2} {
		res, err := p.Wait()
		if err != nil {
			t.Fatalf("epoch %d: %v", p.Epoch(), err)
		}
		for j := range want {
			if res.Outputs[j] != want[j] {
				t.Fatalf("epoch %d: output[%d] = %d, want %d", p.Epoch(), j, res.Outputs[j].Uint64(), want[j].Uint64())
			}
		}
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}

	// Without the watermark, the same exhaustion surfaces the typed
	// error and leaves the engine fully usable.
	cfg.RefillLowWater = 0
	eng2, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Preprocess(circ.MulCount); err != nil {
		t.Fatal(err)
	}
	q, err := eng2.EvaluateAsync(circ, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.EvaluateAsync(circ, inputs); !errors.Is(err, ErrTriplesExhausted) {
		t.Fatalf("unarmed exhausted submit: %v, want ErrTriplesExhausted", err)
	}
	if _, err := q.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := eng2.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Preprocess(circ.MulCount); err != nil {
		t.Fatalf("refill Preprocess after exhaustion: %v", err)
	}
	if _, err := eng2.Evaluate(circ, inputs); err != nil {
		t.Fatalf("Evaluate after manual refill: %v", err)
	}
}

// TestAvailableMinAcrossHonest is the regression test for the
// first-honest-pool Available bug: with honest pools of unequal depth,
// Available must report the minimum, so the exhaustion pre-check agrees
// with the reserve that would actually fail.
func TestAvailableMinAcrossHonest(t *testing.T) {
	cfg := engCfg(5, 1, 1, 11)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Preprocess(8); err != nil {
		t.Fatal(err)
	}
	have := eng.Available()
	// Shorten one honest (non-first) party's pool directly.
	if _, err := eng.pools[3].Reserve(2); err != nil {
		t.Fatal(err)
	}
	if got := eng.Available(); got != have-2 {
		t.Fatalf("Available() = %d after shortening party 3's pool, want min %d", got, have-2)
	}
}

// TestReserveAllHonestFailure is the regression test for the
// zero-stand-in bug: an honest party whose reserve fails must surface
// ErrTriplesExhausted (not silently evaluate on zeroed triples), and
// every sibling reservation already taken must be released.
func TestReserveAllHonestFailure(t *testing.T) {
	cfg := engCfg(5, 1, 1, 13)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Preprocess(8); err != nil {
		t.Fatal(err)
	}
	full := eng.pools[1].Available()
	// Shorten honest party 4's pool below the request, bypassing the
	// engine's min-Available pre-check to hit the reserve error path.
	if _, err := eng.pools[4].Reserve(full - 1); err != nil {
		t.Fatal(err)
	}
	_, err = eng.reserveAll(full)
	if !errors.Is(err, ErrTriplesExhausted) {
		t.Fatalf("reserveAll with a short honest pool: %v, want ErrTriplesExhausted", err)
	}
	for i := 1; i <= cfg.N; i++ {
		want := full
		if i == 4 {
			want = 1
		}
		if got := eng.pools[i].Available(); got != want {
			t.Fatalf("party %d pool holds %d after failed reserveAll, want %d (siblings not released)", i, got, want)
		}
	}
}

// TestReserveAllCorruptStandIns: a corrupt party with a short pool gets
// zero-share stand-ins and the evaluation still terminates correctly —
// honest liveness never depends on corrupt shares.
func TestReserveAllCorruptStandIns(t *testing.T) {
	cfg := engCfg(5, 1, 1, 17)
	adv := &Adversary{Garble: []int{5}}
	eng, err := NewEngineAdv(cfg, adv)
	if err != nil {
		t.Fatal(err)
	}
	circ := circuit.Product(5)
	if _, err := eng.Preprocess(2 * circ.MulCount); err != nil {
		t.Fatal(err)
	}
	// Drain the corrupt party's pool: its reserve will fail.
	if _, err := eng.pools[5].Reserve(eng.pools[5].Available()); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Evaluate(circ, engInputs(5))
	if err != nil {
		t.Fatalf("Evaluate with corrupt short pool: %v", err)
	}
	if len(res.Outputs) == 0 {
		t.Fatal("no outputs")
	}
}
