package mpc

import (
	"errors"
	"fmt"

	"repro/circuit"
	"repro/field"
	"repro/internal/aba"
	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/triples"
)

// Engine lifecycle errors. ErrTriplesExhausted is recoverable: the
// engine and its World are fully usable after a refill Preprocess; the
// other two are caller mistakes in the Preprocess → Evaluate lifecycle.
var (
	// ErrNotPreprocessed is returned by Evaluate before the first
	// Preprocess: the engine has no triple pool to reserve from.
	ErrNotPreprocessed = errors.New("mpc: Evaluate before Preprocess: the engine has no triple pool yet (call Preprocess first)")
	// ErrDoublePreprocess is returned by a Preprocess that follows
	// another Preprocess with no evaluation in between: budget the
	// first call higher instead of stacking pool fills back to back.
	ErrDoublePreprocess = errors.New("mpc: double Preprocess: no evaluation has run since the last Preprocess (budget the first call higher instead)")
	// ErrTriplesExhausted is wrapped by an Evaluate whose circuit needs
	// more triples than the pool holds. Nothing is consumed and the
	// World is untouched: Preprocess a refill batch and retry.
	ErrTriplesExhausted = errors.New("mpc: triple pool exhausted")
	// ErrEvalsInFlight is returned by Evaluate and Preprocess while
	// pipelined evaluations or a background refill are in flight: both
	// calls account their cost as a before/after delta of the world's
	// counters, which is only meaningful with exclusive use of the
	// scheduler. Flush the pipeline first.
	ErrEvalsInFlight = errors.New("mpc: pipelined evaluations in flight (call Flush first)")
)

// Engine is a long-lived n-party MPC session: one simulated World whose
// preprocessing is amortized over many circuit evaluations.
//
// The paper's offline/online split makes ΠPreProcessing a producer of
// circuit-independent Beaver triples that the online phase merely
// consumes — yet the one-shot Run tears its World down after a single
// evaluation, re-paying VSS/ACS-heavy preprocessing per request. An
// Engine keeps the World: Preprocess runs one budgeted ΠPreProcessing
// batch filling a per-party triple Pool, and each Evaluate reserves
// just the cM triples its circuit needs, runs an input ΠACS plus the
// batched online phase in a fresh epoch namespace ("mpc/e<k>"), and
// retires that namespace on completion. Honest traffic per evaluation
// drops from the full TCirEval cost to the input-sharing + online cost,
// which is what request-serving scale needs.
//
// An Engine is not safe for concurrent use: like the World it wraps,
// it is a single-threaded deterministic simulation. Config.EventLimit
// is a lifetime budget across all epochs (default 200M events).
type Engine struct {
	cfg Config
	// adv is the session's static adversary, retained verbatim so a
	// Snapshot records the engine's full identity (a checkpoint only
	// restores under the same config AND adversary).
	adv    *Adversary
	pcfg   proto.Config
	world  *proto.World
	coin   aba.CoinSource
	silent map[int]bool
	// pools is 1-based: pools[i] is party i's share store; slot k of
	// every pool holds one party's share of the same ts-shared triple.
	pools []*triples.Pool

	// cleanup releases resources the transport resolution created (an
	// auto-assigned socket directory); nil for the simulator backend.
	cleanup func() error

	preprocessed  bool
	evalSinceFill bool
	// oneShot marks an engine consumed by OneShot: the one-shot phase
	// and the session lifecycle are mutually exclusive.
	oneShot bool
	evals   int
	ppCalls int
	// busy names the lifecycle phase currently executing ("" when
	// idle): Snapshot refuses while a phase is live, because the
	// scheduler then holds protocol events that cannot be serialized.
	busy string

	ppMsgs, ppBytes     uint64
	evalMsgs, evalBytes uint64
	evalSummaries       []EvalSummary

	// inflight holds the pipelined evaluations submitted through
	// EvaluateAsync and not yet completed, in submission order.
	inflight []*PendingEval
	// retired queues epoch namespaces whose evaluations completed but
	// whose handlers cannot be dropped yet: with sibling epochs still in
	// flight the scheduler may hold deliveries addressed to this
	// namespace, and dropping early would re-buffer them as strays. The
	// queue drains at the next quiescence point.
	retired []retiredEpoch
	// refill is the in-flight watermark-triggered background fill (nil
	// when none).
	refill *refillState

	// tracer receives engine lifecycle events (phases, epoch
	// retirement); nil means tracing is off. The same tracer is wired
	// through the world into the scheduler, network, runtimes and pools.
	tracer obs.Tracer
}

// EvalSummary is the per-evaluation latency/traffic record kept by the
// engine: one row per completed Evaluate, in order.
type EvalSummary struct {
	// Epoch is the evaluation's session epoch sequence number.
	Epoch int `json:"epoch"`
	// Triples is the pool reservation the circuit consumed.
	Triples int `json:"triples"`
	// StartTick/EndTick bound the evaluation on the virtual clock:
	// StartTick is the grid-anchored phase start, EndTick the last
	// honest termination. Ticks = EndTick - StartTick.
	StartTick int64 `json:"startTick"`
	EndTick   int64 `json:"endTick"`
	Ticks     int64 `json:"ticks"`
	// Messages/Bytes is the evaluation's honest-traffic delta.
	Messages uint64 `json:"messages"`
	Bytes    uint64 `json:"bytes"`
}

// EngineStats is the engine's cumulative amortization accounting.
type EngineStats struct {
	// Evaluations counts completed Evaluate calls; Batches counts
	// Preprocess fills.
	Evaluations int `json:"evaluations"`
	Batches     int `json:"batches"`
	// TriplesGenerated / TriplesConsumed / TriplesAvailable account the
	// pool: Generated = Consumed + Available.
	TriplesGenerated int `json:"triplesGenerated"`
	TriplesConsumed  int `json:"triplesConsumed"`
	TriplesAvailable int `json:"triplesAvailable"`
	// Pool is the first honest party's full pool accounting (all honest
	// pools agree), including the in-flight-fill gauge — the depth
	// figure `scenario workload -json` and the checkpoint inspect verb
	// report without reaching into internals.
	Pool triples.PoolStats `json:"pool"`
	// PreprocessMessages/Bytes is the honest traffic of every
	// Preprocess; EvalMessages/Bytes the honest traffic of every
	// Evaluate. Their ratio against Evaluations is the amortization
	// headline (see the scenario `workload` verb and BENCH_PR5.json).
	PreprocessMessages uint64 `json:"preprocessMessages"`
	PreprocessBytes    uint64 `json:"preprocessBytes"`
	EvalMessages       uint64 `json:"evalMessages"`
	EvalBytes          uint64 `json:"evalBytes"`
	// Events is the lifetime count of simulation events the engine's
	// world has executed, across preprocessing and every evaluation.
	Events uint64 `json:"events"`
	// Evals holds one latency/traffic summary per completed Evaluate,
	// in epoch order.
	Evals []EvalSummary `json:"evals,omitempty"`
}

// NewEngine assembles an all-honest session engine. The engine world is
// deterministic in cfg.Seed across the whole session: the same sequence
// of Preprocess and Evaluate calls replays bit-for-bit.
func NewEngine(cfg Config) (*Engine, error) { return NewEngineAdv(cfg, nil) }

// NewEngineAdv is NewEngine with a static adversary, corrupting the
// session's world exactly as Run's adversary corrupts a one-shot run.
func NewEngineAdv(cfg Config, adv *Adversary) (*Engine, error) {
	return newEngine(cfg, adv, nil, nil)
}

// NewEngineTraced is NewEngineAdv with a trace sink: tr receives the
// full typed event stream (scheduler ticks, sends/delivers, instance
// lifecycle, pool accounting, engine phases). Tracing does not perturb
// the simulation — a traced session replays bit-identical to an
// untraced one. tr may be nil (equivalent to NewEngineAdv).
func NewEngineTraced(cfg Config, adv *Adversary, tr obs.Tracer) (*Engine, error) {
	return newEngine(cfg, adv, tr, nil)
}

// newEngine validates cfg and assembles the world shared by the session
// API and the one-shot Run wrapper. factory selects the transport
// backend (nil = the in-memory simulator).
func newEngine(cfg Config, adv *Adversary, tr obs.Tracer, factory transport.Factory) (*Engine, error) {
	pcfg := proto.Config{
		N: cfg.N, Ts: cfg.Ts, Ta: cfg.Ta,
		Delta:      sim.Time(cfg.Delta),
		CoinRounds: cfg.CoinRounds,
		SyncOnly:   cfg.SyncOnly,
	}
	if pcfg.Delta == 0 {
		pcfg.Delta = 10
	}
	if pcfg.CoinRounds == 0 {
		pcfg.CoinRounds = 8
	}
	if err := pcfg.Validate(); err != nil {
		return nil, err
	}
	var kind proto.NetKind
	switch cfg.Network {
	case Sync:
		kind = proto.Sync
	case Async:
		kind = proto.Async
	default:
		return nil, fmt.Errorf("mpc: unknown network %q", cfg.Network)
	}

	corrupt := adv.corrupt()
	if len(corrupt) > max(cfg.Ts, cfg.Ta) {
		return nil, fmt.Errorf("mpc: %d corruptions exceed max(ts, ta) = %d", len(corrupt), max(cfg.Ts, cfg.Ta))
	}
	// Behaviours stack via Compose: a party named in several adversary
	// fields runs all of them chained (e.g. silent-and-garbling stays
	// silent, crash-then-delay accumulates), instead of the last field
	// silently winning.
	ctrl := adversary.NewController()
	silent := map[int]bool{}
	if adv != nil {
		for _, p := range adv.Silent {
			ctrl.Compose(p, adversary.Silent())
			silent[p] = true
		}
		for _, p := range adv.Garble {
			ctrl.Compose(p, adversary.GarbleMatching(func(string) bool { return true }))
		}
		for p, t := range adv.CrashAt {
			ctrl.Compose(p, adversary.CrashAt(sim.Time(t)))
		}
		for p, sub := range adv.Drop {
			ctrl.Compose(p, adversary.DropMatching(adversary.InstanceContains(sub)))
		}
		for p, rule := range adv.Delay {
			ctrl.Compose(p, adversary.DelayMatching(adversary.InstanceContains(rule.Match), sim.Time(rule.Extra)))
		}
		half := cfg.N / 2
		for _, p := range adv.Equivocate {
			ctrl.Compose(p, adversary.Equivocate(func(to int) bool { return to > half }))
		}
	}
	var policy sim.Policy = sim.AsyncPolicy{Delta: pcfg.Delta, Tail: cfg.Tail}
	if kind == proto.Sync {
		policy = sim.SyncPolicy{Delta: pcfg.Delta}
	}
	if cfg.BurstPeriod > 0 {
		policy = sim.BurstPolicy{Base: policy, Period: sim.Time(cfg.BurstPeriod), Down: sim.Time(cfg.BurstDown)}
	}
	if adv != nil && len(adv.StarveFrom) > 0 {
		starved := map[int]bool{}
		for _, p := range adv.StarveFrom {
			starved[p] = true
		}
		until := sim.Time(adv.StarveUntil)
		if until == 0 {
			until = 500 * pcfg.Delta
		}
		policy = sim.StarvePolicy{Base: policy, Until: until,
			Starve: func(from, to int) bool { return starved[from] }}
	}

	limit := cfg.EventLimit
	if limit == 0 {
		limit = 200_000_000
	}
	w, err := proto.NewWorldE(proto.WorldOpts{
		Cfg:         pcfg,
		Network:     kind,
		Policy:      policy,
		Seed:        cfg.Seed,
		Corrupt:     corrupt,
		Interceptor: ctrl,
		EventLimit:  limit,
		Tracer:      tr,
		Transport:   factory,
		Workers:     cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrTransport, err)
	}
	coin := aba.DefaultCoin(cfg.Seed ^ 0xc01c01)
	e := &Engine{
		cfg:    cfg,
		adv:    adv,
		pcfg:   pcfg,
		world:  w,
		coin:   coin,
		silent: silent,
		pools:  make([]*triples.Pool, cfg.N+1),
		tracer: tr,
	}
	for i := 1; i <= cfg.N; i++ {
		e.pools[i] = triples.NewPool(w.Runtimes[i], "pool", pcfg, coin)
	}
	return e, nil
}

// Preprocess runs one budgeted ΠPreProcessing batch across all parties
// and appends its triples to the engine's pool. The batch is rounded up
// to whole Fig 9 extractions, so the returned count — the triples
// actually generated — can exceed budget. Call it once up front with a
// budget covering the expected workload, and again only to refill after
// evaluations have drained the pool (a back-to-back second call returns
// ErrDoublePreprocess).
func (e *Engine) Preprocess(budget int) (int, error) {
	if budget < 1 {
		return 0, fmt.Errorf("mpc: Preprocess budget must be >= 1, have %d", budget)
	}
	if len(e.inflight) > 0 || e.refill != nil {
		return 0, ErrEvalsInFlight
	}
	if e.preprocessed && !e.evalSinceFill {
		return 0, ErrDoublePreprocess
	}
	e.busy = "Preprocess"
	defer func() { e.busy = "" }()
	e.drainIdle()
	pre := e.world.Metrics().Snapshot()
	begin := int64(e.world.Sched.Now())
	seq := int64(e.ppCalls)
	e.ppCalls++
	e.tracePhase(obs.KPhaseBegin, "preprocess", seq, 0)
	start := e.gridStart()
	want := 0
	for i := 1; i <= e.cfg.N; i++ {
		got, err := e.pools[i].Fill(budget, start, !e.silent[i], nil)
		if err != nil {
			return 0, err
		}
		want = got
	}
	e.world.RunToQuiescence()
	if err := e.transportCheck(); err != nil {
		return 0, err
	}
	for _, i := range e.world.Honest() {
		if e.pools[i].Filling() {
			return 0, fmt.Errorf("mpc: preprocessing batch incomplete after %d events (raise Config.EventLimit)",
				e.world.Sched.Processed())
		}
	}
	e.preprocessed = true
	e.evalSinceFill = false
	d := e.world.Metrics().Snapshot().Sub(pre)
	e.ppMsgs += d.Honest.Messages
	e.ppBytes += d.Honest.Bytes
	e.tracePhase(obs.KPhaseEnd, "preprocess", int64(e.world.Sched.Now())-begin, int64(d.Honest.Messages))
	return want, nil
}

// tracePhase emits an engine lifecycle event; a no-op when tracing is
// off.
func (e *Engine) tracePhase(kind obs.Kind, name string, a, b int64) {
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{
			Kind: kind, Tick: int64(e.world.Sched.Now()), Inst: name, A: a, B: b,
		})
	}
}

// Available returns the number of unconsumed pool triples: the minimum
// across the honest parties' pools, so the exhaustion pre-check agrees
// with the reserve that would actually fail. (Honest pools agree in
// every normal run; they can diverge after restoring a snapshot taken
// with a party mid-fill, which is exactly when the first honest pool
// alone would over-report.)
func (e *Engine) Available() int {
	have := -1
	for _, i := range e.world.Honest() {
		if a := e.pools[i].Available(); have < 0 || a < have {
			have = a
		}
	}
	if have < 0 {
		return 0
	}
	return have
}

// Evaluations returns the number of completed Evaluate calls.
func (e *Engine) Evaluations() int { return e.evals }

// Stats returns the engine's cumulative amortization accounting.
func (e *Engine) Stats() EngineStats {
	s := EngineStats{
		Evaluations:        e.evals,
		PreprocessMessages: e.ppMsgs,
		PreprocessBytes:    e.ppBytes,
		EvalMessages:       e.evalMsgs,
		EvalBytes:          e.evalBytes,
		Events:             e.world.Sched.Processed(),
		Evals:              append([]EvalSummary(nil), e.evalSummaries...),
	}
	for _, i := range e.world.Honest() {
		ps := e.pools[i].Stats()
		s.Pool = ps
		s.Batches = ps.Batches
		s.TriplesGenerated = ps.Generated
		s.TriplesConsumed = ps.Reserved
		s.TriplesAvailable = ps.Available
		break
	}
	return s
}

// Evaluate runs one circuit evaluation as a session epoch: it reserves
// circ.MulCount pool triples per party, shares the parties' inputs
// through a fresh ΠACS, evaluates the circuit with the batched online
// phase (or the per-gate reference under Config.PerGateEval), publicly
// reconstructs the outputs, and retires the epoch's instance namespace.
// The Result's traffic/event figures are this evaluation's deltas, so
// they compare directly against a one-shot Run of the same circuit.
//
// On ErrTriplesExhausted nothing has been consumed and the engine
// remains fully usable: Preprocess a refill and call Evaluate again.
func (e *Engine) Evaluate(circ *circuit.Circuit, inputs []field.Element) (*Result, error) {
	if !e.preprocessed {
		return nil, ErrNotPreprocessed
	}
	if len(inputs) != e.cfg.N {
		return nil, fmt.Errorf("mpc: %d inputs for %d parties", len(inputs), e.cfg.N)
	}
	if circ.N != e.cfg.N {
		return nil, fmt.Errorf("mpc: circuit has %d input slots, engine has %d parties", circ.N, e.cfg.N)
	}
	if len(e.inflight) > 0 || e.refill != nil {
		return nil, ErrEvalsInFlight
	}
	if have := e.Available(); circ.MulCount > have {
		// An evaluation tried (and failed) to consume the pool: that
		// re-arms Preprocess, so the documented recovery — refill and
		// retry — is never blocked by the double-Preprocess guard.
		e.evalSinceFill = true
		return nil, fmt.Errorf("mpc: evaluation needs %d triples, pool holds %d: %w", circ.MulCount, have, ErrTriplesExhausted)
	}

	e.busy = "Evaluate"
	defer func() { e.busy = "" }()
	e.drainIdle()

	reserved, err := e.reserveAll(circ.MulCount)
	if err != nil {
		e.evalSinceFill = true
		return nil, err
	}

	epoch := e.world.BeginEpoch()
	inst := epoch.Namespace("mpc")
	w := e.world
	start := e.gridStart()
	pre := w.Metrics().Snapshot()
	events0 := w.Sched.Processed()
	phaseBegin := int64(w.Sched.Now())
	e.tracePhase(obs.KPhaseBegin, "evaluate", int64(epoch.Seq()), 0)

	res := &Result{
		PerParty:      make([][]field.Element, e.cfg.N+1),
		TerminatedAt:  make([]int64, e.cfg.N+1),
		StartedAt:     int64(start),
		Deadline:      int64(start + core.SessionDeadline(e.pcfg, circ.MulDepth)),
		PaperDeadline: int64(start + core.PaperDeadline(e.pcfg, circ.MulDepth)),
	}
	mode := core.EvalLayered
	if e.cfg.PerGateEval {
		mode = core.EvalPerGate
	}
	engines := make([]*core.CirEval, e.cfg.N+1)
	for i := 1; i <= e.cfg.N; i++ {
		i := i
		engines[i] = core.NewSession(w.Runtimes[i], inst, circ, e.pcfg, e.coin, start, mode, reserved[i],
			func(out []field.Element) {
				res.PerParty[i] = out
				res.TerminatedAt[i] = int64(w.Sched.Now())
			})
	}
	for i := 1; i <= e.cfg.N; i++ {
		if e.silent[i] {
			continue
		}
		i := i
		w.Runtimes[i].At(start, func() { engines[i].Start(inputs[i-1]) })
	}
	w.RunToQuiescence()
	if err := e.transportCheck(); err != nil {
		return nil, err
	}

	d := w.Metrics().Snapshot().Sub(pre)
	res.HonestMessages = d.Honest.Messages
	res.HonestBytes = d.Honest.Bytes
	res.Events = w.Sched.Processed() - events0
	res.ByFamily = make(map[string]FamilyCounts, len(d.ByFamily))
	for fam, c := range d.ByFamily {
		res.ByFamily[fam] = FamilyCounts{Messages: c.Messages, Bytes: c.Bytes}
	}

	e.evals++
	e.evalSinceFill = true
	e.evalMsgs += res.HonestMessages
	e.evalBytes += res.HonestBytes
	end := res.StartedAt
	for i, t := range res.TerminatedAt {
		if i >= 1 && !w.IsCorrupt(i) && t > end {
			end = t
		}
	}
	e.evalSummaries = append(e.evalSummaries, EvalSummary{
		Epoch:     epoch.Seq(),
		Triples:   circ.MulCount,
		StartTick: res.StartedAt,
		EndTick:   end,
		Ticks:     end - res.StartedAt,
		Messages:  res.HonestMessages,
		Bytes:     res.HonestBytes,
	})
	// Retire the epoch: the session's handlers (and any stray buffered
	// traffic for them) are dropped so a long-lived engine's handler
	// tables stay proportional to the live epoch, not the history.
	for i := 1; i <= e.cfg.N; i++ {
		w.Runtimes[i].DropPrefix(inst)
	}
	e.tracePhase(obs.KPhaseEnd, "evaluate", int64(w.Sched.Now())-phaseBegin, int64(res.HonestMessages))
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{
			Kind: obs.KEpochRetire, Tick: int64(w.Sched.Now()), Inst: inst, A: int64(epoch.Seq()),
		})
	}
	return e.collect(res, engines)
}

// reserveAll reserves k triples from every party's pool for one
// evaluation. A corrupt party whose own pool cannot serve the request
// (e.g. its fill never completed on a sabotaged world, or its restored
// pool is short) gets zero-share stand-ins: its traffic is adversarial
// anyway, and honest liveness/correctness never depends on it. An
// honest party's failure is a real exhaustion: every sibling
// reservation already taken is released — the pools come back exactly
// as they were — and the typed error surfaces so the caller refills
// and retries instead of silently evaluating an honest party on zeroed
// triples.
func (e *Engine) reserveAll(k int) ([][]triples.Triple, error) {
	reserved := make([][]triples.Triple, e.cfg.N+1)
	taken := make([]*triples.Reservation, 0, e.cfg.N)
	for i := 1; i <= e.cfg.N; i++ {
		r, err := e.pools[i].Reserve(k)
		if err == nil {
			reserved[i] = r.Triples()
			taken = append(taken, r)
			continue
		}
		if e.world.IsCorrupt(i) {
			reserved[i] = make([]triples.Triple, k)
			continue
		}
		for _, rr := range taken {
			rr.Release()
		}
		return nil, fmt.Errorf("mpc: honest party %d's pool cannot serve %d triples (%v): %w", i, k, err, ErrTriplesExhausted)
	}
	return reserved, nil
}

// gridStart returns the structural anchor of the next session phase:
// the smallest multiple of Δ at or after the current virtual time. The
// paper's synchronous sub-protocols advance on the absolute Δ-grid
// (vss/wps gridNext), so a phase anchored off-grid would silently lose
// up to Δ-1 ticks of deadline slack — enough to break boundary-tight
// adversarial runs. Every pool fill and every evaluation therefore
// begins on the grid, like round k of a round-based protocol.
func (e *Engine) gridStart() sim.Time {
	now := e.world.Sched.Now()
	d := e.pcfg.Delta
	return ((now + d - 1) / d) * d
}

// runOneShot is Run's legacy body: the full ΠCirEval (input ACS and
// per-evaluation ΠPreProcessing together) at instance "mpc", time 0, on
// the engine's freshly assembled world — bit-identical to the pre-
// engine mpc.Run.
func (e *Engine) runOneShot(circ *circuit.Circuit, inputs []field.Element) (*Result, error) {
	e.busy = "Run"
	defer func() { e.busy = "" }()
	w := e.world
	res := &Result{
		PerParty:      make([][]field.Element, e.cfg.N+1),
		TerminatedAt:  make([]int64, e.cfg.N+1),
		Deadline:      int64(core.Deadline(e.pcfg, circ.MulDepth)),
		PaperDeadline: int64(core.PaperDeadline(e.pcfg, circ.MulDepth)),
	}
	mode := core.EvalLayered
	if e.cfg.PerGateEval {
		mode = core.EvalPerGate
	}
	engines := make([]*core.CirEval, e.cfg.N+1)
	for i := 1; i <= e.cfg.N; i++ {
		i := i
		engines[i] = core.NewWithMode(w.Runtimes[i], "mpc", circ, e.pcfg, e.coin, 0, mode, func(out []field.Element) {
			res.PerParty[i] = out
			res.TerminatedAt[i] = int64(w.Sched.Now())
		})
	}
	begin := int64(w.Sched.Now())
	e.tracePhase(obs.KPhaseBegin, "run", 0, 0)
	for i := 1; i <= e.cfg.N; i++ {
		if e.silent[i] {
			continue
		}
		engines[i].Start(inputs[i-1])
	}
	w.RunToQuiescence()
	if err := e.transportCheck(); err != nil {
		return nil, err
	}

	snap := w.Metrics().Snapshot()
	e.tracePhase(obs.KPhaseEnd, "run", int64(w.Sched.Now())-begin, int64(snap.Honest.Messages))
	res.HonestMessages = snap.Honest.Messages
	res.HonestBytes = snap.Honest.Bytes
	res.ByFamily = make(map[string]FamilyCounts, len(snap.ByFamily))
	for fam, c := range snap.ByFamily {
		res.ByFamily[fam] = FamilyCounts{Messages: c.Messages, Bytes: c.Bytes}
	}
	res.Events = w.Sched.Processed()
	return e.collect(res, engines)
}

// collect extracts the agreed outputs from the honest parties'
// terminated engines, verifying honest agreement.
func (e *Engine) collect(res *Result, engines []*core.CirEval) (*Result, error) {
	for i := 1; i <= e.cfg.N; i++ {
		if e.world.IsCorrupt(i) || res.PerParty[i] == nil {
			continue
		}
		if res.Outputs == nil {
			res.Outputs = res.PerParty[i]
			res.CS = engines[i].CS()
			continue
		}
		for k := range res.Outputs {
			if res.Outputs[k] != res.PerParty[i][k] {
				return res, ErrDisagreement
			}
		}
	}
	if res.Outputs == nil {
		return res, ErrNoHonestOutput
	}
	return res, nil
}
