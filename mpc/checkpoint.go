package mpc

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/triples"
)

// Engine checkpoint stream format (see docs/checkpointing.md):
//
//	bytes 0..5    magic "MPCKPT"
//	bytes 6..7    big-endian format version (CheckpointVersion)
//	bytes 8..11   big-endian payload length
//	payload       one JSON document (checkpointPayload)
//	last 4 bytes  big-endian IEEE CRC-32 of the payload
//
// The payload is self-describing JSON so a future version can evolve
// fields compatibly; the version number gates incompatible changes and
// the checksum turns silent torn writes into typed errors.

// CheckpointVersion is the engine checkpoint format version this build
// writes and the only version it reads.
const CheckpointVersion = 1

var checkpointMagic = [6]byte{'M', 'P', 'C', 'K', 'P', 'T'}

// maxCheckpointPayload rejects absurd length headers before allocating.
const maxCheckpointPayload = 1 << 30

// Checkpoint error taxonomy. All read-side failures are typed: a
// corrupted, truncated or otherwise undecodable stream matches
// ErrBadCheckpoint; a stream written by a different format version
// matches ErrCheckpointVersion (via *VersionError); a valid stream
// restored under a different engine configuration matches
// ErrCheckpointConfig (via *ConfigMismatchError). Snapshot-side
// refusals are ErrSnapshotMidFill and ErrSnapshotMidEvaluate.
var (
	// ErrBadCheckpoint is the sentinel wrapped by every decode failure:
	// bad magic, truncation, checksum mismatch, malformed JSON or a
	// payload violating the engine's internal invariants.
	ErrBadCheckpoint = errors.New("mpc: bad checkpoint (corrupted or truncated stream)")
	// ErrCheckpointVersion is the sentinel matched by *VersionError.
	ErrCheckpointVersion = errors.New("mpc: checkpoint format version mismatch")
	// ErrCheckpointConfig is the sentinel matched by
	// *ConfigMismatchError: the checkpoint is valid but was written by
	// an engine with a different Config or Adversary.
	ErrCheckpointConfig = errors.New("mpc: checkpoint config mismatch")
	// ErrSnapshotMidFill is returned by Snapshot while an honest
	// party's preprocessing fill is in flight.
	ErrSnapshotMidFill = errors.New("mpc: snapshot with a preprocessing fill in flight: let Preprocess complete (raise Config.EventLimit if it was cut off) before snapshotting")
	// ErrSnapshotMidEvaluate is returned by Snapshot while an
	// evaluation (or one-shot run) is executing, or while the scheduler
	// still holds pending events: live protocol state cannot be
	// serialized. Snapshot between Evaluate calls.
	ErrSnapshotMidEvaluate = errors.New("mpc: snapshot mid-evaluation: the scheduler holds live protocol events, which cannot be serialized; snapshot between Evaluate calls (raise Config.EventLimit if a run was cut off mid-phase)")
)

// VersionError reports a checkpoint written by a different format
// version; errors.Is(err, ErrCheckpointVersion) matches it.
type VersionError struct {
	// Have is the version in the stream, Want the version this build
	// supports.
	Have, Want uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("mpc: checkpoint format v%d, this build reads v%d", e.Have, e.Want)
}

// Unwrap lets errors.Is(err, ErrCheckpointVersion) succeed.
func (e *VersionError) Unwrap() error { return ErrCheckpointVersion }

// ConfigMismatchError reports a restore whose caller-supplied Config or
// Adversary differs from the one the checkpoint was written under;
// errors.Is(err, ErrCheckpointConfig) matches it.
type ConfigMismatchError struct {
	// Field is "config" or "adversary"; Have/Want are the canonical
	// JSON renderings of the checkpoint's and the caller's value.
	Field      string
	Have, Want string
}

func (e *ConfigMismatchError) Error() string {
	return fmt.Sprintf("mpc: checkpoint %s mismatch: checkpointed %s, caller passed %s", e.Field, e.Have, e.Want)
}

// Unwrap lets errors.Is(err, ErrCheckpointConfig) succeed.
func (e *ConfigMismatchError) Unwrap() error { return ErrCheckpointConfig }

// checkpointPayload is the JSON document inside a checkpoint stream:
// the engine's full identity (config + adversary, for mismatch
// detection) and every piece of state a fresh newEngine does not
// already rebuild. The stateless collaborators — coin schedule, kernel
// cache, adversary behaviours, handler tables — are reconstructed from
// the config, not serialized; docs/checkpointing.md lists what is and
// is not captured.
type checkpointPayload struct {
	Config    Config     `json:"config"`
	Adversary *Adversary `json:"adversary,omitempty"`

	World *proto.WorldState    `json:"world"`
	Pools []*triples.PoolState `json:"pools"` // index 0 = party 1

	Preprocessed  bool          `json:"preprocessed"`
	EvalSinceFill bool          `json:"evalSinceFill"`
	Evals         int           `json:"evals"`
	PPCalls       int           `json:"ppCalls"`
	PPMsgs        uint64        `json:"ppMsgs"`
	PPBytes       uint64        `json:"ppBytes"`
	EvalMsgs      uint64        `json:"evalMsgs"`
	EvalBytes     uint64        `json:"evalBytes"`
	EvalSummaries []EvalSummary `json:"evalSummaries,omitempty"`
}

// Snapshot writes a versioned checkpoint of the engine to w. It
// refuses mid-lifecycle capture with typed errors: ErrSnapshotMidFill
// while an honest pool's preprocessing batch is in flight and
// ErrSnapshotMidEvaluate while an evaluation is live or the scheduler
// holds pending events (both are reachable when Config.EventLimit cut
// a phase off before quiescence). A snapshot therefore always captures
// a consistent between-phases state, and restoring it replays the
// remaining workload bit-identically.
func (e *Engine) Snapshot(w io.Writer) error {
	if e.busy != "" {
		return fmt.Errorf("%w (engine is inside %s)", ErrSnapshotMidEvaluate, e.busy)
	}
	if n := len(e.inflight); n > 0 {
		return fmt.Errorf("%w (%d pipelined evaluations in flight: Flush first)", ErrSnapshotMidEvaluate, n)
	}
	for _, i := range e.world.Honest() {
		if e.pools[i].Filling() {
			return ErrSnapshotMidFill
		}
	}
	if n := e.world.Sched.Pending(); n > 0 {
		return fmt.Errorf("%w (%d events pending)", ErrSnapshotMidEvaluate, n)
	}
	ws, err := e.world.Checkpoint()
	if err != nil {
		return fmt.Errorf("mpc: snapshot: %w", err)
	}
	p := checkpointPayload{
		Config:        identityConfig(e.cfg),
		Adversary:     e.adv,
		World:         ws,
		Pools:         make([]*triples.PoolState, e.cfg.N),
		Preprocessed:  e.preprocessed,
		EvalSinceFill: e.evalSinceFill,
		Evals:         e.evals,
		PPCalls:       e.ppCalls,
		PPMsgs:        e.ppMsgs,
		PPBytes:       e.ppBytes,
		EvalMsgs:      e.evalMsgs,
		EvalBytes:     e.evalBytes,
		EvalSummaries: e.evalSummaries,
	}
	for i := 1; i <= e.cfg.N; i++ {
		p.Pools[i-1] = e.pools[i].Snapshot()
	}
	payload, err := json.Marshal(&p)
	if err != nil {
		return fmt.Errorf("mpc: snapshot: %w", err)
	}
	var hdr [12]byte
	copy(hdr[:6], checkpointMagic[:])
	binary.BigEndian.PutUint16(hdr[6:8], CheckpointVersion)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("mpc: snapshot: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("mpc: snapshot: %w", err)
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("mpc: snapshot: %w", err)
	}
	return nil
}

// readCheckpoint decodes and verifies one checkpoint stream. All
// failures are typed (ErrBadCheckpoint / *VersionError); a payload that
// parses is NOT yet semantically validated — restoreState does that.
func readCheckpoint(r io.Reader) (*checkpointPayload, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadCheckpoint, err)
	}
	if !bytes.Equal(hdr[:6], checkpointMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadCheckpoint, hdr[:6])
	}
	if v := binary.BigEndian.Uint16(hdr[6:8]); v != CheckpointVersion {
		return nil, &VersionError{Have: v, Want: CheckpointVersion}
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if n == 0 || n > maxCheckpointPayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrBadCheckpoint, n)
	}
	buf := make([]byte, int(n)+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", ErrBadCheckpoint, err)
	}
	payload, sum := buf[:n], binary.BigEndian.Uint32(buf[n:])
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: payload checksum %08x, trailer says %08x", ErrBadCheckpoint, got, sum)
	}
	p := &checkpointPayload{}
	if err := json.Unmarshal(payload, p); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrBadCheckpoint, err)
	}
	return p, nil
}

// canonicalJSON renders v for config comparison. Map keys marshal
// sorted, so equal values always render identically.
func canonicalJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("<unmarshalable: %v>", err)
	}
	return string(b)
}

// identityConfig strips the execution knobs that do not participate in
// the checkpoint identity: Workers changes how ticks execute, never
// what they compute, so a snapshot taken at workers=4 restores cleanly
// into a serial engine and vice versa (the same latitude TransportSpec
// already has via EngineOptions).
func identityConfig(cfg Config) Config {
	cfg.Workers = 0
	return cfg
}

// matchConfig compares the checkpointed value against the caller's by
// canonical JSON, the same equality the engine's determinism contract
// is quantified over.
func matchConfig(field string, have, want any) error {
	h, w := canonicalJSON(have), canonicalJSON(want)
	if h != w {
		return &ConfigMismatchError{Field: field, Have: h, Want: w}
	}
	return nil
}

// RestoreEngine reads a checkpoint written by Snapshot and rebuilds the
// engine under cfg, which must equal the checkpointed config
// (ErrCheckpointConfig otherwise — a checkpoint is only meaningful on
// the world it was captured from). The restored engine resumes the
// session bit-identically: the same sequence of Evaluate calls yields
// the same outputs, CS sets, traffic and tick figures as the engine
// that never stopped.
func RestoreEngine(cfg Config, r io.Reader) (*Engine, error) {
	return RestoreEngineTraced(cfg, nil, nil, r)
}

// RestoreEngineAdv is RestoreEngine for a session with a static
// adversary; adv must equal the checkpointed adversary.
func RestoreEngineAdv(cfg Config, adv *Adversary, r io.Reader) (*Engine, error) {
	return RestoreEngineTraced(cfg, adv, nil, r)
}

// RestoreEngineTraced is RestoreEngineAdv with a trace sink for the
// resumed session (pre-crash events are gone — tracing starts at the
// restore point). tr may be nil.
func RestoreEngineTraced(cfg Config, adv *Adversary, tr obs.Tracer, r io.Reader) (*Engine, error) {
	return RestoreEngineOpts(cfg, EngineOptions{Adversary: adv, Tracer: tr}, r)
}

// RestoreEngineOpts is the general restore constructor: a checkpoint
// identifies an engine by Config plus Adversary only, so the same
// checkpoint may be restored onto any transport backend — the session
// resumes bit-identically on the virtual clock whether the resumed
// traffic crosses the in-memory simulator or real sockets.
func RestoreEngineOpts(cfg Config, opts EngineOptions, r io.Reader) (*Engine, error) {
	p, err := readCheckpoint(r)
	if err != nil {
		return nil, err
	}
	if err := matchConfig("config", identityConfig(p.Config), identityConfig(cfg)); err != nil {
		return nil, err
	}
	if err := matchConfig("adversary", p.Adversary, opts.Adversary); err != nil {
		return nil, err
	}
	e, err := NewEngineOpts(cfg, opts)
	if err != nil {
		return nil, err
	}
	if err := e.restoreState(p); err != nil {
		e.Close()
		return nil, err
	}
	return e, nil
}

// restoreState loads a verified payload into a freshly built engine,
// validating the payload's internal invariants (everything here wraps
// ErrBadCheckpoint: the stream decoded but lies about engine state).
func (e *Engine) restoreState(p *checkpointPayload) error {
	badf := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadCheckpoint, fmt.Sprintf(format, args...))
	}
	if p.World == nil {
		return badf("missing world state")
	}
	if len(p.Pools) != e.cfg.N {
		return badf("%d pool states for %d parties", len(p.Pools), e.cfg.N)
	}
	if p.Evals < 0 || p.PPCalls < 0 {
		return badf("negative lifecycle counters (evals %d, ppCalls %d)", p.Evals, p.PPCalls)
	}
	if p.World.Epochs < p.Evals {
		return badf("epoch counter %d below evaluation count %d", p.World.Epochs, p.Evals)
	}
	if err := e.world.Restore(p.World); err != nil {
		return badf("world: %v", err)
	}
	for i := 1; i <= e.cfg.N; i++ {
		pool, err := triples.RestorePool(e.world.Runtimes[i], "pool", e.pcfg, e.coin, p.Pools[i-1])
		if err != nil {
			return badf("pool %d: %v", i, err)
		}
		e.pools[i] = pool
	}
	e.preprocessed = p.Preprocessed
	e.evalSinceFill = p.EvalSinceFill
	e.evals = p.Evals
	e.ppCalls = p.PPCalls
	e.ppMsgs = p.PPMsgs
	e.ppBytes = p.PPBytes
	e.evalMsgs = p.EvalMsgs
	e.evalBytes = p.EvalBytes
	e.evalSummaries = append([]EvalSummary(nil), p.EvalSummaries...)
	return nil
}

// CheckpointInfo is the human-facing summary of a checkpoint stream,
// decoded without building an engine (the `scenario checkpoint` verb).
type CheckpointInfo struct {
	Version   int        `json:"version"`
	Config    Config     `json:"config"`
	Adversary *Adversary `json:"adversary,omitempty"`
	// Now is the virtual clock at capture; Epochs the session epochs
	// begun; Evaluations the completed Evaluate calls.
	Now         int64 `json:"now"`
	Epochs      int   `json:"epochs"`
	Evaluations int   `json:"evaluations"`
	// Preprocessed reports whether the engine had a filled pool;
	// Batches counts its preprocessing fills; Pool is the first honest
	// party's depth accounting.
	Preprocessed bool              `json:"preprocessed"`
	Batches      int               `json:"batches"`
	Pool         triples.PoolStats `json:"pool"`
}

// InspectCheckpoint decodes a checkpoint stream's summary without
// restoring an engine. It shares the read path (and error taxonomy)
// with RestoreEngine but skips the config comparison: inspection has
// no caller-side config to compare against.
func InspectCheckpoint(r io.Reader) (*CheckpointInfo, error) {
	p, err := readCheckpoint(r)
	if err != nil {
		return nil, err
	}
	if p.World == nil {
		return nil, fmt.Errorf("%w: missing world state", ErrBadCheckpoint)
	}
	info := &CheckpointInfo{
		Version:      CheckpointVersion,
		Config:       p.Config,
		Adversary:    p.Adversary,
		Now:          p.World.Sched.Now,
		Epochs:       p.World.Epochs,
		Evaluations:  p.Evals,
		Preprocessed: p.Preprocessed,
	}
	corrupt := map[int]bool{}
	for _, c := range p.Adversary.corrupt() {
		corrupt[c] = true
	}
	for i := 1; i <= len(p.Pools); i++ {
		if corrupt[i] || p.Pools[i-1] == nil {
			continue
		}
		info.Pool = p.Pools[i-1].Stats()
		info.Batches = info.Pool.Batches
		break
	}
	return info, nil
}
