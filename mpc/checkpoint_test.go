package mpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"

	"repro/circuit"
	"repro/field"
)

// snapshotEngine builds an engine mid-session (preprocessed for k
// product evaluations, evalsBefore of them served) and returns it with
// its checkpoint bytes.
func snapshotEngine(t *testing.T, cfg Config, k, evalsBefore int) (*Engine, []byte) {
	t.Helper()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	circ := circuit.Product(cfg.N)
	if _, err := eng.Preprocess(k * circ.MulCount); err != nil {
		t.Fatal(err)
	}
	inputs := engInputs(cfg.N)
	for i := 0; i < evalsBefore; i++ {
		if _, err := eng.Evaluate(circ, inputs); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := eng.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return eng, buf.Bytes()
}

// TestCheckpointRoundTrip is the engine-level kill-and-resume
// differential: snapshot after 2 of 4 evaluations, restore, and the
// remaining evaluations plus the final stats must be bit-identical to
// the engine that never stopped.
func TestCheckpointRoundTrip(t *testing.T) {
	cfg := engCfg(5, 1, 1, 7)
	eng, ck := snapshotEngine(t, cfg, 4, 2)
	restored, err := RestoreEngine(cfg, bytes.NewReader(ck))
	if err != nil {
		t.Fatal(err)
	}
	circ := circuit.Product(cfg.N)
	inputs := engInputs(cfg.N)
	for round := 0; round < 2; round++ {
		a, err := eng.Evaluate(circ, inputs)
		if err != nil {
			t.Fatalf("original round %d: %v", round, err)
		}
		b, err := restored.Evaluate(circ, inputs)
		if err != nil {
			t.Fatalf("restored round %d: %v", round, err)
		}
		if !reflect.DeepEqual(a.Outputs, b.Outputs) || !reflect.DeepEqual(a.CS, b.CS) ||
			a.HonestMessages != b.HonestMessages || a.HonestBytes != b.HonestBytes ||
			!reflect.DeepEqual(a.ByFamily, b.ByFamily) {
			t.Fatalf("round %d diverged after restore:\noriginal %+v\nrestored %+v", round, a, b)
		}
	}
	if a, b := eng.Stats(), restored.Stats(); !reflect.DeepEqual(a, b) {
		t.Fatalf("final stats diverged:\noriginal %+v\nrestored %+v", a, b)
	}
}

// TestCheckpointDoubleRestore restores the same stream twice; both
// engines must replay identically (a checkpoint is a value, not a
// transferable lease).
func TestCheckpointDoubleRestore(t *testing.T) {
	cfg := engCfg(5, 1, 1, 11)
	_, ck := snapshotEngine(t, cfg, 2, 1)
	a, err := RestoreEngine(cfg, bytes.NewReader(ck))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RestoreEngine(cfg, bytes.NewReader(ck))
	if err != nil {
		t.Fatal(err)
	}
	circ := circuit.Product(cfg.N)
	inputs := engInputs(cfg.N)
	ra, err := a.Evaluate(circ, inputs)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Evaluate(circ, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra.Outputs, rb.Outputs) || ra.HonestMessages != rb.HonestMessages {
		t.Fatal("two restores of one checkpoint diverged")
	}
}

// TestCheckpointRestoreThenRefill restores an engine whose pool is
// nearly drained and drives it through exhaustion, a refill batch and
// another evaluation — the restored batch counter must keep the refill
// namespace clear of the pre-checkpoint batch.
func TestCheckpointRestoreThenRefill(t *testing.T) {
	cfg := engCfg(5, 1, 1, 13)
	eng, ck := snapshotEngine(t, cfg, 1, 1) // budget for exactly 1 eval, already served
	restored, err := RestoreEngine(cfg, bytes.NewReader(ck))
	if err != nil {
		t.Fatal(err)
	}
	circ := circuit.Product(cfg.N)
	inputs := engInputs(cfg.N)
	for name, e := range map[string]*Engine{"original": eng, "restored": restored} {
		if _, err := e.Evaluate(circ, inputs); !errors.Is(err, ErrTriplesExhausted) {
			t.Fatalf("%s: drained engine evaluated: %v", name, err)
		}
		if _, err := e.Preprocess(circ.MulCount); err != nil {
			t.Fatalf("%s: refill: %v", name, err)
		}
	}
	a, err := eng.Evaluate(circ, inputs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Evaluate(circ, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Outputs, b.Outputs) || a.HonestMessages != b.HonestMessages {
		t.Fatal("post-refill evaluation diverged after restore")
	}
	if as, bs := eng.Stats(), restored.Stats(); !reflect.DeepEqual(as, bs) {
		t.Fatalf("post-refill stats diverged:\noriginal %+v\nrestored %+v", as, bs)
	}
}

// TestCheckpointAdversarySession checkpoints a session with a static
// adversary: restore must demand the same adversary and then replay
// identically.
func TestCheckpointAdversarySession(t *testing.T) {
	cfg := engCfg(8, 2, 1, 3)
	adv := &Adversary{Garble: []int{3}, Silent: []int{6}}
	eng, err := NewEngineAdv(cfg, adv)
	if err != nil {
		t.Fatal(err)
	}
	circ := circuit.Sum(cfg.N)
	if _, err := eng.Preprocess(1); err != nil {
		t.Fatal(err)
	}
	inputs := engInputs(cfg.N)
	if _, err := eng.Evaluate(circ, inputs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	if _, err := RestoreEngine(cfg, bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCheckpointConfig) {
		t.Fatalf("restore without the adversary: %v, want ErrCheckpointConfig", err)
	}
	restored, err := RestoreEngineAdv(cfg, adv, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.Evaluate(circ, inputs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Evaluate(circ, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Outputs, b.Outputs) || !reflect.DeepEqual(a.CS, b.CS) {
		t.Fatal("adversarial session diverged after restore")
	}
}

// TestCheckpointTruncated feeds every strictly-shorter prefix class of
// a valid stream to RestoreEngine: all must fail with
// ErrBadCheckpoint, never panic, never succeed.
func TestCheckpointTruncated(t *testing.T) {
	cfg := engCfg(5, 1, 1, 5)
	_, ck := snapshotEngine(t, cfg, 1, 0)
	for _, n := range []int{0, 3, 6, 8, 11, 12, len(ck) / 2, len(ck) - 4, len(ck) - 1} {
		if _, err := RestoreEngine(cfg, bytes.NewReader(ck[:n])); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("prefix of %d bytes: %v, want ErrBadCheckpoint", n, err)
		}
	}
}

// TestCheckpointCorrupted flips one byte at a time across the regions
// of a valid stream: every flip must surface as a typed error (bad
// stream or version skew), and no flip may restore successfully.
func TestCheckpointCorrupted(t *testing.T) {
	cfg := engCfg(5, 1, 1, 5)
	_, ck := snapshotEngine(t, cfg, 1, 0)
	positions := []int{0, 5, 6, 7, 8, 12, 40, len(ck) / 2, len(ck) - 3, len(ck) - 1}
	for _, pos := range positions {
		mut := append([]byte(nil), ck...)
		mut[pos] ^= 0x41
		_, err := RestoreEngine(cfg, bytes.NewReader(mut))
		if err == nil {
			t.Errorf("flip at %d restored successfully", pos)
			continue
		}
		if !errors.Is(err, ErrBadCheckpoint) && !errors.Is(err, ErrCheckpointVersion) {
			t.Errorf("flip at %d: untyped error %v", pos, err)
		}
	}
}

// TestCheckpointVersionSkew rewrites the version field (with a valid
// payload and checksum): restore must fail with a *VersionError
// carrying both versions.
func TestCheckpointVersionSkew(t *testing.T) {
	cfg := engCfg(5, 1, 1, 5)
	_, ck := snapshotEngine(t, cfg, 1, 0)
	mut := append([]byte(nil), ck...)
	binary.BigEndian.PutUint16(mut[6:8], CheckpointVersion+1)
	_, err := RestoreEngine(cfg, bytes.NewReader(mut))
	if !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("version skew: %v, want ErrCheckpointVersion", err)
	}
	var ve *VersionError
	if !errors.As(err, &ve) || ve.Have != CheckpointVersion+1 || ve.Want != CheckpointVersion {
		t.Fatalf("version skew error %v, want *VersionError{Have: %d, Want: %d}", err, CheckpointVersion+1, CheckpointVersion)
	}
}

// TestCheckpointConfigMismatch restores a valid stream under a
// different config: typed ErrCheckpointConfig, with the differing
// field named.
func TestCheckpointConfigMismatch(t *testing.T) {
	cfg := engCfg(5, 1, 1, 5)
	_, ck := snapshotEngine(t, cfg, 1, 0)
	other := cfg
	other.Seed = cfg.Seed + 1
	_, err := RestoreEngine(other, bytes.NewReader(ck))
	if !errors.Is(err, ErrCheckpointConfig) {
		t.Fatalf("seed mismatch: %v, want ErrCheckpointConfig", err)
	}
	var cm *ConfigMismatchError
	if !errors.As(err, &cm) || cm.Field != "config" {
		t.Fatalf("seed mismatch error %v, want *ConfigMismatchError on config", err)
	}
	if _, err := RestoreEngineAdv(cfg, &Adversary{Silent: []int{2}}, bytes.NewReader(ck)); !errors.Is(err, ErrCheckpointConfig) {
		t.Fatalf("adversary mismatch: %v, want ErrCheckpointConfig", err)
	}
}

// TestSnapshotMidFill cuts a preprocessing batch off with a tiny event
// limit: Snapshot must refuse with ErrSnapshotMidFill while the fill
// is marked in flight.
func TestSnapshotMidFill(t *testing.T) {
	cfg := engCfg(5, 1, 1, 5)
	cfg.EventLimit = 500 // far below a n=5 fill's event count
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Preprocess(4); err == nil {
		t.Fatal("tiny event limit did not cut preprocessing off")
	}
	var buf bytes.Buffer
	if err := eng.Snapshot(&buf); !errors.Is(err, ErrSnapshotMidFill) {
		t.Fatalf("snapshot mid-fill: %v, want ErrSnapshotMidFill", err)
	}
}

// TestSnapshotMidEvaluate cuts an evaluation off (event limit between
// the preprocessing's and the evaluation's event counts): Snapshot
// must refuse with ErrSnapshotMidEvaluate while undelivered protocol
// events remain.
func TestSnapshotMidEvaluate(t *testing.T) {
	cfg := engCfg(5, 1, 1, 5)
	ref, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	circ := circuit.Product(cfg.N)
	if _, err := ref.Preprocess(circ.MulCount); err != nil {
		t.Fatal(err)
	}
	afterPP := ref.Stats().Events
	if _, err := ref.Evaluate(circ, engInputs(cfg.N)); err != nil {
		t.Fatal(err)
	}
	afterEval := ref.Stats().Events

	cut := cfg
	cut.EventLimit = (afterPP + afterEval) / 2
	eng, err := NewEngine(cut)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Preprocess(circ.MulCount); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Evaluate(circ, engInputs(cfg.N)); err == nil {
		t.Fatal("event limit did not cut the evaluation off")
	}
	var buf bytes.Buffer
	if err := eng.Snapshot(&buf); !errors.Is(err, ErrSnapshotMidEvaluate) {
		t.Fatalf("snapshot mid-evaluate: %v, want ErrSnapshotMidEvaluate", err)
	}
}

// TestInspectCheckpoint pins the summary fields the `scenario
// checkpoint` verb prints.
func TestInspectCheckpoint(t *testing.T) {
	cfg := engCfg(5, 1, 1, 9)
	eng, ck := snapshotEngine(t, cfg, 2, 1)
	info, err := InspectCheckpoint(bytes.NewReader(ck))
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if info.Version != CheckpointVersion || info.Evaluations != 1 || !info.Preprocessed {
		t.Fatalf("inspect summary %+v", info)
	}
	if info.Pool != st.Pool {
		t.Fatalf("inspect pool %+v != engine pool %+v", info.Pool, st.Pool)
	}
	if info.Config.Seed != cfg.Seed || info.Config.N != cfg.N {
		t.Fatalf("inspect config %+v != %+v", info.Config, cfg)
	}
}

// FuzzCheckpointRoundTrip feeds arbitrary bytes to the restore path:
// any input must either fail with one of the three typed sentinels or
// restore an engine whose own re-snapshot restores again — never
// panic, never return an untyped error.
func FuzzCheckpointRoundTrip(f *testing.F) {
	cfg := Config{N: 5, Ts: 1, Ta: 1, Network: Sync, Seed: 7}
	eng, err := NewEngine(cfg)
	if err != nil {
		f.Fatal(err)
	}
	circ := circuit.Product(cfg.N)
	if _, err := eng.Preprocess(circ.MulCount); err != nil {
		f.Fatal(err)
	}
	inputs := make([]field.Element, cfg.N)
	for i := range inputs {
		inputs[i] = field.New(uint64(i + 2))
	}
	if _, err := eng.Evaluate(circ, inputs); err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := eng.Snapshot(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:9])
	skewed := append([]byte(nil), valid.Bytes()...)
	binary.BigEndian.PutUint16(skewed[6:8], CheckpointVersion+1)
	f.Add(skewed)
	f.Add([]byte("MPCKPT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := RestoreEngine(cfg, bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadCheckpoint) && !errors.Is(err, ErrCheckpointVersion) && !errors.Is(err, ErrCheckpointConfig) {
				t.Fatalf("untyped restore error: %v", err)
			}
			return
		}
		// A successful restore must re-snapshot and re-restore: the
		// accepted state is internally consistent.
		var buf bytes.Buffer
		if err := restored.Snapshot(&buf); err != nil {
			t.Fatalf("re-snapshot of accepted checkpoint failed: %v", err)
		}
		if _, err := RestoreEngine(cfg, bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-restore of accepted checkpoint failed: %v", err)
		}
	})
}

// TestCheckpointCorpusCRC keeps the committed fuzz corpus honest: the
// valid-snapshot entry must restore, proving the corpus was generated
// from a real stream rather than hand-typed.
func TestCheckpointSnapshotDeterminism(t *testing.T) {
	cfg := engCfg(5, 1, 1, 21)
	_, ck1 := snapshotEngine(t, cfg, 2, 1)
	_, ck2 := snapshotEngine(t, cfg, 2, 1)
	if !bytes.Equal(ck1, ck2) {
		t.Fatal("two identical sessions produced different checkpoint bytes")
	}
	// Sanity: the framed payload checksum actually covers the payload.
	n := binary.BigEndian.Uint32(ck1[8:12])
	payload := ck1[12 : 12+int(n)]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(ck1[12+int(n):]) {
		t.Fatal("trailer CRC does not cover the payload")
	}
}
