package mpc

// Concurrent epoch pipelining: EvaluateAsync submits an evaluation
// without draining the scheduler, so several epochs advance interleaved
// on the engine's single deterministic event loop — concurrency as
// interleaving under one scheduler, never threads. Each epoch lives in
// its own "mpc/e<k>" namespace; per-epoch traffic is attributed by a
// metrics prefix tracker instead of before/after deltas (which stop
// being meaningful once epochs overlap); namespace retirement is
// deferred to the next quiescence point so in-flight deliveries of a
// completed sibling are never re-buffered as strays.
//
// Determinism guarantee, precisely: a pipelined engine produces
// bit-identical outputs and CS sets to the sequential engine on the
// same seed at every depth, and at depth 1 (no overlap) the per-epoch
// traffic and tick spans are bit-identical too. At depth > 1 the
// per-epoch traffic and spans sit within a sub-percent noise band of
// the sequential figures, not exactly on them: parties draw sharing
// polynomials and coins from one per-party PRNG stream, and the
// network draws per-message jitter from one delay stream, both in
// global event order — overlapping epochs permute those draws. The
// permutation changes share values and delivery ticks, never protocol
// outcomes: reconstruction cancels the sharing randomness exactly, so
// outputs and CS votes are invariant. (The streams stay shared on
// purpose — the delay stream models one global adversarial scheduler,
// not per-epoch networks.) The differential gate in pipeline_test.go
// pins all of this. What pipelining buys is wall-clock occupancy: N
// in-flight epochs share the Δ-grid instead of queueing behind one
// another, an ~N-fold span reduction.

import (
	"fmt"

	"repro/circuit"
	"repro/field"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// PendingEval is one in-flight pipelined evaluation: a handle returned
// by EvaluateAsync whose Wait drives the shared scheduler until this
// epoch terminates and returns its Result. The handle is single-owner
// and not safe for concurrent use (like the Engine itself).
type PendingEval struct {
	e     *Engine
	epoch int
	inst  string
	// mulCount is the triple reservation the epoch consumed.
	mulCount int
	// begin is the submit tick (phase-span bookkeeping).
	begin   int64
	res     *Result
	engines []*core.CirEval
	// trk attributes honest traffic under the epoch's namespace.
	trk *sim.PrefixCounter
	// remaining counts honest parties that have not terminated yet;
	// completion fires when it reaches zero.
	remaining int
	// done marks the evaluation finalized (accounting recorded, handle
	// off the in-flight list); collected marks Wait's one-time output
	// verification done.
	done      bool
	collected bool
	finalRes  *Result
	err       error
}

// Epoch returns the evaluation's session epoch sequence number.
func (p *PendingEval) Epoch() int { return p.epoch }

// Done reports whether the evaluation has completed (Wait will return
// without driving the scheduler).
func (p *PendingEval) Done() bool { return p.done }

// refillState tracks one watermark-triggered background fill.
type refillState struct {
	trk   *sim.PrefixCounter
	begin int64
	// remaining counts honest pools whose batch has not landed.
	remaining int
}

// retiredEpoch queues a completed epoch's namespace for deferred
// retirement.
type retiredEpoch struct {
	inst string
	seq  int
}

// EvaluateAsync submits a circuit evaluation as a pipelined epoch and
// returns immediately: the epoch's sessions are registered and its
// grid-anchored start is scheduled, but no event runs until Wait,
// Flush, or a sibling submission drives the shared scheduler. Up to
// the caller's chosen depth, multiple pending evaluations overlap on
// one World — outputs stay bit-identical to sequential Evaluate calls
// on the same seed under the synchronous policy (see the package
// pipelining notes).
//
// If the pool cannot serve the reservation, the engine refills before
// submitting: with Config.RefillLowWater armed it overlaps a
// background ΠPreProcessing fill with the live epochs (stalling this
// submission only until the batch lands, while in-flight evaluations
// keep advancing); without it the typed ErrTriplesExhausted surfaces
// exactly as on the sequential path. Independently, a submission that
// leaves the pool below the low-water mark triggers the next
// background refill so later submissions do not stall at all.
func (e *Engine) EvaluateAsync(circ *circuit.Circuit, inputs []field.Element) (*PendingEval, error) {
	if !e.preprocessed {
		return nil, ErrNotPreprocessed
	}
	if len(inputs) != e.cfg.N {
		return nil, fmt.Errorf("mpc: %d inputs for %d parties", len(inputs), e.cfg.N)
	}
	if circ.N != e.cfg.N {
		return nil, fmt.Errorf("mpc: circuit has %d input slots, engine has %d parties", circ.N, e.cfg.N)
	}
	if err := e.ensureTriples(circ.MulCount); err != nil {
		return nil, err
	}
	// Watermark check before reserving (the decision is the same — the
	// reserve is about to subtract MulCount — and failure atomicity is
	// cleaner with no reservation taken yet).
	if lw := e.cfg.RefillLowWater; lw > 0 && e.refill == nil && e.Available()-circ.MulCount < lw {
		if err := e.startRefill(0); err != nil {
			return nil, err
		}
	}
	reserved, err := e.reserveAll(circ.MulCount)
	if err != nil {
		e.evalSinceFill = true
		return nil, err
	}

	w := e.world
	epoch := w.BeginEpoch()
	inst := epoch.Namespace("mpc")
	start := e.gridStart()
	res := &Result{
		PerParty:      make([][]field.Element, e.cfg.N+1),
		TerminatedAt:  make([]int64, e.cfg.N+1),
		StartedAt:     int64(start),
		Deadline:      int64(start + core.SessionDeadline(e.pcfg, circ.MulDepth)),
		PaperDeadline: int64(start + core.PaperDeadline(e.pcfg, circ.MulDepth)),
	}
	mode := core.EvalLayered
	if e.cfg.PerGateEval {
		mode = core.EvalPerGate
	}
	p := &PendingEval{
		e:        e,
		epoch:    epoch.Seq(),
		inst:     inst,
		mulCount: circ.MulCount,
		begin:    int64(w.Sched.Now()),
		res:      res,
		engines:  make([]*core.CirEval, e.cfg.N+1),
		trk:      w.Metrics().Track(inst),
	}
	for i := 1; i <= e.cfg.N; i++ {
		i := i
		honest := !w.IsCorrupt(i)
		if honest {
			p.remaining++
		}
		p.engines[i] = core.NewSession(w.Runtimes[i], inst, circ, e.pcfg, e.coin, start, mode, reserved[i],
			func(out []field.Element) {
				// Per-party slots are disjoint, so the writes are safe from
				// a parallel tick's workers; folding the completion into
				// shared engine state is deferred to the party's canonical
				// position (immediate on the serial path).
				res.PerParty[i] = out
				res.TerminatedAt[i] = int64(w.Sched.Now())
				if honest {
					w.Runtimes[i].Defer(func() {
						p.remaining--
						if p.remaining == 0 {
							e.complete(p)
						}
					})
				}
			})
	}
	for i := 1; i <= e.cfg.N; i++ {
		if e.silent[i] {
			continue
		}
		i := i
		w.Runtimes[i].At(start, func() { p.engines[i].Start(inputs[i-1]) })
	}
	e.inflight = append(e.inflight, p)
	e.evalSinceFill = true
	e.tracePhase(obs.KPhaseBegin, "evaluate", int64(p.epoch), 0)
	e.tracePipeline(int64(p.epoch))
	return p, nil
}

// Wait drives the shared scheduler until this evaluation completes —
// advancing every in-flight sibling epoch (and any background refill)
// along the way — then verifies honest agreement and returns the
// Result. If the scheduler drains or hits the event limit first, the
// evaluation is finalized with whatever terminations it reached, and
// collection reports ErrNoHonestOutput/ErrDisagreement exactly as the
// sequential path would. Wait is idempotent: later calls return the
// same Result without driving anything.
//
// Result caveats under overlap: Events is 0 (simulation events cannot
// be attributed to one epoch once several interleave), and
// HonestMessages/Bytes/ByFamily come from the epoch's namespace
// tracker — under the synchronous policy these equal the sequential
// engine's per-evaluation deltas.
func (p *PendingEval) Wait() (*Result, error) {
	e := p.e
	// Tick-granular polling: completion is only observed at tick
	// boundaries, so the next submission point — and with it every later
	// sequence number and RNG draw — is identical at every worker count
	// (a parallel batch cannot stop mid-tick on the completing event the
	// way per-event stepping would).
	for !p.done && e.world.StepTick() {
	}
	if !p.done {
		// Quiescence (or the event limit) without full termination:
		// finalize with the terminations reached, like a sequential
		// Evaluate whose RunToQuiescence returned early.
		e.complete(p)
	}
	if err := e.transportCheck(); err != nil {
		return nil, err
	}
	e.retireQuiesced()
	if !p.collected {
		p.collected = true
		p.finalRes, p.err = e.collect(p.res, p.engines)
	}
	return p.finalRes, p.err
}

// InFlight returns the number of submitted evaluations that have not
// completed.
func (e *Engine) InFlight() int { return len(e.inflight) }

// Flush drives the scheduler to quiescence, finalizing every in-flight
// evaluation (their Waits return without further stepping) and landing
// any background refill, then retires completed epoch namespaces. It
// errors if the event limit cut the drain short. Flush is the
// pipelined counterpart of the quiescence every sequential call ends
// with; Snapshot and sequential Evaluate/Preprocess require it after
// pipelined activity.
func (e *Engine) Flush() error {
	e.world.RunToQuiescence()
	if err := e.transportCheck(); err != nil {
		return err
	}
	for len(e.inflight) > 0 {
		e.complete(e.inflight[0])
	}
	if n := e.world.Sched.Pending(); n > 0 {
		return fmt.Errorf("mpc: pipeline incomplete after %d events with %d still pending (raise Config.EventLimit)",
			e.world.Sched.Processed(), n)
	}
	e.retireQuiesced()
	return nil
}

// complete finalizes one evaluation: records its accounting from the
// epoch tracker, detaches the tracker, queues the namespace for
// retirement and removes the handle from the in-flight list. Called
// from the last honest termination callback in the normal case, or
// from Wait/Flush when the scheduler drained without it. Idempotent.
func (e *Engine) complete(p *PendingEval) {
	if p.done {
		return
	}
	p.done = true
	res := p.res
	res.HonestMessages = p.trk.Messages
	res.HonestBytes = p.trk.Bytes
	res.ByFamily = make(map[string]FamilyCounts, 1)
	if !p.trk.IsZero() {
		res.ByFamily["mpc"] = FamilyCounts{Messages: p.trk.Messages, Bytes: p.trk.Bytes}
	}
	e.world.Metrics().Untrack(p.trk)

	e.evals++
	e.evalMsgs += res.HonestMessages
	e.evalBytes += res.HonestBytes
	end := res.StartedAt
	for i, t := range res.TerminatedAt {
		if i >= 1 && !e.world.IsCorrupt(i) && t > end {
			end = t
		}
	}
	e.evalSummaries = append(e.evalSummaries, EvalSummary{
		Epoch:     p.epoch,
		Triples:   p.mulCount,
		StartTick: res.StartedAt,
		EndTick:   end,
		Ticks:     end - res.StartedAt,
		Messages:  res.HonestMessages,
		Bytes:     res.HonestBytes,
	})
	e.retired = append(e.retired, retiredEpoch{inst: p.inst, seq: p.epoch})
	for k, q := range e.inflight {
		if q == p {
			e.inflight = append(e.inflight[:k], e.inflight[k+1:]...)
			break
		}
	}
	e.tracePhase(obs.KPhaseEnd, "evaluate", int64(e.world.Sched.Now())-p.begin, int64(res.HonestMessages))
	e.tracePipeline(int64(p.epoch))
}

// retireQuiesced drops the namespaces of completed epochs once the
// scheduler is empty. Dropping earlier would re-buffer in-flight
// deliveries still addressed to a completed epoch (stray build-up the
// flood cap eventually trips); at quiescence nothing is in flight, so
// handlers and any buffered stragglers go together.
func (e *Engine) retireQuiesced() {
	if len(e.retired) == 0 || e.world.Sched.Pending() > 0 {
		return
	}
	for _, r := range e.retired {
		for i := 1; i <= e.cfg.N; i++ {
			e.world.Runtimes[i].DropPrefix(r.inst)
		}
		if e.tracer != nil {
			e.tracer.Emit(obs.Event{
				Kind: obs.KEpochRetire, Tick: int64(e.world.Sched.Now()), Inst: r.inst, A: int64(r.seq),
			})
		}
	}
	e.retired = nil
}

// drainIdle clears cross-epoch leftovers before a sequential phase:
// deferred timers of completed pipelined epochs run to quiescence and
// retired namespaces drop, so the phase's before/after delta
// accounting starts from a clean scheduler. A no-op on a purely
// sequential engine.
func (e *Engine) drainIdle() {
	if e.world.Sched.Pending() > 0 {
		e.world.RunToQuiescence()
	}
	e.retireQuiesced()
}

// ensureTriples blocks a submission until the pool can serve k
// triples. With a refill already in flight it single-steps the shared
// scheduler — in-flight evaluations keep advancing while the batch
// lands, which is the latency hiding the pipeline exists for. With the
// watermark armed it starts the refill itself; otherwise it surfaces
// the same typed exhaustion error as the sequential path.
func (e *Engine) ensureTriples(k int) error {
	for {
		have := e.Available()
		if have >= k {
			return nil
		}
		if e.refill != nil {
			if !e.world.StepTick() {
				return fmt.Errorf("mpc: background refill incomplete after %d events (raise Config.EventLimit)",
					e.world.Sched.Processed())
			}
			continue
		}
		if e.cfg.RefillLowWater > 0 {
			if err := e.startRefill(k - have); err != nil {
				return err
			}
			continue
		}
		e.evalSinceFill = true
		return fmt.Errorf("mpc: evaluation needs %d triples, pool holds %d: %w", k, have, ErrTriplesExhausted)
	}
}

// startRefill launches one background ΠPreProcessing fill across all
// pools without draining the scheduler: the batch's protocol events
// interleave with the live online phases. Its honest traffic is
// attributed to preprocessing via a "pool" namespace tracker and folded
// into the engine's Preprocess accounting when the last honest batch
// lands. A corrupt party's pool that refuses to fill (a restored
// never-completing batch keeps its fill-in-flight marker forever) is
// skipped: the batch protocol is ts-robust against its absence, and
// reserveAll gives that party stand-ins.
func (e *Engine) startRefill(minNeed int) error {
	budget := e.cfg.RefillBudget
	if budget <= 0 {
		budget = e.cfg.RefillLowWater
	}
	if budget < minNeed {
		budget = minNeed
	}
	if budget < 1 {
		budget = 1
	}
	for _, i := range e.world.Honest() {
		if e.pools[i].Filling() {
			return fmt.Errorf("mpc: honest party %d already has a fill in flight", i)
		}
	}
	seq := int64(e.ppCalls)
	e.ppCalls++
	e.tracePhase(obs.KPhaseBegin, "refill", seq, 0)
	rs := &refillState{
		trk:   e.world.Metrics().Track("pool"),
		begin: int64(e.world.Sched.Now()),
	}
	start := e.gridStart()
	for i := 1; i <= e.cfg.N; i++ {
		honest := !e.world.IsCorrupt(i)
		var onDone func(int)
		if honest {
			rs.remaining++
			// The landing callback mutates shared engine state, so route
			// it through the party's Defer: immediate in serial runs,
			// staged to the canonical barrier position under Workers.
			rt := e.world.Runtimes[i]
			onDone = func(int) { rt.Defer(func() { e.refillLanded(rs) }) }
		}
		if _, err := e.pools[i].Fill(budget, start, !e.silent[i], onDone); err != nil {
			if !honest {
				continue
			}
			e.world.Metrics().Untrack(rs.trk)
			return err
		}
	}
	e.refill = rs
	return nil
}

// refillLanded fires per honest pool batch completion; the last one
// folds the refill's traffic into the preprocessing totals and closes
// the overlap span.
func (e *Engine) refillLanded(rs *refillState) {
	rs.remaining--
	if rs.remaining > 0 || e.refill != rs {
		return
	}
	e.refill = nil
	e.preprocessed = true
	e.ppMsgs += rs.trk.Messages
	e.ppBytes += rs.trk.Bytes
	e.world.Metrics().Untrack(rs.trk)
	e.tracePhase(obs.KPhaseEnd, "refill", int64(e.world.Sched.Now())-rs.begin, int64(rs.trk.Messages))
}

// Refilling reports whether a watermark-triggered background fill is
// in flight.
func (e *Engine) Refilling() bool { return e.refill != nil }

// tracePipeline emits the pipeline-occupancy gauge point after a
// submit or completion changed the in-flight count.
func (e *Engine) tracePipeline(epochSeq int64) {
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{
			Kind: obs.KPipelineDepth, Tick: int64(e.world.Sched.Now()),
			Inst: "pipeline", A: int64(len(e.inflight)), B: epochSeq,
		})
	}
}
