package mpc

import (
	"bytes"
	"reflect"
	"testing"

	"repro/circuit"
	"repro/field"
)

// engineSession runs Preprocess + 2×Evaluate on one engine and returns
// the results plus final stats.
func engineSession(t *testing.T, spec *TransportSpec) ([]*Result, EngineStats) {
	t.Helper()
	cfg := Config{N: 5, Ts: 1, Ta: 1, Network: Sync, Seed: 11}
	eng, err := NewEngineOpts(cfg, EngineOptions{Transport: spec})
	if err != nil {
		t.Fatalf("NewEngineOpts: %v", err)
	}
	defer eng.Close()
	circ := circuit.Product(5)
	if _, err := eng.Preprocess(2 * circ.MulCount); err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	inputs := []field.Element{3, 1, 4, 1, 5}
	var results []*Result
	for k := 0; k < 2; k++ {
		res, err := eng.Evaluate(circ, inputs)
		if err != nil {
			t.Fatalf("Evaluate %d: %v", k, err)
		}
		results = append(results, res)
	}
	if spec != nil && spec.Kind != "sim" {
		if ws := eng.WireStats(); ws.FramesOut == 0 || ws.FramesOut != ws.FramesIn {
			t.Fatalf("wire stats %+v: no traffic crossed the sockets", ws)
		}
	}
	return results, eng.Stats()
}

// TestEngineDifferentialSockets: a full session (preprocess + two
// evaluations) over unix and tcp backends must be identical to the
// simulator in every Result field and in the engine accounting.
func TestEngineDifferentialSockets(t *testing.T) {
	simResults, simStats := engineSession(t, nil)
	for _, spec := range []*TransportSpec{{Kind: "unix"}, {Kind: "tcp"}} {
		results, stats := engineSession(t, spec)
		for k := range simResults {
			if !reflect.DeepEqual(results[k], simResults[k]) {
				t.Errorf("%s: evaluation %d diverges from sim:\n%+v\nsim:\n%+v",
					spec.Kind, k, results[k], simResults[k])
			}
		}
		if !reflect.DeepEqual(stats, simStats) {
			t.Errorf("%s: stats diverge from sim:\n%+v\nsim:\n%+v", spec.Kind, stats, simStats)
		}
	}
}

// TestRunOptsDifferential: the one-shot path over sockets must equal
// the plain Run.
func TestRunOptsDifferential(t *testing.T) {
	cfg := Config{N: 5, Ts: 1, Ta: 1, Network: Async, Seed: 4}
	circ := circuit.Sum(5)
	inputs := []field.Element{1, 2, 3, 4, 5}
	ref, err := Run(cfg, circ, inputs, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got, err := RunOpts(cfg, EngineOptions{Transport: &TransportSpec{Kind: "unix"}}, circ, inputs)
	if err != nil {
		t.Fatalf("RunOpts: %v", err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("unix one-shot diverges:\n%+v\nsim:\n%+v", got, ref)
	}
}

// TestRestoreOntoSockets: a checkpoint captured from a simulator
// session must restore onto a socket backend and resume bit-identically
// to the uninterrupted simulator session.
func TestRestoreOntoSockets(t *testing.T) {
	cfg := Config{N: 5, Ts: 1, Ta: 1, Network: Sync, Seed: 23}
	circ := circuit.Product(5)
	inputs := []field.Element{2, 7, 1, 8, 2}

	// Uninterrupted reference: preprocess + two evaluations on sim.
	ref, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.Preprocess(2 * circ.MulCount); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Evaluate(circ, inputs); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Evaluate(circ, inputs)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: same session up to the first evaluation, snapshot,
	// restore onto unix sockets, resume.
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Preprocess(2 * circ.MulCount); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Evaluate(circ, inputs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	resumed, err := RestoreEngineOpts(cfg, EngineOptions{Transport: &TransportSpec{Kind: "unix"}}, &buf)
	if err != nil {
		t.Fatalf("RestoreEngineOpts: %v", err)
	}
	defer resumed.Close()
	got, err := resumed.Evaluate(circ, inputs)
	if err != nil {
		t.Fatalf("resumed Evaluate: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed-on-unix evaluation diverges:\n%+v\nsim:\n%+v", got, want)
	}
}
