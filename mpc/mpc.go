// Package mpc is the public entry point of this library: a
// best-of-both-worlds perfectly-secure multi-party computation engine
// reproducing Appan, Chandramouli and Choudhury (PODC 2022).
//
// A protocol run evaluates an arithmetic circuit over GF(2^61-1) among
// n simulated parties connected by a synchronous or asynchronous
// network, tolerating up to Ts Byzantine corruptions in the former and
// Ta in the latter, provided 3·Ts + Ta < n — without the parties
// knowing which network they are on.
//
// Two entry points share one protocol stack. The session Engine is the
// primary API: one long-lived World whose triple pool is filled by an
// amortized ΠPreProcessing batch (Preprocess) and then drained by many
// sequential circuit evaluations (Evaluate), each an epoch-namespaced
// input-ΠACS + online phase — the offline/online split the paper's
// preprocessing exists for. Run is the retained one-shot convenience
// wrapper: it evaluates a single circuit on a fresh world, paying the
// full preprocessing cost for that one evaluation.
//
// Engine quickstart:
//
//	cfg := mpc.Config{N: 8, Ts: 2, Ta: 1, Network: mpc.Sync, Seed: 1}
//	eng, _ := mpc.NewEngine(cfg)
//	eng.Preprocess(64) // one amortized triple-pool fill
//	circ := circuit.Sum(8)
//	inputs := []field.Element{1, 2, 3, 4, 5, 6, 7, 8}
//	res, err := eng.Evaluate(circ, inputs) // repeat per request
//	// res.Outputs[0] == 36
//
// One-shot:
//
//	res, err := mpc.Run(cfg, circ, inputs, nil)
package mpc

import (
	"errors"
	"fmt"

	"repro/circuit"
	"repro/field"
	"repro/internal/obs"
)

// Network selects the simulated network model.
type Network string

// Network models.
const (
	// Sync delivers every message within Δ.
	Sync Network = "sync"
	// Async delivers messages with unbounded-but-finite adversarially
	// scheduled delays.
	Async Network = "async"
)

// Config parameterises a protocol run.
type Config struct {
	// N is the number of parties; Ts and Ta the corruption thresholds
	// tolerated under synchrony resp. asynchrony (3·Ts + Ta < N,
	// Ta ≤ Ts).
	N, Ts, Ta int
	// Network selects the network model.
	Network Network
	// Delta is the synchronous delivery bound Δ in virtual ticks
	// (default 10).
	Delta int64
	// Seed makes the run fully deterministic.
	Seed uint64
	// Tail, with the Async network, overrides the heavy-tail
	// probability of the delay distribution (default 0.15).
	Tail float64
	// BurstPeriod/BurstDown, with the Async network, add periodic
	// outages: deliveries landing in the first BurstDown ticks of each
	// BurstPeriod-tick window are pushed past the outage
	// (sim.BurstPolicy). Zero disables bursts.
	BurstPeriod, BurstDown int64
	// CoinRounds is the ABA round constant k (default 8).
	CoinRounds int
	// SyncOnly disables every asynchronous fallback path, turning the
	// engine into a purely synchronous protocol (the paper's SMPC
	// baseline for the E12 comparison; see DESIGN.md).
	SyncOnly bool
	// EventLimit caps scheduler events as a runaway guard (default
	// 200M).
	EventLimit uint64
	// PerGateEval selects the per-gate reference evaluator (one Beaver
	// reconstruction instance per multiplication gate) instead of the
	// default per-layer batched one. Both compute identical shares; the
	// reference differs only in message grouping and is kept for
	// differential testing of the layered online phase.
	PerGateEval bool
	// RefillLowWater, when > 0, arms watermark-triggered background
	// refills on the pipelined serving path (Engine.EvaluateAsync): when
	// the available triple pool drops below the mark at a submit, the
	// engine overlaps a fresh ΠPreProcessing fill with the live online
	// phases instead of letting a later evaluation stall on
	// ErrTriplesExhausted. Zero leaves refills to explicit Preprocess
	// calls. The sequential Evaluate path is unaffected.
	RefillLowWater int
	// RefillBudget is the triple budget of each background refill
	// (defaults to RefillLowWater; a submit needing more than the
	// budget raises it to its shortfall).
	RefillBudget int
	// Workers sets the intra-tick worker-pool size: within each
	// simulated tick the parties' independent computations execute
	// concurrently, with all effects merged at a per-tick barrier in
	// canonical order, so results, metrics and traces are bit-identical
	// to serial at every pool size. 0 (the default) keeps the
	// single-threaded loop. Ignored on a real transport backend
	// (TransportSpec), and — like the backend — deliberately not part of
	// the checkpoint identity: it is an execution knob, not a protocol
	// parameter.
	Workers int
}

// Adversary describes the static corruption and misbehaviour of a run.
// Passive, Silent, Garble and CrashAt parties count against the
// corruption budget max(Ts, Ta). StarveFrom parties do NOT: starvation
// is adversarial *network scheduling* of honest parties' links (the
// paper's asynchronous scheduler), not a corruption, so starved
// parties remain honest and are expected to terminate.
type Adversary struct {
	// Passive parties follow the protocol; the adversary only reads
	// their state (and the harness may hand them wrong inputs).
	Passive []int
	// Silent parties never send a message (crashed from the start;
	// their Start is skipped).
	Silent []int
	// Garble parties send byte-flipped garbage everywhere.
	Garble []int
	// CrashAt stops a party's sends from the given virtual time.
	CrashAt map[int]int64
	// Drop makes a party withhold every message whose instance path
	// contains the given substring ("" drops everything).
	Drop map[int]string
	// Delay makes a party withhold matching messages for extra ticks.
	Delay map[int]DelayRule
	// Equivocate parties send byte-flipped payloads to the upper half
	// of recipients (party index > n/2) and honest payloads to the
	// rest.
	Equivocate []int
	// StarveFrom, with the Async network, starves every link out of
	// the listed parties until StarveUntil (an adversarial schedule).
	StarveFrom  []int
	StarveUntil int64
}

// DelayRule is one targeted-delay behaviour: messages whose instance
// path contains Match ("" matches all) are withheld for Extra ticks.
type DelayRule struct {
	Match string
	Extra int64
}

func (a *Adversary) corrupt() []int {
	if a == nil {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	add := func(ps ...int) {
		for _, p := range ps {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	add(a.Passive...)
	add(a.Silent...)
	add(a.Garble...)
	add(a.Equivocate...)
	for p := range a.CrashAt {
		add(p)
	}
	for p := range a.Drop {
		add(p)
	}
	for p := range a.Delay {
		add(p)
	}
	return out
}

// Result reports a protocol run.
type Result struct {
	// Outputs holds the agreed public circuit outputs (from the first
	// honest party; all honest parties agree — verified).
	Outputs []field.Element
	// PerParty holds each party's terminated output (nil if the party
	// did not terminate); 1-based, index 0 unused.
	PerParty [][]field.Element
	// TerminatedAt holds each party's virtual termination time
	// (0 = did not terminate); 1-based.
	TerminatedAt []int64
	// CS is the agreed input-provider set (from the first honest
	// party).
	CS []int
	// StartedAt is the virtual time the evaluation began: 0 for a
	// one-shot Run, the session's start tick for Engine.Evaluate (whose
	// Deadline and TerminatedAt are absolute on the engine's clock, so
	// the evaluation's tick cost is TerminatedAt[i] - StartedAt).
	StartedAt int64
	// Deadline is the derived synchronous-run bound in ticks: TCirEval
	// for a one-shot Run, StartedAt + TSession (input ACS + online
	// phase; preprocessing is amortized away) for Engine.Evaluate.
	Deadline int64
	// PaperDeadline is the paper's (120n + DM + 6k - 20)·Δ bound.
	PaperDeadline int64
	// HonestMessages and HonestBytes count the traffic sent by honest
	// parties.
	HonestMessages, HonestBytes uint64
	// ByFamily breaks honest traffic down by top-level protocol family
	// (instance-path prefix, e.g. "mpc").
	ByFamily map[string]FamilyCounts
	// Events is the number of simulation events processed.
	Events uint64
}

// FamilyCounts is the per-protocol-family traffic breakdown.
type FamilyCounts struct {
	Messages uint64 `json:"messages"`
	Bytes    uint64 `json:"bytes"`
}

// AllHonestTerminated reports whether every honest party terminated.
func (r *Result) AllHonestTerminated(adv *Adversary) bool {
	corrupt := map[int]bool{}
	for _, p := range adv.corrupt() {
		corrupt[p] = true
	}
	for i := 1; i < len(r.PerParty); i++ {
		if !corrupt[i] && r.PerParty[i] == nil {
			return false
		}
	}
	return true
}

// ErrNoHonestOutput is returned when no honest party terminated (e.g.
// a SyncOnly baseline run under an asynchronous network).
var ErrNoHonestOutput = errors.New("mpc: no honest party terminated")

// ErrDisagreement is returned if two honest parties terminated with
// different outputs. It indicates a broken security property and
// should never occur within the configured corruption budgets.
var ErrDisagreement = errors.New("mpc: honest parties disagree on the output")

// Run executes one MPC evaluation of circ where party i's private
// input is inputs[i-1]. adv may be nil for an all-honest run.
//
// Run is the one-shot convenience wrapper around the session Engine:
// it assembles a fresh engine World, runs the full ΠCirEval (input
// ΠACS and ΠPreProcessing together) once, and tears everything down.
// A service evaluating many circuits should hold an Engine instead and
// amortize one Preprocess over its evaluations (see NewEngine).
//
// Inputs of corrupt parties are still fed to their (honest-code)
// protocol instances unless the party is Silent; byzantine *protocol*
// behaviour comes from the Adversary's traffic rewriting, and the
// network schedule is adversarial under Async.
func Run(cfg Config, circ *circuit.Circuit, inputs []field.Element, adv *Adversary) (*Result, error) {
	return RunTraced(cfg, circ, inputs, adv, nil)
}

// RunTraced is Run with a trace sink: tr (which may be nil) receives
// the run's full typed event stream — scheduler ticks, message
// sends/delivers, instance lifecycle, pool accounting. Tracing does
// not perturb the run: a traced run is bit-identical to an untraced
// one with the same configuration.
func RunTraced(cfg Config, circ *circuit.Circuit, inputs []field.Element, adv *Adversary, tr obs.Tracer) (*Result, error) {
	eng, err := newEngine(cfg, adv, tr, nil)
	if err != nil {
		return nil, err
	}
	if len(inputs) != cfg.N {
		return nil, fmt.Errorf("mpc: %d inputs for %d parties", len(inputs), cfg.N)
	}
	return eng.runOneShot(circ, inputs)
}

// ExpectedOutputs evaluates circ in the clear with the inputs of
// parties outside cs replaced by 0 — the reference output of a run
// that agreed on input-provider set cs.
func ExpectedOutputs(circ *circuit.Circuit, inputs []field.Element, cs []int) ([]field.Element, error) {
	adjusted := make([]field.Element, len(inputs))
	in := map[int]bool{}
	for _, j := range cs {
		in[j] = true
	}
	for i := range inputs {
		if in[i+1] {
			adjusted[i] = inputs[i]
		}
	}
	return circ.Eval(adjusted)
}
