package mpc

import (
	"errors"
	"strings"
	"testing"

	"repro/circuit"
	"repro/field"
)

func engCfg(n, ts, ta int, seed uint64) Config {
	return Config{N: n, Ts: ts, Ta: ta, Network: Sync, Seed: seed}
}

func engInputs(n int) []field.Element {
	out := make([]field.Element, n)
	for i := range out {
		out[i] = field.New(uint64(i + 2))
	}
	return out
}

// TestEngineDifferential is the PR's acceptance property: K sequential
// Engine.Evaluate calls produce outputs identical to K independent
// mpc.Run calls with the same seed, across several builtin circuits and
// both evaluator modes — while the engine's total honest traffic
// (preprocessing + evaluations) stays below K times the one-shot cost.
func TestEngineDifferential(t *testing.T) {
	const k = 3
	circs := map[string]func() *circuit.Circuit{
		"sum":     func() *circuit.Circuit { return circuit.Sum(5) },
		"product": func() *circuit.Circuit { return circuit.Product(5) },
		"stats":   func() *circuit.Circuit { return circuit.SumAndVariancePieces(5) },
		"poly":    func() *circuit.Circuit { return circuit.PolyEval(5, []field.Element{field.New(7), field.New(3), field.New(1)}) },
	}
	for _, perGate := range []bool{false, true} {
		for name, mk := range circs {
			cfg := engCfg(5, 1, 1, 42)
			cfg.PerGateEval = perGate
			eng, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			circ := mk()
			if _, err := eng.Preprocess(maxInt(1, k*circ.MulCount)); err != nil {
				t.Fatalf("%s perGate=%v: %v", name, perGate, err)
			}
			inputs := engInputs(5)
			var engineTotal uint64
			for round := 0; round < k; round++ {
				res, err := eng.Evaluate(circ, inputs)
				if err != nil {
					t.Fatalf("%s perGate=%v round %d: %v", name, perGate, round, err)
				}
				ref, err := Run(cfg, mk(), inputs, nil)
				if err != nil {
					t.Fatalf("%s perGate=%v round %d one-shot: %v", name, perGate, round, err)
				}
				if len(res.Outputs) != len(ref.Outputs) {
					t.Fatalf("%s perGate=%v round %d: %d outputs vs one-shot %d",
						name, perGate, round, len(res.Outputs), len(ref.Outputs))
				}
				for i := range ref.Outputs {
					if res.Outputs[i] != ref.Outputs[i] {
						t.Errorf("%s perGate=%v round %d: output[%d] = %d, one-shot %d",
							name, perGate, round, i, res.Outputs[i].Uint64(), ref.Outputs[i].Uint64())
					}
				}
				if len(res.CS) != len(ref.CS) {
					t.Errorf("%s perGate=%v round %d: |CS| = %d, one-shot %d",
						name, perGate, round, len(res.CS), len(ref.CS))
				}
				engineTotal += res.HonestMessages
				if circ.MulCount > 0 && res.HonestMessages >= ref.HonestMessages {
					t.Errorf("%s perGate=%v round %d: session cost %d msgs not below one-shot %d",
						name, perGate, round, res.HonestMessages, ref.HonestMessages)
				}
			}
			st := eng.Stats()
			oneShot, err := Run(cfg, mk(), inputs, nil)
			if err != nil {
				t.Fatal(err)
			}
			if circ.MulCount > 0 {
				amortized := (st.PreprocessMessages + st.EvalMessages) / k
				if amortized >= oneShot.HonestMessages {
					t.Errorf("%s perGate=%v: amortized %d msgs/eval not below one-shot %d",
						name, perGate, amortized, oneShot.HonestMessages)
				}
			}
			_ = engineTotal
		}
	}
}

// TestEngineManyEvaluations exercises the acceptance floor directly:
// ≥8 evaluations over one engine, identical outputs to 8 one-shot runs,
// total engine traffic measurably below 8× the one-shot cost.
func TestEngineManyEvaluations(t *testing.T) {
	const k = 8
	cfg := engCfg(5, 1, 1, 7)
	circ := circuit.Product(5)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Preprocess(k * circ.MulCount); err != nil {
		t.Fatal(err)
	}
	inputs := engInputs(5)
	ref, err := Run(cfg, circuit.Product(5), inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < k; round++ {
		res, err := eng.Evaluate(circ, inputs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range ref.Outputs {
			if res.Outputs[i] != ref.Outputs[i] {
				t.Fatalf("round %d: output[%d] = %d, one-shot %d",
					round, i, res.Outputs[i].Uint64(), ref.Outputs[i].Uint64())
			}
		}
	}
	st := eng.Stats()
	if st.Evaluations != k {
		t.Fatalf("engine counted %d evaluations, want %d", st.Evaluations, k)
	}
	total := st.PreprocessMessages + st.EvalMessages
	if total >= k*ref.HonestMessages {
		t.Errorf("engine total %d msgs for %d evals not below %d× one-shot cost %d",
			total, k, k, ref.HonestMessages)
	}
	t.Logf("amortized %d msgs/eval vs one-shot %d (%.2fx saving)",
		total/k, ref.HonestMessages, float64(k*ref.HonestMessages)/float64(total))
}

// TestEngineExhaustionAndRefill exercises the typed pool-exhaustion
// error path: the error matches ErrTriplesExhausted, consumes nothing,
// and the engine (and its World) keeps serving after a refill.
func TestEngineExhaustionAndRefill(t *testing.T) {
	cfg := engCfg(5, 1, 1, 3)
	circ := circuit.Product(5) // cM = 4
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Preprocess(circ.MulCount); err != nil {
		t.Fatal(err)
	}
	inputs := engInputs(5)
	if _, err := eng.Evaluate(circ, inputs); err != nil {
		t.Fatal(err)
	}
	avail := eng.Available()
	_, err = eng.Evaluate(circ, inputs)
	if !errors.Is(err, ErrTriplesExhausted) {
		t.Fatalf("want ErrTriplesExhausted, got %v", err)
	}
	if got := eng.Available(); got != avail {
		t.Fatalf("failed Evaluate consumed triples: %d -> %d", avail, got)
	}
	if _, err := eng.Preprocess(circ.MulCount); err != nil {
		t.Fatalf("refill after exhaustion: %v", err)
	}
	res, err := eng.Evaluate(circ, inputs)
	if err != nil {
		t.Fatalf("Evaluate after refill: %v", err)
	}
	ref, err := Run(cfg, circuit.Product(5), inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != ref.Outputs[0] {
		t.Fatalf("post-refill output %d, want %d", res.Outputs[0].Uint64(), ref.Outputs[0].Uint64())
	}
}

// TestEngineRefillAfterImmediateExhaustion: an Evaluate that fails
// with ErrTriplesExhausted re-arms Preprocess even when no evaluation
// ever succeeded since the fill — the documented refill-and-retry
// recovery must never collide with the double-Preprocess guard.
func TestEngineRefillAfterImmediateExhaustion(t *testing.T) {
	cfg := engCfg(5, 1, 1, 13)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Preprocess(1); err != nil {
		t.Fatal(err)
	}
	circ := circuit.Product(5) // needs 4 triples, pool holds 1
	if _, err := eng.Evaluate(circ, engInputs(5)); !errors.Is(err, ErrTriplesExhausted) {
		t.Fatalf("want ErrTriplesExhausted, got %v", err)
	}
	if _, err := eng.Preprocess(circ.MulCount); err != nil {
		t.Fatalf("refill after immediate exhaustion blocked: %v", err)
	}
	if _, err := eng.Evaluate(circ, engInputs(5)); err != nil {
		t.Fatalf("Evaluate after refill: %v", err)
	}
}

// TestEngineMisuse covers the lifecycle guard rails: Evaluate before
// Preprocess, double Preprocess, and shape mismatches all fail with
// clear typed errors and leave the engine usable.
func TestEngineMisuse(t *testing.T) {
	cfg := engCfg(5, 1, 1, 9)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Evaluate(circuit.Sum(5), engInputs(5)); !errors.Is(err, ErrNotPreprocessed) {
		t.Fatalf("Evaluate before Preprocess: want ErrNotPreprocessed, got %v", err)
	}
	if _, err := eng.Preprocess(0); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("Preprocess(0): want budget error, got %v", err)
	}
	if _, err := eng.Preprocess(4); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Preprocess(4); !errors.Is(err, ErrDoublePreprocess) {
		t.Fatalf("double Preprocess: want ErrDoublePreprocess, got %v", err)
	}
	if _, err := eng.Evaluate(circuit.Sum(5), engInputs(4)); err == nil || !strings.Contains(err.Error(), "inputs") {
		t.Fatalf("short inputs: want inputs error, got %v", err)
	}
	if _, err := eng.Evaluate(circuit.Sum(8), engInputs(5)); err == nil || !strings.Contains(err.Error(), "input slots") {
		t.Fatalf("circuit/party mismatch: want input-slots error, got %v", err)
	}
	// The engine still serves after every rejected call.
	res, err := eng.Evaluate(circuit.Sum(5), engInputs(5))
	if err != nil {
		t.Fatal(err)
	}
	want := field.New(2 + 3 + 4 + 5 + 6)
	if res.Outputs[0] != want {
		t.Fatalf("output %d, want %d", res.Outputs[0].Uint64(), want.Uint64())
	}
	// A consuming evaluation re-arms Preprocess (refill is legitimate).
	if _, err := eng.Preprocess(4); err != nil {
		t.Fatalf("refill after evaluation: %v", err)
	}
}

// TestEngineUnderAdversary keeps a session engine serving while the
// budgeted adversary garbles and starves: outputs must stay consistent
// with the clear-text evaluation over the agreed provider set.
func TestEngineUnderAdversary(t *testing.T) {
	cfg := Config{N: 8, Ts: 2, Ta: 1, Network: Sync, Seed: 5}
	adv := &Adversary{Garble: []int{3}, Silent: []int{6}}
	eng, err := NewEngineAdv(cfg, adv)
	if err != nil {
		t.Fatal(err)
	}
	circ := circuit.Sum(8)
	if _, err := eng.Preprocess(4); err != nil {
		t.Fatal(err)
	}
	inputs := engInputs(8)
	for round := 0; round < 3; round++ {
		res, err := eng.Evaluate(circ, inputs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want, err := ExpectedOutputs(circ, inputs, res.CS)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outputs[0] != want[0] {
			t.Fatalf("round %d: output %d, clear evaluation %d over CS=%v",
				round, res.Outputs[0].Uint64(), want[0].Uint64(), res.CS)
		}
		if len(res.CS) < cfg.N-cfg.Ts {
			t.Fatalf("round %d: |CS| = %d below n-ts = %d", round, len(res.CS), cfg.N-cfg.Ts)
		}
	}
}

// TestEngineDeterminism: the same engine call sequence replays
// bit-identically from the same seed.
func TestEngineDeterminism(t *testing.T) {
	trace := func() []uint64 {
		cfg := engCfg(5, 1, 1, 11)
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Preprocess(8); err != nil {
			t.Fatal(err)
		}
		var out []uint64
		for round := 0; round < 2; round++ {
			res, err := eng.Evaluate(circuit.Product(5), engInputs(5))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res.Outputs[0].Uint64(), res.HonestMessages, res.HonestBytes, uint64(res.TerminatedAt[1]))
		}
		return out
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
