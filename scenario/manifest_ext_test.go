package scenario

import (
	"strings"
	"testing"
)

// TestValidateFuzzSchemaFields covers the manifest fields added for the
// fuzzing subsystem: targeted drop/delay/equivocate behaviours, burst
// delivery windows, and the generated "random" circuit family.
func TestValidateFuzzSchemaFields(t *testing.T) {
	valid := func() Manifest {
		return Manifest{
			Name:    "probe",
			Parties: Parties{N: 8, Ts: 2, Ta: 1},
			Network: NetworkSpec{Kind: "sync"},
			Circuit: CircuitSpec{Family: "sum"},
		}
	}
	bad := []struct {
		name string
		mut  func(*Manifest)
		want string
	}{
		{"drop range", func(m *Manifest) { m.Adversary.Drop = map[int]string{9: "vss"} }, "adversary.drop: party 9 out of range"},
		{"delay range", func(m *Manifest) { m.Adversary.Delay = map[int]DelayRule{0: {Extra: 5}} }, "adversary.delay: party 0 out of range"},
		{"delay extra", func(m *Manifest) { m.Adversary.Delay = map[int]DelayRule{3: {Match: "x", Extra: 0}} }, "extra must be >= 1"},
		{"equivocate range", func(m *Manifest) { m.Adversary.Equivocate = []int{42} }, "adversary.equivocate: party 42 out of range"},
		{"new fields count against budget", func(m *Manifest) {
			m.Adversary.Drop = map[int]string{1: "vss"}
			m.Adversary.Delay = map[int]DelayRule{2: {Extra: 9}}
			m.Adversary.Equivocate = []int{3}
		}, "exceeding the budget"},
		{"burst on sync", func(m *Manifest) { m.Network.BurstPeriod, m.Network.BurstDown = 100, 30 }, "only apply to the async network"},
		{"burst down >= period", func(m *Manifest) {
			m.Network.Kind = "async"
			m.Network.BurstPeriod, m.Network.BurstDown = 100, 100
		}, "0 < burstDown < burstPeriod"},
		{"burst down alone", func(m *Manifest) {
			m.Network.Kind = "async"
			m.Network.BurstDown = 10
		}, "0 < burstDown < burstPeriod"},
		{"random needs layers", func(m *Manifest) { m.Circuit = CircuitSpec{Family: "random", Width: 2, Outs: 1} }, "layers in 1..16"},
		{"random needs width", func(m *Manifest) { m.Circuit = CircuitSpec{Family: "random", Layers: 2, Outs: 1} }, "width in 1..64"},
		{"random needs outs", func(m *Manifest) { m.Circuit = CircuitSpec{Family: "random", Layers: 2, Width: 2} }, "outs in 1..16"},
		{"random mulPct range", func(m *Manifest) {
			m.Circuit = CircuitSpec{Family: "random", Layers: 2, Width: 2, MulPct: 101, Outs: 1}
		}, "mulPct in 0..100"},
		{"stray generator params", func(m *Manifest) { m.Circuit.GenSeed = 7 }, "only apply to family \"random\""},
	}
	for _, tc := range bad {
		m := valid()
		tc.mut(&m)
		err := m.Validate()
		if err == nil {
			t.Errorf("%s: expected an error mentioning %q, got nil", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// And the happy path: all new fields together, in budget, on async.
	m := valid()
	m.Parties = Parties{N: 9, Ts: 2, Ta: 2}
	m.Network = NetworkSpec{Kind: "async", BurstPeriod: 400, BurstDown: 100}
	m.Adversary = AdversarySpec{
		Drop:       map[int]string{1: "mpc/pp"},
		Delay:      map[int]DelayRule{1: {Match: "mpc/out", Extra: 50}},
		Equivocate: []int{2},
		StarveFrom: []int{5}, StarveUntil: 2000,
	}
	m.Circuit = CircuitSpec{Family: "random", Layers: 2, Width: 3, MulPct: 50, Outs: 1, GenSeed: 11}
	if err := m.Validate(); err != nil {
		t.Fatalf("combined new-field manifest should validate, got %v", err)
	}
	if c := m.Adversary.Corrupt(); len(c) != 2 || c[0] != 1 || c[1] != 2 {
		t.Fatalf("Corrupt() = %v, want [1 2] (drop+delay on one party dedup, starve not corrupt)", c)
	}
	if s := m.Adversary.Summary(); !strings.Contains(s, "drop[1]") || !strings.Contains(s, "equiv[2]") {
		t.Fatalf("Summary() = %q missing new behaviours", s)
	}

	// New fields must survive the JSON round trip Load depends on.
	re, err := Load(m.JSON())
	if err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if string(re.JSON()) != string(m.JSON()) {
		t.Fatalf("JSON round trip changed the manifest:\n%s\nvs\n%s", m.JSON(), re.JSON())
	}
}
