package scenario

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/mpc"
)

// traceDiffScenarios are the builtins the trace-on/off differential
// runs over: honest + adversarial, sync + async.
var traceDiffScenarios = []string{
	"sync-sum-honest",
	"sync-product-honest",
	"sync-garble-ts",
	"async-product-honest",
}

// TestTraceDeterministicJSONL: a run is a pure function of its
// manifest, and the trace is a pure function of the run — two traced
// runs of one manifest must serialize to byte-identical JSONL.
func TestTraceDeterministicJSONL(t *testing.T) {
	m, err := Lookup("sync-product-honest")
	if err != nil {
		t.Fatal(err)
	}
	var bufs [2]bytes.Buffer
	for i := range bufs {
		col := obs.NewCollector()
		if _, err := RunTraced(m, col); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if col.Len() == 0 {
			t.Fatalf("run %d: traced run emitted no events", i)
		}
		if err := obs.WriteJSONL(&bufs[i], col.Events()); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Errorf("two traced runs of one manifest produced different JSONL (%d vs %d bytes)",
			bufs[0].Len(), bufs[1].Len())
	}
}

// TestTraceOnOffDifferential: attaching a tracer must not change the
// run — reports (outputs, ticks, traffic, family breakdowns) are
// compared field-for-field across builtins and both evaluator modes.
func TestTraceOnOffDifferential(t *testing.T) {
	for _, name := range traceDiffScenarios {
		for _, perGate := range []bool{false, true} {
			mode := "layered"
			if perGate {
				mode = "per-gate"
			}
			t.Run(name+"/"+mode, func(t *testing.T) {
				m, err := Lookup(name)
				if err != nil {
					t.Fatal(err)
				}
				run := func(tr obs.Tracer) *mpc.Result {
					art, err := Build(m)
					if err != nil {
						t.Fatal(err)
					}
					cfg := art.Cfg
					cfg.PerGateEval = perGate
					res, err := mpc.RunTraced(cfg, art.Circuit, art.Inputs, art.Adversary, tr)
					if err != nil {
						t.Fatalf("engine: %v", err)
					}
					return res
				}
				plain := run(nil)
				col := obs.NewCollector()
				traced := run(col)
				if col.Len() == 0 {
					t.Fatal("traced run emitted no events")
				}
				if !reflect.DeepEqual(plain.Outputs, traced.Outputs) {
					t.Errorf("outputs differ: untraced %v, traced %v", plain.Outputs, traced.Outputs)
				}
				if !reflect.DeepEqual(plain.CS, traced.CS) {
					t.Errorf("CS differs: untraced %v, traced %v", plain.CS, traced.CS)
				}
				if !reflect.DeepEqual(plain.TerminatedAt, traced.TerminatedAt) {
					t.Errorf("termination ticks differ: untraced %v, traced %v", plain.TerminatedAt, traced.TerminatedAt)
				}
				if plain.HonestMessages != traced.HonestMessages || plain.HonestBytes != traced.HonestBytes {
					t.Errorf("honest traffic differs: untraced %d/%d, traced %d/%d",
						plain.HonestMessages, plain.HonestBytes, traced.HonestMessages, traced.HonestBytes)
				}
				if !reflect.DeepEqual(plain.ByFamily, traced.ByFamily) {
					t.Errorf("family breakdown differs: untraced %v, traced %v", plain.ByFamily, traced.ByFamily)
				}
				if plain.Events != traced.Events {
					t.Errorf("simulator event count differs: untraced %d, traced %d", plain.Events, traced.Events)
				}
			})
		}
	}
}

// TestTraceWorkloadDifferential: the session-engine runner is equally
// trace-transparent — the full WorkloadReport must be identical with
// and without a sink.
func TestTraceWorkloadDifferential(t *testing.T) {
	m, err := LookupWorkload("workload-refill-sync")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunWorkload(m, false)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	traced, err := RunWorkloadTraced(m, false, col)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() == 0 {
		t.Fatal("traced workload emitted no events")
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("workload reports differ:\nuntraced: %+v\ntraced:   %+v", plain, traced)
	}
}

// TestTraceSummaryRenders: the aggregated summary of a real run names
// the protocol phases and families a user would look for.
func TestTraceSummaryRenders(t *testing.T) {
	m, err := Lookup("sync-sum-honest")
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	if _, err := RunTraced(m, col); err != nil {
		t.Fatal(err)
	}
	sum := obs.Summarize(col.Events(), m.Network.Delta)
	text := sum.String()
	for _, want := range []string{"run", "phases", "per-family delivery latency", "mpc"} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}
	if sum.Total == 0 || sum.LastTick == 0 {
		t.Errorf("summary has no totals: %+v", sum)
	}
}
