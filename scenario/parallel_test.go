package scenario

import (
	"reflect"
	"testing"

	"repro/mpc"
)

// runWorkers replays one built manifest with the given evaluator mode
// and worker-pool size.
func runWorkers(art *RunArtifacts, perGate bool, workers int) (*mpc.Result, error) {
	cfg := art.Cfg
	cfg.PerGateEval = perGate
	cfg.Workers = workers
	return mpc.Run(cfg, art.Circuit, art.Inputs, art.Adversary)
}

// TestWorkersBitIdenticalShort is the -short/-race slice of the PR 10
// corpus matrix (the full matrix — every builtin × both evaluator
// modes × the whole worker ladder — lives in scenario/corpustest, in
// its own test binary): one flagship honest run, one full-budget
// asynchronous adversarial run and one boundary-threshold garbling
// run, serial vs workers=4 in both evaluator modes. Unlike the
// layered-vs-per-gate differential, a worker pool is not allowed to
// change ANY observable, so the whole mpc.Result is compared —
// traffic, ticks, event counts and per-family breakdowns included.
// The race build exercises the worker pool, the staging buffers and
// the barrier merge on real protocol traffic.
func TestWorkersBitIdenticalShort(t *testing.T) {
	for _, name := range []string{"sync-sum-honest", "async-garble-ta", "sync-boundary-n5-garble"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			art, err := Build(m)
			if err != nil {
				t.Fatal(err)
			}
			for _, perGate := range []bool{false, true} {
				base, baseErr := runWorkers(art, perGate, 0)
				got, gotErr := runWorkers(art, perGate, 4)
				label := "layered"
				if perGate {
					label = "per-gate"
				}
				if (baseErr == nil) != (gotErr == nil) {
					t.Fatalf("%s: engine errors differ: serial %v, workers=4 %v", label, baseErr, gotErr)
				}
				if baseErr != nil {
					if baseErr.Error() != gotErr.Error() {
						t.Fatalf("%s: engine errors differ: serial %v, workers=4 %v", label, baseErr, gotErr)
					}
					continue
				}
				if !reflect.DeepEqual(base, got) {
					t.Errorf("%s: results diverged from serial:\nserial:   %+v\nworkers:  %+v", label, base, got)
				}
			}
		})
	}
}

// TestPipelinedWorkloadWorkersBitIdentical composes the two serving
// optimizations: the depth-4 pipelined workload (PR 9, overlapping
// epochs polled tick-by-tick) run with the PR 10 worker pool must
// report bit-identically to the same pipelined run on the serial loop
// — the overlapping epochs share one barrier per tick.
func TestPipelinedWorkloadWorkersBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("pipelined workload replay is tens of seconds; run without -short")
	}
	m, err := LookupWorkload("workload-pipeline-sync")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunWorkloadOpts(m, WorkloadRunOptions{Pipeline: 4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunWorkloadOpts(m, WorkloadRunOptions{Pipeline: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("depth-4 workload diverged under workers=4:\nserial:   %+v\nworkers:  %+v", serial, par)
	}
	if !serial.Pass {
		t.Fatalf("depth-4 workload did not pass: %+v", serial)
	}
}
