package scenario

import (
	"fmt"
	"sort"
)

// builtin is the registry of named built-in scenarios. It spans every
// circuit family, both network models, every adversary preset
// (garble/silent/crash/starve), the SyncOnly ablation, fallback
// triggers, and threshold-boundary (3·Ts + Ta = N − 1) configurations.
var builtin = map[string]*Manifest{}

// register adds m to the registry; duplicate or invalid builtins are a
// programming error.
func register(m *Manifest) {
	if _, dup := builtin[m.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate builtin %q", m.Name))
	}
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("scenario: invalid builtin: %v", err))
	}
	builtin[m.Name] = m
}

// Names returns the sorted names of the built-in scenarios.
func Names() []string {
	out := make([]string, 0, len(builtin))
	for name := range builtin {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Builtin returns the built-in scenarios sorted by name.
func Builtin() []*Manifest {
	out := make([]*Manifest, 0, len(builtin))
	for _, name := range Names() {
		out = append(out, builtin[name])
	}
	return out
}

// Lookup returns the built-in scenario with the given name.
func Lookup(name string) (*Manifest, error) {
	m, ok := builtin[name]
	if !ok {
		return nil, fmt.Errorf("scenario: no builtin named %q (see Names)", name)
	}
	return m, nil
}

// Common party configurations. flagship is the paper's headline n = 8
// setting; both it and the two boundary configs satisfy
// 3·Ts + Ta = N − 1, the largest thresholds feasible for their N.
var (
	flagship   = Parties{N: 8, Ts: 2, Ta: 1}
	boundaryN5 = Parties{N: 5, Ts: 1, Ta: 1}
	boundaryN9 = Parties{N: 9, Ts: 2, Ta: 2}
)

func syncNet() NetworkSpec  { return NetworkSpec{Kind: "sync", Delta: 10} }
func asyncNet() NetworkSpec { return NetworkSpec{Kind: "async", Delta: 10} }

func init() {
	// --- Synchronous, all honest: one scenario per circuit family.
	register(&Manifest{
		Name:        "sync-sum-honest",
		Description: "flagship n=8 linear-only baseline: Σ x_i under synchrony, all honest",
		Parties:     flagship, Network: syncNet(), Seed: 1,
		Circuit: CircuitSpec{Family: "sum"},
		Expect: Expect{
			Outputs: []uint64{36}, Consistent: true,
			MinAgreement: 8, AllHonestTerminate: true, WithinDeadline: true,
			MaxTicks: 1200, MaxHonestMessages: 800_000, MaxHonestBytes: 40_000_000,
		},
	})
	register(&Manifest{
		Name:        "sync-product-honest",
		Description: "multiplication tree Π x_i under synchrony, all honest",
		Parties:     flagship, Network: syncNet(), Seed: 2,
		Circuit: CircuitSpec{Family: "product"},
		Expect: Expect{
			Outputs: []uint64{40320}, Consistent: true,
			MinAgreement: 8, AllHonestTerminate: true, WithinDeadline: true,
			MaxHonestBytes: 140_000_000,
		},
	})
	register(&Manifest{
		Name:        "sync-dot-honest",
		Description: "two-vector dot product Σ x_i·y_i under synchrony, all honest",
		Parties:     flagship, Network: syncNet(), Seed: 3,
		Circuit: CircuitSpec{Family: "dot"},
		Expect: Expect{
			// x = (1,2,3,4), y = (5,6,7,8): Σ x_i·y_i = 70.
			Outputs: []uint64{70}, Consistent: true,
			MinAgreement: 8, AllHonestTerminate: true, WithinDeadline: true,
		},
	})
	register(&Manifest{
		Name:        "sync-stats-honest",
		Description: "federated statistics (Σ x_i, Σ x_i²) under synchrony, all honest",
		Parties:     flagship, Network: syncNet(), Seed: 4,
		Circuit: CircuitSpec{Family: "stats"},
		Expect: Expect{
			Outputs: []uint64{36, 204}, Consistent: true,
			MinAgreement: 8, AllHonestTerminate: true, WithinDeadline: true,
		},
	})
	register(&Manifest{
		Name:        "sync-membership-hit",
		Description: "private set membership where the element is in the set: Π (e - s_j) = 0",
		Parties:     flagship, Network: syncNet(), Seed: 5,
		Circuit: CircuitSpec{Family: "membership"},
		Inputs:  []uint64{5, 1, 5, 9, 2, 7, 3, 4},
		Expect: Expect{
			Outputs: []uint64{0}, Consistent: true,
			MinAgreement: 8, AllHonestTerminate: true, WithinDeadline: true,
		},
	})
	register(&Manifest{
		Name:        "sync-membership-miss",
		Description: "private set membership where the element is absent: nonzero witness",
		Parties:     flagship, Network: syncNet(), Seed: 6,
		Circuit: CircuitSpec{Family: "membership"},
		Inputs:  []uint64{100, 1, 5, 9, 2, 7, 3, 4},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 8, AllHonestTerminate: true, WithinDeadline: true,
		},
	})
	register(&Manifest{
		Name:        "sync-polyeval-honest",
		Description: "public polynomial evaluation at a private point (Horner chain)",
		Parties:     flagship, Network: syncNet(), Seed: 7,
		Circuit: CircuitSpec{Family: "polyeval", Coeffs: []uint64{7, 3, 2}},
		Expect: Expect{
			// p(x) = 2x² + 3x + 7 at x = 1, plus Σ_{i≥2} x_i = 35: 47.
			Outputs: []uint64{47}, Consistent: true,
			MinAgreement: 8, AllHonestTerminate: true, WithinDeadline: true,
		},
	})
	register(&Manifest{
		Name:        "sync-matmul-honest",
		Description: "2x2 matrix product, the multiplication-heavy shape (cM=8, DM=1)",
		Parties:     flagship, Network: syncNet(), Seed: 8,
		Circuit: CircuitSpec{Family: "matmul"},
		Expect: Expect{
			// A=[[1,2],[3,4]], B=[[5,6],[7,8]] → C=[[19,22],[43,50]].
			Outputs: []uint64{19, 22, 43, 50}, Consistent: true,
			MinAgreement: 8, AllHonestTerminate: true, WithinDeadline: true,
		},
	})
	register(&Manifest{
		Name:        "sync-depth-chain",
		Description: "worst-case multiplicative depth: a chain of 4 squarings",
		Parties:     boundaryN5, Network: syncNet(), Seed: 9,
		Circuit: CircuitSpec{Family: "depth", Depth: 4},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 5, AllHonestTerminate: true, WithinDeadline: true,
		},
	})

	// --- Synchronous, Byzantine adversaries at full budget.
	register(&Manifest{
		Name:        "sync-garble-ts",
		Description: "ts=2 garbling senders under synchrony: full synchronous budget",
		Parties:     flagship, Network: syncNet(), Seed: 10,
		Adversary: AdversarySpec{Garble: []int{2, 5}},
		Circuit:   CircuitSpec{Family: "sum"},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 6, AllHonestTerminate: true, WithinDeadline: true,
		},
	})
	register(&Manifest{
		Name:        "sync-silent-crash",
		Description: "a party crashed from the start under synchrony",
		Parties:     flagship, Network: syncNet(), Seed: 11,
		Adversary: AdversarySpec{Silent: []int{3}},
		Circuit:   CircuitSpec{Family: "sum"},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 6, AllHonestTerminate: true, WithinDeadline: true,
		},
	})
	register(&Manifest{
		Name:        "sync-crash-midway",
		Description: "a party crashing mid-protocol (tick 40) under synchrony",
		Parties:     flagship, Network: syncNet(), Seed: 12,
		Adversary: AdversarySpec{CrashAt: map[int]int64{4: 40}},
		Circuit:   CircuitSpec{Family: "sum"},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 6, AllHonestTerminate: true, WithinDeadline: true,
		},
	})
	register(&Manifest{
		Name:        "sync-garble-and-silent",
		Description: "mixed strategy at full budget: one garbler plus one crash",
		Parties:     flagship, Network: syncNet(), Seed: 13,
		Adversary: AdversarySpec{Garble: []int{7}, Silent: []int{2}},
		Circuit:   CircuitSpec{Family: "stats"},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 6, AllHonestTerminate: true, WithinDeadline: true,
		},
	})

	// --- Threshold-boundary configurations (3·Ts + Ta = N − 1).
	register(&Manifest{
		Name:        "sync-boundary-n5",
		Description: "smallest best-of-both-worlds configuration n=5, ts=ta=1 (3·ts+ta = n−1)",
		Parties:     boundaryN5, Network: syncNet(), Seed: 14,
		Circuit: CircuitSpec{Family: "sum"},
		Expect: Expect{
			Outputs: []uint64{15}, Consistent: true,
			MinAgreement: 5, AllHonestTerminate: true, WithinDeadline: true,
			MaxTicks: 1000, MaxHonestBytes: 3_500_000,
		},
	})
	register(&Manifest{
		Name:        "sync-boundary-n9",
		Description: "boundary configuration n=9, ts=2, ta=2 (3·ts+ta = n−1)",
		Parties:     boundaryN9, Network: syncNet(), Seed: 15,
		Circuit: CircuitSpec{Family: "sum"},
		Expect: Expect{
			Outputs: []uint64{45}, Consistent: true,
			MinAgreement: 7, AllHonestTerminate: true, WithinDeadline: true,
		},
	})
	register(&Manifest{
		Name:        "sync-boundary-n5-garble",
		Description: "boundary n=5 with its entire synchronous budget garbling",
		Parties:     boundaryN5, Network: syncNet(), Seed: 16,
		Adversary: AdversarySpec{Garble: []int{2}},
		Circuit:   CircuitSpec{Family: "product"},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 4, AllHonestTerminate: true, WithinDeadline: true,
		},
	})

	// --- SyncOnly ablation: the fallback-trigger pair.
	register(&Manifest{
		Name:        "synconly-sync-baseline",
		Description: "ablation: fallback paths disabled, synchronous network — still correct",
		Parties:     flagship, Network: syncNet(), Seed: 17, SyncOnly: true,
		Circuit: CircuitSpec{Family: "sum"},
		Expect: Expect{
			Outputs: []uint64{36}, Consistent: true,
			MinAgreement: 8, AllHonestTerminate: true, WithinDeadline: true,
		},
	})
	register(&Manifest{
		Name:        "fallback-synconly-async-stalls",
		Description: "fallback trigger, negative control: the SyncOnly stack loses liveness under asynchrony",
		Parties:     flagship, Network: asyncNet(), Seed: 18, SyncOnly: true,
		EventLimit: 20_000_000,
		Adversary:  AdversarySpec{StarveFrom: []int{8}, StarveUntil: 6000},
		Circuit:    CircuitSpec{Family: "sum"},
		Expect:     Expect{Error: ErrNameNoHonestOutput},
	})
	register(&Manifest{
		Name:        "fallback-bobw-async-survives",
		Description: "fallback trigger, positive control: the same run with fallback enabled terminates",
		Parties:     flagship, Network: asyncNet(), Seed: 18,
		Adversary: AdversarySpec{StarveFrom: []int{8}, StarveUntil: 6000},
		Circuit:   CircuitSpec{Family: "sum"},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 6,
			MaxTicks:     4000,
		},
	})

	// --- Asynchronous network.
	register(&Manifest{
		Name:        "async-sum-honest",
		Description: "Σ x_i under asynchrony, all honest",
		Parties:     flagship, Network: asyncNet(), Seed: 19,
		Circuit: CircuitSpec{Family: "sum"},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 6, AllHonestTerminate: true,
			MaxTicks: 2000, MaxHonestBytes: 50_000_000,
		},
	})
	register(&Manifest{
		Name:        "async-product-honest",
		Description: "multiplication tree under asynchrony, all honest",
		Parties:     flagship, Network: asyncNet(), Seed: 20,
		Circuit: CircuitSpec{Family: "product"},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 6, AllHonestTerminate: true,
		},
	})
	register(&Manifest{
		Name:        "async-garble-ta",
		Description: "the full asynchronous budget (ta=1) garbling under asynchrony",
		Parties:     flagship, Network: asyncNet(), Seed: 21,
		Adversary: AdversarySpec{Garble: []int{3}},
		Circuit:   CircuitSpec{Family: "sum"},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 6, AllHonestTerminate: true,
		},
	})
	register(&Manifest{
		Name:        "async-silent-ta",
		Description: "a crashed party under asynchrony (ta=1 budget)",
		Parties:     flagship, Network: asyncNet(), Seed: 22,
		Adversary: AdversarySpec{Silent: []int{6}},
		Circuit:   CircuitSpec{Family: "sum"},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 6, AllHonestTerminate: true,
		},
	})
	register(&Manifest{
		Name:        "async-starved-links",
		Description: "adversarial scheduler starving all links out of one honest party",
		Parties:     flagship, Network: asyncNet(), Seed: 23,
		Adversary: AdversarySpec{StarveFrom: []int{8}, StarveUntil: 6000},
		Circuit:   CircuitSpec{Family: "sum"},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 6,
			MaxTicks:     3000,
		},
	})
	register(&Manifest{
		Name:        "async-heavy-tail",
		Description: "asynchrony with a 40% heavy-tail delay distribution",
		Parties:     flagship, Network: NetworkSpec{Kind: "async", Delta: 10, Tail: 0.4}, Seed: 24,
		Circuit: CircuitSpec{Family: "sum"},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 6, AllHonestTerminate: true,
			MaxTicks: 4000,
		},
	})
	register(&Manifest{
		Name:        "async-depth-chain",
		Description: "depth-3 squaring chain under asynchrony at the n=5 boundary",
		Parties:     boundaryN5, Network: asyncNet(), Seed: 25,
		Circuit: CircuitSpec{Family: "depth", Depth: 3},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 4, AllHonestTerminate: true,
		},
	})
	register(&Manifest{
		Name:        "async-boundary-n5-garble",
		Description: "boundary n=5 under asynchrony with its entire ta budget garbling",
		Parties:     boundaryN5, Network: asyncNet(), Seed: 26,
		Adversary: AdversarySpec{Garble: []int{5}},
		Circuit:   CircuitSpec{Family: "sum"},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 4, AllHonestTerminate: true,
		},
	})
	// --- Generated workloads and fuzz-style adversaries: the random
	// circuit family and the targeted drop/delay/equivocate behaviours
	// the fuzzer composes, pinned here as always-run regressions (this
	// is also where minimized fuzz counterexamples get promoted — see
	// docs/fuzzing.md).
	register(&Manifest{
		Name:        "sync-random-circuit",
		Description: "seeded random circuit (3 layers x 4 gates, 40% muls): the fuzzer's generated workload family",
		Parties:     boundaryN5, Network: syncNet(), Seed: 28,
		Circuit: CircuitSpec{Family: "random", Layers: 3, Width: 4, MulPct: 40, Outs: 2, GenSeed: 7},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 5, AllHonestTerminate: true, WithinDeadline: true,
		},
	})
	register(&Manifest{
		Name:        "sync-drop-and-delay",
		Description: "targeted suppression: one party drops preprocessing traffic, another delays output reconstruction",
		Parties:     flagship, Network: syncNet(), Seed: 29,
		Adversary: AdversarySpec{
			Drop:  map[int]string{2: "mpc/pp"},
			Delay: map[int]DelayRule{5: {Match: "mpc/out", Extra: 120}},
		},
		Circuit: CircuitSpec{Family: "sum"},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 6, AllHonestTerminate: true, WithinDeadline: true,
		},
	})
	register(&Manifest{
		Name:        "async-equivocate-burst",
		Description: "equivocating sender under asynchrony with periodic network outages (burst delivery policy)",
		Parties:     boundaryN5, Network: NetworkSpec{Kind: "async", Delta: 10, BurstPeriod: 400, BurstDown: 120}, Seed: 30,
		Adversary: AdversarySpec{Equivocate: []int{3}},
		Circuit:   CircuitSpec{Family: "sum"},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 4, AllHonestTerminate: true,
			MaxTicks: 20000,
		},
	})
	register(&Manifest{
		Name:        "async-starve-and-garble",
		Description: "combined attack: one garbler plus starved links under asynchrony",
		Parties:     flagship, Network: asyncNet(), Seed: 27,
		Adversary: AdversarySpec{Garble: []int{4}, StarveFrom: []int{1}, StarveUntil: 4000},
		Circuit:   CircuitSpec{Family: "sum"},
		Expect: Expect{
			Consistent:   true,
			MinAgreement: 6,
			MaxTicks:     8000,
		},
	})
}
