package scenario

import (
	"strings"
	"testing"
)

// TestExpandSeedsDeepCopies is the aliasing regression test: the old
// shallow copy (`c := *m`) made every derived manifest share the
// base's adversary/expect slice and map fields, so mutating one
// derived manifest corrupted its siblings and the base.
func TestExpandSeedsDeepCopies(t *testing.T) {
	base := &Manifest{
		Name:    "expand-alias-base",
		Parties: Parties{N: 8, Ts: 2, Ta: 1},
		Network: NetworkSpec{Kind: "sync", Delta: 10},
		Adversary: AdversarySpec{
			Garble:      []int{2},
			StarveFrom:  []int{8},
			StarveUntil: 6000,
			CrashAt:     map[int]int64{4: 40},
		},
		Circuit: CircuitSpec{Family: "polyeval", Coeffs: []uint64{7, 3, 2}},
		Inputs:  []uint64{1, 2, 3, 4, 5, 6, 7, 8},
		Seed:    1,
		Expect:  Expect{Consistent: true, MinAgreement: 6},
	}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	out := ExpandSeeds(base, []uint64{3, 9})

	// Mutate every slice/map field of the first derived manifest.
	out[0].Adversary.Garble[0] = 99
	out[0].Adversary.StarveFrom[0] = 99
	out[0].Adversary.CrashAt[4] = 9999
	out[0].Circuit.Coeffs[0] = 99
	out[0].Inputs[0] = 99

	if base.Adversary.Garble[0] != 2 || out[1].Adversary.Garble[0] != 2 {
		t.Error("adversary.garble aliased between base and derived manifests")
	}
	if base.Adversary.StarveFrom[0] != 8 || out[1].Adversary.StarveFrom[0] != 8 {
		t.Error("adversary.starveFrom aliased between base and derived manifests")
	}
	if base.Adversary.CrashAt[4] != 40 || out[1].Adversary.CrashAt[4] != 40 {
		t.Error("adversary.crashAt map aliased between base and derived manifests")
	}
	if base.Circuit.Coeffs[0] != 7 || out[1].Circuit.Coeffs[0] != 7 {
		t.Error("circuit.coeffs aliased between base and derived manifests")
	}
	if base.Inputs[0] != 1 || out[1].Inputs[0] != 1 {
		t.Error("inputs aliased between base and derived manifests")
	}
}

// TestExpandSeedsPreservesBaseOutputs: dropping the Outputs assertion
// on derived manifests must not clear the base's (nil-ing the derived
// field is fine, writing through an aliased slice is not).
func TestExpandSeedsPreservesBaseOutputs(t *testing.T) {
	m, err := Lookup("sync-boundary-n5")
	if err != nil {
		t.Fatal(err)
	}
	want := append([]uint64(nil), m.Expect.Outputs...)
	out := ExpandSeeds(m, []uint64{1, 2, 3})
	for _, c := range out {
		if c.Expect.Outputs != nil {
			t.Fatal("derived manifest kept the exact-output assertion")
		}
	}
	if len(m.Expect.Outputs) != len(want) {
		t.Fatal("expansion mutated the base manifest's expected outputs")
	}
}

// TestSweepIsolatesPanic: a manifest whose run panics — here a nil
// manifest, which panics on the first field access inside Run — must
// surface as that result's Err without killing the worker pool; the
// healthy manifests around it still produce passing reports.
func TestSweepIsolatesPanic(t *testing.T) {
	good, err := Lookup("sync-boundary-n5")
	if err != nil {
		t.Fatal(err)
	}
	ms := []*Manifest{good, nil, good}
	results := Sweep(ms, 2)
	if len(results) != 3 {
		t.Fatalf("want 3 results, got %d", len(results))
	}
	if results[1].Err == nil {
		t.Fatal("panicking run did not report an error")
	}
	if !strings.Contains(results[1].Err.Error(), "panicked") {
		t.Errorf("error does not identify the panic: %v", results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Errorf("healthy manifest %d reported error: %v", i, results[i].Err)
		}
		if results[i].Report == nil || !results[i].Report.Pass {
			t.Errorf("healthy manifest %d did not pass after sibling panic", i)
		}
	}
}

// TestSweepIsolatesAssemblyError: a manifest failing validation mid-
// sweep is confined to its own result (the pre-existing error path,
// pinned here alongside the new panic isolation).
func TestSweepIsolatesAssemblyError(t *testing.T) {
	good, err := Lookup("sync-boundary-n5")
	if err != nil {
		t.Fatal(err)
	}
	bad := good.clone()
	bad.Name = "sweep-bad-family"
	bad.Circuit = CircuitSpec{Family: "no-such-family"}
	results := Sweep([]*Manifest{bad, good}, 1)
	if results[0].Err == nil {
		t.Fatal("invalid manifest did not report an error")
	}
	if results[1].Err != nil || results[1].Report == nil || !results[1].Report.Pass {
		t.Error("the manifest after the failure was not run to a passing report")
	}
}

// TestSweepEmptyAndClamp: an empty manifest list fast-returns nil for
// any pool size, and a pool larger than the list is clamped.
func TestSweepEmptyAndClamp(t *testing.T) {
	if got := Sweep(nil, 0); got != nil {
		t.Errorf("Sweep(nil, 0) = %v, want nil", got)
	}
	if got := Sweep([]*Manifest{}, 8); got != nil {
		t.Errorf("Sweep(empty, 8) = %v, want nil", got)
	}
	m, err := Lookup("sync-boundary-n5")
	if err != nil {
		t.Fatal(err)
	}
	results := Sweep([]*Manifest{m}, 64)
	if len(results) != 1 || results[0].Err != nil || !results[0].Report.Pass {
		t.Errorf("oversized pool broke a one-manifest sweep: %+v", results)
	}
}
