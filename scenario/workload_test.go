package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// TestWorkloadBuiltinsRun executes every builtin workload with the
// one-shot comparison and checks the amortization headline: every step
// passes and the amortized per-evaluation traffic beats the one-shot
// cost whenever the workload has mul-bearing steps.
func TestWorkloadBuiltinsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("workload corpus is slow; run without -short")
	}
	for _, m := range BuiltinWorkloads() {
		rep, err := RunWorkload(m, true)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if !rep.Pass {
			for _, s := range rep.Steps {
				if !s.Pass {
					t.Errorf("%s step %d (%s): %v %s", m.Name, s.Index, s.Circuit, s.Failures, s.Err)
				}
			}
			continue
		}
		// The refill builtin under-budgets on purpose (every step pays a
		// fresh batch), so amortization is only asserted for the others.
		if !strings.Contains(m.Name, "refill") && rep.Savings <= 1 {
			t.Errorf("%s: amortized %0.f msgs/eval not below one-shot %0.f (savings %.2f)",
				m.Name, rep.AmortizedMsgsPerEval, rep.OneShotMsgsPerEval, rep.Savings)
		}
		t.Logf("%s: %d evals, amortized %.0f msgs/eval vs one-shot %.0f (%.2fx)",
			m.Name, len(rep.Steps), rep.AmortizedMsgsPerEval, rep.OneShotMsgsPerEval, rep.Savings)
	}
}

// TestWorkloadRefillRecovers pins the refill path: the under-budgeted
// builtin consumes its pool, hits exhaustion, refills and still passes.
func TestWorkloadRefillRecovers(t *testing.T) {
	m, err := LookupWorkload("workload-refill-sync")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunWorkload(m, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("refill workload failed: %+v", rep.Steps)
	}
	if rep.TriplesGenerated <= rep.Budget {
		t.Errorf("no refill happened: generated %d, initial budget %d", rep.TriplesGenerated, rep.Budget)
	}
}

// TestWorkloadValidation covers the workload-specific manifest rules.
func TestWorkloadValidation(t *testing.T) {
	base := func() *Manifest {
		return &Manifest{
			Name:    "wl-test",
			Parties: Parties{N: 5, Ts: 1, Ta: 1},
			Network: NetworkSpec{Kind: "sync", Delta: 10},
			Seed:    1,
			Workload: &WorkloadSpec{Steps: []WorkloadStep{
				{Circuit: CircuitSpec{Family: "sum"}},
			}},
		}
	}
	cases := []struct {
		name string
		mut  func(*Manifest)
		want string
	}{
		{"ok", func(m *Manifest) {}, ""},
		{"top-level circuit", func(m *Manifest) { m.Circuit.Family = "sum" }, "circuits per step"},
		{"top-level inputs", func(m *Manifest) { m.Inputs = []uint64{1, 2, 3, 4, 5} }, "inputs per step"},
		{"top-level expect", func(m *Manifest) { m.Expect.Consistent = true }, "assert per step"},
		{"negative budget", func(m *Manifest) { m.Workload.Budget = -1 }, "budget must be >= 0"},
		{"no steps", func(m *Manifest) { m.Workload.Steps = nil }, "at least one step"},
		{"negative pipeline", func(m *Manifest) { m.Workload.Pipeline = -2 }, "pipeline must be >= 0"},
		{"refill without pipeline", func(m *Manifest) { m.Workload.RefillLowWater = 4 }, "requires pipeline"},
		{"refill budget without watermark", func(m *Manifest) {
			m.Workload.Pipeline = 2
			m.Workload.RefillBudget = 8
		}, "without refillLowWater"},
		{"bad step circuit", func(m *Manifest) { m.Workload.Steps[0].Circuit.Family = "nope" }, "workload.steps[0].circuit"},
		{"bad step inputs", func(m *Manifest) { m.Workload.Steps[0].Inputs = []uint64{1} }, "workload.steps[0].inputs"},
		{"bad step expect", func(m *Manifest) { m.Workload.Steps[0].Expect.MinAgreement = 9 }, "workload.steps[0].expect.minAgreement"},
	}
	for _, tc := range cases {
		m := base()
		tc.mut(m)
		err := m.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestWorkloadJSONRoundTrip: a workload manifest survives JSON,
// rejecting unknown fields like any other manifest.
func TestWorkloadJSONRoundTrip(t *testing.T) {
	m, err := LookupWorkload("workload-amortize-sync")
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(m.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload == nil || len(back.Workload.Steps) != len(m.Workload.Steps) {
		t.Fatalf("workload section lost in round trip: %+v", back.Workload)
	}
	if _, err := Load([]byte(`{"name":"x","parties":{"n":5,"ts":1,"ta":1},"network":{"kind":"sync"},"seed":1,"workload":{"steps":[{"circuit":{"family":"sum"},"bogus":1}]}}`)); err == nil {
		t.Fatal("unknown step field accepted")
	}
}

// TestWorkloadRunRejectsWorkloadManifest: the one-shot paths refuse a
// workload manifest with a pointer at the right verb.
func TestWorkloadRunRejectsWorkloadManifest(t *testing.T) {
	m, err := LookupWorkload("workload-amortize-sync")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m); err == nil || !strings.Contains(err.Error(), "RunWorkload") {
		t.Fatalf("Run accepted a workload manifest: %v", err)
	}
	plain, err := Lookup("sync-sum-honest")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorkload(plain, false); err == nil || !strings.Contains(err.Error(), "workload") {
		t.Fatalf("RunWorkload accepted a plain manifest: %v", err)
	}
}

// TestWorkloadPipelineDifferential pins the pipelined serving
// contract at the report level: a depth-1 pipelined run reproduces
// the sequential report field for field, and a depth-4 run reproduces
// the sequential outputs and CS sets (its traffic/tick figures sit in
// the PRNG noise band — see the mpc pipelining notes).
func TestWorkloadPipelineDifferential(t *testing.T) {
	m, err := LookupWorkload("workload-pipeline-sync")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunWorkloadOpts(m, WorkloadRunOptions{Pipeline: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Pass {
		t.Fatalf("sequential reference failed: %+v", seq.Steps)
	}
	p1, err := RunWorkloadOpts(m, WorkloadRunOptions{Pipeline: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, seq) {
		t.Errorf("depth-1 pipelined report differs from sequential:\n pipelined: %+v\nsequential: %+v", p1, seq)
	}
	p4, err := RunWorkloadOpts(m, WorkloadRunOptions{}) // manifest depth 4
	if err != nil {
		t.Fatal(err)
	}
	if !p4.Pass {
		t.Fatalf("depth-4 run failed: %+v", p4.Steps)
	}
	for i, s := range p4.Steps {
		ref := seq.Steps[i]
		if !reflect.DeepEqual(s.Outputs, ref.Outputs) {
			t.Errorf("step %d: depth-4 outputs %v, sequential %v", i, s.Outputs, ref.Outputs)
		}
		if !reflect.DeepEqual(s.CS, ref.CS) {
			t.Errorf("step %d: depth-4 CS %v, sequential %v", i, s.CS, ref.CS)
		}
		if s.Triples != ref.Triples {
			t.Errorf("step %d: depth-4 consumed %d triples, sequential %d", i, s.Triples, ref.Triples)
		}
	}
}

// TestWorkloadPipelineRefill pins the watermark path end to end: the
// under-budgeted pipelined builtin passes with background refills (the
// pool grows past the initial budget) and never falls back to the
// drain-and-retry exhaustion path.
func TestWorkloadPipelineRefill(t *testing.T) {
	m, err := LookupWorkload("workload-pipeline-refill-sync")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunWorkload(m, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("pipelined refill workload failed: %+v", rep.Steps)
	}
	if rep.TriplesGenerated <= rep.Budget {
		t.Errorf("no background refill happened: generated %d, initial budget %d", rep.TriplesGenerated, rep.Budget)
	}
}

// TestWorkloadPipelineCheckpointIncompatible: pipelined serving
// refuses the checkpoint/resume options instead of snapshotting a
// half-advanced pipeline.
func TestWorkloadPipelineCheckpointIncompatible(t *testing.T) {
	m, err := LookupWorkload("workload-pipeline-sync")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorkloadOpts(m, WorkloadRunOptions{CheckpointPath: t.TempDir() + "/ck.bin"}); err == nil ||
		!strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("checkpointing a pipelined workload: %v, want incompatible error", err)
	}
	if _, err := RunWorkloadOpts(m, WorkloadRunOptions{StopAfter: 2}); err == nil ||
		!strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("stop-after on a pipelined workload: %v, want incompatible error", err)
	}
}
