package scenario

import (
	"errors"
	"fmt"

	"repro/circuit"
	"repro/field"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/mpc"
)

// RunArtifacts are the engine-level pieces assembled from a manifest:
// everything mpc.Run needs. Harnesses that want to drive the engine
// themselves (cmd/bobw, internal/bench) build these instead of
// duplicating config/circuit/adversary assembly.
type RunArtifacts struct {
	Cfg     mpc.Config
	Circuit *circuit.Circuit
	Inputs  []field.Element
	// Adversary is nil for an all-honest run.
	Adversary *mpc.Adversary
}

// Build validates the manifest and assembles its run artifacts.
func Build(m *Manifest) (*RunArtifacts, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.Workload != nil {
		return nil, fmt.Errorf("scenario %q: workload manifest: run it with RunWorkload (the `scenario workload` verb), not Run", m.Name)
	}
	circ, err := m.Circuit.Build(m.Parties.N)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: circuit: %w", m.Name, err)
	}
	cfg, adv := m.engineConfig()
	return &RunArtifacts{
		Cfg:       cfg,
		Circuit:   circ,
		Inputs:    buildInputs(m.Inputs, m.Parties.N),
		Adversary: adv,
	}, nil
}

// buildInputs materialises a manifest input list (empty = default 1..n).
func buildInputs(raw []uint64, n int) []field.Element {
	inputs := make([]field.Element, n)
	for i := range inputs {
		if len(raw) > 0 {
			inputs[i] = field.New(raw[i])
		} else {
			inputs[i] = field.New(uint64(i + 1))
		}
	}
	return inputs
}

// engineConfig assembles the manifest's mpc.Config and Adversary — the
// circuit-independent engine parameters shared by the one-shot runner
// and the session-workload runner.
func (m *Manifest) engineConfig() (mpc.Config, *mpc.Adversary) {
	var adv *mpc.Adversary
	if !m.Adversary.IsZero() {
		adv = &mpc.Adversary{
			Passive:     m.Adversary.Passive,
			Silent:      m.Adversary.Silent,
			Garble:      m.Adversary.Garble,
			Equivocate:  m.Adversary.Equivocate,
			StarveFrom:  m.Adversary.StarveFrom,
			StarveUntil: m.Adversary.StarveUntil,
		}
		if len(m.Adversary.CrashAt) > 0 {
			adv.CrashAt = make(map[int]int64, len(m.Adversary.CrashAt))
			for p, t := range m.Adversary.CrashAt {
				adv.CrashAt[p] = t
			}
		}
		if len(m.Adversary.Drop) > 0 {
			adv.Drop = make(map[int]string, len(m.Adversary.Drop))
			for p, sub := range m.Adversary.Drop {
				adv.Drop[p] = sub
			}
		}
		if len(m.Adversary.Delay) > 0 {
			adv.Delay = make(map[int]mpc.DelayRule, len(m.Adversary.Delay))
			for p, rule := range m.Adversary.Delay {
				adv.Delay[p] = mpc.DelayRule{Match: rule.Match, Extra: rule.Extra}
			}
		}
	}
	return mpc.Config{
		N: m.Parties.N, Ts: m.Parties.Ts, Ta: m.Parties.Ta,
		Network:     mpc.Network(m.Network.Kind),
		Delta:       m.Network.Delta,
		Seed:        m.Seed,
		Tail:        m.Network.Tail,
		BurstPeriod: m.Network.BurstPeriod,
		BurstDown:   m.Network.BurstDown,
		SyncOnly:    m.SyncOnly,
		EventLimit:  m.EventLimit,
		Workers:     m.Network.Workers,
	}, adv
}

// Report is the outcome of one scenario run: the observed figures plus
// the assertion verdict. All fields are deterministic functions of the
// manifest, so two runs of the same manifest produce identical reports.
type Report struct {
	Name string `json:"name"`
	// Pass is true when the run completed and every assertion held.
	Pass bool `json:"pass"`
	// Failures lists the violated assertions (empty when Pass).
	Failures []string `json:"failures,omitempty"`
	// Err is the engine error, "" on success.
	Err string `json:"err,omitempty"`
	// Outputs are the agreed public outputs (absent when the run
	// failed).
	Outputs []uint64 `json:"outputs,omitempty"`
	// CS is the agreed input-provider set.
	CS []int `json:"cs,omitempty"`
	// LastTick is the virtual time of the last honest termination
	// (corrupt parties' engines keep running honest code and may
	// terminate later; they are excluded).
	LastTick int64 `json:"lastTick"`
	// Deadline is the derived synchronous bound TCirEval.
	Deadline int64 `json:"deadline"`
	// HonestMessages / HonestBytes count honest-party traffic.
	HonestMessages uint64 `json:"honestMessages"`
	HonestBytes    uint64 `json:"honestBytes"`
	// ByFamily breaks honest traffic down by top-level protocol family,
	// straight from the engine's metrics (CLI `-json` consumers no
	// longer re-derive it).
	ByFamily map[string]mpc.FamilyCounts `json:"byFamily,omitempty"`
	// Events is the number of simulator events processed.
	Events uint64 `json:"events"`
}

// Run executes the manifest and evaluates its assertions. The returned
// error covers manifest/assembly problems only; engine errors and
// assertion failures are reported in the Report.
func Run(m *Manifest) (*Report, error) { return RunTraced(m, nil) }

// RunTraced is Run with a trace sink receiving the run's typed event
// stream (nil disables tracing; traced runs are bit-identical to
// untraced ones).
func RunTraced(m *Manifest, tr obs.Tracer) (*Report, error) {
	return RunWith(m, RunOptions{Tracer: tr})
}

// RunOptions shapes one RunWith call. The zero value reproduces a
// plain Run(m).
type RunOptions struct {
	// Tracer receives the run's typed event stream (nil = off).
	Tracer obs.Tracer
	// Transport selects the message-plane backend (nil = the in-memory
	// simulator). The Report is backend-invariant: on a fixed seed a
	// run over real sockets reports bit-identically to the simulator.
	Transport *mpc.TransportSpec
	// Wire, when non-nil, receives the physical wire accounting of the
	// run (zeros on the simulator backend).
	Wire *transport.WireStats
	// Workers overrides the manifest's network.workers pool size:
	// > 0 forces that pool size, -1 forces the serial loop, 0 keeps
	// the manifest's setting. Reports are bit-identical either way —
	// this is an execution knob, not part of the scenario identity.
	Workers int
}

// applyWorkers resolves a CLI/API workers override against the
// manifest-derived config.
func applyWorkers(cfg *mpc.Config, override int) {
	switch {
	case override > 0:
		cfg.Workers = override
	case override < 0:
		cfg.Workers = 0
	}
}

// RunWith is the full-control one-shot runner behind Run/RunTraced:
// tracing plus the pluggable transport backend the deployment layer
// assembles over (docs/deployment.md).
func RunWith(m *Manifest, opt RunOptions) (*Report, error) {
	art, err := Build(m)
	if err != nil {
		return nil, err
	}
	applyWorkers(&art.Cfg, opt.Workers)
	eng, err := mpc.NewEngineOpts(art.Cfg, mpc.EngineOptions{
		Adversary: art.Adversary,
		Tracer:    opt.Tracer,
		Transport: opt.Transport,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", m.Name, err)
	}
	defer eng.Close()
	rep := &Report{Name: m.Name}
	res, runErr := eng.OneShot(art.Circuit, art.Inputs)
	if opt.Wire != nil {
		*opt.Wire = eng.WireStats()
	}
	if runErr != nil {
		// A transport fault is an environment failure, not a protocol
		// outcome: surface it as a hard error instead of a report row.
		if errors.Is(runErr, mpc.ErrTransport) {
			return nil, fmt.Errorf("scenario %q: %w", m.Name, runErr)
		}
		rep.Err = errName(runErr)
	}
	if res != nil {
		corrupt := map[int]bool{}
		for _, p := range m.Adversary.Corrupt() {
			corrupt[p] = true
		}
		rep.CS = res.CS
		rep.Deadline = res.Deadline
		rep.HonestMessages = res.HonestMessages
		rep.HonestBytes = res.HonestBytes
		rep.ByFamily = res.ByFamily
		rep.Events = res.Events
		for i, t := range res.TerminatedAt {
			if !corrupt[i] && t > rep.LastTick {
				rep.LastTick = t
			}
		}
		if runErr == nil {
			rep.Outputs = make([]uint64, len(res.Outputs))
			for i, o := range res.Outputs {
				rep.Outputs[i] = o.Uint64()
			}
		}
	}
	rep.Failures = assert(m, art, res, runErr, rep.LastTick)
	rep.Pass = len(rep.Failures) == 0
	return rep, nil
}

// errName maps an engine error to its manifest name.
func errName(err error) string {
	switch {
	case errors.Is(err, mpc.ErrNoHonestOutput):
		return ErrNameNoHonestOutput
	case errors.Is(err, mpc.ErrDisagreement):
		return ErrNameDisagreement
	default:
		return err.Error()
	}
}

// assert evaluates the manifest's Expect block against the run result
// and returns the violated assertions. lastHonest is the virtual time
// of the last honest termination (Report.LastTick).
func assert(m *Manifest, art *RunArtifacts, res *mpc.Result, runErr error, lastHonest int64) []string {
	return assertExpect(m.Expect, m.Adversary, art, res, runErr, lastHonest, lastHonest)
}

// assertExpect evaluates one Expect block. lastAbs is the absolute
// virtual time of the last honest termination (the deadline check);
// lastRel is the tick cost attributed to the evaluation (the maxTicks
// budget) — the two differ for workload steps running late on a
// long-lived engine clock.
func assertExpect(e Expect, advSpec AdversarySpec, art *RunArtifacts, res *mpc.Result, runErr error, lastAbs, lastRel int64) []string {
	var fails []string
	failf := func(format string, args ...any) {
		fails = append(fails, fmt.Sprintf(format, args...))
	}

	if e.Error != "" {
		switch {
		case runErr == nil:
			failf("expected error %q, run succeeded", e.Error)
		case errName(runErr) != e.Error:
			failf("expected error %q, got %q", e.Error, errName(runErr))
		}
		return fails
	}
	if runErr != nil {
		failf("expected success, got error %q", errName(runErr))
		return fails
	}

	if len(e.Outputs) > 0 {
		if len(e.Outputs) != len(res.Outputs) {
			failf("expected %d outputs, got %d", len(e.Outputs), len(res.Outputs))
		} else {
			for i, want := range e.Outputs {
				if got := res.Outputs[i].Uint64(); got != want {
					failf("output[%d] = %d, want %d", i, got, want)
				}
			}
		}
	}
	if e.Consistent {
		want, err := mpc.ExpectedOutputs(art.Circuit, art.Inputs, res.CS)
		if err != nil {
			failf("consistency reference evaluation failed: %v", err)
		} else {
			for i := range want {
				if res.Outputs[i] != want[i] {
					failf("output[%d] = %d, inconsistent with clear evaluation %d over CS=%v",
						i, res.Outputs[i].Uint64(), want[i].Uint64(), res.CS)
				}
			}
		}
	}
	if e.MinAgreement > 0 && len(res.CS) < e.MinAgreement {
		failf("|CS| = %d below minAgreement %d (CS=%v)", len(res.CS), e.MinAgreement, res.CS)
	}
	if e.MaxAgreement > 0 && len(res.CS) > e.MaxAgreement {
		failf("|CS| = %d above maxAgreement %d (CS=%v)", len(res.CS), e.MaxAgreement, res.CS)
	}
	if e.AllHonestTerminate && !res.AllHonestTerminated(art.Adversary) {
		var missing []int
		corrupt := map[int]bool{}
		for _, p := range advSpec.Corrupt() {
			corrupt[p] = true
		}
		for i := 1; i < len(res.PerParty); i++ {
			if !corrupt[i] && res.PerParty[i] == nil {
				missing = append(missing, i)
			}
		}
		failf("honest parties %v did not terminate", missing)
	}
	if e.MaxTicks > 0 && lastRel > e.MaxTicks {
		failf("last honest termination at tick %d exceeds maxTicks %d", lastRel, e.MaxTicks)
	}
	if e.WithinDeadline && lastAbs > res.Deadline {
		failf("last honest termination at tick %d exceeds the derived deadline %d", lastAbs, res.Deadline)
	}
	if e.MaxHonestBytes > 0 && res.HonestBytes > e.MaxHonestBytes {
		failf("honest traffic %d bytes exceeds maxHonestBytes %d", res.HonestBytes, e.MaxHonestBytes)
	}
	if e.MaxHonestMessages > 0 && res.HonestMessages > e.MaxHonestMessages {
		failf("honest traffic %d messages exceeds maxHonestMessages %d", res.HonestMessages, e.MaxHonestMessages)
	}
	return fails
}
