// Package corpustest holds the corpus-scale PR 10 differential: every
// builtin scenario, both evaluator modes, every rung of the worker
// ladder. It lives in its own test-only package (exported scenario API
// only) so the minutes-long matrix gets a test-binary timeout budget of
// its own instead of crowding the scenario package's; the -short/-race
// slice of the same contract stays in scenario (TestWorkersBitIdenticalShort).
package corpustest

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/mpc"
	"repro/scenario"
)

// workerLadder is the PR 10 differential ladder: serial, a pool of
// one, the tracked pool of four and the measuring host's own CPU
// count, deduplicated (on a single-core CI runner NumCPU collapses
// into the workers=1 rung).
func workerLadder() []int {
	ladder := []int{1, 4}
	if cpus := runtime.NumCPU(); cpus != 1 && cpus != 4 {
		ladder = append(ladder, cpus)
	}
	return ladder
}

func runWorkers(art *scenario.RunArtifacts, perGate bool, workers int) (*mpc.Result, error) {
	cfg := art.Cfg
	cfg.PerGateEval = perGate
	cfg.Workers = workers
	return mpc.Run(cfg, art.Circuit, art.Inputs, art.Adversary)
}

// requireIdentical asserts the strongest differential contract in the
// suite: unlike the layered-vs-per-gate compare (which only checks
// computed values, since the two evaluators send different traffic by
// construction), a worker pool is not allowed to change ANY observable
// — traffic, ticks, event counts and per-family breakdowns included.
func requireIdentical(t *testing.T, label string, want, got *mpc.Result, wantErr, gotErr error) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: engine errors differ: serial %v, parallel %v", label, wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("%s: engine errors differ: serial %v, parallel %v", label, wantErr, gotErr)
		}
		return
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: results diverged from serial:\nserial:   %+v\nparallel: %+v", label, want, got)
	}
}

// TestCorpusWorkersBitIdentical replays the whole builtin scenario
// corpus — every builtin, both evaluator modes — across the worker
// ladder and requires the full mpc.Result bit-identical to the serial
// run: outputs, CS, per-party termination ticks, honest traffic,
// per-family breakdowns and event counts. Expected-failure scenarios
// must fail identically at every pool size.
func TestCorpusWorkersBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus workers replay is minutes of simulation; run without -short (scenario.TestWorkersBitIdenticalShort covers a slice)")
	}
	ladder := workerLadder()
	for _, m := range scenario.Builtin() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			art, err := scenario.Build(m)
			if err != nil {
				t.Fatal(err)
			}
			for _, perGate := range []bool{false, true} {
				base, baseErr := runWorkers(art, perGate, 0)
				for _, workers := range ladder {
					got, gotErr := runWorkers(art, perGate, workers)
					label := "layered"
					if perGate {
						label = "per-gate"
					}
					requireIdentical(t, fmt.Sprintf("%s/workers=%d", label, workers), base, got, baseErr, gotErr)
				}
			}
		})
	}
}
