package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// cheap returns a fast-to-run builtin for tests that need a real run.
func cheap(t *testing.T) *Manifest {
	t.Helper()
	m, err := Lookup("sync-boundary-n5")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidateErrors(t *testing.T) {
	valid := func() Manifest {
		return Manifest{
			Name:    "probe",
			Parties: Parties{N: 8, Ts: 2, Ta: 1},
			Network: NetworkSpec{Kind: "sync"},
			Circuit: CircuitSpec{Family: "sum"},
		}
	}
	cases := []struct {
		name string
		mut  func(*Manifest)
		want string
	}{
		{"empty name", func(m *Manifest) { m.Name = "" }, "name must not be empty"},
		{"bad name", func(m *Manifest) { m.Name = "Bad Name" }, "lowercase words"},
		{"bad thresholds", func(m *Manifest) { m.Parties.Ts = 3 }, "3*ts + ta < n"},
		{"missing network", func(m *Manifest) { m.Network.Kind = "" }, "network.kind is required"},
		{"bad network", func(m *Manifest) { m.Network.Kind = "carrier-pigeon" }, `"sync" or "async"`},
		{"tail on sync", func(m *Manifest) { m.Network.Tail = 0.5 }, "tail only applies to the async"},
		{"tail range", func(m *Manifest) { m.Network.Kind = "async"; m.Network.Tail = 1.5 }, "tail must be in [0, 1]"},
		{"unknown family", func(m *Manifest) { m.Circuit.Family = "fft" }, `unknown family "fft"`},
		{"dot odd n", func(m *Manifest) { m.Parties = Parties{N: 9, Ts: 2, Ta: 2}; m.Circuit.Family = "dot" }, "even party count"},
		{"matmul wrong n", func(m *Manifest) { m.Parties = Parties{N: 5, Ts: 1, Ta: 1}; m.Circuit.Family = "matmul" }, "exactly 8 parties"},
		{"depth without depth", func(m *Manifest) { m.Circuit.Family = "depth" }, "depth >= 1"},
		{"polyeval without coeffs", func(m *Manifest) { m.Circuit.Family = "polyeval" }, "at least 2 coefficients"},
		{"stray depth", func(m *Manifest) { m.Circuit.Depth = 2 }, "depth only applies"},
		{"inputs arity", func(m *Manifest) { m.Inputs = []uint64{1, 2} }, "need 0 (default 1..n) or exactly n = 8"},
		{"garble range", func(m *Manifest) { m.Adversary.Garble = []int{9} }, "party 9 out of range 1..8"},
		{"crash range", func(m *Manifest) { m.Adversary.CrashAt = map[int]int64{0: 5} }, "party 0 out of range"},
		{"crash tick", func(m *Manifest) { m.Adversary.CrashAt = map[int]int64{3: -1} }, "tick must be >= 0"},
		{"budget", func(m *Manifest) { m.Adversary.Garble = []int{1, 2, 3} }, "exceeding the budget max(ts, ta) = 2"},
		{"starveUntil alone", func(m *Manifest) { m.Adversary.StarveUntil = 100 }, "without adversary.starveFrom"},
		{"bad expect error", func(m *Manifest) { m.Expect.Error = "meltdown" }, `expect.error "meltdown"`},
		{"error plus success", func(m *Manifest) {
			m.Expect.Error = ErrNameDisagreement
			m.Expect.Consistent = true
		}, "cannot be combined with success assertions"},
		{"error needs limit", func(m *Manifest) { m.Expect.Error = ErrNameNoHonestOutput }, "requires an eventLimit"},
		{"minAgreement range", func(m *Manifest) { m.Expect.MinAgreement = 9 }, "minAgreement 9 out of range"},
		{"agreement order", func(m *Manifest) { m.Expect.MinAgreement = 5; m.Expect.MaxAgreement = 4 }, "exceeds expect.maxAgreement"},
		{"deadline on async", func(m *Manifest) {
			m.Network.Kind = "async"
			m.Expect.WithinDeadline = true
		}, "requires the sync network"},
	}
	for _, tc := range cases {
		m := valid()
		tc.mut(&m)
		err := m.Validate()
		if err == nil {
			t.Errorf("%s: expected an error mentioning %q, got nil", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	m := valid()
	if err := m.Validate(); err != nil {
		t.Fatalf("baseline manifest should validate, got %v", err)
	}
}

func TestRegistryCoverage(t *testing.T) {
	ms := Builtin()
	if len(ms) < 20 {
		t.Fatalf("registry has %d scenarios, want >= 20", len(ms))
	}
	families := map[string]bool{}
	networks := map[string]bool{}
	boundary, syncOnly, expectError, starved, garbled := 0, 0, 0, 0, 0
	for _, m := range ms {
		if err := m.Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", m.Name, err)
		}
		families[m.Circuit.Family] = true
		networks[m.Network.Kind] = true
		if m.Parties.AtBoundary() {
			boundary++
		}
		if m.SyncOnly {
			syncOnly++
		}
		if m.Expect.Error != "" {
			expectError++
		}
		if len(m.Adversary.StarveFrom) > 0 {
			starved++
		}
		if len(m.Adversary.Garble) > 0 {
			garbled++
		}
	}
	for _, fam := range Families() {
		if !families[fam] {
			t.Errorf("no builtin scenario covers circuit family %q", fam)
		}
	}
	for _, net := range []string{"sync", "async"} {
		if !networks[net] {
			t.Errorf("no builtin scenario covers the %s network", net)
		}
	}
	if boundary == 0 {
		t.Error("no threshold-boundary (3ts+ta=n-1) scenario")
	}
	if syncOnly < 2 {
		t.Errorf("want >= 2 SyncOnly ablation scenarios, have %d", syncOnly)
	}
	if expectError == 0 {
		t.Error("no scenario exercises an expected-failure assertion")
	}
	if starved == 0 || garbled == 0 {
		t.Errorf("adversary presets uncovered: starve=%d garble=%d", starved, garbled)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-scenario"); err == nil || !strings.Contains(err.Error(), "no builtin") {
		t.Fatalf("want a no-builtin error, got %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, m := range Builtin() {
		got, err := Load(m.JSON())
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s: JSON round trip changed the manifest:\n%s\nvs\n%s", m.Name, m.JSON(), got.JSON())
		}
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	data := bytes.Replace(cheap(t).JSON(), []byte(`"name"`), []byte(`"nmae"`), 1)
	if _, err := Load(data); err == nil || !strings.Contains(err.Error(), "nmae") {
		t.Fatalf("want an unknown-field error, got %v", err)
	}
}

func TestLoadFileExamples(t *testing.T) {
	for _, path := range []string{
		"../examples/scenarios/sync-garble.json",
		"../examples/scenarios/async-starvation.json",
	} {
		ms, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(ms) == 0 {
			t.Fatalf("%s: no manifests", path)
		}
	}
}

// TestRunDeterminism is the regression test for reproducibility: the
// same manifest run twice yields byte-identical reports (outputs,
// agreement set, virtual times, and the full metrics snapshot).
func TestRunDeterminism(t *testing.T) {
	m := cheap(t)
	a, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Pass {
		t.Fatalf("%s failed: %v", m.Name, a.Failures)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs of %s differ:\n%+v\nvs\n%+v", m.Name, a, b)
	}
}

func TestAssertionEngineFailures(t *testing.T) {
	m := *cheap(t)
	m.Expect = Expect{
		Outputs:        []uint64{999},
		MinAgreement:   5,
		MaxAgreement:   5,
		MaxTicks:       1,
		MaxHonestBytes: 1,
	}
	rep, err := Run(&m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("report should fail")
	}
	for _, want := range []string{"output[0]", "maxTicks 1", "maxHonestBytes 1"} {
		found := false
		for _, f := range rep.Failures {
			if strings.Contains(f, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no failure mentions %q in %v", want, rep.Failures)
		}
	}
}

func TestSweepMatchesSerial(t *testing.T) {
	names := []string{"sync-boundary-n5", "async-boundary-n5-garble", "sync-boundary-n5", "async-depth-chain"}
	var ms []*Manifest
	for _, name := range names {
		m, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	parallel := Sweep(ms, 4)
	serial := Sweep(ms, 1)
	for i := range ms {
		if parallel[i].Err != nil || serial[i].Err != nil {
			t.Fatalf("%s: %v / %v", ms[i].Name, parallel[i].Err, serial[i].Err)
		}
		if !reflect.DeepEqual(parallel[i].Report, serial[i].Report) {
			t.Errorf("%s: parallel and serial reports differ:\n%+v\nvs\n%+v",
				ms[i].Name, parallel[i].Report, serial[i].Report)
		}
		if !parallel[i].Report.Pass {
			t.Errorf("%s failed: %v", ms[i].Name, parallel[i].Report.Failures)
		}
	}
}

func TestExpandSeeds(t *testing.T) {
	m := cheap(t)
	out := ExpandSeeds(m, []uint64{3, 9})
	if len(out) != 2 {
		t.Fatalf("want 2 manifests, got %d", len(out))
	}
	if out[0].Name != "sync-boundary-n5-seed3" || out[0].Seed != 3 {
		t.Errorf("bad expansion: %q seed %d", out[0].Name, out[0].Seed)
	}
	if out[1].Expect.Outputs != nil {
		t.Error("seed expansion must drop the exact-output assertion")
	}
	if m.Expect.Outputs == nil {
		t.Error("expansion must not mutate the base manifest")
	}
	for _, c := range out {
		if err := c.Validate(); err != nil {
			t.Errorf("expanded manifest invalid: %v", err)
		}
	}
}

// TestFullCorpus runs every builtin scenario and requires all
// assertions to pass. Skipped in -short mode: it is the whole
// experiment matrix (also reachable as `make scenarios`).
func TestFullCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus is minutes of simulation; run without -short")
	}
	for _, r := range Sweep(Builtin(), 0) {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Manifest.Name, r.Err)
			continue
		}
		if !r.Report.Pass {
			t.Errorf("%s failed: %v", r.Manifest.Name, r.Report.Failures)
		}
	}
}
