package scenario

import (
	"testing"
)

// FuzzLoadManifest throws mutated JSON at the strict manifest loader:
// it must never panic, and anything it accepts must survive a
// marshal → reload round trip unchanged in meaning (same JSON) — the
// property the fuzzer's counterexample export path depends on.
func FuzzLoadManifest(f *testing.F) {
	for i, m := range Builtin() {
		if i%5 == 0 { // a spread of shapes without bloating the corpus
			f.Add(m.JSON())
		}
	}
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"name":"x","parties":{"n":5,"ts":1,"ta":1},"network":{"kind":"sync"},"circuit":{"family":"sum"},"seed":1,"expect":{}}`))
	f.Add([]byte(`{"name":"x","parties":{"n":5,"ts":1,"ta":1},"network":{"kind":"async","burstPeriod":100,"burstDown":30},"adversary":{"drop":{"2":"vss"},"delay":{"3":{"match":"mpc/out","extra":50}},"equivocate":[4]},"circuit":{"family":"random","layers":2,"width":3,"mulPct":40,"outs":1,"genSeed":7},"seed":1,"expect":{}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(data)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		re, err := Load(m.JSON())
		if err != nil {
			t.Fatalf("accepted manifest does not reload: %v\n%s", err, m.JSON())
		}
		if string(re.JSON()) != string(m.JSON()) {
			t.Fatalf("manifest changed across a marshal round trip:\n%s\nvs\n%s", m.JSON(), re.JSON())
		}
		// Parse (the non-validating replay path) must accept at least
		// everything Load accepts.
		if _, err := Parse(data); err != nil {
			t.Fatalf("Parse rejected what Load accepted: %v", err)
		}
	})
}
