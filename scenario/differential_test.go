package scenario

import (
	"reflect"
	"testing"

	"repro/mpc"
)

// TestCorpusLayeredMatchesPerGate replays the builtin scenario corpus
// through both online-phase evaluators — the layered batched default
// and the retained per-gate reference (mpc.Config.PerGateEval) — and
// requires identical engine errors, public outputs, agreement sets and
// per-party termination. Expected-failure scenarios (Expect.Error) are
// replayed too: both evaluators must fail identically.
//
// Per-party termination *times* and traffic are intentionally not
// compared: the two modes send different message counts, and every
// delivery delay draws from the run's single RNG stream, so schedules
// diverge by construction while the computed values may not.
func TestCorpusLayeredMatchesPerGate(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus differential replay is minutes of simulation; run without -short")
	}
	for _, m := range Builtin() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			art, err := Build(m)
			if err != nil {
				t.Fatal(err)
			}
			layCfg := art.Cfg
			refCfg := art.Cfg
			refCfg.PerGateEval = true
			lay, layErr := mpc.Run(layCfg, art.Circuit, art.Inputs, art.Adversary)
			ref, refErr := mpc.Run(refCfg, art.Circuit, art.Inputs, art.Adversary)
			if (layErr == nil) != (refErr == nil) {
				t.Fatalf("engine errors differ: layered %v, per-gate %v", layErr, refErr)
			}
			if layErr != nil {
				if layErr.Error() != refErr.Error() {
					t.Fatalf("engine errors differ: layered %v, per-gate %v", layErr, refErr)
				}
				return
			}
			if !reflect.DeepEqual(lay.Outputs, ref.Outputs) {
				t.Errorf("outputs differ: layered %v, per-gate %v", lay.Outputs, ref.Outputs)
			}
			if !reflect.DeepEqual(lay.CS, ref.CS) {
				t.Errorf("agreement sets differ: layered %v, per-gate %v", lay.CS, ref.CS)
			}
			for i := 1; i < len(lay.PerParty); i++ {
				if (lay.PerParty[i] == nil) != (ref.PerParty[i] == nil) {
					t.Errorf("party %d termination differs: layered %v, per-gate %v",
						i, lay.PerParty[i] != nil, ref.PerParty[i] != nil)
					continue
				}
				if lay.PerParty[i] != nil && !reflect.DeepEqual(lay.PerParty[i], ref.PerParty[i]) {
					t.Errorf("party %d outputs differ: layered %v, per-gate %v",
						i, lay.PerParty[i], ref.PerParty[i])
				}
			}
		})
	}
}
