package scenario

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/mpc"
)

// Workload checkpoint stream format (see docs/checkpointing.md): the
// same framing as an engine checkpoint — magic, big-endian version,
// payload length, JSON payload, trailing CRC-32 — with a distinct
// magic so the `scenario checkpoint` verb can tell the two apart, and
// with the engine's own checkpoint embedded verbatim in the payload.
//
//	bytes 0..5    magic "WLCKPT"
//	bytes 6..7    big-endian format version (WorkloadCheckpointVersion)
//	bytes 8..11   big-endian payload length
//	payload       one JSON document (WorkloadCheckpoint)
//	last 4 bytes  big-endian IEEE CRC-32 of the payload

// WorkloadCheckpointVersion is the workload checkpoint format version
// this build writes and the only version it reads.
const WorkloadCheckpointVersion = 1

var workloadMagic = [6]byte{'W', 'L', 'C', 'K', 'P', 'T'}

const maxWorkloadPayload = 1 << 30

// WorkloadCheckpoint is a resumable workload position: the manifest it
// was started from (canonical JSON, compared verbatim on resume), the
// run options that shape the engine, the per-step reports completed so
// far, and the embedded engine checkpoint. RunWorkloadOpts writes one
// after every completed step (atomically: tmp + rename), so a crash
// loses at most the step in flight.
type WorkloadCheckpoint struct {
	// Manifest is the canonical JSON of the workload manifest; resume
	// requires byte equality with the caller's manifest.
	Manifest json.RawMessage `json:"manifest"`
	// Compare and PerGateEval are the run options that change what the
	// remaining steps compute or report; resume must match them.
	Compare     bool `json:"compare"`
	PerGateEval bool `json:"perGateEval,omitempty"`
	// StepsDone counts completed steps; Report carries their reports
	// (summary fields unset — they are computed when the run finishes).
	StepsDone int             `json:"stepsDone"`
	Report    *WorkloadReport `json:"report"`
	// TotalTicks and OneShotTotal are the loop accumulators feeding the
	// final amortization summary.
	TotalTicks   int64  `json:"totalTicks"`
	OneShotTotal uint64 `json:"oneShotTotal"`
	// Engine is the embedded mpc engine checkpoint (Snapshot stream).
	Engine []byte `json:"engine"`
}

// Write frames the checkpoint onto w.
func (c *WorkloadCheckpoint) Write(w io.Writer) error {
	payload, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("scenario: workload checkpoint: %w", err)
	}
	var hdr [12]byte
	copy(hdr[:6], workloadMagic[:])
	binary.BigEndian.PutUint16(hdr[6:8], WorkloadCheckpointVersion)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	_, err = w.Write(sum[:])
	return err
}

// IsWorkloadCheckpoint sniffs the magic: true for a workload stream,
// false for anything else (including a bare engine checkpoint).
func IsWorkloadCheckpoint(data []byte) bool {
	return bytes.HasPrefix(data, workloadMagic[:])
}

// ReadWorkloadCheckpoint decodes one framed workload checkpoint. Its
// error taxonomy matches the engine codec's: corrupted or truncated
// streams match mpc.ErrBadCheckpoint, version skew matches
// mpc.ErrCheckpointVersion.
func ReadWorkloadCheckpoint(r io.Reader) (*WorkloadCheckpoint, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short workload header: %v", mpc.ErrBadCheckpoint, err)
	}
	if !bytes.Equal(hdr[:6], workloadMagic[:]) {
		return nil, fmt.Errorf("%w: bad workload magic %q", mpc.ErrBadCheckpoint, hdr[:6])
	}
	if v := binary.BigEndian.Uint16(hdr[6:8]); v != WorkloadCheckpointVersion {
		return nil, fmt.Errorf("%w: workload checkpoint is v%d, this build reads v%d", mpc.ErrCheckpointVersion, v, WorkloadCheckpointVersion)
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if n == 0 || n > maxWorkloadPayload {
		return nil, fmt.Errorf("%w: implausible workload payload length %d", mpc.ErrBadCheckpoint, n)
	}
	buf := make([]byte, int(n)+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: short workload payload: %v", mpc.ErrBadCheckpoint, err)
	}
	payload, sum := buf[:n], binary.BigEndian.Uint32(buf[n:])
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: workload payload checksum %08x, trailer says %08x", mpc.ErrBadCheckpoint, got, sum)
	}
	c := &WorkloadCheckpoint{}
	if err := json.Unmarshal(payload, c); err != nil {
		return nil, fmt.Errorf("%w: workload payload: %v", mpc.ErrBadCheckpoint, err)
	}
	if c.StepsDone < 0 || c.Report == nil || len(c.Report.Steps) != c.StepsDone {
		return nil, fmt.Errorf("%w: workload checkpoint records %d completed steps but carries %d step reports",
			mpc.ErrBadCheckpoint, c.StepsDone, stepReportCount(c.Report))
	}
	return c, nil
}

func stepReportCount(rep *WorkloadReport) int {
	if rep == nil {
		return 0
	}
	return len(rep.Steps)
}

// LoadWorkloadCheckpoint reads a checkpoint file written by
// RunWorkloadOpts.
func LoadWorkloadCheckpoint(path string) (*WorkloadCheckpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadWorkloadCheckpoint(f)
}

// matches verifies a resume request against the checkpoint: the same
// manifest (byte-identical canonical JSON) and the same run options.
// Mismatches are typed (mpc.ErrCheckpointConfig): resuming a workload
// under different parameters would silently diverge from the run the
// checkpoint belongs to.
func (c *WorkloadCheckpoint) matches(m *Manifest, opt WorkloadRunOptions) error {
	// The embedded manifest is re-parsed and re-rendered before the
	// comparison: JSON framing normalizes whitespace, so raw bytes
	// would differ even for an identical manifest.
	cm, err := Parse(c.Manifest)
	if err != nil {
		return fmt.Errorf("%w: embedded manifest: %v", mpc.ErrBadCheckpoint, err)
	}
	if !bytes.Equal(cm.JSON(), m.JSON()) {
		return fmt.Errorf("%w: checkpoint was written from workload %q, not %q", mpc.ErrCheckpointConfig, cm.Name, m.Name)
	}
	if c.Compare != opt.Compare {
		return fmt.Errorf("%w: checkpoint recorded compare=%v, resume requested compare=%v (the comparison feeds the report)",
			mpc.ErrCheckpointConfig, c.Compare, opt.Compare)
	}
	if c.PerGateEval != opt.PerGateEval {
		return fmt.Errorf("%w: checkpoint recorded perGateEval=%v, resume requested perGateEval=%v",
			mpc.ErrCheckpointConfig, c.PerGateEval, opt.PerGateEval)
	}
	return nil
}

// writeWorkloadCheckpoint snapshots the engine and atomically replaces
// path with the new checkpoint (write to tmp, fsync-free rename): a
// crash mid-write leaves the previous step's checkpoint intact.
func writeWorkloadCheckpoint(path string, m *Manifest, opt WorkloadRunOptions, done int,
	rep *WorkloadReport, totalTicks int64, oneShotTotal uint64, eng *mpc.Engine) error {
	var ebuf bytes.Buffer
	if err := eng.Snapshot(&ebuf); err != nil {
		return err
	}
	ck := &WorkloadCheckpoint{
		Manifest:     json.RawMessage(m.JSON()),
		Compare:      opt.Compare,
		PerGateEval:  opt.PerGateEval,
		StepsDone:    done,
		Report:       rep,
		TotalTicks:   totalTicks,
		OneShotTotal: oneShotTotal,
		Engine:       ebuf.Bytes(),
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := ck.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// WorkloadCheckpointInfo is the `scenario checkpoint` verb's summary of
// a workload checkpoint: the workload position plus the embedded engine
// checkpoint's summary.
type WorkloadCheckpointInfo struct {
	Name        string              `json:"name"`
	StepsDone   int                 `json:"stepsDone"`
	StepsTotal  int                 `json:"stepsTotal"`
	Compare     bool                `json:"compare"`
	PerGateEval bool                `json:"perGateEval,omitempty"`
	Engine      *mpc.CheckpointInfo `json:"engine"`
}

// Inspect summarizes the checkpoint without rebuilding an engine.
func (c *WorkloadCheckpoint) Inspect() (*WorkloadCheckpointInfo, error) {
	m, err := Parse(c.Manifest)
	if err != nil {
		return nil, fmt.Errorf("%w: embedded manifest: %v", mpc.ErrBadCheckpoint, err)
	}
	ei, err := mpc.InspectCheckpoint(bytes.NewReader(c.Engine))
	if err != nil {
		return nil, err
	}
	info := &WorkloadCheckpointInfo{
		Name:        m.Name,
		StepsDone:   c.StepsDone,
		Compare:     c.Compare,
		PerGateEval: c.PerGateEval,
		Engine:      ei,
	}
	if m.Workload != nil {
		info.StepsTotal = len(m.Workload.Steps)
	}
	return info, nil
}
