package scenario

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/transport"
	"repro/mpc"
)

// A PartySet is a deployment manifest: the declarative description of a
// party fleet — how many parties at which resilience thresholds, which
// transport backend carries their traffic, where each party listens,
// and which builtin scenario or workload the fleet executes. It is the
// deployment-plane counterpart of the protocol-plane Manifest: the
// Manifest says WHAT the parties compute, the PartySet says HOW they
// are wired together. Reify resolves a validated set into a fully
// concrete Deployment before anything launches (docs/deployment.md).
type PartySet struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Parties must equal the referenced manifest's parties: a party set
	// cannot silently re-shape the protocol it deploys.
	Parties Parties `json:"parties"`
	// Transport selects the real message-plane backend.
	Transport DeployTransport `json:"transport"`
	// Endpoints optionally pin one listen address per party; empty
	// auto-assigns (unix paths in a temp dir, TCP loopback ":0").
	Endpoints []EndpointSpec `json:"endpoints,omitempty"`
	// Exactly one of Scenario/Workload names the builtin to execute.
	Scenario string `json:"scenario,omitempty"`
	Workload string `json:"workload,omitempty"`
	// Checkpoint optionally resumes the workload from a checkpoint file
	// written by `scenario workload -checkpoint` (workload sets only).
	Checkpoint string `json:"checkpoint,omitempty"`
}

// DeployTransport is the party set's backend selection.
type DeployTransport struct {
	// Kind is "unix" or "tcp" — a deployment is by definition over a
	// real backend; the simulator is reached through the deploy verb's
	// -backend override, as the differential reference.
	Kind string `json:"kind"`
	// Dir, with kind "unix" and no pinned endpoints, is the directory
	// for auto-assigned socket paths (empty = fresh temp dir).
	Dir string `json:"dir,omitempty"`
	// IOTimeoutMs bounds every socket write and frame wait in
	// milliseconds (0 = the backend default).
	IOTimeoutMs int `json:"ioTimeoutMs,omitempty"`
}

// EndpointSpec pins one party's listen address.
type EndpointSpec struct {
	Party int    `json:"party"`
	Addr  string `json:"addr"`
}

// ErrPartySet is the sentinel every party-set validation error wraps:
// errors.Is(err, ErrPartySet) catches them all, errors.As with a
// *PartySetError recovers the offending field.
var ErrPartySet = errors.New("scenario: invalid party set")

// PartySetError is a typed party-set validation failure.
type PartySetError struct {
	// Set is the party set's name ("" when the name itself is bad).
	Set string
	// Field is the JSON path of the offending field.
	Field string
	// Msg says what is wrong with it.
	Msg string
}

func (e *PartySetError) Error() string {
	return fmt.Sprintf("party set %q: %s: %s", e.Set, e.Field, e.Msg)
}

func (e *PartySetError) Unwrap() error { return ErrPartySet }

func (s *PartySet) bad(field, format string, args ...any) error {
	return &PartySetError{Set: s.Name, Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Validate checks the party set and returns the first problem found as
// a *PartySetError (wrapping ErrPartySet).
func (s *PartySet) Validate() error {
	if !nameRE.MatchString(s.Name) {
		return s.bad("name", "must be lowercase words separated by dashes, have %q", s.Name)
	}
	p := s.Parties
	if p.N < 4 {
		return s.bad("parties.n", "need at least 4 parties, have %d", p.N)
	}
	if p.Ts < 1 {
		return s.bad("parties.ts", "must be >= 1, have %d", p.Ts)
	}
	if p.Ta < 0 || p.Ta > p.Ts {
		return s.bad("parties.ta", "must satisfy 0 <= ta <= ts = %d, have %d", p.Ts, p.Ta)
	}
	if 3*p.Ts+p.Ta >= p.N {
		return s.bad("parties", "thresholds infeasible: 3·ts+ta = %d must be below n = %d", 3*p.Ts+p.Ta, p.N)
	}
	switch s.Transport.Kind {
	case "unix", "tcp":
	default:
		return s.bad("transport.kind", `must be "unix" or "tcp", have %q`, s.Transport.Kind)
	}
	if s.Transport.Dir != "" && s.Transport.Kind != "unix" {
		return s.bad("transport.dir", `only applies to kind "unix"`)
	}
	if s.Transport.IOTimeoutMs < 0 {
		return s.bad("transport.ioTimeoutMs", "must be >= 0, have %d", s.Transport.IOTimeoutMs)
	}
	if len(s.Endpoints) != 0 && len(s.Endpoints) != p.N {
		return s.bad("endpoints", "have %d, need 0 (auto-assign) or exactly n = %d", len(s.Endpoints), p.N)
	}
	seenParty := make(map[int]bool, len(s.Endpoints))
	seenAddr := make(map[string]bool, len(s.Endpoints))
	for i, ep := range s.Endpoints {
		field := fmt.Sprintf("endpoints[%d]", i)
		if ep.Party < 1 || ep.Party > p.N {
			return s.bad(field+".party", "out of range 1..%d, have %d", p.N, ep.Party)
		}
		if seenParty[ep.Party] {
			return s.bad(field+".party", "duplicate endpoint for party %d", ep.Party)
		}
		seenParty[ep.Party] = true
		if ep.Addr == "" {
			return s.bad(field+".addr", "must not be empty")
		}
		if seenAddr[ep.Addr] {
			return s.bad(field+".addr", "duplicate address %q", ep.Addr)
		}
		seenAddr[ep.Addr] = true
	}
	switch {
	case s.Scenario == "" && s.Workload == "":
		return s.bad("scenario", "a party set executes exactly one builtin: set scenario or workload")
	case s.Scenario != "" && s.Workload != "":
		return s.bad("scenario", "scenario and workload are mutually exclusive")
	}
	if s.Checkpoint != "" && s.Workload == "" {
		return s.bad("checkpoint", "a checkpoint resume needs a workload reference")
	}
	m, err := s.manifest()
	if err != nil {
		return err
	}
	if m.Parties != p {
		return s.bad("parties", "referenced builtin %q runs n=%d ts=%d ta=%d, the set declares n=%d ts=%d ta=%d",
			m.Name, m.Parties.N, m.Parties.Ts, m.Parties.Ta, p.N, p.Ts, p.Ta)
	}
	return nil
}

// manifest resolves the referenced builtin.
func (s *PartySet) manifest() (*Manifest, error) {
	if s.Workload != "" {
		m, err := LookupWorkload(s.Workload)
		if err != nil {
			return nil, s.bad("workload", "%v", err)
		}
		return m, nil
	}
	m, err := Lookup(s.Scenario)
	if err != nil {
		return nil, s.bad("scenario", "%v", err)
	}
	return m, nil
}

// ParsePartySet decodes and validates one JSON party-set document.
// Unknown fields and trailing garbage are rejected.
func ParsePartySet(data []byte) (*PartySet, error) {
	s := &PartySet{}
	if err := unmarshalStrict(data, s); err != nil {
		return nil, fmt.Errorf("scenario: party set: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadPartySetFile reads and validates a party-set manifest file.
func LoadPartySetFile(path string) (*PartySet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParsePartySet(data)
}

// A Deployment is a fully reified party set: every launch decision —
// the manifest to execute, the concrete transport spec, the loaded
// resume checkpoint — resolved and validated before anything starts.
type Deployment struct {
	Set      *PartySet
	Manifest *Manifest
	// Spec is the resolved transport (nil = the in-memory simulator,
	// reachable via UseBackend — the differential reference).
	Spec *mpc.TransportSpec
	// Resume is the loaded workload checkpoint (nil = start fresh).
	Resume *WorkloadCheckpoint
}

// Reify validates the party set and resolves it into a Deployment:
// builtin lookup, address table, transport spec, checkpoint load. After
// Reify nothing about the launch is implicit.
func (s *PartySet) Reify() (*Deployment, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m, err := s.manifest()
	if err != nil {
		return nil, err
	}
	spec := &mpc.TransportSpec{
		Kind:      s.Transport.Kind,
		Dir:       s.Transport.Dir,
		IOTimeout: time.Duration(s.Transport.IOTimeoutMs) * time.Millisecond,
	}
	if len(s.Endpoints) > 0 {
		addrs := make([]string, s.Parties.N)
		for _, ep := range s.Endpoints {
			addrs[ep.Party-1] = ep.Addr
		}
		spec.Addrs = addrs
	}
	d := &Deployment{Set: s, Manifest: m, Spec: spec}
	if s.Checkpoint != "" {
		ck, err := LoadWorkloadCheckpoint(s.Checkpoint)
		if err != nil {
			return nil, fmt.Errorf("party set %q: checkpoint %s: %w", s.Name, s.Checkpoint, err)
		}
		d.Resume = ck
	}
	return d, nil
}

// Backend names the deployment's effective backend.
func (d *Deployment) Backend() string {
	if d.Spec == nil || d.Spec.Kind == "" || d.Spec.Kind == "sim" {
		return "sim"
	}
	return d.Spec.Kind
}

// UseBackend overrides the reified backend: "sim" swaps in the
// in-memory simulator (the deploy-smoke differential reference),
// "unix"/"tcp" swap the socket flavour with auto-assigned addresses,
// "" keeps the manifest's choice.
func (d *Deployment) UseBackend(kind string) error {
	switch kind {
	case "":
		return nil
	case "sim":
		d.Spec = nil
	case "unix", "tcp":
		var timeout time.Duration
		if d.Spec != nil {
			timeout = d.Spec.IOTimeout
		}
		d.Spec = &mpc.TransportSpec{Kind: kind, IOTimeout: timeout}
	default:
		return fmt.Errorf("scenario: unknown backend override %q (want sim, unix or tcp)", kind)
	}
	return nil
}

// DeployReport is the outcome of one Deployment execution. The inner
// Scenario/Workload report is backend-invariant (the differential
// guarantee); WallMs and Wire are the backend-specific physics.
type DeployReport struct {
	Name    string `json:"name"`
	Backend string `json:"backend"`
	Pass    bool   `json:"pass"`
	// WallMs is real elapsed time — the only non-deterministic field.
	WallMs float64 `json:"wallMs"`
	// Wire is the physical frame/byte accounting (zeros on sim).
	Wire transport.WireStats `json:"wire"`
	// Exactly one of Scenario/Workload carries the protocol outcome.
	Scenario *Report         `json:"scenario,omitempty"`
	Workload *WorkloadReport `json:"workload,omitempty"`
}

// Inner returns the backend-invariant part of the report: bit-identical
// JSON across sim/unix/tcp on the same seed, the `cmp` unit of
// `make deploy-smoke`.
func (r *DeployReport) Inner() any {
	if r.Workload != nil {
		return r.Workload
	}
	return r.Scenario
}

// Execute runs the deployment to completion: the referenced scenario or
// workload over the reified backend.
func (d *Deployment) Execute() (*DeployReport, error) {
	rep := &DeployReport{Name: d.Set.Name, Backend: d.Backend()}
	start := time.Now()
	var wire transport.WireStats
	if d.Manifest.Workload != nil {
		opt := WorkloadRunOptions{Transport: d.Spec, Wire: &wire}
		if d.Resume != nil {
			// A resume must match the options recorded in the checkpoint;
			// adopt them (the transport is free — it is not part of the
			// checkpoint identity).
			opt.Resume = d.Resume
			opt.Compare = d.Resume.Compare
			opt.PerGateEval = d.Resume.PerGateEval
		}
		wrep, err := RunWorkloadOpts(d.Manifest, opt)
		if err != nil {
			return nil, err
		}
		rep.Workload = wrep
		rep.Pass = wrep.Pass
	} else {
		srep, err := RunWith(d.Manifest, RunOptions{Transport: d.Spec, Wire: &wire})
		if err != nil {
			return nil, err
		}
		rep.Scenario = srep
		rep.Pass = srep.Pass
	}
	rep.WallMs = float64(time.Since(start).Microseconds()) / 1000
	rep.Wire = wire
	return rep, nil
}

// ServeReport summarizes a Serve session.
type ServeReport struct {
	Name    string `json:"name"`
	Backend string `json:"backend"`
	// Addrs are the resolved listen addresses (index i-1 for party i).
	Addrs    []string            `json:"addrs,omitempty"`
	Rounds   int                 `json:"rounds"`
	Evals    int                 `json:"evals"`
	Failures int                 `json:"failures"`
	WallMs   float64             `json:"wallMs"`
	Wire     transport.WireStats `json:"wire"`
}

// Serve runs the deployment as a long-lived serving session: one
// engine (optionally restored from the set's checkpoint) preprocesses
// once and serves the workload's steps `rounds` times over, printing a
// row per evaluation to w. It requires a workload reference — serving
// is what the session engine exists for.
func (d *Deployment) Serve(w io.Writer, rounds int) (*ServeReport, error) {
	if d.Manifest.Workload == nil {
		return nil, fmt.Errorf("party set %q: serve needs a workload reference (one-shot scenarios deploy with Execute)", d.Set.Name)
	}
	if rounds < 1 {
		rounds = 1
	}
	if w == nil {
		w = io.Discard
	}
	m := d.Manifest
	cfg, adv := m.engineConfig()
	eopts := mpc.EngineOptions{Adversary: adv, Transport: d.Spec}
	var eng *mpc.Engine
	var err error
	if d.Resume != nil {
		eng, err = mpc.RestoreEngineOpts(cfg, eopts, bytes.NewReader(d.Resume.Engine))
	} else {
		eng, err = mpc.NewEngineOpts(cfg, eopts)
	}
	if err != nil {
		return nil, fmt.Errorf("party set %q: %w", d.Set.Name, err)
	}
	defer eng.Close()

	rep := &ServeReport{Name: d.Set.Name, Backend: d.Backend(), Rounds: rounds, Addrs: eng.TransportAddrs()}
	fmt.Fprintf(w, "serving %s (%s) over %s: n=%d ts=%d ta=%d, %d step(s) x %d round(s)\n",
		d.Set.Name, m.Name, rep.Backend, cfg.N, cfg.Ts, cfg.Ta, len(m.Workload.Steps), rounds)
	for i, addr := range rep.Addrs {
		fmt.Fprintf(w, "  party %d listens on %s\n", i+1, addr)
	}

	type servedStep struct {
		circ   *RunArtifacts
		label  string
		expect Expect
	}
	steps := make([]servedStep, len(m.Workload.Steps))
	budget := 0
	for i, s := range m.Workload.Steps {
		circ, err := s.Circuit.Build(m.Parties.N)
		if err != nil {
			return nil, fmt.Errorf("party set %q: step %d circuit: %w", d.Set.Name, i, err)
		}
		steps[i] = servedStep{
			circ: &RunArtifacts{
				Cfg: cfg, Circuit: circ,
				Inputs:    buildInputs(s.Inputs, m.Parties.N),
				Adversary: adv,
			},
			label:  s.Circuit.String(),
			expect: s.Expect,
		}
		budget += circ.MulCount
	}
	if d.Resume == nil {
		fill := budget * rounds
		if fill < 1 {
			fill = 1
		}
		if _, err := eng.Preprocess(fill); err != nil {
			return nil, fmt.Errorf("party set %q: preprocess: %w", d.Set.Name, err)
		}
	}

	start := time.Now()
	for r := 0; r < rounds; r++ {
		for i, s := range steps {
			res, runErr := eng.Evaluate(s.circ.Circuit, s.circ.Inputs)
			if runErr != nil && isExhausted(runErr) {
				if _, ferr := eng.Preprocess(max(1, s.circ.Circuit.MulCount)); ferr == nil {
					res, runErr = eng.Evaluate(s.circ.Circuit, s.circ.Inputs)
				}
			}
			if runErr != nil && errors.Is(runErr, mpc.ErrTransport) {
				return nil, fmt.Errorf("party set %q: round %d step %d: %w", d.Set.Name, r+1, i, runErr)
			}
			rep.Evals++
			var lastAbs, lastRel int64
			if res != nil {
				corrupt := map[int]bool{}
				for _, p := range m.Adversary.Corrupt() {
					corrupt[p] = true
				}
				for idx, t := range res.TerminatedAt {
					if !corrupt[idx] && t > lastAbs {
						lastAbs = t
					}
				}
				if lastAbs > 0 {
					lastRel = lastAbs - res.StartedAt
				}
			}
			fails := assertExpect(s.expect, m.Adversary, s.circ, res, runErr, lastAbs, lastRel)
			ok := len(fails) == 0
			if !ok {
				rep.Failures++
			}
			var msgs uint64
			var cs int
			if res != nil {
				msgs = res.HonestMessages
				cs = len(res.CS)
			}
			fmt.Fprintf(w, "  round %d step %d %-14s t=%-6d %8d msgs |CS|=%d ok=%v\n",
				r+1, i, s.label, lastRel, msgs, cs, ok)
			for _, f := range fails {
				fmt.Fprintf(w, "      assertion failed: %s\n", f)
			}
		}
	}
	rep.WallMs = float64(time.Since(start).Microseconds()) / 1000
	rep.Wire = eng.WireStats()
	fmt.Fprintf(w, "served %d evaluation(s), %d failure(s), %.1f ms, %d wire bytes\n",
		rep.Evals, rep.Failures, rep.WallMs, rep.Wire.BytesOut)
	return rep, nil
}

// builtinPartySets is the registry of named built-in deployments.
var builtinPartySets = map[string]*PartySet{}

// registerPartySet adds s to the registry. Unlike the scenario and
// workload registries it cannot fully validate at init time — a party
// set references builtins whose own init may not have run yet — so
// full validation happens at Reify (and in TestBuiltinPartySetsValid).
func registerPartySet(s *PartySet) {
	if _, dup := builtinPartySets[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate builtin party set %q", s.Name))
	}
	builtinPartySets[s.Name] = s
}

// PartySetNames returns the sorted names of the built-in party sets.
func PartySetNames() []string {
	out := make([]string, 0, len(builtinPartySets))
	for name := range builtinPartySets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BuiltinPartySets returns the built-in party sets sorted by name.
func BuiltinPartySets() []*PartySet {
	out := make([]*PartySet, 0, len(builtinPartySets))
	for _, name := range PartySetNames() {
		out = append(out, builtinPartySets[name])
	}
	return out
}

// LookupPartySet returns the built-in party set with the given name.
func LookupPartySet(name string) (*PartySet, error) {
	s, ok := builtinPartySets[name]
	if !ok {
		return nil, fmt.Errorf("scenario: no builtin party set named %q (see PartySetNames)", name)
	}
	return s, nil
}

func init() {
	// deploy-unix-n5 is the deploy-smoke set: small, fast, and its
	// scenario pins exact outputs — the cmp against a -backend sim run
	// of the same set is the end-to-end differential gate.
	registerPartySet(&PartySet{
		Name:        "deploy-unix-n5",
		Description: "boundary n=5 one-shot sum over unix sockets (the deploy-smoke set)",
		Parties:     boundaryN5,
		Transport:   DeployTransport{Kind: "unix"},
		Scenario:    "sync-boundary-n5",
	})
	registerPartySet(&PartySet{
		Name:        "deploy-tcp-n8",
		Description: "flagship n=8 one-shot sum over TCP loopback",
		Parties:     flagship,
		Transport:   DeployTransport{Kind: "tcp"},
		Scenario:    "sync-sum-honest",
	})
	registerPartySet(&PartySet{
		Name:        "deploy-unix-n5-workload",
		Description: "the 8-evaluation amortization workload served over unix sockets",
		Parties:     boundaryN5,
		Transport:   DeployTransport{Kind: "unix"},
		Workload:    "workload-amortize-sync",
	})
}
