package scenario

import (
	"fmt"

	"repro/circuit"
	"repro/field"
)

// CircuitSpec names a workload from the circuit gadget catalogue, or —
// family "random" — a generated circuit that is a pure function of its
// generator parameters, so fuzz counterexamples replay from a handful
// of integers instead of a serialized gate list.
type CircuitSpec struct {
	// Family is one of Families: "sum", "product", "dot", "stats",
	// "membership", "polyeval", "matmul", "depth", "random".
	Family string `json:"family"`
	// Depth is the multiplicative depth for the "depth" family.
	Depth int `json:"depth,omitempty"`
	// Coeffs are the ascending public coefficients for "polyeval".
	Coeffs []uint64 `json:"coeffs,omitempty"`
	// Layers/Width/MulPct/Outs/GenSeed parameterise the "random"
	// family (see circuit.RandSpec and circuit.Random).
	Layers  int    `json:"layers,omitempty"`
	Width   int    `json:"width,omitempty"`
	MulPct  int    `json:"mulPct,omitempty"`
	Outs    int    `json:"outs,omitempty"`
	GenSeed uint64 `json:"genSeed,omitempty"`
}

// Families lists the supported circuit families in display order.
func Families() []string {
	return []string{"sum", "product", "dot", "stats", "membership", "polyeval", "matmul", "depth", "random"}
}

// check validates the spec against an n-party run without building.
func (c CircuitSpec) check(n int) error {
	switch c.Family {
	case "sum", "product", "stats", "membership":
	case "dot":
		if n%2 != 0 {
			return fmt.Errorf("family %q needs an even party count, have n = %d", c.Family, n)
		}
	case "matmul":
		if n != 8 {
			return fmt.Errorf("family %q needs exactly 8 parties (two 2x2 matrices), have n = %d", c.Family, n)
		}
	case "polyeval":
		if len(c.Coeffs) < 2 {
			return fmt.Errorf("family %q needs at least 2 coefficients, have %d", c.Family, len(c.Coeffs))
		}
	case "depth":
		if c.Depth < 1 {
			return fmt.Errorf("family %q needs depth >= 1, have %d", c.Family, c.Depth)
		}
	case "random":
		if c.Layers < 1 || c.Layers > 16 {
			return fmt.Errorf("family %q needs layers in 1..16, have %d", c.Family, c.Layers)
		}
		if c.Width < 1 || c.Width > 64 {
			return fmt.Errorf("family %q needs width in 1..64, have %d", c.Family, c.Width)
		}
		if c.MulPct < 0 || c.MulPct > 100 {
			return fmt.Errorf("family %q needs mulPct in 0..100, have %d", c.Family, c.MulPct)
		}
		if c.Outs < 1 || c.Outs > 16 {
			return fmt.Errorf("family %q needs outs in 1..16, have %d", c.Family, c.Outs)
		}
	case "":
		return fmt.Errorf("family is required (one of %v)", Families())
	default:
		return fmt.Errorf("unknown family %q (one of %v)", c.Family, Families())
	}
	if c.Depth != 0 && c.Family != "depth" {
		return fmt.Errorf("depth only applies to family %q", "depth")
	}
	if len(c.Coeffs) != 0 && c.Family != "polyeval" {
		return fmt.Errorf("coeffs only apply to family %q", "polyeval")
	}
	if c.Family != "random" && (c.Layers != 0 || c.Width != 0 || c.MulPct != 0 || c.Outs != 0 || c.GenSeed != 0) {
		return fmt.Errorf("layers/width/mulPct/outs/genSeed only apply to family %q", "random")
	}
	return nil
}

// Build constructs the circuit for an n-party run.
func (c CircuitSpec) Build(n int) (*circuit.Circuit, error) {
	if err := c.check(n); err != nil {
		return nil, err
	}
	switch c.Family {
	case "sum":
		return circuit.Sum(n), nil
	case "product":
		return circuit.Product(n), nil
	case "dot":
		return circuit.DotProduct(n / 2), nil
	case "stats":
		return circuit.SumAndVariancePieces(n), nil
	case "membership":
		return circuit.SetMembership(n), nil
	case "polyeval":
		coeffs := make([]field.Element, len(c.Coeffs))
		for i, v := range c.Coeffs {
			coeffs[i] = field.New(v)
		}
		return circuit.PolyEval(n, coeffs), nil
	case "matmul":
		return circuit.MatMul2x2(), nil
	case "depth":
		return circuit.DepthChain(n, c.Depth), nil
	case "random":
		return circuit.Random(n, circuit.RandSpec{
			Layers: c.Layers, Width: c.Width, MulPct: c.MulPct, Outs: c.Outs,
		}, c.GenSeed), nil
	}
	panic("unreachable: check covers all families")
}

// String renders the spec compactly, e.g. "depth(4)", "polyeval[3]" or
// "random(3x4,40%)".
func (c CircuitSpec) String() string {
	switch c.Family {
	case "depth":
		return fmt.Sprintf("depth(%d)", c.Depth)
	case "polyeval":
		return fmt.Sprintf("polyeval[%d]", len(c.Coeffs))
	case "random":
		return fmt.Sprintf("random(%dx%d,%d%%)", c.Layers, c.Width, c.MulPct)
	default:
		return c.Family
	}
}
