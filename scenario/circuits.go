package scenario

import (
	"fmt"

	"repro/circuit"
	"repro/field"
)

// CircuitSpec names a workload from the circuit gadget catalogue.
type CircuitSpec struct {
	// Family is one of Families: "sum", "product", "dot", "stats",
	// "membership", "polyeval", "matmul", "depth".
	Family string `json:"family"`
	// Depth is the multiplicative depth for the "depth" family.
	Depth int `json:"depth,omitempty"`
	// Coeffs are the ascending public coefficients for "polyeval".
	Coeffs []uint64 `json:"coeffs,omitempty"`
}

// Families lists the supported circuit families in display order.
func Families() []string {
	return []string{"sum", "product", "dot", "stats", "membership", "polyeval", "matmul", "depth"}
}

// check validates the spec against an n-party run without building.
func (c CircuitSpec) check(n int) error {
	switch c.Family {
	case "sum", "product", "stats", "membership":
	case "dot":
		if n%2 != 0 {
			return fmt.Errorf("family %q needs an even party count, have n = %d", c.Family, n)
		}
	case "matmul":
		if n != 8 {
			return fmt.Errorf("family %q needs exactly 8 parties (two 2x2 matrices), have n = %d", c.Family, n)
		}
	case "polyeval":
		if len(c.Coeffs) < 2 {
			return fmt.Errorf("family %q needs at least 2 coefficients, have %d", c.Family, len(c.Coeffs))
		}
	case "depth":
		if c.Depth < 1 {
			return fmt.Errorf("family %q needs depth >= 1, have %d", c.Family, c.Depth)
		}
	case "":
		return fmt.Errorf("family is required (one of %v)", Families())
	default:
		return fmt.Errorf("unknown family %q (one of %v)", c.Family, Families())
	}
	if c.Depth != 0 && c.Family != "depth" {
		return fmt.Errorf("depth only applies to family %q", "depth")
	}
	if len(c.Coeffs) != 0 && c.Family != "polyeval" {
		return fmt.Errorf("coeffs only apply to family %q", "polyeval")
	}
	return nil
}

// Build constructs the circuit for an n-party run.
func (c CircuitSpec) Build(n int) (*circuit.Circuit, error) {
	if err := c.check(n); err != nil {
		return nil, err
	}
	switch c.Family {
	case "sum":
		return circuit.Sum(n), nil
	case "product":
		return circuit.Product(n), nil
	case "dot":
		return circuit.DotProduct(n / 2), nil
	case "stats":
		return circuit.SumAndVariancePieces(n), nil
	case "membership":
		return circuit.SetMembership(n), nil
	case "polyeval":
		coeffs := make([]field.Element, len(c.Coeffs))
		for i, v := range c.Coeffs {
			coeffs[i] = field.New(v)
		}
		return circuit.PolyEval(n, coeffs), nil
	case "matmul":
		return circuit.MatMul2x2(), nil
	case "depth":
		return circuit.DepthChain(n, c.Depth), nil
	}
	panic("unreachable: check covers all families")
}

// String renders the spec compactly, e.g. "depth(4)" or "polyeval[3]".
func (c CircuitSpec) String() string {
	switch c.Family {
	case "depth":
		return fmt.Sprintf("depth(%d)", c.Depth)
	case "polyeval":
		return fmt.Sprintf("polyeval[%d]", len(c.Coeffs))
	default:
		return c.Family
	}
}
