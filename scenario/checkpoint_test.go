package scenario

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/mpc"
)

// TestWorkloadKillResumeDifferential is the PR's acceptance property:
// for every builtin workload, under both evaluator modes, killing the
// run after every possible step k and resuming from the checkpoint
// yields a final report bit-identical to the run that never stopped —
// outputs, CS sets, per-family traffic, ticks, pool accounting and the
// amortization summary. -short trims the kill points to the middle
// step; the full matrix runs in CI.
func TestWorkloadKillResumeDifferential(t *testing.T) {
	for _, m := range BuiltinWorkloads() {
		if m.Workload.Pipeline > 0 {
			// Pipelined workloads refuse per-step checkpointing by
			// contract (TestWorkloadPipelineCheckpointIncompatible).
			continue
		}
		for _, perGate := range []bool{false, true} {
			m, perGate := m, perGate
			t.Run(fmt.Sprintf("%s/perGate=%v", m.Name, perGate), func(t *testing.T) {
				t.Parallel()
				full, err := RunWorkloadOpts(m, WorkloadRunOptions{PerGateEval: perGate})
				if err != nil {
					t.Fatal(err)
				}
				steps := len(m.Workload.Steps)
				kills := make([]int, 0, steps-1)
				if testing.Short() {
					kills = append(kills, steps/2)
				} else {
					for k := 1; k < steps; k++ {
						kills = append(kills, k)
					}
				}
				for _, k := range kills {
					k := k
					t.Run(fmt.Sprintf("kill=%d", k), func(t *testing.T) {
						t.Parallel()
						ckPath := filepath.Join(t.TempDir(), "wl.ckpt")
						partial, err := RunWorkloadOpts(m, WorkloadRunOptions{
							PerGateEval:    perGate,
							CheckpointPath: ckPath,
							StopAfter:      k,
						})
						if err != nil {
							t.Fatal(err)
						}
						if len(partial.Steps) != k {
							t.Fatalf("interrupted run completed %d steps, wanted %d", len(partial.Steps), k)
						}
						ck, err := LoadWorkloadCheckpoint(ckPath)
						if err != nil {
							t.Fatal(err)
						}
						resumed, err := RunWorkloadOpts(m, WorkloadRunOptions{
							PerGateEval: perGate,
							Resume:      ck,
						})
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(full, resumed) {
							t.Fatalf("resumed report diverged from uninterrupted run\nfull:    %+v\nresumed: %+v", full, resumed)
						}
					})
				}
			})
		}
	}
}

// killResumeFixture runs workload-refill-sync to a step-1 checkpoint
// and returns the checkpoint path (the cheapest builtin: 3 product
// steps at n=5).
func killResumeFixture(t *testing.T) (m *Manifest, ckPath string) {
	t.Helper()
	m, err := LookupWorkload("workload-refill-sync")
	if err != nil {
		t.Fatal(err)
	}
	ckPath = filepath.Join(t.TempDir(), "wl.ckpt")
	if _, err := RunWorkloadOpts(m, WorkloadRunOptions{CheckpointPath: ckPath, StopAfter: 1}); err != nil {
		t.Fatal(err)
	}
	return m, ckPath
}

// TestWorkloadResumeRejectsMismatch pins the typed refusals: resuming
// under a different manifest or different run options must fail with
// mpc.ErrCheckpointConfig before any engine is built.
func TestWorkloadResumeRejectsMismatch(t *testing.T) {
	_, ckPath := killResumeFixture(t)
	ck, err := LoadWorkloadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	other, err := LookupWorkload("workload-amortize-sync")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorkloadOpts(other, WorkloadRunOptions{Resume: ck}); !errors.Is(err, mpc.ErrCheckpointConfig) {
		t.Fatalf("resume under a different manifest: %v, want ErrCheckpointConfig", err)
	}
	m, err := LookupWorkload("workload-refill-sync")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorkloadOpts(m, WorkloadRunOptions{Resume: ck, Compare: true}); !errors.Is(err, mpc.ErrCheckpointConfig) {
		t.Fatalf("resume with compare flipped: %v, want ErrCheckpointConfig", err)
	}
	if _, err := RunWorkloadOpts(m, WorkloadRunOptions{Resume: ck, PerGateEval: true}); !errors.Is(err, mpc.ErrCheckpointConfig) {
		t.Fatalf("resume with perGateEval flipped: %v, want ErrCheckpointConfig", err)
	}
}

// TestWorkloadCheckpointDecodeErrors covers the workload framing's
// typed error taxonomy: truncation, corruption and version skew all
// map onto the mpc sentinels.
func TestWorkloadCheckpointDecodeErrors(t *testing.T) {
	_, ckPath := killResumeFixture(t)
	data, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if !IsWorkloadCheckpoint(data) {
		t.Fatal("workload checkpoint not recognized by its magic")
	}
	if IsWorkloadCheckpoint([]byte("MPCKPT")) {
		t.Fatal("engine magic misdetected as a workload checkpoint")
	}
	for _, n := range []int{0, 5, 11, len(data) / 2, len(data) - 1} {
		if _, err := ReadWorkloadCheckpoint(bytes.NewReader(data[:n])); !errors.Is(err, mpc.ErrBadCheckpoint) {
			t.Errorf("prefix of %d bytes: %v, want ErrBadCheckpoint", n, err)
		}
	}
	flip := append([]byte(nil), data...)
	flip[len(flip)/2] ^= 0x41
	if _, err := ReadWorkloadCheckpoint(bytes.NewReader(flip)); !errors.Is(err, mpc.ErrBadCheckpoint) {
		t.Errorf("payload bitflip: %v, want ErrBadCheckpoint", err)
	}
	skew := append([]byte(nil), data...)
	binary.BigEndian.PutUint16(skew[6:8], WorkloadCheckpointVersion+1)
	if _, err := ReadWorkloadCheckpoint(bytes.NewReader(skew)); !errors.Is(err, mpc.ErrCheckpointVersion) {
		t.Errorf("version skew: %v, want ErrCheckpointVersion", err)
	}
}

// TestWorkloadCheckpointInspect pins the inspect summary the
// `scenario checkpoint` verb prints.
func TestWorkloadCheckpointInspect(t *testing.T) {
	m, ckPath := killResumeFixture(t)
	ck, err := LoadWorkloadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	info, err := ck.Inspect()
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != m.Name || info.StepsDone != 1 || info.StepsTotal != len(m.Workload.Steps) {
		t.Fatalf("inspect position %+v", info)
	}
	if info.Engine == nil || info.Engine.Evaluations != 1 || !info.Engine.Preprocessed {
		t.Fatalf("inspect engine summary %+v", info.Engine)
	}
	if info.Engine.Pool.Generated == 0 {
		t.Fatal("inspect lost the pool accounting")
	}
}
