package scenario

import (
	"fmt"
	"runtime"
	"sync"
)

// SweepResult pairs a manifest with its run outcome. Exactly one of
// Report and Err is set: Err covers manifest/assembly failures, while
// engine errors and assertion verdicts live inside the Report.
type SweepResult struct {
	Manifest *Manifest
	Report   *Report
	Err      error
}

// Sweep runs the manifests on a worker pool of the given size
// (parallel < 1 uses GOMAXPROCS) and returns one result per manifest,
// in input order. Each simulation is single-threaded and deterministic,
// so results are independent of the pool size and of scheduling: only
// wall-clock time varies.
func Sweep(ms []*Manifest, parallel int) []SweepResult {
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(ms) {
		parallel = len(ms)
	}
	out := make([]SweepResult, len(ms))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rep, err := Run(ms[i])
				out[i] = SweepResult{Manifest: ms[i], Report: rep, Err: err}
			}
		}()
	}
	for i := range ms {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// ExpandSeeds derives one manifest per seed from a base manifest,
// renaming each to "<name>-seed<s>". Expected exact outputs survive
// reseeding only when the agreement set is pinned, so seed expansion
// drops the Outputs assertion and keeps the seed-independent ones
// (consistency, agreement bounds, budgets).
func ExpandSeeds(m *Manifest, seeds []uint64) []*Manifest {
	out := make([]*Manifest, len(seeds))
	for i, s := range seeds {
		c := *m
		c.Name = fmt.Sprintf("%s-seed%d", m.Name, s)
		c.Seed = s
		c.Expect.Outputs = nil
		out[i] = &c
	}
	return out
}
