package scenario

import (
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// SweepResult pairs a manifest with its run outcome. Exactly one of
// Report and Err is set: Err covers manifest/assembly failures and
// recovered panics, while engine errors and assertion verdicts live
// inside the Report.
type SweepResult struct {
	Manifest *Manifest
	Report   *Report
	Err      error
}

// Sweep runs the manifests on a worker pool of the given size
// (parallel < 1 uses GOMAXPROCS) and returns one result per manifest,
// in input order. Each simulation is single-threaded and deterministic,
// so results are independent of the pool size and of scheduling: only
// wall-clock time varies. A panicking run is contained to its own
// result (SweepResult.Err); the rest of the sweep proceeds.
func Sweep(ms []*Manifest, parallel int) []SweepResult {
	if len(ms) == 0 {
		return nil
	}
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(ms) {
		parallel = len(ms)
	}
	out := make([]SweepResult, len(ms))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = runIsolated(ms[i])
			}
		}()
	}
	for i := range ms {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// runIsolated runs one manifest, converting a panic anywhere in
// assembly or simulation into the result's Err so a single broken
// manifest cannot take down the worker pool mid-sweep.
func runIsolated(m *Manifest) (sr SweepResult) {
	sr.Manifest = m
	defer func() {
		if r := recover(); r != nil {
			name := "<nil>"
			if m != nil {
				name = m.Name
			}
			sr.Report = nil
			sr.Err = fmt.Errorf("scenario %q: run panicked: %v\n%s", name, r, debug.Stack())
		}
	}()
	sr.Report, sr.Err = Run(m)
	return sr
}

// ExpandSeeds derives one manifest per seed from a base manifest,
// renaming each to "<name>-seed<s>". Expected exact outputs survive
// reseeding only when the agreement set is pinned, so seed expansion
// drops the Outputs assertion and keeps the seed-independent ones
// (consistency, agreement bounds, budgets). Each derived manifest is a
// deep copy: mutating one (or the base) never aliases another's
// adversary, input or expectation data.
func ExpandSeeds(m *Manifest, seeds []uint64) []*Manifest {
	out := make([]*Manifest, len(seeds))
	for i, s := range seeds {
		c := m.clone()
		c.Name = fmt.Sprintf("%s-seed%d", m.Name, s)
		c.Seed = s
		c.Expect.Outputs = nil
		out[i] = c
	}
	return out
}

// clone deep-copies the manifest through a JSON round trip: a Manifest
// is fully JSON-tagged (that is how manifests load in the first
// place), so the round trip copies every slice- and map-typed field —
// including ones added after this was written — and derived manifests
// share no mutable state with the base.
func (m *Manifest) clone() *Manifest {
	data, err := json.Marshal(m)
	if err != nil {
		panic(err) // a Manifest is always marshalable (see JSON)
	}
	var c Manifest
	if err := json.Unmarshal(data, &c); err != nil {
		panic(err) // our own marshal output always parses
	}
	return &c
}
