package scenario

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/transport"
	"repro/mpc"
)

// validSet returns a well-formed ad-hoc party set referencing the
// boundary scenario, for the negative table to mutate.
func validSet() *PartySet {
	return &PartySet{
		Name:      "probe-set",
		Parties:   boundaryN5,
		Transport: DeployTransport{Kind: "unix"},
		Scenario:  "sync-boundary-n5",
	}
}

// fiveEndpoints pins five distinct placeholder addresses.
func fiveEndpoints() []EndpointSpec {
	eps := make([]EndpointSpec, 5)
	for i := range eps {
		eps[i] = EndpointSpec{Party: i + 1, Addr: fmt.Sprintf("addr-%d", i+1)}
	}
	return eps
}

// TestBuiltinPartySetsValid replaces the init-time validation the
// registry cannot do (package init order): every builtin party set must
// validate, resolve and reify to a non-simulator backend.
func TestBuiltinPartySetsValid(t *testing.T) {
	sets := BuiltinPartySets()
	if len(sets) == 0 {
		t.Fatal("no builtin party sets registered")
	}
	for _, s := range sets {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if _, err := LookupPartySet(s.Name); err != nil {
			t.Errorf("%s: lookup: %v", s.Name, err)
		}
		d, err := s.Reify()
		if err != nil {
			t.Errorf("%s: reify: %v", s.Name, err)
			continue
		}
		if d.Backend() == "sim" {
			t.Errorf("%s: a builtin deployment must name a real backend", s.Name)
		}
	}
	if _, err := LookupPartySet("no-such-set"); err == nil {
		t.Error("lookup of unknown party set succeeded")
	}
}

// TestPartySetValidation drives every validation rule to its typed
// error: each rejected set surfaces a *PartySetError wrapping
// ErrPartySet and naming the offending field.
func TestPartySetValidation(t *testing.T) {
	if err := validSet().Validate(); err != nil {
		t.Fatalf("baseline set invalid: %v", err)
	}
	cases := []struct {
		name  string
		field string
		mut   func(*PartySet)
	}{
		{"bad name", "name", func(s *PartySet) { s.Name = "Bad_Name" }},
		{"too few parties", "parties.n", func(s *PartySet) { s.Parties = Parties{N: 3, Ts: 1, Ta: 0} }},
		{"zero ts", "parties.ts", func(s *PartySet) { s.Parties = Parties{N: 5, Ts: 0, Ta: 0} }},
		{"ta above ts", "parties.ta", func(s *PartySet) { s.Parties = Parties{N: 5, Ts: 1, Ta: 2} }},
		{"infeasible thresholds", "parties", func(s *PartySet) { s.Parties = Parties{N: 5, Ts: 2, Ta: 0} }},
		{"sim is not a deployable kind", "transport.kind", func(s *PartySet) { s.Transport.Kind = "sim" }},
		{"dir needs unix", "transport.dir", func(s *PartySet) {
			s.Transport = DeployTransport{Kind: "tcp", Dir: "/tmp/socks"}
		}},
		{"negative timeout", "transport.ioTimeoutMs", func(s *PartySet) { s.Transport.IOTimeoutMs = -1 }},
		{"endpoint count", "endpoints", func(s *PartySet) { s.Endpoints = fiveEndpoints()[:2] }},
		{"endpoint party range", "endpoints[1].party", func(s *PartySet) {
			s.Endpoints = fiveEndpoints()
			s.Endpoints[1].Party = 9
		}},
		{"duplicate endpoint party", "endpoints[1].party", func(s *PartySet) {
			s.Endpoints = fiveEndpoints()
			s.Endpoints[1].Party = 1
		}},
		{"empty endpoint addr", "endpoints[2].addr", func(s *PartySet) {
			s.Endpoints = fiveEndpoints()
			s.Endpoints[2].Addr = ""
		}},
		{"duplicate endpoint addr", "endpoints[2].addr", func(s *PartySet) {
			s.Endpoints = fiveEndpoints()
			s.Endpoints[2].Addr = s.Endpoints[0].Addr
		}},
		{"no reference", "scenario", func(s *PartySet) { s.Scenario = "" }},
		{"both references", "scenario", func(s *PartySet) { s.Workload = "workload-amortize-sync" }},
		{"checkpoint without workload", "checkpoint", func(s *PartySet) { s.Checkpoint = "x.ck" }},
		{"unknown scenario", "scenario", func(s *PartySet) { s.Scenario = "no-such-scenario" }},
		{"unknown workload", "workload", func(s *PartySet) {
			s.Scenario = ""
			s.Workload = "no-such-workload"
		}},
		{"parties mismatch", "parties", func(s *PartySet) { s.Parties = flagship }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSet()
			tc.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("validation passed")
			}
			if !errors.Is(err, ErrPartySet) {
				t.Fatalf("err = %v, does not wrap ErrPartySet", err)
			}
			var pe *PartySetError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, not a *PartySetError", err)
			}
			if pe.Field != tc.field {
				t.Fatalf("field = %q, want %q (err: %v)", pe.Field, tc.field, err)
			}
		})
	}
}

// TestPartySetParseStrict: the manifest decoder rejects unknown fields
// and trailing garbage, and a loaded file round-trips.
func TestPartySetParseStrict(t *testing.T) {
	good := `{"name":"file-set","parties":{"n":5,"ts":1,"ta":1},` +
		`"transport":{"kind":"unix"},"scenario":"sync-boundary-n5"}`
	s, err := ParsePartySet([]byte(good))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if s.Name != "file-set" || s.Parties != boundaryN5 {
		t.Fatalf("parsed set mangled: %+v", s)
	}
	if _, err := ParsePartySet([]byte(`{"name":"x","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParsePartySet([]byte(good + `{"more":1}`)); err == nil {
		t.Error("trailing garbage accepted")
	}
	path := filepath.Join(t.TempDir(), "set.json")
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPartySetFile(path); err != nil {
		t.Errorf("load file: %v", err)
	}
	if _, err := LoadPartySetFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file succeeded")
	}
}

// TestUseBackendOverride covers the deploy verb's -backend switch.
func TestUseBackendOverride(t *testing.T) {
	d, err := validSet().Reify()
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Backend(); got != "unix" {
		t.Fatalf("backend = %q, want unix", got)
	}
	if err := d.UseBackend("sim"); err != nil || d.Backend() != "sim" {
		t.Fatalf("sim override: err=%v backend=%q", err, d.Backend())
	}
	if err := d.UseBackend("tcp"); err != nil || d.Backend() != "tcp" {
		t.Fatalf("tcp override: err=%v backend=%q", err, d.Backend())
	}
	if err := d.UseBackend(""); err != nil || d.Backend() != "tcp" {
		t.Fatalf("keep override: err=%v backend=%q", err, d.Backend())
	}
	if err := d.UseBackend("carrier-pigeon"); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestReifyMissingCheckpoint: a checkpoint path that cannot be loaded
// fails reification — nothing launches half-configured.
func TestReifyMissingCheckpoint(t *testing.T) {
	s := validSet()
	s.Scenario = ""
	s.Workload = "workload-amortize-sync"
	s.Checkpoint = filepath.Join(t.TempDir(), "missing.ck")
	if _, err := s.Reify(); err == nil {
		t.Fatal("reify with a missing checkpoint succeeded")
	}
}

// TestDeployEndpointCollision: a pinned listen address already bound by
// another process must surface as a typed transport fault from Execute,
// not a hang or a report row.
func TestDeployEndpointCollision(t *testing.T) {
	dir := t.TempDir()
	eps := make([]EndpointSpec, 5)
	for i := range eps {
		eps[i] = EndpointSpec{Party: i + 1, Addr: filepath.Join(dir, fmt.Sprintf("p%d.sock", i+1))}
	}
	ln, err := net.Listen("unix", eps[0].Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	s := validSet()
	s.Endpoints = eps
	s.Transport.IOTimeoutMs = 2000
	d, err := s.Reify()
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Execute()
	if !errors.Is(err, mpc.ErrTransport) {
		t.Fatalf("err = %v, want mpc.ErrTransport in chain", err)
	}
}

// TestServeSimBackend smoke-tests the serving loop over the simulator:
// every workload step evaluates cleanly each round and the report
// carries no wire traffic.
func TestServeSimBackend(t *testing.T) {
	set, err := LookupPartySet("deploy-unix-n5-workload")
	if err != nil {
		t.Fatal(err)
	}
	d, err := set.Reify()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.UseBackend("sim"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep, err := d.Serve(&buf, 1)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	if want := len(d.Manifest.Workload.Steps); rep.Evals != want || rep.Failures != 0 {
		t.Fatalf("evals/failures = %d/%d, want %d/0", rep.Evals, rep.Failures, want)
	}
	if rep.Backend != "sim" || rep.Wire.FramesOut != 0 {
		t.Fatalf("sim serve leaked wire traffic: backend=%q wire=%+v", rep.Backend, rep.Wire)
	}
	if !strings.Contains(buf.String(), "serving deploy-unix-n5-workload") {
		t.Fatalf("serve log missing header:\n%s", buf.String())
	}
	// Serving is a workload concept: a one-shot scenario set refuses.
	sd, err := validSet().Reify()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sd.Serve(&buf, 1); err == nil {
		t.Fatal("serve of a scenario set succeeded")
	}
}

// TestDeployDifferential is the deployment layer's core guarantee: the
// inner protocol report of a deployment is bit-identical across the
// simulator and the real socket backends on the same seed, while the
// wire accounting proves bytes physically moved.
func TestDeployDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket differential runs full protocols; skipped in -short")
	}
	cases := []struct {
		kind     string
		scenario string
		workload string
	}{
		{"unix", "sync-boundary-n5", ""},
		{"unix", "sync-garble-ts", ""},
		{"unix", "async-sum-honest", ""},
		{"tcp", "sync-boundary-n5", ""},
		{"unix", "", "workload-amortize-sync"},
	}
	for _, tc := range cases {
		ref := tc.scenario + tc.workload
		t.Run(ref+"/"+tc.kind, func(t *testing.T) {
			var m *Manifest
			var err error
			if tc.workload != "" {
				m, err = LookupWorkload(tc.workload)
			} else {
				m, err = Lookup(tc.scenario)
			}
			if err != nil {
				t.Fatal(err)
			}
			s := &PartySet{
				Name:      "diff-set",
				Parties:   m.Parties,
				Transport: DeployTransport{Kind: tc.kind},
				Scenario:  tc.scenario,
				Workload:  tc.workload,
			}
			d, err := s.Reify()
			if err != nil {
				t.Fatal(err)
			}
			real, err := d.Execute()
			if err != nil {
				t.Fatalf("%s execute: %v", tc.kind, err)
			}
			if err := d.UseBackend("sim"); err != nil {
				t.Fatal(err)
			}
			sim, err := d.Execute()
			if err != nil {
				t.Fatalf("sim execute: %v", err)
			}
			if !real.Pass || !sim.Pass {
				t.Fatalf("pass = %v/%v, want true/true", real.Pass, sim.Pass)
			}
			if !reflect.DeepEqual(real.Inner(), sim.Inner()) {
				t.Errorf("inner reports diverge:\n%s: %+v\nsim: %+v", tc.kind, real.Inner(), sim.Inner())
			}
			if real.Wire.FramesOut == 0 || real.Wire.FramesOut != real.Wire.FramesIn {
				t.Errorf("%s wire stats implausible: %+v", tc.kind, real.Wire)
			}
			if sim.Wire != (transport.WireStats{}) {
				t.Errorf("sim run reported wire traffic: %+v", sim.Wire)
			}
		})
	}
}
