// Package scenario makes adversarial protocol configurations a
// first-class, nameable unit: a JSON Manifest describes one complete
// best-of-both-worlds MPC run — parties and thresholds, network model
// and policy parameters, adversary strategy, circuit and inputs, seed —
// together with the expected-outcome assertions the run must satisfy.
//
// Manifests are validated (Manifest.Validate), loaded from JSON (Load,
// LoadFile), executed deterministically (Run), and batch-executed on a
// worker pool (Sweep). A registry of built-in scenarios (Builtin,
// Lookup) spans every circuit family and adversary/network combination,
// including fallback-trigger and threshold-boundary cases.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"

	"repro/internal/proto"
	"repro/internal/sim"
)

// Manifest is the declarative description of one protocol run and its
// expected outcome. The zero value is invalid; manifests are built in
// Go (see registry.go) or loaded from JSON (Load, LoadFile).
type Manifest struct {
	// Name identifies the scenario: lowercase words separated by
	// dashes, unique within a registry.
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description,omitempty"`
	// Parties carries n and the two corruption thresholds.
	Parties Parties `json:"parties"`
	// Network selects the network model and its policy parameters.
	Network NetworkSpec `json:"network"`
	// Adversary describes the corruption strategy; the zero value is
	// an all-honest run.
	Adversary AdversarySpec `json:"adversary,omitempty"`
	// Circuit selects the workload.
	Circuit CircuitSpec `json:"circuit"`
	// Inputs are the parties' private inputs as field values; empty
	// means the default 1..n.
	Inputs []uint64 `json:"inputs,omitempty"`
	// Seed makes the run fully deterministic.
	Seed uint64 `json:"seed"`
	// SyncOnly disables every asynchronous fallback path (the paper's
	// SMPC-style ablation baseline).
	SyncOnly bool `json:"syncOnly,omitempty"`
	// EventLimit caps scheduler events; 0 uses the engine default.
	// Scenarios that expect a liveness failure must set it. For a
	// workload manifest the limit is the engine's lifetime budget
	// across preprocessing and every evaluation.
	EventLimit uint64 `json:"eventLimit,omitempty"`
	// Expect holds the assertions evaluated against the run's result.
	Expect Expect `json:"expect"`
	// Workload, when present, turns the manifest into a session-engine
	// workload: one mpc.Engine preprocesses a triple budget and then
	// serves the steps' evaluations in sequence (RunWorkload, the
	// `scenario workload` verb). Circuits, inputs and assertions move
	// into the steps; the top-level Circuit, Inputs and Expect must be
	// absent.
	Workload *WorkloadSpec `json:"workload,omitempty"`
}

// Parties carries the resilience parameters of a manifest.
type Parties struct {
	// N is the number of parties; Ts and Ta the corruption thresholds
	// under synchrony resp. asynchrony (Ta ≤ Ts, 3·Ts + Ta < N).
	N  int `json:"n"`
	Ts int `json:"ts"`
	Ta int `json:"ta"`
}

// AtBoundary reports whether the configuration sits on the paper's
// feasibility boundary 3·Ts + Ta = N − 1 (the largest thresholds any
// best-of-both-worlds protocol can tolerate for this N).
func (p Parties) AtBoundary() bool { return 3*p.Ts+p.Ta == p.N-1 }

// NetworkSpec selects the simulated network model and its parameters.
type NetworkSpec struct {
	// Kind is "sync" or "async".
	Kind string `json:"kind"`
	// Delta is the synchronous delivery bound Δ in virtual ticks
	// (default 10).
	Delta int64 `json:"delta,omitempty"`
	// Tail, for async networks, overrides the heavy-tail probability
	// of the delay distribution (default 0.15).
	Tail float64 `json:"tail,omitempty"`
	// BurstPeriod/BurstDown, for async networks, add periodic outages:
	// deliveries landing in the first BurstDown ticks of each
	// BurstPeriod-tick window are pushed past the outage. Zero
	// disables bursts; 0 < BurstDown < BurstPeriod otherwise.
	BurstPeriod int64 `json:"burstPeriod,omitempty"`
	BurstDown   int64 `json:"burstDown,omitempty"`
	// Workers sets the intra-tick worker-pool size: the parties'
	// per-tick computations run concurrently with all effects merged
	// in canonical order at a per-tick barrier, so reports are
	// bit-identical to serial at every pool size. 0 (the default)
	// keeps the single-threaded loop.
	Workers int `json:"workers,omitempty"`
}

// AdversarySpec describes the static corruption strategy. Passive,
// Silent, Garble, CrashAt, Drop, Delay and Equivocate parties count
// against the corruption budget max(Ts, Ta); StarveFrom parties do not
// — starvation is adversarial network scheduling of honest parties'
// links (the paper's asynchronous scheduler), not a corruption (see
// Corrupt). A party named in several fields runs all those behaviours
// chained.
type AdversarySpec struct {
	// Passive parties follow the protocol; the adversary only reads
	// their state.
	Passive []int `json:"passive,omitempty"`
	// Silent parties are crashed from the start and never send.
	Silent []int `json:"silent,omitempty"`
	// Garble parties send byte-flipped garbage on every link.
	Garble []int `json:"garble,omitempty"`
	// CrashAt stops a party's sends from the given virtual tick.
	CrashAt map[int]int64 `json:"crashAt,omitempty"`
	// Drop makes a party withhold every message whose instance path
	// contains the given substring ("" drops everything).
	Drop map[int]string `json:"drop,omitempty"`
	// Delay makes a party withhold matching messages for extra ticks.
	Delay map[int]DelayRule `json:"delay,omitempty"`
	// Equivocate parties send byte-flipped payloads to the upper half
	// of recipients (party index > n/2) and honest payloads to the
	// rest.
	Equivocate []int `json:"equivocate,omitempty"`
	// StarveFrom starves every link out of the listed parties until
	// StarveUntil (default 500·Δ), modelling the adversarial scheduler.
	StarveFrom  []int `json:"starveFrom,omitempty"`
	StarveUntil int64 `json:"starveUntil,omitempty"`
}

// DelayRule is one targeted-delay behaviour: messages whose instance
// path contains Match ("" matches all) are withheld for Extra extra
// virtual ticks.
type DelayRule struct {
	Match string `json:"match,omitempty"`
	Extra int64  `json:"extra"`
}

// IsZero reports whether the spec describes an all-honest run.
func (a AdversarySpec) IsZero() bool {
	return len(a.Passive) == 0 && len(a.Silent) == 0 && len(a.Garble) == 0 &&
		len(a.CrashAt) == 0 && len(a.Drop) == 0 && len(a.Delay) == 0 &&
		len(a.Equivocate) == 0 && len(a.StarveFrom) == 0
}

// Corrupt returns the deduplicated set of corrupted parties (parties
// that count against the corruption budget). Starved parties are not
// corrupt: starvation is a property of the network schedule.
func (a AdversarySpec) Corrupt() []int {
	seen := map[int]bool{}
	for _, ps := range [][]int{a.Passive, a.Silent, a.Garble, a.Equivocate} {
		for _, p := range ps {
			seen[p] = true
		}
	}
	for p := range a.CrashAt {
		seen[p] = true
	}
	for p := range a.Drop {
		seen[p] = true
	}
	for p := range a.Delay {
		seen[p] = true
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Summary renders a compact human description of the strategy.
func (a AdversarySpec) Summary() string {
	if a.IsZero() {
		return "honest"
	}
	s := ""
	add := func(label string, ps []int) {
		if len(ps) > 0 {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s%v", label, ps)
		}
	}
	add("passive", a.Passive)
	add("silent", a.Silent)
	add("garble", a.Garble)
	add("crash", sortedKeys(a.CrashAt))
	add("drop", sortedKeys(a.Drop))
	add("delay", sortedKeys(a.Delay))
	add("equiv", a.Equivocate)
	add("starve", a.StarveFrom)
	return s
}

// sortedKeys returns the sorted party keys of a per-party map.
func sortedKeys[V any](m map[int]V) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Expect holds the expected-outcome assertions of a scenario. Zero
// fields are unchecked, except that a zero Error asserts the run
// succeeds.
type Expect struct {
	// Error expects the run to fail with the named engine error:
	// "no-honest-output" or "disagreement". Empty expects success.
	Error string `json:"error,omitempty"`
	// Outputs asserts the exact agreed public outputs.
	Outputs []uint64 `json:"outputs,omitempty"`
	// Consistent asserts the agreed outputs equal the clear-text
	// evaluation of the circuit over the agreed input-provider set.
	Consistent bool `json:"consistent,omitempty"`
	// MinAgreement / MaxAgreement bound the agreement-set size |CS|
	// (0 = unchecked).
	MinAgreement int `json:"minAgreement,omitempty"`
	MaxAgreement int `json:"maxAgreement,omitempty"`
	// AllHonestTerminate asserts every honest party terminated.
	AllHonestTerminate bool `json:"allHonestTerminate,omitempty"`
	// MaxTicks budgets the virtual time of the last honest
	// termination (0 = unchecked).
	MaxTicks int64 `json:"maxTicks,omitempty"`
	// WithinDeadline asserts the last honest termination meets the
	// derived synchronous deadline TCirEval.
	WithinDeadline bool `json:"withinDeadline,omitempty"`
	// MaxHonestBytes / MaxHonestMessages budget honest-party traffic
	// (0 = unchecked).
	MaxHonestBytes    uint64 `json:"maxHonestBytes,omitempty"`
	MaxHonestMessages uint64 `json:"maxHonestMessages,omitempty"`
}

// Expected engine-error names for Expect.Error.
const (
	ErrNameNoHonestOutput = "no-honest-output"
	ErrNameDisagreement   = "disagreement"
)

var nameRE = regexp.MustCompile(`^[a-z0-9]+(-[a-z0-9]+)*$`)

// Validate checks the manifest and returns the first problem found,
// phrased precisely enough to fix the manifest without reading code.
func (m *Manifest) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: %s", m.Name, fmt.Sprintf(format, args...))
	}
	if m.Name == "" {
		return fmt.Errorf("scenario: name must not be empty")
	}
	if !nameRE.MatchString(m.Name) {
		return fmt.Errorf("scenario %q: name must be lowercase words separated by dashes", m.Name)
	}
	p := m.Parties
	pcfg := proto.Config{N: p.N, Ts: p.Ts, Ta: p.Ta, Delta: sim.Time(m.Network.Delta)}
	if pcfg.Delta == 0 {
		pcfg.Delta = 10
	}
	if err := pcfg.Validate(); err != nil {
		return bad("parties: %v", err)
	}
	switch m.Network.Kind {
	case "sync", "async":
	case "":
		return bad("network.kind is required (\"sync\" or \"async\")")
	default:
		return bad("network.kind %q is not \"sync\" or \"async\"", m.Network.Kind)
	}
	if m.Network.Delta < 0 {
		return bad("network.delta must be >= 0, have %d", m.Network.Delta)
	}
	if m.Network.Tail < 0 || m.Network.Tail > 1 {
		return bad("network.tail must be in [0, 1], have %v", m.Network.Tail)
	}
	if m.Network.Tail != 0 && m.Network.Kind != "async" {
		return bad("network.tail only applies to the async network")
	}
	if m.Network.BurstPeriod != 0 || m.Network.BurstDown != 0 {
		if m.Network.Kind != "async" {
			return bad("network.burstPeriod/burstDown only apply to the async network (outages break the sync Δ bound)")
		}
		if m.Network.BurstPeriod <= 0 || m.Network.BurstDown <= 0 || m.Network.BurstDown >= m.Network.BurstPeriod {
			return bad("network bursts need 0 < burstDown < burstPeriod, have down=%d period=%d",
				m.Network.BurstDown, m.Network.BurstPeriod)
		}
	}
	if m.Network.Workers < 0 {
		return bad("network.workers must be >= 0, have %d", m.Network.Workers)
	}
	if err := m.validateAdversary(); err != nil {
		return err
	}
	if m.Workload != nil {
		return m.validateWorkload()
	}
	if err := m.Circuit.check(p.N); err != nil {
		return bad("circuit: %v", err)
	}
	if len(m.Inputs) != 0 && len(m.Inputs) != p.N {
		return bad("inputs: have %d values, need 0 (default 1..n) or exactly n = %d", len(m.Inputs), p.N)
	}
	return m.validateExpectBlock(m.Expect, "expect")
}

func (m *Manifest) validateAdversary() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: %s", m.Name, fmt.Sprintf(format, args...))
	}
	a := m.Adversary
	n := m.Parties.N
	checkRange := func(field string, ps []int) error {
		for _, p := range ps {
			if p < 1 || p > n {
				return bad("adversary.%s: party %d out of range 1..%d", field, p, n)
			}
		}
		return nil
	}
	for _, fp := range []struct {
		name string
		ps   []int
	}{{"passive", a.Passive}, {"silent", a.Silent}, {"garble", a.Garble},
		{"equivocate", a.Equivocate}, {"starveFrom", a.StarveFrom}} {
		if err := checkRange(fp.name, fp.ps); err != nil {
			return err
		}
	}
	for p, t := range a.CrashAt {
		if p < 1 || p > n {
			return bad("adversary.crashAt: party %d out of range 1..%d", p, n)
		}
		if t < 0 {
			return bad("adversary.crashAt[%d]: tick must be >= 0, have %d", p, t)
		}
	}
	for p := range a.Drop {
		if p < 1 || p > n {
			return bad("adversary.drop: party %d out of range 1..%d", p, n)
		}
	}
	for p, rule := range a.Delay {
		if p < 1 || p > n {
			return bad("adversary.delay: party %d out of range 1..%d", p, n)
		}
		if rule.Extra < 1 {
			return bad("adversary.delay[%d]: extra must be >= 1, have %d", p, rule.Extra)
		}
	}
	budget := m.Parties.Ts
	if m.Parties.Ta > budget {
		budget = m.Parties.Ta
	}
	if c := a.Corrupt(); len(c) > budget {
		return bad("adversary corrupts %d parties %v (passive/silent/garble/crashAt/drop/delay/equivocate; starveFrom is network scheduling, not corruption), exceeding the budget max(ts, ta) = %d", len(c), c, budget)
	}
	if a.StarveUntil != 0 && len(a.StarveFrom) == 0 {
		return bad("adversary.starveUntil set without adversary.starveFrom")
	}
	if a.StarveUntil < 0 {
		return bad("adversary.starveUntil must be >= 0, have %d", a.StarveUntil)
	}
	return nil
}

// validateExpectBlock checks one Expect block; label names the block in
// error messages ("expect" for the top level, "workload.steps[k].expect"
// for a workload step).
func (m *Manifest) validateExpectBlock(e Expect, label string) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: %s", m.Name, fmt.Sprintf(format, args...))
	}
	switch e.Error {
	case "", ErrNameNoHonestOutput, ErrNameDisagreement:
	default:
		return bad("%s.error %q is not %q or %q", label, e.Error, ErrNameNoHonestOutput, ErrNameDisagreement)
	}
	if e.Error != "" {
		if len(e.Outputs) > 0 || e.Consistent || e.AllHonestTerminate || e.WithinDeadline ||
			e.MinAgreement > 0 || e.MaxAgreement > 0 || e.MaxTicks > 0 ||
			e.MaxHonestBytes > 0 || e.MaxHonestMessages > 0 {
			return bad("%s.error %q cannot be combined with success assertions", label, e.Error)
		}
		if e.Error == ErrNameNoHonestOutput && m.EventLimit == 0 {
			return bad("%s.error %q requires an eventLimit so a non-terminating run is cut off", label, e.Error)
		}
	}
	n := m.Parties.N
	if e.MinAgreement < 0 || e.MinAgreement > n {
		return bad("%s.minAgreement %d out of range 0..%d", label, e.MinAgreement, n)
	}
	if e.MaxAgreement < 0 || e.MaxAgreement > n {
		return bad("%s.maxAgreement %d out of range 0..%d", label, e.MaxAgreement, n)
	}
	if e.MaxAgreement != 0 && e.MinAgreement > e.MaxAgreement {
		return bad("%s.minAgreement %d exceeds %s.maxAgreement %d", label, e.MinAgreement, label, e.MaxAgreement)
	}
	if e.MaxTicks < 0 {
		return bad("%s.maxTicks must be >= 0, have %d", label, e.MaxTicks)
	}
	if e.WithinDeadline && m.Network.Kind != "sync" {
		return bad("%s.withinDeadline requires the sync network (the deadline is a synchronous-run bound)", label)
	}
	return nil
}

// Parse decodes one manifest from JSON, rejecting unknown fields but
// NOT validating it. It exists for the fuzzing replay path: a minimized
// counterexample may deliberately violate validation (e.g. an
// over-budget adversary), yet must still round-trip through JSON so the
// violation reproduces from the saved file. Everything else should use
// Load.
func Parse(data []byte) (*Manifest, error) {
	return decode(data)
}

// Load parses one manifest from JSON, rejecting unknown fields, and
// validates it.
func Load(data []byte) (*Manifest, error) {
	m, err := decode(data)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadFile reads and validates a manifest (or a JSON array of
// manifests, all of which must validate) from path.
func LoadFile(path string) ([]*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var ms []*Manifest
	if len(data) > 0 && firstByte(data) == '[' {
		if err := unmarshalStrict(data, &ms); err != nil {
			return nil, fmt.Errorf("scenario: %s: %w", path, err)
		}
	} else {
		var m Manifest
		if err := unmarshalStrict(data, &m); err != nil {
			return nil, fmt.Errorf("scenario: %s: %w", path, err)
		}
		ms = []*Manifest{&m}
	}
	for i, m := range ms {
		if m == nil {
			return nil, fmt.Errorf("scenario: %s: manifest %d is null", path, i)
		}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return ms, nil
}

// JSON renders the manifest as indented JSON.
func (m *Manifest) JSON() []byte {
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		panic(err) // a Manifest is always marshalable
	}
	return out
}

func decode(data []byte) (*Manifest, error) {
	var m Manifest
	if err := unmarshalStrict(data, &m); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &m, nil
}

func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("json: trailing content after the manifest")
	}
	return nil
}

func firstByte(data []byte) byte {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return b
	}
	return 0
}
