package scenario

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/triples"
	"repro/mpc"
)

// WorkloadSpec is the session-engine section of a manifest: one
// mpc.Engine is built from the manifest's parties/network/adversary,
// preprocesses Budget triples once, and then serves the Steps'
// evaluations in sequence — the amortized offline/online split the
// paper's ΠPreProcessing exists for, measured end to end.
type WorkloadSpec struct {
	// Budget is the number of triples the engine preprocesses up front;
	// 0 derives it from the steps (the sum of their multiplication
	// counts). The pool rounds the budget up to whole extraction
	// batches, so refills are only needed when a budget is set smaller
	// than the workload consumes.
	Budget int `json:"budget,omitempty"`
	// Pipeline is the serving depth: 0 (the default) serves the steps
	// strictly in sequence with Engine.Evaluate; k >= 1 serves them
	// through a sliding window of k in-flight EvaluateAsync epochs
	// multiplexed on the one engine. Step reports stay in step order
	// regardless of completion order. Pipelined serving is incompatible
	// with per-step checkpointing (Snapshot refuses mid-pipeline).
	Pipeline int `json:"pipeline,omitempty"`
	// RefillLowWater arms the engine's watermark-triggered background
	// refills on the pipelined path (mpc.Config.RefillLowWater);
	// RefillBudget sizes each background batch. Both require Pipeline
	// >= 1 — the sequential path refills only on the explicit
	// exhaustion-retry.
	RefillLowWater int `json:"refillLowWater,omitempty"`
	RefillBudget   int `json:"refillBudget,omitempty"`
	// Steps are the evaluations, served in order over the one engine.
	Steps []WorkloadStep `json:"steps"`
}

// WorkloadStep is one evaluation of a workload: a circuit, the
// parties' inputs (empty = default 1..n) and the step's assertions.
type WorkloadStep struct {
	Circuit CircuitSpec `json:"circuit"`
	Inputs  []uint64    `json:"inputs,omitempty"`
	// Expect is asserted against this evaluation alone. MaxTicks
	// budgets the evaluation's own duration (ticks since the step
	// started), not the engine's absolute clock.
	Expect Expect `json:"expect,omitempty"`
}

// isZero reports whether no assertion is set (the zero Expect asserts
// plain success).
func (e Expect) isZero() bool {
	return e.Error == "" && len(e.Outputs) == 0 && !e.Consistent &&
		e.MinAgreement == 0 && e.MaxAgreement == 0 && !e.AllHonestTerminate &&
		e.MaxTicks == 0 && !e.WithinDeadline && e.MaxHonestBytes == 0 && e.MaxHonestMessages == 0
}

// validateWorkload checks the workload section; the shared
// parties/network/adversary fields were already validated.
func (m *Manifest) validateWorkload() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: %s", m.Name, fmt.Sprintf(format, args...))
	}
	w := m.Workload
	if m.Circuit.Family != "" {
		return bad("workload manifests define circuits per step; drop the top-level circuit")
	}
	if len(m.Inputs) != 0 {
		return bad("workload manifests define inputs per step; drop the top-level inputs")
	}
	if !m.Expect.isZero() {
		return bad("workload manifests assert per step; drop the top-level expect")
	}
	if w.Budget < 0 {
		return bad("workload.budget must be >= 0, have %d", w.Budget)
	}
	if w.Pipeline < 0 {
		return bad("workload.pipeline must be >= 0, have %d", w.Pipeline)
	}
	if w.RefillLowWater < 0 || w.RefillBudget < 0 {
		return bad("workload.refillLowWater/refillBudget must be >= 0, have %d/%d", w.RefillLowWater, w.RefillBudget)
	}
	if w.RefillBudget > 0 && w.RefillLowWater == 0 {
		return bad("workload.refillBudget without refillLowWater: the batch size only applies once the watermark is armed")
	}
	if w.RefillLowWater > 0 && w.Pipeline == 0 {
		return bad("workload.refillLowWater requires pipeline >= 1: background refills overlap pipelined epochs only")
	}
	if len(w.Steps) == 0 {
		return bad("workload needs at least one step")
	}
	for i, s := range w.Steps {
		if err := s.Circuit.check(m.Parties.N); err != nil {
			return bad("workload.steps[%d].circuit: %v", i, err)
		}
		if len(s.Inputs) != 0 && len(s.Inputs) != m.Parties.N {
			return bad("workload.steps[%d].inputs: have %d values, need 0 (default 1..n) or exactly n = %d",
				i, len(s.Inputs), m.Parties.N)
		}
		if err := m.validateExpectBlock(s.Expect, fmt.Sprintf("workload.steps[%d].expect", i)); err != nil {
			return err
		}
	}
	return nil
}

// WorkloadStepReport is one evaluation's outcome and cost.
type WorkloadStepReport struct {
	Index   int    `json:"index"`
	Circuit string `json:"circuit"`
	Pass    bool   `json:"pass"`
	// Failures lists the violated step assertions (empty when Pass).
	Failures []string `json:"failures,omitempty"`
	// Err is the engine error, "" on success. A pool-exhaustion error
	// triggers one refill and a retry before it is reported.
	Err     string   `json:"err,omitempty"`
	Outputs []uint64 `json:"outputs,omitempty"`
	CS      []int    `json:"cs,omitempty"`
	// Triples is the number of pool triples the step consumed.
	Triples int `json:"triples"`
	// HonestMessages/HonestBytes are this evaluation's traffic deltas;
	// Ticks is its duration on the engine clock.
	HonestMessages uint64 `json:"honestMessages"`
	HonestBytes    uint64 `json:"honestBytes"`
	Ticks          int64  `json:"ticks"`
	// OneShotMessages is the honest traffic of an independent mpc.Run
	// of the same step (0 when the comparison was not requested).
	OneShotMessages uint64 `json:"oneShotMessages,omitempty"`
	// ByFamily breaks the step's honest traffic down by protocol
	// family — part of the kill-and-resume differential contract: a
	// resumed workload must reproduce these per-family figures
	// bit-identically.
	ByFamily map[string]mpc.FamilyCounts `json:"byFamily,omitempty"`
}

// WorkloadReport is the outcome of RunWorkload: per-step reports plus
// the amortization summary the workload exists to measure.
type WorkloadReport struct {
	Name string `json:"name"`
	// Pass is true when every step ran and all its assertions held.
	Pass  bool                 `json:"pass"`
	Steps []WorkloadStepReport `json:"steps"`
	// Budget is the preprocessed triple budget (after defaulting);
	// TriplesGenerated/Consumed the pool accounting at the end.
	Budget           int `json:"budget"`
	TriplesGenerated int `json:"triplesGenerated"`
	TriplesConsumed  int `json:"triplesConsumed"`
	// Pool is the engine's full pool-depth accounting at the end of the
	// run (available/reserved/consumed/filling).
	Pool triples.PoolStats `json:"pool"`
	// PreprocessMessages/Bytes is the honest traffic of all pool fills;
	// EvalMessages/Bytes the honest traffic of all evaluations.
	PreprocessMessages uint64 `json:"preprocessMessages"`
	PreprocessBytes    uint64 `json:"preprocessBytes"`
	EvalMessages       uint64 `json:"evalMessages"`
	EvalBytes          uint64 `json:"evalBytes"`
	// AmortizedMsgsPerEval is (preprocess + eval traffic) / steps;
	// AmortizedTicksPerEval the mean step duration.
	AmortizedMsgsPerEval  float64 `json:"amortizedMsgsPerEval"`
	AmortizedTicksPerEval float64 `json:"amortizedTicksPerEval"`
	// OneShotMsgsPerEval is the mean one-shot cost of the same steps
	// and Savings the ratio OneShotMsgsPerEval/AmortizedMsgsPerEval
	// (only set when the comparison was requested).
	OneShotMsgsPerEval float64 `json:"oneShotMsgsPerEval,omitempty"`
	Savings            float64 `json:"savings,omitempty"`
}

// WorkloadRunOptions shapes one RunWorkloadOpts call. The zero value
// reproduces a plain RunWorkload(m, false).
type WorkloadRunOptions struct {
	// Compare additionally runs every step as an independent one-shot
	// mpc.Run and reports the amortization ratio.
	Compare bool
	// Tracer receives the session engine's event stream (nil = off).
	// The one-shot comparison runs stay untraced — they are reference
	// measurements on separate worlds.
	Tracer obs.Tracer
	// PerGateEval switches the engine to the per-gate reference
	// evaluator — the differential-testing knob; manifests always run
	// the default layered evaluator.
	PerGateEval bool
	// CheckpointPath, when set, writes a crash-safe resume checkpoint
	// to this file after every completed step (atomic tmp + rename), so
	// a killed run loses at most the step in flight.
	CheckpointPath string
	// StopAfter, when > 0, stops the run after that many completed
	// steps (a simulated crash for tests and the checkpoint smoke): the
	// partial report is returned, and the checkpoint — if requested —
	// stays behind for a resume.
	StopAfter int
	// Resume continues a previous run from a checkpoint instead of
	// starting fresh. The checkpoint must match the manifest and the
	// Compare/PerGateEval options (mpc.ErrCheckpointConfig otherwise).
	Resume *WorkloadCheckpoint
	// Pipeline overrides the manifest's workload.pipeline depth: 0 (the
	// zero value) keeps the manifest's, > 0 forces that depth, < 0
	// forces sequential serving. The smoke tooling uses the override to
	// run one manifest both ways and compare the reports.
	Pipeline int
	// Transport selects the session engine's message-plane backend
	// (nil = the in-memory simulator). The backend is deliberately NOT
	// part of the checkpoint identity: on a fixed seed a workload over
	// real sockets reports bit-identically to the simulator, and a
	// checkpoint written on one backend resumes onto any other. The
	// one-shot comparison runs always use the simulator — they are
	// reference measurements on separate worlds.
	Transport *mpc.TransportSpec
	// Wire, when non-nil, receives the physical wire accounting of the
	// session engine (zeros on the simulator backend).
	Wire *transport.WireStats
	// Workers overrides the manifest's network.workers pool size:
	// > 0 forces that pool size, -1 forces the serial loop, 0 keeps
	// the manifest's setting. Like the Transport backend, Workers is
	// deliberately NOT part of the checkpoint identity — reports are
	// bit-identical at every pool size.
	Workers int
}

// RunWorkload executes a workload manifest: one engine, one (or more,
// on exhaustion) preprocessing batches, the steps in order. compare
// additionally runs every step as an independent one-shot mpc.Run and
// reports the amortization ratio. The returned error covers
// manifest/assembly problems; engine errors and assertion failures are
// reported per step.
func RunWorkload(m *Manifest, compare bool) (*WorkloadReport, error) {
	return RunWorkloadOpts(m, WorkloadRunOptions{Compare: compare})
}

// RunWorkloadTraced is RunWorkload with a trace sink on the session
// engine: tr receives the whole session's event stream (preprocessing,
// every evaluation epoch, pool gauges). The one-shot comparison runs
// (compare) stay untraced — they are reference measurements on
// separate worlds. nil disables tracing.
func RunWorkloadTraced(m *Manifest, compare bool, tr obs.Tracer) (*WorkloadReport, error) {
	return RunWorkloadOpts(m, WorkloadRunOptions{Compare: compare, Tracer: tr})
}

// RunWorkloadOpts is the full-control workload runner: tracing,
// evaluator mode, pipelined serving, per-step checkpointing, simulated
// crashes and resume. A workload interrupted after step k and resumed
// from its checkpoint produces a final report bit-identical to the run
// that never stopped — outputs, CS sets, per-family traffic, ticks and
// pool accounting. A pipelined run (workload.pipeline or opt.Pipeline
// >= 1) serves the steps through a sliding window of in-flight epochs:
// outputs and CS stay bit-identical to sequential serving at any
// depth, the whole report is bit-identical at depth 1, and per-step
// traffic/tick figures sit within a sub-percent noise band at depth >
// 1 (see the mpc pipelining notes).
func RunWorkloadOpts(m *Manifest, opt WorkloadRunOptions) (*WorkloadReport, error) {
	if m.Workload == nil {
		return nil, fmt.Errorf("scenario %q: not a workload manifest (no workload section)", m.Name)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	depth := m.Workload.Pipeline
	switch {
	case opt.Pipeline > 0:
		depth = opt.Pipeline
	case opt.Pipeline < 0:
		depth = 0
	}
	if depth > 0 && (opt.CheckpointPath != "" || opt.StopAfter > 0 || opt.Resume != nil) {
		return nil, fmt.Errorf("scenario %q: pipelined serving (depth %d) is incompatible with checkpoint/resume/stop-after: Snapshot refuses mid-pipeline; force sequential serving instead", m.Name, depth)
	}
	cfg, adv := m.engineConfig()
	cfg.PerGateEval = opt.PerGateEval
	applyWorkers(&cfg, opt.Workers)
	if depth > 0 {
		cfg.RefillLowWater = m.Workload.RefillLowWater
		cfg.RefillBudget = m.Workload.RefillBudget
	}
	steps := make([]builtStep, len(m.Workload.Steps))
	budget := m.Workload.Budget
	autoBudget := budget == 0
	for i, s := range m.Workload.Steps {
		circ, err := s.Circuit.Build(m.Parties.N)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: workload.steps[%d]: circuit: %w", m.Name, i, err)
		}
		steps[i] = builtStep{spec: s, art: &RunArtifacts{
			Cfg:       cfg,
			Circuit:   circ,
			Inputs:    buildInputs(s.Inputs, m.Parties.N),
			Adversary: adv,
		}}
		if autoBudget {
			budget += circ.MulCount
		}
	}
	if budget == 0 {
		budget = 1 // all-linear workload: the engine still preprocesses once
	}

	var eng *mpc.Engine
	var rep *WorkloadReport
	var totalTicks int64
	var oneShotTotal uint64
	startIdx := 0
	eopts := mpc.EngineOptions{Adversary: adv, Tracer: opt.Tracer, Transport: opt.Transport}
	if ck := opt.Resume; ck != nil {
		if err := ck.matches(m, opt); err != nil {
			return nil, fmt.Errorf("scenario %q: resume: %w", m.Name, err)
		}
		if ck.StepsDone > len(steps) {
			return nil, fmt.Errorf("%w: checkpoint records %d completed steps, workload has %d",
				mpc.ErrBadCheckpoint, ck.StepsDone, len(steps))
		}
		var err error
		eng, err = mpc.RestoreEngineOpts(cfg, eopts, bytes.NewReader(ck.Engine))
		if err != nil {
			return nil, fmt.Errorf("scenario %q: resume: %w", m.Name, err)
		}
		rep = ck.Report
		startIdx = ck.StepsDone
		totalTicks = ck.TotalTicks
		oneShotTotal = ck.OneShotTotal
	} else {
		var err error
		eng, err = mpc.NewEngineOpts(cfg, eopts)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", m.Name, err)
		}
	}
	defer eng.Close()
	if opt.Wire != nil {
		defer func() { *opt.Wire = eng.WireStats() }()
	}
	if opt.Resume == nil {
		if _, err := eng.Preprocess(budget); err != nil {
			return nil, fmt.Errorf("scenario %q: preprocess: %w", m.Name, err)
		}
		rep = &WorkloadReport{Name: m.Name, Pass: true, Budget: budget}
	}
	if depth > 0 {
		if err := runWorkloadPipelined(m, eng, steps, rep, opt, depth, &totalTicks, &oneShotTotal); err != nil {
			return nil, err
		}
		finalizeWorkloadReport(rep, eng, len(steps), totalTicks, oneShotTotal, opt.Compare)
		return rep, nil
	}
	for i := startIdx; i < len(steps); i++ {
		s := steps[i]
		res, runErr := eng.Evaluate(s.art.Circuit, s.art.Inputs)
		if runErr != nil && isExhausted(runErr) {
			// The budgeted pool ran dry mid-workload: refill one batch
			// sized for this step and retry — the recoverable path the
			// typed exhaustion error exists for.
			if _, ferr := eng.Preprocess(max(1, s.art.Circuit.MulCount)); ferr == nil {
				res, runErr = eng.Evaluate(s.art.Circuit, s.art.Inputs)
			}
		}
		// A transport fault is an environment failure, not a protocol
		// outcome: surface it as a hard error instead of a step row.
		if runErr != nil && errors.Is(runErr, mpc.ErrTransport) {
			return nil, fmt.Errorf("scenario %q: step %d: %w", m.Name, i, runErr)
		}
		sr := workloadStepRow(m, i, s, res, runErr)
		if !sr.Pass {
			rep.Pass = false
		}
		totalTicks += sr.Ticks
		if opt.Compare {
			ref, _ := mpc.Run(s.art.Cfg, s.art.Circuit, s.art.Inputs, s.art.Adversary)
			if ref != nil {
				sr.OneShotMessages = ref.HonestMessages
				oneShotTotal += ref.HonestMessages
			}
		}
		rep.Steps = append(rep.Steps, sr)
		if opt.CheckpointPath != "" {
			// The checkpoint stores the report with its summary fields
			// unset; they are recomputed at completion from the restored
			// engine's global counters, so the resumed run's final report
			// matches the uninterrupted one exactly.
			if err := writeWorkloadCheckpoint(opt.CheckpointPath, m, opt, i+1, rep, totalTicks, oneShotTotal, eng); err != nil {
				return nil, fmt.Errorf("scenario %q: checkpoint after step %d: %w", m.Name, i, err)
			}
		}
		if opt.StopAfter > 0 && i+1 >= opt.StopAfter && i+1 < len(steps) {
			// Simulated crash: return the partial report as-is. The
			// checkpoint file (if requested) carries everything a resume
			// needs; summary fields stay unset on this partial report.
			return rep, nil
		}
	}

	finalizeWorkloadReport(rep, eng, len(steps), totalTicks, oneShotTotal, opt.Compare)
	return rep, nil
}

// builtStep pairs a workload step's spec with its built artifacts.
type builtStep struct {
	spec WorkloadStep
	art  *RunArtifacts
}

// workloadStepRow builds one step's report row from an evaluation
// outcome — shared by the sequential and pipelined serving loops so a
// depth-1 pipelined report is field-for-field comparable to a
// sequential one.
func workloadStepRow(m *Manifest, i int, s builtStep, res *mpc.Result, runErr error) WorkloadStepReport {
	sr := WorkloadStepReport{Index: i, Circuit: s.spec.Circuit.String(), Triples: s.art.Circuit.MulCount}
	if runErr != nil {
		sr.Err = errName(runErr)
	}
	var lastAbs, lastRel int64
	if res != nil {
		corrupt := map[int]bool{}
		for _, p := range m.Adversary.Corrupt() {
			corrupt[p] = true
		}
		for idx, t := range res.TerminatedAt {
			if !corrupt[idx] && t > lastAbs {
				lastAbs = t
			}
		}
		if lastAbs > 0 {
			lastRel = lastAbs - res.StartedAt
		}
		sr.CS = res.CS
		sr.HonestMessages = res.HonestMessages
		sr.HonestBytes = res.HonestBytes
		sr.ByFamily = res.ByFamily
		sr.Ticks = lastRel
		if runErr == nil {
			sr.Outputs = make([]uint64, len(res.Outputs))
			for k, o := range res.Outputs {
				sr.Outputs[k] = o.Uint64()
			}
		}
	}
	sr.Failures = assertExpect(s.spec.Expect, m.Adversary, s.art, res, runErr, lastAbs, lastRel)
	sr.Pass = len(sr.Failures) == 0
	return sr
}

// runWorkloadPipelined serves the steps through a sliding window of
// depth in-flight EvaluateAsync epochs on the one engine. Rows are
// indexed by step so the report stays in step order even though a
// submission failure can land its row while earlier steps are still in
// flight. Pool exhaustion at submit drains the window and refills via
// the same Preprocess-and-retry path as the sequential loop (the
// watermark knobs, when armed, refill in the background before it ever
// comes to that).
func runWorkloadPipelined(m *Manifest, eng *mpc.Engine, steps []builtStep, rep *WorkloadReport,
	opt WorkloadRunOptions, depth int, totalTicks *int64, oneShotTotal *uint64) error {
	rows := make([]WorkloadStepReport, len(steps))
	type inflight struct {
		idx int
		p   *mpc.PendingEval
	}
	var window []inflight
	settle := func() error {
		f := window[0]
		window = window[1:]
		res, runErr := f.p.Wait()
		if runErr != nil && errors.Is(runErr, mpc.ErrTransport) {
			return fmt.Errorf("scenario %q: step %d: %w", m.Name, f.idx, runErr)
		}
		rows[f.idx] = workloadStepRow(m, f.idx, steps[f.idx], res, runErr)
		return nil
	}
	for i, s := range steps {
		if len(window) == depth {
			if err := settle(); err != nil {
				return err
			}
		}
		p, runErr := eng.EvaluateAsync(s.art.Circuit, s.art.Inputs)
		if runErr != nil && isExhausted(runErr) {
			for len(window) > 0 {
				if err := settle(); err != nil {
					return err
				}
			}
			if err := eng.Flush(); err != nil {
				return fmt.Errorf("scenario %q: step %d: %w", m.Name, i, err)
			}
			if _, ferr := eng.Preprocess(max(1, s.art.Circuit.MulCount)); ferr == nil {
				p, runErr = eng.EvaluateAsync(s.art.Circuit, s.art.Inputs)
			}
		}
		if runErr != nil {
			if errors.Is(runErr, mpc.ErrTransport) {
				return fmt.Errorf("scenario %q: step %d: %w", m.Name, i, runErr)
			}
			rows[i] = workloadStepRow(m, i, s, nil, runErr)
			continue
		}
		window = append(window, inflight{idx: i, p: p})
	}
	for len(window) > 0 {
		if err := settle(); err != nil {
			return err
		}
	}
	if err := eng.Flush(); err != nil {
		return fmt.Errorf("scenario %q: %w", m.Name, err)
	}
	for i := range rows {
		if !rows[i].Pass {
			rep.Pass = false
		}
		*totalTicks += rows[i].Ticks
		if opt.Compare {
			s := steps[i]
			ref, _ := mpc.Run(s.art.Cfg, s.art.Circuit, s.art.Inputs, s.art.Adversary)
			if ref != nil {
				rows[i].OneShotMessages = ref.HonestMessages
				*oneShotTotal += ref.HonestMessages
			}
		}
		rep.Steps = append(rep.Steps, rows[i])
	}
	return nil
}

// finalizeWorkloadReport fills the summary fields from the engine's
// whole-session counters. Because the engine's counters are part of the
// checkpoint, a resumed run finalizes to the same figures as the run
// that never stopped.
func finalizeWorkloadReport(rep *WorkloadReport, eng *mpc.Engine, steps int, totalTicks int64, oneShotTotal uint64, compare bool) {
	st := eng.Stats()
	rep.TriplesGenerated = st.TriplesGenerated
	rep.TriplesConsumed = st.TriplesConsumed
	rep.Pool = st.Pool
	rep.PreprocessMessages = st.PreprocessMessages
	rep.PreprocessBytes = st.PreprocessBytes
	rep.EvalMessages = st.EvalMessages
	rep.EvalBytes = st.EvalBytes
	k := float64(steps)
	rep.AmortizedMsgsPerEval = float64(st.PreprocessMessages+st.EvalMessages) / k
	rep.AmortizedTicksPerEval = float64(totalTicks) / k
	if compare {
		rep.OneShotMsgsPerEval = float64(oneShotTotal) / k
		if rep.AmortizedMsgsPerEval > 0 {
			rep.Savings = rep.OneShotMsgsPerEval / rep.AmortizedMsgsPerEval
		}
	}
}

// isExhausted reports a pool-exhaustion engine error.
func isExhausted(err error) bool {
	return errors.Is(err, mpc.ErrTriplesExhausted)
}

// builtinWorkloads is the registry of named built-in workloads, kept
// separate from the one-shot scenario registry: workload manifests run
// through RunWorkload, not Run.
var builtinWorkloads = map[string]*Manifest{}

func registerWorkload(m *Manifest) {
	if _, dup := builtinWorkloads[m.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate builtin workload %q", m.Name))
	}
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("scenario: invalid builtin workload: %v", err))
	}
	builtinWorkloads[m.Name] = m
}

// WorkloadNames returns the sorted names of the built-in workloads.
func WorkloadNames() []string {
	out := make([]string, 0, len(builtinWorkloads))
	for name := range builtinWorkloads {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// BuiltinWorkloads returns the built-in workloads sorted by name.
func BuiltinWorkloads() []*Manifest {
	out := make([]*Manifest, 0, len(builtinWorkloads))
	for _, name := range WorkloadNames() {
		out = append(out, builtinWorkloads[name])
	}
	return out
}

// LookupWorkload returns the built-in workload with the given name.
func LookupWorkload(name string) (*Manifest, error) {
	m, ok := builtinWorkloads[name]
	if !ok {
		return nil, fmt.Errorf("scenario: no builtin workload named %q (see WorkloadNames)", name)
	}
	return m, nil
}

func init() {
	honestStep := func(c CircuitSpec, minAgree int) WorkloadStep {
		return WorkloadStep{Circuit: c, Expect: Expect{
			Consistent: true, AllHonestTerminate: true, MinAgreement: minAgree,
		}}
	}
	// workload-amortize-sync is the acceptance workload: eight mixed
	// evaluations over one engine, all honest, auto budget — the
	// fixed-seed manifest behind `make workload-smoke`.
	registerWorkload(&Manifest{
		Name:        "workload-amortize-sync",
		Description: "8 mixed evaluations over one engine, n=5, auto triple budget (amortization headline)",
		Parties:     boundaryN5, Network: syncNet(), Seed: 1,
		Workload: &WorkloadSpec{Steps: []WorkloadStep{
			honestStep(CircuitSpec{Family: "product"}, 5),
			honestStep(CircuitSpec{Family: "sum"}, 5),
			honestStep(CircuitSpec{Family: "stats"}, 5),
			honestStep(CircuitSpec{Family: "polyeval", Coeffs: []uint64{7, 3, 1}}, 5),
			honestStep(CircuitSpec{Family: "membership"}, 5),
			honestStep(CircuitSpec{Family: "depth", Depth: 2}, 5),
			honestStep(CircuitSpec{Family: "product"}, 5),
			honestStep(CircuitSpec{Family: "stats"}, 5),
		}},
	})
	// workload-refill-sync deliberately under-budgets the pool so the
	// engine hits the typed exhaustion error mid-workload and recovers
	// through a refill batch.
	registerWorkload(&Manifest{
		Name:        "workload-refill-sync",
		Description: "under-budgeted pool: exhaustion mid-workload, refill batch, service continues",
		Parties:     boundaryN5, Network: syncNet(), Seed: 2,
		Workload: &WorkloadSpec{Budget: 4, Steps: []WorkloadStep{
			honestStep(CircuitSpec{Family: "product"}, 5),
			honestStep(CircuitSpec{Family: "product"}, 5),
			honestStep(CircuitSpec{Family: "product"}, 5),
		}},
	})
	// workload-pipeline-sync serves eight evaluations through a depth-4
	// pipeline on a fully budgeted pool: the smoke target runs it forced
	// sequential and at depth 1 (reports must be bit-identical) and at
	// its native depth 4 twice (reports must be deterministic).
	registerWorkload(&Manifest{
		Name:        "workload-pipeline-sync",
		Description: "8 evaluations through a depth-4 pipeline on one engine, n=5, auto triple budget",
		Parties:     boundaryN5, Network: syncNet(), Seed: 1,
		Workload: &WorkloadSpec{Pipeline: 4, Steps: []WorkloadStep{
			honestStep(CircuitSpec{Family: "product"}, 5),
			honestStep(CircuitSpec{Family: "sum"}, 5),
			honestStep(CircuitSpec{Family: "stats"}, 5),
			honestStep(CircuitSpec{Family: "polyeval", Coeffs: []uint64{7, 3, 1}}, 5),
			honestStep(CircuitSpec{Family: "membership"}, 5),
			honestStep(CircuitSpec{Family: "depth", Depth: 2}, 5),
			honestStep(CircuitSpec{Family: "product"}, 5),
			honestStep(CircuitSpec{Family: "stats"}, 5),
		}},
	})
	// workload-pipeline-refill-sync under-budgets the pool and arms the
	// watermark: background refills land while pipelined epochs advance,
	// so the serving loop never hits the exhaustion-retry path.
	registerWorkload(&Manifest{
		Name:        "workload-pipeline-refill-sync",
		Description: "depth-4 pipeline on an under-budgeted pool with watermark-triggered background refills",
		Parties:     boundaryN5, Network: syncNet(), Seed: 2,
		Workload: &WorkloadSpec{
			Budget: 8, Pipeline: 4, RefillLowWater: 8, RefillBudget: 16,
			Steps: []WorkloadStep{
				honestStep(CircuitSpec{Family: "product"}, 5),
				honestStep(CircuitSpec{Family: "product"}, 5),
				honestStep(CircuitSpec{Family: "stats"}, 5),
				honestStep(CircuitSpec{Family: "product"}, 5),
				honestStep(CircuitSpec{Family: "stats"}, 5),
				honestStep(CircuitSpec{Family: "product"}, 5),
			},
		},
	})
	// workload-adversarial-sync keeps the engine serving under a
	// full-budget adversary (one garbler, one crash) at the flagship
	// configuration.
	registerWorkload(&Manifest{
		Name:        "workload-adversarial-sync",
		Description: "n=8 engine serving 4 evaluations with a garbling and a silent corruption",
		Parties:     flagship, Network: syncNet(), Seed: 3,
		Adversary: AdversarySpec{Garble: []int{3}, Silent: []int{6}},
		Workload: &WorkloadSpec{Steps: []WorkloadStep{
			{Circuit: CircuitSpec{Family: "sum"}, Expect: Expect{Consistent: true, MinAgreement: 6}},
			{Circuit: CircuitSpec{Family: "product"}, Expect: Expect{Consistent: true, MinAgreement: 6}},
			{Circuit: CircuitSpec{Family: "stats"}, Expect: Expect{Consistent: true, MinAgreement: 6}},
			{Circuit: CircuitSpec{Family: "matmul"}, Expect: Expect{Consistent: true, MinAgreement: 6}},
		}},
	})
}
