// Command bobw runs one best-of-both-worlds MPC evaluation from the
// command line and reports outputs, agreement set, timing and
// communication metrics.
//
// Examples:
//
//	bobw -n 8 -ts 2 -ta 1 -network sync  -circuit sum
//	bobw -n 8 -ts 2 -ta 1 -network async -circuit product -garble 3 -seed 7
//	bobw -n 5 -ts 1 -ta 1 -network async -circuit depth -dm 4 -synconly
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/circuit"
	"repro/field"
	"repro/mpc"
)

func main() {
	var (
		n        = flag.Int("n", 8, "number of parties")
		ts       = flag.Int("ts", 2, "synchronous corruption threshold")
		ta       = flag.Int("ta", 1, "asynchronous corruption threshold")
		network  = flag.String("network", "sync", "network model: sync|async")
		circName = flag.String("circuit", "sum", "circuit: sum|product|dot|stats|membership|depth")
		dm       = flag.Int("dm", 3, "multiplicative depth for -circuit depth")
		seed     = flag.Uint64("seed", 1, "deterministic run seed")
		delta    = flag.Int64("delta", 10, "synchronous bound Δ in ticks")
		garble   = flag.String("garble", "", "comma-separated Byzantine parties sending garbage")
		silent   = flag.String("silent", "", "comma-separated crashed-from-start parties")
		starve   = flag.String("starve", "", "async: comma-separated parties whose links are starved")
		syncOnly = flag.Bool("synconly", false, "disable fallback paths (pure-SMPC baseline)")
		inputCSV = flag.String("inputs", "", "comma-separated party inputs (default 1..n)")
	)
	flag.Parse()

	var circ *circuit.Circuit
	switch *circName {
	case "sum":
		circ = circuit.Sum(*n)
	case "product":
		circ = circuit.Product(*n)
	case "dot":
		if *n%2 != 0 {
			fatal("dot circuit needs an even party count")
		}
		circ = circuit.DotProduct(*n / 2)
	case "stats":
		circ = circuit.SumAndVariancePieces(*n)
	case "membership":
		circ = circuit.SetMembership(*n)
	case "depth":
		circ = circuit.DepthChain(*n, *dm)
	default:
		fatal("unknown circuit %q", *circName)
	}

	inputs := make([]field.Element, *n)
	for i := range inputs {
		inputs[i] = field.New(uint64(i + 1))
	}
	if *inputCSV != "" {
		vals := parseInts(*inputCSV)
		if len(vals) != *n {
			fatal("-inputs needs exactly %d values", *n)
		}
		for i, v := range vals {
			inputs[i] = field.New(uint64(v))
		}
	}

	adv := &mpc.Adversary{
		Garble:     parseInts(*garble),
		Silent:     parseInts(*silent),
		StarveFrom: parseInts(*starve),
	}

	cfg := mpc.Config{
		N: *n, Ts: *ts, Ta: *ta,
		Network:  mpc.Network(*network),
		Delta:    *delta,
		Seed:     *seed,
		SyncOnly: *syncOnly,
	}
	res, err := mpc.Run(cfg, circ, inputs, adv)
	if err != nil {
		fatal("run failed: %v", err)
	}

	fmt.Printf("circuit            %s (cM=%d, DM=%d)\n", *circName, circ.MulCount, circ.MulDepth)
	fmt.Printf("network            %s (Δ=%d)\n", *network, *delta)
	fmt.Printf("outputs            %v\n", res.Outputs)
	fmt.Printf("input providers    %v\n", res.CS)
	var last int64
	for _, t := range res.TerminatedAt {
		if t > last {
			last = t
		}
	}
	fmt.Printf("terminated by      tick %d (derived bound %d, paper bound %d)\n",
		last, res.Deadline, res.PaperDeadline)
	fmt.Printf("honest traffic     %d messages, %d bytes\n", res.HonestMessages, res.HonestBytes)
	fmt.Printf("simulation events  %d\n", res.Events)
}

func parseInts(csv string) []int {
	if csv == "" {
		return nil
	}
	var out []int
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal("bad integer %q", s)
		}
		out = append(out, v)
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
