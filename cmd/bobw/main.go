// Command bobw runs one best-of-both-worlds MPC evaluation from the
// command line and reports outputs, agreement set, timing and
// communication metrics. The flags assemble a scenario manifest (see
// docs/scenarios.md); use -manifest to print it instead of running,
// e.g. to seed a file for cmd/scenario.
//
// Examples:
//
//	bobw -n 8 -ts 2 -ta 1 -network sync  -circuit sum
//	bobw -n 8 -ts 2 -ta 1 -network async -circuit product -garble 3 -seed 7
//	bobw -n 5 -ts 1 -ta 1 -network async -circuit depth -dm 4 -synconly
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/mpc"
	"repro/scenario"
)

func main() {
	var (
		n        = flag.Int("n", 8, "number of parties")
		ts       = flag.Int("ts", 2, "synchronous corruption threshold")
		ta       = flag.Int("ta", 1, "asynchronous corruption threshold")
		network  = flag.String("network", "sync", "network model: sync|async")
		circName = flag.String("circuit", "sum", "circuit: "+strings.Join(scenario.Families(), "|"))
		dm       = flag.Int("dm", 3, "multiplicative depth for -circuit depth")
		coeffs   = flag.String("coeffs", "7,3,2", "comma-separated ascending coefficients for -circuit polyeval")
		seed     = flag.Uint64("seed", 1, "deterministic run seed")
		delta    = flag.Int64("delta", 10, "synchronous bound Δ in ticks")
		garble   = flag.String("garble", "", "comma-separated Byzantine parties sending garbage")
		silent   = flag.String("silent", "", "comma-separated crashed-from-start parties")
		starve   = flag.String("starve", "", "async: comma-separated parties whose links are starved")
		syncOnly = flag.Bool("synconly", false, "disable fallback paths (pure-SMPC baseline)")
		inputCSV = flag.String("inputs", "", "comma-separated party inputs (default 1..n)")
		manifest = flag.Bool("manifest", false, "print the run as a scenario manifest and exit")
	)
	flag.Parse()

	m := &scenario.Manifest{
		Name:    "bobw-cli",
		Parties: scenario.Parties{N: *n, Ts: *ts, Ta: *ta},
		Network: scenario.NetworkSpec{Kind: *network, Delta: *delta},
		Adversary: scenario.AdversarySpec{
			Garble:     parseInts(*garble),
			Silent:     parseInts(*silent),
			StarveFrom: parseInts(*starve),
		},
		Circuit:  scenario.CircuitSpec{Family: *circName},
		Seed:     *seed,
		SyncOnly: *syncOnly,
	}
	if *circName == "depth" {
		m.Circuit.Depth = *dm
	}
	if *circName == "polyeval" {
		for _, v := range parseInts(*coeffs) {
			m.Circuit.Coeffs = append(m.Circuit.Coeffs, uint64(v))
		}
	}
	if *inputCSV != "" {
		for _, v := range parseInts(*inputCSV) {
			m.Inputs = append(m.Inputs, uint64(v))
		}
	}
	if *manifest {
		fmt.Printf("%s\n", m.JSON())
		return
	}

	art, err := scenario.Build(m)
	if err != nil {
		fatal("%v", err)
	}
	res, err := mpc.Run(art.Cfg, art.Circuit, art.Inputs, art.Adversary)
	if err != nil {
		fatal("run failed: %v", err)
	}

	circ := art.Circuit
	fmt.Printf("circuit            %s (cM=%d, DM=%d)\n", m.Circuit, circ.MulCount, circ.MulDepth)
	fmt.Printf("network            %s (Δ=%d)\n", *network, *delta)
	fmt.Printf("outputs            %v\n", res.Outputs)
	fmt.Printf("input providers    %v\n", res.CS)
	var last int64
	for _, t := range res.TerminatedAt {
		if t > last {
			last = t
		}
	}
	fmt.Printf("terminated by      tick %d (derived bound %d, paper bound %d)\n",
		last, res.Deadline, res.PaperDeadline)
	fmt.Printf("honest traffic     %d messages, %d bytes\n", res.HonestMessages, res.HonestBytes)
	fmt.Printf("simulation events  %d\n", res.Events)
}

func parseInts(csv string) []int {
	if csv == "" {
		return nil
	}
	var out []int
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal("bad integer %q", s)
		}
		out = append(out, v)
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
