package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI is tested end to end by re-executing the test binary as the
// scenario command: TestMain diverts to main() when the marker
// environment variable is set, so every table entry below exercises
// the real verb dispatch, flag parsing and exit codes.
const cliMarker = "SCENARIO_CLI_UNDER_TEST"

func TestMain(m *testing.M) {
	if os.Getenv(cliMarker) == "1" {
		main()
		os.Exit(0) // a main() that returns means success
	}
	os.Exit(m.Run())
}

// runCLI invokes the test binary as the scenario CLI.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, exitCode int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), cliMarker+"=1")
	var out, errBuf strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("exec: %v", err)
	}
	return out.String(), errBuf.String(), code
}

func TestVerbDispatch(t *testing.T) {
	badManifest := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badManifest, []byte(`{"name":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name     string
		args     []string
		wantCode int
		wantOut  string // substring of stdout
		wantErr  string // substring of stderr
	}{
		{"no verb", nil, 2, "", "usage: scenario"},
		{"help", []string{"help"}, 2, "", "usage: scenario"},
		{"unknown verb", []string{"frobnicate"}, 1, "", "unknown subcommand"},
		{"list", []string{"list"}, 0, "sync-random-circuit", ""},
		{"list json", []string{"list", "-json"}, 0, `"name": "async-equivocate-burst"`, ""},
		{"validate builtins", []string{"validate"}, 0, "manifests valid", ""},
		{"validate named", []string{"validate", "sync-sum-honest"}, 0, "ok   sync-sum-honest", ""},
		{"validate unknown name", []string{"validate", "no-such-scenario"}, 1, "", "no builtin named"},
		{"validate bad file", []string{"validate", "-f", badManifest}, 1, "", "need at least 4 parties"},
		{"run needs names", []string{"run"}, 2, "", "Usage of scenario run"},
		{"run one scenario", []string{"run", "sync-boundary-n5"}, 0, "PASS sync-boundary-n5", ""},
		{"sweep bad seed range", []string{"sweep", "-seeds", "9..1", "sync-sum-honest"}, 1, "", "bad seed range"},
		{"fuzz rejects positional args", []string{"fuzz", "extra"}, 1, "", "no positional arguments"},
		{"fuzz bad inject", []string{"fuzz", "-inject", "nope"}, 1, "", "unknown -inject mode"},
		{"fuzz replay missing file", []string{"fuzz", "-replay", "/no/such/file.json"}, 1, "", "no such file"},
		{"workload needs names", []string{"workload"}, 2, "", "Usage of scenario workload"},
		{"workload unknown name", []string{"workload", "no-such-workload"}, 1, "", "no builtin workload named"},
		{"workload all-and-names conflict", []string{"workload", "--all", "workload-refill-sync"}, 1, "", "cannot be combined"},
		{"list shows workloads", []string{"list"}, 0, "workload-amortize-sync", ""},
		{"trace needs a name", []string{"trace"}, 2, "", "Usage of scenario trace"},
		{"trace unknown name", []string{"trace", "no-such-thing"}, 1, "", "no builtin scenario or workload"},
		{"trace validate is exclusive", []string{"trace", "-validate", "x.json", "sync-sum-honest"}, 1, "", "-validate takes no other"},
		{"fuzz trace needs replay", []string{"fuzz", "-trace"}, 1, "", "-trace/-trace-out require -replay"},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			stdout, stderr, code := runCLI(t, tt.args...)
			if code != tt.wantCode {
				t.Errorf("exit code %d, want %d\nstdout: %s\nstderr: %s", code, tt.wantCode, stdout, stderr)
			}
			if tt.wantOut != "" && !strings.Contains(stdout, tt.wantOut) {
				t.Errorf("stdout missing %q:\n%s", tt.wantOut, stdout)
			}
			if tt.wantErr != "" && !strings.Contains(stderr, tt.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tt.wantErr, stderr)
			}
		})
	}
}

// TestWorkloadVerbEndToEnd drives the session-engine workload verb:
// the fixed-seed amortization builtin passes -require-savings, a
// workload file with an impossible step budget fails with exit 1, and
// JSON output carries the amortization summary.
func TestWorkloadVerbEndToEnd(t *testing.T) {
	stdout, stderr, code := runCLI(t, "workload", "-require-savings", "workload-amortize-sync")
	if code != 0 {
		t.Fatalf("amortization workload exited %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "PASS workload-amortize-sync") || !strings.Contains(stdout, "one-shot") {
		t.Fatalf("amortization summary missing:\n%s", stdout)
	}

	stdout, _, code = runCLI(t, "workload", "-compare=false", "-json", "workload-refill-sync")
	if code != 0 {
		t.Fatalf("json workload exited %d\n%s", code, stdout)
	}
	if !strings.Contains(stdout, `"amortizedMsgsPerEval"`) || !strings.Contains(stdout, `"triplesGenerated"`) {
		t.Fatalf("JSON report missing amortization fields:\n%s", stdout)
	}

	failing := filepath.Join(t.TempDir(), "wl.json")
	manifest := `{
  "name": "wl-too-slow",
  "parties": {"n": 5, "ts": 1, "ta": 1},
  "network": {"kind": "sync", "delta": 10},
  "seed": 1,
  "workload": {"steps": [{"circuit": {"family": "sum"}, "expect": {"maxTicks": 1}}]}
}`
	if err := os.WriteFile(failing, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code = runCLI(t, "workload", "-f", failing, "-compare=false")
	if code != 1 {
		t.Fatalf("failing workload exited %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "maxTicks") {
		t.Fatalf("step assertion failure not reported:\n%s", stdout)
	}
}

// TestTraceVerbEndToEnd drives the trace verb: a traced builtin run
// prints the timeline summary, exports Chrome + JSONL files, and the
// exported Chrome trace passes the verb's own validator.
func TestTraceVerbEndToEnd(t *testing.T) {
	dir := t.TempDir()
	chrome := filepath.Join(dir, "trace.json")
	jsonl := filepath.Join(dir, "events.jsonl")
	stdout, stderr, code := runCLI(t, "trace", "-out", chrome, "-jsonl", jsonl, "sync-sum-honest")
	if code != 0 {
		t.Fatalf("trace exited %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	for _, want := range []string{"per-family delivery latency", "phases:", "activity timeline"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("summary missing %q:\n%s", want, stdout)
		}
	}
	for _, path := range []string{chrome, jsonl} {
		if st, err := os.Stat(path); err != nil || st.Size() == 0 {
			t.Fatalf("export %s missing or empty (%v)", path, err)
		}
	}
	stdout, stderr, code = runCLI(t, "trace", "-validate", chrome)
	if code != 0 || !strings.Contains(stdout, "valid Chrome trace") {
		t.Fatalf("validate exited %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

// TestFuzzVerbEndToEnd drives the full injected pipeline through the
// CLI: campaign fails, counterexamples are written, replay of a
// written counterexample reproduces the violation with exit 1.
func TestFuzzVerbEndToEnd(t *testing.T) {
	dir := t.TempDir()
	stdout, stderr, code := runCLI(t,
		"fuzz", "-trials", "2", "-seed", "1", "-inject", "over-budget", "-out", dir)
	if code != 1 {
		t.Fatalf("injected campaign exited %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "corruption-budget") {
		t.Fatalf("violation not reported:\n%s", stdout)
	}
	ces, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(ces) != 2 {
		t.Fatalf("want 2 counterexample files, got %v (%v)", ces, err)
	}
	stdout, _, code = runCLI(t, "fuzz", "-replay", ces[0])
	if code != 1 {
		t.Fatalf("replay of a counterexample exited %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "FAIL") || !strings.Contains(stdout, "corruption-budget") {
		t.Fatalf("replay did not reproduce the violation:\n%s", stdout)
	}

	// A passing campaign exits 0 and reports every trial passed.
	stdout, stderr, code = runCLI(t, "fuzz", "-trials", "2", "-seed", "9")
	if code != 0 {
		t.Fatalf("clean campaign exited %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "2/2 trials passed") {
		t.Fatalf("campaign summary missing:\n%s", stdout)
	}
}
