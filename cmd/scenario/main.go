// Command scenario names, validates and batch-runs declarative MPC
// scenarios: JSON manifests describing parties, network, adversary,
// circuit, seed and expected outcome (see docs/scenarios.md).
//
// Subcommands:
//
//	scenario list     [-json]
//	scenario validate [-f file.json] [name ...]
//	scenario run      [-f file.json] [-parallel N] [-workers n] [-json] [-trace] [-trace-out dir] [--all | name ...]
//	scenario sweep    [-seeds A..B] [-parallel N] [-json] [--all | name ...]
//	scenario workload [-f file.json] [-json] [-compare] [-require-savings] [-trace] [-trace-out dir]
//	                  [-checkpoint file] [-resume file] [-stop-after k] [-pipeline n] [-workers n] [--all | name ...]
//	scenario checkpoint [-json] file
//	scenario fuzz     [-trials N] [-seed S] [-parallel N] [-json] [-out dir]
//	scenario fuzz     -crash -trials N [-seed S] [-json]
//	scenario fuzz     -replay counterexample.json [-trace] [-trace-out dir]
//	scenario trace    [-f file.json] [-out chrome.json] [-jsonl events.jsonl] [name]
//	scenario trace    -validate chrome.json
//	scenario deploy   [-f set.json] [-backend sim|unix|tcp] [-json] [-out report.json] [name]
//	scenario serve    [-f set.json] [-backend sim|unix|tcp] [-rounds N] [-json] [name]
//	scenario bench    [-out BENCH_PR3.json] [-out5 BENCH_PR5.json] [-out6 BENCH_PR6.json] [-out7 BENCH_PR7.json] [-out8 BENCH_PR8.json]
//	                  [-out9 BENCH_PR9.json] [-out10 BENCH_PR10.json]
//
// Examples:
//
//	scenario run --all -parallel 4
//	scenario deploy deploy-unix-n5
//	scenario deploy -backend sim -out /tmp/sim.json deploy-unix-n5
//	scenario serve -rounds 2 deploy-unix-n5-workload
//	scenario run sync-garble-ts async-starved-links
//	scenario validate -f examples/scenarios/async-starvation.json
//	scenario sweep -seeds 1..16 sync-sum-honest
//	scenario workload --all -require-savings
//	scenario workload workload-amortize-sync -json
//	scenario workload -checkpoint /tmp/wl.ckpt -stop-after 3 workload-amortize-sync
//	scenario checkpoint /tmp/wl.ckpt
//	scenario workload -resume /tmp/wl.ckpt workload-amortize-sync
//	scenario fuzz -trials 200 -seed 1 -out /tmp/ce
//	scenario fuzz -crash -trials 20 -seed 1
//	scenario fuzz -replay /tmp/ce/fuzz-s1-t4-min.json
//	scenario trace -out /tmp/trace.json workload-amortize-sync
//	scenario trace -validate /tmp/trace.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/fuzzer"
	"repro/internal/bench"
	"repro/internal/obs"
	"repro/mpc"
	"repro/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		cmdList(os.Args[2:])
	case "validate":
		cmdValidate(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "sweep":
		cmdSweep(os.Args[2:])
	case "workload":
		cmdWorkload(os.Args[2:])
	case "checkpoint":
		cmdCheckpoint(os.Args[2:])
	case "fuzz":
		cmdFuzz(os.Args[2:])
	case "trace":
		cmdTrace(os.Args[2:])
	case "deploy":
		cmdDeploy(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "bench":
		cmdBench(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fatal("unknown subcommand %q (want list, validate, run, sweep, workload, checkpoint, fuzz, trace, deploy, serve or bench)", os.Args[1])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: scenario <list|validate|run|sweep|workload|checkpoint|fuzz|trace|deploy|serve|bench> [flags] [--all | name ...]")
	fmt.Fprintln(os.Stderr, "run 'scenario <subcommand> -h' for subcommand flags")
	os.Exit(2)
}

// traceDelta returns the manifest's Δ for trace annotation (the
// engine's default when unset).
func traceDelta(m *scenario.Manifest) int64 {
	if m.Network.Delta != 0 {
		return m.Network.Delta
	}
	return 10
}

// writeTraceFiles exports a collected event stream: Chrome trace JSON
// to chromePath and/or raw JSONL to jsonlPath ("" skips either).
func writeTraceFiles(col *obs.Collector, n int, chromePath, jsonlPath string) {
	write := func(path string, fn func(io.Writer) error) {
		f, err := os.Create(path)
		if err != nil {
			fatal("%v", err)
		}
		if err := fn(f); err != nil {
			f.Close()
			fatal("%s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			fatal("%s: %v", path, err)
		}
	}
	if chromePath != "" {
		write(chromePath, func(w io.Writer) error { return obs.WriteChromeTrace(w, col.Events(), n) })
	}
	if jsonlPath != "" {
		write(jsonlPath, func(w io.Writer) error { return obs.WriteJSONL(w, col.Events()) })
	}
}

// traceOutPaths derives the per-manifest export paths under dir ("" =
// no file export requested).
func traceOutPaths(dir, name string) (chromePath, jsonlPath string) {
	if dir == "" {
		return "", ""
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal("%v", err)
	}
	return filepath.Join(dir, name+".trace.json"), filepath.Join(dir, name+".jsonl")
}

// cmdTrace runs one builtin scenario or workload (or a single-manifest
// file) with tracing on and renders the text timeline summary:
// per-family round-latency histograms, pool-depth timeline, phase
// spans. -out/-jsonl additionally export the trace; -validate instead
// checks an existing Chrome trace file and exits.
func cmdTrace(args []string) {
	fs := flag.NewFlagSet("scenario trace", flag.ExitOnError)
	file := fs.String("f", "", "trace the manifest in a JSON `file` (exactly one) instead of a builtin")
	out := fs.String("out", "", "write Chrome trace-event JSON (Perfetto-loadable) to `file`")
	jsonl := fs.String("jsonl", "", "write the raw event stream as JSONL to `file`")
	validate := fs.String("validate", "", "validate an existing Chrome trace `file` and exit (runs nothing)")
	fs.Parse(args)

	if *validate != "" {
		if *file != "" || *out != "" || *jsonl != "" || fs.NArg() > 0 {
			fatal("-validate takes no other flags or arguments")
		}
		data, err := os.ReadFile(*validate)
		if err != nil {
			fatal("%v", err)
		}
		if err := obs.ValidateChromeTrace(data); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("%s: valid Chrome trace\n", *validate)
		return
	}

	var m *scenario.Manifest
	switch {
	case *file != "":
		if fs.NArg() > 0 {
			fatal("-f cannot be combined with a builtin name")
		}
		ms, err := scenario.LoadFile(*file)
		if err != nil {
			fatal("%v", err)
		}
		if len(ms) != 1 {
			fatal("trace runs exactly one manifest; %s holds %d", *file, len(ms))
		}
		m = ms[0]
	case fs.NArg() == 1:
		name := fs.Arg(0)
		var err error
		if m, err = scenario.Lookup(name); err != nil {
			var werr error
			if m, werr = scenario.LookupWorkload(name); werr != nil {
				fatal("no builtin scenario or workload named %q", name)
			}
		}
	default:
		fs.Usage()
		os.Exit(2)
	}

	col := obs.NewCollector()
	pass := true
	if m.Workload != nil {
		rep, err := scenario.RunWorkloadTraced(m, false, col)
		if err != nil {
			fatal("%v", err)
		}
		pass = rep.Pass
		fmt.Printf("workload %s: %d evals, pool %d/%d used\n",
			rep.Name, len(rep.Steps), rep.TriplesConsumed, rep.TriplesGenerated)
	} else {
		rep, err := scenario.RunTraced(m, col)
		if err != nil {
			fatal("%v", err)
		}
		pass = rep.Pass
		fmt.Printf("scenario %s: t=%d |CS|=%d\n", rep.Name, rep.LastTick, len(rep.CS))
	}
	fmt.Print(obs.Summarize(col.Events(), traceDelta(m)).String())
	writeTraceFiles(col, m.Parties.N, *out, *jsonl)
	if *out != "" {
		fmt.Printf("chrome trace: %s (load at ui.perfetto.dev)\n", *out)
	}
	if *jsonl != "" {
		fmt.Printf("jsonl trace: %s\n", *jsonl)
	}
	if !pass {
		fatal("%s: assertions failed (trace still written)", m.Name)
	}
}

// cmdWorkload runs session-engine workload manifests: one mpc.Engine
// per manifest, one amortized preprocessing, the steps' evaluations in
// sequence, with per-evaluation and amortized message/tick costs (see
// docs/architecture.md).
func cmdWorkload(args []string) {
	fs := flag.NewFlagSet("scenario workload", flag.ExitOnError)
	file := fs.String("f", "", "run workload manifests from a JSON `file` instead of builtins")
	all := fs.Bool("all", false, "run every builtin workload")
	compare := fs.Bool("compare", true, "also run each step as an independent one-shot mpc.Run and report the amortization ratio")
	requireSavings := fs.Bool("require-savings", false, "fail unless amortized msgs/eval beats the one-shot msgs/eval (implies -compare)")
	jsonOut := fs.Bool("json", false, "emit reports as JSON")
	trace := fs.Bool("trace", false, "trace each workload and print its timeline summary")
	traceOut := fs.String("trace-out", "", "write per-workload Chrome trace + JSONL files into `dir` (implies tracing)")
	ckptPath := fs.String("checkpoint", "", "write a crash-safe resume checkpoint to `file` after every completed step (single workload only)")
	resumePath := fs.String("resume", "", "resume the workload from a checkpoint `file` instead of starting fresh (single workload only)")
	stopAfter := fs.Int("stop-after", 0, "stop after `k` completed steps — a simulated crash for checkpoint testing (single workload only)")
	pipeline := fs.Int("pipeline", 0, "override the manifest's serving depth: `n` > 0 pipelines n in-flight evaluations, -1 forces sequential serving, 0 keeps the manifest's")
	workers := fs.Int("workers", 0, "override the manifest's intra-tick worker-pool size: `n` > 0 forces n workers, -1 forces the serial loop, 0 keeps the manifest's (reports are bit-identical either way)")
	fs.Parse(args)
	var ms []*scenario.Manifest
	switch {
	case *file != "":
		if *all || fs.NArg() > 0 {
			fatal("-f cannot be combined with --all or workload names")
		}
		loaded, err := scenario.LoadFile(*file)
		if err != nil {
			fatal("%v", err)
		}
		ms = loaded
	case *all:
		if fs.NArg() > 0 {
			fatal("--all cannot be combined with workload names")
		}
		ms = scenario.BuiltinWorkloads()
	case fs.NArg() == 0:
		fs.Usage()
		os.Exit(2)
	default:
		for _, name := range fs.Args() {
			m, err := scenario.LookupWorkload(name)
			if err != nil {
				fatal("%v", err)
			}
			ms = append(ms, m)
		}
	}
	doCompare := *compare || *requireSavings
	doTrace := *trace || *traceOut != ""
	checkpointing := *ckptPath != "" || *resumePath != "" || *stopAfter > 0
	if checkpointing && len(ms) != 1 {
		fatal("-checkpoint/-resume/-stop-after operate on exactly one workload, have %d", len(ms))
	}
	var resume *scenario.WorkloadCheckpoint
	if *resumePath != "" {
		ck, err := scenario.LoadWorkloadCheckpoint(*resumePath)
		if err != nil {
			fatal("%s: %v", *resumePath, err)
		}
		resume = ck
	}
	var reps []*scenario.WorkloadReport
	failed := 0
	for _, m := range ms {
		var col *obs.Collector
		var tr obs.Tracer
		if doTrace {
			col = obs.NewCollector()
			tr = col
		}
		rep, err := scenario.RunWorkloadOpts(m, scenario.WorkloadRunOptions{
			Compare:        doCompare,
			Tracer:         tr,
			CheckpointPath: *ckptPath,
			StopAfter:      *stopAfter,
			Resume:         resume,
			Pipeline:       *pipeline,
			Workers:        *workers,
		})
		if err != nil {
			fatal("%s: %v", m.Name, err)
		}
		if *stopAfter > 0 && len(rep.Steps) < len(m.Workload.Steps) {
			// Simulated crash: report where we stopped and skip the
			// summary/assertion gates — the run is intentionally partial.
			if *jsonOut {
				emitJSON(rep)
			} else {
				fmt.Printf("STOP %-28s %d/%d evals done (resume with -resume %s)\n",
					rep.Name, len(rep.Steps), len(m.Workload.Steps), *ckptPath)
			}
			return
		}
		if doTrace {
			if *trace && !*jsonOut {
				fmt.Print(obs.Summarize(col.Events(), traceDelta(m)).String())
			}
			chromePath, jsonlPath := traceOutPaths(*traceOut, m.Name)
			writeTraceFiles(col, m.Parties.N, chromePath, jsonlPath)
		}
		reps = append(reps, rep)
		bad := !rep.Pass
		if *requireSavings && rep.Savings <= 1 {
			bad = true
			fmt.Fprintf(os.Stderr, "%s: amortized %.0f msgs/eval is not below the one-shot %.0f msgs/eval\n",
				rep.Name, rep.AmortizedMsgsPerEval, rep.OneShotMsgsPerEval)
		}
		if bad {
			failed++
		}
	}
	if *jsonOut {
		emitJSON(reps)
	} else {
		for _, rep := range reps {
			status := "PASS"
			if !rep.Pass {
				status = "FAIL"
			}
			fmt.Printf("%-4s %-28s %d evals  pool %d/%d used  amortized %.0f msgs/eval",
				status, rep.Name, len(rep.Steps), rep.TriplesConsumed, rep.TriplesGenerated, rep.AmortizedMsgsPerEval)
			if doCompare {
				fmt.Printf("  one-shot %.0f (%.2fx)", rep.OneShotMsgsPerEval, rep.Savings)
			}
			fmt.Println()
			for _, s := range rep.Steps {
				fmt.Printf("     step %d %-12s t=%-6d %8d msgs |CS|=%d\n",
					s.Index, s.Circuit, s.Ticks, s.HonestMessages, len(s.CS))
				for _, f := range s.Failures {
					fmt.Printf("         assertion failed: %s\n", f)
				}
			}
		}
	}
	if failed > 0 {
		fatal("%d workload(s) failed", failed)
	}
	if !*jsonOut {
		fmt.Printf("%d workload(s) passed\n", len(reps))
	}
}

// cmdCheckpoint inspects a checkpoint file — either a workload
// checkpoint written by `scenario workload -checkpoint` or a bare
// engine checkpoint from mpc.Engine.Snapshot — and prints the resume
// position, config summary and pool depth without rebuilding an engine.
func cmdCheckpoint(args []string) {
	fs := flag.NewFlagSet("scenario checkpoint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the summary as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal("checkpoint inspects exactly one file, have %d arguments", fs.NArg())
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	printEngine := func(prefix string, ei *mpc.CheckpointInfo) {
		fmt.Printf("%sformat:        engine checkpoint v%d\n", prefix, ei.Version)
		fmt.Printf("%sconfig:        n=%d ts=%d ta=%d seed=%d net=%s\n",
			prefix, ei.Config.N, ei.Config.Ts, ei.Config.Ta, ei.Config.Seed, ei.Config.Network)
		if ei.Adversary != nil {
			adv, _ := json.Marshal(ei.Adversary)
			fmt.Printf("%sadversary:     %s\n", prefix, adv)
		}
		fmt.Printf("%sclock:         t=%d, %d epochs, %d evaluations\n", prefix, ei.Now, ei.Epochs, ei.Evaluations)
		fmt.Printf("%spool:          %d available, %d reserved, %d generated over %d batches\n",
			prefix, ei.Pool.Available, ei.Pool.Reserved, ei.Pool.Generated, ei.Pool.Batches)
	}
	if scenario.IsWorkloadCheckpoint(data) {
		ck, err := scenario.ReadWorkloadCheckpoint(bytes.NewReader(data))
		if err != nil {
			fatal("%s: %v", fs.Arg(0), err)
		}
		info, err := ck.Inspect()
		if err != nil {
			fatal("%s: %v", fs.Arg(0), err)
		}
		if *jsonOut {
			emitJSON(info)
			return
		}
		fmt.Printf("workload checkpoint v%d: %s\n", scenario.WorkloadCheckpointVersion, info.Name)
		fmt.Printf("  position:      %d/%d steps done\n", info.StepsDone, info.StepsTotal)
		fmt.Printf("  options:       compare=%v perGateEval=%v\n", info.Compare, info.PerGateEval)
		printEngine("  ", info.Engine)
		return
	}
	ei, err := mpc.InspectCheckpoint(bytes.NewReader(data))
	if err != nil {
		fatal("%s: %v", fs.Arg(0), err)
	}
	if *jsonOut {
		emitJSON(ei)
		return
	}
	printEngine("", ei)
}

// cmdFuzz runs a property-based fuzzing campaign (or replays one saved
// counterexample): N seeded random scenarios checked against the
// invariant-oracle suite, failures minimized and emitted as replayable
// manifests. See docs/fuzzing.md.
func cmdFuzz(args []string) {
	fs := flag.NewFlagSet("scenario fuzz", flag.ExitOnError)
	trials := fs.Int("trials", 100, "number of generated trials")
	seed := fs.Uint64("seed", 1, "campaign seed; trials are a pure function of (seed, index)")
	parallel := fs.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS); never affects verdicts")
	shrink := fs.Int("shrink", 200, "max oracle evaluations spent minimizing one counterexample")
	jsonOut := fs.Bool("json", false, "emit the campaign summary as JSON")
	outDir := fs.String("out", "", "write minimized counterexample manifests into `dir`")
	inject := fs.String("inject", "", `plant a deliberate violation in every trial ("over-budget"; pipeline self-test)`)
	crash := fs.Bool("crash", false, "run kill-and-resume checkpoint differentials instead of oracle trials (see docs/checkpointing.md)")
	replay := fs.String("replay", "", "replay a saved counterexample manifest `file` instead of fuzzing")
	trace := fs.Bool("trace", false, "with -replay: trace the primary run and print its timeline summary")
	traceOut := fs.String("trace-out", "", "with -replay: write Chrome trace + JSONL files into `dir`")
	fs.Parse(args)
	if fs.NArg() > 0 {
		fatal("fuzz takes no positional arguments, got %v", fs.Args())
	}
	if (*trace || *traceOut != "") && *replay == "" {
		fatal("-trace/-trace-out require -replay (campaign trials run in parallel and are not traced)")
	}

	if *replay != "" {
		var col *obs.Collector
		var tr obs.Tracer
		if *trace || *traceOut != "" {
			col = obs.NewCollector()
			tr = col
		}
		data, err := os.ReadFile(*replay)
		if err != nil {
			fatal("%v", err)
		}
		m, err := scenario.Parse(data)
		if err != nil {
			fatal("%v", err)
		}
		v := fuzzer.ReplayTraced(m, tr)
		if col != nil {
			if *trace && !*jsonOut {
				fmt.Print(obs.Summarize(col.Events(), traceDelta(m)).String())
			}
			chromePath, jsonlPath := traceOutPaths(*traceOut, v.Name)
			writeTraceFiles(col, m.Parties.N, chromePath, jsonlPath)
		}
		if *jsonOut {
			emitJSON(v)
		} else if v.OK() {
			fmt.Printf("replay %s: ok (t=%d |CS|=%d)\n", v.Name, v.LastTick, len(v.CS))
		} else {
			fmt.Printf("replay %s: FAIL\n", v.Name)
			for _, viol := range v.Violations {
				fmt.Printf("     %s: %s\n", viol.Oracle, viol.Detail)
			}
		}
		if !v.OK() {
			os.Exit(1)
		}
		return
	}

	if *crash {
		if *inject != "" || *outDir != "" {
			fatal("-crash cannot be combined with -inject or -out (crash trials shrink nothing)")
		}
		sum, err := fuzzer.CrashCampaign(fuzzer.Options{Trials: *trials, Seed: *seed, Parallel: *parallel})
		if err != nil {
			fatal("%v", err)
		}
		if *jsonOut {
			emitJSON(sum)
		} else {
			fmt.Printf("crash fuzz seed=%d: %d/%d kill-and-resume trials bit-identical\n", sum.Seed, sum.Passed, sum.Trials)
			for _, v := range sum.Failed {
				fmt.Printf("FAIL %s (killed after %d/%d steps, perGateEval=%v)\n", v.Name, v.KillAfter, v.Steps, v.PerGateEval)
				for _, viol := range v.Violations {
					fmt.Printf("     %s: %s\n", viol.Oracle, viol.Detail)
				}
			}
		}
		if len(sum.Failed) > 0 {
			os.Exit(1)
		}
		return
	}

	switch fuzzer.Inject(*inject) {
	case fuzzer.InjectNone, fuzzer.InjectOverBudget:
	default:
		fatal("unknown -inject mode %q (want %q)", *inject, fuzzer.InjectOverBudget)
	}
	sum := fuzzer.Fuzz(fuzzer.Options{
		Trials:        *trials,
		Seed:          *seed,
		Parallel:      *parallel,
		MaxShrinkRuns: *shrink,
		Inject:        fuzzer.Inject(*inject),
	})
	for _, ce := range sum.Failed {
		if *outDir == "" {
			continue
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal("%v", err)
		}
		path := filepath.Join(*outDir, ce.Manifest.Name+".json")
		if err := os.WriteFile(path, append(ce.Manifest.JSON(), '\n'), 0o644); err != nil {
			fatal("%v", err)
		}
	}
	if *jsonOut {
		emitJSON(sum)
	} else {
		fmt.Printf("fuzz seed=%d: %d/%d trials passed\n", sum.Seed, sum.Passed, sum.Trials)
		for _, ce := range sum.Failed {
			fmt.Printf("FAIL trial %d (%s, %d shrink runs)\n", ce.Trial, ce.Manifest.Name, ce.ShrinkRuns)
			for _, viol := range ce.Violations {
				fmt.Printf("     %s: %s\n", viol.Oracle, viol.Detail)
			}
			if *outDir != "" {
				fmt.Printf("     minimized manifest: %s\n", filepath.Join(*outDir, ce.Manifest.Name+".json"))
			} else {
				fmt.Printf("     minimized manifest: %s\n", ce.Manifest.JSON())
			}
		}
	}
	if len(sum.Failed) > 0 {
		os.Exit(1)
	}
}

// resolvePartySet loads the deploy/serve verbs' party set: a manifest
// file via -f, or a builtin by name.
func resolvePartySet(fs *flag.FlagSet, file string) *scenario.PartySet {
	switch {
	case file != "":
		if fs.NArg() > 0 {
			fatal("-f cannot be combined with a builtin party-set name")
		}
		s, err := scenario.LoadPartySetFile(file)
		if err != nil {
			fatal("%v", err)
		}
		return s
	case fs.NArg() == 1:
		s, err := scenario.LookupPartySet(fs.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		return s
	default:
		fs.Usage()
		os.Exit(2)
		return nil
	}
}

// cmdDeploy reifies a party-set manifest and executes its referenced
// scenario or workload over the real transport backend: parties as
// goroutine processes, honest traffic physically crossing CRC-framed
// sockets. -backend sim runs the same deployment on the in-memory
// simulator — the differential reference `make deploy-smoke` cmp's
// against (see docs/deployment.md).
func cmdDeploy(args []string) {
	fs := flag.NewFlagSet("scenario deploy", flag.ExitOnError)
	file := fs.String("f", "", "deploy a party-set manifest from a JSON `file` instead of a builtin")
	backend := fs.String("backend", "", "override the set's backend (`kind` sim, unix or tcp; sim is the differential reference)")
	jsonOut := fs.Bool("json", false, "emit the full deploy report (wall clock, wire bytes) as JSON")
	out := fs.String("out", "", "write the backend-invariant inner report as JSON to `file` (byte-identical across backends on one seed)")
	fs.Parse(args)
	set := resolvePartySet(fs, *file)
	dep, err := set.Reify()
	if err != nil {
		fatal("%v", err)
	}
	if err := dep.UseBackend(*backend); err != nil {
		fatal("%v", err)
	}
	rep, err := dep.Execute()
	if err != nil {
		fatal("%v", err)
	}
	if *out != "" {
		inner, err := json.MarshalIndent(rep.Inner(), "", "  ")
		if err != nil {
			fatal("%v", err)
		}
		if err := os.WriteFile(*out, append(inner, '\n'), 0o644); err != nil {
			fatal("%v", err)
		}
	}
	if *jsonOut {
		emitJSON(rep)
	} else {
		status := "PASS"
		if !rep.Pass {
			status = "FAIL"
		}
		fmt.Printf("%-4s %-28s backend=%-4s %8.1f ms  wire %d frames / %d bytes\n",
			status, rep.Name, rep.Backend, rep.WallMs, rep.Wire.FramesOut, rep.Wire.BytesOut)
		if rep.Scenario != nil {
			fmt.Printf("     scenario %s: t=%d |CS|=%d %d msgs %d bytes\n",
				rep.Scenario.Name, rep.Scenario.LastTick, len(rep.Scenario.CS),
				rep.Scenario.HonestMessages, rep.Scenario.HonestBytes)
			for _, f := range rep.Scenario.Failures {
				fmt.Printf("     assertion failed: %s\n", f)
			}
		}
		if rep.Workload != nil {
			fmt.Printf("     workload %s: %d evals, pool %d/%d used, amortized %.0f msgs/eval\n",
				rep.Workload.Name, len(rep.Workload.Steps), rep.Workload.TriplesConsumed,
				rep.Workload.TriplesGenerated, rep.Workload.AmortizedMsgsPerEval)
			for _, s := range rep.Workload.Steps {
				for _, f := range s.Failures {
					fmt.Printf("     step %d assertion failed: %s\n", s.Index, f)
				}
			}
		}
	}
	if !rep.Pass {
		fatal("%s: deployment assertions failed", rep.Name)
	}
}

// cmdServe reifies a party set referencing a workload and serves it as
// a long-lived session: one engine, one amortized preprocessing, the
// workload's evaluations round after round over the real transport,
// with a row per evaluation and the resolved listen addresses.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("scenario serve", flag.ExitOnError)
	file := fs.String("f", "", "serve a party-set manifest from a JSON `file` instead of a builtin")
	backend := fs.String("backend", "", "override the set's backend (`kind` sim, unix or tcp)")
	rounds := fs.Int("rounds", 1, "serve the workload's steps this many times over")
	jsonOut := fs.Bool("json", false, "additionally emit the serve summary as JSON")
	fs.Parse(args)
	set := resolvePartySet(fs, *file)
	dep, err := set.Reify()
	if err != nil {
		fatal("%v", err)
	}
	if err := dep.UseBackend(*backend); err != nil {
		fatal("%v", err)
	}
	rep, err := dep.Serve(os.Stdout, *rounds)
	if err != nil {
		fatal("%v", err)
	}
	if *jsonOut {
		emitJSON(rep)
	}
	if rep.Failures > 0 {
		fatal("%s: %d of %d served evaluations failed", rep.Name, rep.Failures, rep.Evals)
	}
}

// cmdBench measures the tracked perf benchmarks (E7 VSS, E8 ACS, E13
// online) and writes the trajectory report: recorded pre-PR2 baseline,
// fresh wall-clock figures, per-row speedups, the protocol-metric
// invariance verdict, and the PR 3 layer-batching message-complexity
// comparison (per-gate vs per-layer online phase). See
// docs/performance.md.
func cmdBench(args []string) {
	fs := flag.NewFlagSet("scenario bench", flag.ExitOnError)
	out := fs.String("out", "", "write the perf JSON report to `file` (default stdout)")
	out5 := fs.String("out5", "", "write the E14 amortization JSON report to `file` (default stdout)")
	out6 := fs.String("out6", "", "write the E15 trace-overhead JSON report to `file` (default stdout)")
	out7 := fs.String("out7", "", "write the E16 checkpoint/restore JSON report to `file` (default stdout)")
	out8 := fs.String("out8", "", "write the PR8 transport-backend JSON report to `file` (default stdout)")
	out9 := fs.String("out9", "", "write the PR9 pipelined-serving JSON report to `file` (default stdout)")
	out10 := fs.String("out10", "", "write the PR10 parallel-ticks JSON report to `file` (default stdout)")
	fs.Parse(args)
	report, err := bench.RunPerf()
	if err != nil {
		fatal("%v", err)
	}
	amort := bench.RunAmortization()
	trace := bench.RunTraceOverhead()
	ckpt := bench.RunCheckpoint()
	trans := bench.RunTransport()
	pipe := bench.RunPipeline()
	par := bench.RunParallel()
	if *out == "" && *out5 == "" && *out6 == "" && *out7 == "" && *out8 == "" && *out9 == "" && *out10 == "" {
		// Keep stdout a single JSON document: combine the reports.
		emitJSON(struct {
			Perf  *bench.PerfReport       `json:"perf"`
			Amort *bench.AmortReport      `json:"amortization"`
			Trace *bench.TraceReport      `json:"trace_overhead"`
			Ckpt  *bench.CheckpointReport `json:"checkpoint"`
			Trans *bench.TransportReport  `json:"transport"`
			Pipe  *bench.PipelineReport   `json:"pipeline"`
			Par   *bench.ParallelReport   `json:"parallel"`
		}{report, amort, trace, ckpt, trans, pipe, par})
	} else {
		writeReport := func(path string, write func(io.Writer) error) {
			w := io.Writer(os.Stdout)
			if path != "" {
				f, err := os.Create(path)
				if err != nil {
					fatal("%v", err)
				}
				defer f.Close()
				w = f
			}
			if err := write(w); err != nil {
				fatal("%v", err)
			}
		}
		writeReport(*out, func(w io.Writer) error { return bench.WritePerf(w, report) })
		writeReport(*out5, func(w io.Writer) error { return bench.WriteAmort(w, amort) })
		writeReport(*out6, func(w io.Writer) error { return bench.WriteTrace(w, trace) })
		writeReport(*out7, func(w io.Writer) error { return bench.WriteCheckpoint(w, ckpt) })
		writeReport(*out8, func(w io.Writer) error { return bench.WriteTransport(w, trans) })
		writeReport(*out9, func(w io.Writer) error { return bench.WritePipeline(w, pipe) })
		writeReport(*out10, func(w io.Writer) error { return bench.WriteParallel(w, par) })
	}
	if !report.Invariant {
		fatal("protocol metrics diverged from the recorded baseline — the perf work changed behaviour")
	}
	for _, row := range report.Current {
		if s, ok := report.Speedup[row.Name]; ok {
			fmt.Fprintf(os.Stderr, "%-14s %6.2fx\n", row.Name, s)
		}
	}
	for _, row := range report.LayerBatching {
		fmt.Fprintf(os.Stderr, "%-24s %6d -> %5d msgs (%.1fx fewer)\n",
			row.Name, row.PerGateMsgs, row.LayeredMsgs, row.MsgRatio)
	}
	for _, row := range amort.Rows {
		fmt.Fprintln(os.Stderr, bench.FormatAmortRow(row))
	}
	for _, row := range trace.Rows {
		fmt.Fprintln(os.Stderr, bench.FormatTraceRow(row))
	}
	for _, row := range ckpt.Rows {
		fmt.Fprintln(os.Stderr, bench.FormatCheckpointRow(row))
	}
	for _, row := range trans.Rows {
		fmt.Fprintln(os.Stderr, bench.FormatTransportRow(row))
	}
	for _, row := range pipe.Rows {
		fmt.Fprintln(os.Stderr, bench.FormatPipelineRow(row))
	}
	for _, row := range par.Rows {
		fmt.Fprintln(os.Stderr, bench.FormatParallelRow(row))
	}
	if !amort.OK {
		fatal("E14 amortization gate failed: a session engine row diverged from one-shot outputs or did not amortize")
	}
	if !trace.OK {
		fatal("E15 trace gate failed: a traced run diverged from its untraced twin")
	}
	if !ckpt.OK {
		fatal("E16 checkpoint gate failed: a restored engine diverged or restore was not cheaper than re-preprocessing")
	}
	if !trans.OK {
		fatal("PR8 transport gate failed: a socket-backed run diverged from the simulator outputs or moved no wire bytes")
	}
	if !pipe.OK {
		fatal("PR9 pipeline gate failed: a pipelined run diverged from one-shot outputs, did not beat the depth-1 ticks/eval at depth >= 4, or drifted >1% in msgs/eval")
	}
	if !par.OK {
		fatal("PR10 parallel gate failed: a workers>0 run diverged from serial (msgs/bytes/ticks/outputs must be bit-identical) or workers=4 missed the 2x wall-clock speedup")
	}
}

// select resolves the manifests a subcommand operates on: an explicit
// manifest file, the full builtin corpus, or named builtins.
func selectManifests(fs *flag.FlagSet, file string, all bool, args []string) []*scenario.Manifest {
	if file != "" {
		if all || len(args) > 0 {
			fatal("-f cannot be combined with --all or scenario names")
		}
		ms, err := scenario.LoadFile(file)
		if err != nil {
			fatal("%v", err)
		}
		return ms
	}
	if all {
		if len(args) > 0 {
			fatal("--all cannot be combined with scenario names")
		}
		return scenario.Builtin()
	}
	if len(args) == 0 {
		fs.Usage()
		os.Exit(2)
	}
	var ms []*scenario.Manifest
	for _, name := range args {
		m, err := scenario.Lookup(name)
		if err != nil {
			fatal("%v", err)
		}
		ms = append(ms, m)
	}
	return ms
}

func cmdList(args []string) {
	fs := flag.NewFlagSet("scenario list", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the manifests as JSON")
	fs.Parse(args)
	ms := scenario.Builtin()
	if *jsonOut {
		emitJSON(ms)
		return
	}
	fmt.Printf("%-32s %-10s %-7s %-12s %-24s %s\n", "NAME", "PARTIES", "NET", "CIRCUIT", "ADVERSARY", "DESCRIPTION")
	for _, m := range ms {
		parties := fmt.Sprintf("n=%d,%d/%d", m.Parties.N, m.Parties.Ts, m.Parties.Ta)
		if m.Parties.AtBoundary() {
			parties += "*"
		}
		net := m.Network.Kind
		if m.SyncOnly {
			net += "!"
		}
		fmt.Printf("%-32s %-10s %-7s %-12s %-24s %s\n",
			m.Name, parties, net, m.Circuit, m.Adversary.Summary(), m.Description)
	}
	fmt.Printf("\n%d scenarios; * marks threshold-boundary configs (3ts+ta=n-1), ! marks the SyncOnly ablation\n", len(ms))
	wl := scenario.BuiltinWorkloads()
	fmt.Printf("\n%-32s %-10s %-7s %-6s %s\n", "WORKLOAD", "PARTIES", "NET", "STEPS", "DESCRIPTION")
	for _, m := range wl {
		parties := fmt.Sprintf("n=%d,%d/%d", m.Parties.N, m.Parties.Ts, m.Parties.Ta)
		fmt.Printf("%-32s %-10s %-7s %-6d %s\n",
			m.Name, parties, m.Network.Kind, len(m.Workload.Steps), m.Description)
	}
	fmt.Printf("\n%d workloads (run with 'scenario workload')\n", len(wl))
	sets := scenario.BuiltinPartySets()
	fmt.Printf("\n%-32s %-10s %-6s %-28s %s\n", "PARTY SET", "PARTIES", "NET", "EXECUTES", "DESCRIPTION")
	for _, s := range sets {
		parties := fmt.Sprintf("n=%d,%d/%d", s.Parties.N, s.Parties.Ts, s.Parties.Ta)
		ref := s.Scenario
		if ref == "" {
			ref = s.Workload
		}
		fmt.Printf("%-32s %-10s %-6s %-28s %s\n", s.Name, parties, s.Transport.Kind, ref, s.Description)
	}
	fmt.Printf("\n%d party sets (run with 'scenario deploy' / 'scenario serve')\n", len(sets))
}

func cmdValidate(args []string) {
	fs := flag.NewFlagSet("scenario validate", flag.ExitOnError)
	file := fs.String("f", "", "validate manifests from a JSON `file` instead of builtins")
	all := fs.Bool("all", true, "validate the whole builtin corpus when no names are given")
	fs.Parse(args)
	useAll := *file == "" && len(fs.Args()) == 0 && *all
	ms := selectManifests(fs, *file, useAll, fs.Args())
	bad := 0
	for _, m := range ms {
		// LoadFile and Lookup already validate; re-validate so the
		// subcommand reports every manifest, not just the first error.
		if err := m.Validate(); err != nil {
			fmt.Printf("FAIL %s\n     %v\n", m.Name, err)
			bad++
			continue
		}
		fmt.Printf("ok   %s\n", m.Name)
	}
	if bad > 0 {
		fatal("%d of %d manifests invalid", bad, len(ms))
	}
	fmt.Printf("%d manifests valid\n", len(ms))
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("scenario run", flag.ExitOnError)
	file := fs.String("f", "", "run manifests from a JSON `file` instead of builtins")
	all := fs.Bool("all", false, "run the whole builtin corpus")
	parallel := fs.Int("parallel", 1, "worker-pool size (0 = GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "emit reports as JSON")
	trace := fs.Bool("trace", false, "trace each run and print its timeline summary (forces serial execution)")
	traceOut := fs.String("trace-out", "", "write per-run Chrome trace + JSONL files into `dir` (implies tracing)")
	workers := fs.Int("workers", 0, "override each manifest's intra-tick worker-pool size: `n` > 0 forces n workers, -1 forces the serial loop, 0 keeps the manifest's (reports are bit-identical either way; forces serial manifest execution)")
	fs.Parse(args)
	ms := selectManifests(fs, *file, *all, fs.Args())
	if *trace || *traceOut != "" || *workers != 0 {
		results := make([]scenario.SweepResult, 0, len(ms))
		doTrace := *trace || *traceOut != ""
		for _, m := range ms {
			var col *obs.Collector
			var tr obs.Tracer
			if doTrace {
				col = obs.NewCollector()
				tr = col
			}
			rep, err := scenario.RunWith(m, scenario.RunOptions{Tracer: tr, Workers: *workers})
			results = append(results, scenario.SweepResult{Manifest: m, Report: rep, Err: err})
			if err != nil || !doTrace {
				continue
			}
			if *trace && !*jsonOut {
				fmt.Print(obs.Summarize(col.Events(), traceDelta(m)).String())
			}
			chromePath, jsonlPath := traceOutPaths(*traceOut, m.Name)
			writeTraceFiles(col, m.Parties.N, chromePath, jsonlPath)
		}
		report(results, *jsonOut)
		return
	}
	results := scenario.Sweep(ms, *parallel)
	report(results, *jsonOut)
}

func cmdSweep(args []string) {
	fs := flag.NewFlagSet("scenario sweep", flag.ExitOnError)
	file := fs.String("f", "", "sweep manifests from a JSON `file` instead of builtins")
	all := fs.Bool("all", false, "sweep the whole builtin corpus")
	seeds := fs.String("seeds", "1..8", "seed `range` A..B (inclusive) each scenario is re-run over")
	parallel := fs.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "emit reports as JSON")
	fs.Parse(args)
	lo, hi, err := parseSeedRange(*seeds)
	if err != nil {
		fatal("%v", err)
	}
	seedList := make([]uint64, 0, hi-lo+1)
	for s := lo; ; s++ {
		seedList = append(seedList, s)
		if s == hi {
			break
		}
	}
	var ms []*scenario.Manifest
	for _, m := range selectManifests(fs, *file, *all, fs.Args()) {
		ms = append(ms, scenario.ExpandSeeds(m, seedList)...)
	}
	results := scenario.Sweep(ms, *parallel)
	report(results, *jsonOut)
}

func parseSeedRange(s string) (lo, hi uint64, err error) {
	a, b, ok := strings.Cut(s, "..")
	if !ok {
		a, b = s, s
	}
	if lo, err = strconv.ParseUint(a, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("bad seed range %q: %v", s, err)
	}
	if hi, err = strconv.ParseUint(b, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("bad seed range %q: %v", s, err)
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("bad seed range %q: %d > %d", s, lo, hi)
	}
	const maxSeeds = 1 << 20
	if hi-lo+1 > maxSeeds || hi-lo+1 == 0 {
		return 0, 0, fmt.Errorf("seed range %q spans more than %d seeds", s, maxSeeds)
	}
	return lo, hi, nil
}

func report(results []scenario.SweepResult, jsonOut bool) {
	if jsonOut {
		reps := make([]*scenario.Report, 0, len(results))
		for _, r := range results {
			if r.Err != nil {
				fatal("%s: %v", r.Manifest.Name, r.Err)
			}
			reps = append(reps, r.Report)
		}
		emitJSON(reps)
	}
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			fatal("%s: %v", r.Manifest.Name, r.Err)
		}
		rep := r.Report
		if !jsonOut {
			status := "PASS"
			if !rep.Pass {
				status = "FAIL"
			}
			fmt.Printf("%-4s %-32s t=%-7d |CS|=%-2d %9d msgs %12d bytes\n",
				status, rep.Name, rep.LastTick, len(rep.CS), rep.HonestMessages, rep.HonestBytes)
			for _, f := range rep.Failures {
				fmt.Printf("     assertion failed: %s\n", f)
			}
		}
		if !rep.Pass {
			failed++
		}
	}
	if failed > 0 {
		fatal("%d of %d scenarios failed", failed, len(results))
	}
	if !jsonOut {
		fmt.Printf("%d scenarios passed\n", len(results))
	}
}

func emitJSON(v any) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	os.Stdout.Write(append(out, '\n'))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
