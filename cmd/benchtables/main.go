// Command benchtables regenerates, in one run, every experiment table
// from DESIGN.md's index (E1..E13): measured communication and virtual
// termination times for each protocol layer against the paper's bounds
// (Lemma 2.4, Lemma 3.2/3.3, Theorems 3.5/3.6/4.8/4.16, Lemma 5.1,
// Lemmas 6.1-6.4, Theorems 6.5/7.1) plus the n=8 headline matrix. Its
// output is the measured side of EXPERIMENTS.md.
//
// Run with -quick for a faster, smaller sweep.
package main

import (
	"flag"
	"fmt"

	"repro/circuit"
	"repro/internal/bench"
	"repro/mpc"
)

func main() {
	quick := flag.Bool("quick", false, "smaller sweeps")
	flag.Parse()

	ns := []int{5, 8, 11, 13}
	if *quick {
		ns = []int{5, 8}
	}

	fmt.Println("== E1: Bracha Acast (Lemma 2.4) — O(n²ℓ) bits, liveness ≤ 3Δ (sync, honest S)")
	for _, n := range ns {
		for _, l := range []int{8, 256} {
			m := bench.E1Acast(n, l, 1)
			fmt.Println(bench.FormatRow(fmt.Sprintf("n=%-2d ℓ=%-4d", n, l), m))
		}
	}

	fmt.Println("\n== E4: ΠBC (Thm 3.5) — regular-mode output at exactly TBC = 3Δ + TSBA")
	for _, n := range ns {
		m := bench.E4BC(n, 32, 2)
		fmt.Println(bench.FormatRow(fmt.Sprintf("n=%-2d", n), m))
	}

	fmt.Println("\n== E5: ΠBA (Thm 3.6) — SBA in sync, output ≤ TBA = TBC + kΔ")
	for _, n := range ns {
		m := bench.E5BA(n, 3)
		fmt.Println(bench.FormatRow(fmt.Sprintf("n=%-2d", n), m))
	}

	fmt.Println("\n== E6: ΠWPS (Thm 4.8) — O((n²L + n⁴) log|F|) bits, output ≤ TWPS")
	for _, l := range []int{1, 8, 64} {
		m := bench.E6WPS(bench.Config8(), l, 4)
		fmt.Println(bench.FormatRow(fmt.Sprintf("n=8 L=%-3d", l), m))
	}
	if !*quick {
		m := bench.E6WPS(bench.ConfigN(13), 1, 4)
		fmt.Println(bench.FormatRow("n=13 L=1", m))
	}

	fmt.Println("\n== E7: ΠVSS (Thm 4.16) — O((n³L + n⁵) log|F|) bits, output ≤ TVSS")
	for _, l := range []int{1, 8} {
		m := bench.E7VSS(bench.Config8(), l, 5)
		fmt.Println(bench.FormatRow(fmt.Sprintf("n=8 L=%-3d", l), m))
	}

	fmt.Println("\n== E8: ΠACS (Lemma 5.1) — O((n⁴L + n⁶) log|F|) bits, all honest in CS, ≤ TACS")
	for _, l := range []int{1, 4} {
		m := bench.E8ACS(bench.Config5(), l, 6)
		fmt.Println(bench.FormatRow(fmt.Sprintf("n=5 L=%-3d", l), m))
	}
	m8 := bench.E8ACS(bench.Config8(), 1, 6)
	fmt.Println(bench.FormatRow("n=8 L=1", m8))

	fmt.Println("\n== E9: ΠBeaver (Lemma 6.1) — O(n² log|F|) bits, Δ time")
	for _, n := range ns {
		m := bench.E9Beaver(bench.ConfigN(n), 7)
		fmt.Println(bench.FormatRow(fmt.Sprintf("n=%-2d", n), m))
	}

	fmt.Println("\n== E10: ΠPreProcessing (Thm 6.5) — cM shared random triples ≤ TTripGen")
	cms := []int{1, 4}
	if !*quick {
		cms = append(cms, 8)
	}
	for _, cm := range cms {
		m := bench.E10Preprocessing(bench.Config5(), cm, 8)
		fmt.Println(bench.FormatRow(fmt.Sprintf("n=5 cM=%-2d", cm), m))
	}
	if !*quick {
		m := bench.E10Preprocessing(bench.Config8(), 4, 8)
		fmt.Println(bench.FormatRow("n=8 cM=4", m))
	}

	fmt.Println("\n== E11: ΠCirEval (Thm 7.1) — full MPC, both networks")
	circs := []struct {
		name string
		c    *circuit.Circuit
	}{
		{"sum (cM=0, DM=0)", circuit.Sum(5)},
		{"product (cM=4, DM=3)", circuit.Product(5)},
		{"depth-4 chain", circuit.DepthChain(5, 4)},
	}
	for _, cc := range circs {
		for _, net := range []mpc.Network{mpc.Sync, mpc.Async} {
			m := bench.E11CirEval(bench.Config5(), cc.c, net, 9)
			fmt.Println(bench.FormatRow(fmt.Sprintf("%s %s", cc.name, net), m))
		}
	}

	fmt.Println("\n== E12: the n=8 headline matrix (§1) — who survives what")
	fmt.Printf("%-18s %-7s %-8s %s\n", "mode", "net", "faults", "result")
	for _, mode := range []bench.MatrixMode{bench.ModeBoBW, bench.ModeSyncOnly, bench.ModeAsyncOnly} {
		for _, net := range []mpc.Network{mpc.Sync, mpc.Async} {
			for _, faults := range []int{1, 2} {
				ok, tolerated := bench.E12Matrix(mode, net, faults, 10)
				verdict := "OK"
				if !tolerated {
					verdict = "beyond threshold"
				} else if !ok {
					verdict = "FAILED"
				}
				fmt.Printf("%-18s %-7s %-8d %s\n", mode, net, faults, verdict)
			}
		}
	}

	fmt.Println("\n== E13: single circuit evaluation (§1.2) — gate work is not duplicated")
	mSum := bench.E11CirEval(bench.Config5(), circuit.Product(5), mpc.Sync, 11)
	fmt.Printf("BoBW evaluates %d multiplication gates once: %d honest msgs.\n", circuit.Product(5).MulCount, mSum.HonestMsgs)
	fmt.Printf("A run-both-protocols compiler (e.g. [19,30]) would evaluate the circuit twice:\n")
	fmt.Printf("~2x the gate-evaluation traffic plus a full second preprocessing.\n")
}
