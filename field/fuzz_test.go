package field

import (
	"bytes"
	"testing"
)

// FuzzFieldRoundTrip checks the algebraic and serialization laws of
// GF(2^61 - 1) on arbitrary operand pairs: byte-encoding round trips,
// additive and multiplicative inverses cancel, multiplication
// distributes over addition, and the fused MulAdd matches its
// two-instruction expansion.
func FuzzFieldRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), uint64(Modulus-1))
	f.Add(Modulus, Modulus+1) // non-canonical inputs must reduce
	f.Add(uint64(1)<<62, uint64(1)<<61)
	f.Add(uint64(123456789), uint64(987654321))
	f.Fuzz(func(t *testing.T, a, b uint64) {
		x, y := New(a), New(b)

		// Canonical representation and byte round trip.
		if x.Uint64() >= Modulus {
			t.Fatalf("New(%d) not reduced: %d", a, x.Uint64())
		}
		enc := x.Bytes()
		dec, err := FromBytes(enc[:])
		if err != nil || dec != x {
			t.Fatalf("byte round trip of %v: got %v, err %v", x, dec, err)
		}
		if app := x.AppendBytes(nil); !bytes.Equal(app, enc[:]) {
			t.Fatalf("AppendBytes %x differs from Bytes %x", app, enc)
		}

		// Additive group laws.
		if x.Add(y).Sub(y) != x {
			t.Fatalf("(%v + %v) - %v != %v", x, y, y, x)
		}
		if x.Add(x.Neg()) != Zero {
			t.Fatalf("%v + (-%v) != 0", x, x)
		}

		// Multiplicative laws.
		if !y.IsZero() {
			q, err := x.Mul(y).Div(y)
			if err != nil || q != x {
				t.Fatalf("(%v * %v) / %v = %v (err %v), want %v", x, y, y, q, err, x)
			}
			inv, err := y.Inv()
			if err != nil || y.Mul(inv) != One {
				t.Fatalf("%v * %v^-1 = %v, want 1", y, y, y.Mul(inv))
			}
		}

		// Distributivity and the fused multiply-add.
		if x.Mul(y.Add(One)) != x.Mul(y).Add(x) {
			t.Fatalf("x*(y+1) != x*y + x for x=%v y=%v", x, y)
		}
		if got, want := x.MulAdd(y, y), x.Add(y.Mul(y)); got != want {
			t.Fatalf("MulAdd: %v + %v*%v = %v, want %v", x, y, y, got, want)
		}

		// Pow agrees with repeated multiplication for small exponents.
		p := One
		for k := uint64(0); k < 8; k++ {
			if got := x.Pow(k); got != p {
				t.Fatalf("%v^%d = %v, want %v", x, k, got, p)
			}
			p = p.Mul(x)
		}
	})
}
