// Package field implements arithmetic in the prime field GF(p) with
// p = 2^61 - 1 (a Mersenne prime).
//
// All protocols in this repository perform their computations over this
// field, mirroring the paper's field F with |F| > 2n. Elements are stored
// fully reduced in a uint64, so the zero value of Element is the field's
// additive identity and Element values are directly comparable with ==.
package field

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"math/rand/v2"
)

// Modulus is the field characteristic p = 2^61 - 1.
const Modulus uint64 = (1 << 61) - 1

// ElementSize is the wire size of a marshaled Element, in bytes.
const ElementSize = 8

// Element is a fully reduced element of GF(2^61 - 1).
type Element uint64

// ErrNotInvertible is returned when the inverse of zero is requested.
var ErrNotInvertible = errors.New("field: zero has no multiplicative inverse")

// New returns the element congruent to v modulo p.
func New(v uint64) Element {
	return Element(v % Modulus)
}

// Zero and One are the additive and multiplicative identities.
const (
	Zero Element = 0
	One  Element = 1
)

// Uint64 returns the canonical representative in [0, p).
func (e Element) Uint64() uint64 { return uint64(e) }

// IsZero reports whether e is the additive identity.
func (e Element) IsZero() bool { return e == 0 }

// Add returns e + b mod p.
func (e Element) Add(b Element) Element {
	s := uint64(e) + uint64(b) // < 2^62, no overflow
	if s >= Modulus {
		s -= Modulus
	}
	return Element(s)
}

// Sub returns e - b mod p.
func (e Element) Sub(b Element) Element {
	if e >= b {
		return e - b
	}
	return e + Element(Modulus) - b
}

// Neg returns -e mod p.
func (e Element) Neg() Element {
	if e == 0 {
		return 0
	}
	return Element(Modulus) - e
}

// Mul returns e * b mod p using Mersenne reduction.
func (e Element) Mul(b Element) Element {
	hi, lo := bits.Mul64(uint64(e), uint64(b))
	// The 122-bit product hi·2^64 + lo splits into 61-bit limbs
	// p2·2^122 + p1·2^61 + p0, and 2^61 ≡ 1 (mod p).
	p0 := lo & Modulus
	p1 := (hi<<3 | lo>>61) & Modulus
	p2 := hi >> 58
	s := p0 + p1 + p2 // ≤ 3(p-1), fits in 63 bits
	s = (s & Modulus) + (s >> 61)
	if s >= Modulus {
		s -= Modulus
	}
	return Element(s)
}

// Square returns e² mod p.
func (e Element) Square() Element { return e.Mul(e) }

// MulAdd returns e + a·b mod p with a single fused reduction: the
// accumulator joins the product limbs before the final fold, saving the
// separate Add's compare-and-subtract on interpolation inner loops.
func (e Element) MulAdd(a, b Element) Element {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	p0 := lo & Modulus
	p1 := (hi<<3 | lo>>61) & Modulus
	p2 := hi >> 58
	s := uint64(e) + p0 + p1 + p2 // ≤ 4(p-1), fits in 63 bits
	s = (s & Modulus) + (s >> 61)
	if s >= Modulus {
		s -= Modulus
	}
	return Element(s)
}

// Pow returns e^k mod p by binary exponentiation. Pow(0, 0) = 1.
func (e Element) Pow(k uint64) Element {
	result := One
	base := e
	for k > 0 {
		if k&1 == 1 {
			result = result.Mul(base)
		}
		base = base.Square()
		k >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of e, or an error for zero.
func (e Element) Inv() (Element, error) {
	if e == 0 {
		return 0, ErrNotInvertible
	}
	return e.Pow(Modulus - 2), nil
}

// MustInv returns the multiplicative inverse of e and panics on zero.
// It is intended for callers that have already established e != 0
// (e.g. differences of distinct evaluation points).
func (e Element) MustInv() Element {
	inv, err := e.Inv()
	if err != nil {
		panic(fmt.Sprintf("field: MustInv(0): %v", err))
	}
	return inv
}

// Div returns e / b mod p, or an error if b is zero.
func (e Element) Div(b Element) (Element, error) {
	inv, err := b.Inv()
	if err != nil {
		return 0, err
	}
	return e.Mul(inv), nil
}

// String implements fmt.Stringer.
func (e Element) String() string { return fmt.Sprintf("%d", uint64(e)) }

// Bytes returns the 8-byte big-endian encoding of e.
func (e Element) Bytes() [ElementSize]byte {
	var b [ElementSize]byte
	binary.BigEndian.PutUint64(b[:], uint64(e))
	return b
}

// AppendBytes appends the 8-byte big-endian encoding of e to dst.
func (e Element) AppendBytes(dst []byte) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(e))
}

// FromBytes decodes an element from an 8-byte big-endian encoding.
// It returns an error if the encoding is not canonical (value ≥ p).
func FromBytes(b []byte) (Element, error) {
	if len(b) < ElementSize {
		return 0, fmt.Errorf("field: short encoding: %d bytes", len(b))
	}
	v := binary.BigEndian.Uint64(b[:ElementSize])
	if v >= Modulus {
		return 0, fmt.Errorf("field: non-canonical encoding %d", v)
	}
	return Element(v), nil
}

// Random returns a uniformly random field element drawn from rng.
func Random(rng *rand.Rand) Element {
	// Rejection sampling on 61-bit candidates keeps the output uniform.
	for {
		v := rng.Uint64() & ((1 << 61) - 1)
		if v < Modulus {
			return Element(v)
		}
	}
}

// RandomNonZero returns a uniformly random non-zero field element.
func RandomNonZero(rng *rand.Rand) Element {
	for {
		if e := Random(rng); !e.IsZero() {
			return e
		}
	}
}

// Sum returns the sum of all elements in xs.
func Sum(xs []Element) Element {
	var s Element
	for _, x := range xs {
		s = s.Add(x)
	}
	return s
}

// Dot returns the inner product of xs and ys, which must have equal length.
func Dot(xs, ys []Element) Element {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("field: Dot length mismatch %d != %d", len(xs), len(ys)))
	}
	var s Element
	for i := range xs {
		s = s.MulAdd(xs[i], ys[i])
	}
	return s
}

// AddScaled adds c·src to dst element-wise, in place. The slices must
// have equal length. It is the fused accumulation step of kernel-based
// interpolation.
func AddScaled(dst, src []Element, c Element) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("field: AddScaled length mismatch %d != %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] = dst[i].MulAdd(src[i], c)
	}
}

// BatchInv computes the inverses of all elements in xs with a single field
// inversion (Montgomery's trick). It returns an error if any input is zero.
func BatchInv(xs []Element) ([]Element, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	prefix := make([]Element, len(xs))
	acc := One
	for i, x := range xs {
		if x.IsZero() {
			return nil, ErrNotInvertible
		}
		prefix[i] = acc
		acc = acc.Mul(x)
	}
	inv, err := acc.Inv()
	if err != nil {
		return nil, err
	}
	out := make([]Element, len(xs))
	for i := len(xs) - 1; i >= 0; i-- {
		out[i] = inv.Mul(prefix[i])
		inv = inv.Mul(xs[i])
	}
	return out, nil
}
