package field

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

func TestNewReduces(t *testing.T) {
	tests := []struct {
		in   uint64
		want Element
	}{
		{0, 0},
		{1, 1},
		{Modulus - 1, Element(Modulus - 1)},
		{Modulus, 0},
		{Modulus + 5, 5},
		{^uint64(0), Element(^uint64(0) % Modulus)},
	}
	for _, tt := range tests {
		if got := New(tt.in); got != tt.want {
			t.Errorf("New(%d) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAddSubNeg(t *testing.T) {
	r := rng(1)
	for i := 0; i < 2000; i++ {
		a, b := Random(r), Random(r)
		if got := a.Add(b).Sub(b); got != a {
			t.Fatalf("(a+b)-b = %v, want %v", got, a)
		}
		if got := a.Add(a.Neg()); got != 0 {
			t.Fatalf("a + (-a) = %v, want 0", got)
		}
		if got := a.Sub(b); got != a.Add(b.Neg()) {
			t.Fatalf("a-b != a+(-b)")
		}
	}
}

func TestAddBoundary(t *testing.T) {
	max := Element(Modulus - 1)
	if got := max.Add(1); got != 0 {
		t.Errorf("(p-1)+1 = %v, want 0", got)
	}
	if got := max.Add(max); got != Element(Modulus-2) {
		t.Errorf("(p-1)+(p-1) = %v, want %v", got, Modulus-2)
	}
	if got := Zero.Sub(1); got != max {
		t.Errorf("0-1 = %v, want %v", got, max)
	}
}

func TestMulAgainstBigIntSemantics(t *testing.T) {
	// Cross-check Mersenne reduction against schoolbook 128-bit math
	// (done via repeated addition on structured cases plus identities).
	cases := []Element{0, 1, 2, 3, Element(Modulus - 1), Element(Modulus - 2), 1 << 60, (1 << 60) + 12345}
	for _, a := range cases {
		for _, b := range cases {
			got := a.Mul(b)
			// verify via decomposition: a*b mod p computed with Pow-free
			// double-and-add using only Add (correct by TestAddSubNeg).
			want := mulBySchoolbook(a, b)
			if got != want {
				t.Errorf("Mul(%v,%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func mulBySchoolbook(a, b Element) Element {
	var acc Element
	x := a
	for k := uint64(b); k > 0; k >>= 1 {
		if k&1 == 1 {
			acc = acc.Add(x)
		}
		x = x.Add(x)
	}
	return acc
}

func TestMulProperties(t *testing.T) {
	r := rng(2)
	for i := 0; i < 1000; i++ {
		a, b, c := Random(r), Random(r), Random(r)
		if a.Mul(b) != b.Mul(a) {
			t.Fatalf("commutativity broken")
		}
		if a.Mul(b).Mul(c) != a.Mul(b.Mul(c)) {
			t.Fatalf("associativity broken")
		}
		if a.Mul(b.Add(c)) != a.Mul(b).Add(a.Mul(c)) {
			t.Fatalf("distributivity broken")
		}
		if a.Mul(One) != a || a.Mul(Zero) != 0 {
			t.Fatalf("identity broken")
		}
	}
}

func TestInv(t *testing.T) {
	if _, err := Zero.Inv(); err == nil {
		t.Fatal("Inv(0) should fail")
	}
	r := rng(3)
	for i := 0; i < 500; i++ {
		a := RandomNonZero(r)
		inv, err := a.Inv()
		if err != nil {
			t.Fatal(err)
		}
		if a.Mul(inv) != One {
			t.Fatalf("a * a^-1 = %v, want 1", a.Mul(inv))
		}
	}
}

func TestMustInvPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustInv(0) should panic")
		}
	}()
	Zero.MustInv()
}

func TestDiv(t *testing.T) {
	r := rng(4)
	for i := 0; i < 200; i++ {
		a, b := Random(r), RandomNonZero(r)
		q, err := a.Div(b)
		if err != nil {
			t.Fatal(err)
		}
		if q.Mul(b) != a {
			t.Fatalf("(a/b)*b != a")
		}
	}
	if _, err := One.Div(Zero); err == nil {
		t.Fatal("division by zero should fail")
	}
}

func TestPow(t *testing.T) {
	r := rng(5)
	if got := Zero.Pow(0); got != One {
		t.Errorf("0^0 = %v, want 1", got)
	}
	for i := 0; i < 100; i++ {
		a := Random(r)
		if a.Pow(1) != a {
			t.Fatalf("a^1 != a")
		}
		if a.Pow(2) != a.Mul(a) {
			t.Fatalf("a^2 != a*a")
		}
		if a.Pow(5) != a.Mul(a).Mul(a).Mul(a).Mul(a) {
			t.Fatalf("a^5 mismatch")
		}
	}
	// Fermat: a^(p-1) = 1 for a != 0.
	for i := 0; i < 50; i++ {
		a := RandomNonZero(r)
		if a.Pow(Modulus-1) != One {
			t.Fatalf("Fermat little theorem violated for %v", a)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	r := rng(6)
	for i := 0; i < 500; i++ {
		a := Random(r)
		b := a.Bytes()
		got, err := FromBytes(b[:])
		if err != nil {
			t.Fatal(err)
		}
		if got != a {
			t.Fatalf("round trip %v -> %v", a, got)
		}
	}
	// Non-canonical and short encodings must be rejected.
	bad := Element(Modulus).Add(0) // canonical 0; craft raw bytes instead
	_ = bad
	raw := [8]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	if _, err := FromBytes(raw[:]); err == nil {
		t.Fatal("non-canonical encoding accepted")
	}
	if _, err := FromBytes([]byte{1, 2, 3}); err == nil {
		t.Fatal("short encoding accepted")
	}
}

func TestAppendBytes(t *testing.T) {
	a := New(123456789)
	buf := a.AppendBytes([]byte{0xaa})
	if len(buf) != 9 || buf[0] != 0xaa {
		t.Fatalf("AppendBytes wrong framing: %x", buf)
	}
	got, err := FromBytes(buf[1:])
	if err != nil || got != a {
		t.Fatalf("AppendBytes round trip failed: %v %v", got, err)
	}
}

func TestSumDot(t *testing.T) {
	xs := []Element{1, 2, 3, 4}
	ys := []Element{5, 6, 7, 8}
	if got := Sum(xs); got != 10 {
		t.Errorf("Sum = %v, want 10", got)
	}
	if got := Dot(xs, ys); got != New(5+12+21+32) {
		t.Errorf("Dot = %v, want 70", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths should panic")
		}
	}()
	Dot([]Element{1}, []Element{1, 2})
}

func TestBatchInv(t *testing.T) {
	r := rng(7)
	xs := make([]Element, 64)
	for i := range xs {
		xs[i] = RandomNonZero(r)
	}
	invs, err := BatchInv(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if xs[i].Mul(invs[i]) != One {
			t.Fatalf("BatchInv wrong at %d", i)
		}
	}
	if _, err := BatchInv([]Element{1, 0, 2}); err == nil {
		t.Fatal("BatchInv with zero should fail")
	}
	if out, err := BatchInv(nil); err != nil || out != nil {
		t.Fatal("BatchInv(nil) should be a no-op")
	}
}

func TestRandomIsReduced(t *testing.T) {
	r := rng(8)
	for i := 0; i < 1000; i++ {
		if v := Random(r); uint64(v) >= Modulus {
			t.Fatalf("Random produced unreduced element %d", v)
		}
	}
}

// Property-based checks via testing/quick.

func TestQuickFieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	add3 := func(a, b, c uint64) bool {
		x, y, z := New(a), New(b), New(c)
		return x.Add(y.Add(z)) == x.Add(y).Add(z)
	}
	if err := quick.Check(add3, cfg); err != nil {
		t.Error(err)
	}
	mulDist := func(a, b, c uint64) bool {
		x, y, z := New(a), New(b), New(c)
		return x.Mul(y.Add(z)) == x.Mul(y).Add(x.Mul(z))
	}
	if err := quick.Check(mulDist, cfg); err != nil {
		t.Error(err)
	}
	subInverse := func(a, b uint64) bool {
		x, y := New(a), New(b)
		return x.Sub(y).Add(y) == x
	}
	if err := quick.Check(subInverse, cfg); err != nil {
		t.Error(err)
	}
	invRoundTrip := func(a uint64) bool {
		x := New(a)
		if x.IsZero() {
			return true
		}
		inv, err := x.Inv()
		return err == nil && x.Mul(inv) == One
	}
	if err := quick.Check(invRoundTrip, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkMul(b *testing.B) {
	r := rng(9)
	x, y := Random(r), Random(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = x.Mul(y)
	}
	_ = x
}

func BenchmarkInv(b *testing.B) {
	r := rng(10)
	x := RandomNonZero(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x, _ = x.Inv()
	}
	_ = x
}

func TestMulAddMatchesMulThenAdd(t *testing.T) {
	r := rand.New(rand.NewPCG(77, 1))
	for i := 0; i < 2000; i++ {
		e, a, b := Random(r), Random(r), Random(r)
		if got, want := e.MulAdd(a, b), e.Add(a.Mul(b)); got != want {
			t.Fatalf("MulAdd(%v, %v, %v) = %v, want %v", e, a, b, got, want)
		}
	}
	// Boundary values: the fused reduction must stay canonical.
	top := Element(Modulus - 1)
	for _, e := range []Element{0, 1, top} {
		for _, a := range []Element{0, 1, top} {
			for _, b := range []Element{0, 1, top} {
				if got, want := e.MulAdd(a, b), e.Add(a.Mul(b)); got != want {
					t.Fatalf("MulAdd(%v, %v, %v) = %v, want %v", e, a, b, got, want)
				}
			}
		}
	}
}

func TestAddScaled(t *testing.T) {
	r := rand.New(rand.NewPCG(78, 1))
	dst := make([]Element, 16)
	src := make([]Element, 16)
	want := make([]Element, 16)
	for i := range dst {
		dst[i], src[i] = Random(r), Random(r)
	}
	c := Random(r)
	for i := range want {
		want[i] = dst[i].Add(c.Mul(src[i]))
	}
	AddScaled(dst, src, c)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AddScaled[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddScaled must panic on length mismatch")
		}
	}()
	AddScaled(dst, src[:3], c)
}
