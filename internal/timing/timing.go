// Package timing derives the virtual-time termination bounds of every
// protocol in the stack from the constants of the primitives actually
// implemented, mirroring the paper's symbolic bounds (which assume the
// recursive ΠBGP of Berman–Garay–Perry; we substitute the classic
// phase-king SBA and track the changed constants here — see DESIGN.md).
//
// All bounds hold in the synchronous network; in the asynchronous
// network they are the "regular-mode" local timeouts after which
// fallback paths take over.
package timing

import (
	"repro/internal/sim"
)

// Bounds holds every derived deadline for a given (n, ts, ta, Δ, k).
type Bounds struct {
	Delta sim.Time

	// Acast: Bracha reliable broadcast completes within 3Δ for an honest
	// sender in a synchronous network (Lemma 2.4).
	Acast sim.Time
	// SBA: phase-king with t+1 phases of 3 rounds each.
	// (Paper: TBGP = (12n-6)·Δ.)
	SBA sim.Time
	// BC: ΠBC regular-mode deadline TBC = 3Δ + TSBA (paper: (12n-3)Δ).
	BC sim.Time
	// ABA: k·Δ on unanimous inputs (Lemma 3.3).
	ABA sim.Time
	// BA: TBA = TBC + TABA (Theorem 3.6).
	BA sim.Time
	// WPS: TWPS = 2Δ + 2TBC + TBA (Theorem 4.8).
	WPS sim.Time
	// VSS: TVSS = Δ + TWPS + 2TBC + TBA (Theorem 4.16).
	VSS sim.Time
	// ACS: TACS = TVSS + 2TBA (Lemma 5.1).
	ACS sim.Time
	// TripSh: TTripSh = TACS + 4Δ (Lemma 6.3).
	TripSh sim.Time
	// TripGen: TTripGen = TTripSh + 2TBA + Δ (Theorem 6.5).
	TripGen sim.Time
	// CirEval(DM): TTripGen + (DM + 2)·Δ (Theorem 7.1), via CirEval().
}

// New derives all bounds. t is the BA/BC threshold in use (the stack
// always runs its broadcast and BA instances with t = ts), k is the
// unanimous-input ABA round constant.
func New(n, t int, delta sim.Time, k int) Bounds {
	b := Bounds{Delta: delta}
	b.Acast = 3 * delta
	b.SBA = sim.Time(3*(t+1)) * delta
	b.BC = b.Acast + b.SBA
	b.ABA = sim.Time(k) * delta
	b.BA = b.BC + b.ABA
	b.WPS = 2*delta + 2*b.BC + b.BA
	b.VSS = delta + b.WPS + 2*b.BC + b.BA
	b.ACS = b.VSS + 2*b.BA
	b.TripSh = b.ACS + 4*delta
	b.TripGen = b.TripSh + 2*b.BA + delta
	return b
}

// CirEval returns the full circuit-evaluation deadline for a circuit of
// multiplicative depth dm (Theorem 7.1: TTripGen + (DM + 2)·Δ).
func (b Bounds) CirEval(dm int) sim.Time {
	return b.TripGen + sim.Time(dm+2)*b.Delta
}

// PaperBGP returns the paper's TBGP = (12n-6)·Δ, reported alongside our
// constants in EXPERIMENTS.md.
func PaperBGP(n int, delta sim.Time) sim.Time { return sim.Time(12*n-6) * delta }

// PaperBC returns the paper's TBC = (12n-3)·Δ.
func PaperBC(n int, delta sim.Time) sim.Time { return sim.Time(12*n-3) * delta }

// PaperCirEval returns the paper's (120n + DM + 6k - 20)·Δ bound.
func PaperCirEval(n, dm, k int, delta sim.Time) sim.Time {
	return sim.Time(120*n+dm+6*k-20) * delta
}
