package timing

import (
	"testing"

	"repro/internal/sim"
)

func TestDerivedBoundsComposeSymbolically(t *testing.T) {
	const (
		n     = 8
		ts    = 2
		delta = sim.Time(10)
		k     = 8
	)
	b := New(n, ts, delta, k)
	if b.Acast != 3*delta {
		t.Errorf("Acast = %d", b.Acast)
	}
	if b.SBA != sim.Time(3*(ts+1))*delta {
		t.Errorf("SBA = %d", b.SBA)
	}
	if b.BC != b.Acast+b.SBA {
		t.Errorf("BC = %d, want Acast+SBA", b.BC)
	}
	if b.ABA != sim.Time(k)*delta {
		t.Errorf("ABA = %d", b.ABA)
	}
	if b.BA != b.BC+b.ABA {
		t.Errorf("BA = %d", b.BA)
	}
	if b.WPS != 2*delta+2*b.BC+b.BA {
		t.Errorf("WPS = %d", b.WPS)
	}
	if b.VSS != delta+b.WPS+2*b.BC+b.BA {
		t.Errorf("VSS = %d", b.VSS)
	}
	if b.ACS != b.VSS+2*b.BA {
		t.Errorf("ACS = %d", b.ACS)
	}
	if b.TripSh != b.ACS+4*delta {
		t.Errorf("TripSh = %d", b.TripSh)
	}
	if b.TripGen != b.TripSh+2*b.BA+delta {
		t.Errorf("TripGen = %d", b.TripGen)
	}
	if b.CirEval(5) != b.TripGen+7*delta {
		t.Errorf("CirEval(5) = %d", b.CirEval(5))
	}
}

func TestBoundsMonotoneInParameters(t *testing.T) {
	small := New(5, 1, 10, 8)
	big := New(13, 4, 10, 8)
	if big.VSS <= small.VSS || big.ACS <= small.ACS || big.TripGen <= small.TripGen {
		t.Fatal("bounds not monotone in (n, t)")
	}
	slow := New(8, 2, 100, 8)
	fast := New(8, 2, 10, 8)
	if slow.CirEval(3) != 10*fast.CirEval(3) {
		t.Fatal("bounds not linear in Δ")
	}
}

func TestPaperConstants(t *testing.T) {
	if PaperBGP(8, 10) != (12*8-6)*10 {
		t.Errorf("PaperBGP = %d", PaperBGP(8, 10))
	}
	if PaperBC(8, 10) != (12*8-3)*10 {
		t.Errorf("PaperBC = %d", PaperBC(8, 10))
	}
	if PaperCirEval(8, 3, 8, 10) != (120*8+3+6*8-20)*10 {
		t.Errorf("PaperCirEval = %d", PaperCirEval(8, 3, 8, 10))
	}
}

func TestOursBelowPaperForModerateN(t *testing.T) {
	// The phase-king substitution tightens the constants for every
	// realistic n (3(t+1)+3 < 12n-3 whenever t < n/3).
	for _, n := range []int{4, 5, 8, 13, 16, 25} {
		ts := (n - 2) / 3
		if ts < 1 {
			ts = 1
		}
		b := New(n, ts, 10, 8)
		if b.BC >= PaperBC(n, 10) {
			t.Errorf("n=%d: our TBC %d not below paper %d", n, b.BC, PaperBC(n, 10))
		}
	}
}
