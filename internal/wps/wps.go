// Package wps implements ΠWPS (Fig 3, Theorem 4.8): the paper's
// best-of-both-worlds weak polynomial-sharing protocol for a dealer D
// with L polynomials of degree ts.
//
// D embeds each q^(ℓ)(·) in a random (ts,ts)-degree symmetric bivariate
// polynomial Q^(ℓ)(x,y) with Q^(ℓ)(0,y) = q^(ℓ)(y) and sends party P_i
// the row polynomials q_i^(ℓ)(x) = Q^(ℓ)(x, α_i). Parties exchange the
// supposedly common points and publish OK/NOK results through the
// consistency core (package consist), which also runs D's (W, E, F)
// announcement, the acceptance ΠBA, and the (n,ta)-star fallback path.
// Parties outside the certified sets reconstruct their rows by online
// error correction from the points of F (resp. F').
//
// In a synchronous network with an honest dealer every party holds its
// wps-shares {q^(ℓ)(α_i)} by TWPS = 2Δ + 2TBC + TBA; see DESIGN.md for
// the full property matrix and implementation notes.
package wps

import (
	"fmt"

	"repro/field"
	"repro/internal/aba"
	"repro/internal/consist"
	"repro/internal/proto"
	"repro/internal/rs"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/wire"
	"repro/poly"
)

// Message types on the instance's own path.
const (
	// MsgShare carries D's L row polynomials to one party.
	MsgShare uint8 = iota + 1
	// MsgPoints carries the L supposedly common points P_i -> P_j.
	MsgPoints
)

// WPS is one party's state in a ΠWPS instance.
type WPS struct {
	rt     *proto.Runtime
	inst   string
	dealer int
	L      int
	cfg    proto.Config
	start  sim.Time

	core *consist.Core

	// Dealer-only state.
	bivars []*poly.Symmetric

	// Row state.
	myRows     []poly.Poly
	havePoints map[int][]field.Element // sender -> L points
	sentPoints bool

	// Output path.
	oecs    []*rs.OEC
	oecFrom map[int]bool
	done    bool
	shares  []field.Element

	onOutput func(shares []field.Element)
}

// Deadline returns TWPS - T0 = 2Δ + 2·TBC + TBA.
func Deadline(cfg proto.Config) sim.Time {
	tb := timing.New(cfg.N, cfg.Ts, cfg.Delta, cfg.CoinRounds)
	return 2*cfg.Delta + 2*tb.BC + tb.BA
}

// New registers a ΠWPS instance anchored at structural start time start
// (a multiple of Δ). The dealer additionally calls Start (or StartRows)
// with its polynomials. onOutput fires exactly once per party that
// computes its wps-shares.
func New(rt *proto.Runtime, inst string, dealer, l int, cfg proto.Config, coin aba.CoinSource, start sim.Time, onOutput func(shares []field.Element)) *WPS {
	w := &WPS{
		rt:         rt,
		inst:       inst,
		dealer:     dealer,
		L:          l,
		cfg:        cfg,
		start:      start,
		havePoints: make(map[int][]field.Element),
		onOutput:   onOutput,
	}
	rt.Register(inst, w)
	w.core = consist.NewCore(rt, proto.Join(inst, "c"), dealer, cfg, coin, start+2*cfg.Delta, consist.Callbacks{
		VerifyNOK: func(i, j, idx int, val field.Element) bool {
			if w.bivars == nil || idx >= w.L {
				return false
			}
			return val == w.bivars[idx].Eval(poly.Alpha(j), poly.Alpha(i))
		},
		OnUpdate: func() { w.maybeOutput() },
	})
	return w
}

// Start provides the dealer's polynomials (each of degree ≤ ts) and
// distributes rows on freshly embedded random symmetric bivariate
// polynomials. Only the dealer calls it, at the structural start time
// when honest.
func (w *WPS) Start(qs []poly.Poly) {
	if w.rt.ID() != w.dealer {
		panic("wps: Start called by non-dealer")
	}
	if len(qs) != w.L {
		panic(fmt.Sprintf("wps: Start with %d polynomials, want %d", len(qs), w.L))
	}
	w.bivars = make([]*poly.Symmetric, w.L)
	for l, q := range qs {
		if q.Degree() > w.cfg.Ts {
			panic(fmt.Sprintf("wps: input polynomial %d has degree %d > ts=%d", l, q.Degree(), w.cfg.Ts))
		}
		s, err := poly.NewSymmetricRandom(w.rt.Rand(), w.cfg.Ts, q)
		if err != nil {
			panic(err)
		}
		w.bivars[l] = s
	}
	rows := make([][]poly.Poly, w.cfg.N)
	for i := 1; i <= w.cfg.N; i++ {
		rows[i-1] = make([]poly.Poly, w.L)
		for l := range rows[i-1] {
			rows[i-1][l] = w.bivars[l].RowForParty(i)
		}
	}
	w.sendRows(rows)
}

// StartRows distributes explicit per-party rows (rows[i-1] goes to
// party i). It exists for adversarial tests handing out inconsistent
// rows; honest dealers use Start.
func (w *WPS) StartRows(rows [][]poly.Poly) {
	if w.rt.ID() != w.dealer {
		panic("wps: StartRows called by non-dealer")
	}
	if len(rows) != w.cfg.N {
		panic("wps: StartRows needs one row vector per party")
	}
	w.sendRows(rows)
}

// SetBivariates equips a StartRows dealer with the underlying symmetric
// bivariate polynomials used for NOK pruning.
func (w *WPS) SetBivariates(bs []*poly.Symmetric) { w.bivars = bs }

func (w *WPS) sendRows(rows [][]poly.Poly) {
	for i := 1; i <= w.cfg.N; i++ {
		w.rt.Send(w.inst, i, MsgShare, wire.NewWriterCap(wire.PolysSize(rows[i-1])).Polys(rows[i-1]).Bytes())
	}
}

// Done reports whether this party has computed its wps-shares.
func (w *WPS) Done() bool { return w.done }

// Shares returns the computed wps-shares; valid only after Done.
func (w *WPS) Shares() []field.Element { return w.shares }

// Rows returns this party's received row polynomials (nil before the
// dealer's share arrives). The VSS layer uses them as the input of the
// party's own sub-WPS.
func (w *WPS) Rows() []poly.Poly { return w.myRows }

// BAOutcome reports the acceptance ΠBA's decision once made: 0 selects
// the (W,E,F) path, 1 the (n,ta)-star fallback path. Exposed for the
// branch-frequency ablation (A3 in DESIGN.md).
func (w *WPS) BAOutcome() (uint8, bool) { return w.core.BAOutput() }

// gridNext returns the smallest multiple of Δ that is ≥ now.
func (w *WPS) gridNext() sim.Time {
	now := w.rt.Now()
	d := w.cfg.Delta
	return ((now + d - 1) / d) * d
}

// Deliver implements proto.Handler for the instance's own path.
func (w *WPS) Deliver(from int, msgType uint8, body []byte) {
	switch msgType {
	case MsgShare:
		if from != w.dealer || w.myRows != nil {
			return
		}
		r := wire.NewReader(body)
		rows := r.Polys()
		if r.Done() != nil || len(rows) != w.L {
			return
		}
		for _, p := range rows {
			if p.Degree() > w.cfg.Ts {
				return // oversized row: drop the whole share
			}
		}
		w.myRows = rows
		w.rt.At(w.gridNext(), func() { w.sendPoints() })
		// Deterministic replay order: map iteration order must not leak
		// into the late-announcement send order.
		for j := 1; j <= w.cfg.N; j++ {
			if _, ok := w.havePoints[j]; ok {
				w.checkPair(j)
			}
		}
		w.maybeOutput()
	case MsgPoints:
		if _, dup := w.havePoints[from]; dup {
			return
		}
		r := wire.NewReader(body)
		pts := r.Elements()
		if r.Done() != nil || len(pts) != w.L {
			return
		}
		w.havePoints[from] = pts
		w.checkPair(from)
		w.feedOEC(from, pts)
	}
}

func (w *WPS) sendPoints() {
	if w.sentPoints || w.myRows == nil {
		return
	}
	w.sentPoints = true
	for j := 1; j <= w.cfg.N; j++ {
		vals := make([]field.Element, w.L)
		for l := range vals {
			vals[l] = w.myRows[l].Eval(poly.Alpha(j))
		}
		w.rt.Send(w.inst, j, MsgPoints, wire.NewWriterCap(2+8*len(vals)).Elements(vals).Bytes())
	}
}

// checkPair evaluates the pair-wise consistency check with party j once
// both our rows and j's points are available.
func (w *WPS) checkPair(j int) {
	if w.myRows == nil {
		return
	}
	pts, ok := w.havePoints[j]
	if !ok {
		return
	}
	rep := &consist.Report{OK: true}
	for l := 0; l < w.L; l++ {
		if pts[l] != w.myRows[l].Eval(poly.Alpha(j)) {
			rep.OK = false
			rep.NokIdx = l
			rep.NokVal = w.myRows[l].Eval(poly.Alpha(j))
			break
		}
	}
	w.core.SetReport(j, rep)
}

// maybeOutput drives the two output paths of Fig 3's local computation.
func (w *WPS) maybeOutput() {
	if w.done {
		return
	}
	out, ok := w.core.BAOutput()
	if !ok {
		return
	}
	if out == 0 {
		wef, ok := w.core.WEFMsg()
		if !ok {
			return
		}
		if contains(wef.W, w.rt.ID()) && w.myRows != nil {
			w.outputOwn()
			return
		}
		w.ensureOEC(wef.Star.F)
		w.pollOEC()
		return
	}
	star, ok := w.core.Star()
	if !ok {
		return
	}
	if contains(star.F, w.rt.ID()) && w.myRows != nil {
		w.outputOwn()
		return
	}
	w.ensureOEC(star.F)
	w.pollOEC()
}

func contains(vs []int, x int) bool {
	for _, v := range vs {
		if v == x {
			return true
		}
	}
	return false
}

func (w *WPS) outputOwn() {
	shares := make([]field.Element, w.L)
	for l := range shares {
		shares[l] = w.myRows[l].Eval(field.Zero)
	}
	w.finish(shares)
}

// ensureOEC initialises the L online error-correcting decoders fed by
// the points of the provider set (F or F').
func (w *WPS) ensureOEC(providers []int) {
	if w.oecs != nil {
		return
	}
	w.oecs = make([]*rs.OEC, w.L)
	for l := range w.oecs {
		// The L decoders are fed identical point sequences, so they
		// share one interpolation kernel through the per-run cache.
		w.oecs[l] = rs.NewOECCached(w.cfg.Ts, w.cfg.Ts, w.rt.Kernels())
	}
	w.oecFrom = make(map[int]bool, len(providers))
	for _, p := range providers {
		w.oecFrom[p] = true
	}
	for j := 1; j <= w.cfg.N; j++ {
		pts, ok := w.havePoints[j]
		if !ok || !w.oecFrom[j] {
			continue
		}
		for l, o := range w.oecs {
			o.Add(poly.Alpha(j), pts[l])
		}
	}
}

func (w *WPS) feedOEC(j int, pts []field.Element) {
	if w.oecs == nil || !w.oecFrom[j] {
		return
	}
	for l, o := range w.oecs {
		o.Add(poly.Alpha(j), pts[l])
	}
	w.pollOEC()
}

func (w *WPS) pollOEC() {
	if w.done || w.oecs == nil {
		return
	}
	shares := make([]field.Element, w.L)
	for l, o := range w.oecs {
		q, ok := o.Poll()
		if !ok {
			return
		}
		shares[l] = q.Eval(field.Zero)
	}
	w.finish(shares)
}

func (w *WPS) finish(shares []field.Element) {
	if w.done {
		return
	}
	w.done = true
	w.shares = shares
	if w.onOutput != nil {
		w.onOutput(shares)
	}
}
