package wps

import (
	"math/rand/v2"
	"testing"

	"repro/field"
	"repro/internal/adversary"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/poly"
)

// TestBogusWEFRejected: a corrupt dealer distributes fine rows but
// broadcasts a fabricated (W, E, F) naming parties whose OK edges do
// not exist in the regular graph. No honest party may accept it at the
// deadline — yet the run must still conclude via one of the two paths
// with correct shares (the rows themselves are consistent).
func TestBogusWEFRejected(t *testing.T) {
	c := cfg8()
	// Replace the dealer's wef broadcast payload with a fabricated one:
	// W = E = F = {1..8} — structurally valid but edge-unsupported
	// (degree conditions will fail for parties whose vectors were
	// garbled away).
	bogus := wire.NewWriter().
		Ints([]int{1, 2, 3, 4, 5, 6, 7, 8}).
		Ints([]int{1, 2, 3, 4, 5, 6, 7, 8}).
		Ints([]int{1, 2, 3, 4, 5, 6, 7, 8}).Bytes()
	ctrl := adversary.NewController().
		Set(1, adversary.Chain(
			// Suppress two parties' views of the dealer's points so the
			// real graph is missing edges the bogus WEF claims.
			adversary.Mutate(adversary.MutateSpec{
				Match: func(env sim.Envelope) bool {
					return env.Inst == "wps" && env.Type == MsgShare && env.To == 4
				},
				Rewrite: func(env sim.Envelope) []byte { return []byte{0xff} },
			}),
			adversary.Mutate(adversary.MutateSpec{
				Match: func(env sim.Envelope) bool {
					return env.Inst == "wps/c/wef/acast" && env.Type == 1
				},
				Rewrite: func(env sim.Envelope) []byte {
					return wire.NewWriter().Blob(bogus).Bytes()
				},
			}),
		))
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: c, Network: proto.Sync, Seed: 13, Corrupt: []int{1}, Interceptor: ctrl,
	})
	h := newHarness(w, 1, 1, 13)
	r := rand.New(rand.NewPCG(13, 13))
	qs := randPolys(r, 1, c.Ts)
	h.insts[1].Start(qs)
	w.RunToQuiescence()
	// Party 4 got garbage rows (dropped); everyone else consistent.
	// Whatever branch ran, outputs must obey the weak-commitment
	// structure.
	any := false
	for i := 2; i <= c.N; i++ {
		if h.outs[i] != nil {
			any = true
		}
	}
	if any {
		h.checkCommitment(t, 1, c.Ts+1)
	}
	// And no honest party may have accepted the fabricated WEF as its
	// regular-mode basis when the degree conditions fail: if BA said 0,
	// some honest party legitimately validated a WEF — that is only
	// possible if the graph actually supported it.
	for i := 2; i <= c.N; i++ {
		if out, ok := h.insts[i].BAOutcome(); ok && out == 0 {
			// Acceptance implies validation; nothing more to assert —
			// checkCommitment above already confirmed share structure.
			return
		}
	}
}

// TestDealerOversizedPolynomialsDropped: rows of degree > ts must be
// rejected at decode time, leaving the receiver share-less (it then
// relies on the OEC path or never outputs).
func TestDealerOversizedPolynomialsDropped(t *testing.T) {
	c := cfg5()
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 14, Corrupt: []int{1}})
	h := newHarness(w, 1, 1, 14)
	r := rand.New(rand.NewPCG(14, 14))
	// Dealer sends degree-(ts+3) rows to everyone.
	rows := make([][]poly.Poly, c.N)
	for i := range rows {
		rows[i] = []poly.Poly{poly.Random(r, c.Ts+3, field.Random(r))}
	}
	h.insts[1].StartRows(rows)
	w.RunToQuiescence()
	for i := 2; i <= c.N; i++ {
		if h.insts[i].Rows() != nil {
			t.Fatalf("party %d accepted an oversized row polynomial", i)
		}
		if h.outs[i] != nil {
			t.Fatalf("party %d computed an output from oversized rows", i)
		}
	}
}

// TestPointsWrongLengthDropped: POINTS messages with the wrong batch
// size must be ignored rather than corrupting pair checks.
func TestPointsWrongLengthDropped(t *testing.T) {
	c := cfg5()
	ctrl := adversary.NewController().Set(3, adversary.Mutate(adversary.MutateSpec{
		Match: func(env sim.Envelope) bool { return env.Inst == "wps" && env.Type == MsgPoints },
		Rewrite: func(env sim.Envelope) []byte {
			return wire.NewWriter().Elements([]field.Element{1, 2, 3}).Bytes() // wrong L
		},
	}))
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: c, Network: proto.Sync, Seed: 15, Corrupt: []int{3}, Interceptor: ctrl,
	})
	h := newHarness(w, 2, 1, 15)
	r := rand.New(rand.NewPCG(15, 15))
	qs := randPolys(r, 1, c.Ts)
	h.insts[2].Start(qs)
	w.RunToQuiescence()
	for i := 1; i <= c.N; i++ {
		if w.IsCorrupt(i) {
			continue
		}
		if h.outs[i] == nil || h.outs[i][0] != qs[0].Eval(poly.Alpha(i)) {
			t.Fatalf("party %d bad output under malformed points", i)
		}
	}
}
