package wps

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/field"
	"repro/internal/aba"
	"repro/internal/adversary"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/poly"
)

func cfg8() proto.Config { return proto.Config{N: 8, Ts: 2, Ta: 1, Delta: 10, CoinRounds: 8} }
func cfg5() proto.Config { return proto.Config{N: 5, Ts: 1, Ta: 1, Delta: 10, CoinRounds: 8} }

type harness struct {
	w     *proto.World
	insts []*WPS
	outs  [][]field.Element
	outAt []sim.Time
}

func newHarness(w *proto.World, dealer, l int, seed uint64) *harness {
	h := &harness{
		w:     w,
		insts: make([]*WPS, w.Cfg.N+1),
		outs:  make([][]field.Element, w.Cfg.N+1),
		outAt: make([]sim.Time, w.Cfg.N+1),
	}
	coin := aba.DefaultCoin(seed)
	for i := 1; i <= w.Cfg.N; i++ {
		i := i
		h.insts[i] = New(w.Runtimes[i], "wps", dealer, l, w.Cfg, coin, 0, func(s []field.Element) {
			h.outs[i] = s
			h.outAt[i] = w.Sched.Now()
		})
	}
	return h
}

func randPolys(r *rand.Rand, l, d int) []poly.Poly {
	qs := make([]poly.Poly, l)
	for i := range qs {
		qs[i] = poly.Random(r, d, field.Random(r))
	}
	return qs
}

// checkCommitment verifies the weak/strong commitment structure: honest
// outputs lie on a single degree-ts polynomial per slot, and at least
// minHolders honest parties have output.
func (h *harness) checkCommitment(t *testing.T, l, minHolders int) []poly.Poly {
	t.Helper()
	committed := make([]poly.Poly, l)
	var holders []int
	for i := 1; i <= h.w.Cfg.N; i++ {
		if h.w.IsCorrupt(i) || h.outs[i] == nil {
			continue
		}
		holders = append(holders, i)
		if len(h.outs[i]) != l {
			t.Fatalf("party %d output %d shares, want %d", i, len(h.outs[i]), l)
		}
	}
	if len(holders) < minHolders {
		t.Fatalf("only %d honest holders, want at least %d", len(holders), minHolders)
	}
	ts := h.w.Cfg.Ts
	if len(holders) < ts+1 {
		t.Fatalf("cannot interpolate with %d holders", len(holders))
	}
	for slot := 0; slot < l; slot++ {
		pts := make([]poly.Point, 0, ts+1)
		for _, i := range holders[:ts+1] {
			pts = append(pts, poly.Point{X: poly.Alpha(i), Y: h.outs[i][slot]})
		}
		q, err := poly.Interpolate(pts)
		if err != nil {
			t.Fatal(err)
		}
		if q.Degree() > ts {
			t.Fatalf("slot %d: committed polynomial degree %d > ts", slot, q.Degree())
		}
		for _, i := range holders {
			if h.outs[i][slot] != q.Eval(poly.Alpha(i)) {
				t.Fatalf("slot %d: party %d share off the committed polynomial", slot, i)
			}
		}
		committed[slot] = q
	}
	return committed
}

func TestHonestDealerSync(t *testing.T) {
	for _, c := range []proto.Config{cfg5(), cfg8()} {
		for seed := uint64(0); seed < 3; seed++ {
			w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: seed})
			const L = 3
			h := newHarness(w, 2, L, seed)
			r := rand.New(rand.NewPCG(seed, 42))
			qs := randPolys(r, L, c.Ts)
			h.insts[2].Start(qs)
			w.RunToQuiescence()
			deadline := Deadline(c)
			for i := 1; i <= c.N; i++ {
				if h.outs[i] == nil {
					t.Fatalf("n=%d seed=%d: party %d no output", c.N, seed, i)
				}
				for l := 0; l < L; l++ {
					if h.outs[i][l] != qs[l].Eval(poly.Alpha(i)) {
						t.Fatalf("n=%d seed=%d: party %d wrong share for poly %d", c.N, seed, i, l)
					}
				}
				// ts-correctness: output at time ≤ TWPS.
				if h.outAt[i] > deadline {
					t.Fatalf("n=%d seed=%d: party %d output at %d > TWPS=%d", c.N, seed, i, h.outAt[i], deadline)
				}
			}
		}
	}
}

func TestHonestDealerAsync(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		c := cfg8()
		w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Async, Seed: seed})
		const L = 2
		h := newHarness(w, 1, L, seed)
		r := rand.New(rand.NewPCG(seed, 7))
		qs := randPolys(r, L, c.Ts)
		h.insts[1].Start(qs)
		w.RunToQuiescence()
		for i := 1; i <= c.N; i++ {
			if h.outs[i] == nil {
				t.Fatalf("seed %d: party %d never output (ta-correctness)", seed, i)
			}
			for l := 0; l < L; l++ {
				if h.outs[i][l] != qs[l].Eval(poly.Alpha(i)) {
					t.Fatalf("seed %d: party %d wrong share", seed, i)
				}
			}
		}
	}
}

func TestHonestDealerAsyncWithCorruption(t *testing.T) {
	// ta = 1 corruption under asynchrony; corrupt party garbles all its
	// WPS traffic. Honest parties must still converge on q.
	for seed := uint64(0); seed < 3; seed++ {
		c := cfg8()
		ctrl := adversary.NewController().Set(5, adversary.GarbleMatching(func(string) bool { return true }))
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: c, Network: proto.Async, Seed: seed, Corrupt: []int{5}, Interceptor: ctrl,
		})
		h := newHarness(w, 1, 1, seed)
		r := rand.New(rand.NewPCG(seed, 9))
		qs := randPolys(r, 1, c.Ts)
		h.insts[1].Start(qs)
		w.RunToQuiescence()
		for i := 1; i <= c.N; i++ {
			if w.IsCorrupt(i) {
				continue
			}
			if h.outs[i] == nil || h.outs[i][0] != qs[0].Eval(poly.Alpha(i)) {
				t.Fatalf("seed %d: party %d bad output %v", seed, i, h.outs[i])
			}
		}
	}
}

func TestHonestDealerSyncWithByzantineParties(t *testing.T) {
	// ts = 2 corruptions in sync; corrupt parties send wrong points and
	// bogus NOKs. Honest parties must all get correct shares by TWPS.
	for seed := uint64(0); seed < 3; seed++ {
		c := cfg8()
		ctrl := adversary.NewController().
			Set(4, adversary.GarbleMatching(adversary.InstanceContains("res"))).
			Set(7, adversary.Mutate(adversary.MutateSpec{
				Match: func(env sim.Envelope) bool { return env.Inst == "wps" && env.Type == MsgPoints },
				Rewrite: func(env sim.Envelope) []byte {
					// Flip a byte inside the points payload.
					b := append([]byte(nil), env.Body...)
					if len(b) > 3 {
						b[len(b)-1] ^= 1
					}
					return b
				},
			}))
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: c, Network: proto.Sync, Seed: seed, Corrupt: []int{4, 7}, Interceptor: ctrl,
		})
		h := newHarness(w, 3, 1, seed)
		r := rand.New(rand.NewPCG(seed, 11))
		qs := randPolys(r, 1, c.Ts)
		h.insts[3].Start(qs)
		w.RunToQuiescence()
		deadline := Deadline(c)
		for i := 1; i <= c.N; i++ {
			if w.IsCorrupt(i) {
				continue
			}
			if h.outs[i] == nil || h.outs[i][0] != qs[0].Eval(poly.Alpha(i)) {
				t.Fatalf("seed %d: party %d bad output", seed, i)
			}
			if h.outAt[i] > deadline {
				t.Fatalf("seed %d: party %d late output %d > %d", seed, i, h.outAt[i], deadline)
			}
		}
	}
}

func TestSilentDealerNoOutput(t *testing.T) {
	ctrl := adversary.NewController().Set(2, adversary.Silent())
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: cfg8(), Network: proto.Sync, Seed: 1, Corrupt: []int{2}, Interceptor: ctrl,
	})
	h := newHarness(w, 2, 1, 1)
	r := rand.New(rand.NewPCG(1, 1))
	h.insts[2].Start(randPolys(r, 1, w.Cfg.Ts))
	w.RunToQuiescence()
	for i := 1; i <= w.Cfg.N; i++ {
		if !w.IsCorrupt(i) && h.outs[i] != nil {
			t.Fatalf("party %d computed output from a silent dealer", i)
		}
	}
}

// corruptRows builds a dealer input where the named victims receive
// random garbage rows instead of rows on the bivariate polynomials.
func corruptRows(r *rand.Rand, c proto.Config, l int, victims map[int]bool) ([][]poly.Poly, []*poly.Symmetric, []poly.Poly) {
	qs := randPolys(r, l, c.Ts)
	bivars := make([]*poly.Symmetric, l)
	for i := range bivars {
		s, err := poly.NewSymmetricRandom(r, c.Ts, qs[i])
		if err != nil {
			panic(err)
		}
		bivars[i] = s
	}
	rows := make([][]poly.Poly, c.N)
	for i := 1; i <= c.N; i++ {
		rows[i-1] = make([]poly.Poly, l)
		for slot := range rows[i-1] {
			if victims[i] {
				rows[i-1][slot] = poly.Random(r, c.Ts, field.Random(r))
			} else {
				rows[i-1][slot] = bivars[slot].RowForParty(i)
			}
		}
	}
	return rows, bivars, qs
}

func TestCorruptDealerInconsistentRowsSync(t *testing.T) {
	// D (corrupt) hands two parties garbage rows. ts-weak commitment:
	// either no honest output, or ≥ ts+1 honest parties hold shares of
	// a fixed degree-ts polynomial and every honest output lies on it.
	for seed := uint64(0); seed < 4; seed++ {
		c := cfg8()
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: c, Network: proto.Sync, Seed: seed, Corrupt: []int{1},
		})
		h := newHarness(w, 1, 2, seed)
		r := rand.New(rand.NewPCG(seed, 21))
		rows, bivars, _ := corruptRows(r, c, 2, map[int]bool{3: true, 6: true})
		h.insts[1].StartRows(rows)
		h.insts[1].SetBivariates(bivars)
		w.RunToQuiescence()
		any := false
		for i := 2; i <= c.N; i++ {
			if h.outs[i] != nil {
				any = true
			}
		}
		if !any {
			continue // "no honest party computes any output" branch
		}
		h.checkCommitment(t, 2, c.Ts+1)
	}
}

func TestCorruptDealerInconsistentRowsAsync(t *testing.T) {
	// ta-strong commitment: under asynchrony, if any honest party
	// outputs, *every* honest party eventually outputs shares of the
	// same polynomial.
	for seed := uint64(0); seed < 4; seed++ {
		c := cfg8()
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: c, Network: proto.Async, Seed: seed, Corrupt: []int{1},
		})
		h := newHarness(w, 1, 1, seed)
		r := rand.New(rand.NewPCG(seed, 22))
		rows, bivars, _ := corruptRows(r, c, 1, map[int]bool{4: true})
		h.insts[1].StartRows(rows)
		h.insts[1].SetBivariates(bivars)
		w.RunToQuiescence()
		any := false
		for i := 2; i <= c.N; i++ {
			if h.outs[i] != nil {
				any = true
			}
		}
		if !any {
			continue
		}
		// Strong commitment: all honest must output.
		h.checkCommitment(t, 1, c.N-1)
	}
}

func TestPrivacyAdversaryPointCount(t *testing.T) {
	// Structural privacy check (Lemma 4.1): with an honest dealer, the
	// ts corrupt parties learn exactly their own rows plus the points
	// honest parties send them — all of which are determined by the
	// corrupt rows themselves (q_i(α_j) = q_j(α_i)). We verify the
	// latter identity holds for every honest→corrupt point, i.e. the
	// adversary receives nothing beyond its own rows.
	c := cfg8()
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 5, Corrupt: []int{2, 6}})
	h := newHarness(w, 1, 1, 5)
	r := rand.New(rand.NewPCG(5, 5))
	qs := randPolys(r, 1, c.Ts)
	h.insts[1].Start(qs)
	w.RunToQuiescence()
	for _, corrupt := range []int{2, 6} {
		inst := h.insts[corrupt]
		rows := inst.Rows()
		if rows == nil {
			t.Fatal("corrupt party missing rows")
		}
		for from, pts := range inst.havePoints {
			if w.IsCorrupt(from) {
				continue
			}
			if pts[0] != rows[0].Eval(poly.Alpha(from)) {
				t.Fatalf("honest party %d leaked a point not derivable from corrupt rows", from)
			}
		}
	}
}

func TestDeterministicRun(t *testing.T) {
	run := func() string {
		c := cfg5()
		w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Async, Seed: 31})
		h := newHarness(w, 1, 1, 31)
		r := rand.New(rand.NewPCG(31, 31))
		h.insts[1].Start(randPolys(r, 1, c.Ts))
		w.RunToQuiescence()
		s := ""
		for i := 1; i <= c.N; i++ {
			s += fmt.Sprintf("%v@%d;", h.outs[i], h.outAt[i])
		}
		return s
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic WPS run:\n%s\n%s", a, b)
	}
}

func TestNonDealerStartPanics(t *testing.T) {
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg5(), Network: proto.Sync, Seed: 1})
	h := newHarness(w, 1, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Start by non-dealer should panic")
		}
	}()
	h.insts[2].Start(randPolys(rand.New(rand.NewPCG(1, 2)), 1, w.Cfg.Ts))
}
