package sim

import (
	"math/rand/v2"
	"testing"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 99)) }

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(10, func() { order = append(order, 2) })
	s.At(5, func() { order = append(order, 1) })
	s.At(10, func() { order = append(order, 3) }) // same time: FIFO by seq
	s.At(20, func() { order = append(order, 4) })
	s.RunToQuiescence()
	want := []int{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 20 {
		t.Fatalf("Now = %d, want 20", s.Now())
	}
}

func TestSchedulerNestedEvents(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	s.At(1, func() {
		s.After(4, func() { fired = append(fired, s.Now()) })
	})
	s.RunToQuiescence()
	if len(fired) != 1 || fired[0] != 5 {
		t.Fatalf("nested event fired at %v, want [5]", fired)
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i*10), func() { count++ })
	}
	s.RunUntil(50)
	if count != 5 {
		t.Fatalf("ran %d events by t=50, want 5", count)
	}
	if s.Now() != 50 {
		t.Fatalf("Now = %d, want 50", s.Now())
	}
	s.RunToQuiescence()
	if count != 10 {
		t.Fatalf("ran %d events total, want 10", count)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {})
	s.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	s.At(5, func() {})
}

func TestSchedulerLimit(t *testing.T) {
	s := NewScheduler()
	s.Limit = 3
	count := 0
	var loop func()
	loop = func() { count++; s.After(1, loop) }
	s.At(0, loop)
	s.RunToQuiescence()
	if count != 3 {
		t.Fatalf("limit ignored: ran %d events", count)
	}
}

type capture struct {
	got []Envelope
}

func (c *capture) Dispatch(env Envelope) { c.got = append(c.got, env) }

func TestSyncPolicyBound(t *testing.T) {
	p := SyncPolicy{Delta: 10}
	r := rng(1)
	for i := 0; i < 1000; i++ {
		d := p.Delay(r, 1, 2, 0)
		if d < 1 || d >= 10 {
			t.Fatalf("sync delay %d outside [1, Δ)", d)
		}
	}
	if d := p.Delay(r, 3, 3, 0); d != 1 {
		t.Fatalf("loopback delay = %d, want 1", d)
	}
}

func TestAsyncPolicyFiniteAndUnbounded(t *testing.T) {
	p := AsyncPolicy{Delta: 10}
	r := rng(2)
	sawBeyondDelta := false
	for i := 0; i < 2000; i++ {
		d := p.Delay(r, 1, 2, 0)
		if d < 1 {
			t.Fatalf("async delay %d < 1", d)
		}
		if d > 10 {
			sawBeyondDelta = true
		}
	}
	if !sawBeyondDelta {
		t.Fatal("async policy never exceeded Δ; not modelling asynchrony")
	}
}

func TestStarvePolicy(t *testing.T) {
	base := SyncPolicy{Delta: 5}
	p := StarvePolicy{
		Base:   base,
		Until:  1000,
		Starve: func(from, to int) bool { return from == 1 && to == 2 },
	}
	r := rng(3)
	if d := p.Delay(r, 1, 2, 0); d <= 1000 {
		t.Fatalf("starved link delivered at +%d, want beyond 1000", d)
	}
	if d := p.Delay(r, 2, 1, 0); d > 5 {
		t.Fatalf("unstarved link delayed %d", d)
	}
	// After the horizon the base policy applies.
	if d := p.Delay(r, 1, 2, 2000); d > 5 {
		t.Fatalf("post-horizon delay %d", d)
	}
}

func TestNetworkDelivery(t *testing.T) {
	s := NewScheduler()
	nw := NewNetwork(3, s, SyncPolicy{Delta: 10}, rng(4))
	c2 := &capture{}
	nw.Attach(2, c2)
	nw.Send(Envelope{From: 1, To: 2, Inst: "x", Type: 7, Body: []byte{1, 2, 3}})
	s.RunToQuiescence()
	if len(c2.got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(c2.got))
	}
	got := c2.got[0]
	if got.From != 1 || got.Type != 7 || string(got.Body) != "\x01\x02\x03" {
		t.Fatalf("wrong envelope: %+v", got)
	}
	m := nw.Metrics()
	if m.Honest.Messages != 1 {
		t.Fatalf("metrics messages = %d, want 1", m.Honest.Messages)
	}
	wantBytes := uint64(3 + 1 + 6)
	if m.Honest.Bytes != wantBytes {
		t.Fatalf("metrics bytes = %d, want %d", m.Honest.Bytes, wantBytes)
	}
}

type dropAll struct{}

func (dropAll) Intercept(_ Time, _ Envelope) []Delivery { return nil }

func TestNetworkInterceptorAppliesOnlyToCorrupt(t *testing.T) {
	s := NewScheduler()
	nw := NewNetwork(3, s, SyncPolicy{Delta: 10}, rng(5))
	c3 := &capture{}
	nw.Attach(3, c3)
	nw.SetCorrupt([]int{1}, dropAll{})
	nw.Send(Envelope{From: 1, To: 3, Inst: "x"})
	nw.Send(Envelope{From: 2, To: 3, Inst: "x"})
	s.RunToQuiescence()
	if len(c3.got) != 1 || c3.got[0].From != 2 {
		t.Fatalf("interceptor misapplied: got %+v", c3.got)
	}
	if !nw.IsCorrupt(1) || nw.IsCorrupt(2) {
		t.Fatal("corrupt set wrong")
	}
	if got := nw.CorruptSet(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("CorruptSet = %v", got)
	}
}

type duplicator struct{}

func (duplicator) Intercept(_ Time, env Envelope) []Delivery {
	return []Delivery{{Env: env}, {Env: env, DelayExtra: 100}}
}

func TestNetworkInterceptorDuplication(t *testing.T) {
	s := NewScheduler()
	nw := NewNetwork(2, s, SyncPolicy{Delta: 5}, rng(6))
	c2 := &capture{}
	nw.Attach(2, c2)
	nw.SetCorrupt([]int{1}, duplicator{})
	nw.Send(Envelope{From: 1, To: 2, Inst: "x"})
	s.RunToQuiescence()
	if len(c2.got) != 2 {
		t.Fatalf("duplicated delivery count = %d, want 2", len(c2.got))
	}
	if s.Now() <= 100 {
		t.Fatalf("extra delay not applied; finished at %d", s.Now())
	}
}

func TestMetricsByFamily(t *testing.T) {
	m := NewMetrics(4)
	m.Record(Envelope{From: 1, To: 2, Inst: "vss/3/wps/1", Body: make([]byte, 10)}, false, 3)
	m.Record(Envelope{From: 1, To: 2, Inst: "ba/7", Body: make([]byte, 5)}, false, 7)
	m.Record(Envelope{From: 2, To: 1, Inst: "vss/9", Body: make([]byte, 2)}, true, 5)
	if m.Honest.Messages != 2 || m.Corrupt.Messages != 1 {
		t.Fatalf("honest/corrupt split wrong: %+v", m)
	}
	if m.ByFamily["vss"].Messages != 1 || m.ByFamily["ba"].Messages != 1 {
		t.Fatalf("family breakdown wrong: %v", m.ByFamily)
	}
	if m.String() == "" {
		t.Fatal("String should render")
	}
}

func TestTopLabel(t *testing.T) {
	if got := TopLabel("vss/3/wps"); got != "vss" {
		t.Fatalf("TopLabel = %q", got)
	}
	if got := TopLabel("plain"); got != "plain" {
		t.Fatalf("TopLabel = %q", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := NewScheduler()
		nw := NewNetwork(4, s, AsyncPolicy{Delta: 10}, rng(42))
		c := &capture{}
		var times []Time
		nw.Attach(2, DispatcherFunc(func(env Envelope) {
			c.Dispatch(env)
			times = append(times, s.Now())
		}))
		for i := 0; i < 50; i++ {
			nw.Send(Envelope{From: 1, To: 2, Inst: "x", Body: []byte{byte(i)}})
		}
		s.RunToQuiescence()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 50 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// DispatcherFunc adapts a function to Dispatcher for tests.
type DispatcherFunc func(Envelope)

func (f DispatcherFunc) Dispatch(env Envelope) { f(env) }

func TestBurstPolicyAvoidsOutages(t *testing.T) {
	// Down=98 leaves only a 2-tick live window: the release jitter must
	// not wrap the delivery into the next window's outage prefix.
	for _, down := range []Time{30, 98} {
		r := rng(4)
		p := BurstPolicy{Base: SyncPolicy{Delta: 10}, Period: 100, Down: down}
		for now := Time(0); now < 500; now += 7 {
			d := p.Delay(r, 1, 2, now)
			if d < 1 {
				t.Fatalf("down=%d: non-positive delay %d at t=%d", down, d, now)
			}
			if phase := (now + d) % 100; phase < down {
				t.Fatalf("down=%d: delivery at t=%d lands at phase %d, inside the outage", down, now+d, phase)
			}
		}
	}
}

func TestBurstPolicyZeroDownIsTransparent(t *testing.T) {
	base := SyncPolicy{Delta: 10}
	p := BurstPolicy{Base: base, Period: 100, Down: 0}
	ra, rb := rng(9), rng(9)
	for now := Time(0); now < 200; now += 13 {
		if got, want := p.Delay(ra, 1, 2, now), base.Delay(rb, 1, 2, now); got != want {
			t.Fatalf("t=%d: burst with Down=0 changed delay %d -> %d", now, want, got)
		}
	}
}
