package sim

import (
	"math/rand/v2"
	"testing"
)

// TestStarvePolicyHorizonSweep complements TestStarvePolicy with a
// sweep over send times: starved deliveries land in [Until, Until+16],
// other links and the post-horizon regime keep the base policy's
// bounds, and a nil predicate means no starvation.
func TestStarvePolicyHorizonSweep(t *testing.T) {
	const until = Time(100)
	base := SyncPolicy{Delta: 10}
	p := StarvePolicy{
		Base:   base,
		Until:  until,
		Starve: func(from, to int) bool { return from == 2 },
	}
	rng := rand.New(rand.NewPCG(7, 0))

	// A starved link is withheld past the horizon, but only finitely.
	for i := 0; i < 100; i++ {
		now := Time(i)
		d := p.Delay(rng, 2, 3, now)
		if now+d < until {
			t.Fatalf("starved message at now=%d delivered at %d, before the horizon %d", now, now+d, until)
		}
		if now+d > until+16 {
			t.Fatalf("starved message at now=%d delayed to %d, far beyond the horizon %d", now, now+d, until)
		}
	}

	// Non-starved links see the base policy's delay bounds.
	for i := 0; i < 100; i++ {
		d := p.Delay(rng, 3, 2, 0)
		if d < 1 || d >= base.Delta {
			t.Fatalf("non-starved delay %d outside the sync bound [1, %d)", d, base.Delta)
		}
	}

	// After the horizon the starved link recovers.
	for i := 0; i < 100; i++ {
		d := p.Delay(rng, 2, 3, until+1)
		if d < 1 || d >= base.Delta {
			t.Fatalf("post-horizon delay %d outside the sync bound [1, %d)", d, base.Delta)
		}
	}

	// A nil Starve predicate degrades to the base policy.
	p.Starve = nil
	if d := p.Delay(rng, 2, 3, 0); d < 1 || d >= base.Delta {
		t.Fatalf("nil-predicate delay %d outside the sync bound [1, %d)", d, base.Delta)
	}
}
