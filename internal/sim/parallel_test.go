package sim

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/obs"
)

// parHarness is a synthetic multi-party workload exercising everything
// the parallel path stages: per-party RNG draws, sends through the
// shared network (delays drawn from the shared policy RNG), party
// timers (both priority classes), staged traces, defers and tracked
// metrics prefixes. Callbacks only touch per-party state — the same
// constraint real protocol runtimes obey — so the one harness runs at
// every worker count, including under -race.
type parHarness struct {
	n     int
	s     *Scheduler
	nw    *Network
	rngs  []*rand.Rand
	logs  [][]string // per-party observation log, disjoint slots
	folds []string   // shared; only appended via DeferParty (merge order)
}

func newParHarness(n int, workers int, seed uint64) *parHarness {
	h := &parHarness{n: n, s: NewScheduler()}
	if workers > 0 {
		h.s.SetParallel(workers, n)
	}
	h.nw = NewNetwork(n, h.s, AsyncPolicy{Delta: 10}, rand.New(rand.NewPCG(seed, 7)))
	h.rngs = make([]*rand.Rand, n+1)
	h.logs = make([][]string, n+1)
	for i := 1; i <= n; i++ {
		i := i
		h.rngs[i] = rand.New(rand.NewPCG(seed^uint64(i)*0x9e3779b97f4a7c15, uint64(i)))
		h.nw.Attach(i, DispatcherFunc(func(env Envelope) { h.deliver(i, env) }))
	}
	return h
}

// deliver is the per-party protocol step: log the message, draw from
// the party's stream, fan out to two peers, schedule a follow-up timer
// and fold a completion into shared state via DeferParty.
func (h *parHarness) deliver(i int, env Envelope) {
	draw := h.rngs[i].Uint64()
	h.logs[i] = append(h.logs[i], fmt.Sprintf("t=%d from=%d body=%x draw=%x", h.s.Now(), env.From, env.Body, draw))
	hops := env.Body[0]
	if hops == 0 {
		h.s.DeferParty(i, func() { h.folds = append(h.folds, fmt.Sprintf("done %d@%d", i, h.s.Now())) })
		return
	}
	for k := 0; k < 2; k++ {
		to := int((draw>>(8*k))%uint64(h.n)) + 1
		h.nw.Send(Envelope{From: i, To: to, Inst: fmt.Sprintf("fam%d/sub", i%3), Type: hops, Body: []byte{hops - 1, byte(draw)}})
	}
	h.s.AtParty(h.s.Now()+Time(1+draw%5), PrioDeliver, i, func() {
		h.logs[i] = append(h.logs[i], fmt.Sprintf("timer0 %d@%d", i, h.s.Now()))
	})
	if hops%2 == 0 {
		h.s.AtParty(h.s.Now(), PrioProcess, i, func() {
			h.logs[i] = append(h.logs[i], fmt.Sprintf("proc %d@%d", i, h.s.Now()))
		})
	}
}

// runPar executes the harness to quiescence and flattens every
// observable into one comparable fingerprint.
func runPar(t *testing.T, n, workers int, seed uint64, trace bool) string {
	t.Helper()
	h := newParHarness(n, workers, seed)
	var col *obs.Collector
	if trace {
		col = obs.NewCollector()
		h.s.SetTracer(col)
		h.nw.SetTracer(col)
	}
	tracked := h.nw.Metrics().Track("fam1")
	for i := 1; i <= n; i++ {
		h.nw.Send(Envelope{From: i, To: i%n + 1, Inst: "seed", Type: 0, Body: []byte{4, byte(i)}})
	}
	h.s.RunToQuiescence()
	out := fmt.Sprintf("now=%d processed=%d honest=%+v tracked=%+v last=%d\n",
		h.s.Now(), h.s.Processed(), h.nw.Metrics().Honest, tracked.Counts, h.nw.Metrics().LastTick())
	for i := 1; i <= n; i++ {
		out += fmt.Sprintf("party %d: %v\n", i, h.logs[i])
	}
	out += fmt.Sprintf("defers: %v\n", h.folds)
	if trace {
		for _, ev := range col.Events() {
			out += fmt.Sprintf("%+v\n", ev)
		}
	}
	return out
}

// TestParallelBitIdentical is the core PR10 contract: every observable
// — event order, per-party RNG draws, shared network RNG draws (the
// delivery times), metrics, tracked prefixes, trace stream, defer merge
// order — is bit-identical at every worker-pool size.
func TestParallelBitIdentical(t *testing.T) {
	for _, n := range []int{3, 8} {
		want := runPar(t, n, 0, 42, true)
		for _, workers := range []int{1, 2, 4, 13} {
			got := runPar(t, n, workers, 42, true)
			if got != want {
				t.Fatalf("n=%d workers=%d diverged from serial:\n--- serial ---\n%s--- workers ---\n%s", n, workers, want, got)
			}
		}
	}
}

// TestParallelUntaggedFallsBack mixes harness (party-0) timers into the
// ticks: those batches must fall back to the serial path and the run
// must stay bit-identical.
func TestParallelUntaggedFallsBack(t *testing.T) {
	run := func(workers int) string {
		h := newParHarness(4, workers, 7)
		var global []string
		for i := 1; i <= 4; i++ {
			h.nw.Send(Envelope{From: i, To: i%4 + 1, Inst: "seed", Type: 0, Body: []byte{3, byte(i)}})
		}
		for tick := Time(1); tick < 40; tick += 3 {
			h.s.At(tick, func() { global = append(global, fmt.Sprintf("g@%d", h.s.Now())) })
		}
		h.s.RunToQuiescence()
		out := fmt.Sprintf("now=%d processed=%d global=%v\n", h.s.Now(), h.s.Processed(), global)
		for i := 1; i <= 4; i++ {
			out += fmt.Sprintf("party %d: %v\n", i, h.logs[i])
		}
		return out
	}
	want := run(0)
	for _, workers := range []int{1, 4} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d diverged with untagged events:\n%s\nvs serial:\n%s", workers, got, want)
		}
	}
}

// TestParallelLimitStopsIdentically pins the Limit contract: a budget
// that lands mid-tick stops the parallel run on exactly the same event
// as the serial loop (the crossing batch single-steps).
func TestParallelLimitStopsIdentically(t *testing.T) {
	for limit := uint64(1); limit < 60; limit += 7 {
		run := func(workers int) string {
			h := newParHarness(5, workers, 9)
			h.s.Limit = limit
			for i := 1; i <= 5; i++ {
				h.nw.Send(Envelope{From: i, To: i%5 + 1, Inst: "seed", Type: 0, Body: []byte{4, byte(i)}})
			}
			h.s.RunToQuiescence()
			out := fmt.Sprintf("now=%d processed=%d pending=%d\n", h.s.Now(), h.s.Processed(), h.s.Pending())
			for i := 1; i <= 5; i++ {
				out += fmt.Sprintf("party %d: %v\n", i, h.logs[i])
			}
			return out
		}
		want := run(0)
		for _, workers := range []int{1, 4} {
			if got := run(workers); got != want {
				t.Fatalf("limit=%d workers=%d diverged:\n%s\nvs serial:\n%s", limit, workers, got, want)
			}
		}
	}
}

// TestParallelStepTickMatchesSerial drives the tick-granular StepTick
// API (the pipelined engine's polling loop) instead of
// RunToQuiescence, at every worker count.
func TestParallelStepTickMatchesSerial(t *testing.T) {
	run := func(workers int) string {
		h := newParHarness(4, workers, 11)
		for i := 1; i <= 4; i++ {
			h.nw.Send(Envelope{From: i, To: i%4 + 1, Inst: "seed", Type: 0, Body: []byte{3, byte(i)}})
		}
		steps := 0
		for h.s.StepTick() {
			steps++
		}
		out := fmt.Sprintf("now=%d processed=%d stepTicks=%d\n", h.s.Now(), h.s.Processed(), steps)
		for i := 1; i <= 4; i++ {
			out += fmt.Sprintf("party %d: %v\n", i, h.logs[i])
		}
		return out
	}
	want := run(0)
	for _, workers := range []int{1, 4} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d StepTick run diverged:\n%s\nvs serial:\n%s", workers, got, want)
		}
	}
}
