package sim

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Counts aggregates message and byte counters.
type Counts struct {
	Messages uint64 `json:"messages"`
	Bytes    uint64 `json:"bytes"`
}

func (c *Counts) add(e Envelope) {
	c.Messages++
	c.Bytes += uint64(e.WireSize())
}

// Sub returns the element-wise difference c - prev: the traffic
// recorded between two observations of a live counter.
func (c Counts) Sub(prev Counts) Counts {
	return Counts{
		Messages: c.Messages - prev.Messages,
		Bytes:    c.Bytes - prev.Bytes,
	}
}

// IsZero reports whether the counter recorded nothing.
func (c Counts) IsZero() bool { return c.Messages == 0 && c.Bytes == 0 }

// Metrics records communication, separated into honest-origin and
// corrupt-origin traffic (the paper's complexity statements count bits
// communicated by honest parties) and broken down by protocol family
// (first instance-path component).
type Metrics struct {
	n        int
	Honest   Counts
	Corrupt  Counts
	ByFamily map[string]*Counts // honest-origin only
	// last is the virtual time of the most recent recorded send.
	last Time
	// lastLabel/lastCounts memoise the most recent family lookup:
	// traffic arrives in long same-family bursts (SendAll loops), so a
	// string compare usually replaces the map probe.
	lastLabel  string
	lastCounts *Counts
	// trackers attribute honest-origin traffic to instance-path
	// prefixes. With epochs interleaved on one scheduler, before/after
	// snapshot deltas no longer isolate one epoch's traffic — a tracker
	// on "mpc/e7" counts exactly the sends under that namespace no
	// matter what else is in flight. Empty when nothing is tracked, so
	// the hot path pays one len() check.
	trackers []*PrefixCounter
}

// PrefixCounter accumulates the honest-origin traffic of every send
// whose instance path is the tracked prefix or lies under it. Obtain
// one with Track, read Counts at any time, detach with Untrack.
type PrefixCounter struct {
	// Counts is the live tally; safe to read between scheduler steps.
	Counts
	exact string // the prefix itself ("mpc/e7")
	under string // prefix + "/" (descendants)
}

// Prefix returns the tracked instance-path prefix.
func (pc *PrefixCounter) Prefix() string { return pc.exact }

// Track starts attributing honest-origin traffic under prefix (the
// path itself and everything below it) to a fresh counter. Multiple
// trackers may be live at once — overlapping epochs each track their
// own namespace; a send under several tracked prefixes counts in each.
func (m *Metrics) Track(prefix string) *PrefixCounter {
	pc := &PrefixCounter{exact: prefix, under: prefix + "/"}
	m.trackers = append(m.trackers, pc)
	return pc
}

// Untrack detaches a tracker; its Counts stop advancing and keep their
// final values. Untracking twice is a no-op.
func (m *Metrics) Untrack(pc *PrefixCounter) {
	for i, t := range m.trackers {
		if t == pc {
			m.trackers = append(m.trackers[:i], m.trackers[i+1:]...)
			return
		}
	}
}

// NewMetrics returns empty metrics for n parties.
func NewMetrics(n int) *Metrics {
	return &Metrics{n: n, ByFamily: make(map[string]*Counts)}
}

// Record accounts one sent envelope at virtual time now.
func (m *Metrics) Record(e Envelope, fromCorrupt bool, now Time) {
	if now > m.last {
		m.last = now
	}
	if fromCorrupt {
		m.Corrupt.add(e)
		return
	}
	m.Honest.add(e)
	if len(m.trackers) > 0 {
		for _, pc := range m.trackers {
			if e.Inst == pc.exact || strings.HasPrefix(e.Inst, pc.under) {
				pc.add(e)
			}
		}
	}
	label := TopLabel(e.Inst)
	if label == m.lastLabel && m.lastCounts != nil {
		m.lastCounts.add(e)
		return
	}
	c := m.ByFamily[label]
	if c == nil {
		c = &Counts{}
		m.ByFamily[label] = c
	}
	m.lastLabel, m.lastCounts = label, c
	c.add(e)
}

// HonestBytes returns the total bytes sent by honest parties.
func (m *Metrics) HonestBytes() uint64 { return m.Honest.Bytes }

// HonestMessages returns the total messages sent by honest parties.
func (m *Metrics) HonestMessages() uint64 { return m.Honest.Messages }

// LastTick returns the virtual time of the most recent recorded send.
func (m *Metrics) LastTick() Time { return m.last }

// MetricsSnapshot is a point-in-time copy of a Metrics: plain values
// with stable JSON names, safe to retain while the live counter keeps
// advancing. Snapshots subtract (Sub), which is how per-evaluation
// deltas are computed against a long-lived engine's counters.
type MetricsSnapshot struct {
	N        int               `json:"n"`
	LastTick int64             `json:"lastTick"`
	Honest   Counts            `json:"honest"`
	Corrupt  Counts            `json:"corrupt"`
	ByFamily map[string]Counts `json:"byFamily,omitempty"`
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		N:        m.n,
		LastTick: int64(m.last),
		Honest:   m.Honest,
		Corrupt:  m.Corrupt,
	}
	if len(m.ByFamily) > 0 {
		s.ByFamily = make(map[string]Counts, len(m.ByFamily))
		for k, c := range m.ByFamily {
			s.ByFamily[k] = *c
		}
	}
	return s
}

// Restore overwrites the live counters with a snapshot's values, the
// inverse of Snapshot — how a restored World resumes metric accounting
// exactly where the checkpointed run left off. The family memo is
// dropped; it repopulates on the next Record.
func (m *Metrics) Restore(s MetricsSnapshot) error {
	if s.N != m.n {
		return fmt.Errorf("sim: metrics snapshot is for n=%d parties, live counter has n=%d", s.N, m.n)
	}
	if s.LastTick < 0 {
		return fmt.Errorf("sim: metrics snapshot with negative last tick %d", s.LastTick)
	}
	m.Honest = s.Honest
	m.Corrupt = s.Corrupt
	m.last = Time(s.LastTick)
	m.lastLabel, m.lastCounts = "", nil
	m.ByFamily = make(map[string]*Counts, len(s.ByFamily))
	for k, c := range s.ByFamily {
		cc := c
		m.ByFamily[k] = &cc
	}
	return nil
}

// Sub returns the traffic recorded between prev and s: element-wise
// counter differences, with families that saw no new traffic dropped.
// prev must be an earlier snapshot of the same Metrics.
func (s MetricsSnapshot) Sub(prev MetricsSnapshot) MetricsSnapshot {
	d := MetricsSnapshot{
		N:        s.N,
		LastTick: s.LastTick,
		Honest:   s.Honest.Sub(prev.Honest),
		Corrupt:  s.Corrupt.Sub(prev.Corrupt),
	}
	for k, c := range s.ByFamily {
		dc := c.Sub(prev.ByFamily[k])
		if dc.IsZero() {
			continue
		}
		if d.ByFamily == nil {
			d.ByFamily = make(map[string]Counts)
		}
		d.ByFamily[k] = dc
	}
	return d
}

// MarshalJSON renders the metrics as their snapshot: a stable
// machine-readable form with the family breakdown included, so CLI
// consumers do not re-derive it from private state.
func (m *Metrics) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Snapshot())
}

// String renders the run context (parties, last send tick) and a
// sorted per-family breakdown.
func (m *Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d parties, last send at tick %d\n", m.n, m.last)
	fmt.Fprintf(&b, "honest: %d msgs, %d bytes; corrupt: %d msgs, %d bytes\n",
		m.Honest.Messages, m.Honest.Bytes, m.Corrupt.Messages, m.Corrupt.Bytes)
	keys := make([]string, 0, len(m.ByFamily))
	for k := range m.ByFamily {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := m.ByFamily[k]
		fmt.Fprintf(&b, "  %-12s %8d msgs %12d bytes\n", k, c.Messages, c.Bytes)
	}
	return b.String()
}
