package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Counts aggregates message and byte counters.
type Counts struct {
	Messages uint64
	Bytes    uint64
}

func (c *Counts) add(e Envelope) {
	c.Messages++
	c.Bytes += uint64(e.WireSize())
}

// Metrics records communication, separated into honest-origin and
// corrupt-origin traffic (the paper's complexity statements count bits
// communicated by honest parties) and broken down by protocol family
// (first instance-path component).
type Metrics struct {
	n        int
	Honest   Counts
	Corrupt  Counts
	ByFamily map[string]*Counts // honest-origin only
	// lastLabel/lastCounts memoise the most recent family lookup:
	// traffic arrives in long same-family bursts (SendAll loops), so a
	// string compare usually replaces the map probe.
	lastLabel  string
	lastCounts *Counts
}

// NewMetrics returns empty metrics for n parties.
func NewMetrics(n int) *Metrics {
	return &Metrics{n: n, ByFamily: make(map[string]*Counts)}
}

// Record accounts one sent envelope.
func (m *Metrics) Record(e Envelope, fromCorrupt bool) {
	if fromCorrupt {
		m.Corrupt.add(e)
		return
	}
	m.Honest.add(e)
	label := TopLabel(e.Inst)
	if label == m.lastLabel && m.lastCounts != nil {
		m.lastCounts.add(e)
		return
	}
	c := m.ByFamily[label]
	if c == nil {
		c = &Counts{}
		m.ByFamily[label] = c
	}
	m.lastLabel, m.lastCounts = label, c
	c.add(e)
}

// HonestBytes returns the total bytes sent by honest parties.
func (m *Metrics) HonestBytes() uint64 { return m.Honest.Bytes }

// HonestMessages returns the total messages sent by honest parties.
func (m *Metrics) HonestMessages() uint64 { return m.Honest.Messages }

// String renders a sorted per-family breakdown.
func (m *Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "honest: %d msgs, %d bytes; corrupt: %d msgs, %d bytes\n",
		m.Honest.Messages, m.Honest.Bytes, m.Corrupt.Messages, m.Corrupt.Bytes)
	keys := make([]string, 0, len(m.ByFamily))
	for k := range m.ByFamily {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := m.ByFamily[k]
		fmt.Fprintf(&b, "  %-12s %8d msgs %12d bytes\n", k, c.Messages, c.Bytes)
	}
	return b.String()
}
