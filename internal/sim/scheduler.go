// Package sim provides the deterministic discrete-event simulation
// substrate on which every protocol in this repository runs: a
// virtual-time scheduler, message-delivery policies modelling the
// paper's synchronous and asynchronous networks, an adversarial
// message-interception layer, and communication metrics.
//
// Virtual time is measured in abstract ticks; the synchronous network
// bound Δ is a configurable number of ticks. Using virtual time makes
// the paper's exact termination bounds (e.g. T_BC = 3Δ + T_SBA)
// machine-checkable, which a wall-clock implementation could only
// approximate.
package sim

import (
	"fmt"

	"repro/internal/obs"
)

// Time is a point in virtual time, in ticks.
type Time int64

// Event kinds. Timer events carry a callback; delivery events carry the
// envelope and target inline, so the per-message hot path allocates no
// closure and the scheduler dispatches directly.
const (
	kindTimer uint8 = iota
	kindDeliver
)

// DeliverSink receives typed delivery events at their scheduled tick.
// The in-memory Network is the reference implementation; a real
// transport backend implements it to rendezvous the delivery with the
// physical frame. tag is the opaque value the sink passed to
// AfterDeliver (the Network ignores it; real transports use it to match
// the scheduled delivery to its frame on the socket).
type DeliverSink interface {
	DispatchDelivered(env Envelope, tag uint64)
}

// event is a scheduled occurrence: either a timer callback or a typed
// message delivery.
type event struct {
	at   Time
	seq  uint64 // FIFO tie-break within a class; keeps runs deterministic
	prio uint8  // same-tick ordering class: lower runs first
	kind uint8
	// party is the event's owner: the destination party for deliveries,
	// the scheduling party for runtime timers, 0 for harness/global
	// timers. Parallel ticks partition a lane by party; 0 means the
	// event cannot be attributed and forces the serial path.
	party int32
	fn    func()      // kindTimer
	env   Envelope    // kindDeliver
	sink  DeliverSink // kindDeliver
	tag   uint64      // kindDeliver: opaque sink cookie
	sent  Time        // kindDeliver: send time, for traced delivery latency
}

// Priority classes for same-tick ordering.
const (
	// PrioDeliver is the default class: message deliveries and ordinary
	// protocol timers.
	PrioDeliver uint8 = 0
	// PrioProcess runs after every same-tick delivery/timer: protocol
	// steps that must observe all outputs landing at exactly this tick
	// (e.g. "at time T, based on the broadcasts received by time T...").
	PrioProcess uint8 = 1
)

// window is the calendar-queue span in ticks: events scheduled within
// window ticks of the queue base go into O(1) per-tick buckets; farther
// events wait in the overflow heap and migrate as the base advances.
// Power of two so the slot index is a mask.
const window = 1 << 11

// lane is one priority class of one tick's bucket: a FIFO slice with a
// consumed-prefix head. Since seq increases monotonically with every
// push, append order equals seq order within a lane.
type lane struct {
	evs  []event
	head int
}

func (l *lane) empty() bool { return l.head >= len(l.evs) }

// bucket holds one tick's pending events, split by priority class.
type bucket struct {
	lanes [2]lane
}

func (b *bucket) empty() bool { return b.lanes[0].empty() && b.lanes[1].empty() }

// Scheduler is a single-threaded discrete-event loop. All protocol code
// runs inside scheduler callbacks; there is no concurrency, so runs are
// fully deterministic given the seeds.
//
// Events execute in strict (time, priority, push-sequence) order,
// implemented as a calendar queue: a ring of per-tick FIFO buckets
// covering [base, base+window) plus an overflow heap for events farther
// out. Push and pop are O(1) on the hot path (protocol delays are short
// relative to the window), and bucket storage is reused across ring
// wraps, so steady-state scheduling does not allocate.
type Scheduler struct {
	now  Time
	seq  uint64
	base Time // ring covers ticks [base, base+window)
	ring [window]bucket
	// ringCount and overflow partition the pending events: everything in
	// the ring is strictly before base+window; everything in the overflow
	// heap is at base+window or later.
	ringCount int
	overflow  overflowHeap
	// spare recycles drained bucket storage: a run rarely wraps the
	// ring, so without it every tick's bucket would grow from nil.
	spare [][]event
	// processed counts executed events, as a runaway-loop guard.
	processed uint64
	// Limit aborts Run after this many events (0 = unlimited).
	Limit uint64
	// tracer receives scheduler trace events; nil (the default) means
	// tracing is off and every emission site reduces to one branch.
	tracer obs.Tracer
	// par holds the parallel-tick execution state; nil (the default)
	// means every event runs on the caller's goroutine, exactly the
	// single-threaded loop described above.
	par *parallelState
}

// grab appends e to the lane, drawing recycled storage for the first
// event of an empty lane.
func (s *Scheduler) grab(l *lane, e event) {
	if l.evs == nil && len(s.spare) > 0 {
		l.evs = s.spare[len(s.spare)-1]
		s.spare = s.spare[:len(s.spare)-1]
	}
	l.evs = append(l.evs, e)
}

// release returns a drained lane's storage to the spare pool.
func (s *Scheduler) release(l *lane) {
	if l.evs == nil {
		l.head = 0
		return
	}
	clear(l.evs) // release Body/closure references for the GC
	s.spare = append(s.spare, l.evs[:0])
	l.evs = nil
	l.head = 0
}

// NewScheduler returns an empty scheduler at time 0.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// SetTracer installs tr as the scheduler's trace sink (nil disables
// tracing). Tracing must be configured before the run starts; switching
// tracers mid-run would make the event stream misleading.
func (s *Scheduler) SetTracer(tr obs.Tracer) { s.tracer = tr }

// Tracer returns the installed trace sink (nil when tracing is off).
func (s *Scheduler) Tracer() obs.Tracer { return s.tracer }

// Processed returns the number of events executed so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// push enqueues e, which must not be in the past.
func (s *Scheduler) push(e event) {
	if e.at < s.now {
		panic(fmt.Sprintf("sim: scheduling event in the past: %d < %d", e.at, s.now))
	}
	if e.prio > PrioProcess {
		// The ring has exactly two lanes; an undefined class would order
		// inconsistently between the ring and the overflow heap.
		panic(fmt.Sprintf("sim: undefined priority class %d", e.prio))
	}
	s.seq++
	e.seq = s.seq
	if e.at-s.base < window {
		s.grab(&s.ring[e.at&(window-1)].lanes[e.prio], e)
		s.ringCount++
		return
	}
	s.overflow.push(e)
}

// At schedules fn at absolute time t, which must not be in the past.
func (s *Scheduler) At(t Time, fn func()) { s.AtPrio(t, PrioDeliver, fn) }

// AtPrio schedules fn at absolute time t in the given priority class.
func (s *Scheduler) AtPrio(t Time, prio uint8, fn func()) {
	s.push(event{at: t, prio: prio, kind: kindTimer, fn: fn})
}

// AtParty schedules fn at absolute time t in the given priority class
// on behalf of party (1-based). The tag lets parallel ticks run the
// timer on the party's worker; a timer scheduled from inside a parallel
// batch is staged and merged at the barrier in canonical order.
func (s *Scheduler) AtParty(t Time, prio uint8, party int, fn func()) {
	if s.par != nil && s.par.staging {
		s.stageTimer(party, t, prio, fn)
		return
	}
	s.push(event{at: t, prio: prio, kind: kindTimer, party: int32(party), fn: fn})
}

// After schedules fn d ticks from now; d must be non-negative.
func (s *Scheduler) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	s.At(s.now+d, fn)
}

// AfterDeliver schedules the typed delivery of env through sink d ticks
// from now, without allocating a callback closure. The scheduler emits
// the KDeliver trace event and hands (env, tag) to the sink at the
// scheduled tick; delivery events order exactly like same-priority
// timers (strict (time, priority, push-sequence) order), so a transport
// that schedules through AfterDeliver replays the simulator's event
// order bit-identically.
func (s *Scheduler) AfterDeliver(d Time, sink DeliverSink, tag uint64, env Envelope) {
	s.push(event{at: s.now + d, prio: PrioDeliver, kind: kindDeliver, party: int32(env.To), env: env, sink: sink, tag: tag, sent: s.now})
}

// migrate moves overflow events that now fall inside the ring window
// into their buckets. The heap pops in (at, prio, seq) order, so lane
// FIFO order is preserved.
func (s *Scheduler) migrate() {
	for len(s.overflow) > 0 && s.overflow[0].at-s.base < window {
		e := s.overflow.pop()
		s.grab(&s.ring[e.at&(window-1)].lanes[e.prio], e)
		s.ringCount++
	}
}

// peekTime returns the earliest pending tick without mutating state:
// base may only advance in pop, where now immediately catches up to it,
// otherwise an event pushed between now and an advanced base would land
// in a bucket the ring has already passed.
func (s *Scheduler) peekTime() (Time, bool) {
	if s.ringCount > 0 {
		// All ring events are in [base, base+window), and everything in
		// the overflow heap is later, so the first non-empty bucket from
		// base is the global minimum.
		for t := s.base; ; t++ {
			if !s.ring[t&(window-1)].empty() {
				return t, true
			}
		}
	}
	if len(s.overflow) > 0 {
		return s.overflow[0].at, true
	}
	return 0, false
}

// pop removes and returns the earliest pending event, advancing base to
// its tick (the caller sets now to that tick before running anything).
func (s *Scheduler) pop() event {
	if s.ringCount == 0 {
		if len(s.overflow) == 0 {
			panic("sim: pop from empty scheduler")
		}
		s.base = s.overflow[0].at
		s.migrate()
	}
	for {
		b := &s.ring[s.base&(window-1)]
		if !b.empty() {
			break
		}
		s.release(&b.lanes[0])
		s.release(&b.lanes[1])
		s.base++
		s.migrate()
	}
	b := &s.ring[s.base&(window-1)]
	ln := &b.lanes[0]
	if ln.empty() {
		ln = &b.lanes[1]
	}
	e := ln.evs[ln.head]
	ln.evs[ln.head] = event{} // release references
	ln.head++
	s.ringCount--
	return e
}

// run executes one event.
func (s *Scheduler) run(e event) {
	if s.tracer != nil {
		s.traceHead(&e)
	}
	if e.kind == kindDeliver {
		e.sink.DispatchDelivered(e.env, e.tag)
		return
	}
	e.fn()
}

// pending returns the number of queued events.
func (s *Scheduler) pending() int { return s.ringCount + len(s.overflow) }

// Step executes the next event. It reports whether an event was run.
func (s *Scheduler) Step() bool {
	if s.pending() == 0 {
		return false
	}
	e := s.pop()
	if s.tracer != nil && e.at != s.now {
		// New tick: report queue depth at entry (pending() was already
		// decremented by pop, so add the event about to run back in).
		s.tracer.Emit(obs.Event{Kind: obs.KTick, Tick: int64(e.at), A: int64(s.pending() + 1)})
	}
	s.now = e.at
	s.processed++
	s.run(e)
	return true
}

// StepTick executes every event of the earliest pending tick — including
// events pushed onto that same tick while it runs — and returns whether
// any event ran. With a worker pool configured (SetParallel) the tick's
// PrioDeliver batches run in parallel with staged effects; otherwise the
// loop is the plain serial Step. Either way the observable run (event
// order, RNG draws, traces, metrics) is bit-identical. A Limit hit stops
// mid-tick at exactly the serial event count, leaving the rest queued.
func (s *Scheduler) StepTick() bool {
	t, ok := s.peekTime()
	if !ok {
		return false
	}
	if s.par != nil {
		return s.stepTickParallel(t)
	}
	ran := false
	for {
		tt, ok := s.peekTime()
		if !ok || tt != t {
			return ran
		}
		if s.Limit > 0 && s.processed >= s.Limit {
			return ran
		}
		s.Step()
		ran = true
	}
}

// RunUntil processes events until the queue is empty or the next event
// is strictly after the horizon. It returns the number of events run.
func (s *Scheduler) RunUntil(horizon Time) uint64 {
	start := s.processed
	for {
		t, ok := s.peekTime()
		if !ok || t > horizon {
			break
		}
		if s.Limit > 0 && s.processed >= s.Limit {
			break
		}
		if s.par != nil {
			s.stepTickParallel(t)
		} else {
			s.Step()
		}
	}
	if s.now < horizon {
		s.now = horizon
	}
	return s.processed - start
}

// RunToQuiescence processes events until none remain (or Limit hits).
// It returns the number of events run.
func (s *Scheduler) RunToQuiescence() uint64 {
	start := s.processed
	for s.pending() > 0 {
		if s.Limit > 0 && s.processed >= s.Limit {
			break
		}
		if s.par != nil {
			t, _ := s.peekTime()
			s.stepTickParallel(t)
		} else {
			s.Step()
		}
	}
	return s.processed - start
}

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return s.pending() }

// SchedulerState is the scheduler's serializable clock state: the
// virtual time, the push-sequence counter (the FIFO tie-break — two
// runs only replay bit-identically if restored pushes keep numbering
// where the original left off) and the executed-event count (so the
// Limit budget keeps meaning "lifetime events" across a restore).
type SchedulerState struct {
	Now       int64  `json:"now"`
	Seq       uint64 `json:"seq"`
	Processed uint64 `json:"processed"`
}

// Checkpoint captures the clock state. It refuses while events are
// pending: a pending event holds a live closure (or a network
// reference), which cannot be serialized — run to quiescence first.
func (s *Scheduler) Checkpoint() (SchedulerState, error) {
	if n := s.pending(); n > 0 {
		return SchedulerState{}, fmt.Errorf("sim: checkpoint with %d events pending (run to quiescence first)", n)
	}
	return SchedulerState{Now: int64(s.now), Seq: s.seq, Processed: s.processed}, nil
}

// Restore loads a checkpointed clock state into a fresh scheduler,
// which must not have run or queued anything yet. The ring base snaps
// to the restored time, so bucket indexing continues seamlessly.
func (s *Scheduler) Restore(st SchedulerState) error {
	if st.Now < 0 {
		return fmt.Errorf("sim: restore to negative time %d", st.Now)
	}
	if s.pending() > 0 || s.processed > 0 {
		return fmt.Errorf("sim: restore into a used scheduler (%d pending, %d processed)", s.pending(), s.processed)
	}
	s.now = Time(st.Now)
	s.base = Time(st.Now)
	s.seq = st.Seq
	s.processed = st.Processed
	return nil
}

// overflowHeap is a hand-rolled binary min-heap over (at, prio, seq),
// holding events scheduled beyond the calendar window.
type overflowHeap []event

func (h overflowHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}

func (h *overflowHeap) push(e event) {
	*h = append(*h, e)
	a := *h
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

func (h *overflowHeap) pop() event {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = event{} // release references
	a = a[:n]
	*h = a
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && a.less(l, smallest) {
			smallest = l
		}
		if r < n && a.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		a[i], a[smallest] = a[smallest], a[i]
		i = smallest
	}
	return top
}
