// Package sim provides the deterministic discrete-event simulation
// substrate on which every protocol in this repository runs: a
// virtual-time scheduler, message-delivery policies modelling the
// paper's synchronous and asynchronous networks, an adversarial
// message-interception layer, and communication metrics.
//
// Virtual time is measured in abstract ticks; the synchronous network
// bound Δ is a configurable number of ticks. Using virtual time makes
// the paper's exact termination bounds (e.g. T_BC = 3Δ + T_SBA)
// machine-checkable, which a wall-clock implementation could only
// approximate.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in ticks.
type Time int64

// event is a scheduled callback.
type event struct {
	at   Time
	prio uint8  // same-tick ordering class: lower runs first
	seq  uint64 // FIFO tie-break within a class; keeps runs deterministic
	fn   func()
}

// Priority classes for same-tick ordering.
const (
	// PrioDeliver is the default class: message deliveries and ordinary
	// protocol timers.
	PrioDeliver uint8 = 0
	// PrioProcess runs after every same-tick delivery/timer: protocol
	// steps that must observe all outputs landing at exactly this tick
	// (e.g. "at time T, based on the broadcasts received by time T...").
	PrioProcess uint8 = 1
)

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Scheduler is a single-threaded discrete-event loop. All protocol code
// runs inside scheduler callbacks; there is no concurrency, so runs are
// fully deterministic given the seeds.
type Scheduler struct {
	now    Time
	seq    uint64
	events eventHeap
	// processed counts executed events, as a runaway-loop guard.
	processed uint64
	// Limit aborts Run after this many events (0 = unlimited).
	Limit uint64
}

// NewScheduler returns an empty scheduler at time 0.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Processed returns the number of events executed so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// At schedules fn at absolute time t, which must not be in the past.
func (s *Scheduler) At(t Time, fn func()) { s.AtPrio(t, PrioDeliver, fn) }

// AtPrio schedules fn at absolute time t in the given priority class.
func (s *Scheduler) AtPrio(t Time, prio uint8, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event in the past: %d < %d", t, s.now))
	}
	s.seq++
	s.events.pushEvent(event{at: t, prio: prio, seq: s.seq, fn: fn})
}

// After schedules fn d ticks from now; d must be non-negative.
func (s *Scheduler) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	s.At(s.now+d, fn)
}

// Step executes the next event. It reports whether an event was run.
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := s.events.popEvent()
	s.now = e.at
	s.processed++
	e.fn()
	return true
}

// RunUntil processes events until the queue is empty or the next event
// is strictly after the horizon. It returns the number of events run.
func (s *Scheduler) RunUntil(horizon Time) uint64 {
	var n uint64
	for len(s.events) > 0 && s.events.peek().at <= horizon {
		if s.Limit > 0 && s.processed >= s.Limit {
			break
		}
		s.Step()
		n++
	}
	if s.now < horizon {
		s.now = horizon
	}
	return n
}

// RunToQuiescence processes events until none remain (or Limit hits).
// It returns the number of events run.
func (s *Scheduler) RunToQuiescence() uint64 {
	var n uint64
	for len(s.events) > 0 {
		if s.Limit > 0 && s.processed >= s.Limit {
			break
		}
		s.Step()
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.events) }
