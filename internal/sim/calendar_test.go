package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
)

// TestSchedulerOverflowWindow exercises events scheduled beyond the
// calendar window: they must park in the overflow heap and still fire
// in exact (time, priority, sequence) order as the base advances.
func TestSchedulerOverflowWindow(t *testing.T) {
	s := NewScheduler()
	var order []Time
	times := []Time{3 * window, 1, window + 5, 2*window + 7, 2, 5 * window, window - 1, window}
	for _, at := range times {
		at := at
		s.At(at, func() { order = append(order, at) })
	}
	s.RunToQuiescence()
	want := append([]Time(nil), times...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 5*window {
		t.Fatalf("Now = %d, want %d", s.Now(), 5*window)
	}
}

// TestSchedulerOverflowFIFO checks that same-tick events split across
// the ring/overflow boundary keep push order.
func TestSchedulerOverflowFIFO(t *testing.T) {
	s := NewScheduler()
	target := Time(window + 50) // beyond the initial window: overflow
	var order []int
	s.At(target, func() { order = append(order, 1) })
	s.At(target, func() { order = append(order, 2) })
	// An early event advances the base far enough that the next pushes
	// to the same target tick land in the ring instead.
	s.At(100, func() {
		s.At(target, func() { order = append(order, 3) })
	})
	s.RunToQuiescence()
	for i, want := range []int{1, 2, 3} {
		if i >= len(order) || order[i] != want {
			t.Fatalf("order = %v, want [1 2 3]", order)
		}
	}
}

// TestSchedulerPrioInterleaving pins the same-tick class semantics: a
// PrioDeliver event scheduled *during* a PrioProcess callback of the
// same tick still runs before the remaining PrioProcess events.
func TestSchedulerPrioInterleaving(t *testing.T) {
	s := NewScheduler()
	var order []string
	s.AtPrio(10, PrioProcess, func() {
		order = append(order, "proc1")
		s.At(10, func() { order = append(order, "deliver-late") })
	})
	s.AtPrio(10, PrioProcess, func() { order = append(order, "proc2") })
	s.At(10, func() { order = append(order, "deliver-early") })
	s.RunToQuiescence()
	want := []string{"deliver-early", "proc1", "deliver-late", "proc2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestSchedulerRunUntilThenPast covers the base/now split after an
// idle horizon jump: events scheduled between the horizon and a far
// pending event must still run in order.
func TestSchedulerRunUntilThenPast(t *testing.T) {
	s := NewScheduler()
	var order []Time
	s.At(2*window+9, func() { order = append(order, 2*window+9) })
	s.RunUntil(500) // no events ≤ 500: now jumps to 500, base stays behind
	if s.Now() != 500 {
		t.Fatalf("Now = %d, want 500", s.Now())
	}
	s.At(600, func() { order = append(order, 600) })
	s.At(window+600, func() { order = append(order, Time(window+600)) })
	s.RunToQuiescence()
	want := []Time{600, window + 600, 2*window + 9}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestSchedulerStormOrdering cross-checks the calendar queue against a
// straightforward sort of (time, priority, sequence) on a randomized
// event storm with nested scheduling.
func TestSchedulerStormOrdering(t *testing.T) {
	type stamp struct {
		at   Time
		prio uint8
		n    int
	}
	r := rand.New(rand.NewPCG(3, 9))
	s := NewScheduler()
	var got []stamp
	n := 0
	record := func(prio uint8) func() {
		n++
		id := n
		return func() { got = append(got, stamp{at: s.Now(), prio: prio, n: id}) }
	}
	for i := 0; i < 2000; i++ {
		at := Time(r.Int64N(3 * window))
		if r.IntN(4) == 0 {
			s.AtPrio(at, PrioProcess, record(PrioProcess))
		} else {
			s.At(at, record(PrioDeliver))
		}
	}
	// Nested: every 50th event schedules a follow-up relative to its own
	// firing time.
	s.At(window/2, func() {
		for i := 0; i < 100; i++ {
			d := Time(r.Int64N(2 * window))
			s.After(d, record(PrioDeliver))
		}
	})
	s.RunToQuiescence()
	if len(got) != 2100 {
		t.Fatalf("recorded %d events, want 2100", len(got))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.at > b.at {
			t.Fatalf("time order violated at %d: %+v then %+v", i, a, b)
		}
		if a.at == b.at && a.prio > b.prio {
			t.Fatalf("priority order violated at %d: %+v then %+v", i, a, b)
		}
		if a.at == b.at && a.prio == b.prio && a.n > b.n {
			t.Fatalf("FIFO order violated at %d: %+v then %+v", i, a, b)
		}
	}
}

// TestSchedulerPendingAcrossBoundary counts pending events across the
// ring/overflow split.
func TestSchedulerPendingAcrossBoundary(t *testing.T) {
	s := NewScheduler()
	s.At(1, func() {})
	s.At(window+1, func() {})
	s.At(4*window, func() {})
	if s.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", s.Pending())
	}
	s.Step()
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.RunToQuiescence()
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
}
