package sim

import (
	"runtime"
	"sync"

	"repro/internal/obs"
)

// Parallel tick execution.
//
// Within one simulated tick the n parties' computations are independent
// by construction: a PrioDeliver lane holds deliveries (owned by their
// destination party) and runtime timers (owned by their scheduling
// party), and parties interact only through effects that re-enter the
// scheduler — sends, timers, traces. The parallel mode exploits exactly
// that: it partitions a lane's events by owning party, runs each
// party's group in order on a fixed worker pool, and stages every
// effect a worker emits in a per-event buffer. At the per-tick barrier
// the coordinator merges the buffers back in canonical intra-lane seq
// order — event i's trace header first, then event i's effects in
// emission order — so the shared network RNG draws, the interceptor,
// the metrics, and the trace JSONL all observe the exact serial
// sequence. Per-party PRNG streams are drawn inside the workers, but in
// per-party program order, which is what the serial loop produces too.
// The result is bit-identical to workers=0 at every pool size.
//
// Events that cannot be attributed to a party (party 0: harness/global
// timers) and PrioProcess events run on the serial path; a tick whose
// batch would cross the Limit budget also falls back to serial so the
// stop lands on exactly the same event. Both decisions depend only on
// queue contents, which are identical across worker counts, so the
// fallback itself is deterministic.

// minParallelBatch is the smallest lane batch worth a barrier; smaller
// batches run serially. The threshold only inspects canonical queue
// state, so it never breaks worker-count invariance.
const minParallelBatch = 2

// effKind enumerates staged effect types.
const (
	effSend uint8 = iota
	effTimer
	effTrace
	effDefer
)

// envSender re-enters a staged send at the barrier. *Network is the
// only implementation; the indirection keeps the effect replay free of
// a package cycle with the transport seam.
type envSender interface{ Send(Envelope) }

// effect is one staged side effect of a parallel-phase event, replayed
// at the barrier in emission order.
type effect struct {
	kind   uint8
	env    Envelope  // effSend
	sender envSender // effSend
	at     Time      // effTimer
	prio   uint8     // effTimer
	party  int32     // effTimer
	fn     func()    // effTimer, effDefer
	tev    obs.Event // effTrace
}

// stagedRec is one batch event plus the effects its execution emitted.
type stagedRec struct {
	ev  event
	eff []effect
}

// parallelState is the worker pool plus per-batch staging buffers. The
// worker goroutines reference only this struct (never the Scheduler),
// so a finalizer on the Scheduler can close the task channel and let an
// abandoned pool exit.
type parallelState struct {
	workers int
	staging bool // a batch is executing; effect emission must stage
	started bool
	tasks   chan int // party numbers; one per touched party per batch
	wg      sync.WaitGroup

	recs    []stagedRec  // batch events in intra-lane seq order
	groups  [][]int      // party -> indices into recs, in seq order
	touched []int        // parties with non-empty groups this batch
	curRec  []*stagedRec // party -> record its worker is executing
}

// SetParallel configures parallel tick execution: workers is the pool
// size (<= 0 restores the serial loop) and nparties the number of
// parties (events are tagged 1..nparties). Like SetTracer it must be
// called before the run starts; the worker goroutines are spawned
// lazily on the first parallel batch.
func (s *Scheduler) SetParallel(workers, nparties int) {
	if workers <= 0 {
		s.par = nil
		return
	}
	s.par = &parallelState{
		workers: workers,
		tasks:   make(chan int),
		groups:  make([][]int, nparties+1),
		curRec:  make([]*stagedRec, nparties+1),
	}
}

// Workers returns the configured pool size (0 = serial).
func (s *Scheduler) Workers() int {
	if s.par == nil {
		return 0
	}
	return s.par.workers
}

// Staging reports whether a parallel batch is executing right now, i.e.
// whether effect emission must stage instead of acting directly. Reads
// are safe from worker goroutines: the flag only flips between batches,
// with happens-before edges through the task channel and the barrier.
func (s *Scheduler) Staging() bool { return s.par != nil && s.par.staging }

// StageTrace stages a trace event emitted by party code during a
// parallel batch; the coordinator re-emits it at the barrier in
// canonical order. Callers must check Staging() first.
func (s *Scheduler) StageTrace(party int, ev obs.Event) {
	rec := s.par.curRec[party]
	rec.eff = append(rec.eff, effect{kind: effTrace, tev: ev})
}

// DeferParty runs fn on behalf of party: immediately on the serial
// path, or staged to the barrier (at the event's canonical merge
// position) during a parallel batch. Engine-level callbacks that fold
// per-party completions into shared state use this so the fold happens
// outside worker goroutines yet at the exact serial position.
func (s *Scheduler) DeferParty(party int, fn func()) {
	if s.par != nil && s.par.staging {
		rec := s.par.curRec[party]
		rec.eff = append(rec.eff, effect{kind: effDefer, fn: fn})
		return
	}
	fn()
}

// stageTimer stages a party-tagged timer push (AtParty during a batch).
func (s *Scheduler) stageTimer(party int, t Time, prio uint8, fn func()) {
	rec := s.par.curRec[party]
	rec.eff = append(rec.eff, effect{kind: effTimer, at: t, prio: prio, party: int32(party), fn: fn})
}

// stageSend stages an envelope accepted by the Network during a batch;
// the barrier replays it through the full Network.Send path (interceptor,
// metrics, delay draw from the shared RNG) in canonical order.
func (s *Scheduler) stageSend(nw envSender, env Envelope) {
	rec := s.par.curRec[env.From]
	rec.eff = append(rec.eff, effect{kind: effSend, env: env, sender: nw})
}

// traceHead emits the event's own trace record (KDeliver/KTimer),
// shared between the serial run path and the barrier merge. The caller
// checks s.tracer != nil.
func (s *Scheduler) traceHead(e *event) {
	if e.kind == kindDeliver {
		s.tracer.Emit(obs.Event{
			Kind: obs.KDeliver, Tick: int64(s.now),
			Party: e.env.To, Peer: e.env.From,
			Inst: e.env.Inst, Type: e.env.Type,
			Bytes: int64(e.env.WireSize()),
			A:     int64(s.now - e.sent),
		})
		return
	}
	s.tracer.Emit(obs.Event{Kind: obs.KTimer, Tick: int64(s.now), A: int64(e.prio)})
}

// advanceTo moves the ring base up to tick t (the earliest pending tick,
// per peekTime), releasing drained buckets and migrating overflow
// events exactly as pop does, and returns t's bucket.
func (s *Scheduler) advanceTo(t Time) *bucket {
	if s.ringCount == 0 {
		s.base = s.overflow[0].at
		s.migrate()
	}
	for s.base < t {
		b := &s.ring[s.base&(window-1)]
		s.release(&b.lanes[0])
		s.release(&b.lanes[1])
		s.base++
		s.migrate()
	}
	return &s.ring[t&(window-1)]
}

// batchable reports whether every pending event of the lane is owned by
// a party; an untagged event forces the serial path for this batch.
func batchable(ln *lane) bool {
	for i := ln.head; i < len(ln.evs); i++ {
		if ln.evs[i].party == 0 {
			return false
		}
	}
	return true
}

// stepTickParallel runs every event of tick t (the earliest pending
// tick). PrioDeliver batches that are fully party-tagged, large enough,
// and inside the Limit budget execute on the worker pool with staged
// effects; everything else single-steps serially. Returns whether any
// event ran.
func (s *Scheduler) stepTickParallel(t Time) bool {
	if s.Limit > 0 && s.processed >= s.Limit {
		return false
	}
	if s.tracer != nil && t != s.now {
		// Queue depth at tick entry, matching the serial Step emission.
		s.tracer.Emit(obs.Event{Kind: obs.KTick, Tick: int64(t), A: int64(s.pending())})
	}
	b := s.advanceTo(t)
	s.now = t
	ran := false
	for {
		if s.Limit > 0 && s.processed >= s.Limit {
			return ran
		}
		ln := &b.lanes[0]
		if n := len(ln.evs) - ln.head; n > 0 {
			// A batch that would cross the Limit single-steps so the run
			// stops on exactly the same event as the serial loop.
			if n >= minParallelBatch && (s.Limit == 0 || s.processed+uint64(n) <= s.Limit) && batchable(ln) {
				s.execBatch(ln)
			} else {
				s.Step()
			}
			ran = true
			continue
		}
		if !b.lanes[1].empty() {
			// PrioProcess runs serially: its handlers may push same-tick
			// PrioDeliver work that must preempt the rest of the lane,
			// which Step's pop order handles naturally.
			s.Step()
			ran = true
			continue
		}
		return ran
	}
}

// execBatch runs the lane's pending events on the worker pool and
// merges the staged effects at the barrier in intra-lane seq order.
func (s *Scheduler) execBatch(ln *lane) {
	par := s.par
	if !par.started {
		par.started = true
		for i := 0; i < par.workers; i++ {
			go par.worker()
		}
		// Workers reference only par, so an abandoned scheduler's pool
		// exits when the finalizer closes the task channel.
		runtime.SetFinalizer(s, func(*Scheduler) { close(par.tasks) })
	}

	start := ln.head
	n := len(ln.evs) - start
	if cap(par.recs) >= n {
		par.recs = par.recs[:n]
	} else {
		old := par.recs[:cap(par.recs)]
		par.recs = make([]stagedRec, n)
		copy(par.recs, old) // keep the grown records' effect storage
	}
	par.touched = par.touched[:0]
	for i := 0; i < n; i++ {
		e := ln.evs[start+i]
		ln.evs[start+i] = event{} // release references
		rec := &par.recs[i]
		rec.ev = e
		rec.eff = rec.eff[:0]
		p := int(e.party)
		if len(par.groups[p]) == 0 {
			par.touched = append(par.touched, p)
		}
		par.groups[p] = append(par.groups[p], i)
	}
	ln.head += n
	s.ringCount -= n

	if len(par.touched) == 1 {
		// One party owns the whole batch: nothing to overlap, run it
		// inline on the serial path (no staging, no barrier).
		par.groups[par.touched[0]] = par.groups[par.touched[0]][:0]
		for i := 0; i < n; i++ {
			s.processed++
			s.run(par.recs[i].ev)
			par.recs[i].ev = event{}
		}
		return
	}

	par.staging = true
	par.wg.Add(len(par.touched))
	for _, p := range par.touched {
		par.tasks <- p
	}
	par.wg.Wait()
	par.staging = false

	for i := range par.recs {
		rec := &par.recs[i]
		s.processed++
		if s.tracer != nil {
			s.traceHead(&rec.ev)
		}
		for j := range rec.eff {
			ef := &rec.eff[j]
			switch ef.kind {
			case effSend:
				ef.sender.Send(ef.env)
			case effTimer:
				s.push(event{at: ef.at, prio: ef.prio, party: ef.party, kind: kindTimer, fn: ef.fn})
			case effTrace:
				if s.tracer != nil {
					s.tracer.Emit(ef.tev)
				}
			case effDefer:
				ef.fn()
			}
			rec.eff[j] = effect{} // release references
		}
		rec.eff = rec.eff[:0]
		rec.ev = event{}
	}
	for _, p := range par.touched {
		par.groups[p] = par.groups[p][:0]
	}
}

// worker executes party groups: all of a party's batch events, in
// intra-lane seq order, stage into that party's current record.
func (p *parallelState) worker() {
	for party := range p.tasks {
		for _, idx := range p.groups[party] {
			rec := &p.recs[idx]
			p.curRec[party] = rec
			e := &rec.ev
			if e.kind == kindDeliver {
				e.sink.DispatchDelivered(e.env, e.tag)
			} else {
				e.fn()
			}
		}
		p.wg.Done()
	}
}
