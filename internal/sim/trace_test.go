package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

// nopDispatcher swallows deliveries without touching envelopes.
type nopDispatcher struct{}

func (nopDispatcher) Dispatch(Envelope) {}

// TestNilTracerZeroAllocDeliverPath is the hot-path guard required by
// the acceptance criteria: with no tracer installed, the full
// send→schedule→deliver path must not allocate per message in steady
// state (lane recycling + family memoisation make the loop
// allocation-free after warm-up).
func TestNilTracerZeroAllocDeliverPath(t *testing.T) {
	s := NewScheduler()
	nw := NewNetwork(1, s, SyncPolicy{Delta: 4}, rng(7))
	nw.Attach(1, nopDispatcher{})
	env := Envelope{From: 1, To: 1, Inst: "acs/vote", Type: 3, Body: make([]byte, 32)}
	send := func() {
		nw.Send(env)
		for s.Step() {
		}
	}
	for i := 0; i < 64; i++ {
		send() // warm up lane/spare recycling and the metrics family memo
	}
	if allocs := testing.AllocsPerRun(200, send); allocs != 0 {
		t.Fatalf("nil-tracer deliver path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestTracedDeliverEmitsEvents checks the scheduler/network emission
// sites: send, tick, deliver, timer, with correct latency accounting.
func TestTracedDeliverEmitsEvents(t *testing.T) {
	s := NewScheduler()
	nw := NewNetwork(2, s, SyncPolicy{Delta: 8}, rng(7))
	nw.Attach(1, nopDispatcher{})
	nw.Attach(2, nopDispatcher{})
	col := obs.NewCollector()
	s.SetTracer(col)
	nw.SetTracer(col)

	fired := false
	s.At(2, func() { fired = true })
	nw.Send(Envelope{From: 1, To: 2, Inst: "acs/vote", Type: 3, Body: make([]byte, 10)})
	s.RunToQuiescence()
	if !fired {
		t.Fatal("timer did not fire")
	}

	var send, deliver, timer, tick *obs.Event
	for i := range col.Events() {
		ev := &col.Events()[i]
		switch ev.Kind {
		case obs.KSend:
			send = ev
		case obs.KDeliver:
			deliver = ev
		case obs.KTimer:
			timer = ev
		case obs.KTick:
			tick = ev
		}
	}
	if send == nil || deliver == nil || timer == nil || tick == nil {
		t.Fatalf("missing event kinds; got %+v", col.Events())
	}
	if send.Party != 1 || send.Peer != 2 || send.Inst != "acs/vote" || send.Type != 3 {
		t.Fatalf("send event = %+v", send)
	}
	if deliver.Party != 2 || deliver.Peer != 1 {
		t.Fatalf("deliver event = %+v", deliver)
	}
	// The send was at tick 0, so latency == delivery tick == scheduled
	// delay.
	if deliver.A != deliver.Tick || deliver.A != send.A {
		t.Fatalf("latency accounting wrong: deliver=%+v send=%+v", deliver, send)
	}
	if deliver.Bytes != int64((Envelope{Inst: "acs/vote", Body: make([]byte, 10)}).WireSize()) {
		t.Fatalf("deliver bytes = %d", deliver.Bytes)
	}
}

// TestTracedOffIsBitIdentical pins that installing a tracer does not
// perturb the simulation: same seed, same delivery schedule.
func TestTracedOffIsBitIdentical(t *testing.T) {
	run := func(trace bool) []Time {
		s := NewScheduler()
		nw := NewNetwork(3, s, AsyncPolicy{Delta: 10}, rng(42))
		if trace {
			col := obs.NewCollector()
			s.SetTracer(col)
			nw.SetTracer(col)
		}
		var times []Time
		nw.Attach(1, nopDispatcher{})
		nw.Attach(2, DispatcherFunc(func(env Envelope) { times = append(times, s.Now()) }))
		nw.Attach(3, nopDispatcher{})
		for i := 0; i < 20; i++ {
			nw.Send(Envelope{From: 1, To: 2, Inst: "x", Body: make([]byte, 4)})
			nw.Send(Envelope{From: 3, To: 2, Inst: "y", Body: make([]byte, 4)})
		}
		s.RunToQuiescence()
		return times
	}
	off, on := run(false), run(true)
	if len(off) != len(on) {
		t.Fatalf("delivery counts differ: %d vs %d", len(off), len(on))
	}
	for i := range off {
		if off[i] != on[i] {
			t.Fatalf("delivery %d at %d traced vs %d untraced", i, on[i], off[i])
		}
	}
}

func TestCountsSub(t *testing.T) {
	a := Counts{Messages: 10, Bytes: 500}
	b := Counts{Messages: 4, Bytes: 120}
	d := a.Sub(b)
	if d.Messages != 6 || d.Bytes != 380 {
		t.Fatalf("Sub = %+v", d)
	}
	if !(Counts{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestMetricsSnapshotSub(t *testing.T) {
	m := NewMetrics(4)
	m.Record(Envelope{From: 1, To: 2, Inst: "vss/1", Body: make([]byte, 10)}, false, 5)
	pre := m.Snapshot()
	if pre.N != 4 || pre.LastTick != 5 || pre.Honest.Messages != 1 {
		t.Fatalf("snapshot = %+v", pre)
	}
	m.Record(Envelope{From: 1, To: 2, Inst: "vss/1", Body: make([]byte, 10)}, false, 9)
	m.Record(Envelope{From: 1, To: 2, Inst: "ba/1", Body: make([]byte, 6)}, false, 11)
	m.Record(Envelope{From: 3, To: 2, Inst: "vss/1", Body: make([]byte, 2)}, true, 12)
	d := m.Snapshot().Sub(pre)
	if d.Honest.Messages != 2 || d.Corrupt.Messages != 1 || d.LastTick != 12 {
		t.Fatalf("delta = %+v", d)
	}
	if len(d.ByFamily) != 2 || d.ByFamily["vss"].Messages != 1 || d.ByFamily["ba"].Messages != 1 {
		t.Fatalf("delta families = %+v", d.ByFamily)
	}
	// A snapshot is a copy: advancing the live counter must not move it.
	if pre.Honest.Messages != 1 {
		t.Fatalf("snapshot aliased live counters: %+v", pre)
	}
	// Families with no new traffic are dropped from the delta.
	pre2 := m.Snapshot()
	m.Record(Envelope{From: 1, To: 2, Inst: "ba/2", Body: nil}, false, 13)
	d2 := m.Snapshot().Sub(pre2)
	if _, ok := d2.ByFamily["vss"]; ok {
		t.Fatalf("zero-delta family kept: %+v", d2.ByFamily)
	}
}

func TestMetricsMarshalJSONAndString(t *testing.T) {
	m := NewMetrics(3)
	m.Record(Envelope{From: 1, To: 2, Inst: "acs/1", Body: make([]byte, 8)}, false, 17)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back MetricsSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N != 3 || back.LastTick != 17 || back.Honest.Messages != 1 {
		t.Fatalf("marshalled snapshot = %+v", back)
	}
	if back.ByFamily["acs"].Messages != 1 {
		t.Fatalf("marshalled families = %+v", back.ByFamily)
	}
	str := m.String()
	if !strings.Contains(str, "n=3 parties") || !strings.Contains(str, "last send at tick 17") {
		t.Fatalf("String missing run context:\n%s", str)
	}
}
