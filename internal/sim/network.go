package sim

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Envelope is a point-to-point protocol message. Inst identifies the
// protocol instance (hierarchical path, e.g. "vss/3/wps/5/bc/ok"), Type
// is the instance-local message type, and Body is the marshaled payload.
type Envelope struct {
	From int
	To   int
	Inst string
	Type uint8
	Body []byte
}

// WireSize returns the accounted size of the envelope in bytes:
// body + instance path + wire.FrameOverhead bytes of framing (from, to,
// type, length). Both transport backends account this same figure, so
// metrics compare across backends; the physical frame codec
// (wire.FrameWriter) spends slightly more on checksums and prefixes,
// which the proc transport tracks separately as wire-byte counters.
func (e Envelope) WireSize() int { return len(e.Body) + len(e.Inst) + wire.FrameOverhead }

// Policy decides per-message delivery delay. Implementations must return
// a strictly positive, finite delay: the asynchronous model guarantees
// eventual delivery.
type Policy interface {
	// Delay returns the delivery latency for a message from -> to sent at
	// time now.
	Delay(rng *rand.Rand, from, to int, now Time) Time
}

// SyncPolicy models the synchronous network: every message sent at time
// τ is delivered strictly before τ + Δ (uniform jitter in [1, Δ-1]), so
// an event scheduled at a round boundary τ + Δ observes every message
// sent at or after τ. Delta must be at least 2.
type SyncPolicy struct {
	Delta Time
}

// Delay implements Policy.
func (p SyncPolicy) Delay(rng *rand.Rand, from, to int, _ Time) Time {
	if from == to {
		return 1 // local loopback
	}
	if p.Delta <= 2 {
		return 1
	}
	return 1 + Time(rng.Int64N(int64(p.Delta-1)))
}

// AsyncPolicy models the asynchronous network: delays are finite but
// unbounded relative to Δ, with a heavy tail. With probability Tail a
// message is delayed uniformly in [4Δ, 40Δ]; otherwise in [1, 4Δ].
type AsyncPolicy struct {
	Delta Time
	Tail  float64 // default 0.15 when zero
}

// Delay implements Policy.
func (p AsyncPolicy) Delay(rng *rand.Rand, from, to int, _ Time) Time {
	if from == to {
		return 1
	}
	tail := p.Tail
	if tail == 0 {
		tail = 0.15
	}
	if rng.Float64() < tail {
		return 4*p.Delta + Time(rng.Int64N(int64(36*p.Delta)))
	}
	return 1 + Time(rng.Int64N(int64(4*p.Delta)))
}

// StarvePolicy wraps a base policy and additionally withholds messages on
// selected links until a fixed horizon, modelling an adversarial
// scheduler that starves specific honest links for as long as it likes
// (but must eventually deliver).
type StarvePolicy struct {
	Base  Policy
	Until Time
	// Starve reports whether the link from -> to is starved.
	Starve func(from, to int) bool
}

// Delay implements Policy.
func (p StarvePolicy) Delay(rng *rand.Rand, from, to int, now Time) Time {
	d := p.Base.Delay(rng, from, to, now)
	if p.Starve != nil && p.Starve(from, to) && now+d < p.Until {
		return p.Until - now + 1 + Time(rng.Int64N(8))
	}
	return d
}

// BurstPolicy wraps a base policy with periodic network outages: time
// is divided into windows of Period ticks, and any message whose base
// delivery would land in the first Down ticks of a window is pushed
// past the outage (plus a tick of jitter so releases do not all collide
// on one instant). Eventual delivery is preserved — the adversarial
// scheduler may batch deliveries into bursts but never withhold
// forever — which makes this an asynchronous-model policy: during an
// outage the Δ bound is exceeded by construction.
type BurstPolicy struct {
	Base   Policy
	Period Time // window length (> 0)
	Down   Time // outage prefix of each window (0 <= Down < Period)
}

// Delay implements Policy.
func (p BurstPolicy) Delay(rng *rand.Rand, from, to int, now Time) Time {
	d := p.Base.Delay(rng, from, to, now)
	if p.Period <= 0 || p.Down <= 0 {
		return d
	}
	if phase := (now + d) % p.Period; phase < p.Down {
		// Jitter stays below Period - Down so the release cannot wrap
		// into the next window's outage prefix.
		jitter := p.Period - p.Down
		if jitter > 4 {
			jitter = 4
		}
		d += p.Down - phase + Time(rng.Int64N(int64(jitter)))
	}
	return d
}

// Delivery is an adversarially controlled message delivery decision.
type Delivery struct {
	Env        Envelope
	Drop       bool
	DelayExtra Time // additional delay on top of the policy's
}

// Interceptor lets a Byzantine adversary rewrite, duplicate, drop or
// further delay the traffic of corrupt senders. It is only consulted for
// messages originating from corrupt parties: honest parties' messages
// are delivered faithfully (the network schedule is controlled
// separately, via Policy).
type Interceptor interface {
	// Intercept returns the deliveries to perform in place of env.
	Intercept(now Time, env Envelope) []Delivery
}

// Dispatcher receives delivered envelopes; implemented by the party
// runtime.
type Dispatcher interface {
	Dispatch(env Envelope)
}

// Network connects n parties through a delivery policy, applying the
// adversary's interceptor to corrupt senders' traffic and recording
// metrics.
type Network struct {
	n           int
	sched       *Scheduler
	policy      Policy
	rng         *rand.Rand
	parties     []Dispatcher // 1-based
	corrupt     map[int]bool
	interceptor Interceptor
	metrics     *Metrics
	// tracer receives send events; nil (the default) means tracing is
	// off and the emission site reduces to one branch.
	tracer obs.Tracer
}

// NewNetwork creates a network over n parties. Dispatchers are attached
// later via Attach (parties need the network to exist first).
func NewNetwork(n int, sched *Scheduler, policy Policy, rng *rand.Rand) *Network {
	return &Network{
		n:       n,
		sched:   sched,
		policy:  policy,
		rng:     rng,
		parties: make([]Dispatcher, n+1),
		corrupt: make(map[int]bool),
		metrics: NewMetrics(n),
	}
}

// Attach registers the dispatcher for party i.
func (nw *Network) Attach(i int, d Dispatcher) {
	if i < 1 || i > nw.n {
		panic(fmt.Sprintf("sim: attach party %d out of range", i))
	}
	nw.parties[i] = d
}

// SetCorrupt marks the given parties as corrupt and installs the
// adversary's interceptor for their traffic.
func (nw *Network) SetCorrupt(parties []int, ic Interceptor) {
	for _, p := range parties {
		if p < 1 || p > nw.n {
			panic(fmt.Sprintf("sim: corrupt party %d out of range", p))
		}
		nw.corrupt[p] = true
	}
	nw.interceptor = ic
}

// IsCorrupt reports whether party i is corrupt.
func (nw *Network) IsCorrupt(i int) bool { return nw.corrupt[i] }

// CorruptSet returns the sorted list of corrupt parties.
func (nw *Network) CorruptSet() []int {
	var out []int
	for i := 1; i <= nw.n; i++ {
		if nw.corrupt[i] {
			out = append(out, i)
		}
	}
	return out
}

// Metrics returns the network's communication metrics.
func (nw *Network) Metrics() *Metrics { return nw.metrics }

// SetTracer installs tr as the network's trace sink (nil disables
// tracing).
func (nw *Network) SetTracer(tr obs.Tracer) { nw.tracer = tr }

// N returns the number of parties.
func (nw *Network) N() int { return nw.n }

// Send transmits env according to the delivery policy. Messages from
// corrupt senders pass through the adversary's interceptor first.
// During a parallel batch the envelope is staged raw — before the
// interceptor, the metrics and the delay draw — and this method runs
// again at the barrier, so the shared RNG and the adversary observe
// sends in canonical order.
func (nw *Network) Send(env Envelope) {
	if env.To < 1 || env.To > nw.n {
		panic(fmt.Sprintf("sim: send to party %d out of range", env.To))
	}
	if nw.sched.Staging() {
		nw.sched.stageSend(nw, env)
		return
	}
	if nw.corrupt[env.From] && nw.interceptor != nil {
		for _, d := range nw.interceptor.Intercept(nw.sched.Now(), env) {
			if d.Drop {
				continue
			}
			nw.deliver(d.Env, d.DelayExtra)
		}
		return
	}
	nw.deliver(env, 0)
}

func (nw *Network) deliver(env Envelope, extra Time) {
	now := nw.sched.Now()
	nw.metrics.Record(env, nw.corrupt[env.From], now)
	delay := nw.policy.Delay(nw.rng, env.From, env.To, now) + extra
	if delay < 1 {
		delay = 1
	}
	if nw.tracer != nil {
		nw.tracer.Emit(obs.Event{
			Kind: obs.KSend, Tick: int64(now),
			Party: env.From, Peer: env.To,
			Inst: env.Inst, Type: env.Type,
			Bytes: int64(env.WireSize()),
			A:     int64(delay),
		})
	}
	// Typed delivery event: no per-message closure, the scheduler
	// dispatches the envelope directly.
	nw.sched.AfterDeliver(delay, nw, 0, env)
}

// DispatchDelivered implements DeliverSink: the scheduler hands every
// typed delivery event back at its scheduled tick, and the in-memory
// network dispatches it straight to the addressee's runtime.
func (nw *Network) DispatchDelivered(env Envelope, _ uint64) {
	if d := nw.parties[env.To]; d != nil {
		d.Dispatch(env)
	}
}

// Err reports the first transport fault. The in-memory network cannot
// fail: it always returns nil. It exists so harnesses can check any
// transport backend uniformly.
func (nw *Network) Err() error { return nil }

// Close releases transport resources; a no-op for the in-memory
// network.
func (nw *Network) Close() error { return nil }

// TopLabel extracts the first path component of an instance ID, used to
// aggregate metrics by protocol family.
func TopLabel(inst string) string {
	if i := strings.IndexByte(inst, '/'); i >= 0 {
		return inst[:i]
	}
	return inst
}
