// Package ba implements ΠBA (Fig 2, Theorem 3.6): the paper's
// best-of-both-worlds Byzantine agreement on a bit.
//
// Every party broadcasts its input bit through its own ΠBC instance. At
// local time T0 + TBC the regular-mode outputs of all n instances are
// in; if at least n-t are non-⊥, the party adopts the majority bit of
// that set R (ties to 1) as its ABA input, otherwise it keeps its own
// input. The ΠBA output is the ABA output.
//
// In a synchronous network this is a t-perfectly-secure SBA terminating
// by T0 + TBA = T0 + TBC + TABA (all honest parties feed the ABA a
// common input, so the ABA's unanimous fast path fires). In an
// asynchronous network it is a t-perfectly-secure ABA.
package ba

import (
	"fmt"

	"repro/internal/aba"
	"repro/internal/bc"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Deadline returns TBA - T0 = TBC + k·Δ.
func Deadline(t int, delta sim.Time, coinRounds int) sim.Time {
	return bc.Deadline(t, delta) + sim.Time(coinRounds)*delta
}

// BA is one party's state in a ΠBA instance.
type BA struct {
	rt    *proto.Runtime
	inst  string
	t     int
	delta sim.Time
	start sim.Time

	input     uint8
	hasInput  bool
	joinReady bool // the structural ABA-join time has passed

	bcs  []*bc.BC // 1-based; bcs[j] is P_j's broadcast instance
	bits []*uint8 // regular-mode bit per party (nil = ⊥ / invalid), 1-based
	aba  *aba.ABA

	decided  bool
	output   uint8
	onDecide func(uint8)
}

// New registers a ΠBA instance with structural start time start. The
// party must call Start with its input bit at that time. onDecide fires
// exactly once.
func New(rt *proto.Runtime, inst string, t int, delta sim.Time, start sim.Time, coin aba.CoinSource, onDecide func(uint8)) *BA {
	b := &BA{
		rt:       rt,
		inst:     inst,
		t:        t,
		delta:    delta,
		start:    start,
		bcs:      make([]*bc.BC, rt.N()+1),
		bits:     make([]*uint8, rt.N()+1),
		onDecide: onDecide,
	}
	n := rt.N()
	for j := 1; j <= n; j++ {
		j := j
		b.bcs[j] = bc.New(rt, proto.Join(inst, "bc", fmt.Sprint(j)), j, t, delta, start,
			func(m []byte) { b.bits[j] = decodeBit(m) }, nil)
	}
	b.aba = aba.New(rt, proto.Join(inst, "aba"), t, coin, func(v uint8) {
		b.decided = true
		b.output = v
		if b.onDecide != nil {
			b.onDecide(v)
		}
	})
	// Post-processing class: joinABA must observe the regular-mode
	// outputs of all n ΠBC instances, which land at exactly this tick.
	rt.AtProcessing(start+bc.Deadline(t, delta), func() {
		b.joinReady = true
		if b.hasInput {
			b.joinABA()
		}
	})
	return b
}

// Start provides the party's input bit and broadcasts it. Honest
// parties call it at the structural start time; callers that decide
// their input only later (the ΠACS pattern) may call it late, in which
// case the ABA is joined immediately with the input derived from the
// (already final) regular-mode broadcast view.
func (b *BA) Start(input uint8) {
	if b.hasInput {
		return
	}
	b.hasInput = true
	b.input = input & 1
	// Broadcast through this party's own ΠBC instance.
	b.bcs[b.rt.ID()].Broadcast([]byte{b.input})
	if b.joinReady {
		b.joinABA()
	}
}

// Decided returns the output, if any.
func (b *BA) Decided() (uint8, bool) { return b.output, b.decided }

func decodeBit(m []byte) *uint8 {
	if len(m) != 1 || m[0] > 1 {
		return nil
	}
	v := m[0]
	return &v
}

func (b *BA) joinABA() {
	vstar := b.input // default: own input (⊥-less fallback)
	var present, ones int
	for j := 1; j < len(b.bits); j++ {
		if b.bits[j] != nil {
			present++
			if *b.bits[j] == 1 {
				ones++
			}
		}
	}
	if present >= b.rt.N()-b.t {
		if 2*ones >= present { // majority, ties to 1
			vstar = 1
		} else {
			vstar = 0
		}
	}
	b.aba.Start(vstar)
}
