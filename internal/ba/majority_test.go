package ba

import (
	"testing"

	"repro/internal/proto"
)

// TestMajorityOfRDecidesSyncOutput pins down the Fig 2 mechanism: with
// |R| ≥ n-t regular broadcast outputs, every honest party adopts the
// majority bit of R as its ABA input — so the sync output equals the
// majority of the honest inputs (when the corrupt parties' broadcasts
// cannot tip it), and unanimity in the ABA yields the TBA deadline.
func TestMajorityOfRDecidesSyncOutput(t *testing.T) {
	cases := []struct {
		name   string
		inputs []uint8 // 1-based
		want   uint8
	}{
		{"five ones three zeros", []uint8{0, 1, 1, 0, 1, 0, 1, 1, 0}, 1},
		{"five zeros three ones", []uint8{0, 0, 0, 1, 0, 1, 0, 0, 1}, 0},
		{"tie goes to one", []uint8{0, 1, 1, 1, 1, 0, 0, 0, 0}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Sync, Seed: 3})
			h := newHarness(w, w.Cfg.Ts, 3)
			h.start(tc.inputs, nil)
			w.RunToQuiescence()
			got := h.agreement(t)
			if got != tc.want {
				t.Fatalf("output %d, want majority %d", got, tc.want)
			}
			deadline := Deadline(w.Cfg.Ts, w.Cfg.Delta, w.Cfg.CoinRounds)
			for i := 1; i <= 8; i++ {
				if h.outAt[i] > deadline {
					t.Fatalf("party %d at %d > TBA %d", i, h.outAt[i], deadline)
				}
			}
		})
	}
}

// TestLateStartersAdoptCommonView checks the ΠACS staggering pattern:
// parties that call Start only after the broadcast deadline still join
// the ABA with the input derived from the common regular-mode view, so
// agreement and (eventual) liveness hold.
func TestLateStartersAdoptCommonView(t *testing.T) {
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Sync, Seed: 4})
	h := newHarness(w, w.Cfg.Ts, 4)
	inputs := []uint8{0, 1, 1, 1, 1, 1, 0, 0, 0}
	// Parties 1..5 start at time 0; parties 6..8 start much later.
	for i := 1; i <= 5; i++ {
		h.bas[i].Start(inputs[i])
	}
	for i := 6; i <= 8; i++ {
		i := i
		w.Runtimes[i].At(600, func() { h.bas[i].Start(inputs[i]) })
	}
	w.RunToQuiescence()
	h.agreement(t)
}
