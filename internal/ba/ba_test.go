package ba

import (
	"testing"

	"repro/internal/aba"
	"repro/internal/adversary"
	"repro/internal/proto"
	"repro/internal/sim"
)

func cfg() proto.Config { return proto.Config{N: 8, Ts: 2, Ta: 1, Delta: 10} }

type harness struct {
	w     *proto.World
	bas   []*BA
	outs  []*uint8
	outAt []sim.Time
}

func newHarness(w *proto.World, t int, seed uint64) *harness {
	h := &harness{
		w:     w,
		bas:   make([]*BA, w.Cfg.N+1),
		outs:  make([]*uint8, w.Cfg.N+1),
		outAt: make([]sim.Time, w.Cfg.N+1),
	}
	coin := aba.DefaultCoin(seed)
	for i := 1; i <= w.Cfg.N; i++ {
		i := i
		h.bas[i] = New(w.Runtimes[i], "ba", t, w.Cfg.Delta, 0, coin, func(v uint8) {
			h.outs[i] = &v
			h.outAt[i] = w.Sched.Now()
		})
	}
	return h
}

func (h *harness) start(inputs []uint8, skip map[int]bool) {
	for i := 1; i <= h.w.Cfg.N; i++ {
		if skip[i] {
			continue
		}
		h.bas[i].Start(inputs[i])
	}
}

func (h *harness) agreement(t *testing.T) uint8 {
	t.Helper()
	var ref *uint8
	for i := 1; i <= h.w.Cfg.N; i++ {
		if h.w.IsCorrupt(i) {
			continue
		}
		if h.outs[i] == nil {
			t.Fatalf("honest party %d did not decide", i)
		}
		if ref == nil {
			ref = h.outs[i]
		} else if *ref != *h.outs[i] {
			t.Fatalf("consistency violated: %d vs %d", *ref, *h.outs[i])
		}
	}
	return *ref
}

func allBits(n int, v uint8) []uint8 {
	out := make([]uint8, n+1)
	for i := 1; i <= n; i++ {
		out[i] = v
	}
	return out
}

func TestSyncValidityAndDeadline(t *testing.T) {
	// Theorem 3.6: in sync, ΠBA is a t-perfectly-secure SBA with output
	// by TBA = TBC + TABA.
	for _, v := range []uint8{0, 1} {
		for seed := uint64(0); seed < 3; seed++ {
			w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Sync, Seed: seed})
			h := newHarness(w, w.Cfg.Ts, seed)
			h.start(allBits(8, v), nil)
			w.RunToQuiescence()
			if got := h.agreement(t); got != v {
				t.Fatalf("validity violated: in %d out %d", v, got)
			}
			deadline := Deadline(w.Cfg.Ts, w.Cfg.Delta, w.Cfg.CoinRounds)
			for i := 1; i <= 8; i++ {
				if h.outAt[i] > deadline {
					t.Fatalf("party %d decided at %d > TBA = %d", i, h.outAt[i], deadline)
				}
			}
		}
	}
}

func TestSyncMixedInputsConsistent(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Sync, Seed: seed})
		h := newHarness(w, w.Cfg.Ts, seed)
		h.start([]uint8{0, 0, 1, 0, 1, 1, 0, 1, 0}, nil)
		w.RunToQuiescence()
		h.agreement(t)
		// Mixed inputs in sync: all honest still decide by TBA because
		// the ΠBC layer gives them a common view, hence a common ABA
		// input (the Fig 2 mechanism).
		deadline := Deadline(w.Cfg.Ts, w.Cfg.Delta, w.Cfg.CoinRounds)
		for i := 1; i <= 8; i++ {
			if h.outAt[i] > deadline {
				t.Fatalf("seed %d: party %d decided at %d > TBA = %d", seed, i, h.outAt[i], deadline)
			}
		}
	}
}

func TestSyncWithByzantine(t *testing.T) {
	// Honest majority inputs 1; corrupt parties equivocate in their own
	// broadcasts and garble their BA traffic. Validity: unanimous honest
	// inputs must win.
	for seed := uint64(0); seed < 4; seed++ {
		ctrl := adversary.NewController().
			Set(2, adversary.GarbleMatching(func(string) bool { return true })).
			Set(6, adversary.Mutate(adversary.MutateSpec{
				Rewrite: func(env sim.Envelope) []byte { return []byte{0} },
			}))
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: cfg(), Network: proto.Sync, Seed: seed, Corrupt: []int{2, 6}, Interceptor: ctrl,
		})
		h := newHarness(w, w.Cfg.Ts, seed)
		h.start(allBits(8, 1), map[int]bool{2: true}) // corrupt 2 never starts
		w.RunToQuiescence()
		if got := h.agreement(t); got != 1 {
			t.Fatalf("seed %d: validity violated: got %d", seed, got)
		}
	}
}

func TestAsyncValidity(t *testing.T) {
	for _, v := range []uint8{0, 1} {
		for seed := uint64(0); seed < 4; seed++ {
			w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Async, Seed: seed})
			h := newHarness(w, w.Cfg.Ta, seed) // threshold ta in async... the
			// stack always runs BA with t = ts; use ts to mirror usage.
			h = newHarnessWithInst(w, w.Cfg.Ts, seed)
			h.start(allBits(8, v), nil)
			w.RunToQuiescence()
			if got := h.agreement(t); got != v {
				t.Fatalf("async validity violated: in %d out %d", v, got)
			}
		}
	}
}

// newHarnessWithInst avoids duplicate instance registration in tests
// that build two harnesses.
func newHarnessWithInst(w *proto.World, t int, seed uint64) *harness {
	h := &harness{
		w:     w,
		bas:   make([]*BA, w.Cfg.N+1),
		outs:  make([]*uint8, w.Cfg.N+1),
		outAt: make([]sim.Time, w.Cfg.N+1),
	}
	coin := aba.DefaultCoin(seed)
	for i := 1; i <= w.Cfg.N; i++ {
		i := i
		h.bas[i] = New(w.Runtimes[i], "ba2", t, w.Cfg.Delta, 0, coin, func(v uint8) {
			h.outs[i] = &v
			h.outAt[i] = w.Sched.Now()
		})
	}
	return h
}

func TestAsyncMixedWithByzantine(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		ctrl := adversary.NewController().
			Set(4, adversary.Mutate(adversary.MutateSpec{
				Rewrite: func(env sim.Envelope) []byte { return []byte{byte(env.To & 1)} },
			}))
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: cfg(), Network: proto.Async, Seed: seed, Corrupt: []int{4}, Interceptor: ctrl,
		})
		h := newHarness(w, w.Cfg.Ts, seed)
		h.start([]uint8{0, 1, 0, 1, 0, 1, 0, 1, 0}, nil)
		w.RunToQuiescence()
		h.agreement(t)
	}
}

func TestAsyncStarvationAttack(t *testing.T) {
	// The adversary starves every link out of parties {1,2,3} until a
	// far horizon; BA must still decide (almost-sure liveness exercised
	// under a hostile schedule).
	starved := map[int]bool{1: true, 2: true, 3: true}
	pol := sim.StarvePolicy{
		Base:   sim.AsyncPolicy{Delta: 10},
		Until:  5000,
		Starve: func(from, to int) bool { return starved[from] },
	}
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Async, Policy: pol, Seed: 3})
	h := newHarness(w, w.Cfg.Ts, 3)
	h.start([]uint8{0, 1, 1, 0, 0, 1, 0, 1, 1}, nil)
	w.RunToQuiescence()
	h.agreement(t)
}

func TestDecidedAccessor(t *testing.T) {
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Sync, Seed: 9})
	h := newHarness(w, w.Cfg.Ts, 9)
	if _, ok := h.bas[1].Decided(); ok {
		t.Fatal("decided before start")
	}
	h.start(allBits(8, 1), nil)
	w.RunToQuiescence()
	v, ok := h.bas[1].Decided()
	if !ok || v != 1 {
		t.Fatalf("Decided() = %d,%v", v, ok)
	}
}
