package wire

import (
	"math/rand/v2"
	"testing"

	"repro/field"
	"repro/poly"
)

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	p1 := poly.Random(r, 4, field.Random(r))
	p2 := poly.Random(r, 2, field.Random(r))
	es := []field.Element{field.Random(r), field.Random(r), 0}

	w := NewWriter()
	w.Uint(12345).Int(7).Bool(true).Bool(false).
		Element(field.New(99)).Elements(es).
		Poly(p1).Polys([]poly.Poly{p1, p2}).
		Ints([]int{3, 1, 4, 1, 5}).Blob([]byte("hello"))

	rd := NewReader(w.Bytes())
	if got := rd.Uint(); got != 12345 {
		t.Fatalf("Uint = %d", got)
	}
	if got := rd.Int(); got != 7 {
		t.Fatalf("Int = %d", got)
	}
	if !rd.Bool() || rd.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := rd.Element(); got != field.New(99) {
		t.Fatalf("Element = %v", got)
	}
	gotEs := rd.Elements()
	if len(gotEs) != 3 || gotEs[0] != es[0] || gotEs[2] != 0 {
		t.Fatalf("Elements = %v", gotEs)
	}
	if !rd.Poly().Equal(p1) {
		t.Fatal("Poly mismatch")
	}
	ps := rd.Polys()
	if len(ps) != 2 || !ps[0].Equal(p1) || !ps[1].Equal(p2) {
		t.Fatal("Polys mismatch")
	}
	ints := rd.Ints()
	if len(ints) != 5 || ints[4] != 5 {
		t.Fatalf("Ints = %v", ints)
	}
	if string(rd.Blob()) != "hello" {
		t.Fatal("Blob mismatch")
	}
	if err := rd.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestTrailingGarbageDetected(t *testing.T) {
	w := NewWriter().Int(1)
	buf := append(w.Bytes(), 0xff)
	rd := NewReader(buf)
	rd.Int()
	if err := rd.Done(); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestMalformedInputs(t *testing.T) {
	// Truncated element.
	rd := NewReader([]byte{1, 2, 3})
	rd.Element()
	if rd.Err() == nil {
		t.Fatal("short element accepted")
	}
	// Non-canonical element.
	raw := make([]byte, 8)
	for i := range raw {
		raw[i] = 0xff
	}
	rd = NewReader(raw)
	rd.Element()
	if rd.Err() == nil {
		t.Fatal("non-canonical element accepted")
	}
	// Huge length prefix must not allocate/succeed.
	w := NewWriter().Uint(1 << 40)
	rd = NewReader(w.Bytes())
	if out := rd.Elements(); out != nil || rd.Err() == nil {
		t.Fatal("huge length accepted")
	}
	// Bad bool byte.
	rd = NewReader([]byte{7})
	rd.Bool()
	if rd.Err() == nil {
		t.Fatal("bad bool accepted")
	}
	// Blob longer than buffer.
	w = NewWriter().Int(100)
	rd = NewReader(w.Bytes())
	if rd.Blob() != nil || rd.Err() == nil {
		t.Fatal("oversized blob accepted")
	}
	// Empty buffer varint.
	rd = NewReader(nil)
	rd.Uint()
	if rd.Err() == nil {
		t.Fatal("empty varint accepted")
	}
}

func TestErrorSticks(t *testing.T) {
	rd := NewReader([]byte{})
	rd.Int()
	// Subsequent reads return zero values without panicking.
	if rd.Element() != 0 || rd.Elements() != nil || rd.Bool() {
		t.Fatal("reads after error should return zero values")
	}
	if rd.Err() == nil {
		t.Fatal("error lost")
	}
}

func TestPolyDegreeAtMost(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	p := poly.Random(r, 5, field.Random(r))
	buf := NewWriter().Poly(p).Bytes()
	rd := NewReader(buf)
	if rd.PolyDegreeAtMost(4); rd.Err() == nil {
		t.Fatal("degree-5 polynomial accepted with bound 4")
	}
	rd = NewReader(buf)
	got := rd.PolyDegreeAtMost(5)
	if rd.Err() != nil || !got.Equal(p) {
		t.Fatal("degree-5 polynomial rejected with bound 5")
	}
}

func TestNegativeIntPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative int should panic")
		}
	}()
	NewWriter().Int(-1)
}
