// Package wire provides compact binary encoding helpers for protocol
// message payloads. Every protocol message in this repository is
// marshaled through these helpers, so the simulator's byte accounting
// matches what a real deployment would put on the wire, and malformed
// (Byzantine) payloads surface as decode errors that protocols drop.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/field"
	"repro/poly"
)

// ErrMalformed indicates a payload that could not be decoded.
var ErrMalformed = errors.New("wire: malformed payload")

// maxLen bounds collection lengths to keep Byzantine payloads from
// causing huge allocations.
const maxLen = 1 << 20

// PolysSize returns a capacity hint for a length-prefixed slice of
// polynomials: the exact element payload plus a little varint headroom.
func PolysSize(ps []poly.Poly) int {
	n := 2
	for _, p := range ps {
		n += 2 + field.ElementSize*len(p.Coeffs)
	}
	return n
}

// Writer builds a payload.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty payload writer.
func NewWriter() *Writer { return &Writer{} }

// NewWriterCap returns an empty payload writer whose buffer is
// pre-sized to hold n bytes, so hot senders marshal with a single
// allocation instead of append-doubling.
func NewWriterCap(n int) *Writer { return &Writer{buf: make([]byte, 0, n)} }

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Uint writes an unsigned varint.
func (w *Writer) Uint(v uint64) *Writer {
	w.buf = binary.AppendUvarint(w.buf, v)
	return w
}

// Int writes a non-negative int as a varint; negative values panic.
func (w *Writer) Int(v int) *Writer {
	if v < 0 {
		panic(fmt.Sprintf("wire: negative int %d", v))
	}
	return w.Uint(uint64(v))
}

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) *Writer {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
	return w
}

// Element writes a field element (8 bytes).
func (w *Writer) Element(e field.Element) *Writer {
	w.buf = e.AppendBytes(w.buf)
	return w
}

// Elements writes a length-prefixed slice of field elements.
func (w *Writer) Elements(es []field.Element) *Writer {
	w.Int(len(es))
	for _, e := range es {
		w.Element(e)
	}
	return w
}

// Poly writes a polynomial as its coefficient slice.
func (w *Writer) Poly(p poly.Poly) *Writer { return w.Elements(p.Coeffs) }

// Polys writes a length-prefixed slice of polynomials.
func (w *Writer) Polys(ps []poly.Poly) *Writer {
	w.Int(len(ps))
	for _, p := range ps {
		w.Poly(p)
	}
	return w
}

// Ints writes a length-prefixed slice of non-negative ints.
func (w *Writer) Ints(vs []int) *Writer {
	w.Int(len(vs))
	for _, v := range vs {
		w.Int(v)
	}
	return w
}

// Blob writes length-prefixed raw bytes.
func (w *Writer) Blob(b []byte) *Writer {
	w.Int(len(b))
	w.buf = append(w.buf, b...)
	return w
}

// Reader decodes a payload. The first decoding error sticks; callers
// check Err once after reading all fields.
type Reader struct {
	buf []byte
	err error
}

// NewReader returns a reader over the payload.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error, also flagging trailing garbage.
func (r *Reader) Err() error { return r.err }

// Done returns nil only if decoding succeeded and the payload was fully
// consumed.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.buf))
	}
	return nil
}

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrMalformed
	}
}

// Uint reads an unsigned varint.
func (r *Reader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// Int reads a non-negative int.
func (r *Reader) Int() int {
	v := r.Uint()
	if v > maxLen*64 {
		r.fail()
		return 0
	}
	return int(v)
}

// Bool reads a boolean byte.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.buf) < 1 {
		r.fail()
		return false
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	if b > 1 {
		r.fail()
		return false
	}
	return b == 1
}

// Element reads a canonical field element.
func (r *Reader) Element() field.Element {
	if r.err != nil {
		return 0
	}
	e, err := field.FromBytes(r.buf)
	if err != nil {
		r.fail()
		return 0
	}
	r.buf = r.buf[field.ElementSize:]
	return e
}

// Elements reads a length-prefixed slice of field elements.
func (r *Reader) Elements() []field.Element {
	n := r.Int()
	if r.err != nil || n > maxLen {
		r.fail()
		return nil
	}
	out := make([]field.Element, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		out = append(out, r.Element())
		if r.err != nil {
			return nil
		}
	}
	return out
}

// Poly reads a polynomial.
func (r *Reader) Poly() poly.Poly { return poly.Poly{Coeffs: r.Elements()} }

// PolyDegreeAtMost reads a polynomial and fails unless its degree is at
// most d (Byzantine dealers may send oversized polynomials).
func (r *Reader) PolyDegreeAtMost(d int) poly.Poly {
	p := r.Poly()
	if r.err == nil && p.Degree() > d {
		r.fail()
		return poly.Poly{}
	}
	return p
}

// Polys reads a length-prefixed slice of polynomials.
func (r *Reader) Polys() []poly.Poly {
	n := r.Int()
	if r.err != nil || n > maxLen {
		r.fail()
		return nil
	}
	out := make([]poly.Poly, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		out = append(out, r.Poly())
		if r.err != nil {
			return nil
		}
	}
	return out
}

// Ints reads a length-prefixed slice of non-negative ints.
func (r *Reader) Ints() []int {
	n := r.Int()
	if r.err != nil || n > maxLen {
		r.fail()
		return nil
	}
	out := make([]int, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		out = append(out, r.Int())
		if r.err != nil {
			return nil
		}
	}
	return out
}

// BlobRef reads length-prefixed raw bytes without copying: the result
// aliases the payload buffer. Callers must treat it as read-only; this
// is safe for delivered envelope bodies, which are immutable once sent
// (interceptors copy before rewriting).
func (r *Reader) BlobRef() []byte {
	n := r.Int()
	if r.err != nil || n > maxLen {
		r.fail()
		return nil
	}
	if len(r.buf) < n {
		r.fail()
		return nil
	}
	out := r.buf[:n:n]
	r.buf = r.buf[n:]
	return out
}

// Blob reads length-prefixed raw bytes.
func (r *Reader) Blob() []byte {
	n := r.Int()
	if r.err != nil || n > maxLen {
		r.fail()
		return nil
	}
	if len(r.buf) < n {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[:n])
	r.buf = r.buf[n:]
	return out
}
