package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame codec: the length-prefixed, checksummed envelope encoding both
// transport backends share. The simulator accounts message sizes with
// Envelope.WireSize (body + instance path + FrameOverhead); the proc
// transport puts the same fields physically on a socket as
//
//	bytes 0..3   big-endian payload length
//	payload      from varint | to varint | type byte | inst blob | body blob
//	last 4 bytes big-endian CRC-32C (Castagnoli) of the payload
//
// A frame that does not fit MaxFrame is refused on the write side and
// rejected before allocation on the read side; a checksum mismatch and
// a short read are typed errors, so a Byzantine or broken peer can
// never make a reader block on garbage or allocate unboundedly.

// FrameOverhead is the per-message framing cost the simulator's
// Envelope.WireSize accounts for: sender, addressee, message type and a
// length prefix. The physical codec spends more (a fixed 4-byte length
// prefix, varint party indices, blob length prefixes and the CRC
// trailer); the virtual figure is kept as the stable metrics unit.
const FrameOverhead = 6

// MaxFrame bounds one frame's payload: the maximum body a protocol may
// marshal (maxLen) plus room for the instance path and the header
// fields. Anything larger is malformed by construction.
const MaxFrame = maxLen + 1<<12

// Frame errors. ErrFrameTooLarge covers both directions (writing an
// oversized envelope, reading an implausible length header); short
// reads surface as io.ErrUnexpectedEOF so callers can distinguish a
// torn stream from a corrupted one (ErrFrameCRC).
var (
	// ErrFrameTooLarge marks a frame whose payload exceeds MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrFrameCRC marks a frame whose payload fails its checksum.
	ErrFrameCRC = errors.New("wire: frame checksum mismatch")
)

// castagnoli is the CRC-32C table shared by both frame directions.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame is one decoded transport message: the same fields as
// sim.Envelope, kept here so the codec does not depend on the
// simulator package.
type Frame struct {
	From int
	To   int
	Type uint8
	Inst string
	Body []byte
}

// AppendFrame encodes f and appends the full wire frame (length prefix,
// payload, CRC trailer) to dst, returning the extended slice. It fails
// with ErrFrameTooLarge if the payload exceeds MaxFrame.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	w := NewWriterCap(len(f.Inst) + len(f.Body) + 16)
	w.Int(f.From).Int(f.To)
	w.buf = append(w.buf, f.Type)
	w.Blob([]byte(f.Inst))
	w.Blob(f.Body)
	payload := w.Bytes()
	if len(payload) > MaxFrame {
		return dst, fmt.Errorf("%w: payload %d > %d", ErrFrameTooLarge, len(payload), MaxFrame)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return dst, nil
}

// FrameWriter writes frames to an underlying stream, reusing one
// buffer across frames.
type FrameWriter struct {
	w   io.Writer
	buf []byte
}

// NewFrameWriter returns a frame writer over w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// WriteFrame encodes and writes one frame, returning the number of
// bytes put on the stream. Oversized frames fail with ErrFrameTooLarge
// before anything is written.
func (fw *FrameWriter) WriteFrame(f Frame) (int, error) {
	buf, err := AppendFrame(fw.buf[:0], f)
	if err != nil {
		return 0, err
	}
	fw.buf = buf[:0]
	n, err := fw.w.Write(buf)
	if err != nil {
		return n, fmt.Errorf("wire: write frame: %w", err)
	}
	return n, nil
}

// FrameReader reads frames from an underlying stream.
type FrameReader struct {
	r   io.Reader
	buf []byte
}

// NewFrameReader returns a frame reader over r.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// ReadFrame reads and decodes one frame, returning the number of raw
// bytes consumed. A stream ending cleanly between frames returns
// io.EOF; a stream torn mid-frame returns io.ErrUnexpectedEOF; an
// implausible length header fails with ErrFrameTooLarge before any
// allocation; a checksum mismatch fails with ErrFrameCRC. The returned
// frame's Body and Inst do not alias the reader's buffer.
func (fr *FrameReader) ReadFrame() (Frame, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, 0, io.EOF
		}
		return Frame{}, 0, fmt.Errorf("wire: frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Frame{}, 4, fmt.Errorf("%w: length header says %d > %d", ErrFrameTooLarge, n, MaxFrame)
	}
	if cap(fr.buf) < int(n)+4 {
		fr.buf = make([]byte, int(n)+4)
	}
	buf := fr.buf[:int(n)+4]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, 4, fmt.Errorf("wire: torn frame: %w", io.ErrUnexpectedEOF)
		}
		return Frame{}, 4, fmt.Errorf("wire: frame payload: %w", err)
	}
	payload, sum := buf[:n], binary.BigEndian.Uint32(buf[n:])
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return Frame{}, int(n) + 8, fmt.Errorf("%w: computed %08x, trailer says %08x", ErrFrameCRC, got, sum)
	}
	r := NewReader(payload)
	f := Frame{From: r.Int(), To: r.Int()}
	if r.err == nil && len(r.buf) >= 1 {
		f.Type = r.buf[0]
		r.buf = r.buf[1:]
	} else {
		r.fail()
	}
	f.Inst = string(r.BlobRef())
	f.Body = r.Blob()
	if err := r.Done(); err != nil {
		return Frame{}, int(n) + 8, fmt.Errorf("wire: frame payload: %w", err)
	}
	return f, int(n) + 8, nil
}
