package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

func mustAppend(t *testing.T, f Frame) []byte {
	t.Helper()
	raw, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	return raw
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{From: 1, To: 2, Type: 7, Inst: "vss/3/wps/5/bc/ok", Body: []byte{1, 2, 3}},
		{From: 8, To: 8, Type: 0, Inst: "", Body: nil},
		{From: 300, To: 1, Type: 255, Inst: "mpc/e12/lay/3", Body: bytes.Repeat([]byte{0xab}, 4096)},
	}
	var stream bytes.Buffer
	fw := NewFrameWriter(&stream)
	wrote := 0
	for _, f := range frames {
		n, err := fw.WriteFrame(f)
		if err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		wrote += n
	}
	fr := NewFrameReader(&stream)
	read := 0
	for i, want := range frames {
		got, n, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		read += n
		if got.From != want.From || got.To != want.To || got.Type != want.Type || got.Inst != want.Inst {
			t.Fatalf("frame %d header = %+v, want %+v", i, got, want)
		}
		if !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("frame %d body mismatch (%d vs %d bytes)", i, len(got.Body), len(want.Body))
		}
	}
	if wrote != read {
		t.Fatalf("wrote %d bytes, read %d", wrote, read)
	}
	if _, _, err := fr.ReadFrame(); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}
}

// TestFrameTornReads truncates an encoded frame at every possible
// prefix: a cut before the first header byte is a clean EOF, every
// other cut must surface io.ErrUnexpectedEOF — never a hang, a panic
// or a bogus decoded frame.
func TestFrameTornReads(t *testing.T) {
	raw := mustAppend(t, Frame{From: 3, To: 5, Type: 9, Inst: "acs/1", Body: []byte("payload")})
	for cut := 0; cut < len(raw); cut++ {
		fr := NewFrameReader(bytes.NewReader(raw[:cut]))
		_, _, err := fr.ReadFrame()
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("cut 0: got %v, want io.EOF", err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d/%d: got %v, want io.ErrUnexpectedEOF", cut, len(raw), err)
		}
	}
}

// TestFrameMaxSize drives the codec at its documented bound: the
// largest body a protocol payload may carry round-trips, and a payload
// over MaxFrame is refused on write and rejected on read before any
// allocation.
func TestFrameMaxSize(t *testing.T) {
	big := Frame{From: 1, To: 2, Type: 1, Inst: "pool/fill", Body: make([]byte, maxLen)}
	raw := mustAppend(t, big)
	got, _, err := NewFrameReader(bytes.NewReader(raw)).ReadFrame()
	if err != nil {
		t.Fatalf("max-size frame: %v", err)
	}
	if len(got.Body) != maxLen {
		t.Fatalf("max-size body: got %d bytes, want %d", len(got.Body), maxLen)
	}

	if _, err := AppendFrame(nil, Frame{From: 1, To: 2, Body: make([]byte, MaxFrame)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize write: got %v, want ErrFrameTooLarge", err)
	}

	// An adversarial length header must be rejected without reading or
	// allocating the claimed payload.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, _, err := NewFrameReader(bytes.NewReader(hdr[:])).ReadFrame(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize header: got %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameCRCMismatch(t *testing.T) {
	raw := mustAppend(t, Frame{From: 2, To: 4, Type: 3, Inst: "ba/0", Body: []byte{9, 9, 9}})
	for _, flip := range []int{4, len(raw) / 2, len(raw) - 1} {
		bad := bytes.Clone(raw)
		bad[flip] ^= 0x40
		_, _, err := NewFrameReader(bytes.NewReader(bad)).ReadFrame()
		if !errors.Is(err, ErrFrameCRC) {
			t.Fatalf("flip byte %d: got %v, want ErrFrameCRC", flip, err)
		}
	}
}

// TestFrameTrailingGarbage ensures a payload with bytes beyond the
// declared fields fails as malformed rather than decoding silently.
func TestFrameTrailingGarbage(t *testing.T) {
	w := NewWriter()
	w.Int(1).Int(2)
	w.buf = append(w.buf, 0)
	w.Blob([]byte("x")).Blob(nil)
	payload := append(w.Bytes(), 0xff) // trailing garbage
	var raw []byte
	raw = binary.BigEndian.AppendUint32(raw, uint32(len(payload)))
	raw = append(raw, payload...)
	raw = binary.BigEndian.AppendUint32(raw, crc32.Checksum(payload, castagnoli))
	if _, _, err := NewFrameReader(bytes.NewReader(raw)).ReadFrame(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("trailing garbage: got %v, want ErrMalformed", err)
	}
}
