// Package aba implements randomized asynchronous binary Byzantine
// agreement filling the ΠABA role of the paper (Lemma 3.3), following
// the round structure of Mostéfaoui, Moumen and Raynal (signature-free
// binary consensus, t < n/3) over plain point-to-point channels, plus a
// Bracha-style DECIDED amplification gadget for termination.
//
// Per round r with binary estimate est:
//
//  1. BV-broadcast: send BVAL(r, est); relay BVAL(r, v) after t+1
//     copies; add v to binValues[r] after 2t+1 copies. binValues only
//     ever contains values BVAL'd by at least one honest party.
//  2. Send AUX(r, w) for the first w entering binValues[r]. Wait until
//     ≥ n-t AUX(r, ·) messages carry values inside binValues[r]; let
//     vals be the set of those values.
//  3. Draw the round coin c. If vals = {v}: decide v when v = c, and in
//     any case est := v. If vals = {0, 1}: est := c.
//
// A decider keeps participating in subsequent rounds (with est frozen)
// and broadcasts DECIDED(v); t+1 DECIDED(v) make a party decide, 2t+1
// let it halt. Agreement is coin-independent; liveness relies on the
// coin matching the forced value with probability 1/2 per round.
//
// The coin is pluggable (see CoinSource). The default schedule —
// deterministic 0 then 1 for rounds 1-2, unpredictable common coin from
// round 3 — soundly provides the paper's "guaranteed liveness within
// k·Δ on unanimous inputs" (with unanimous inputs est can never change,
// so coin predictability is irrelevant and rounds 1-2 cover both
// values) while keeping almost-surely liveness on mixed inputs. This
// substitutes for the shunning-AVSS common coin of [3,7]; see
// DESIGN.md §2.
package aba

import (
	"hash/fnv"
	"math/rand/v2"

	"repro/internal/proto"
	"repro/internal/wire"
)

// Message types.
const (
	msgBval uint8 = iota + 1
	msgAux
	msgDecided
)

// CoinSource produces the round coins.
type CoinSource interface {
	// Flip returns the coin for the given instance and round, in {0,1}.
	// rng is the calling party's private random stream (used only by
	// local-coin implementations); common coins must ignore both rng and
	// the party identity.
	Flip(rng *rand.Rand, inst string, round int) uint8
}

// CommonCoin is an ideal common coin: every party obtains the same
// unpredictable-to-the-scheduler bit for (instance, round). It models
// the output of the shunning-AVSS coin of [3,7].
type CommonCoin struct {
	Seed uint64
}

// Flip implements CoinSource.
func (c CommonCoin) Flip(_ *rand.Rand, inst string, round int) uint8 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(c.Seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(inst))
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(round) >> (8 * i))
	}
	h.Write(b[:])
	return uint8(h.Sum64() & 1)
}

// ScheduledCoin plays fixed coins for the first rounds, then delegates.
// Schedule [0, 1] with a CommonCoin tail is the package default.
type ScheduledCoin struct {
	Schedule []uint8
	Tail     CoinSource
}

// Flip implements CoinSource.
func (c ScheduledCoin) Flip(rng *rand.Rand, inst string, round int) uint8 {
	if round >= 1 && round <= len(c.Schedule) {
		return c.Schedule[round-1]
	}
	return c.Tail.Flip(rng, inst, round)
}

// LocalCoin is Bracha's perfectly-secure local coin: each party flips
// privately. Almost-surely terminating, exponential expected rounds.
type LocalCoin struct{}

// Flip implements CoinSource.
func (LocalCoin) Flip(rng *rand.Rand, _ string, _ int) uint8 {
	return uint8(rng.Uint64() & 1)
}

// DefaultCoin returns the package default: deterministic 0, 1 for
// rounds 1-2 (guaranteed liveness on unanimous inputs), ideal common
// coin afterwards (almost-surely liveness on mixed inputs).
func DefaultCoin(seed uint64) CoinSource {
	return ScheduledCoin{Schedule: []uint8{0, 1}, Tail: CommonCoin{Seed: seed}}
}

type roundState struct {
	bval      map[uint8]map[int]bool // v -> senders
	sentBval  map[uint8]bool
	binValues []uint8 // insertion-ordered, subset of {0,1}
	aux       map[int]uint8
	sentAux   bool
	advanced  bool
}

// ABA is one party's state in a binary-agreement instance.
type ABA struct {
	rt   *proto.Runtime
	inst string
	n, t int
	coin CoinSource

	started bool
	est     uint8
	round   int
	rounds  map[int]*roundState

	decided  bool
	decision uint8
	halted   bool

	decidedFrom map[uint8]map[int]bool
	sentDecided bool

	onDecide func(uint8)
}

// New registers an ABA instance. Call Start to provide the input;
// onDecide fires exactly once.
func New(rt *proto.Runtime, inst string, t int, coin CoinSource, onDecide func(uint8)) *ABA {
	a := &ABA{
		rt:          rt,
		inst:        inst,
		n:           rt.N(),
		t:           t,
		coin:        coin,
		rounds:      make(map[int]*roundState),
		decidedFrom: make(map[uint8]map[int]bool),
		onDecide:    onDecide,
	}
	rt.Register(inst, a)
	return a
}

// Start begins the protocol with the given binary input.
func (a *ABA) Start(input uint8) {
	if a.started {
		return
	}
	a.started = true
	a.est = input & 1
	a.round = 1
	a.sendBval(1, a.est)
	a.progress()
}

// Decided reports the decision, if any.
func (a *ABA) Decided() (uint8, bool) { return a.decision, a.decided }

// Round returns the current round number (1-based once started); after
// a decision it reflects how many rounds the instance consumed, which
// the coin-source ablation (A2 in DESIGN.md) compares across coins.
func (a *ABA) Round() int { return a.round }

// Halted reports whether the instance has fully terminated.
func (a *ABA) Halted() bool { return a.halted }

func (a *ABA) state(r int) *roundState {
	rs := a.rounds[r]
	if rs == nil {
		rs = &roundState{
			bval:     map[uint8]map[int]bool{0: {}, 1: {}},
			sentBval: make(map[uint8]bool),
			aux:      make(map[int]uint8),
		}
		a.rounds[r] = rs
	}
	return rs
}

func (a *ABA) sendBval(r int, v uint8) {
	rs := a.state(r)
	if rs.sentBval[v] {
		return
	}
	rs.sentBval[v] = true
	a.rt.SendAll(a.inst, msgBval, wire.NewWriter().Int(r).Uint(uint64(v)).Bytes())
}

func (a *ABA) inBin(rs *roundState, v uint8) bool {
	for _, w := range rs.binValues {
		if w == v {
			return true
		}
	}
	return false
}

// progress advances the current round as far as the received messages
// allow. It loops because completing round r can immediately complete
// round r+1 from buffered traffic.
func (a *ABA) progress() {
	for a.started && !a.halted {
		rs := a.state(a.round)
		if !rs.sentAux {
			if len(rs.binValues) == 0 {
				return
			}
			rs.sentAux = true
			w := rs.binValues[0]
			a.rt.SendAll(a.inst, msgAux, wire.NewWriter().Int(a.round).Uint(uint64(w)).Bytes())
		}
		// Count AUX messages whose value is inside binValues.
		count := 0
		seen := map[uint8]bool{}
		for _, v := range rs.aux {
			if a.inBin(rs, v) {
				count++
				seen[v] = true
			}
		}
		if count < a.n-a.t {
			return
		}
		rs.advanced = true
		c := a.coin.Flip(a.rt.Rand(), a.inst, a.round) & 1
		if len(seen) == 1 {
			var v uint8
			for w := range seen {
				v = w
			}
			if v == c {
				a.decide(v)
			}
			a.est = v
		} else {
			a.est = c
		}
		if a.decided {
			a.est = a.decision
		}
		a.round++
		a.sendBval(a.round, a.est)
	}
}

func (a *ABA) decide(v uint8) {
	if a.decided {
		return
	}
	a.decided = true
	a.decision = v
	a.est = v
	if !a.sentDecided {
		a.sentDecided = true
		a.rt.SendAll(a.inst, msgDecided, wire.NewWriter().Uint(uint64(v)).Bytes())
	}
	if a.onDecide != nil {
		a.onDecide(v)
	}
}

// Deliver implements proto.Handler.
func (a *ABA) Deliver(from int, msgType uint8, body []byte) {
	r := wire.NewReader(body)
	switch msgType {
	case msgBval, msgAux:
		round := r.Int()
		v := uint8(r.Uint())
		if r.Done() != nil || v > 1 || round < 1 || round > 1<<20 {
			return
		}
		rs := a.state(round)
		if msgType == msgBval {
			set := rs.bval[v]
			if set[from] {
				return
			}
			set[from] = true
			if len(set) >= a.t+1 && a.started && !a.halted {
				a.sendBval(round, v) // relay
			}
			if len(set) >= 2*a.t+1 && !a.inBin(rs, v) {
				rs.binValues = append(rs.binValues, v)
			}
		} else {
			if _, dup := rs.aux[from]; dup {
				return
			}
			rs.aux[from] = v
		}
		a.progress()
	case msgDecided:
		v := uint8(r.Uint())
		if r.Done() != nil || v > 1 {
			return
		}
		set := a.decidedFrom[v]
		if set == nil {
			set = make(map[int]bool)
			a.decidedFrom[v] = set
		}
		if set[from] {
			return
		}
		set[from] = true
		if len(set) >= a.t+1 {
			a.decide(v)
		}
		if len(set) >= 2*a.t+1 && a.decided && a.decision == v {
			a.halted = true
		}
	}
}
