package aba

import (
	"math/rand/v2"
	"testing"

	"repro/internal/adversary"
	"repro/internal/proto"
	"repro/internal/sim"
)

func cfg() proto.Config { return proto.Config{N: 8, Ts: 2, Ta: 1, Delta: 10} }

type harness struct {
	w     *proto.World
	abas  []*ABA
	outs  []*uint8
	outAt []sim.Time
}

func newHarness(w *proto.World, t int, coin CoinSource) *harness {
	h := &harness{
		w:     w,
		abas:  make([]*ABA, w.Cfg.N+1),
		outs:  make([]*uint8, w.Cfg.N+1),
		outAt: make([]sim.Time, w.Cfg.N+1),
	}
	for i := 1; i <= w.Cfg.N; i++ {
		i := i
		h.abas[i] = New(w.Runtimes[i], "aba", t, coin, func(v uint8) {
			h.outs[i] = &v
			h.outAt[i] = w.Sched.Now()
		})
	}
	return h
}

func (h *harness) start(inputs []uint8) {
	for i := 1; i <= h.w.Cfg.N; i++ {
		h.abas[i].Start(inputs[i])
	}
}

func (h *harness) checkAgreementAndReturn(t *testing.T) uint8 {
	t.Helper()
	var ref *uint8
	for i := 1; i <= h.w.Cfg.N; i++ {
		if h.w.IsCorrupt(i) {
			continue
		}
		if h.outs[i] == nil {
			t.Fatalf("honest party %d did not decide", i)
		}
		if ref == nil {
			ref = h.outs[i]
		} else if *ref != *h.outs[i] {
			t.Fatalf("agreement violated: %d vs %d", *ref, *h.outs[i])
		}
	}
	if ref == nil {
		t.Fatal("no honest decisions")
	}
	return *ref
}

func inputsAll(n int, v uint8) []uint8 {
	in := make([]uint8, n+1)
	for i := 1; i <= n; i++ {
		in[i] = v
	}
	return in
}

func TestUnanimousDecidesBothValuesSync(t *testing.T) {
	for _, v := range []uint8{0, 1} {
		for seed := uint64(0); seed < 4; seed++ {
			w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Sync, Seed: seed})
			h := newHarness(w, w.Cfg.Ts, DefaultCoin(seed))
			h.start(inputsAll(8, v))
			w.RunToQuiescence()
			if got := h.checkAgreementAndReturn(t); got != v {
				t.Fatalf("validity violated: input %d, output %d", v, got)
			}
			// Guaranteed liveness within k·Δ on unanimous inputs
			// (k = CoinRounds = 8 with margin; the DetFirstCoins schedule
			// covers both values within two coin rounds).
			kDelta := sim.Time(8) * w.Cfg.Delta
			for i := 1; i <= 8; i++ {
				if h.outAt[i] > kDelta {
					t.Fatalf("party %d decided at %d > kΔ = %d on unanimous inputs", i, h.outAt[i], kDelta)
				}
			}
		}
	}
}

func TestUnanimousWithByzantineSync(t *testing.T) {
	// Honest unanimous 1; corrupt parties push 0 everywhere.
	zeroBval := func(env sim.Envelope) []byte {
		return []byte{1, 0} // round=1 varint, value=0 — crude but decodable
	}
	ctrl := adversary.NewController().
		Set(3, adversary.Mutate(adversary.MutateSpec{Rewrite: zeroBval})).
		Set(6, adversary.GarbleMatching(func(string) bool { return true }))
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: cfg(), Network: proto.Sync, Seed: 2, Corrupt: []int{3, 6}, Interceptor: ctrl,
	})
	h := newHarness(w, w.Cfg.Ts, DefaultCoin(2))
	h.start(inputsAll(8, 1))
	w.RunToQuiescence()
	if got := h.checkAgreementAndReturn(t); got != 1 {
		t.Fatalf("validity violated under Byzantine pressure: got %d", got)
	}
}

func TestMixedInputsAgreeSyncAndAsync(t *testing.T) {
	for _, nk := range []proto.NetKind{proto.Sync, proto.Async} {
		for seed := uint64(0); seed < 6; seed++ {
			w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: nk, Seed: seed})
			h := newHarness(w, w.Cfg.Ts, DefaultCoin(seed^0xabc))
			in := make([]uint8, 9)
			r := rand.New(rand.NewPCG(seed, 1))
			for i := 1; i <= 8; i++ {
				in[i] = uint8(r.Uint64() & 1)
			}
			h.start(in)
			w.RunToQuiescence()
			h.checkAgreementAndReturn(t)
		}
	}
}

func TestMixedInputsWithByzantineAsync(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		ctrl := adversary.NewController().
			Set(2, adversary.Mutate(adversary.MutateSpec{
				Rewrite: func(env sim.Envelope) []byte {
					return []byte{1, byte(env.To & 1)} // equivocate
				},
			}))
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: cfg(), Network: proto.Async, Seed: seed, Corrupt: []int{2}, Interceptor: ctrl,
		})
		h := newHarness(w, w.Cfg.Ts, DefaultCoin(seed))
		in := []uint8{0, 0, 1, 1, 0, 1, 0, 1, 0}
		h.start(in)
		w.RunToQuiescence()
		h.checkAgreementAndReturn(t)
	}
}

func TestLocalCoinTerminates(t *testing.T) {
	// Bracha-style local coin: almost-surely terminating; with n=8 and
	// random scheduling it converges quickly in practice.
	for seed := uint64(0); seed < 4; seed++ {
		w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Async, Seed: seed,
			EventLimit: 5_000_000})
		h := newHarness(w, w.Cfg.Ts, LocalCoin{})
		in := []uint8{0, 0, 1, 0, 1, 0, 1, 0, 1}
		h.start(in)
		w.RunToQuiescence()
		h.checkAgreementAndReturn(t)
	}
}

func TestValidityOnlyDecidesProposedValue(t *testing.T) {
	// MMR non-intrusion: with honest unanimous 0, output 1 is impossible
	// whatever the corrupt parties do, because 1 can never enter any
	// honest binValues (needs t+1 BVAL senders, only t corrupt).
	for seed := uint64(0); seed < 8; seed++ {
		ctrl := adversary.NewController().
			Set(1, adversary.Mutate(adversary.MutateSpec{
				Rewrite: func(env sim.Envelope) []byte { return []byte{1, 1} },
			})).
			Set(8, adversary.Mutate(adversary.MutateSpec{
				Rewrite: func(env sim.Envelope) []byte { return []byte{1, 1} },
			}))
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: cfg(), Network: proto.Async, Seed: seed, Corrupt: []int{1, 8}, Interceptor: ctrl,
		})
		h := newHarness(w, w.Cfg.Ts, DefaultCoin(seed))
		h.start(inputsAll(8, 0))
		w.RunToQuiescence()
		if got := h.checkAgreementAndReturn(t); got != 0 {
			t.Fatalf("seed %d: corrupt parties forced non-proposed value %d", seed, got)
		}
	}
}

func TestHaltsAndStopsSending(t *testing.T) {
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Sync, Seed: 3})
	h := newHarness(w, w.Cfg.Ts, DefaultCoin(3))
	h.start(inputsAll(8, 0))
	w.RunToQuiescence()
	for i := 1; i <= 8; i++ {
		if !h.abas[i].Halted() {
			t.Fatalf("party %d never halted", i)
		}
	}
	if w.Sched.Pending() != 0 {
		t.Fatalf("events still pending after halt: %d", w.Sched.Pending())
	}
}

func TestScheduledCoin(t *testing.T) {
	c := ScheduledCoin{Schedule: []uint8{0, 1}, Tail: CommonCoin{Seed: 1}}
	if c.Flip(nil, "x", 1) != 0 || c.Flip(nil, "x", 2) != 1 {
		t.Fatal("schedule not honoured")
	}
	// Tail delegates to the common coin: same value for everyone.
	if c.Flip(nil, "x", 3) != (CommonCoin{Seed: 1}).Flip(nil, "x", 3) {
		t.Fatal("tail mismatch")
	}
}

func TestCommonCoinIsCommonAndSpread(t *testing.T) {
	c := CommonCoin{Seed: 99}
	zeros, ones := 0, 0
	for r := 1; r <= 200; r++ {
		v1 := c.Flip(nil, "inst", r)
		v2 := c.Flip(nil, "inst", r)
		if v1 != v2 {
			t.Fatal("common coin differs across calls")
		}
		if v1 == 0 {
			zeros++
		} else {
			ones++
		}
	}
	if zeros < 50 || ones < 50 {
		t.Fatalf("coin heavily biased: %d zeros, %d ones", zeros, ones)
	}
	// Different instances/rounds decorrelate.
	if c.Flip(nil, "a", 1) == c.Flip(nil, "b", 1) &&
		c.Flip(nil, "a", 2) == c.Flip(nil, "b", 2) &&
		c.Flip(nil, "a", 3) == c.Flip(nil, "b", 3) &&
		c.Flip(nil, "a", 4) == c.Flip(nil, "b", 4) &&
		c.Flip(nil, "a", 5) == c.Flip(nil, "b", 5) {
		t.Fatal("suspiciously correlated across instances")
	}
}

func TestStartIdempotent(t *testing.T) {
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Sync, Seed: 4})
	h := newHarness(w, w.Cfg.Ts, DefaultCoin(4))
	h.abas[1].Start(0)
	h.abas[1].Start(1) // ignored
	for i := 2; i <= 8; i++ {
		h.abas[i].Start(0)
	}
	w.RunToQuiescence()
	if got := h.checkAgreementAndReturn(t); got != 0 {
		t.Fatalf("double Start changed input: got %d", got)
	}
}
