package aba

import (
	"testing"

	"repro/internal/proto"
	"repro/internal/sim"
)

type (
	simTime     = sim.Time
	simEnvelope = sim.Envelope
	simDelivery = sim.Delivery
)

// TestA2CoinRoundComparison is the A2 ablation: on unanimous inputs
// the scheduled coin (0, 1, then common) decides within two coin
// rounds deterministically, while a pure common coin needs a geometric
// number of rounds — and the scheduled coin is never slower.
func TestA2CoinRoundComparison(t *testing.T) {
	roundsWith := func(coin CoinSource, v uint8, seed uint64) int {
		w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Sync, Seed: seed})
		h := newHarness(w, w.Cfg.Ts, coin)
		h.start(inputsAll(8, v))
		w.RunToQuiescence()
		h.checkAgreementAndReturn(t)
		maxRound := 0
		for i := 1; i <= 8; i++ {
			if r := h.abas[i].Round(); r > maxRound {
				maxRound = r
			}
		}
		return maxRound
	}

	for _, v := range []uint8{0, 1} {
		sawSlowCommon := false
		for seed := uint64(0); seed < 8; seed++ {
			scheduled := roundsWith(DefaultCoin(seed), v, seed)
			common := roundsWith(CommonCoin{Seed: seed}, v, seed)
			// Scheduled: the matching coin appears in round 1 or 2, and
			// the instance advances at most one more round before
			// halting.
			if scheduled > 3 {
				t.Fatalf("v=%d seed=%d: scheduled coin took %d rounds", v, seed, scheduled)
			}
			if common > scheduled {
				sawSlowCommon = true
			}
			if common < 1 {
				t.Fatalf("common coin rounds = %d", common)
			}
		}
		_ = sawSlowCommon // statistical; both fast runs are fine too
	}
}

// TestA2LocalCoinRoundsBounded sanity-checks the local-coin variant on
// unanimous inputs: with everyone's estimate pinned, any coin flip
// matching v decides, so rounds stay small even with private coins.
func TestA2LocalCoinRoundsBounded(t *testing.T) {
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Sync, Seed: 1})
	h := newHarness(w, w.Cfg.Ts, LocalCoin{})
	h.start(inputsAll(8, 1))
	w.RunToQuiescence()
	h.checkAgreementAndReturn(t)
}

// TestDuplicatedMessagesHarmless replays every corrupt-party message
// twice with a delay; dedup-by-sender logic must keep all properties.
func TestDuplicatedMessagesHarmless(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: cfg(), Network: proto.Async, Seed: seed,
			Corrupt:     []int{2},
			Interceptor: duplicator{},
		})
		h := newHarness(w, w.Cfg.Ts, DefaultCoin(seed))
		h.start([]uint8{0, 1, 0, 1, 1, 0, 1, 0, 1})
		w.RunToQuiescence()
		h.checkAgreementAndReturn(t)
	}
}

type duplicator struct{}

func (duplicator) Intercept(_ simTime, env simEnvelope) []simDelivery {
	return []simDelivery{{Env: env}, {Env: env, DelayExtra: 50}, {Env: env, DelayExtra: 200}}
}
