// Package acs implements ΠACS (Fig 5, Lemma 5.1): best-of-both-worlds
// agreement on a common subset.
//
// Every party acts as a dealer in its own ΠVSS instance, sharing L
// polynomials of degree ts. One ΠBA instance per party decides whether
// that party makes it into the common subset CS: a party inputs 1 to
// Π(j)BA once Π(j)VSS has produced its output locally (from the
// structural time T0+TVSS onwards), and once n-ts ΠBA instances have
// output 1 it inputs 0 to every ΠBA it has not yet joined. CS is the
// set of parties whose ΠBA output 1.
//
// Guarantees: |CS| ≥ n-ts always; in a synchronous network every honest
// party is in CS (by T0+TVSS every honest dealer's VSS has delivered,
// so all honest parties input 1 to every honest dealer's ΠBA), and the
// protocol completes by TACS = TVSS + 2·TBA; in an asynchronous network
// CS is output eventually, almost surely. For every P_j ∈ CS, every
// honest party eventually holds f_j's shares (the VSS strong
// commitment: ΠBA validity means some honest party fed 1, i.e. had a
// VSS output, which commits the polynomials for everyone).
package acs

import (
	"fmt"

	"repro/field"
	"repro/internal/aba"
	"repro/internal/ba"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/vss"
	"repro/poly"
)

// ACS is one party's state in a ΠACS instance.
type ACS struct {
	rt    *proto.Runtime
	inst  string
	L     int
	cfg   proto.Config
	start sim.Time

	vssInst []*vss.VSS // 1-based; vssInst[j] is P_j's dealer instance
	baInst  []*ba.BA   // 1-based

	shares    map[int][]field.Element // dealer -> my shares
	baGiven   map[int]bool
	baOut     map[int]*uint8
	phase2    bool // the structural input time T0+TVSS has passed
	zeroWave  bool
	onesCount int
	decidedCS []int

	done     bool
	onOutput func(cs []int, shares map[int][]field.Element)
}

// Deadline returns TACS - T0 = TVSS + 2·TBA.
func Deadline(cfg proto.Config) sim.Time {
	tb := timing.New(cfg.N, cfg.Ts, cfg.Delta, cfg.CoinRounds)
	return vss.Deadline(cfg) + 2*tb.BA
}

// New registers a ΠACS instance anchored at structural time start. The
// party must call Start with its own L polynomials at that time.
// onOutput fires once, when CS is decided and the shares of every CS
// member are held locally.
func New(rt *proto.Runtime, inst string, l int, cfg proto.Config, coin aba.CoinSource, start sim.Time, onOutput func(cs []int, shares map[int][]field.Element)) *ACS {
	a := &ACS{
		rt:       rt,
		inst:     inst,
		L:        l,
		cfg:      cfg,
		start:    start,
		vssInst:  make([]*vss.VSS, cfg.N+1),
		baInst:   make([]*ba.BA, cfg.N+1),
		shares:   make(map[int][]field.Element),
		baGiven:  make(map[int]bool),
		baOut:    make(map[int]*uint8),
		onOutput: onOutput,
	}
	for j := 1; j <= cfg.N; j++ {
		j := j
		a.vssInst[j] = vss.New(rt, proto.Join(inst, "vss", fmt.Sprint(j)), j, l, cfg, coin, start,
			func(s []field.Element) { a.onVSS(j, s) })
		a.baInst[j] = ba.New(rt, proto.Join(inst, "ba", fmt.Sprint(j)), cfg.Ts, cfg.Delta,
			start+vss.Deadline(cfg), coin,
			func(v uint8) { a.onBA(j, v) })
	}
	rt.AtProcessing(start+vss.Deadline(cfg), func() { a.enterPhase2() })
	return a
}

// Start provides this party's own polynomials and invokes its dealer
// VSS. Honest parties call it at the structural start time.
func (a *ACS) Start(polys []poly.Poly) {
	a.vssInst[a.rt.ID()].Start(polys)
}

// StartRows lets adversarial tests deal inconsistent rows.
func (a *ACS) StartRows(rows [][]poly.Poly) {
	a.vssInst[a.rt.ID()].StartRows(rows)
}

// SetBivariates forwards the dealer's bivariate polynomials to its VSS
// instance for NOK pruning (StartRows dealers only).
func (a *ACS) SetBivariates(bs []*poly.Symmetric) {
	a.vssInst[a.rt.ID()].SetBivariates(bs)
}

// Done reports completion.
func (a *ACS) Done() bool { return a.done }

// CS returns the decided common subset (sorted); valid when decided
// (which may precede Done if CS members' shares are still in flight).
func (a *ACS) CS() []int { return a.decidedCS }

// Shares returns this party's shares from dealer j, if held.
func (a *ACS) Shares(j int) ([]field.Element, bool) {
	s, ok := a.shares[j]
	return s, ok
}

func (a *ACS) onVSS(j int, s []field.Element) {
	if _, dup := a.shares[j]; dup {
		return
	}
	a.shares[j] = s
	if a.phase2 && !a.baGiven[j] && !a.zeroWave {
		a.baGiven[j] = true
		a.baInst[j].Start(1)
	}
	a.maybeFinish()
}

func (a *ACS) enterPhase2() {
	a.phase2 = true
	for j := 1; j <= a.cfg.N; j++ {
		if _, ok := a.shares[j]; ok && !a.baGiven[j] {
			a.baGiven[j] = true
			a.baInst[j].Start(1)
		}
	}
}

func (a *ACS) onBA(j int, v uint8) {
	vv := v
	a.baOut[j] = &vv
	if v == 1 {
		a.onesCount++
		if a.onesCount >= a.cfg.N-a.cfg.Ts && !a.zeroWave {
			a.zeroWave = true
			for k := 1; k <= a.cfg.N; k++ {
				if !a.baGiven[k] {
					a.baGiven[k] = true
					a.baInst[k].Start(0)
				}
			}
		}
	}
	a.maybeFinish()
}

func (a *ACS) maybeFinish() {
	if a.done {
		return
	}
	if a.decidedCS == nil {
		for j := 1; j <= a.cfg.N; j++ {
			if a.baOut[j] == nil {
				return
			}
		}
		var cs []int
		for j := 1; j <= a.cfg.N; j++ {
			if *a.baOut[j] == 1 {
				cs = append(cs, j)
			}
		}
		a.decidedCS = cs
	}
	for _, j := range a.decidedCS {
		if _, ok := a.shares[j]; !ok {
			return
		}
	}
	a.done = true
	if a.onOutput != nil {
		out := make(map[int][]field.Element, len(a.decidedCS))
		for _, j := range a.decidedCS {
			out[j] = a.shares[j]
		}
		a.onOutput(a.decidedCS, out)
	}
}
