package acs

import (
	"math/rand/v2"
	"testing"

	"repro/field"
	"repro/internal/aba"
	"repro/internal/adversary"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/poly"
)

func cfg8() proto.Config { return proto.Config{N: 8, Ts: 2, Ta: 1, Delta: 10, CoinRounds: 8} }
func cfg5() proto.Config { return proto.Config{N: 5, Ts: 1, Ta: 1, Delta: 10, CoinRounds: 8} }

type harness struct {
	w      *proto.World
	insts  []*ACS
	cs     [][]int
	shares []map[int][]field.Element
	doneAt []sim.Time
	inputs [][]poly.Poly // 1-based dealer inputs
}

func newHarness(w *proto.World, l int, seed uint64) *harness {
	h := &harness{
		w:      w,
		insts:  make([]*ACS, w.Cfg.N+1),
		cs:     make([][]int, w.Cfg.N+1),
		shares: make([]map[int][]field.Element, w.Cfg.N+1),
		doneAt: make([]sim.Time, w.Cfg.N+1),
		inputs: make([][]poly.Poly, w.Cfg.N+1),
	}
	coin := aba.DefaultCoin(seed)
	r := rand.New(rand.NewPCG(seed, 1234))
	for i := 1; i <= w.Cfg.N; i++ {
		i := i
		h.insts[i] = New(w.Runtimes[i], "acs", l, w.Cfg, coin, 0, func(cs []int, sh map[int][]field.Element) {
			h.cs[i] = cs
			h.shares[i] = sh
			h.doneAt[i] = w.Sched.Now()
		})
		h.inputs[i] = make([]poly.Poly, l)
		for k := range h.inputs[i] {
			h.inputs[i][k] = poly.Random(r, w.Cfg.Ts, field.Random(r))
		}
	}
	return h
}

func (h *harness) startAll(skip map[int]bool) {
	for i := 1; i <= h.w.Cfg.N; i++ {
		if skip[i] {
			continue
		}
		h.insts[i].Start(h.inputs[i])
	}
}

// verify checks Lemma 5.1's structure: common CS of size ≥ n-ts, every
// honest CS member's real polynomial shared faithfully, and corrupt CS
// members committed to *some* degree-ts polynomial consistently.
func (h *harness) verify(t *testing.T, l int, requireAllHonestInCS bool) {
	t.Helper()
	c := h.w.Cfg
	var ref []int
	for i := 1; i <= c.N; i++ {
		if h.w.IsCorrupt(i) {
			continue
		}
		if h.cs[i] == nil {
			t.Fatalf("honest party %d never completed ACS", i)
		}
		if ref == nil {
			ref = h.cs[i]
		} else if len(ref) != len(h.cs[i]) {
			t.Fatalf("CS size mismatch: %v vs %v", ref, h.cs[i])
		} else {
			for k := range ref {
				if ref[k] != h.cs[i][k] {
					t.Fatalf("CS mismatch: %v vs %v", ref, h.cs[i])
				}
			}
		}
	}
	if len(ref) < c.N-c.Ts {
		t.Fatalf("|CS| = %d < n-ts = %d", len(ref), c.N-c.Ts)
	}
	inCS := map[int]bool{}
	for _, j := range ref {
		inCS[j] = true
	}
	if requireAllHonestInCS {
		for i := 1; i <= c.N; i++ {
			if !h.w.IsCorrupt(i) && !inCS[i] {
				t.Fatalf("honest party %d missing from CS in a synchronous run", i)
			}
		}
	}
	// Share correctness per CS member.
	for _, j := range ref {
		for slot := 0; slot < l; slot++ {
			// Gather honest shares; they must lie on one degree-ts poly.
			pts := []poly.Point{}
			for i := 1; i <= c.N; i++ {
				if h.w.IsCorrupt(i) || h.shares[i] == nil {
					continue
				}
				s, ok := h.shares[i][j]
				if !ok {
					t.Fatalf("party %d missing shares of CS member %d", i, j)
				}
				pts = append(pts, poly.Point{X: poly.Alpha(i), Y: s[slot]})
			}
			q, err := poly.Interpolate(pts[:c.Ts+1])
			if err != nil {
				t.Fatal(err)
			}
			if q.Degree() > c.Ts {
				t.Fatalf("CS member %d slot %d: committed degree %d > ts", j, slot, q.Degree())
			}
			for _, p := range pts {
				if q.Eval(p.X) != p.Y {
					t.Fatalf("CS member %d slot %d: share off committed polynomial", j, slot)
				}
			}
			if !h.w.IsCorrupt(j) {
				if !q.Equal(h.inputs[j][slot]) {
					t.Fatalf("honest dealer %d slot %d: committed polynomial differs from input", j, slot)
				}
			}
		}
	}
}

func TestAllHonestSync(t *testing.T) {
	for _, c := range []proto.Config{cfg5(), cfg8()} {
		w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 2})
		h := newHarness(w, 1, 2)
		h.startAll(nil)
		w.RunToQuiescence()
		h.verify(t, 1, true)
		deadline := Deadline(c)
		for i := 1; i <= c.N; i++ {
			if h.doneAt[i] > deadline {
				t.Fatalf("n=%d: party %d finished at %d > TACS=%d", c.N, i, h.doneAt[i], deadline)
			}
		}
	}
}

func TestSilentDealersSync(t *testing.T) {
	// ts corrupt parties never invoke their VSS. CS must still form,
	// containing all honest parties, by TACS.
	c := cfg8()
	ctrl := adversary.NewController().
		Set(2, adversary.Silent()).
		Set(5, adversary.Silent())
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: c, Network: proto.Sync, Seed: 3, Corrupt: []int{2, 5}, Interceptor: ctrl,
	})
	h := newHarness(w, 1, 3)
	h.startAll(map[int]bool{2: true, 5: true})
	w.RunToQuiescence()
	h.verify(t, 1, true)
	for i := 1; i <= c.N; i++ {
		if w.IsCorrupt(i) {
			continue
		}
		if h.doneAt[i] > Deadline(c) {
			t.Fatalf("party %d finished at %d > TACS=%d", i, h.doneAt[i], Deadline(c))
		}
		// Silent dealers cannot be in CS.
		for _, j := range h.cs[i] {
			if j == 2 || j == 5 {
				t.Fatalf("silent dealer %d ended up in CS", j)
			}
		}
	}
}

func TestBadDealerSync(t *testing.T) {
	// A corrupt dealer distributes inconsistent rows. Whether or not it
	// makes CS, the invariants must hold.
	c := cfg8()
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 4, Corrupt: []int{3}})
	h := newHarness(w, 1, 4)
	r := rand.New(rand.NewPCG(4, 99))
	// Dealer 3: inconsistent rows for parties 1 and 6.
	q := poly.Random(r, c.Ts, field.Random(r))
	biv, err := poly.NewSymmetricRandom(r, c.Ts, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]poly.Poly, c.N)
	for i := 1; i <= c.N; i++ {
		if i == 1 || i == 6 {
			rows[i-1] = []poly.Poly{poly.Random(r, c.Ts, field.Random(r))}
		} else {
			rows[i-1] = []poly.Poly{biv.RowForParty(i)}
		}
	}
	h.insts[3].StartRows(rows)
	h.insts[3].SetBivariates([]*poly.Symmetric{biv})
	h.startAll(map[int]bool{3: true})
	w.RunToQuiescence()
	h.verify(t, 1, true)
}

func TestAsyncEventualCompletion(t *testing.T) {
	for seed := uint64(0); seed < 2; seed++ {
		c := cfg5()
		ctrl := adversary.NewController().Set(4, adversary.GarbleMatching(func(string) bool { return true }))
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: c, Network: proto.Async, Seed: seed, Corrupt: []int{4}, Interceptor: ctrl,
		})
		h := newHarness(w, 1, seed)
		h.startAll(map[int]bool{4: true})
		w.RunToQuiescence()
		// In async honest parties need not all be in CS; no timing bound.
		h.verify(t, 1, false)
	}
}

func TestMultiplePolynomials(t *testing.T) {
	c := cfg5()
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 7})
	h := newHarness(w, 3, 7)
	h.startAll(nil)
	w.RunToQuiescence()
	h.verify(t, 3, true)
}
