package rs

import (
	"math/rand/v2"
	"testing"

	"repro/field"
	"repro/poly"
)

// naivePoll is the retained reference OEC decision procedure: the full
// r = 0..rMax Berlekamp–Welch budget sweep over the allocating Decode,
// exactly as OEC.Poll ran before the incremental fast path. The
// differential tests below require the incremental decoder to make
// identical decisions at every arrival count.
func naivePoll(points []poly.Point, d, t int) (poly.Poly, bool) {
	need := d + t + 1
	m := len(points)
	if m < need {
		return poly.Poly{}, false
	}
	rMax := min(m-need, t)
	for r := 0; r <= rMax; r++ {
		q, err := Decode(points, d, r)
		if err != nil {
			continue
		}
		if countAgreements(q, points) >= need {
			return q, true
		}
	}
	return poly.Poly{}, false
}

// oecTrial feeds the given point stream to both decoders, checking
// decision-for-decision agreement.
func oecTrial(t *testing.T, trial int, pts []poly.Point, d, tt int) {
	t.Helper()
	o := NewOEC(d, tt)
	var naiveDone bool
	var naiveQ poly.Poly
	for i, p := range pts {
		o.Add(p.X, p.Y)
		q, ok := o.Poll()
		if !naiveDone {
			naiveQ, naiveDone = naivePoll(pts[:i+1], d, tt)
		}
		if ok != naiveDone {
			t.Fatalf("trial %d: after %d points: incremental ok=%v, naive ok=%v", trial, i+1, ok, naiveDone)
		}
		if ok && !q.Equal(naiveQ) {
			t.Fatalf("trial %d: after %d points: incremental %v, naive %v", trial, i+1, q.Coeffs, naiveQ.Coeffs)
		}
	}
}

// TestOECDifferentialRandom compares the incremental decoder against
// the naive budget sweep on randomized degrees, thresholds, error
// counts, error positions and arrival orders.
func TestOECDifferentialRandom(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 400; trial++ {
		d := r.IntN(4)
		tt := r.IntN(4)
		n := d + 2*tt + 1 + r.IntN(4) // enough points to always finish
		secretPoly := poly.Random(r, d, field.Random(r))
		pts := make([]poly.Point, n)
		for i := range pts {
			x := poly.Alpha(i + 1)
			pts[i] = poly.Point{X: x, Y: secretPoly.Eval(x)}
		}
		// Corrupt up to tt points at random positions (including the
		// early positions that poison the cached first-(d+1) candidate).
		errs := r.IntN(tt + 1)
		perm := r.Perm(n)
		for _, idx := range perm[:errs] {
			pts[idx].Y = pts[idx].Y.Add(field.RandomNonZero(r))
		}
		// Random arrival order.
		r.Shuffle(n, func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
		oecTrial(t, trial, pts, d, tt)
	}
}

// TestOECDifferentialAdversarialPatterns drives targeted error
// placements: all errors first (breaking the cached candidate), all
// errors last (arriving after the fast path could fire), and errors
// exactly at the corruption budget.
func TestOECDifferentialAdversarialPatterns(t *testing.T) {
	r := rand.New(rand.NewPCG(17, 19))
	for trial := 0; trial < 100; trial++ {
		d := 1 + r.IntN(3)
		tt := 1 + r.IntN(3)
		n := d + 3*tt + 1
		secretPoly := poly.Random(r, d, field.Random(r))
		honest := make([]poly.Point, n)
		for i := range honest {
			x := poly.Alpha(i + 1)
			honest[i] = poly.Point{X: x, Y: secretPoly.Eval(x)}
		}
		corrupt := func(p poly.Point) poly.Point {
			p.Y = p.Y.Add(field.RandomNonZero(r))
			return p
		}
		// Pattern A: the full error budget arrives first.
		pts := append([]poly.Point(nil), honest...)
		for i := 0; i < tt; i++ {
			pts[i] = corrupt(pts[i])
		}
		oecTrial(t, trial*3, pts, d, tt)
		// Pattern B: the full error budget arrives last.
		pts = append([]poly.Point(nil), honest...)
		for i := n - tt; i < n; i++ {
			pts[i] = corrupt(pts[i])
		}
		oecTrial(t, trial*3+1, pts, d, tt)
		// Pattern C: errors straddle the first d+1 points.
		pts = append([]poly.Point(nil), honest...)
		for i := 0; i < tt; i++ {
			pts[(i*(d+1))%n] = corrupt(pts[(i*(d+1))%n])
		}
		oecTrial(t, trial*3+2, pts, d, tt)
	}
}

// TestOECCachedMatchesUncached checks that sharing a kernel cache does
// not change decoding decisions.
func TestOECCachedMatchesUncached(t *testing.T) {
	r := rand.New(rand.NewPCG(23, 29))
	cache := poly.NewKernelCache()
	for trial := 0; trial < 50; trial++ {
		d, tt := 2, 2
		n := d + 2*tt + 1
		secretPoly := poly.Random(r, d, field.Random(r))
		a := NewOEC(d, tt)
		b := NewOECCached(d, tt, cache)
		for i := 0; i < n; i++ {
			x := poly.Alpha(i + 1)
			y := secretPoly.Eval(x)
			if i == 0 && trial%2 == 1 {
				y = y.Add(field.One)
			}
			a.Add(x, y)
			b.Add(x, y)
			qa, oka := a.Poll()
			qb, okb := b.Poll()
			if oka != okb || (oka && !qa.Equal(qb)) {
				t.Fatalf("trial %d: cached and uncached decoders diverge at point %d", trial, i)
			}
		}
	}
}

// TestOECDuplicateAndCountSemantics pins the duplicate-X and Count
// behavior the protocols rely on.
func TestOECDuplicateAndCountSemantics(t *testing.T) {
	o := NewOEC(1, 1)
	o.Add(poly.Alpha(1), 5)
	o.Add(poly.Alpha(1), 7) // duplicate X: first value wins
	if o.Count() != 1 {
		t.Fatalf("Count = %d, want 1", o.Count())
	}
	o.Add(poly.Alpha(2), 6)
	o.Add(poly.Alpha(3), 7)
	q, ok := o.Poll()
	if !ok {
		t.Fatal("decode failed on a clean line")
	}
	if got := q.Eval(poly.Alpha(1)); got != 5 {
		t.Fatalf("q(α₁) = %v, want the first value 5", got)
	}
}

// TestReconstructSecretDeterministic is the regression test for the
// former map-iteration nondeterminism: shares must be fed to the
// decoder in sorted party order, so repeated reconstructions of the
// same (error-bearing) share map behave identically.
func TestReconstructSecretDeterministic(t *testing.T) {
	r := rand.New(rand.NewPCG(31, 37))
	d, tt := 2, 2
	n := d + 2*tt + 3
	secret := field.Random(r)
	p := poly.Random(r, d, secret)
	shares := make(map[int]field.Element, n)
	for i := 1; i <= n; i++ {
		shares[i] = p.Eval(poly.Alpha(i))
	}
	// Corrupt the full budget, including party 1 so the first-(d+1)
	// candidate depends on feed order.
	shares[1] = shares[1].Add(3)
	shares[4] = shares[4].Add(9)
	first, err := ReconstructSecret(d, tt, shares)
	if err != nil {
		t.Fatal(err)
	}
	if first != secret {
		t.Fatalf("reconstructed %v, want %v", first, secret)
	}
	for i := 0; i < 50; i++ {
		got, err := ReconstructSecret(d, tt, shares)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if got != first {
			t.Fatalf("iteration %d: reconstructed %v, previously %v", i, got, first)
		}
	}
}
