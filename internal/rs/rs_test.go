package rs

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/field"
	"repro/poly"
)

func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x5bd1e995))
}

func makePoints(p poly.Poly, n int) []poly.Point {
	pts := make([]poly.Point, n)
	for i := 0; i < n; i++ {
		x := poly.Alpha(i + 1)
		pts[i] = poly.Point{X: x, Y: p.Eval(x)}
	}
	return pts
}

func corrupt(r *rand.Rand, pts []poly.Point, idxs ...int) {
	for _, i := range idxs {
		old := pts[i].Y
		for pts[i].Y == old {
			pts[i].Y = field.Random(r)
		}
	}
}

func TestDecodeNoErrors(t *testing.T) {
	r := rng(1)
	for d := 0; d <= 6; d++ {
		p := poly.Random(r, d, field.Random(r))
		pts := makePoints(p, d+3)
		got, err := Decode(pts, d, 0)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !got.Equal(p) {
			t.Fatalf("d=%d: wrong polynomial", d)
		}
	}
}

func TestDecodeWithErrors(t *testing.T) {
	r := rng(2)
	for d := 1; d <= 5; d++ {
		for e := 1; e <= 3; e++ {
			p := poly.Random(r, d, field.Random(r))
			n := d + 2*e + 1
			pts := makePoints(p, n)
			// Corrupt exactly e points.
			for k := 0; k < e; k++ {
				corrupt(r, pts, k)
			}
			got, err := Decode(pts, d, e)
			if err != nil {
				t.Fatalf("d=%d e=%d: %v", d, e, err)
			}
			if !got.Equal(p) {
				t.Fatalf("d=%d e=%d: wrong polynomial", d, e)
			}
		}
	}
}

func TestDecodeFewerErrorsThanBudget(t *testing.T) {
	r := rng(3)
	d, e := 3, 3
	p := poly.Random(r, d, field.Random(r))
	pts := makePoints(p, d+2*e+1)
	corrupt(r, pts, 5) // only one actual error
	got, err := Decode(pts, d, e)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Fatal("wrong polynomial")
	}
}

func TestDecodeInsufficientPoints(t *testing.T) {
	r := rng(4)
	p := poly.Random(r, 3, field.Random(r))
	pts := makePoints(p, 5)
	if _, err := Decode(pts, 3, 2); err == nil {
		t.Fatal("expected error with insufficient points")
	}
}

func TestDecodeTooManyErrorsFails(t *testing.T) {
	r := rng(5)
	d, e := 2, 1
	p := poly.Random(r, d, field.Random(r))
	pts := makePoints(p, d+2*e+1)
	// Corrupt e+1 points: decoding must not return a wrong polynomial
	// that disagrees with honest points beyond the budget; it may fail or
	// return something that fails the agreement check.
	corrupt(r, pts, 0, 1)
	got, err := Decode(pts, d, e)
	if err == nil {
		// If it "succeeds", the result cannot agree with ≥ d+e+1 points
		// unless it is consistent; just assert it's not silently equal to
		// the original (which would be fine) nor inconsistent garbage.
		agrees := 0
		for _, pt := range pts {
			if got.Eval(pt.X) == pt.Y {
				agrees++
			}
		}
		if agrees < d+e+1 {
			t.Logf("decode returned low-agreement polynomial as expected behaviour boundary")
		}
	}
}

func TestOECHappyPath(t *testing.T) {
	r := rng(6)
	d, tt := 2, 2
	p := poly.Random(r, d, field.Random(r))
	o := NewOEC(d, tt)
	if _, ok := o.Poll(); ok {
		t.Fatal("Poll succeeded with no points")
	}
	// Feed honest points one by one; must succeed exactly when
	// d + t + 1 = 5 points have arrived.
	for i := 1; i <= 8; i++ {
		o.Add(poly.Alpha(i), p.Eval(poly.Alpha(i)))
		q, ok := o.Poll()
		if i < d+tt+1 && ok {
			t.Fatalf("Poll succeeded with only %d points", i)
		}
		if i >= d+tt+1 {
			if !ok {
				t.Fatalf("Poll failed with %d honest points", i)
			}
			if !q.Equal(p) {
				t.Fatal("wrong polynomial")
			}
		}
	}
}

func TestOECWithCorruptPointsArrivingFirst(t *testing.T) {
	r := rng(7)
	d, tt := 2, 2
	p := poly.Random(r, d, field.Random(r))
	o := NewOEC(d, tt)
	// Two corrupt points arrive first.
	o.Add(poly.Alpha(1), field.Random(r))
	o.Add(poly.Alpha(2), p.Eval(poly.Alpha(2)).Add(field.One))
	decodedAt := -1
	for i := 3; i <= 9; i++ {
		o.Add(poly.Alpha(i), p.Eval(poly.Alpha(i)))
		if q, ok := o.Poll(); ok {
			if !q.Equal(p) {
				t.Fatal("wrong polynomial decoded")
			}
			decodedAt = i
			break
		}
	}
	// With 2 bad points, OEC needs d+t+1 honest agreements = 5 honest
	// points, i.e. by party 7; and the error budget must cover 2 errors,
	// needing m = d+t+1+2 = 9... it may decode earlier if the corrupt
	// points happen to be consistent; assert it decodes by party 9.
	if decodedAt == -1 {
		t.Fatal("OEC never decoded despite sufficient honest points")
	}
}

func TestOECNeverReturnsWrongPolynomial(t *testing.T) {
	// Safety property: whatever arrival order and ≤ t corruptions, if OEC
	// outputs, the output is the honest polynomial.
	r := rng(8)
	for trial := 0; trial < 200; trial++ {
		d := 1 + r.IntN(3)
		tt := 1 + r.IntN(3)
		n := d + 2*tt + 1 + r.IntN(3)
		p := poly.Random(r, d, field.Random(r))
		pts := makePoints(p, n)
		nbad := r.IntN(tt + 1)
		perm := r.Perm(n)
		for k := 0; k < nbad; k++ {
			corrupt(r, pts, perm[k])
		}
		o := NewOEC(d, tt)
		order := r.Perm(n)
		for _, i := range order {
			o.Add(pts[i].X, pts[i].Y)
			if q, ok := o.Poll(); ok {
				if !q.Equal(p) {
					t.Fatalf("trial %d: OEC returned wrong polynomial (d=%d t=%d n=%d bad=%d)", trial, d, tt, n, nbad)
				}
				break
			}
		}
	}
}

func TestOECDuplicatePointsIgnored(t *testing.T) {
	r := rng(9)
	d, tt := 2, 1
	p := poly.Random(r, d, field.Random(r))
	o := NewOEC(d, tt)
	o.Add(poly.Alpha(1), p.Eval(poly.Alpha(1)))
	o.Add(poly.Alpha(1), field.Random(r)) // duplicate X, ignored
	if o.Count() != 1 {
		t.Fatalf("Count = %d, want 1", o.Count())
	}
	for i := 2; i <= d+tt+1; i++ {
		o.Add(poly.Alpha(i), p.Eval(poly.Alpha(i)))
	}
	q, ok := o.Poll()
	if !ok || !q.Equal(p) {
		t.Fatal("OEC failed with duplicates present")
	}
}

func TestOECResultSticky(t *testing.T) {
	r := rng(10)
	d, tt := 1, 1
	p := poly.Random(r, d, field.Random(r))
	o := NewOEC(d, tt)
	for i := 1; i <= d+tt+1; i++ {
		o.Add(poly.Alpha(i), p.Eval(poly.Alpha(i)))
	}
	q1, ok1 := o.Poll()
	// Adding garbage afterwards must not change the result.
	o.Add(poly.Alpha(7), field.Random(r))
	q2, ok2 := o.Poll()
	if !ok1 || !ok2 || !q1.Equal(q2) {
		t.Fatal("OEC result changed after completion")
	}
}

func TestReconstructSecret(t *testing.T) {
	r := rng(11)
	const n, d, tt = 10, 3, 3
	secret := field.Random(r)
	p := poly.Random(r, d, secret)
	shares := map[int]field.Element{}
	for i := 1; i <= n; i++ {
		shares[i] = p.Eval(poly.Alpha(i))
	}
	// Corrupt t shares.
	shares[2] = shares[2].Add(field.One)
	shares[5] = field.Random(r)
	shares[9] = shares[9].Mul(field.New(3))
	got, err := ReconstructSecret(d, tt, shares)
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Fatalf("reconstructed %v, want %v", got, secret)
	}
}

func TestReconstructSecretInsufficient(t *testing.T) {
	if _, err := ReconstructSecret(3, 2, map[int]field.Element{1: 1, 2: 2}); err == nil {
		t.Fatal("expected failure with too few shares")
	}
}

func TestQuickOECSafety(t *testing.T) {
	f := func(seed uint64, dRaw, tRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, 7))
		d := 1 + int(dRaw%3)
		tt := 1 + int(tRaw%2)
		n := d + 2*tt + 1
		p := poly.Random(r, d, field.Random(r))
		pts := makePoints(p, n)
		for k := 0; k < tt; k++ {
			corrupt(r, pts, k)
		}
		o := NewOEC(d, tt)
		for _, i := range r.Perm(n) {
			o.Add(pts[i].X, pts[i].Y)
		}
		q, ok := o.Poll()
		return !ok || q.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// BenchmarkA4OECIncrementalVsBatch is the A4 ablation of DESIGN.md:
// cost of the incremental OEC discipline (attempt decoding on every
// arrival) versus a single batch decode once all points are in. The
// incremental variant buys eventual-delivery robustness at a
// constant-factor decode overhead.
func BenchmarkA4OECIncrementalVsBatch(b *testing.B) {
	r := rng(21)
	const d, tt = 3, 3
	p := poly.Random(r, d, field.Random(r))
	n := d + 2*tt + 1
	pts := makePoints(p, n)
	corrupt(r, pts, 1, 4)
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := NewOEC(d, tt)
			for _, pt := range pts {
				o.Add(pt.X, pt.Y)
				if _, ok := o.Poll(); ok {
					break
				}
			}
			if _, ok := o.Poll(); !ok {
				b.Fatal("no decode")
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := NewOEC(d, tt)
			for _, pt := range pts {
				o.Add(pt.X, pt.Y)
			}
			if _, ok := o.Poll(); !ok {
				b.Fatal("no decode")
			}
		}
	})
}

func BenchmarkDecode(b *testing.B) {
	r := rng(12)
	d, e := 5, 5
	p := poly.Random(r, d, field.Random(r))
	pts := makePoints(p, d+2*e+1)
	corrupt(r, pts, 0, 3, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptsCopy := make([]poly.Point, len(pts))
		copy(ptsCopy, pts)
		if _, err := Decode(ptsCopy, d, e); err != nil {
			b.Fatal(err)
		}
	}
}
