package rs

import (
	"math/rand/v2"
	"testing"

	"repro/field"
	"repro/poly"
)

// FuzzOECMatchesDecode drives the incremental OEC decoder and the
// naive Berlekamp–Welch reference over a fuzzer-chosen error pattern
// and point arrival order, and checks the paper's OEC contract: with
// m = d + t + 1 + r points received and at most min(r, t) of them
// corrupted, the decoder recovers exactly the committed polynomial;
// it must never output a wrong polynomial no matter the pattern.
//
// The fuzz inputs are raw knobs, reduced into a valid configuration:
// seed drives all randomness, shape picks (d, t), errBits selects
// which points are corrupted, extra is the number of points beyond
// the d + t + 1 minimum.
func FuzzOECMatchesDecode(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint16(0), uint8(0))
	f.Add(uint64(2), uint8(5), uint16(1), uint8(1))
	f.Add(uint64(3), uint8(9), uint16(0b101), uint8(3))
	f.Add(uint64(42), uint8(14), uint16(0xffff), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, shape uint8, errBits uint16, extra uint8) {
		r := rand.New(rand.NewPCG(seed, 0xfa22))
		d := int(shape % 4)        // degree 0..3
		tt := int(shape/4%4) + 1   // corruption bound 1..4
		m := d + tt + 1 + int(extra%uint8(tt+2))

		committed := poly.Random(r, d, field.Random(r))
		pts := makePoints(committed, m)

		// Corrupt at most min(m - (d+t+1), t) points, chosen by errBits.
		budget := min(m-(d+tt+1), tt)
		corrupted := 0
		for i := 0; i < m && corrupted < budget; i++ {
			if errBits&(1<<(i%16)) != 0 {
				corrupt(r, pts, i)
				corrupted++
			}
		}

		// Feed the OEC in a seed-chosen arrival order, polling as
		// points trickle in — the receiver's actual usage pattern.
		o := NewOEC(d, tt)
		var got poly.Poly
		ok := false
		for _, i := range r.Perm(m) {
			o.Add(pts[i].X, pts[i].Y)
			if q, done := o.Poll(); done {
				got, ok = q, true
				break
			}
		}

		// Contract: within the admissible error budget the committed
		// polynomial is always recovered, and never a wrong one.
		if !ok {
			t.Fatalf("OEC failed: d=%d t=%d m=%d corrupted=%d", d, tt, m, corrupted)
		}
		if !got.Equal(committed) {
			t.Fatalf("OEC decoded a wrong polynomial: d=%d t=%d m=%d corrupted=%d", d, tt, m, corrupted)
		}

		// Differential: the naive reference decoder at the same maximal
		// budget agrees on the full point set.
		if e := min(tt, (m-d-1)/2); e >= corrupted {
			ref, err := Decode(pts, d, e)
			if err != nil {
				t.Fatalf("reference Decode(d=%d, e=%d) failed on %d points with %d errors: %v",
					d, e, m, corrupted, err)
			}
			if !ref.Equal(got) {
				t.Fatalf("OEC and Decode disagree: d=%d t=%d m=%d corrupted=%d", d, tt, m, corrupted)
			}
		}
	})
}
