// Package rs implements Reed–Solomon decoding over GF(2^61 - 1) via the
// Berlekamp–Welch algorithm, and the Online Error-Correction (OEC)
// procedure of Ben-Or, Canetti and Goldreich used by the paper
// (Section 2.1, Appendix A).
//
// OEC(d, t, P') reconstructs a d-degree polynomial q(·) for a receiver
// that obtains points q(α_i) from the parties in P', of which at most t
// are corrupt. The receiver repeatedly attempts Reed–Solomon decoding as
// points trickle in; once some candidate polynomial of degree d agrees
// with at least d + t + 1 received points, at least d + 1 of those points
// come from honest parties, so the candidate equals q(·).
package rs

import (
	"errors"
	"fmt"

	"repro/field"
	"repro/poly"
)

// ErrDecodeFailed indicates that no degree-d polynomial explains the
// received points within the allowed error budget.
var ErrDecodeFailed = errors.New("rs: decoding failed")

// Decode runs Berlekamp–Welch on the given points: it finds a polynomial
// q of degree ≤ d such that q disagrees with at most e of the points.
// It requires len(points) ≥ d + 2e + 1 and distinct X coordinates.
func Decode(points []poly.Point, d, e int) (poly.Poly, error) {
	m := len(points)
	if d < 0 || e < 0 {
		return poly.Poly{}, fmt.Errorf("rs: invalid parameters d=%d e=%d", d, e)
	}
	if m < d+2*e+1 {
		return poly.Poly{}, fmt.Errorf("rs: need %d points for d=%d e=%d, have %d", d+2*e+1, d, e, m)
	}
	if e == 0 {
		q, err := poly.Interpolate(points[:d+1])
		if err != nil {
			return poly.Poly{}, err
		}
		if q.Degree() > d {
			return poly.Poly{}, ErrDecodeFailed
		}
		if countAgreements(q, points) != m {
			return poly.Poly{}, ErrDecodeFailed
		}
		return q, nil
	}

	// Unknowns: E(x) monic of degree e (e unknown coefficients e_0..e_{e-1})
	// and Q(x) of degree ≤ d+e (d+e+1 unknowns), satisfying for every
	// received point (x_i, y_i):  Q(x_i) = y_i · E(x_i).
	// With E monic: Q(x_i) - y_i·(e_0 + e_1 x_i + … + e_{e-1} x_i^{e-1})
	//             = y_i · x_i^e.
	nq := d + e + 1
	ne := e
	cols := nq + ne
	// Build the augmented matrix.
	mat := make([][]field.Element, m)
	for i, p := range points {
		row := make([]field.Element, cols+1)
		xp := field.One
		for k := 0; k < nq; k++ { // Q coefficients
			row[k] = xp
			xp = xp.Mul(p.X)
		}
		xp = field.One
		for k := 0; k < ne; k++ { // E coefficients (negated, times y_i)
			row[nq+k] = p.Y.Mul(xp).Neg()
			xp = xp.Mul(p.X)
		}
		row[cols] = p.Y.Mul(p.X.Pow(uint64(e))) // RHS
		mat[i] = row
	}
	sol, ok := solve(mat, cols)
	if !ok {
		return poly.Poly{}, ErrDecodeFailed
	}
	qBig := poly.NewPoly(sol[:nq]...)
	eCoeffs := make([]field.Element, ne+1)
	copy(eCoeffs, sol[nq:])
	eCoeffs[ne] = field.One // monic
	ePoly := poly.NewPoly(eCoeffs...)
	q, exact := qBig.Div(ePoly)
	if !exact || q.Degree() > d {
		return poly.Poly{}, ErrDecodeFailed
	}
	return q, nil
}

// countAgreements returns the number of points lying on q.
func countAgreements(q poly.Poly, points []poly.Point) int {
	c := 0
	for _, p := range points {
		if q.Eval(p.X) == p.Y {
			c++
		}
	}
	return c
}

// solve performs Gaussian elimination on the m×(cols+1) augmented matrix
// and returns one solution (free variables set to zero). It reports false
// if the system is inconsistent.
func solve(mat [][]field.Element, cols int) ([]field.Element, bool) {
	m := len(mat)
	pivotRow := 0
	pivotCols := make([]int, 0, cols)
	for col := 0; col < cols && pivotRow < m; col++ {
		sel := -1
		for r := pivotRow; r < m; r++ {
			if !mat[r][col].IsZero() {
				sel = r
				break
			}
		}
		if sel < 0 {
			continue
		}
		mat[pivotRow], mat[sel] = mat[sel], mat[pivotRow]
		inv := mat[pivotRow][col].MustInv()
		for k := col; k <= cols; k++ {
			mat[pivotRow][k] = mat[pivotRow][k].Mul(inv)
		}
		for r := 0; r < m; r++ {
			if r == pivotRow || mat[r][col].IsZero() {
				continue
			}
			f := mat[r][col]
			for k := col; k <= cols; k++ {
				mat[r][k] = mat[r][k].Sub(f.Mul(mat[pivotRow][k]))
			}
		}
		pivotCols = append(pivotCols, col)
		pivotRow++
	}
	// Inconsistency check: zero row with non-zero RHS.
	for r := pivotRow; r < m; r++ {
		if !mat[r][cols].IsZero() {
			return nil, false
		}
	}
	sol := make([]field.Element, cols)
	for i, col := range pivotCols {
		sol[col] = mat[i][cols]
	}
	return sol, true
}

// OEC is an incremental online error-correcting decoder for a single
// d-degree polynomial with at most t corrupted contributors.
//
// Points are added as they arrive (duplicates from the same X are
// ignored); Poll attempts reconstruction and returns the polynomial once
// some degree-d candidate agrees with at least d + t + 1 received points.
type OEC struct {
	d, t   int
	points []poly.Point
	seen   map[field.Element]bool
	done   bool
	result poly.Poly
}

// NewOEC returns an OEC decoder for a d-degree polynomial where at most
// t of the contributing parties are corrupt.
func NewOEC(d, t int) *OEC {
	if d < 0 || t < 0 {
		panic(fmt.Sprintf("rs: invalid OEC parameters d=%d t=%d", d, t))
	}
	return &OEC{d: d, t: t, seen: make(map[field.Element]bool)}
}

// Add records the point (x, y). Later duplicates for the same x are
// ignored (the first value received wins, matching a network receiver
// that processes one message per sender).
func (o *OEC) Add(x, y field.Element) {
	if o.seen[x] {
		return
	}
	o.seen[x] = true
	o.points = append(o.points, poly.Point{X: x, Y: y})
}

// Count returns the number of distinct points received.
func (o *OEC) Count() int { return len(o.points) }

// Poll attempts reconstruction. It returns (q, true) once a degree-d
// polynomial agreeing with at least d + t + 1 received points exists.
// Subsequent calls keep returning the same result.
func (o *OEC) Poll() (poly.Poly, bool) {
	if o.done {
		return o.result, true
	}
	need := o.d + o.t + 1
	m := len(o.points)
	if m < need {
		return poly.Poly{}, false
	}
	// With m = d + t + 1 + r points received, up to r of them may be
	// erroneous while still leaving d + t + 1 honest agreements
	// impossible... precisely: if the actual number of errors among the
	// received points is ≤ r, Berlekamp–Welch with budget r finds q.
	// Try every budget up to min(r, t): earlier arrivals may already
	// decode with a smaller budget.
	rMax := min(m-need, o.t)
	for r := 0; r <= rMax; r++ {
		q, err := Decode(o.points, o.d, r)
		if err != nil {
			continue
		}
		if countAgreements(q, o.points) >= need {
			o.done = true
			o.result = q
			return q, true
		}
	}
	return poly.Poly{}, false
}

// ReconstructSecret is a convenience wrapper: given shares (α_i, s_i)
// indexed by 1-based party index, with at most t corrupt, it decodes the
// d-degree sharing polynomial and returns its constant term.
func ReconstructSecret(d, t int, shares map[int]field.Element) (field.Element, error) {
	o := NewOEC(d, t)
	for i, s := range shares {
		o.Add(poly.Alpha(i), s)
	}
	q, ok := o.Poll()
	if !ok {
		return 0, fmt.Errorf("rs: reconstruct secret: %w", ErrDecodeFailed)
	}
	return q.Eval(field.Zero), nil
}
