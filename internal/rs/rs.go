// Package rs implements Reed–Solomon decoding over GF(2^61 - 1) via the
// Berlekamp–Welch algorithm, and the Online Error-Correction (OEC)
// procedure of Ben-Or, Canetti and Goldreich used by the paper
// (Section 2.1, Appendix A).
//
// OEC(d, t, P') reconstructs a d-degree polynomial q(·) for a receiver
// that obtains points q(α_i) from the parties in P', of which at most t
// are corrupt. The receiver repeatedly attempts Reed–Solomon decoding as
// points trickle in; once some candidate polynomial of degree d agrees
// with at least d + t + 1 received points, at least d + 1 of those points
// come from honest parties, so the candidate equals q(·).
package rs

import (
	"errors"
	"fmt"
	"slices"

	"repro/field"
	"repro/poly"
)

// ErrDecodeFailed indicates that no degree-d polynomial explains the
// received points within the allowed error budget.
var ErrDecodeFailed = errors.New("rs: decoding failed")

// Decode runs Berlekamp–Welch on the given points: it finds a polynomial
// q of degree ≤ d such that q disagrees with at most e of the points.
// It requires len(points) ≥ d + 2e + 1 and distinct X coordinates.
//
// Decode is the naive reference decoder: it allocates its elimination
// matrix per call and performs no caching. The incremental OEC decoder
// below is differentially tested against it.
func Decode(points []poly.Point, d, e int) (poly.Poly, error) {
	m := len(points)
	if d < 0 || e < 0 {
		return poly.Poly{}, fmt.Errorf("rs: invalid parameters d=%d e=%d", d, e)
	}
	if m < d+2*e+1 {
		return poly.Poly{}, fmt.Errorf("rs: need %d points for d=%d e=%d, have %d", d+2*e+1, d, e, m)
	}
	if e == 0 {
		q, err := poly.Interpolate(points[:d+1])
		if err != nil {
			return poly.Poly{}, err
		}
		if q.Degree() > d {
			return poly.Poly{}, ErrDecodeFailed
		}
		if countAgreements(q, points) != m {
			return poly.Poly{}, ErrDecodeFailed
		}
		return q, nil
	}

	// Unknowns: E(x) monic of degree e (e unknown coefficients e_0..e_{e-1})
	// and Q(x) of degree ≤ d+e (d+e+1 unknowns), satisfying for every
	// received point (x_i, y_i):  Q(x_i) = y_i · E(x_i).
	// With E monic: Q(x_i) - y_i·(e_0 + e_1 x_i + … + e_{e-1} x_i^{e-1})
	//             = y_i · x_i^e.
	nq := d + e + 1
	ne := e
	cols := nq + ne
	// Build the augmented matrix.
	mat := make([][]field.Element, m)
	for i, p := range points {
		row := make([]field.Element, cols+1)
		xp := field.One
		for k := 0; k < nq; k++ { // Q coefficients
			row[k] = xp
			xp = xp.Mul(p.X)
		}
		xp = field.One
		for k := 0; k < ne; k++ { // E coefficients (negated, times y_i)
			row[nq+k] = p.Y.Mul(xp).Neg()
			xp = xp.Mul(p.X)
		}
		row[cols] = p.Y.Mul(p.X.Pow(uint64(e))) // RHS
		mat[i] = row
	}
	sol, ok := solve(mat, cols)
	if !ok {
		return poly.Poly{}, ErrDecodeFailed
	}
	q, ok := divideOut(sol, d, e)
	if !ok {
		return poly.Poly{}, ErrDecodeFailed
	}
	return q, nil
}

// divideOut recovers q = Q/E from a Berlekamp–Welch solution vector,
// reporting false when the division is inexact or the degree too high.
func divideOut(sol []field.Element, d, e int) (poly.Poly, bool) {
	nq := d + e + 1
	qBig := poly.NewPoly(sol[:nq]...)
	eCoeffs := make([]field.Element, e+1)
	copy(eCoeffs, sol[nq:])
	eCoeffs[e] = field.One // monic
	ePoly := poly.NewPoly(eCoeffs...)
	q, exact := qBig.Div(ePoly)
	if !exact || q.Degree() > d {
		return poly.Poly{}, false
	}
	return q, true
}

// countAgreements returns the number of points lying on q.
func countAgreements(q poly.Poly, points []poly.Point) int {
	c := 0
	for _, p := range points {
		if q.Eval(p.X) == p.Y {
			c++
		}
	}
	return c
}

// solve performs Gaussian elimination on the m×(cols+1) augmented matrix
// and returns one solution (free variables set to zero). It reports false
// if the system is inconsistent.
func solve(mat [][]field.Element, cols int) ([]field.Element, bool) {
	m := len(mat)
	pivotRow := 0
	pivotCols := make([]int, 0, cols)
	for col := 0; col < cols && pivotRow < m; col++ {
		sel := -1
		for r := pivotRow; r < m; r++ {
			if !mat[r][col].IsZero() {
				sel = r
				break
			}
		}
		if sel < 0 {
			continue
		}
		mat[pivotRow], mat[sel] = mat[sel], mat[pivotRow]
		inv := mat[pivotRow][col].MustInv()
		for k := col; k <= cols; k++ {
			mat[pivotRow][k] = mat[pivotRow][k].Mul(inv)
		}
		for r := 0; r < m; r++ {
			if r == pivotRow || mat[r][col].IsZero() {
				continue
			}
			f := mat[r][col]
			for k := col; k <= cols; k++ {
				mat[r][k] = mat[r][k].Sub(f.Mul(mat[pivotRow][k]))
			}
		}
		pivotCols = append(pivotCols, col)
		pivotRow++
	}
	// Inconsistency check: zero row with non-zero RHS.
	for r := pivotRow; r < m; r++ {
		if !mat[r][cols].IsZero() {
			return nil, false
		}
	}
	sol := make([]field.Element, cols)
	for i, col := range pivotCols {
		sol[col] = mat[i][cols]
	}
	return sol, true
}

// OEC is an incremental online error-correcting decoder for a single
// d-degree polynomial with at most t corrupted contributors.
//
// Points are added as they arrive (duplicates from the same X are
// ignored); Poll attempts reconstruction and returns the polynomial once
// some candidate polynomial of degree d agrees with at least d + t + 1
// received points.
//
// The decoder is incremental: the interpolant through the first d+1
// points is cached (built on a poly.Kernel) and each later point updates
// a running agreement count, so the common error-free case costs one
// O(d) evaluation per point and O(1) per Poll — no Gaussian elimination.
// When the cached candidate falls short, a single Berlekamp–Welch solve
// at the maximal admissible error budget replaces the former
// r = 0..rMax budget sweep (any admissible budget recovers the same
// committed polynomial once d + t + 1 agreements exist), reusing the
// elimination matrix across attempts and memoising failed attempts per
// point count.
type OEC struct {
	d, t   int
	points []poly.Point
	seen   map[field.Element]bool
	done   bool
	result poly.Poly

	// cache optionally supplies the interpolation kernel (shared per
	// run); nil means the decoder builds its own.
	cache *poly.KernelCache
	// cand is the cached interpolant through the first d+1 points;
	// agree counts received points lying on it.
	cand  poly.Poly
	agree int
	// lastFailed memoises the point count of the last failed full
	// solve: no new point, no new attempt.
	lastFailed int
	// scratch holds the reusable Berlekamp–Welch elimination matrix.
	scratch bwScratch
}

// NewOEC returns an OEC decoder for a d-degree polynomial where at most
// t of the contributing parties are corrupt.
func NewOEC(d, t int) *OEC {
	if d < 0 || t < 0 {
		panic(fmt.Sprintf("rs: invalid OEC parameters d=%d t=%d", d, t))
	}
	return &OEC{d: d, t: t, seen: make(map[field.Element]bool), lastFailed: -1}
}

// NewOECCached is NewOEC with a shared kernel cache: parallel decoders
// fed by the same provider set (e.g. the L per-polynomial decoders of
// one WPS instance) see identical point sequences and share one kernel.
func NewOECCached(d, t int, cache *poly.KernelCache) *OEC {
	o := NewOEC(d, t)
	o.cache = cache
	return o
}

// Add records the point (x, y). Later duplicates for the same x are
// ignored (the first value received wins, matching a network receiver
// that processes one message per sender).
func (o *OEC) Add(x, y field.Element) {
	if o.seen[x] {
		return
	}
	o.seen[x] = true
	o.points = append(o.points, poly.Point{X: x, Y: y})
	if o.done {
		return
	}
	switch m := len(o.points); {
	case m < o.d+1:
	case m == o.d+1:
		o.buildCandidate()
	default:
		if o.cand.Eval(x) == y {
			o.agree++
		}
	}
}

// buildCandidate interpolates the first d+1 points into the cached
// candidate; those points agree with it by construction.
func (o *OEC) buildCandidate() {
	xs := make([]field.Element, o.d+1)
	ys := make([]field.Element, o.d+1)
	for i, p := range o.points[:o.d+1] {
		xs[i], ys[i] = p.X, p.Y
	}
	var (
		kern *poly.Kernel
		err  error
	)
	if o.cache != nil {
		kern, err = o.cache.Get(xs)
	} else {
		kern, err = poly.NewKernel(xs)
	}
	if err != nil {
		// Distinct X's are guaranteed by the seen-set.
		panic(fmt.Sprintf("rs: OEC kernel: %v", err))
	}
	o.cand = kern.Interpolate(ys)
	o.agree = o.d + 1
}

// Count returns the number of distinct points received.
func (o *OEC) Count() int { return len(o.points) }

// Poll attempts reconstruction. It returns (q, true) once a degree-d
// polynomial agreeing with at least d + t + 1 received points exists.
// Subsequent calls keep returning the same result.
func (o *OEC) Poll() (poly.Poly, bool) {
	if o.done {
		return o.result, true
	}
	need := o.d + o.t + 1
	m := len(o.points)
	if m < need {
		return poly.Poly{}, false
	}
	// Error-free fast path: the cached interpolant already explains
	// d + t + 1 received points, at least d + 1 of them honest, so it
	// is the committed polynomial.
	if o.agree >= need {
		o.done = true
		o.result = o.cand
		return o.cand, true
	}
	if m == o.lastFailed {
		return poly.Poly{}, false
	}
	// With m = d + t + 1 + r points received and at most min(r, t) of
	// them erroneous, Berlekamp–Welch at the single maximal budget
	// rMax = min(r, t) recovers the committed polynomial: rMax ≤ t
	// gives m ≥ d + 2·rMax + 1, so every solution of the budget-rMax
	// system divides out to it, making the former sweep over the
	// smaller budgets redundant. (A budget-0 attempt is subsumed by the
	// fast path above: it succeeds only when all m points agree.)
	rMax := min(m-need, o.t)
	if rMax > 0 {
		q, ok := o.scratch.decode(o.points, o.d, rMax)
		if ok && countAgreements(q, o.points) >= need {
			o.done = true
			o.result = q
			return q, true
		}
	}
	o.lastFailed = m
	return poly.Poly{}, false
}

// bwScratch reuses the Berlekamp–Welch elimination matrix across decode
// attempts.
type bwScratch struct {
	rows [][]field.Element
	flat []field.Element
}

// decode runs one Berlekamp–Welch solve at error budget e ≥ 1 over the
// scratch matrix: the allocation-lean equivalent of Decode's system
// build, sharing its solve and division steps.
func (s *bwScratch) decode(points []poly.Point, d, e int) (poly.Poly, bool) {
	m := len(points)
	nq := d + e + 1
	ne := e
	cols := nq + ne
	stride := cols + 1
	if cap(s.flat) < m*stride {
		s.flat = make([]field.Element, m*stride)
		s.rows = make([][]field.Element, 0, m)
	}
	s.flat = s.flat[:m*stride]
	s.rows = s.rows[:0]
	for i, p := range points {
		row := s.flat[i*stride : (i+1)*stride : (i+1)*stride]
		xp := field.One
		for k := 0; k < nq; k++ { // Q coefficients
			row[k] = xp
			xp = xp.Mul(p.X)
		}
		xp = field.One
		for k := 0; k < ne; k++ { // E coefficients (negated, times y_i)
			row[nq+k] = p.Y.Mul(xp).Neg()
			xp = xp.Mul(p.X)
		}
		row[cols] = p.Y.Mul(p.X.Pow(uint64(e))) // RHS
		s.rows = append(s.rows, row)
	}
	sol, ok := solve(s.rows, cols)
	if !ok {
		return poly.Poly{}, false
	}
	return divideOut(sol, d, e)
}

// ReconstructSecret is a convenience wrapper: given shares (α_i, s_i)
// indexed by 1-based party index, with at most t corrupt, it decodes the
// d-degree sharing polynomial and returns its constant term.
//
// Shares are fed to the decoder in ascending party order: map iteration
// order is randomized per run, and a random feed order would let the
// decoded representation — and, beyond the corruption budget, even
// success — vary between identically-seeded runs.
func ReconstructSecret(d, t int, shares map[int]field.Element) (field.Element, error) {
	idx := make([]int, 0, len(shares))
	for i := range shares {
		idx = append(idx, i)
	}
	slices.Sort(idx)
	o := NewOEC(d, t)
	for _, i := range idx {
		o.Add(poly.Alpha(i), shares[i])
	}
	q, ok := o.Poll()
	if !ok {
		return 0, fmt.Errorf("rs: reconstruct secret: %w", ErrDecodeFailed)
	}
	return q.Eval(field.Zero), nil
}
