package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "kind(") {
			t.Fatalf("kind %d has no wire name", k)
		}
		got, ok := KindByName(name)
		if !ok || got != k {
			t.Fatalf("KindByName(%q) = %v, %v; want %v, true", name, got, ok, k)
		}
	}
	if _, ok := KindByName("no-such-kind"); ok {
		t.Fatal("KindByName accepted an unknown name")
	}
}

func TestEventFamily(t *testing.T) {
	cases := map[string]string{
		"acs/vote/3": "acs",
		"ba":         "ba",
		"":           "",
		"pool/b0/tr": "pool",
	}
	for inst, want := range cases {
		if got := (Event{Inst: inst}).Family(); got != want {
			t.Errorf("Family(%q) = %q, want %q", inst, got, want)
		}
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.Emit(Event{Kind: KSend, Tick: 1})
	c.Emit(Event{Kind: KDeliver, Tick: 2})
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	evs := c.Events()
	if evs[0].Kind != KSend || evs[1].Kind != KDeliver {
		t.Fatalf("events out of order: %+v", evs)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", c.Len())
	}
}

func TestHist(t *testing.T) {
	var h Hist
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []int64{0, 1, 1, 2, 3, 5, 8, 100} {
		h.Add(v)
	}
	if h.Count != 8 {
		t.Fatalf("Count = %d, want 8", h.Count)
	}
	if h.Min != 0 || h.Max != 100 {
		t.Fatalf("Min/Max = %d/%d, want 0/100", h.Min, h.Max)
	}
	if got := h.Mean(); got != 15.0 {
		t.Fatalf("Mean = %v, want 15", got)
	}
	// p50: 8 obs, want index 4 → bucket covering value 3 ⇒ upper bound 3.
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("Quantile(0.5) = %d, want 3", got)
	}
	// p100 clamps to max exactly.
	if got := h.Quantile(1.0); got != 100 {
		t.Fatalf("Quantile(1.0) = %d, want 100", got)
	}
	// Quantile upper bounds never exceed Max.
	if got := h.Quantile(0.99); got > h.Max {
		t.Fatalf("Quantile(0.99) = %d exceeds max %d", got, h.Max)
	}
	h.Add(-5) // negative clamps to 0
	if h.Min != 0 || h.Buckets[0] != 2 {
		t.Fatalf("negative add mishandled: min=%d bucket0=%d", h.Min, h.Buckets[0])
	}
}

func sampleEvents() []Event {
	return []Event{
		{Kind: KTick, Tick: 0, A: 3},
		{Kind: KInstance, Tick: 0, Party: 1, Inst: "acs/vote"},
		{Kind: KPhaseBegin, Tick: 0, Inst: "preprocess", A: 0},
		{Kind: KSend, Tick: 0, Party: 1, Peer: 2, Inst: "acs/vote", Bytes: 40, A: 2},
		{Kind: KPoolFill, Tick: 0, Party: 1, Inst: "pool/b0", A: 4, B: 0},
		{Kind: KTick, Tick: 2, A: 1},
		{Kind: KDeliver, Tick: 2, Party: 2, Peer: 1, Inst: "acs/vote", Bytes: 40, A: 2},
		{Kind: KPoolFillDone, Tick: 2, Party: 1, Inst: "pool/b0", A: 4, B: 4},
		{Kind: KPhaseEnd, Tick: 2, Inst: "preprocess", A: 2, B: 1},
		{Kind: KPhaseBegin, Tick: 3, Inst: "evaluate", A: 0},
		{Kind: KPoolReserve, Tick: 3, Party: 1, A: 2, B: 2},
		{Kind: KPoolReserve, Tick: 3, Party: 2, A: 2, B: 2}, // other party: skipped by gauges
		{Kind: KTick, Tick: 4, A: 2},
		{Kind: KDeliver, Tick: 4, Party: 1, Peer: 2, Inst: "ba/round", Bytes: 16, A: 1},
		{Kind: KPoolRelease, Tick: 5, Party: 1, A: 1, B: 3},
		{Kind: KEpochRetire, Tick: 6, Inst: "mpc/e0", A: 0},
		{Kind: KPhaseEnd, Tick: 6, Inst: "evaluate", A: 3, B: 1},
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleEvents(), 2)
	if s.Total != 17 || s.LastTick != 6 {
		t.Fatalf("Total/LastTick = %d/%d, want 17/6", s.Total, s.LastTick)
	}
	if len(s.Families) != 2 || s.Families[0].Family != "acs" || s.Families[1].Family != "ba" {
		t.Fatalf("families = %+v", s.Families)
	}
	acs := s.Families[0]
	if acs.Messages != 1 || acs.Bytes != 40 || acs.Latency.Max != 2 {
		t.Fatalf("acs stats = %+v", acs)
	}
	if len(s.Phases) != 2 || s.Phases[0].Name != "preprocess" || s.Phases[1].Name != "evaluate" {
		t.Fatalf("phases = %+v", s.Phases)
	}
	if s.Phases[1].Begin != 3 || s.Phases[1].End != 6 {
		t.Fatalf("evaluate span = %+v", s.Phases[1])
	}
	// Pool gauges track party 1 only: fill, fill-done, reserve, release.
	if len(s.Pool) != 4 {
		t.Fatalf("pool points = %+v", s.Pool)
	}
	if s.Pool[2].Reserved != 2 || s.Pool[3].Reserved != 1 {
		t.Fatalf("reservation gauge wrong: %+v", s.Pool)
	}
	if len(s.Timeline) != 3 || s.Timeline[1].Delivered != 1 {
		t.Fatalf("timeline = %+v", s.Timeline)
	}
	text := s.String()
	for _, want := range []string{"per-family delivery latency", "acs", "ba", "pool depth timeline", "phases:", "activity timeline"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary text missing %q:\n%s", want, text)
		}
	}
}

func TestSummarizeUnterminatedPhase(t *testing.T) {
	s := Summarize([]Event{{Kind: KPhaseBegin, Tick: 1, Inst: "evaluate"}}, 0)
	if len(s.Phases) != 1 || s.Phases[0].End != -1 {
		t.Fatalf("phases = %+v", s.Phases)
	}
	if !strings.Contains(s.String(), "unterminated") {
		t.Fatal("summary should flag unterminated phase")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	evs := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != len(evs) {
		t.Fatalf("JSONL has %d lines, want %d", lines, len(evs))
	}
	back, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(evs) {
		t.Fatalf("round trip length %d, want %d", len(back), len(evs))
	}
	for i := range evs {
		if back[i] != evs[i] {
			t.Fatalf("event %d round trip mismatch:\n got %+v\nwant %+v", i, back[i], evs[i])
		}
	}
}

func TestReadJSONLRejectsUnknownKind(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"k":"bogus","t":1}`)); err == nil {
		t.Fatal("expected error on unknown kind")
	}
}

func TestChromeTraceExportAndValidate(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleEvents(), 2); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("emitted trace fails validation: %v", err)
	}
	text := buf.String()
	for _, want := range []string{`"process_name"`, `"party 1"`, `"queue depth"`, `"triple pool"`, `"preprocess"`, `"evaluate"`} {
		if !strings.Contains(text, want) {
			t.Errorf("chrome trace missing %q", want)
		}
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":        `{"traceEvents": [`,
		"empty":           `{"traceEvents": []}`,
		"metadata only":   `{"traceEvents": [{"name":"process_name","ph":"M","pid":1,"tid":0}]}`,
		"unknown phase":   `{"traceEvents": [{"name":"x","ph":"Z","ts":1,"pid":1,"tid":0}]}`,
		"non-monotone ts": `{"traceEvents": [{"name":"a","ph":"i","ts":5,"pid":1,"tid":0},{"name":"b","ph":"i","ts":4,"pid":1,"tid":0}]}`,
	}
	for name, data := range cases {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validation should have failed", name)
		}
	}
}

func TestWriteChromeTraceDerivesN(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleEvents(), 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"party 2"`) {
		t.Fatal("n=0 should derive party count from events")
	}
}
