// Package obs is the structured trace/telemetry subsystem of the
// simulator stack: a typed event model covering the full protocol
// lifecycle (instance registration, message send/deliver, timer fires,
// scheduler ticks, session epochs, triple-pool accounting, engine
// phases), an in-memory Collector, stream aggregators reducing an
// event sequence to per-family latency histograms and gauge series,
// and exporters for raw JSONL and Chrome trace-event JSON (loadable in
// Perfetto).
//
// The paper's claims are time- and traffic-shaped — termination bounds
// on the Δ-grid, honest-communication complexity per protocol family —
// so the trace layer records *virtual* time: one tick maps to one
// microsecond in the Chrome export, parties map to threads, and
// protocol families to track names. Because the simulation is a
// single-threaded deterministic event loop, the emitted event sequence
// is a pure function of the run's seed: identical seeds produce
// byte-identical JSONL traces, which the differential tests pin.
//
// Tracing is strictly opt-in and zero-cost when off: every emission
// site guards on a nil Tracer, events are flat value structs (no
// allocation on emit), and the nil-tracer hot path is covered by an
// AllocsPerRun guard on the scheduler deliver path.
package obs

import (
	"fmt"
)

// Kind enumerates the typed trace events.
type Kind uint8

// Event kinds. The Event field comments on each kind document how the
// generic A/B payload slots are used.
const (
	// KSend: the network accepted an envelope from its sender.
	// Party=sender, Peer=addressee, Inst/Type/Bytes describe the
	// message, A=scheduled delivery delay in ticks.
	KSend Kind = iota
	// KDeliver: an envelope reached its addressee's runtime.
	// Party=addressee, Peer=sender, Inst/Type/Bytes describe the
	// message, A=observed delivery latency in ticks.
	KDeliver
	// KTimer: a scheduler timer callback ran. A=priority class.
	KTimer
	// KTick: the scheduler advanced to a new tick. A=queue depth (events
	// pending at tick entry, including the one about to run).
	KTick
	// KInstance: a party registered a protocol-instance handler.
	// Party=party, Inst=instance path.
	KInstance
	// KInstanceDrop: a party retired an instance namespace
	// (Runtime.DropPrefix). Party=party, Inst=prefix, A=handlers
	// dropped.
	KInstanceDrop
	// KEpochBegin: the world allocated a session epoch. A=epoch seq.
	KEpochBegin
	// KEpochRetire: the engine retired an epoch's namespace after an
	// evaluation. Inst=epoch namespace, A=epoch seq.
	KEpochRetire
	// KPhaseBegin: an engine lifecycle phase started. Inst=phase name
	// ("preprocess", "evaluate", or "run" for a one-shot mpc.Run),
	// A=phase sequence (batch or epoch).
	KPhaseBegin
	// KPhaseEnd: an engine lifecycle phase completed. Inst=phase name,
	// A=duration in ticks, B=honest messages the phase cost.
	KPhaseEnd
	// KPoolFill: a triple-pool fill batch was requested. Party=party,
	// Inst=batch namespace, A=batch size (triples), B=available before.
	KPoolFill
	// KPoolFillDone: a fill batch completed. Party=party, Inst=batch
	// namespace, A=triples produced, B=available after.
	KPoolFillDone
	// KPoolReserve: an evaluation reserved pool triples. Party=party,
	// A=triples reserved, B=available after.
	KPoolReserve
	// KPoolRelease: an unconsumed reservation returned to the pool.
	// Party=party, A=triples released, B=available after.
	KPoolRelease
	// KPoolExhaust: a reservation failed on an empty pool. Party=party,
	// A=triples needed, B=triples available.
	KPoolExhaust
	// KPipelineDepth: the engine's in-flight evaluation count changed
	// (an epoch was submitted or completed). A=in-flight evaluations
	// after the change, B=epoch seq that caused it. Plotted as a gauge,
	// this is the pipeline-occupancy series.
	KPipelineDepth

	kindCount // number of kinds; keep last
)

// kindNames maps kinds to their stable wire names (JSONL "k" field).
var kindNames = [kindCount]string{
	KSend:          "send",
	KDeliver:       "deliver",
	KTimer:         "timer",
	KTick:          "tick",
	KInstance:      "instance",
	KInstanceDrop:  "instance-drop",
	KEpochBegin:    "epoch-begin",
	KEpochRetire:   "epoch-retire",
	KPhaseBegin:    "phase-begin",
	KPhaseEnd:      "phase-end",
	KPoolFill:      "pool-fill",
	KPoolFillDone:  "pool-fill-done",
	KPoolReserve:   "pool-reserve",
	KPoolRelease:   "pool-release",
	KPoolExhaust:   "pool-exhaust",
	KPipelineDepth: "pipeline-depth",
}

// String returns the kind's stable wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindByName resolves a wire name back to its Kind; ok is false for an
// unknown name.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one trace record: a flat value struct so emitting an event
// never allocates. The A and B slots carry kind-specific payloads (see
// the Kind constants); unused fields are zero.
type Event struct {
	Kind Kind
	// Tick is the virtual time of the event.
	Tick int64
	// Party is the acting party (1-based; 0 = world-level event).
	Party int
	// Peer is the counterpart party where one exists (message sender on
	// KDeliver, addressee on KSend).
	Peer int
	// Inst is the instance path, namespace prefix or phase name.
	Inst string
	// Type is the instance-local message type (KSend/KDeliver).
	Type uint8
	// Bytes is the accounted wire size (KSend/KDeliver).
	Bytes int64
	// A and B are the kind-specific payload slots.
	A, B int64
}

// Family returns the top-level protocol family of the event's instance
// path (the first slash-separated component).
func (e Event) Family() string {
	for i := 0; i < len(e.Inst); i++ {
		if e.Inst[i] == '/' {
			return e.Inst[:i]
		}
	}
	return e.Inst
}

// Tracer receives trace events. Implementations must not retain
// pointers into the event (it is a value) and must be cheap: every
// emission happens inside the single-threaded simulation loop, so no
// locking is needed, but Emit runs on protocol hot paths.
//
// A nil Tracer means tracing is off; emission sites guard on nil, so a
// traced-off run pays one predicted branch per site and zero
// allocations.
type Tracer interface {
	Emit(ev Event)
}

// Collector is the standard in-memory Tracer: it appends every event
// to a slice in emission order. Because the simulation is
// deterministic, the collected sequence is a pure function of the
// run's configuration and seed.
type Collector struct {
	evs []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit implements Tracer.
func (c *Collector) Emit(ev Event) { c.evs = append(c.evs, ev) }

// Events returns the collected events in emission order. The slice is
// owned by the collector; callers must not append to it.
func (c *Collector) Events() []Event { return c.evs }

// Len returns the number of collected events.
func (c *Collector) Len() int { return len(c.evs) }

// Reset discards the collected events, keeping the storage for reuse.
func (c *Collector) Reset() { c.evs = c.evs[:0] }
