package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
)

// histBuckets is the number of power-of-two latency buckets: bucket 0
// counts latency 0, bucket i counts latencies in [2^(i-1), 2^i).
// 2^30 ticks is far beyond any simulated run.
const histBuckets = 32

// Hist is a power-of-two histogram over non-negative tick values with
// exact min/max/mean tracking — the round-latency summary unit.
type Hist struct {
	Count   uint64
	Sum     uint64
	Min     int64
	Max     int64
	Buckets [histBuckets]uint64
}

// bucketOf returns the bucket index of v: 0 for v<=0, else
// 1+floor(log2(v)).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketLo returns the inclusive lower bound of bucket i.
func bucketLo(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1) << (i - 1)
}

// Add records one observation.
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += uint64(v)
	h.Buckets[bucketOf(v)]++
}

// Mean returns the mean observation (0 when empty).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]),
// resolved to bucket granularity: the smallest bucket upper bound
// covering at least q of the observations.
func (h *Hist) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	want := uint64(q * float64(h.Count))
	if want >= h.Count {
		return h.Max
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.Buckets[i]
		if seen > want {
			hi := bucketLo(i+1) - 1
			if hi > h.Max {
				hi = h.Max
			}
			return hi
		}
	}
	return h.Max
}

// FamilyStats aggregates one protocol family's delivered traffic.
type FamilyStats struct {
	Family   string
	Messages uint64
	Bytes    uint64
	// Latency is the histogram of per-message delivery latencies in
	// ticks (send → deliver).
	Latency Hist
}

// TickPoint is one entry of the per-tick activity timeline.
type TickPoint struct {
	Tick int64
	// Delivered counts messages delivered at this tick; QueueDepth is
	// the scheduler's pending-event count at tick entry.
	Delivered  uint64
	QueueDepth int64
}

// PoolPoint is one entry of the triple-pool gauge series (a single
// representative party — honest pools are symmetric).
type PoolPoint struct {
	Tick int64
	// Available is the unreserved pool depth after the operation;
	// Reserved the cumulative net reservations.
	Available int64
	Reserved  int64
	// Kind is the pool operation that produced the point.
	Kind Kind
}

// PhaseSpan is one engine lifecycle phase (preprocess batch or
// evaluation epoch) with its observed cost.
type PhaseSpan struct {
	Name  string
	Seq   int64
	Begin int64
	End   int64
	// Msgs is the phase's honest message cost as reported at phase end.
	Msgs int64
}

// Summary is the reduction of an event stream: per-family latency
// histograms, the per-tick activity timeline, pool gauge series and
// phase spans — everything `scenario trace` renders and the tests
// assert on.
type Summary struct {
	// Delta is the Δ the run was configured with (annotation only).
	Delta int64
	// Events counts the input events by kind.
	Events [kindCount]uint64
	// Total is the number of input events; LastTick the largest tick.
	Total    uint64
	LastTick int64
	// Families holds the per-family delivered-traffic stats, sorted by
	// family name.
	Families []*FamilyStats
	// Timeline is the per-tick activity series, in tick order (only
	// ticks with scheduler activity appear).
	Timeline []TickPoint
	// Pool is the pool gauge series of the lowest-numbered party that
	// emitted pool events (pools are symmetric across honest parties).
	Pool []PoolPoint
	// Phases lists engine lifecycle phases in begin order.
	Phases []PhaseSpan
	// Pipeline is the in-flight evaluation gauge series (KPipelineDepth
	// events): one point per submit/complete, in emission order.
	Pipeline []PipelinePoint
}

// PipelinePoint is one entry of the pipeline-occupancy gauge series.
type PipelinePoint struct {
	Tick int64
	// InFlight is the engine's in-flight evaluation count after the
	// change; Epoch the epoch seq whose submit/complete caused it.
	InFlight int64
	Epoch    int64
}

// Summarize reduces events (in emission order) to a Summary. delta is
// the run's Δ in ticks, used only for annotation.
func Summarize(events []Event, delta int64) *Summary {
	s := &Summary{Delta: delta}
	fams := map[string]*FamilyStats{}
	var curTick *TickPoint
	poolParty := 0
	var poolReserved int64
	type openPhase struct {
		name  string
		seq   int64
		begin int64
	}
	var open []openPhase
	for _, ev := range events {
		s.Total++
		if int(ev.Kind) < len(s.Events) {
			s.Events[ev.Kind]++
		}
		if ev.Tick > s.LastTick {
			s.LastTick = ev.Tick
		}
		switch ev.Kind {
		case KTick:
			s.Timeline = append(s.Timeline, TickPoint{Tick: ev.Tick, QueueDepth: ev.A})
			curTick = &s.Timeline[len(s.Timeline)-1]
		case KDeliver:
			f := fams[ev.Family()]
			if f == nil {
				f = &FamilyStats{Family: ev.Family()}
				fams[f.Family] = f
			}
			f.Messages++
			f.Bytes += uint64(ev.Bytes)
			f.Latency.Add(ev.A)
			if curTick != nil && curTick.Tick == ev.Tick {
				curTick.Delivered++
			}
		case KPoolFill, KPoolFillDone, KPoolReserve, KPoolRelease, KPoolExhaust:
			if poolParty == 0 {
				poolParty = ev.Party
			}
			if ev.Party != poolParty {
				continue // symmetric siblings: track one party's gauges
			}
			switch ev.Kind {
			case KPoolReserve:
				poolReserved += ev.A
			case KPoolRelease:
				poolReserved -= ev.A
			}
			s.Pool = append(s.Pool, PoolPoint{Tick: ev.Tick, Available: ev.B, Reserved: poolReserved, Kind: ev.Kind})
		case KPhaseBegin:
			open = append(open, openPhase{name: ev.Inst, seq: ev.A, begin: ev.Tick})
		case KPhaseEnd:
			// Phases of different names may overlap (a background refill
			// spans live evaluations): close the oldest open phase with
			// this name, falling back to the innermost open one.
			at := -1
			for k, p := range open {
				if p.name == ev.Inst {
					at = k
					break
				}
			}
			if at < 0 {
				at = len(open) - 1
			}
			if at >= 0 {
				p := open[at]
				open = append(open[:at], open[at+1:]...)
				s.Phases = append(s.Phases, PhaseSpan{Name: p.name, Seq: p.seq, Begin: p.begin, End: ev.Tick, Msgs: ev.B})
			}
		case KPipelineDepth:
			s.Pipeline = append(s.Pipeline, PipelinePoint{Tick: ev.Tick, InFlight: ev.A, Epoch: ev.B})
		}
	}
	for _, p := range open { // unterminated phases (run aborted)
		s.Phases = append(s.Phases, PhaseSpan{Name: p.name, Seq: p.seq, Begin: p.begin, End: -1})
	}
	sort.Slice(s.Phases, func(i, j int) bool { return s.Phases[i].Begin < s.Phases[j].Begin })
	for _, f := range fams {
		s.Families = append(s.Families, f)
	}
	sort.Slice(s.Families, func(i, j int) bool { return s.Families[i].Family < s.Families[j].Family })
	return s
}

// timelineRows bounds the rendered timeline length: longer runs are
// re-bucketed into at most this many tick ranges.
const timelineRows = 24

// Format renders the summary as the `scenario trace` text report:
// totals, phase spans, per-family round-latency histograms, the pool
// depth timeline and the queue-depth/delivery timeline.
func (s *Summary) Format(w io.Writer) {
	fmt.Fprintf(w, "trace: %d events, last tick %d", s.Total, s.LastTick)
	if s.Delta > 0 {
		fmt.Fprintf(w, " (%d Δ of %d ticks)", (s.LastTick+s.Delta-1)/s.Delta, s.Delta)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  sends %d  delivers %d  timers %d  instances %d  ticks %d\n",
		s.Events[KSend], s.Events[KDeliver], s.Events[KTimer], s.Events[KInstance], s.Events[KTick])

	if len(s.Phases) > 0 {
		fmt.Fprintln(w, "phases:")
		for _, p := range s.Phases {
			if p.End < 0 {
				fmt.Fprintf(w, "  %-12s #%-3d t=%-8d (unterminated)\n", p.Name, p.Seq, p.Begin)
				continue
			}
			fmt.Fprintf(w, "  %-12s #%-3d t=%d..%d  %6d ticks  %8d msgs\n",
				p.Name, p.Seq, p.Begin, p.End, p.End-p.Begin, p.Msgs)
		}
	}

	if len(s.Families) > 0 {
		fmt.Fprintln(w, "per-family delivery latency (ticks):")
		for _, f := range s.Families {
			fmt.Fprintf(w, "  %-12s %8d msgs %12d bytes  min=%d p50=%d p99=%d max=%d mean=%.1f\n",
				f.Family, f.Messages, f.Bytes,
				f.Latency.Min, f.Latency.Quantile(0.50), f.Latency.Quantile(0.99), f.Latency.Max, f.Latency.Mean())
			fmt.Fprint(w, histBars(&f.Latency))
		}
	}

	if len(s.Pool) > 0 {
		fmt.Fprintln(w, "pool depth timeline (available/reserved):")
		for _, p := range s.Pool {
			fmt.Fprintf(w, "  t=%-8d %-14s avail=%-6d reserved=%d\n", p.Tick, p.Kind, p.Available, p.Reserved)
		}
	}

	if len(s.Timeline) > 0 {
		fmt.Fprintln(w, "activity timeline (ticks × deliveries, max queue depth):")
		fmt.Fprint(w, timelineRowsFor(s.Timeline))
	}
}

// String renders Format to a string.
func (s *Summary) String() string {
	var b strings.Builder
	s.Format(&b)
	return b.String()
}

// histBars renders the non-empty buckets of h as indented bar rows.
func histBars(h *Hist) string {
	var peak uint64
	for _, c := range h.Buckets {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		return ""
	}
	var b strings.Builder
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		width := int(c * 40 / peak)
		if width == 0 {
			width = 1
		}
		lo := bucketLo(i)
		hi := bucketLo(i+1) - 1
		if i == 0 {
			hi = 0
		}
		fmt.Fprintf(&b, "    %6d..%-6d %8d %s\n", lo, hi, c, strings.Repeat("#", width))
	}
	return b.String()
}

// timelineRowsFor re-buckets the per-tick series into at most
// timelineRows ranges and renders delivery counts with queue-depth
// peaks.
func timelineRowsFor(tl []TickPoint) string {
	if len(tl) == 0 {
		return ""
	}
	first, last := tl[0].Tick, tl[len(tl)-1].Tick
	span := last - first + 1
	step := (span + timelineRows - 1) / timelineRows
	if step < 1 {
		step = 1
	}
	type row struct {
		lo, hi    int64
		delivered uint64
		maxDepth  int64
	}
	rows := []row{}
	idx := 0
	for lo := first; lo <= last; lo += step {
		hi := lo + step - 1
		r := row{lo: lo, hi: hi}
		for idx < len(tl) && tl[idx].Tick <= hi {
			r.delivered += tl[idx].Delivered
			if tl[idx].QueueDepth > r.maxDepth {
				r.maxDepth = tl[idx].QueueDepth
			}
			idx++
		}
		rows = append(rows, r)
	}
	var peak uint64
	for _, r := range rows {
		if r.delivered > peak {
			peak = r.delivered
		}
	}
	var b strings.Builder
	for _, r := range rows {
		width := 0
		if peak > 0 {
			width = int(r.delivered * 40 / peak)
		}
		if r.delivered > 0 && width == 0 {
			width = 1
		}
		fmt.Fprintf(&b, "  t=%6d..%-6d %8d msgs  depth<=%-6d %s\n",
			r.lo, r.hi, r.delivered, r.maxDepth, strings.Repeat("#", width))
	}
	return b.String()
}
