package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// jsonlEvent is the JSONL wire form of an Event: short stable keys,
// zero-valued fields omitted, Kind as its wire name. The mapping is
// k=kind, t=tick, p=party, q=peer, i=inst, m=message type, b=bytes,
// a/v=the A/B payload slots.
type jsonlEvent struct {
	K string `json:"k"`
	T int64  `json:"t"`
	P int    `json:"p,omitempty"`
	Q int    `json:"q,omitempty"`
	I string `json:"i,omitempty"`
	M uint8  `json:"m,omitempty"`
	B int64  `json:"b,omitempty"`
	A int64  `json:"a,omitempty"`
	V int64  `json:"v,omitempty"`
}

// WriteJSONL writes events as one JSON object per line. The output is
// a pure function of the event sequence, so identical runs produce
// byte-identical files (the determinism tests pin this).
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(jsonlEvent{
			K: ev.Kind.String(),
			T: ev.Tick,
			P: ev.Party,
			Q: ev.Peer,
			I: ev.Inst,
			M: ev.Type,
			B: ev.Bytes,
			A: ev.A,
			V: ev.B,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace back into events (the replay half of
// WriteJSONL, used by `scenario trace -validate` tooling and tests).
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	dec := json.NewDecoder(r)
	for {
		var je jsonlEvent
		if err := dec.Decode(&je); err != nil {
			if err == io.EOF {
				return events, nil
			}
			return nil, err
		}
		k, ok := KindByName(je.K)
		if !ok {
			return nil, fmt.Errorf("obs: unknown event kind %q at record %d", je.K, len(events))
		}
		events = append(events, Event{
			Kind: k, Tick: je.T, Party: je.P, Peer: je.Q,
			Inst: je.I, Type: je.M, Bytes: je.B, A: je.A, B: je.V,
		})
	}
}

// chromeEvent is one Chrome trace-event record. The format is the
// Google trace-event JSON consumed by Perfetto / chrome://tracing:
// ph is the phase type ("i" instant, "C" counter, "B"/"E" duration,
// "M" metadata), ts is microseconds, pid/tid locate the track.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level Chrome trace JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Chrome export track layout: everything lives in pid 1
// ("simulation"); tid 0 is the scheduler/engine track and tid i is
// party i.
const (
	chromePid      = 1
	chromeSchedTid = 0
)

// WriteChromeTrace writes events as Chrome trace-event JSON loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Virtual ticks map
// to microseconds, parties to threads, protocol families to event
// names. n is the party count (for thread metadata); pass 0 to derive
// it from the events.
//
// Mapping: KDeliver → "i" instants on the addressee's thread named by
// family; KTick → a "C" queue-depth counter; pool events → a "C"
// pool counter (available + reserved series, one representative
// party); KPhaseBegin/End → "B"/"E" spans on the scheduler track;
// epoch and exhaustion events → instants. KSend is deliberately
// omitted (it duplicates KDeliver minus latency; the JSONL export has
// it) to halve file size.
func WriteChromeTrace(w io.Writer, events []Event, n int) error {
	if n == 0 {
		for _, ev := range events {
			if ev.Party > n {
				n = ev.Party
			}
		}
	}
	evs := make([]chromeEvent, 0, len(events)+n+2)
	// Metadata first: process and thread names (ts 0, sorts before all).
	meta := func(name, value string, tid int) {
		evs = append(evs, chromeEvent{
			Name: name, Ph: "M", Pid: chromePid, Tid: tid,
			Args: map[string]any{"name": value},
		})
	}
	meta("process_name", "simulation", chromeSchedTid)
	meta("thread_name", "scheduler", chromeSchedTid)
	for p := 1; p <= n; p++ {
		meta("thread_name", "party "+strconv.Itoa(p), p)
	}

	poolParty := 0
	var poolReserved int64
	for _, ev := range events {
		switch ev.Kind {
		case KDeliver:
			evs = append(evs, chromeEvent{
				Name: ev.Family(), Ph: "i", Ts: ev.Tick, Pid: chromePid, Tid: ev.Party, S: "t",
				Args: map[string]any{
					"inst": ev.Inst, "from": ev.Peer, "type": ev.Type,
					"bytes": ev.Bytes, "latency": ev.A,
				},
			})
		case KTick:
			evs = append(evs, chromeEvent{
				Name: "queue depth", Ph: "C", Ts: ev.Tick, Pid: chromePid, Tid: chromeSchedTid,
				Args: map[string]any{"pending": ev.A},
			})
		case KPhaseBegin:
			evs = append(evs, chromeEvent{
				Name: ev.Inst, Ph: "B", Ts: ev.Tick, Pid: chromePid, Tid: chromeSchedTid,
				Args: map[string]any{"seq": ev.A},
			})
		case KPhaseEnd:
			evs = append(evs, chromeEvent{
				Name: ev.Inst, Ph: "E", Ts: ev.Tick, Pid: chromePid, Tid: chromeSchedTid,
				Args: map[string]any{"ticks": ev.A, "msgs": ev.B},
			})
		case KEpochBegin, KEpochRetire:
			evs = append(evs, chromeEvent{
				Name: ev.Kind.String(), Ph: "i", Ts: ev.Tick, Pid: chromePid, Tid: chromeSchedTid, S: "p",
				Args: map[string]any{"seq": ev.A, "ns": ev.Inst},
			})
		case KPoolFill, KPoolFillDone, KPoolReserve, KPoolRelease:
			// One representative party's gauges: honest pools are symmetric,
			// and n near-identical counter tracks would drown the view.
			if poolParty == 0 {
				poolParty = ev.Party
			}
			if ev.Party != poolParty {
				continue
			}
			switch ev.Kind {
			case KPoolReserve:
				poolReserved += ev.A
			case KPoolRelease:
				poolReserved -= ev.A
			}
			evs = append(evs, chromeEvent{
				Name: "triple pool", Ph: "C", Ts: ev.Tick, Pid: chromePid, Tid: chromeSchedTid,
				Args: map[string]any{"available": ev.B, "reserved": poolReserved},
			})
		case KPoolExhaust:
			evs = append(evs, chromeEvent{
				Name: "pool exhausted", Ph: "i", Ts: ev.Tick, Pid: chromePid, Tid: ev.Party, S: "g",
				Args: map[string]any{"need": ev.A, "have": ev.B},
			})
		case KPipelineDepth:
			evs = append(evs, chromeEvent{
				Name: "pipeline depth", Ph: "C", Ts: ev.Tick, Pid: chromePid, Tid: chromeSchedTid,
				Args: map[string]any{"inFlight": ev.A},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// ValidateChromeTrace checks that data is a well-formed, non-empty
// Chrome trace with monotone timestamps and known phase types — the
// contract `make trace-smoke` enforces on emitted files.
func ValidateChromeTrace(data []byte) error {
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return fmt.Errorf("obs: trace has no events")
	}
	var lastTs int64
	seenNonMeta := false
	for i, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			continue // metadata carries no timestamp
		case "i", "C", "B", "E":
		default:
			return fmt.Errorf("obs: event %d has unknown phase type %q", i, ev.Ph)
		}
		if ev.Ts < lastTs {
			return fmt.Errorf("obs: event %d (%s %q) breaks timestamp monotonicity: ts %d after %d",
				i, ev.Ph, ev.Name, ev.Ts, lastTs)
		}
		lastTs = ev.Ts
		seenNonMeta = true
	}
	if !seenNonMeta {
		return fmt.Errorf("obs: trace has only metadata events")
	}
	return nil
}
