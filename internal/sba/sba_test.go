package sba

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/proto"
	"repro/internal/sim"
)

func cfg() proto.Config { return proto.Config{N: 8, Ts: 2, Ta: 1, Delta: 10} }

type harness struct {
	w     *proto.World
	outs  []*Value
	outAt []sim.Time
}

// newHarness starts one SBA instance per party at time 0 with the given
// inputs (1-based).
func newHarness(w *proto.World, t int, inputs []Value) *harness {
	h := &harness{
		w:     w,
		outs:  make([]*Value, w.Cfg.N+1),
		outAt: make([]sim.Time, w.Cfg.N+1),
	}
	for i := 1; i <= w.Cfg.N; i++ {
		i := i
		New(w.Runtimes[i], "sba", t, w.Cfg.Delta, 0, inputs[i], func(v Value) {
			h.outs[i] = &v
			h.outAt[i] = w.Sched.Now()
		})
	}
	return h
}

func mkInputs(n int, f func(i int) Value) []Value {
	in := make([]Value, n+1)
	for i := 1; i <= n; i++ {
		in[i] = f(i)
	}
	return in
}

func TestValueEqualAndOrder(t *testing.T) {
	if !Bot().Equal(Bot()) {
		t.Fatal("⊥ != ⊥")
	}
	if Bot().Equal(Val(nil)) {
		t.Fatal("⊥ == empty value")
	}
	if !Val([]byte("a")).Equal(Val([]byte("a"))) || Val([]byte("a")).Equal(Val([]byte("b"))) {
		t.Fatal("value equality broken")
	}
	// The tally tie-break order must keep ⊥ distinct from (and before)
	// the empty value, and order data values bytewise.
	if !keyLess(Bot(), Val(nil)) || keyLess(Val(nil), Bot()) {
		t.Fatal("⊥ must sort strictly before the empty value")
	}
	if !keyLess(Val([]byte("a")), Val([]byte("b"))) || keyLess(Val([]byte("b")), Val([]byte("a"))) {
		t.Fatal("data values must sort bytewise")
	}
	if keyLess(Val([]byte("a")), Val([]byte("a"))) {
		t.Fatal("keyLess must be irreflexive")
	}
}

func TestValidityAllHonest(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Sync, Seed: seed})
		msg := Val([]byte("agreed"))
		h := newHarness(w, w.Cfg.Ts, mkInputs(8, func(int) Value { return msg }))
		w.RunToQuiescence()
		deadline := Deadline(w.Cfg.Ts, w.Cfg.Delta)
		for i := 1; i <= 8; i++ {
			if h.outs[i] == nil || !h.outs[i].Equal(msg) {
				t.Fatalf("seed %d: party %d output %v, want %q", seed, i, h.outs[i], "agreed")
			}
			if h.outAt[i] != deadline {
				t.Fatalf("seed %d: party %d output at %d, want exactly %d", seed, i, h.outAt[i], deadline)
			}
		}
	}
}

func TestValidityWithByzantine(t *testing.T) {
	// All honest share input v; t corrupt parties equivocate wildly.
	// Validity: every honest output must be v.
	for seed := uint64(0); seed < 4; seed++ {
		ctrl := adversary.NewController().
			Set(2, adversary.GarbleMatching(func(string) bool { return true })).
			Set(7, adversary.Mutate(adversary.MutateSpec{
				Rewrite: func(env sim.Envelope) []byte {
					// Send different junk to each recipient.
					return []byte{byte(env.To), 0xff, 0x00}
				},
			}))
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: cfg(), Network: proto.Sync, Seed: seed, Corrupt: []int{2, 7}, Interceptor: ctrl,
		})
		msg := Val([]byte{42})
		h := newHarness(w, w.Cfg.Ts, mkInputs(8, func(int) Value { return msg }))
		w.RunToQuiescence()
		for i := 1; i <= 8; i++ {
			if w.IsCorrupt(i) {
				continue
			}
			if h.outs[i] == nil || !h.outs[i].Equal(msg) {
				t.Fatalf("seed %d: honest party %d output %v, want 42", seed, i, h.outs[i])
			}
		}
	}
}

func TestConsistencyMixedInputs(t *testing.T) {
	// Honest parties disagree initially; corrupt parties try to split
	// them. All honest outputs must match (t-consistency).
	for seed := uint64(0); seed < 6; seed++ {
		ctrl := adversary.NewController().
			Set(1, adversary.Mutate(adversary.MutateSpec{
				Rewrite: func(env sim.Envelope) []byte {
					if env.To%2 == 0 {
						return Val([]byte("zero")).encode()
					}
					return Val([]byte("one")).encode()
				},
			}))
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: cfg(), Network: proto.Sync, Seed: seed, Corrupt: []int{1}, Interceptor: ctrl,
		})
		h := newHarness(w, w.Cfg.Ts, mkInputs(8, func(i int) Value {
			if i%2 == 0 {
				return Val([]byte("zero"))
			}
			return Val([]byte("one"))
		}))
		w.RunToQuiescence()
		var ref *Value
		for i := 1; i <= 8; i++ {
			if w.IsCorrupt(i) {
				continue
			}
			if h.outs[i] == nil {
				t.Fatalf("seed %d: party %d no output", seed, i)
			}
			if ref == nil {
				ref = h.outs[i]
			} else if !h.outs[i].Equal(*ref) {
				t.Fatalf("seed %d: consistency violated: %v vs %v", seed, *ref, *h.outs[i])
			}
		}
	}
}

func TestBotInputsSupported(t *testing.T) {
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Sync, Seed: 1})
	h := newHarness(w, w.Cfg.Ts, mkInputs(8, func(int) Value { return Bot() }))
	w.RunToQuiescence()
	for i := 1; i <= 8; i++ {
		if h.outs[i] == nil || !h.outs[i].Bot {
			t.Fatalf("party %d output %v, want ⊥", i, h.outs[i])
		}
	}
}

func TestAsyncGuaranteedLiveness(t *testing.T) {
	// Lemma 3.2 third bullet: in an asynchronous network all honest
	// parties still have *some* output at the local deadline.
	for seed := uint64(0); seed < 4; seed++ {
		w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Async, Seed: seed})
		h := newHarness(w, w.Cfg.Ts, mkInputs(8, func(i int) Value {
			return Val([]byte{byte(i % 2)})
		}))
		w.RunToQuiescence()
		deadline := Deadline(w.Cfg.Ts, w.Cfg.Delta)
		for i := 1; i <= 8; i++ {
			if h.outs[i] == nil {
				t.Fatalf("seed %d: party %d has no output in async run", seed, i)
			}
			if h.outAt[i] != deadline {
				t.Fatalf("seed %d: output at %d, want %d", seed, h.outAt[i], deadline)
			}
		}
	}
}

func TestAsyncUnanimousStillValid(t *testing.T) {
	// Even asynchronously, if every party is honest and unanimous the
	// value round already fixes x for everyone... but messages may be
	// late, so the only guarantee we check is: outputs are v or ⊥-free
	// consistent... The paper requires only liveness in async; we
	// additionally document validity holds when all deliveries beat the
	// round pacing. Here we only assert liveness + no wrong non-⊥
	// value... skip strictness: outputs may be arbitrary under async.
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Async, Seed: 11})
	h := newHarness(w, w.Cfg.Ts, mkInputs(8, func(int) Value { return Val([]byte("v")) }))
	w.RunToQuiescence()
	for i := 1; i <= 8; i++ {
		if h.outs[i] == nil {
			t.Fatalf("party %d missing output", i)
		}
	}
}

func TestLargerNetworkN13(t *testing.T) {
	c := proto.Config{N: 13, Ts: 3, Ta: 2, Delta: 10}
	ctrl := adversary.NewController()
	for _, p := range []int{4, 9, 13} {
		ctrl.Set(p, adversary.GarbleMatching(func(string) bool { return true }))
	}
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: c, Network: proto.Sync, Seed: 5, Corrupt: []int{4, 9, 13}, Interceptor: ctrl,
	})
	msg := Val([]byte("n13"))
	h := newHarness(w, c.Ts, mkInputs(13, func(int) Value { return msg }))
	w.RunToQuiescence()
	for i := 1; i <= 13; i++ {
		if w.IsCorrupt(i) {
			continue
		}
		if h.outs[i] == nil || !h.outs[i].Equal(msg) {
			t.Fatalf("party %d output %v", i, h.outs[i])
		}
	}
}

func TestCommunicationScaling(t *testing.T) {
	run := func(n, ts int) uint64 {
		c := proto.Config{N: n, Ts: ts, Ta: 0, Delta: 10}
		w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 5})
		h := newHarness(w, ts, mkInputs(n, func(i int) Value { return Val([]byte{1}) }))
		w.RunToQuiescence()
		_ = h
		return w.Metrics().HonestMessages()
	}
	m8 := run(8, 2)
	m16 := run(16, 5)
	// O(n²·t): 8→16 with t 2→5 should grow ≈ (16/8)²·(6/3) = 10×; allow wide band.
	ratio := float64(m16) / float64(m8)
	if ratio < 4 || ratio > 20 {
		t.Fatalf("unexpected scaling %f (m8=%d, m16=%d)", ratio, m8, m16)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Async, Seed: 77})
		h := newHarness(w, w.Cfg.Ts, mkInputs(8, func(i int) Value { return Val([]byte{byte(i & 1)}) }))
		w.RunToQuiescence()
		out := ""
		for i := 1; i <= 8; i++ {
			out += fmt.Sprintf("%v;", h.outs[i])
		}
		return out
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %s vs %s", a, b)
	}
}
