// Package sba implements a t-perfectly-secure synchronous Byzantine
// agreement protocol filling the ΠBGP role of the paper (Lemma 3.2): the
// classic phase-king algorithm of Berman, Garay and Perry for t < n/3,
// in its multi-valued form over arbitrary ℓ-bit values plus ⊥.
//
// The protocol runs t+1 phases of three clock-paced rounds each:
//
//	round V (value):   everybody sends its current value x.
//	round P (propose): if some value y was received ≥ n-t times in
//	                   round V, send propose(y).
//	round K (king):    the phase's king sends its current x; a party
//	                   that saw < n-t propose messages for its adopted
//	                   value takes the king's value. A party that saw
//	                   > t propose(z) adopts z first.
//
// In a synchronous network this is a t-perfectly-secure SBA with every
// honest party holding the output at exactly T0 + 3(t+1)Δ. In an
// asynchronous network it still produces *some* output at that local
// deadline (guaranteed liveness with possible ⊥/garbage), which is all
// ΠBC needs from it (the paper's footnote 4). Communication is O(n²ℓ)
// per round.
//
// The paper uses the recursive Berman–Garay–Perry protocol with
// TBGP = (12n-6)Δ; this non-recursive variant has identical security
// properties with TSBA = 3(t+1)Δ and O(n²ℓt) total bits — the changed
// constants are tracked in internal/timing (see DESIGN.md §2).
package sba

import (
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Message types.
const (
	msgValue uint8 = iota + 1
	msgPropose
	msgKing
)

// Value is an agreement value: an arbitrary byte string or ⊥.
type Value struct {
	Bot  bool
	Data []byte
}

// Bot is the distinguished ⊥ value.
func Bot() Value { return Value{Bot: true} }

// Val wraps a byte string as a non-⊥ value.
func Val(data []byte) Value { return Value{Data: data} }

// Equal reports value equality.
func (v Value) Equal(o Value) bool {
	if v.Bot != o.Bot {
		return false
	}
	return v.Bot || string(v.Data) == string(o.Data)
}

// key returns a map key for tallying.
func (v Value) key() string {
	if v.Bot {
		return "\x00"
	}
	return "\x01" + string(v.Data)
}

func (v Value) encode() []byte {
	return wire.NewWriter().Bool(v.Bot).Blob(v.Data).Bytes()
}

func decodeValue(body []byte) (Value, bool) {
	r := wire.NewReader(body)
	bot := r.Bool()
	data := r.Blob()
	if r.Done() != nil {
		return Value{}, false
	}
	if bot {
		return Bot(), true
	}
	return Val(data), true
}

// SBA is one party's state in a phase-king run.
type SBA struct {
	rt    *proto.Runtime
	inst  string
	n, t  int
	delta sim.Time
	start sim.Time

	x            Value
	maxProposals int
	// per-round first-message-per-sender buffers
	values    map[int]map[int]Value // round index -> sender -> value
	kingVal   map[int]*Value        // phase -> king's value
	outputSet bool
	output    Value
	onOutput  func(Value)
}

// Deadline returns the protocol duration 3(t+1)Δ for threshold t.
func Deadline(t int, delta sim.Time) sim.Time { return sim.Time(3*(t+1)) * delta }

// New registers a phase-king instance starting at absolute local time
// start with the given input. Every honest party must create the
// instance with the same start time (in our compositions start times
// are structural constants). onOutput fires exactly once, at
// start + Deadline.
func New(rt *proto.Runtime, inst string, t int, delta sim.Time, start sim.Time, input Value, onOutput func(Value)) *SBA {
	s := &SBA{
		rt:       rt,
		inst:     inst,
		n:        rt.N(),
		t:        t,
		delta:    delta,
		start:    start,
		x:        input,
		values:   make(map[int]map[int]Value),
		kingVal:  make(map[int]*Value),
		onOutput: onOutput,
	}
	rt.Register(inst, s)
	// Rounds chain dynamically so that, within a single boundary tick,
	// king processing of phase p strictly precedes the value send of
	// phase p+1.
	rt.At(start, func() { s.beginPhase(1) })
	return s
}

// Output returns the decided value; valid only after the deadline.
func (s *SBA) Output() (Value, bool) { return s.output, s.outputSet }

// roundIndex maps (phase, kind) to a global round number for buffering.
func roundIndex(phase int, kind uint8) int { return 3*(phase-1) + int(kind-msgValue) }

func (s *SBA) beginPhase(phase int) {
	s.rt.SendAll(s.inst, msgValue, wire.NewWriter().Int(phase).Blob(s.x.encode()).Bytes())
	s.rt.After(s.delta, func() { s.endValueRound(phase) })
}

func (s *SBA) endValueRound(phase int) {
	recv := s.values[roundIndex(phase, msgValue)]
	tally := make(map[string]int)
	rep := make(map[string]Value)
	for _, v := range recv {
		tally[v.key()]++
		rep[v.key()] = v
	}
	for k, c := range tally {
		if c >= s.n-s.t {
			// Propose this value (at most one can reach n-t among ≤ n
			// messages when n > 3t... two values could in principle both
			// reach n-t only if 2(n-t) ≤ n, impossible; so unique).
			v := rep[k]
			s.rt.SendAll(s.inst, msgPropose, wire.NewWriter().Int(phase).Blob(v.encode()).Bytes())
			break
		}
	}
	s.rt.After(s.delta, func() { s.endProposeRound(phase) })
}

func (s *SBA) endProposeRound(phase int) {
	recv := s.values[roundIndex(phase, msgPropose)]
	tally := make(map[string]int)
	rep := make(map[string]Value)
	for _, v := range recv {
		tally[v.key()]++
		rep[v.key()] = v
	}
	best, bestCount := "", 0
	for k, c := range tally {
		if c > bestCount || (c == bestCount && k < best) {
			best, bestCount = k, c
		}
	}
	if bestCount > s.t {
		s.x = rep[best]
	}
	s.maxProposals = bestCount
	// King round: the phase's king sends its (possibly updated) value.
	if s.rt.ID() == s.king(phase) {
		s.rt.SendAll(s.inst, msgKing, wire.NewWriter().Int(phase).Blob(s.x.encode()).Bytes())
	}
	s.rt.After(s.delta, func() { s.endKingRound(phase) })
}

func (s *SBA) endKingRound(phase int) {
	if s.maxProposals < s.n-s.t {
		if kv := s.kingVal[phase]; kv != nil {
			s.x = *kv
		}
	}
	if phase < s.t+1 {
		s.beginPhase(phase + 1)
	} else {
		s.finish()
	}
}

// king returns the king of the given phase. Phases are 1-based and
// phase ≤ t+1 ≤ n, so the assignment is injective.
func (s *SBA) king(phase int) int { return phase }

func (s *SBA) finish() {
	if s.outputSet {
		return
	}
	s.outputSet = true
	s.output = s.x
	if s.onOutput != nil {
		s.onOutput(s.x)
	}
}

// Deliver implements proto.Handler.
func (s *SBA) Deliver(from int, msgType uint8, body []byte) {
	r := wire.NewReader(body)
	phase := r.Int()
	enc := r.Blob()
	if r.Done() != nil || phase < 1 || phase > s.t+1 {
		return
	}
	v, ok := decodeValue(enc)
	if !ok {
		return
	}
	switch msgType {
	case msgValue, msgPropose:
		idx := roundIndex(phase, msgType)
		recv := s.values[idx]
		if recv == nil {
			recv = make(map[int]Value)
			s.values[idx] = recv
		}
		if _, dup := recv[from]; !dup {
			recv[from] = v
		}
	case msgKing:
		if from != s.king(phase) {
			return
		}
		if s.kingVal[phase] == nil {
			s.kingVal[phase] = &v
		}
	}
}
