// Package sba implements a t-perfectly-secure synchronous Byzantine
// agreement protocol filling the ΠBGP role of the paper (Lemma 3.2): the
// classic phase-king algorithm of Berman, Garay and Perry for t < n/3,
// in its multi-valued form over arbitrary ℓ-bit values plus ⊥.
//
// The protocol runs t+1 phases of three clock-paced rounds each:
//
//	round V (value):   everybody sends its current value x.
//	round P (propose): if some value y was received ≥ n-t times in
//	                   round V, send propose(y).
//	round K (king):    the phase's king sends its current x; a party
//	                   that saw < n-t propose messages for its adopted
//	                   value takes the king's value. A party that saw
//	                   > t propose(z) adopts z first.
//
// In a synchronous network this is a t-perfectly-secure SBA with every
// honest party holding the output at exactly T0 + 3(t+1)Δ. In an
// asynchronous network it still produces *some* output at that local
// deadline (guaranteed liveness with possible ⊥/garbage), which is all
// ΠBC needs from it (the paper's footnote 4). Communication is O(n²ℓ)
// per round.
//
// The paper uses the recursive Berman–Garay–Perry protocol with
// TBGP = (12n-6)Δ; this non-recursive variant has identical security
// properties with TSBA = 3(t+1)Δ and O(n²ℓt) total bits — the changed
// constants are tracked in internal/timing (see DESIGN.md §2).
package sba

import (
	"bytes"

	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Message types.
const (
	msgValue uint8 = iota + 1
	msgPropose
	msgKing
)

// Value is an agreement value: an arbitrary byte string or ⊥.
type Value struct {
	Bot  bool
	Data []byte
}

// Bot is the distinguished ⊥ value.
func Bot() Value { return Value{Bot: true} }

// Val wraps a byte string as a non-⊥ value.
func Val(data []byte) Value { return Value{Data: data} }

// Equal reports value equality.
func (v Value) Equal(o Value) bool {
	if v.Bot != o.Bot {
		return false
	}
	return v.Bot || string(v.Data) == string(o.Data)
}

// keyLess orders values the way their former tallying map keys
// ("\x00" for ⊥, "\x01"+data otherwise) sorted lexicographically: ⊥
// first, then data values in byte order. Tie-breaks must stay stable so
// runs remain bit-for-bit reproducible.
func keyLess(a, b Value) bool {
	if a.Bot != b.Bot {
		return a.Bot
	}
	if a.Bot {
		return false
	}
	return bytes.Compare(a.Data, b.Data) < 0
}

func (v Value) encode() []byte {
	return wire.NewWriterCap(len(v.Data) + 5).Bool(v.Bot).Blob(v.Data).Bytes()
}

func decodeValue(body []byte) (Value, bool) {
	r := wire.NewReader(body)
	bot := r.Bool()
	data := r.BlobRef()
	if r.Done() != nil {
		return Value{}, false
	}
	if bot {
		return Bot(), true
	}
	return Val(data), true
}

// SBA is one party's state in a phase-king run.
type SBA struct {
	rt    *proto.Runtime
	inst  string
	n, t  int
	delta sim.Time
	start sim.Time

	x            Value
	maxProposals int
	// per-round first-message-per-sender buffers, indexed
	// [roundIndex][sender]; seen marks slots holding a value.
	values  [][]Value
	seen    [][]bool
	kingVal []*Value // phase -> king's value
	// tallyVals/tallyCounts are reusable scratch for round tallies.
	tallyVals   []Value
	tallyCounts []int
	outputSet   bool
	output      Value
	onOutput    func(Value)
}

// Deadline returns the protocol duration 3(t+1)Δ for threshold t.
func Deadline(t int, delta sim.Time) sim.Time { return sim.Time(3*(t+1)) * delta }

// New registers a phase-king instance starting at absolute local time
// start with the given input. Every honest party must create the
// instance with the same start time (in our compositions start times
// are structural constants). onOutput fires exactly once, at
// start + Deadline.
func New(rt *proto.Runtime, inst string, t int, delta sim.Time, start sim.Time, input Value, onOutput func(Value)) *SBA {
	s := &SBA{
		rt:       rt,
		inst:     inst,
		n:        rt.N(),
		t:        t,
		delta:    delta,
		start:    start,
		x:        input,
		values:   make([][]Value, 3*(t+1)),
		seen:     make([][]bool, 3*(t+1)),
		kingVal:  make([]*Value, t+2),
		onOutput: onOutput,
	}
	rt.Register(inst, s)
	// Rounds chain dynamically so that, within a single boundary tick,
	// king processing of phase p strictly precedes the value send of
	// phase p+1.
	rt.At(start, func() { s.beginPhase(1) })
	return s
}

// Output returns the decided value; valid only after the deadline.
func (s *SBA) Output() (Value, bool) { return s.output, s.outputSet }

// roundIndex maps (phase, kind) to a global round number for buffering.
func roundIndex(phase int, kind uint8) int { return 3*(phase-1) + int(kind-msgValue) }

func (s *SBA) beginPhase(phase int) {
	s.rt.SendAll(s.inst, msgValue, wire.NewWriterCap(len(s.x.Data)+12).Int(phase).Blob(s.x.encode()).Bytes())
	s.rt.After(s.delta, func() { s.endValueRound(phase) })
}

// tally counts the distinct values received in the given round into the
// reusable tallyVals/tallyCounts scratch. Distinct values per round are
// at most n, and usually one; the quadratic scan beats per-value string
// keys and map churn by a wide margin at protocol scale.
func (s *SBA) tally(idx int) {
	s.tallyVals = s.tallyVals[:0]
	s.tallyCounts = s.tallyCounts[:0]
	recv := s.values[idx]
	seen := s.seen[idx]
	for from := range recv {
		if !seen[from] {
			continue
		}
		v := recv[from]
		found := false
		for i, tv := range s.tallyVals {
			if tv.Equal(v) {
				s.tallyCounts[i]++
				found = true
				break
			}
		}
		if !found {
			s.tallyVals = append(s.tallyVals, v)
			s.tallyCounts = append(s.tallyCounts, 1)
		}
	}
}

func (s *SBA) endValueRound(phase int) {
	s.tally(roundIndex(phase, msgValue))
	for i, c := range s.tallyCounts {
		if c >= s.n-s.t {
			// Propose this value (at most one can reach n-t among ≤ n
			// messages when n > 3t... two values could in principle both
			// reach n-t only if 2(n-t) ≤ n, impossible; so unique).
			v := s.tallyVals[i]
			s.rt.SendAll(s.inst, msgPropose, wire.NewWriterCap(len(v.Data)+12).Int(phase).Blob(v.encode()).Bytes())
			break
		}
	}
	s.rt.After(s.delta, func() { s.endProposeRound(phase) })
}

func (s *SBA) endProposeRound(phase int) {
	s.tally(roundIndex(phase, msgPropose))
	best, bestCount := -1, 0
	for i, c := range s.tallyCounts {
		if c > bestCount || (c == bestCount && best >= 0 && keyLess(s.tallyVals[i], s.tallyVals[best])) {
			best, bestCount = i, c
		}
	}
	if bestCount > s.t {
		s.x = s.tallyVals[best]
	}
	s.maxProposals = bestCount
	// King round: the phase's king sends its (possibly updated) value.
	if s.rt.ID() == s.king(phase) {
		s.rt.SendAll(s.inst, msgKing, wire.NewWriterCap(len(s.x.Data)+12).Int(phase).Blob(s.x.encode()).Bytes())
	}
	s.rt.After(s.delta, func() { s.endKingRound(phase) })
}

func (s *SBA) endKingRound(phase int) {
	if s.maxProposals < s.n-s.t {
		if kv := s.kingVal[phase]; kv != nil {
			s.x = *kv
		}
	}
	if phase < s.t+1 {
		s.beginPhase(phase + 1)
	} else {
		s.finish()
	}
}

// king returns the king of the given phase. Phases are 1-based and
// phase ≤ t+1 ≤ n, so the assignment is injective.
func (s *SBA) king(phase int) int { return phase }

func (s *SBA) finish() {
	if s.outputSet {
		return
	}
	s.outputSet = true
	s.output = s.x
	if s.onOutput != nil {
		s.onOutput(s.x)
	}
}

// Deliver implements proto.Handler.
func (s *SBA) Deliver(from int, msgType uint8, body []byte) {
	if from < 1 || from > s.n {
		return
	}
	r := wire.NewReader(body)
	phase := r.Int()
	enc := r.BlobRef()
	if r.Done() != nil || phase < 1 || phase > s.t+1 {
		return
	}
	v, ok := decodeValue(enc)
	if !ok {
		return
	}
	switch msgType {
	case msgValue, msgPropose:
		idx := roundIndex(phase, msgType)
		if s.values[idx] == nil {
			s.values[idx] = make([]Value, s.n+1)
			s.seen[idx] = make([]bool, s.n+1)
		}
		if !s.seen[idx][from] {
			s.seen[idx][from] = true
			s.values[idx][from] = v
		}
	case msgKing:
		if from != s.king(phase) {
			return
		}
		if s.kingVal[phase] == nil {
			s.kingVal[phase] = &v
		}
	}
}
