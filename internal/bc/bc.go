// Package bc implements ΠBC (Fig 1, Theorem 3.5): synchronous broadcast
// with asynchronous fallback guarantees, obtained by stitching Bracha's
// Acast with the phase-king SBA.
//
// The sender S Acasts its message at the instance's structural start
// time T0. At local time T0 + 3Δ every party joins an SBA instance with
// input equal to the Acast output so far (⊥ if none). At local time
// TBC = T0 + 3Δ + TSBA each party fixes its regular-mode output: m* if
// m* was received from the Acast AND the SBA output equals m*, else ⊥.
// Parties keep participating; a party whose regular-mode output was ⊥
// switches to m* if the Acast later delivers m* (fallback mode).
//
// Every ΠBC instance in this repository has a structurally fixed start
// time known to all parties (the paper's "wait until the local time is
// a multiple of Δ" discipline), so the embedded SBA's clock-paced
// rounds are aligned. A sender that starts late simply misses the
// regular-mode window and is caught by fallback mode, which is exactly
// the behaviour the VSS acceptance deadlines rely on (Lemma 4.4).
package bc

import (
	"repro/internal/acast"
	"repro/internal/proto"
	"repro/internal/sba"
	"repro/internal/sim"
)

// Deadline returns TBC - T0 = 3Δ + TSBA for threshold t.
func Deadline(t int, delta sim.Time) sim.Time {
	return 3*delta + sba.Deadline(t, delta)
}

// BC is one party's state in a ΠBC instance.
type BC struct {
	rt     *proto.Runtime
	inst   string
	sender int
	t      int
	delta  sim.Time
	start  sim.Time

	ac  *acast.Acast
	sb  *sba.SBA
	sbO *sba.Value // SBA output once available

	regularDone bool
	regular     []byte // nil = ⊥
	fellBack    bool
	noFallback  bool

	onRegular  func(m []byte) // m == nil means ⊥; fires exactly once at TBC
	onFallback func(m []byte) // fires at most once, only after a ⊥ regular output
}

// New registers a ΠBC instance with structural start time start
// (absolute). Both callbacks may be nil.
func New(rt *proto.Runtime, inst string, sender, t int, delta sim.Time, start sim.Time, onRegular, onFallback func([]byte)) *BC {
	b := &BC{
		rt:         rt,
		inst:       inst,
		sender:     sender,
		t:          t,
		delta:      delta,
		start:      start,
		onRegular:  onRegular,
		onFallback: onFallback,
	}
	b.ac = acast.New(rt, proto.Join(inst, "acast"), sender, t, func(m []byte) { b.onAcast(m) })
	rt.At(start+3*delta, func() { b.joinSBA() })
	return b
}

// Broadcast initiates the broadcast (sender only). Honest senders call
// it at the structural start time.
func (b *BC) Broadcast(m []byte) { b.ac.Broadcast(m) }

// DisableFallback turns off fallback-mode output switching, degrading
// ΠBC to a purely synchronous broadcast (baseline/ablation mode).
func (b *BC) DisableFallback() { b.noFallback = true }

// Output returns the current output and whether it came from the
// regular mode window. Before TBC it returns (nil, false, false).
func (b *BC) Output() (m []byte, decided bool, fellBack bool) {
	if !b.regularDone {
		return nil, false, false
	}
	return b.regular, true, b.fellBack
}

func (b *BC) onAcast(m []byte) {
	// Fallback mode: only parties whose regular-mode output was ⊥ adopt
	// the Acast output after the deadline.
	if b.regularDone && b.regular == nil && !b.fellBack && !b.noFallback {
		b.adoptFallback(m)
	}
}

func (b *BC) adoptFallback(m []byte) {
	b.fellBack = true
	b.regular = m
	if b.onFallback != nil {
		b.onFallback(m)
	}
}

func (b *BC) joinSBA() {
	input := sba.Bot()
	if b.ac.Delivered() {
		input = sba.Val(b.ac.Output())
	}
	// The SBA produces its output at exactly T0 + 3Δ + TSBA = TBC; the
	// regular-mode decision happens in the same event, immediately after.
	b.sb = sba.New(b.rt, proto.Join(b.inst, "sba"), b.t, b.delta, b.rt.Now(), input, func(v sba.Value) {
		b.sbO = &v
		b.fixRegular()
	})
}

func (b *BC) fixRegular() {
	b.regularDone = true
	b.regular = nil
	if b.ac.Delivered() && b.sbO != nil && !b.sbO.Bot {
		if string(b.sbO.Data) == string(b.ac.Output()) {
			b.regular = b.ac.Output()
		}
	}
	if b.onRegular != nil {
		b.onRegular(b.regular)
	}
	// The Acast may already have delivered a value the SBA did not
	// confirm; in that case fallback applies immediately.
	if b.regular == nil && b.ac.Delivered() && !b.noFallback {
		b.adoptFallback(b.ac.Output())
	}
}
