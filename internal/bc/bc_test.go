package bc

import (
	"bytes"
	"testing"

	"repro/internal/adversary"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/wire"
)

func cfg() proto.Config { return proto.Config{N: 8, Ts: 2, Ta: 1, Delta: 10} }

type result struct {
	regular    []byte
	regularAt  sim.Time
	hasRegular bool
	fallback   []byte
	fallbackAt sim.Time
	hasFB      bool
}

type harness struct {
	w   *proto.World
	bcs []*BC
	res []result
}

func newHarness(w *proto.World, sender, t int) *harness {
	h := &harness{w: w, bcs: make([]*BC, w.Cfg.N+1), res: make([]result, w.Cfg.N+1)}
	for i := 1; i <= w.Cfg.N; i++ {
		i := i
		h.bcs[i] = New(w.Runtimes[i], "bc", sender, t, w.Cfg.Delta, 0,
			func(m []byte) {
				h.res[i].regular = m
				h.res[i].regularAt = w.Sched.Now()
				h.res[i].hasRegular = true
			},
			func(m []byte) {
				h.res[i].fallback = m
				h.res[i].fallbackAt = w.Sched.Now()
				h.res[i].hasFB = true
			})
	}
	return h
}

func TestSyncHonestSenderValidity(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Sync, Seed: seed})
		h := newHarness(w, 3, w.Cfg.Ts)
		msg := []byte("broadcast me")
		h.bcs[3].Broadcast(msg)
		w.RunToQuiescence()
		deadline := Deadline(w.Cfg.Ts, w.Cfg.Delta)
		for i := 1; i <= 8; i++ {
			r := h.res[i]
			if !r.hasRegular || !bytes.Equal(r.regular, msg) {
				t.Fatalf("seed %d: party %d regular output %q, want %q", seed, i, r.regular, msg)
			}
			if r.regularAt != deadline {
				t.Fatalf("seed %d: party %d regular at %d, want TBC=%d", seed, i, r.regularAt, deadline)
			}
			if r.hasFB {
				t.Fatalf("seed %d: party %d fallback fired for honest sync sender", seed, i)
			}
		}
	}
}

func TestSyncLivenessEvenWithSilentSender(t *testing.T) {
	// Theorem 3.5 sync (a): liveness — output (possibly ⊥) at TBC.
	ctrl := adversary.NewController().Set(5, adversary.Silent())
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: cfg(), Network: proto.Sync, Seed: 1, Corrupt: []int{5}, Interceptor: ctrl,
	})
	h := newHarness(w, 5, w.Cfg.Ts)
	h.bcs[5].Broadcast([]byte("dropped"))
	w.RunToQuiescence()
	for i := 1; i <= 8; i++ {
		if w.IsCorrupt(i) {
			continue
		}
		r := h.res[i]
		if !r.hasRegular {
			t.Fatalf("party %d has no regular output (liveness violated)", i)
		}
		if r.regular != nil {
			t.Fatalf("party %d output %q from a silent sender", i, r.regular)
		}
	}
}

func TestSyncConsistencyEquivocatingSender(t *testing.T) {
	// Corrupt S equivocates at the Acast SEND layer; all honest parties
	// must produce the same regular output at TBC.
	for seed := uint64(0); seed < 5; seed++ {
		m1 := wire.NewWriter().Blob([]byte("m1")).Bytes()
		m2 := wire.NewWriter().Blob([]byte("m2")).Bytes()
		ctrl := adversary.NewController().Set(2, adversary.Mutate(adversary.MutateSpec{
			Match: func(env sim.Envelope) bool { return env.Type == 1 && env.Inst == "bc/acast" },
			Rewrite: func(env sim.Envelope) []byte {
				if env.To%2 == 0 {
					return m1
				}
				return m2
			},
		}))
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: cfg(), Network: proto.Sync, Seed: seed, Corrupt: []int{2}, Interceptor: ctrl,
		})
		h := newHarness(w, 2, w.Cfg.Ts)
		h.bcs[2].Broadcast([]byte("x"))
		w.RunToQuiescence()
		var ref *result
		for i := 1; i <= 8; i++ {
			if w.IsCorrupt(i) {
				continue
			}
			r := h.res[i]
			if !r.hasRegular {
				t.Fatalf("seed %d: party %d missing regular output", seed, i)
			}
			if ref == nil {
				ref = &r
			} else if !bytes.Equal(ref.regular, r.regular) {
				t.Fatalf("seed %d: consistency violated: %q vs %q", seed, ref.regular, r.regular)
			}
		}
	}
}

func TestSyncFallbackConsistencyLateSender(t *testing.T) {
	// Corrupt sender starts broadcasting *late* (delays its Acast SEND
	// beyond the SBA join), so regular mode yields ⊥, then the Acast
	// completes and fallback delivers to everyone within 2Δ of the
	// first fallback output (Theorem 3.5 sync (d)).
	delay := 30 * sim.Time(10) // 30Δ: way past TBC
	ctrl := adversary.NewController().Set(4, adversary.DelayMatching(
		adversary.InstanceContains("acast"), delay))
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: cfg(), Network: proto.Sync, Seed: 2, Corrupt: []int{4}, Interceptor: ctrl,
	})
	h := newHarness(w, 4, w.Cfg.Ts)
	h.bcs[4].Broadcast([]byte("late"))
	w.RunToQuiescence()
	var minFB, maxFB sim.Time
	for i := 1; i <= 8; i++ {
		if w.IsCorrupt(i) {
			continue
		}
		r := h.res[i]
		if !r.hasRegular || r.regular != nil && !r.hasFB {
			// regular must have been ⊥ at TBC
		}
		if !r.hasFB || !bytes.Equal(r.fallback, []byte("late")) {
			t.Fatalf("party %d fallback %q, want 'late'", i, r.fallback)
		}
		if minFB == 0 || r.fallbackAt < minFB {
			minFB = r.fallbackAt
		}
		if r.fallbackAt > maxFB {
			maxFB = r.fallbackAt
		}
	}
	if maxFB-minFB > 2*w.Cfg.Delta {
		t.Fatalf("fallback straggler gap %d > 2Δ", maxFB-minFB)
	}
	if minFB <= Deadline(w.Cfg.Ts, w.Cfg.Delta) {
		t.Fatalf("fallback fired before TBC: %d", minFB)
	}
}

func TestAsyncWeakValidityAndFallback(t *testing.T) {
	// Async network, honest sender: every honest party outputs m or ⊥
	// at TBC through regular mode; ⊥-parties eventually get m through
	// fallback (Theorem 3.5 async (b,c)).
	sawFallback := false
	for seed := uint64(0); seed < 12; seed++ {
		w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Async, Seed: seed})
		h := newHarness(w, 1, w.Cfg.Ts)
		msg := []byte("async msg")
		h.bcs[1].Broadcast(msg)
		w.RunToQuiescence()
		for i := 1; i <= 8; i++ {
			r := h.res[i]
			if !r.hasRegular {
				t.Fatalf("seed %d: party %d missing regular output", seed, i)
			}
			if r.regular != nil && !bytes.Equal(r.regular, msg) {
				t.Fatalf("seed %d: party %d weak validity violated: %q", seed, i, r.regular)
			}
			final := r.regular
			if r.hasFB {
				sawFallback = true
				final = r.fallback
			}
			if !bytes.Equal(final, msg) {
				t.Fatalf("seed %d: party %d final output %q, want %q (fallback validity)", seed, i, final, msg)
			}
		}
	}
	if !sawFallback {
		t.Log("note: no async run exercised the fallback path (regular mode always succeeded)")
	}
}

func TestAsyncWeakConsistency(t *testing.T) {
	// Async + corrupt equivocating sender: all honest non-⊥ outputs
	// (regular or fallback) must agree (Theorem 3.5 async (d,e)).
	for seed := uint64(0); seed < 10; seed++ {
		m1 := wire.NewWriter().Blob([]byte("w1")).Bytes()
		m2 := wire.NewWriter().Blob([]byte("w2")).Bytes()
		ctrl := adversary.NewController().Set(2, adversary.Mutate(adversary.MutateSpec{
			Match: func(env sim.Envelope) bool { return env.Type == 1 && env.Inst == "bc/acast" },
			Rewrite: func(env sim.Envelope) []byte {
				if env.To <= 4 {
					return m1
				}
				return m2
			},
		}))
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: cfg(), Network: proto.Async, Seed: seed, Corrupt: []int{2}, Interceptor: ctrl,
		})
		h := newHarness(w, 2, w.Cfg.Ts)
		h.bcs[2].Broadcast([]byte("x"))
		w.RunToQuiescence()
		var nonBot [][]byte
		for i := 1; i <= 8; i++ {
			if w.IsCorrupt(i) {
				continue
			}
			r := h.res[i]
			final := r.regular
			if r.hasFB {
				final = r.fallback
			}
			if final != nil {
				nonBot = append(nonBot, final)
			}
		}
		for _, v := range nonBot {
			if !bytes.Equal(v, nonBot[0]) {
				t.Fatalf("seed %d: weak consistency violated: %q vs %q", seed, nonBot[0], v)
			}
		}
	}
}

func TestCommunicationIsQuadratic(t *testing.T) {
	run := func(n, ts int) uint64 {
		c := proto.Config{N: n, Ts: ts, Ta: 0, Delta: 10}
		w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 4})
		h := newHarness(w, 1, ts)
		h.bcs[1].Broadcast(make([]byte, 32))
		w.RunToQuiescence()
		return w.Metrics().HonestMessages()
	}
	m8, m16 := run(8, 2), run(16, 5)
	ratio := float64(m16) / float64(m8)
	if ratio < 3 || ratio > 25 {
		t.Fatalf("scaling ratio %f out of band (m8=%d m16=%d)", ratio, m8, m16)
	}
}
