// Package adversary implements the Byzantine behaviour library used by
// the integration tests and benchmarks: message dropping, crashing,
// equivocation, payload corruption, and targeted delays, all expressed
// as interceptors over corrupt parties' outgoing traffic.
//
// The static adversary of the paper is modelled as (i) a set of corrupt
// party indices, (ii) an Interceptor rewriting those parties' sends, and
// (iii) for asynchronous runs, control of the delivery schedule via
// sim.Policy (e.g. sim.StarvePolicy).
package adversary

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Behavior maps an outgoing envelope of a corrupt party to the
// deliveries that actually happen.
type Behavior func(now sim.Time, env sim.Envelope) []sim.Delivery

// pass delivers the envelope unchanged.
func pass(env sim.Envelope) []sim.Delivery { return []sim.Delivery{{Env: env}} }

// Controller routes each corrupt party's traffic through its configured
// behaviour. Parties without an entry behave honestly (semi-honest
// corruption: they follow the protocol but the adversary reads their
// state).
type Controller struct {
	perParty map[int]Behavior
}

// NewController returns an empty controller.
func NewController() *Controller {
	return &Controller{perParty: make(map[int]Behavior)}
}

// Set assigns a behaviour to party i, returning the controller for
// chaining. Assigning a party twice panics: a second Set used to
// silently discard the first behaviour (so e.g. a silent-and-garbling
// party quietly became garbling-only); composition must be explicit via
// Compose.
func (c *Controller) Set(i int, b Behavior) *Controller {
	if _, dup := c.perParty[i]; dup {
		panic(fmt.Sprintf("adversary: party %d already has a behaviour; use Compose to stack behaviours", i))
	}
	c.perParty[i] = b
	return c
}

// Compose stacks b onto party i's existing behaviour (Chain semantics:
// drops propagate, extra delays accumulate); on a fresh party it is
// equivalent to Set.
func (c *Controller) Compose(i int, b Behavior) *Controller {
	if prev, ok := c.perParty[i]; ok {
		c.perParty[i] = Chain(prev, b)
		return c
	}
	c.perParty[i] = b
	return c
}

// Intercept implements sim.Interceptor.
func (c *Controller) Intercept(now sim.Time, env sim.Envelope) []sim.Delivery {
	if b, ok := c.perParty[env.From]; ok && b != nil {
		return b(now, env)
	}
	return pass(env)
}

// Honest is the identity behaviour.
func Honest() Behavior {
	return func(_ sim.Time, env sim.Envelope) []sim.Delivery { return pass(env) }
}

// Silent drops every message: a party that crashed before the protocol
// started (or never invokes its dealer role).
func Silent() Behavior {
	return func(sim.Time, sim.Envelope) []sim.Delivery { return nil }
}

// CrashAt drops messages sent at or after the given time.
func CrashAt(t sim.Time) Behavior {
	return func(now sim.Time, env sim.Envelope) []sim.Delivery {
		if now >= t {
			return nil
		}
		return pass(env)
	}
}

// DropMatching drops messages whose instance path satisfies match.
func DropMatching(match func(inst string) bool) Behavior {
	return func(_ sim.Time, env sim.Envelope) []sim.Delivery {
		if match(env.Inst) {
			return nil
		}
		return pass(env)
	}
}

// InstanceHasPrefix builds a matcher on instance path prefixes.
func InstanceHasPrefix(prefix string) func(string) bool {
	return func(inst string) bool { return strings.HasPrefix(inst, prefix) }
}

// InstanceContains builds a matcher on instance path substrings.
func InstanceContains(sub string) func(string) bool {
	return func(inst string) bool { return strings.Contains(inst, sub) }
}

// MutateBody rewrites the payload of matching messages. The mutator
// receives the recipient, so equivocation (different payloads to
// different parties) is expressible. Returning nil drops the message.
type MutateSpec struct {
	// Match selects affected messages; nil matches everything.
	Match func(env sim.Envelope) bool
	// Rewrite returns the replacement payload, or nil to drop.
	Rewrite func(env sim.Envelope) []byte
}

// Mutate applies the first matching spec to each message.
func Mutate(specs ...MutateSpec) Behavior {
	return func(_ sim.Time, env sim.Envelope) []sim.Delivery {
		for _, s := range specs {
			if s.Match != nil && !s.Match(env) {
				continue
			}
			body := s.Rewrite(env)
			if body == nil {
				return nil
			}
			out := env
			out.Body = body
			return pass(out)
		}
		return pass(env)
	}
}

// GarbleMatching flips bytes in the payloads of matching messages,
// producing undecodable junk that receivers must reject.
func GarbleMatching(match func(inst string) bool) Behavior {
	return func(_ sim.Time, env sim.Envelope) []sim.Delivery {
		if !match(env.Inst) || len(env.Body) == 0 {
			return pass(env)
		}
		out := env
		out.Body = make([]byte, len(env.Body))
		copy(out.Body, env.Body)
		for i := range out.Body {
			out.Body[i] ^= 0xa5
		}
		return pass(out)
	}
}

// Equivocate flips the payload bytes of messages to the recipients
// selected by split, leaving the other recipients' copies untouched:
// the classic tell-half-the-parties-something-else equivocation, built
// so that both halves still receive *a* message (contrast ToSubset,
// which silences one half).
func Equivocate(split func(to int) bool) Behavior {
	return func(_ sim.Time, env sim.Envelope) []sim.Delivery {
		if !split(env.To) || len(env.Body) == 0 {
			return pass(env)
		}
		out := env
		out.Body = make([]byte, len(env.Body))
		for i, b := range env.Body {
			out.Body[i] = b ^ 0x5a
		}
		return pass(out)
	}
}

// DelayMatching adds extra delay to matching messages (withhold-then-
// release attacks within the eventual-delivery contract).
func DelayMatching(match func(inst string) bool, extra sim.Time) Behavior {
	return func(_ sim.Time, env sim.Envelope) []sim.Delivery {
		if !match(env.Inst) {
			return pass(env)
		}
		return []sim.Delivery{{Env: env, DelayExtra: extra}}
	}
}

// ToSubset delivers matching messages only to the given recipients,
// dropping the rest (a classic equivocation building block: tell half
// the parties one thing, the other half nothing).
func ToSubset(match func(inst string) bool, allowed map[int]bool) Behavior {
	return func(_ sim.Time, env sim.Envelope) []sim.Delivery {
		if match(env.Inst) && !allowed[env.To] {
			return nil
		}
		return pass(env)
	}
}

// Chain applies behaviours in order: the output envelopes of one stage
// feed the next (drops propagate, extra delays accumulate).
func Chain(bs ...Behavior) Behavior {
	return func(now sim.Time, env sim.Envelope) []sim.Delivery {
		current := []sim.Delivery{{Env: env}}
		for _, b := range bs {
			var next []sim.Delivery
			for _, d := range current {
				if d.Drop {
					continue
				}
				for _, nd := range b(now, d.Env) {
					nd.DelayExtra += d.DelayExtra
					next = append(next, nd)
				}
			}
			current = next
		}
		return current
	}
}
