package adversary

import (
	"testing"

	"repro/internal/sim"
)

func env(from, to int, inst string, body []byte) sim.Envelope {
	return sim.Envelope{From: from, To: to, Inst: inst, Type: 1, Body: body}
}

func deliveredBodies(ds []sim.Delivery) [][]byte {
	var out [][]byte
	for _, d := range ds {
		if !d.Drop {
			out = append(out, d.Env.Body)
		}
	}
	return out
}

func TestControllerDefaultsToHonest(t *testing.T) {
	c := NewController()
	ds := c.Intercept(0, env(1, 2, "x", []byte{1}))
	if len(ds) != 1 || ds[0].Env.Body[0] != 1 {
		t.Fatalf("default behaviour mutated traffic: %+v", ds)
	}
}

func TestHonestAndSilent(t *testing.T) {
	c := NewController().Set(1, Honest()).Set(2, Silent())
	if got := c.Intercept(0, env(1, 3, "x", nil)); len(got) != 1 {
		t.Fatal("Honest dropped a message")
	}
	if got := c.Intercept(0, env(2, 3, "x", nil)); len(got) != 0 {
		t.Fatal("Silent delivered a message")
	}
}

func TestCrashAt(t *testing.T) {
	c := NewController().Set(1, CrashAt(100))
	if got := c.Intercept(99, env(1, 2, "x", nil)); len(got) != 1 {
		t.Fatal("pre-crash message dropped")
	}
	if got := c.Intercept(100, env(1, 2, "x", nil)); len(got) != 0 {
		t.Fatal("post-crash message delivered")
	}
}

func TestDropMatching(t *testing.T) {
	c := NewController().Set(1, DropMatching(InstanceHasPrefix("vss/")))
	if got := c.Intercept(0, env(1, 2, "vss/3", nil)); len(got) != 0 {
		t.Fatal("matching message delivered")
	}
	if got := c.Intercept(0, env(1, 2, "ba/3", nil)); len(got) != 1 {
		t.Fatal("non-matching message dropped")
	}
}

func TestInstanceMatchers(t *testing.T) {
	if !InstanceHasPrefix("a/")("a/b") || InstanceHasPrefix("a/")("b/a") {
		t.Fatal("InstanceHasPrefix wrong")
	}
	if !InstanceContains("wps")("vss/1/wps/2") || InstanceContains("wps")("vss/1") {
		t.Fatal("InstanceContains wrong")
	}
}

func TestMutateEquivocation(t *testing.T) {
	b := Mutate(MutateSpec{
		Match: func(e sim.Envelope) bool { return e.Inst == "x" },
		Rewrite: func(e sim.Envelope) []byte {
			return []byte{byte(e.To)}
		},
	})
	d2 := b(0, env(1, 2, "x", []byte{9}))
	d3 := b(0, env(1, 3, "x", []byte{9}))
	if d2[0].Env.Body[0] != 2 || d3[0].Env.Body[0] != 3 {
		t.Fatal("per-recipient equivocation failed")
	}
	// Non-matching instance passes through.
	d := b(0, env(1, 2, "y", []byte{9}))
	if d[0].Env.Body[0] != 9 {
		t.Fatal("non-matching message rewritten")
	}
}

func TestMutateDropViaNil(t *testing.T) {
	b := Mutate(MutateSpec{Rewrite: func(sim.Envelope) []byte { return nil }})
	if got := b(0, env(1, 2, "x", []byte{1})); len(got) != 0 {
		t.Fatal("nil rewrite should drop")
	}
}

func TestGarbleMatching(t *testing.T) {
	b := GarbleMatching(func(string) bool { return true })
	orig := []byte{1, 2, 3}
	ds := b(0, env(1, 2, "x", orig))
	if string(ds[0].Env.Body) == string(orig) {
		t.Fatal("garble did not change payload")
	}
	if orig[0] != 1 {
		t.Fatal("garble mutated the original slice")
	}
	// Empty payloads pass through unchanged.
	ds = b(0, env(1, 2, "x", nil))
	if len(ds) != 1 || ds[0].Env.Body != nil {
		t.Fatal("empty payload mishandled")
	}
}

func TestDelayMatching(t *testing.T) {
	b := DelayMatching(InstanceHasPrefix("slow/"), 500)
	ds := b(0, env(1, 2, "slow/x", nil))
	if ds[0].DelayExtra != 500 {
		t.Fatalf("extra delay = %d", ds[0].DelayExtra)
	}
	ds = b(0, env(1, 2, "fast/x", nil))
	if ds[0].DelayExtra != 0 {
		t.Fatal("unmatched message delayed")
	}
}

func TestToSubset(t *testing.T) {
	b := ToSubset(func(string) bool { return true }, map[int]bool{2: true})
	if got := b(0, env(1, 2, "x", nil)); len(got) != 1 {
		t.Fatal("allowed recipient dropped")
	}
	if got := b(0, env(1, 3, "x", nil)); len(got) != 0 {
		t.Fatal("disallowed recipient delivered")
	}
}

func TestChainComposition(t *testing.T) {
	// Delay then drop-by-instance: drops propagate, delays accumulate.
	b := Chain(
		DelayMatching(func(string) bool { return true }, 10),
		DelayMatching(func(string) bool { return true }, 5),
	)
	ds := b(0, env(1, 2, "x", nil))
	if len(ds) != 1 || ds[0].DelayExtra != 15 {
		t.Fatalf("chained delays = %+v", ds)
	}
	b2 := Chain(Silent(), DelayMatching(func(string) bool { return true }, 5))
	if got := b2(0, env(1, 2, "x", nil)); len(got) != 0 {
		t.Fatal("chained silent leaked a message")
	}
}

func TestSetDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("second Set on the same party did not panic")
		}
	}()
	NewController().Set(1, Silent()).Set(1, Honest())
}

func TestComposeChainsBehaviours(t *testing.T) {
	// delay(vss, 50) then drop(ba): both behaviours stay active, which
	// Set used to silently lose (last assignment won).
	c := NewController().
		Compose(1, DelayMatching(InstanceHasPrefix("vss/"), 50)).
		Compose(1, DropMatching(InstanceHasPrefix("ba/")))
	if got := c.Intercept(0, env(1, 2, "ba/1", nil)); len(got) != 0 {
		t.Fatalf("drop stage lost after composition: %+v", got)
	}
	got := c.Intercept(0, env(1, 2, "vss/1", nil))
	if len(got) != 1 || got[0].DelayExtra != 50 {
		t.Fatalf("delay stage lost after composition: %+v", got)
	}
	if got := c.Intercept(0, env(1, 2, "acs/1", nil)); len(got) != 1 || got[0].DelayExtra != 0 {
		t.Fatalf("unmatched traffic mangled: %+v", got)
	}
}

func TestComposeSilentWins(t *testing.T) {
	// A party that is both silent and garbling must stay silent — the
	// exact combination the old Set overwrote to garbling-only.
	c := NewController().
		Compose(3, Silent()).
		Compose(3, GarbleMatching(func(string) bool { return true }))
	if got := c.Intercept(0, env(3, 1, "x", []byte{7})); len(got) != 0 {
		t.Fatalf("silent party delivered after composing garble: %+v", got)
	}
}

func TestEquivocate(t *testing.T) {
	b := Equivocate(func(to int) bool { return to > 2 })
	hi := b(0, env(1, 3, "x", []byte{0x00, 0xff}))
	if len(hi) != 1 || hi[0].Env.Body[0] != 0x5a || hi[0].Env.Body[1] != 0xa5 {
		t.Fatalf("selected recipient got unflipped payload: %+v", hi)
	}
	orig := []byte{0x00, 0xff}
	lo := b(0, env(1, 2, "x", orig))
	if len(lo) != 1 || lo[0].Env.Body[0] != 0x00 || lo[0].Env.Body[1] != 0xff {
		t.Fatalf("unselected recipient's payload mutated: %+v", lo)
	}
	if orig[0] != 0x00 {
		t.Fatal("Equivocate mutated the original payload in place")
	}
}
