package graph

import (
	"math/rand/v2"
	"testing"
)

func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0xabcdef))
}

func TestBasicOps(t *testing.T) {
	g := New(5)
	if !g.AddEdge(1, 2) {
		t.Fatal("AddEdge returned false for new edge")
	}
	if g.AddEdge(1, 2) || g.AddEdge(2, 1) {
		t.Fatal("duplicate edge reported as new")
	}
	if g.AddEdge(3, 3) {
		t.Fatal("self-loop reported as added")
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("edge not symmetric")
	}
	if g.HasEdge(1, 3) {
		t.Fatal("phantom edge")
	}
	g.AddEdge(1, 3)
	if g.Degree(1) != 2 || g.Degree(2) != 1 || g.Degree(4) != 0 {
		t.Fatal("wrong degrees")
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	if g.EdgeCount() != 2 {
		t.Fatalf("EdgeCount = %d, want 2", g.EdgeCount())
	}
	g.RemoveVertexEdges(1)
	if g.Degree(1) != 0 || g.HasEdge(1, 2) {
		t.Fatal("RemoveVertexEdges failed")
	}
}

func TestDegreeWithin(t *testing.T) {
	g := New(6)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(1, 6)
	if got := g.DegreeWithin(1, []int{1, 2, 3, 4}); got != 2 {
		t.Fatalf("DegreeWithin = %d, want 2", got)
	}
}

func TestIsClique(t *testing.T) {
	g := New(5)
	for _, e := range [][2]int{{1, 2}, {1, 3}, {2, 3}} {
		g.AddEdge(e[0], e[1])
	}
	if !g.IsClique([]int{1, 2, 3}) {
		t.Fatal("triangle not recognised as clique")
	}
	if g.IsClique([]int{1, 2, 4}) {
		t.Fatal("non-clique accepted")
	}
	if !g.IsClique([]int{5}) || !g.IsClique(nil) {
		t.Fatal("trivial cliques rejected")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(4)
	g.AddEdge(1, 2)
	c := g.Clone()
	c.AddEdge(3, 4)
	if g.HasEdge(3, 4) {
		t.Fatal("clone shares storage with original")
	}
	if !c.HasEdge(1, 2) {
		t.Fatal("clone missing original edge")
	}
}

func TestVertexRangePanics(t *testing.T) {
	g := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range vertex should panic")
		}
	}()
	g.AddEdge(0, 1)
}

func matchingSize(m map[int]int) int { return len(m) / 2 }

func checkMatching(t *testing.T, g *Graph, verts []int, m map[int]int) {
	t.Helper()
	for v, u := range m {
		if m[u] != v {
			t.Fatalf("matching not symmetric at %d-%d", v, u)
		}
		if !g.HasEdge(v, u) {
			t.Fatalf("matched pair %d-%d is not an edge", v, u)
		}
	}
}

func TestMatchingPath(t *testing.T) {
	// Path 1-2-3-4: maximum matching has 2 edges.
	g := New(4)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	m := g.MaximumMatching([]int{1, 2, 3, 4})
	checkMatching(t, g, nil, m)
	if matchingSize(m) != 2 {
		t.Fatalf("path matching size = %d, want 2", matchingSize(m))
	}
}

func TestMatchingOddCycle(t *testing.T) {
	// Triangle: maximum matching = 1 edge. Blossom case.
	g := New(3)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	m := g.MaximumMatching([]int{1, 2, 3})
	checkMatching(t, g, nil, m)
	if matchingSize(m) != 1 {
		t.Fatalf("triangle matching size = %d, want 1", matchingSize(m))
	}
}

func TestMatchingPetersenLike(t *testing.T) {
	// 5-cycle with a pendant forcing blossom augmentation:
	// cycle 1-2-3-4-5-1 plus edge 5-6.
	g := New(6)
	for _, e := range [][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 1}, {5, 6}} {
		g.AddEdge(e[0], e[1])
	}
	m := g.MaximumMatching([]int{1, 2, 3, 4, 5, 6})
	checkMatching(t, g, nil, m)
	if matchingSize(m) != 3 {
		t.Fatalf("matching size = %d, want 3", matchingSize(m))
	}
}

func TestMatchingEmptyAndSingle(t *testing.T) {
	g := New(3)
	if m := g.MaximumMatching([]int{1, 2, 3}); len(m) != 0 {
		t.Fatal("matching in empty graph should be empty")
	}
	if m := g.MaximumMatching([]int{2}); len(m) != 0 {
		t.Fatal("single-vertex matching should be empty")
	}
	if m := g.MaximumMatching(nil); len(m) != 0 {
		t.Fatal("nil verts matching should be empty")
	}
}

// bruteMaxMatching finds the true maximum matching size by brute force
// over edge subsets (small graphs only).
func bruteMaxMatching(g *Graph, verts []int) int {
	var edges [][2]int
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			if g.HasEdge(verts[i], verts[j]) {
				edges = append(edges, [2]int{verts[i], verts[j]})
			}
		}
	}
	best := 0
	var rec func(idx int, used map[int]bool, size int)
	rec = func(idx int, used map[int]bool, size int) {
		if size > best {
			best = size
		}
		if idx >= len(edges) {
			return
		}
		// prune: even taking all remaining can't beat best
		if size+(len(edges)-idx) <= best {
			return
		}
		rec(idx+1, used, size)
		e := edges[idx]
		if !used[e[0]] && !used[e[1]] {
			used[e[0]], used[e[1]] = true, true
			rec(idx+1, used, size+1)
			used[e[0]], used[e[1]] = false, false
		}
	}
	rec(0, map[int]bool{}, 0)
	return best
}

func TestMatchingAgainstBruteForce(t *testing.T) {
	r := rng(1)
	for trial := 0; trial < 120; trial++ {
		n := 4 + r.IntN(6) // up to 9 vertices
		g := New(n)
		verts := make([]int, n)
		for i := range verts {
			verts[i] = i + 1
		}
		p := 0.2 + 0.6*r.Float64()
		for i := 1; i <= n; i++ {
			for j := i + 1; j <= n; j++ {
				if r.Float64() < p {
					g.AddEdge(i, j)
				}
			}
		}
		m := g.MaximumMatching(verts)
		checkMatching(t, g, verts, m)
		want := bruteMaxMatching(g, verts)
		if matchingSize(m) != want {
			t.Fatalf("trial %d (n=%d): blossom found %d, brute force %d", trial, n, matchingSize(m), want)
		}
	}
}

func TestMatchingOnSubset(t *testing.T) {
	g := New(6)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	g.AddEdge(5, 6)
	m := g.MaximumMatching([]int{1, 2, 3}) // edge 3-4 outside subset
	checkMatching(t, g, nil, m)
	if matchingSize(m) != 1 {
		t.Fatalf("subset matching size = %d, want 1", matchingSize(m))
	}
	if _, ok := m[4]; ok {
		t.Fatal("vertex outside subset matched")
	}
}

func TestStarValidate(t *testing.T) {
	g := New(4)
	for _, e := range [][2]int{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}} {
		g.AddEdge(e[0], e[1])
	}
	s := Star{E: []int{1, 2}, F: []int{1, 2, 3, 4}}
	if !s.Validate(g, 4, 1) {
		t.Fatal("valid star rejected")
	}
	// E not subset of F.
	if (Star{E: []int{1}, F: []int{2, 3, 4}}).Validate(g, 4, 1) {
		t.Fatal("E ⊄ F accepted")
	}
	// Missing edge 3-4 between E and F members.
	if (Star{E: []int{3, 4}, F: []int{1, 2, 3, 4}}).Validate(g, 4, 1) {
		t.Fatal("star with missing edge accepted")
	}
	// Too small.
	if (Star{E: []int{1, 2}, F: []int{1, 2}}).Validate(g, 4, 1) {
		t.Fatal("undersized F accepted")
	}
}

func TestFindStarCompleteGraph(t *testing.T) {
	n, tt := 7, 2
	g := New(n)
	verts := make([]int, n)
	for i := 1; i <= n; i++ {
		verts[i-1] = i
		for j := i + 1; j <= n; j++ {
			g.AddEdge(i, j)
		}
	}
	s, ok := g.FindStar(verts, n, tt)
	if !ok {
		t.Fatal("no star in complete graph")
	}
	if !s.Validate(g, n, tt) {
		t.Fatalf("invalid star %+v", s)
	}
	if len(s.E) != n || len(s.F) != n {
		t.Fatalf("complete graph should give full star, got |E|=%d |F|=%d", len(s.E), len(s.F))
	}
}

func TestFindStarFailsOnSparseGraph(t *testing.T) {
	n, tt := 7, 2
	g := New(n) // no edges at all
	verts := []int{1, 2, 3, 4, 5, 6, 7}
	if _, ok := g.FindStar(verts, n, tt); ok {
		t.Fatal("found star in empty graph")
	}
}

// TestFindStarPlantedClique is the paper's guarantee: whenever the graph
// contains a clique of size ≥ n - t, AlgStar must output a valid star.
func TestFindStarPlantedClique(t *testing.T) {
	r := rng(2)
	for trial := 0; trial < 300; trial++ {
		n := 7 + r.IntN(7) // 7..13
		tt := 1 + r.IntN(n/3)
		if n-tt < 2 {
			continue
		}
		g := New(n)
		verts := make([]int, n)
		for i := range verts {
			verts[i] = i + 1
		}
		// Plant a clique on a random subset of size n-t.
		perm := r.Perm(n)
		clique := make([]int, n-tt)
		for i := range clique {
			clique[i] = perm[i] + 1
		}
		for i := 0; i < len(clique); i++ {
			for j := i + 1; j < len(clique); j++ {
				g.AddEdge(clique[i], clique[j])
			}
		}
		// Random extra edges.
		for i := 1; i <= n; i++ {
			for j := i + 1; j <= n; j++ {
				if r.Float64() < 0.3 {
					g.AddEdge(i, j)
				}
			}
		}
		s, ok := g.FindStar(verts, n, tt)
		if !ok {
			t.Fatalf("trial %d: clique of size %d planted (n=%d t=%d) but no star found", trial, n-tt, n, tt)
		}
		if !s.Validate(g, n, tt) {
			t.Fatalf("trial %d: invalid star returned: %+v", trial, s)
		}
	}
}

// TestFindStarOnInducedSubgraph mirrors the WPS usage: AlgStar runs on
// GD[W] where |W| ≥ n - t but sizes are measured against global n.
func TestFindStarOnInducedSubgraph(t *testing.T) {
	r := rng(3)
	n, tt := 10, 3
	for trial := 0; trial < 100; trial++ {
		g := New(n)
		// W = {1..n-tt} plus possibly some extras; honest clique inside W.
		w := []int{1, 2, 3, 4, 5, 6, 7}
		for i := 0; i < len(w); i++ {
			for j := i + 1; j < len(w); j++ {
				g.AddEdge(w[i], w[j])
			}
		}
		for i := 1; i <= n; i++ {
			for j := i + 1; j <= n; j++ {
				if r.Float64() < 0.2 {
					g.AddEdge(i, j)
				}
			}
		}
		s, ok := g.FindStar(w, n, tt)
		if !ok {
			t.Fatalf("trial %d: no star found on induced subgraph with full clique", trial)
		}
		if !s.Validate(g, n, tt) {
			t.Fatalf("trial %d: invalid star", trial)
		}
		// Star members must come from W.
		inW := map[int]bool{}
		for _, v := range w {
			inW[v] = true
		}
		for _, v := range s.F {
			if !inW[v] {
				t.Fatalf("trial %d: star member %d outside W", trial, v)
			}
		}
	}
}

func BenchmarkFindStar(b *testing.B) {
	r := rng(4)
	n, tt := 16, 5
	g := New(n)
	verts := make([]int, n)
	for i := range verts {
		verts[i] = i + 1
	}
	for i := 1; i <= n-tt; i++ {
		for j := i + 1; j <= n-tt; j++ {
			g.AddEdge(i, j)
		}
	}
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			if r.Float64() < 0.3 {
				g.AddEdge(i, j)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.FindStar(verts, n, tt); !ok {
			b.Fatal("no star")
		}
	}
}
