// Package graph implements the consistency-graph machinery of the VSS
// protocols: undirected graphs over 1-based party indices, Edmonds'
// blossom algorithm for maximum matching in general graphs, and the
// AlgStar procedure of Ben-Or, Canetti and Goldreich (Section 2.1) that
// finds an (n, t)-star whenever the graph contains a clique of size
// at least n - t.
package graph

import (
	"fmt"
	"slices"
)

// Graph is a simple undirected graph over vertices 1..n.
// The zero value is not usable; construct with New.
type Graph struct {
	n   int
	adj [][]bool
}

// New returns an empty graph over vertices 1..n.
func New(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("graph: invalid vertex count %d", n))
	}
	adj := make([][]bool, n+1)
	for i := range adj {
		adj[i] = make([]bool, n+1)
	}
	return &Graph{n: n, adj: adj}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

func (g *Graph) check(v int) {
	if v < 1 || v > g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [1,%d]", v, g.n))
	}
}

// AddEdge inserts the undirected edge (u, v). Self-loops are ignored.
// It reports whether the edge was newly added.
func (g *Graph) AddEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v || g.adj[u][v] {
		return false
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
	return true
}

// RemoveVertexEdges removes every edge incident to v.
func (g *Graph) RemoveVertexEdges(v int) {
	g.check(v)
	for u := 1; u <= g.n; u++ {
		g.adj[v][u] = false
		g.adj[u][v] = false
	}
}

// HasEdge reports whether (u, v) is an edge. HasEdge(v, v) is false.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	return g.adj[u][v]
}

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	d := 0
	for u := 1; u <= g.n; u++ {
		if g.adj[v][u] {
			d++
		}
	}
	return d
}

// DegreeWithin returns the number of neighbours of v inside the set vs.
func (g *Graph) DegreeWithin(v int, vs []int) int {
	g.check(v)
	d := 0
	for _, u := range vs {
		if u != v && g.adj[v][u] {
			d++
		}
	}
	return d
}

// Neighbors returns the sorted neighbour list of v.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	var out []int
	for u := 1; u <= g.n; u++ {
		if g.adj[v][u] {
			out = append(out, u)
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := 1; u <= g.n; u++ {
		copy(c.adj[u], g.adj[u])
	}
	return c
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	c := 0
	for u := 1; u <= g.n; u++ {
		for v := u + 1; v <= g.n; v++ {
			if g.adj[u][v] {
				c++
			}
		}
	}
	return c
}

// IsClique reports whether every pair of distinct vertices in vs is
// connected.
func (g *Graph) IsClique(vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// MaximumMatching computes a maximum matching of the subgraph induced by
// verts using Edmonds' blossom algorithm. The result maps each matched
// vertex to its partner (both directions present).
func (g *Graph) MaximumMatching(verts []int) map[int]int {
	// Map party indices to dense 0-based ids.
	id := make(map[int]int, len(verts))
	rev := make([]int, len(verts))
	for i, v := range verts {
		g.check(v)
		if _, dup := id[v]; dup {
			panic(fmt.Sprintf("graph: duplicate vertex %d in MaximumMatching", v))
		}
		id[v] = i
		rev[i] = v
	}
	m := len(verts)
	adj := make([][]int, m)
	for i, v := range verts {
		for j, u := range verts {
			if i != j && g.adj[v][u] {
				adj[i] = append(adj[i], j)
			}
		}
	}

	match := make([]int, m)
	p := make([]int, m)
	base := make([]int, m)
	used := make([]bool, m)
	blossom := make([]bool, m)
	for i := range match {
		match[i] = -1
	}

	lca := func(a, b int) int {
		usedFlag := make([]bool, m)
		for {
			a = base[a]
			usedFlag[a] = true
			if match[a] == -1 {
				break
			}
			a = p[match[a]]
		}
		for {
			b = base[b]
			if usedFlag[b] {
				return b
			}
			b = p[match[b]]
		}
	}

	var q []int
	markPath := func(v, b, child int) {
		for base[v] != b {
			blossom[base[v]] = true
			blossom[base[match[v]]] = true
			p[v] = child
			child = match[v]
			v = p[match[v]]
		}
	}

	findPath := func(root int) int {
		for i := range used {
			used[i] = false
			p[i] = -1
			base[i] = i
		}
		used[root] = true
		q = q[:0]
		q = append(q, root)
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			for _, to := range adj[v] {
				if base[v] == base[to] || match[v] == to {
					continue
				}
				if to == root || (match[to] != -1 && p[match[to]] != -1) {
					// Blossom detected; contract it.
					curBase := lca(v, to)
					for i := range blossom {
						blossom[i] = false
					}
					markPath(v, curBase, to)
					markPath(to, curBase, v)
					for i := 0; i < m; i++ {
						if blossom[base[i]] {
							base[i] = curBase
							if !used[i] {
								used[i] = true
								q = append(q, i)
							}
						}
					}
				} else if p[to] == -1 {
					p[to] = v
					if match[to] == -1 {
						return to // augmenting path found
					}
					used[match[to]] = true
					q = append(q, match[to])
				}
			}
		}
		return -1
	}

	for v := 0; v < m; v++ {
		if match[v] != -1 {
			continue
		}
		end := findPath(v)
		for end != -1 {
			pv := p[end]
			ppv := match[pv]
			match[end] = pv
			match[pv] = end
			end = ppv
		}
	}

	out := make(map[int]int)
	for i, mi := range match {
		if mi != -1 {
			out[rev[i]] = rev[mi]
		}
	}
	return out
}

// Star is an (n, t)-star: E ⊆ F with |E| ≥ n-2t, |F| ≥ n-t, and an edge
// between every member of E and every member of F.
type Star struct {
	E []int
	F []int
}

// Validate reports whether s is a well-formed (n, t)-star in g: the size
// bounds hold, E ⊆ F, and every (e, f) pair with e ≠ f is an edge.
func (s Star) Validate(g *Graph, n, t int) bool {
	if len(s.E) < n-2*t || len(s.F) < n-t {
		return false
	}
	inF := make(map[int]bool, len(s.F))
	for _, f := range s.F {
		if f < 1 || f > g.n || inF[f] {
			return false
		}
		inF[f] = true
	}
	for _, e := range s.E {
		if !inF[e] {
			return false
		}
	}
	for _, e := range s.E {
		for _, f := range s.F {
			if e != f && !g.HasEdge(e, f) {
				return false
			}
		}
	}
	return true
}

// FindStar runs AlgStar on the subgraph induced by verts, with global
// party count n and threshold t. It returns a star and true on success.
//
// The algorithm (Canetti; Ben-Or, Canetti, Goldreich):
//  1. Compute a maximum matching M of the complement graph restricted to
//     verts.
//  2. N := matched vertices; T := vertices v for which some matched edge
//     (u, w) has both (v,u) and (v,w) in the complement.
//  3. E := verts \ (N ∪ T); F := members of verts adjacent (in g) to
//     every member of E.
//
// If g[verts] contains a clique of size ≥ n - t, the output satisfies
// |E| ≥ n - 2t and |F| ≥ n - t.
func (g *Graph) FindStar(verts []int, n, t int) (Star, bool) {
	comp := New(g.n)
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			u, v := verts[i], verts[j]
			if !g.HasEdge(u, v) {
				comp.AddEdge(u, v)
			}
		}
	}
	matching := comp.MaximumMatching(verts)

	covered := make(map[int]bool)
	for v := range matching {
		covered[v] = true
	}
	// Triangle heads: v with complement-edges to both endpoints of some
	// matched edge.
	for _, v := range verts {
		if covered[v] {
			continue
		}
		for u, w := range matching {
			if u > w {
				continue // each matched edge once
			}
			if comp.HasEdge(v, u) && comp.HasEdge(v, w) {
				covered[v] = true
				break
			}
		}
	}

	var e []int
	for _, v := range verts {
		if !covered[v] {
			e = append(e, v)
		}
	}
	var f []int
	for _, v := range verts {
		ok := true
		for _, u := range e {
			if u != v && !g.HasEdge(u, v) {
				ok = false
				break
			}
		}
		if ok {
			f = append(f, v)
		}
	}
	slices.Sort(e)
	slices.Sort(f)
	star := Star{E: e, F: f}
	if len(e) >= n-2*t && len(f) >= n-t {
		return star, true
	}
	return Star{}, false
}
