package acast

import (
	"bytes"
	"testing"

	"repro/internal/adversary"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/wire"
)

func cfg() proto.Config { return proto.Config{N: 8, Ts: 2, Ta: 1, Delta: 10} }

// harness builds one Acast instance per party with sender s.
type harness struct {
	w       *proto.World
	outs    [][]byte   // 1-based; nil if not delivered
	outAt   []sim.Time // delivery times
	casts   []*Acast
	msgCnt  int
	senders int
}

func newHarness(w *proto.World, sender, t int) *harness {
	h := &harness{
		w:     w,
		outs:  make([][]byte, w.Cfg.N+1),
		outAt: make([]sim.Time, w.Cfg.N+1),
		casts: make([]*Acast, w.Cfg.N+1),
	}
	for i := 1; i <= w.Cfg.N; i++ {
		i := i
		h.casts[i] = New(w.Runtimes[i], "acast", sender, t, func(m []byte) {
			h.outs[i] = m
			h.outAt[i] = w.Sched.Now()
		})
	}
	return h
}

func TestHonestSenderSync(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Sync, Seed: seed})
		h := newHarness(w, 3, w.Cfg.Ts)
		msg := []byte("hello world")
		h.casts[3].Broadcast(msg)
		w.RunToQuiescence()
		for i := 1; i <= w.Cfg.N; i++ {
			if !bytes.Equal(h.outs[i], msg) {
				t.Fatalf("seed %d: party %d output %q, want %q", seed, i, h.outs[i], msg)
			}
			// Lemma 2.4: liveness within 3Δ in a synchronous network.
			if h.outAt[i] > 3*w.Cfg.Delta {
				t.Fatalf("seed %d: party %d delivered at %d > 3Δ=%d", seed, i, h.outAt[i], 3*w.Cfg.Delta)
			}
		}
	}
}

func TestHonestSenderAsync(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Async, Seed: seed})
		h := newHarness(w, 1, w.Cfg.Ts)
		msg := []byte{0xde, 0xad}
		h.casts[1].Broadcast(msg)
		w.RunToQuiescence()
		for i := 1; i <= w.Cfg.N; i++ {
			if !bytes.Equal(h.outs[i], msg) {
				t.Fatalf("seed %d: party %d output %v, want %v", seed, i, h.outs[i], msg)
			}
		}
	}
}

func TestCorruptSenderEquivocationConsistency(t *testing.T) {
	// Corrupt sender sends m1 to parties {1..4}, m2 to {5..8} at the
	// SEND layer. Acast consistency: no two honest parties may output
	// different values; with an even split nobody should deliver at all.
	for _, network := range []proto.NetKind{proto.Sync, proto.Async} {
		m1 := wire.NewWriter().Blob([]byte("m1")).Bytes()
		m2 := wire.NewWriter().Blob([]byte("m2")).Bytes()
		ctrl := adversary.NewController().Set(2, adversary.Mutate(adversary.MutateSpec{
			Match: func(env sim.Envelope) bool { return env.Type == 1 }, // SEND
			Rewrite: func(env sim.Envelope) []byte {
				if env.To <= 4 {
					return m1
				}
				return m2
			},
		}))
		w := proto.NewWorld(proto.WorldOpts{
			Cfg: cfg(), Network: network, Seed: 7, Corrupt: []int{2}, Interceptor: ctrl,
		})
		h := newHarness(w, 2, w.Cfg.Ts)
		h.casts[2].Broadcast([]byte("ignored"))
		w.RunToQuiescence()
		var got [][]byte
		for i := 1; i <= w.Cfg.N; i++ {
			if w.IsCorrupt(i) {
				continue
			}
			if h.outs[i] != nil {
				got = append(got, h.outs[i])
			}
		}
		for _, g := range got {
			if !bytes.Equal(g, got[0]) {
				t.Fatalf("%v: honest parties output different values: %q vs %q", network, got[0], g)
			}
		}
	}
}

func TestCorruptSenderStragglerGap(t *testing.T) {
	// Sync network, corrupt sender withholds SEND from some parties. If
	// any honest party outputs m* at time T, all must output by T + 2Δ
	// (Lemma 2.4 sync consistency).
	allowed := map[int]bool{1: true, 3: true, 4: true, 5: true, 6: true}
	ctrl := adversary.NewController().Set(2, adversary.ToSubset(
		func(string) bool { return true }, allowed))
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: cfg(), Network: proto.Sync, Seed: 3, Corrupt: []int{2}, Interceptor: ctrl,
	})
	h := newHarness(w, 2, w.Cfg.Ts)
	h.casts[2].Broadcast([]byte("partial"))
	w.RunToQuiescence()
	var minT, maxT sim.Time
	delivered := 0
	for i := 1; i <= w.Cfg.N; i++ {
		if w.IsCorrupt(i) || h.outs[i] == nil {
			continue
		}
		delivered++
		if minT == 0 || h.outAt[i] < minT {
			minT = h.outAt[i]
		}
		if h.outAt[i] > maxT {
			maxT = h.outAt[i]
		}
	}
	if delivered == 0 {
		return // nobody delivered: consistent, nothing to check
	}
	if delivered != 7 {
		t.Fatalf("only %d of 7 honest delivered; consistency violated", delivered)
	}
	if maxT-minT > 2*w.Cfg.Delta {
		t.Fatalf("straggler gap %d exceeds 2Δ=%d", maxT-minT, 2*w.Cfg.Delta)
	}
}

func TestSilentSenderNoOutput(t *testing.T) {
	ctrl := adversary.NewController().Set(4, adversary.Silent())
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: cfg(), Network: proto.Sync, Seed: 1, Corrupt: []int{4}, Interceptor: ctrl,
	})
	h := newHarness(w, 4, w.Cfg.Ts)
	h.casts[4].Broadcast([]byte("never arrives"))
	w.RunToQuiescence()
	for i := 1; i <= w.Cfg.N; i++ {
		if h.outs[i] != nil {
			t.Fatalf("party %d delivered despite silent sender", i)
		}
	}
}

func TestGarbledPayloadsDropped(t *testing.T) {
	// A corrupt non-sender garbling its ECHO/READY traffic must not
	// prevent delivery (n - t - 1 honest echoes still suffice... with
	// n=8, t=2: echo threshold ⌈11/2⌉ = 6, honest non-sender count 7).
	ctrl := adversary.NewController().Set(5, adversary.GarbleMatching(func(string) bool { return true }))
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: cfg(), Network: proto.Sync, Seed: 2, Corrupt: []int{5}, Interceptor: ctrl,
	})
	h := newHarness(w, 1, w.Cfg.Ts)
	h.casts[1].Broadcast([]byte("resilient"))
	w.RunToQuiescence()
	for i := 1; i <= w.Cfg.N; i++ {
		if w.IsCorrupt(i) {
			continue
		}
		if !bytes.Equal(h.outs[i], []byte("resilient")) {
			t.Fatalf("party %d failed to deliver with one garbling party", i)
		}
	}
}

func TestCommunicationQuadratic(t *testing.T) {
	// Lemma 2.4: O(n²ℓ) bits. Verify the message count is Θ(n²) and
	// that bytes scale linearly in ℓ.
	run := func(n int, l int) (msgs, bytes uint64) {
		c := proto.Config{N: n, Ts: (n - 2) / 3, Ta: 0, Delta: 10}
		if c.Ts < 1 {
			c.Ts = 1
		}
		w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 9})
		h := newHarness(w, 1, c.Ts)
		h.casts[1].Broadcast(make([]byte, l))
		w.RunToQuiescence()
		return w.Metrics().HonestMessages(), w.Metrics().HonestBytes()
	}
	m8, b8 := run(8, 64)
	m16, b16 := run(16, 64)
	// n 8→16: message count should grow ≈4×; allow [3,6].
	ratio := float64(m16) / float64(m8)
	if ratio < 3 || ratio > 6 {
		t.Fatalf("message growth %f not quadratic-ish (m8=%d m16=%d)", ratio, m8, m16)
	}
	_, b8big := run(8, 1024)
	if b8big < 10*b8 {
		t.Fatalf("byte count does not scale with ℓ: %d vs %d", b8big, b8)
	}
	_ = b16
}

func TestBroadcastByNonSenderPanics(t *testing.T) {
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg(), Network: proto.Sync, Seed: 1})
	h := newHarness(w, 1, w.Cfg.Ts)
	defer func() {
		if recover() == nil {
			t.Fatal("non-sender Broadcast should panic")
		}
	}()
	h.casts[2].Broadcast([]byte("x"))
}
