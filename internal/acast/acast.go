// Package acast implements Bracha's asynchronous reliable broadcast
// (ΠACast, Section 2.1 and Appendix A of the paper; Lemma 2.4).
//
// A designated sender S distributes a message m identically to all
// parties despite t < n/3 Byzantine corruptions (possibly including S):
//
//   - S sends (SEND, m) to all parties.
//   - On the first (SEND, m) from S, a party sends (ECHO, m) to all.
//   - On ⌈(n+t+1)/2⌉ (ECHO, m) for the same m, a party sends (READY, m)
//     if it has not yet sent a READY.
//   - On t+1 (READY, m), a party sends (READY, m) if it has not yet.
//   - On 2t+1 (READY, m), a party outputs m.
//
// In a synchronous network with honest S every party outputs within 3Δ;
// if S is corrupt and some honest party outputs m* at time T, all output
// m* by T + 2Δ. In an asynchronous network outputs are eventual with the
// same validity/consistency guarantees. Communication is O(n²ℓ).
package acast

import (
	"bytes"

	"repro/internal/proto"
	"repro/internal/wire"
)

// Message types.
const (
	msgSend uint8 = iota + 1
	msgEcho
	msgReady
)

// valueState tallies ECHO/READY votes for one distinct candidate value.
// Distinct values per instance are few (one with an honest sender), so
// a linear scan over a small slice replaces per-message string keys and
// per-value maps on the hot path.
type valueState struct {
	val      []byte // aliases a delivered body; read-only
	echoes   []bool // 1-based sender index
	readies  []bool
	nEchoes  int
	nReadies int
}

// Acast is one party's state in a single reliable-broadcast instance.
type Acast struct {
	rt     *proto.Runtime
	inst   string
	sender int
	n, t   int

	gotSend   bool
	sentEcho  bool
	sentReady bool
	vals      []*valueState
	delivered bool
	output    []byte
	onOutput  func(m []byte)
}

// New registers a reliable-broadcast instance at runtime rt under the
// given instance path. sender is the designated S; onOutput fires once,
// when the instance delivers.
func New(rt *proto.Runtime, inst string, sender, t int, onOutput func(m []byte)) *Acast {
	a := &Acast{
		rt:       rt,
		inst:     inst,
		sender:   sender,
		n:        rt.N(),
		t:        t,
		onOutput: onOutput,
	}
	rt.Register(inst, a)
	return a
}

// Broadcast initiates the broadcast; only the designated sender calls it.
func (a *Acast) Broadcast(m []byte) {
	if a.rt.ID() != a.sender {
		panic("acast: Broadcast called by non-sender")
	}
	body := wire.NewWriter().Blob(m).Bytes()
	a.rt.SendAll(a.inst, msgSend, body)
}

// Delivered reports whether the instance has produced its output.
func (a *Acast) Delivered() bool { return a.delivered }

// Output returns the delivered message; valid only after Delivered.
func (a *Acast) Output() []byte { return a.output }

// echoThreshold is ⌈(n+t+1)/2⌉.
func (a *Acast) echoThreshold() int { return (a.n + a.t + 2) / 2 }

// state returns the vote tally for value m, creating it on first sight.
func (a *Acast) state(m []byte) *valueState {
	for _, v := range a.vals {
		if bytes.Equal(v.val, m) {
			return v
		}
	}
	v := &valueState{val: m, echoes: make([]bool, a.n+1), readies: make([]bool, a.n+1)}
	a.vals = append(a.vals, v)
	return v
}

// encode marshals a value message.
func encode(m []byte) []byte {
	return wire.NewWriterCap(len(m) + 4).Blob(m).Bytes()
}

// Deliver implements proto.Handler.
func (a *Acast) Deliver(from int, msgType uint8, body []byte) {
	if from < 1 || from > a.n {
		return
	}
	r := wire.NewReader(body)
	m := r.BlobRef()
	if r.Done() != nil {
		return // malformed: drop
	}
	switch msgType {
	case msgSend:
		if from != a.sender || a.gotSend {
			return
		}
		a.gotSend = true
		if !a.sentEcho {
			a.sentEcho = true
			a.rt.SendAll(a.inst, msgEcho, encode(m))
		}
	case msgEcho:
		v := a.state(m)
		if v.echoes[from] {
			return
		}
		v.echoes[from] = true
		v.nEchoes++
		if v.nEchoes >= a.echoThreshold() && !a.sentReady {
			a.sentReady = true
			a.rt.SendAll(a.inst, msgReady, encode(m))
		}
	case msgReady:
		v := a.state(m)
		if v.readies[from] {
			return
		}
		v.readies[from] = true
		v.nReadies++
		if v.nReadies >= a.t+1 && !a.sentReady {
			a.sentReady = true
			a.rt.SendAll(a.inst, msgReady, encode(m))
		}
		if v.nReadies >= 2*a.t+1 && !a.delivered {
			a.delivered = true
			a.output = m
			if a.onOutput != nil {
				a.onOutput(m)
			}
		}
	}
}
