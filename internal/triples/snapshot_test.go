package triples

import (
	"errors"
	"reflect"
	"testing"

	"repro/field"
	"repro/internal/aba"
	"repro/internal/proto"
)

func TestEncodeDecodeTriples(t *testing.T) {
	ts := []Triple{
		{X: 1, Y: 2, Z: 3},
		{X: field.Element(field.Modulus - 1), Y: 0, Z: 7},
	}
	blob := EncodeTriples(ts)
	if len(blob) != len(ts)*tripleWire {
		t.Fatalf("blob is %d bytes, want %d", len(blob), len(ts)*tripleWire)
	}
	back, err := DecodeTriples(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ts, back) {
		t.Fatalf("roundtrip mismatch: %v != %v", back, ts)
	}

	if _, err := DecodeTriples(blob[:len(blob)-1]); err == nil {
		t.Fatal("truncated blob decoded")
	}
	bad := EncodeTriples([]Triple{{X: 1, Y: 2, Z: 3}})
	bad[7] |= 0x20 // lifts X above the modulus
	if _, err := DecodeTriples(bad); err == nil {
		t.Fatal("non-canonical share word decoded")
	}
}

// TestPoolSnapshotRestore checkpoints a drained-and-consumed pool and
// restores it into a fresh world: stats, available shares and the
// reserve sequence must continue exactly where the original left off.
func TestPoolSnapshotRestore(t *testing.T) {
	w, pools, cfg := poolWorld(t)
	for i := 1; i <= cfg.N; i++ {
		if _, err := pools[i].Fill(5, 0, true, nil); err != nil {
			t.Fatal(err)
		}
	}
	w.RunToQuiescence()
	for i := 1; i <= cfg.N; i++ {
		if _, err := pools[i].Reserve(2); err != nil {
			t.Fatal(err)
		}
	}

	// A snapshot with an outstanding (never released) reservation is
	// well-formed: reserved triples are gone from the pool either way,
	// so the restored accounting still satisfies the pool invariant.
	states := make([]*PoolState, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		states[i] = pools[i].Snapshot()
		if states[i].Reserved != 2 {
			t.Fatalf("party %d snapshot records %d reserved, want 2", i, states[i].Reserved)
		}
		if got, want := states[i].Stats(), pools[i].Stats(); got != want {
			t.Fatalf("party %d snapshot stats %+v != pool stats %+v", i, got, want)
		}
	}

	w2 := proto.NewWorld(proto.WorldOpts{Cfg: cfg, Network: proto.Sync, Seed: 1})
	coin := aba.DefaultCoin(1)
	restored := make([]*Pool, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		p, err := RestorePool(w2.Runtimes[i], "pool", cfg, coin, states[i])
		if err != nil {
			t.Fatal(err)
		}
		restored[i] = p
		if got, want := p.Stats(), pools[i].Stats(); got != want {
			t.Fatalf("party %d restored stats %+v != original %+v", i, got, want)
		}
	}
	// The next reservation must hand out the same shares on both sides.
	for i := 1; i <= cfg.N; i++ {
		a, err := pools[i].Reserve(3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored[i].Reserve(3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Triples(), b.Triples()) {
			t.Fatalf("party %d reservation diverged after restore", i)
		}
	}
}

// TestPoolSnapshotMidFill covers the corrupt-party parity path: a pool
// checkpointed while its fill is in flight restores with the fill
// marked abandoned — still refusing a second Fill and still reporting
// the pending count — so a restored run's Fill/Reserve behaviour
// matches the uninterrupted one's.
func TestPoolSnapshotMidFill(t *testing.T) {
	_, pools, cfg := poolWorld(t)
	promised, err := pools[1].Fill(5, 0, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := pools[1].Snapshot()
	if st.FillPending != promised {
		t.Fatalf("snapshot records fillPending %d, Fill promised %d", st.FillPending, promised)
	}

	w2 := proto.NewWorld(proto.WorldOpts{Cfg: cfg, Network: proto.Sync, Seed: 1})
	p, err := RestorePool(w2.Runtimes[1], "pool", cfg, aba.DefaultCoin(1), st)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Filling() {
		t.Fatal("restored pool lost its in-flight fill marker")
	}
	if _, err := p.Fill(5, 0, true, nil); err == nil {
		t.Fatal("restored pool accepted a second Fill with one in flight")
	}
	_, err = p.Reserve(1)
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("Reserve on empty restored pool: %v, want *ExhaustedError", err)
	}
	if ex.Pending != promised {
		t.Fatalf("exhaustion reports pending %d, want %d", ex.Pending, promised)
	}
}

// TestPoolReservePendingError pins the typed exhaustion error's Pending
// field: zero with no fill in flight, the batch size while one is.
func TestPoolReservePendingError(t *testing.T) {
	w, pools, cfg := poolWorld(t)
	_, err := pools[1].Reserve(1)
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("Reserve on empty pool: %v, want *ExhaustedError", err)
	}
	if ex.Pending != 0 || ex.Need != 1 || ex.Have != 0 {
		t.Fatalf("empty-pool exhaustion %+v, want Need 1 Have 0 Pending 0", ex)
	}

	promised := 0
	for i := 1; i <= cfg.N; i++ {
		p, err := pools[i].Fill(5, 0, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		promised = p
	}
	_, err = pools[1].Reserve(1)
	if !errors.As(err, &ex) {
		t.Fatalf("Reserve mid-fill: %v, want *ExhaustedError", err)
	}
	if ex.Pending != promised {
		t.Fatalf("mid-fill exhaustion reports pending %d, want %d", ex.Pending, promised)
	}

	w.RunToQuiescence()
	if pools[1].Stats().Filling != 0 {
		t.Fatal("Filling stat nonzero after the batch landed")
	}
	if _, err := pools[1].Reserve(1); err != nil {
		t.Fatalf("Reserve after the batch landed: %v", err)
	}
}

// TestRestorePoolRejects exercises the restore validation: nil state,
// negative counters, corrupt blobs, accounting violations and a
// pending fill with no batch counter.
func TestRestorePoolRejects(t *testing.T) {
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: proto.Config{N: 5, Ts: 1, Ta: 1, Delta: 10, CoinRounds: 8}, Network: proto.Sync, Seed: 1,
	})
	cfg := proto.Config{N: 5, Ts: 1, Ta: 1, Delta: 10, CoinRounds: 8}
	coin := aba.DefaultCoin(1)
	cases := map[string]*PoolState{
		"nil state":         nil,
		"negative batches":  {Batches: -1},
		"negative reserved": {Reserved: -1},
		"truncated blob":    {Generated: 1, Triples: make([]byte, tripleWire-1)},
		"bad accounting":    {Generated: 5, Reserved: 1, Triples: EncodeTriples([]Triple{{X: 1}})},
		"fill from nowhere": {FillPending: 3},
	}
	for name, st := range cases {
		if _, err := RestorePool(w.Runtimes[1], "pool", cfg, coin, st); err == nil {
			t.Errorf("%s: restore accepted", name)
		}
	}
}
