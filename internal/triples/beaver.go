package triples

import (
	"repro/field"
	"repro/internal/proto"
)

// Beaver implements ΠBeaver (Fig 6, Lemma 6.1): given ts-sharings of x
// and y and a ts-shared triple (a, b, c), it outputs a ts-sharing of
// z = d·e + e·[b] + d·[a] + [c] where e = x - a and d = y - b are
// publicly reconstructed. z = x·y iff c = a·b. The protocol takes Δ in
// a synchronous network and completes eventually in an asynchronous
// one, at O(n² log|F|) bits.
type Beaver struct {
	rt    *proto.Runtime
	inst  string
	cfg   proto.Config
	recon *Recon

	xs, ys, as, bs, cs field.Element
	started            bool
	pendingED          *[2]field.Element // reconstruction finished before Start

	done   bool
	zShare field.Element
	onDone func(z field.Element)
}

// NewBeaver registers a Beaver-multiplication instance. Start must be
// called with this party's five input shares.
func NewBeaver(rt *proto.Runtime, inst string, cfg proto.Config, onDone func(field.Element)) *Beaver {
	b := &Beaver{rt: rt, inst: inst, cfg: cfg, onDone: onDone}
	b.recon = NewRecon(rt, proto.Join(inst, "rec"), cfg, 2, func(values []field.Element) {
		// The reconstruction can complete from other parties' shares
		// before this party has its own inputs; defer until Start.
		if !b.started {
			b.pendingED = &[2]field.Element{values[0], values[1]}
			return
		}
		b.finish(values[0], values[1])
	})
	return b
}

// Start contributes this party's shares of x, y and of the helper
// triple (a, b, c).
func (b *Beaver) Start(x, y, a, bb, c field.Element) {
	if b.started {
		return
	}
	b.started = true
	b.xs, b.ys, b.as, b.bs, b.cs = x, y, a, bb, c
	// [e] = [x] - [a], [d] = [y] - [b]; both publicly reconstructed.
	b.recon.Start([]field.Element{x.Sub(a), y.Sub(bb)})
	if b.pendingED != nil {
		b.finish(b.pendingED[0], b.pendingED[1])
	}
}

// Done reports completion.
func (b *Beaver) Done() bool { return b.done }

// Share returns this party's share of z; valid only after Done.
func (b *Beaver) Share() field.Element { return b.zShare }

func (b *Beaver) finish(e, d field.Element) {
	if b.done {
		return
	}
	b.done = true
	// [z] = d·e + e·[b] + d·[a] + [c].
	b.zShare = d.Mul(e).Add(e.Mul(b.bs)).Add(d.Mul(b.as)).Add(b.cs)
	if b.onDone != nil {
		b.onDone(b.zShare)
	}
}
