package triples

import (
	"math/rand/v2"
	"testing"

	"repro/field"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/poly"
)

// dealLayer shares l multiplication inputs and valid triples: the
// returned slices are per-party (1-based), each holding l shares.
func dealLayer(r *rand.Rand, cfg proto.Config, l int) (xs, ys [][]field.Element, trips [][]Triple, want []field.Element) {
	xs = make([][]field.Element, cfg.N+1)
	ys = make([][]field.Element, cfg.N+1)
	trips = make([][]Triple, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		xs[i] = make([]field.Element, l)
		ys[i] = make([]field.Element, l)
		trips[i] = make([]Triple, l)
	}
	want = make([]field.Element, l)
	for k := 0; k < l; k++ {
		x, y := field.Random(r), field.Random(r)
		a, b := field.Random(r), field.Random(r)
		want[k] = x.Mul(y)
		sx := poly.Random(r, cfg.Ts, x).Shares(cfg.N)
		sy := poly.Random(r, cfg.Ts, y).Shares(cfg.N)
		sa := poly.Random(r, cfg.Ts, a).Shares(cfg.N)
		sb := poly.Random(r, cfg.Ts, b).Shares(cfg.N)
		sc := poly.Random(r, cfg.Ts, a.Mul(b)).Shares(cfg.N)
		for i := 1; i <= cfg.N; i++ {
			xs[i][k] = sx[i-1]
			ys[i][k] = sy[i-1]
			trips[i][k] = Triple{X: sa[i-1], Y: sb[i-1], Z: sc[i-1]}
		}
	}
	return xs, ys, trips, want
}

// TestBatchBeaverCorrectness: a whole layer of multiplications through
// one batched instance reconstructs to the true products, within Δ on
// the synchronous network.
func TestBatchBeaverCorrectness(t *testing.T) {
	for _, nk := range []proto.NetKind{proto.Sync, proto.Async} {
		c := cfg8()
		w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: nk, Seed: 7})
		r := rand.New(rand.NewPCG(7, 7))
		const l = 6
		xs, ys, trips, want := dealLayer(r, c, l)
		zs := make([][]field.Element, c.N+1)
		doneAt := make([]sim.Time, c.N+1)
		insts := make([]*BatchBeaver, c.N+1)
		for i := 1; i <= c.N; i++ {
			i := i
			insts[i] = NewBatchBeaver(w.Runtimes[i], "bbv", c, l, func(out []field.Element) {
				zs[i] = out
				doneAt[i] = w.Sched.Now()
			})
		}
		for i := 1; i <= c.N; i++ {
			insts[i].Start(xs[i], ys[i], trips[i])
		}
		w.RunToQuiescence()
		for k := 0; k < l; k++ {
			shares := map[int]field.Element{}
			for i := 1; i <= c.N; i++ {
				if zs[i] == nil {
					t.Fatalf("net %v: party %d did not finish", nk, i)
				}
				shares[i] = zs[i][k]
			}
			if got := reconstruct(t, c, shares); got != want[k] {
				t.Fatalf("net %v: product %d = %v, want %v", nk, k, got, want[k])
			}
		}
		if nk == proto.Sync {
			for i := 1; i <= c.N; i++ {
				if doneAt[i] > c.Delta {
					t.Fatalf("party %d finished batched Beaver at %d > Δ", i, doneAt[i])
				}
			}
		}
	}
}

// TestBatchBeaverMatchesPerGateShares: each party's z-shares from the
// batched instance are bit-for-bit the shares the per-gate Beaver
// computes from the same inputs — layering only regroups messages.
func TestBatchBeaverMatchesPerGateShares(t *testing.T) {
	c := cfg5()
	r := rand.New(rand.NewPCG(9, 9))
	const l = 4
	xs, ys, trips, _ := dealLayer(r, c, l)

	wb := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 5})
	batched := make([][]field.Element, c.N+1)
	for i := 1; i <= c.N; i++ {
		i := i
		NewBatchBeaver(wb.Runtimes[i], "bbv", c, l, func(out []field.Element) { batched[i] = out }).
			Start(xs[i], ys[i], trips[i])
	}
	wb.RunToQuiescence()

	perGate := make([][]field.Element, c.N+1)
	for i := range perGate {
		perGate[i] = make([]field.Element, l)
	}
	for k := 0; k < l; k++ {
		k := k
		wg := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 5})
		for i := 1; i <= c.N; i++ {
			i := i
			tr := trips[i][k]
			NewBeaver(wg.Runtimes[i], "bv", c, func(z field.Element) { perGate[i][k] = z }).
				Start(xs[i][k], ys[i][k], tr.X, tr.Y, tr.Z)
		}
		wg.RunToQuiescence()
	}
	for i := 1; i <= c.N; i++ {
		for k := 0; k < l; k++ {
			if batched[i][k] != perGate[i][k] {
				t.Fatalf("party %d gate %d: batched share %v != per-gate share %v",
					i, k, batched[i][k], perGate[i][k])
			}
		}
	}
}

// TestBatchBeaverLateStart: the reconstruction completing from other
// parties' shares before this party calls Start must be deferred and
// applied on Start (the pendingED path).
func TestBatchBeaverLateStart(t *testing.T) {
	c := cfg5()
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 11})
	r := rand.New(rand.NewPCG(11, 11))
	const l = 3
	xs, ys, trips, want := dealLayer(r, c, l)
	zs := make([][]field.Element, c.N+1)
	insts := make([]*BatchBeaver, c.N+1)
	for i := 1; i <= c.N; i++ {
		i := i
		insts[i] = NewBatchBeaver(w.Runtimes[i], "bbv", c, l, func(out []field.Element) { zs[i] = out })
	}
	for i := 2; i <= c.N; i++ {
		insts[i].Start(xs[i], ys[i], trips[i])
	}
	// Party 1 joins only after everyone else's shares are long
	// delivered; with n-1 = 4 ≥ 2ts+1 shares the OEC completes without
	// party 1, exercising the deferred-finish path.
	w.Runtimes[1].After(50*c.Delta, func() { insts[1].Start(xs[1], ys[1], trips[1]) })
	w.RunToQuiescence()
	for k := 0; k < l; k++ {
		shares := map[int]field.Element{}
		for i := 1; i <= c.N; i++ {
			if zs[i] == nil {
				t.Fatalf("party %d did not finish", i)
			}
			shares[i] = zs[i][k]
		}
		if got := reconstruct(t, c, shares); got != want[k] {
			t.Fatalf("product %d = %v, want %v", k, got, want[k])
		}
	}
}
