package triples

import (
	"math/rand/v2"
	"testing"

	"repro/field"
	"repro/internal/aba"
	"repro/internal/adversary"
	"repro/internal/proto"
	"repro/internal/rs"
	"repro/internal/sim"
	"repro/poly"
)

func cfg8() proto.Config { return proto.Config{N: 8, Ts: 2, Ta: 1, Delta: 10, CoinRounds: 8} }
func cfg5() proto.Config { return proto.Config{N: 5, Ts: 1, Ta: 1, Delta: 10, CoinRounds: 8} }

// share returns n shares of value under a fresh random ts-polynomial.
func share(r *rand.Rand, cfg proto.Config, v field.Element) []field.Element {
	return poly.Random(r, cfg.Ts, v).Shares(cfg.N)
}

// reconstruct interpolates honest shares (1-based map) at 0.
func reconstruct(t *testing.T, cfg proto.Config, shares map[int]field.Element) field.Element {
	t.Helper()
	v, err := rs.ReconstructSecret(cfg.Ts, cfg.Ts, shares)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestReconBasic(t *testing.T) {
	for _, nk := range []proto.NetKind{proto.Sync, proto.Async} {
		c := cfg8()
		w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: nk, Seed: 1})
		r := rand.New(rand.NewPCG(1, 1))
		v1, v2 := field.Random(r), field.Random(r)
		s1, s2 := share(r, c, v1), share(r, c, v2)
		outs := make([][]field.Element, c.N+1)
		recs := make([]*Recon, c.N+1)
		for i := 1; i <= c.N; i++ {
			i := i
			recs[i] = NewRecon(w.Runtimes[i], "rec", c, 2, func(vals []field.Element) { outs[i] = vals })
		}
		for i := 1; i <= c.N; i++ {
			recs[i].Start([]field.Element{s1[i-1], s2[i-1]})
		}
		w.RunToQuiescence()
		for i := 1; i <= c.N; i++ {
			if outs[i] == nil || outs[i][0] != v1 || outs[i][1] != v2 {
				t.Fatalf("%v: party %d reconstructed %v, want [%v %v]", nk, i, outs[i], v1, v2)
			}
		}
	}
}

func TestReconWithWrongShares(t *testing.T) {
	// ts corrupt parties submit wrong shares; OEC must still decode.
	c := cfg8()
	ctrl := adversary.NewController().
		Set(2, adversary.GarbleMatching(func(string) bool { return true })).
		Set(7, adversary.GarbleMatching(func(string) bool { return true }))
	w := proto.NewWorld(proto.WorldOpts{
		Cfg: c, Network: proto.Sync, Seed: 2, Corrupt: []int{2, 7}, Interceptor: ctrl,
	})
	r := rand.New(rand.NewPCG(2, 2))
	v := field.Random(r)
	s := share(r, c, v)
	outs := make([][]field.Element, c.N+1)
	recs := make([]*Recon, c.N+1)
	for i := 1; i <= c.N; i++ {
		i := i
		recs[i] = NewRecon(w.Runtimes[i], "rec", c, 1, func(vals []field.Element) { outs[i] = vals })
	}
	for i := 1; i <= c.N; i++ {
		recs[i].Start([]field.Element{s[i-1]})
	}
	w.RunToQuiescence()
	for i := 1; i <= c.N; i++ {
		if w.IsCorrupt(i) {
			continue
		}
		if outs[i] == nil || outs[i][0] != v {
			t.Fatalf("party %d got %v, want %v", i, outs[i], v)
		}
	}
}

func TestBeaverCorrectness(t *testing.T) {
	for _, nk := range []proto.NetKind{proto.Sync, proto.Async} {
		c := cfg8()
		w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: nk, Seed: 3})
		r := rand.New(rand.NewPCG(3, 3))
		x, y := field.Random(r), field.Random(r)
		a := field.Random(r)
		bv := field.Random(r)
		cv := a.Mul(bv)
		xs, ys, as, bs, cs := share(r, c, x), share(r, c, y), share(r, c, a), share(r, c, bv), share(r, c, cv)
		zs := make(map[int]field.Element)
		beavers := make([]*Beaver, c.N+1)
		doneAt := make([]sim.Time, c.N+1)
		for i := 1; i <= c.N; i++ {
			i := i
			beavers[i] = NewBeaver(w.Runtimes[i], "bv", c, func(z field.Element) {
				zs[i] = z
				doneAt[i] = w.Sched.Now()
			})
		}
		for i := 1; i <= c.N; i++ {
			beavers[i].Start(xs[i-1], ys[i-1], as[i-1], bs[i-1], cs[i-1])
		}
		w.RunToQuiescence()
		if got := reconstruct(t, c, zs); got != x.Mul(y) {
			t.Fatalf("%v: z = %v, want x*y = %v", nk, got, x.Mul(y))
		}
		if nk == proto.Sync {
			for i := 1; i <= c.N; i++ {
				if doneAt[i] > c.Delta {
					t.Fatalf("party %d finished Beaver at %d > Δ", i, doneAt[i])
				}
			}
		}
	}
}

func TestBeaverBadTripleGivesWrongProduct(t *testing.T) {
	// Lemma 6.1: z = x·y iff (a,b,c) is a multiplication triple.
	c := cfg5()
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 4})
	r := rand.New(rand.NewPCG(4, 4))
	x, y := field.Random(r), field.Random(r)
	a, bv := field.Random(r), field.Random(r)
	cv := a.Mul(bv).Add(field.One) // broken triple
	xs, ys, as, bs, cs := share(r, c, x), share(r, c, y), share(r, c, a), share(r, c, bv), share(r, c, cv)
	zs := make(map[int]field.Element)
	beavers := make([]*Beaver, c.N+1)
	for i := 1; i <= c.N; i++ {
		i := i
		beavers[i] = NewBeaver(w.Runtimes[i], "bv", c, func(z field.Element) { zs[i] = z })
	}
	for i := 1; i <= c.N; i++ {
		beavers[i].Start(xs[i-1], ys[i-1], as[i-1], bs[i-1], cs[i-1])
	}
	w.RunToQuiescence()
	got := reconstruct(t, c, zs)
	if got == x.Mul(y) {
		t.Fatal("broken helper triple still produced x*y")
	}
	if got != x.Mul(y).Add(field.One) {
		t.Fatalf("z = %v, want x*y + 1", got)
	}
}

func TestTripTrans(t *testing.T) {
	// 2d+1 multiplication triples in, correlated triples out; verify
	// the X, Y, Z polynomial structure by reconstructing all outputs.
	c := cfg8()
	d := 3
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 5})
	r := rand.New(rand.NewPCG(5, 5))
	k := 2*d + 1
	vals := make([][3]field.Element, k)
	shs := make([][][]field.Element, k) // triple -> component -> party shares
	for i := 0; i < k; i++ {
		x, y := field.Random(r), field.Random(r)
		vals[i] = [3]field.Element{x, y, x.Mul(y)}
		shs[i] = [][]field.Element{share(r, c, x), share(r, c, y), share(r, c, x.Mul(y))}
	}
	results := make([]*TransResult, c.N+1)
	insts := make([]*TripTrans, c.N+1)
	for i := 1; i <= c.N; i++ {
		i := i
		insts[i] = NewTripTrans(w.Runtimes[i], "tt", c, d, func(res *TransResult) { results[i] = res })
	}
	for i := 1; i <= c.N; i++ {
		batch := make([]Triple, k)
		for j := 0; j < k; j++ {
			batch[j] = Triple{X: shs[j][0][i-1], Y: shs[j][1][i-1], Z: shs[j][2][i-1]}
		}
		insts[i].Start(batch)
	}
	w.RunToQuiescence()
	// Reconstruct X(α_j), Y(α_j), Z(α_j) for all j and check the
	// polynomial degrees and Z = X·Y.
	var xPts, yPts, zPts []poly.Point
	for j := 1; j <= k; j++ {
		xm := map[int]field.Element{}
		ym := map[int]field.Element{}
		zm := map[int]field.Element{}
		for i := 1; i <= c.N; i++ {
			if results[i] == nil {
				t.Fatalf("party %d incomplete", i)
			}
			xm[i] = results[i].Triples[j-1].X
			ym[i] = results[i].Triples[j-1].Y
			zm[i] = results[i].Triples[j-1].Z
		}
		x := reconstruct(t, c, xm)
		y := reconstruct(t, c, ym)
		z := reconstruct(t, c, zm)
		if z != x.Mul(y) {
			t.Fatalf("transformed triple %d not multiplicative", j)
		}
		xPts = append(xPts, poly.Point{X: poly.Alpha(j), Y: x})
		yPts = append(yPts, poly.Point{X: poly.Alpha(j), Y: y})
		zPts = append(zPts, poly.Point{X: poly.Alpha(j), Y: z})
	}
	// First d+1 triples preserved.
	for j := 0; j <= d; j++ {
		if xPts[j].Y != vals[j][0] || yPts[j].Y != vals[j][1] || zPts[j].Y != vals[j][2] {
			t.Fatalf("triple %d not preserved", j)
		}
	}
	xPoly, err := poly.Interpolate(xPts)
	if err != nil {
		t.Fatal(err)
	}
	if xPoly.Degree() > d {
		t.Fatalf("X degree %d > d=%d", xPoly.Degree(), d)
	}
	zPoly, err := poly.Interpolate(zPts)
	if err != nil {
		t.Fatal(err)
	}
	if zPoly.Degree() > 2*d {
		t.Fatalf("Z degree %d > 2d", zPoly.Degree())
	}
	// ShareAt consistency: reconstruct at a fresh point.
	beta := poly.Beta(c.N, 3)
	bm := map[int]field.Element{}
	for i := 1; i <= c.N; i++ {
		pt, err := results[i].ShareAt(beta)
		if err != nil {
			t.Fatal(err)
		}
		bm[i] = pt.Z
	}
	if got := reconstruct(t, c, bm); got != zPoly.Eval(beta) {
		t.Fatalf("ShareAt(β) = %v, want Z(β) = %v", got, zPoly.Eval(beta))
	}
}

func TestTripTransNonMultiplicativePropagates(t *testing.T) {
	// Lemma 6.2: transformed triple i is multiplicative iff input i is.
	c := cfg5()
	d := 1
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 6})
	r := rand.New(rand.NewPCG(6, 6))
	k := 2*d + 1
	shs := make([][][]field.Element, k)
	for i := 0; i < k; i++ {
		x, y := field.Random(r), field.Random(r)
		z := x.Mul(y)
		if i == 1 {
			z = z.Add(field.One) // break triple 2 (the Beaver helper)
		}
		shs[i] = [][]field.Element{share(r, c, x), share(r, c, y), share(r, c, z)}
	}
	results := make([]*TransResult, c.N+1)
	insts := make([]*TripTrans, c.N+1)
	for i := 1; i <= c.N; i++ {
		i := i
		insts[i] = NewTripTrans(w.Runtimes[i], "tt", c, d, func(res *TransResult) { results[i] = res })
	}
	for i := 1; i <= c.N; i++ {
		batch := make([]Triple, k)
		for j := 0; j < k; j++ {
			batch[j] = Triple{X: shs[j][0][i-1], Y: shs[j][1][i-1], Z: shs[j][2][i-1]}
		}
		insts[i].Start(batch)
	}
	w.RunToQuiescence()
	// Triple index 2 (0-based 1) was the broken one... with d=1, the
	// helper for the single new point is input triple index d+1=2
	// (0-based 1)? No: helpers are inputs d+2..2d+1 (0-based d+1..2d),
	// i.e. 0-based index 2 here. 0-based 1 is adopted unchanged, so the
	// transformed triple 2 must be non-multiplicative exactly like its
	// input.
	for j := 1; j <= k; j++ {
		xm := map[int]field.Element{}
		ym := map[int]field.Element{}
		zm := map[int]field.Element{}
		for i := 1; i <= c.N; i++ {
			xm[i] = results[i].Triples[j-1].X
			ym[i] = results[i].Triples[j-1].Y
			zm[i] = results[i].Triples[j-1].Z
		}
		x, y, z := reconstruct(t, c, xm), reconstruct(t, c, ym), reconstruct(t, c, zm)
		isMult := z == x.Mul(y)
		wantMult := j != 2
		if isMult != wantMult {
			t.Fatalf("triple %d multiplicativity = %v, want %v", j, isMult, wantMult)
		}
	}
}

// tripShHarness runs a full TripSh with a real shared verification ACS.
type tripShHarness struct {
	w      *proto.World
	pre    []*Preprocessing
	outs   [][]Triple
	doneAt []sim.Time
}

func TestPreprocessingSync(t *testing.T) {
	c := cfg5()
	const cM = 2
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 7})
	coin := aba.DefaultCoin(7)
	outs := make([][]Triple, c.N+1)
	doneAt := make([]sim.Time, c.N+1)
	pre := make([]*Preprocessing, c.N+1)
	for i := 1; i <= c.N; i++ {
		i := i
		pre[i] = NewPreprocessing(w.Runtimes[i], "pp", cM, c, coin, 0, func(ts []Triple) {
			outs[i] = ts
			doneAt[i] = w.Sched.Now()
		})
	}
	for i := 1; i <= c.N; i++ {
		pre[i].Start()
	}
	w.RunToQuiescence()
	for i := 1; i <= c.N; i++ {
		if outs[i] == nil {
			t.Fatalf("party %d preprocessing incomplete", i)
		}
		if len(outs[i]) != cM {
			t.Fatalf("party %d got %d triples, want %d", i, len(outs[i]), cM)
		}
	}
	// Each output triple reconstructs to a multiplication triple.
	for m := 0; m < cM; m++ {
		xm := map[int]field.Element{}
		ym := map[int]field.Element{}
		zm := map[int]field.Element{}
		for i := 1; i <= c.N; i++ {
			xm[i] = outs[i][m].X
			ym[i] = outs[i][m].Y
			zm[i] = outs[i][m].Z
		}
		x, y, z := reconstruct(t, c, xm), reconstruct(t, c, ym), reconstruct(t, c, zm)
		if z != x.Mul(y) {
			t.Fatalf("output triple %d not multiplicative: %v*%v != %v", m, x, y, z)
		}
		if x.IsZero() && y.IsZero() && z.IsZero() {
			t.Fatalf("output triple %d degenerate (all honest run)", m)
		}
	}
	deadline := PreprocessingDeadline(c)
	for i := 1; i <= c.N; i++ {
		if doneAt[i] > deadline {
			t.Fatalf("party %d finished at %d > TTripGen=%d", i, doneAt[i], deadline)
		}
	}
}

func TestPreprocessingWithBadDealer(t *testing.T) {
	// Dealer 2 (corrupt) shares non-multiplicative triples: the
	// supervised verification must flag it, its output becomes the
	// default (0,0,0), and the extracted triples are still
	// multiplicative.
	c := cfg5()
	const cM = 1
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 8, Corrupt: []int{2}})
	coin := aba.DefaultCoin(8)
	outs := make([][]Triple, c.N+1)
	pre := make([]*Preprocessing, c.N+1)
	for i := 1; i <= c.N; i++ {
		i := i
		pre[i] = NewPreprocessing(w.Runtimes[i], "pp", cM, c, coin, 0, func(ts []Triple) {
			outs[i] = ts
		})
	}
	r := rand.New(rand.NewPCG(8, 8))
	for i := 1; i <= c.N; i++ {
		if i == 2 {
			// Corrupt dealer: bad triples through the honest machinery.
			_, _, l := ExtractParams(c, cM)
			k := 2*c.Ts + 1
			bad := make([][3]field.Element, l*k)
			for m := range bad {
				x, y := field.Random(r), field.Random(r)
				bad[m] = [3]field.Element{x, y, x.Mul(y).Add(field.One)}
			}
			pre[2].dealers[2].StartTriples(w.Runtimes[2].Rand(), bad)
			// Still contribute verification triples honestly.
			polys := make([]poly.Poly, 0, 3*l*c.N)
			rng := w.Runtimes[2].Rand()
			for jd := 1; jd <= c.N; jd++ {
				for m := 0; m < l; m++ {
					u, v := field.Random(rng), field.Random(rng)
					polys = append(polys,
						poly.Random(rng, c.Ts, u),
						poly.Random(rng, c.Ts, v),
						poly.Random(rng, c.Ts, u.Mul(v)))
				}
			}
			pre[2].verifACS.Start(polys)
			continue
		}
		pre[i].Start()
	}
	w.RunToQuiescence()
	for i := 1; i <= c.N; i++ {
		if w.IsCorrupt(i) {
			continue
		}
		if outs[i] == nil {
			t.Fatalf("party %d incomplete", i)
		}
	}
	// Dealer 2's TripSh output must be the default (0,0,0) at every
	// honest party (flag raised).
	for i := 1; i <= c.N; i++ {
		if w.IsCorrupt(i) {
			continue
		}
		d2 := pre[i].dealers[2]
		if d2.Done() {
			for _, tr := range d2.Triples() {
				if tr.X != 0 || tr.Y != 0 || tr.Z != 0 {
					t.Fatalf("party %d: bad dealer's triple not defaulted", i)
				}
			}
		}
	}
	// Final triples still multiplicative.
	xm := map[int]field.Element{}
	ym := map[int]field.Element{}
	zm := map[int]field.Element{}
	for i := 1; i <= c.N; i++ {
		if w.IsCorrupt(i) || outs[i] == nil {
			continue
		}
		xm[i] = outs[i][0].X
		ym[i] = outs[i][0].Y
		zm[i] = outs[i][0].Z
	}
	x, y, z := reconstruct(t, c, xm), reconstruct(t, c, ym), reconstruct(t, c, zm)
	if z != x.Mul(y) {
		t.Fatal("extracted triple not multiplicative despite flagged dealer")
	}
}

func TestPreprocessingAsync(t *testing.T) {
	c := cfg5()
	const cM = 1
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Async, Seed: 9})
	coin := aba.DefaultCoin(9)
	outs := make([][]Triple, c.N+1)
	pre := make([]*Preprocessing, c.N+1)
	for i := 1; i <= c.N; i++ {
		i := i
		pre[i] = NewPreprocessing(w.Runtimes[i], "pp", cM, c, coin, 0, func(ts []Triple) {
			outs[i] = ts
		})
	}
	for i := 1; i <= c.N; i++ {
		pre[i].Start()
	}
	w.RunToQuiescence()
	xm := map[int]field.Element{}
	ym := map[int]field.Element{}
	zm := map[int]field.Element{}
	for i := 1; i <= c.N; i++ {
		if outs[i] == nil {
			t.Fatalf("party %d incomplete in async run", i)
		}
		xm[i] = outs[i][0].X
		ym[i] = outs[i][0].Y
		zm[i] = outs[i][0].Z
	}
	x, y, z := reconstruct(t, c, xm), reconstruct(t, c, ym), reconstruct(t, c, zm)
	if z != x.Mul(y) {
		t.Fatal("async extracted triple not multiplicative")
	}
}

func TestExtractParams(t *testing.T) {
	tests := []struct {
		n, ts, cM   int
		d, yield, l int
	}{
		{8, 2, 4, 2, 1, 4},
		{5, 1, 3, 1, 1, 3},
		{13, 3, 10, 4, 2, 5},
		{16, 4, 7, 5, 2, 4},
	}
	for _, tt := range tests {
		c := proto.Config{N: tt.n, Ts: tt.ts, Ta: 0, Delta: 10}
		d, yield, l := ExtractParams(c, tt.cM)
		if d != tt.d || yield != tt.yield || l != tt.l {
			t.Errorf("ExtractParams(n=%d ts=%d cM=%d) = (%d,%d,%d), want (%d,%d,%d)",
				tt.n, tt.ts, tt.cM, d, yield, l, tt.d, tt.yield, tt.l)
		}
	}
}
