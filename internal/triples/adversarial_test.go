package triples

import (
	"math/rand/v2"
	"testing"

	"repro/field"
	"repro/internal/aba"
	"repro/internal/proto"
	"repro/poly"
)

// TestPreprocessingWithBadVerifier exercises Fig 8's "suspected
// triple" path: a corrupt verification provider shares a
// NON-multiplication verification triple, so the supervised Beaver
// recomputation under its slot yields γ ≠ 0 even for an honest
// dealer. The parties must then publicly open (X(α_j), Y(α_j),
// Z(α_j)), see that it *is* multiplicative, clear the flag, and keep
// the dealer's triples (not default them to zero).
func TestPreprocessingWithBadVerifier(t *testing.T) {
	c := cfg5()
	const cM = 1
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 21, Corrupt: []int{3}})
	coin := aba.DefaultCoin(21)
	outs := make([][]Triple, c.N+1)
	pre := make([]*Preprocessing, c.N+1)
	for i := 1; i <= c.N; i++ {
		i := i
		pre[i] = NewPreprocessing(w.Runtimes[i], "pp", cM, c, coin, 0, func(ts []Triple) {
			outs[i] = ts
		})
	}
	_, _, l := ExtractParams(c, cM)
	for i := 1; i <= c.N; i++ {
		if i == 3 {
			// Corrupt party 3: honest dealer triples, but broken
			// verification triples (w ≠ u·v) for every dealer slot.
			rng := w.Runtimes[3].Rand()
			pre[3].dealers[3].Start(rng)
			polys := make([]poly.Poly, 0, 3*l*c.N)
			for jd := 1; jd <= c.N; jd++ {
				for m := 0; m < l; m++ {
					u, v := field.Random(rng), field.Random(rng)
					polys = append(polys,
						poly.Random(rng, c.Ts, u),
						poly.Random(rng, c.Ts, v),
						poly.Random(rng, c.Ts, u.Mul(v).Add(field.One))) // broken
				}
			}
			pre[3].verifACS.Start(polys)
			continue
		}
		pre[i].Start()
	}
	w.RunToQuiescence()
	xm := map[int]field.Element{}
	ym := map[int]field.Element{}
	zm := map[int]field.Element{}
	for i := 1; i <= c.N; i++ {
		if w.IsCorrupt(i) {
			continue
		}
		if outs[i] == nil {
			t.Fatalf("party %d incomplete with bad verifier", i)
		}
		xm[i] = outs[i][0].X
		ym[i] = outs[i][0].Y
		zm[i] = outs[i][0].Z
	}
	x, y, z := reconstruct(t, c, xm), reconstruct(t, c, ym), reconstruct(t, c, zm)
	if z != x.Mul(y) {
		t.Fatal("output triple not multiplicative")
	}
	if x.IsZero() && y.IsZero() {
		t.Fatal("honest dealers' triples were wrongly defaulted because of a bad verifier")
	}
	// At least one honest dealer's TripSh must have opened a suspected
	// triple (the γ ≠ 0 path) — check via the resolved matrices.
	opened := false
	for i := 1; i <= c.N; i++ {
		if w.IsCorrupt(i) {
			continue
		}
		for jd := 1; jd <= c.N; jd++ {
			d := pre[i].dealers[jd]
			for m := range d.openStart {
				for j := range d.openStart[m] {
					if d.openStart[m][j] {
						opened = true
					}
				}
			}
		}
	}
	if !opened {
		t.Fatal("bad verification triple never triggered the suspected-triple opening")
	}
}

// TestTripShDirect runs a standalone ΠTripSh with a hand-built
// verification source (all parties as providers), checking the happy
// path produces L random multiplication triples.
func TestTripShDirect(t *testing.T) {
	c := cfg5()
	const L = 2
	w := proto.NewWorld(proto.WorldOpts{Cfg: c, Network: proto.Sync, Seed: 22})
	coin := aba.DefaultCoin(22)
	outs := make([][]Triple, c.N+1)
	insts := make([]*TripSh, c.N+1)
	for i := 1; i <= c.N; i++ {
		i := i
		insts[i] = NewTripSh(w.Runtimes[i], "ts", 1, L, c, coin, 0, func(ts []Triple) {
			outs[i] = ts
		})
	}
	// Build verification triples out-of-band: provider j's slot-m
	// triple shared directly (the ACS normally does this).
	r := rand.New(rand.NewPCG(22, 22))
	verShares := make([]map[int][]field.Element, c.N+1) // per party: provider -> 3L
	for i := 1; i <= c.N; i++ {
		verShares[i] = map[int][]field.Element{}
	}
	providers := []int{1, 2, 3, 4}
	for _, j := range providers {
		flat := make([][]field.Element, c.N+1)
		for i := 1; i <= c.N; i++ {
			flat[i] = make([]field.Element, 0, 3*L)
		}
		for m := 0; m < L; m++ {
			u, v := field.Random(r), field.Random(r)
			for _, val := range []field.Element{u, v, u.Mul(v)} {
				shares := poly.Random(r, c.Ts, val).Shares(c.N)
				for i := 1; i <= c.N; i++ {
					flat[i] = append(flat[i], shares[i-1])
				}
			}
		}
		for i := 1; i <= c.N; i++ {
			verShares[i][j] = flat[i]
		}
	}
	insts[1].Start(w.Runtimes[1].Rand())
	for i := 1; i <= c.N; i++ {
		insts[i].SetVerification(Verification{W: providers, Shares: verShares[i]})
	}
	w.RunToQuiescence()
	for m := 0; m < L; m++ {
		xm := map[int]field.Element{}
		ym := map[int]field.Element{}
		zm := map[int]field.Element{}
		for i := 1; i <= c.N; i++ {
			if outs[i] == nil {
				t.Fatalf("party %d incomplete", i)
			}
			xm[i] = outs[i][m].X
			ym[i] = outs[i][m].Y
			zm[i] = outs[i][m].Z
		}
		x, y, z := reconstruct(t, c, xm), reconstruct(t, c, ym), reconstruct(t, c, zm)
		if z != x.Mul(y) {
			t.Fatalf("slot %d not multiplicative", m)
		}
	}
}
