package triples

import (
	"fmt"

	"repro/field"
	"repro/internal/proto"
)

// BatchBeaver runs one multiplicative circuit layer's ΠBeaver
// instances (Fig 6, Lemma 6.1) through a single public reconstruction:
// for a layer of L multiplications it reconstructs the 2·L values
// (e_k, d_k) = (x_k - a_k, y_k - b_k) in one Recon of batch 2·L
// instead of L independent 2-element Recons. The z-share arithmetic is
// identical to the per-gate Beaver, so each party's output shares are
// bit-for-bit the ones the per-gate path computes — only the message
// grouping changes: n² messages per *layer* rather than per *gate*,
// which is what brings the online phase's reconstruction-instance
// count from 2·cM down to the paper's batched 2·DM.
type BatchBeaver struct {
	rt    *proto.Runtime
	inst  string
	cfg   proto.Config
	recon *Recon
	l     int

	as, bs, cs []field.Element
	started    bool
	pendingED  []field.Element // reconstruction finished before Start

	done   bool
	zs     []field.Element
	onDone func(zs []field.Element)
}

// NewBatchBeaver registers a batched Beaver instance for a layer of l
// multiplications. Start must be called with this party's input and
// triple shares, all in layer order.
func NewBatchBeaver(rt *proto.Runtime, inst string, cfg proto.Config, l int, onDone func([]field.Element)) *BatchBeaver {
	if l < 1 {
		panic("triples: BatchBeaver needs at least one multiplication")
	}
	b := &BatchBeaver{rt: rt, inst: inst, cfg: cfg, l: l, onDone: onDone}
	b.recon = NewRecon(rt, proto.Join(inst, "rec"), cfg, 2*l, func(values []field.Element) {
		// The reconstruction can complete from other parties' shares
		// before this party has its own inputs; defer until Start.
		if !b.started {
			b.pendingED = values
			return
		}
		b.finish(values)
	})
	return b
}

// Start contributes this party's shares of the layer's operands
// (x_k, y_k) and helper triples (a_k, b_k, c_k), k = 0..l-1.
func (b *BatchBeaver) Start(xs, ys []field.Element, trips []Triple) {
	if b.started {
		return
	}
	if len(xs) != b.l || len(ys) != b.l || len(trips) != b.l {
		panic(fmt.Sprintf("triples: BatchBeaver.Start with %d/%d/%d shares, want %d",
			len(xs), len(ys), len(trips), b.l))
	}
	b.started = true
	b.as = make([]field.Element, b.l)
	b.bs = make([]field.Element, b.l)
	b.cs = make([]field.Element, b.l)
	// [e_k] = [x_k] - [a_k] at slot 2k, [d_k] = [y_k] - [b_k] at 2k+1.
	eds := make([]field.Element, 2*b.l)
	for k := 0; k < b.l; k++ {
		b.as[k], b.bs[k], b.cs[k] = trips[k].X, trips[k].Y, trips[k].Z
		eds[2*k] = xs[k].Sub(trips[k].X)
		eds[2*k+1] = ys[k].Sub(trips[k].Y)
	}
	b.recon.Start(eds)
	if b.pendingED != nil {
		b.finish(b.pendingED)
	}
}

// Done reports completion.
func (b *BatchBeaver) Done() bool { return b.done }

// Shares returns this party's shares of the layer outputs z_k, in
// layer order; valid only after Done.
func (b *BatchBeaver) Shares() []field.Element { return b.zs }

func (b *BatchBeaver) finish(eds []field.Element) {
	if b.done {
		return
	}
	b.done = true
	b.zs = make([]field.Element, b.l)
	for k := 0; k < b.l; k++ {
		e, d := eds[2*k], eds[2*k+1]
		// [z_k] = d·e + e·[b_k] + d·[a_k] + [c_k].
		b.zs[k] = d.Mul(e).Add(e.Mul(b.bs[k])).Add(d.Mul(b.as[k])).Add(b.cs[k])
	}
	if b.onDone != nil {
		b.onDone(b.zs)
	}
}
