package triples

import (
	"fmt"
	"math/rand/v2"

	"repro/field"
	"repro/internal/aba"
	"repro/internal/acs"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/vss"
	"repro/poly"
)

// Verification carries the supervised-verification material of Fig 8:
// the agreed provider set W (from a ΠACS run) and, per provider j ∈ W,
// this party's shares of j's L verification triples, flattened as
// (u_1, v_1, w_1, u_2, ...).
type Verification struct {
	W      []int
	Shares map[int][]field.Element
}

// TripSh implements ΠTripSh (Fig 8, Lemma 6.3): a dealer D verifiably
// ts-shares L multiplication triples.
//
// D shares L·(2ts+1) random multiplication triples through one ΠVSS.
// Per output slot the 2ts+1 triples are transformed (ΠTripTrans) onto
// polynomials X, Y (degree ts) and Z (degree 2ts); every provider
// P_j ∈ W supervises the verification of the point α_j by having the
// parties recompute X(α_j)·Y(α_j) with Beaver's trick on P_j's
// verification triple and publicly reconstructing the difference
// γ_j = z'_j - Z(α_j). A non-zero γ_j triggers public reconstruction
// of the suspected point triple; if it is not multiplicative the slot
// is flagged and the default (0,0,0) sharing is output, otherwise the
// parties output shares of (X(β), Y(β), Z(β)) — a fresh random
// multiplication triple the adversary has no information about.
type TripSh struct {
	rt     *proto.Runtime
	inst   string
	dealer int
	L      int
	cfg    proto.Config
	start  sim.Time

	vssInst *vss.VSS
	trans   []*TripTrans
	transR  []*TransResult

	verif *Verification

	// Per (slot, provider): verification machinery.
	verBeaver [][]*Beaver
	gamma     [][]*Recon
	open      [][]*Recon
	// resolved[m][j] = nil (pending) / true (fine) / false (flagged).
	resolved    [][]*bool
	verStart    [][]bool
	pendingOpen [][]bool
	openStart   [][]bool
	zAt         [][]field.Element // share of Z(α_j) per slot (cached at verify start)

	done   bool
	out    []Triple
	onDone func([]Triple)
}

// TripShDeadline returns TTripSh - T0 = TACS + 4Δ.
func TripShDeadline(cfg proto.Config) sim.Time {
	return acs.Deadline(cfg) + 4*cfg.Delta
}

// NewTripSh registers a ΠTripSh instance anchored at start. The dealer
// calls Start; the owner feeds SetVerification when the verification
// ΠACS completes. onDone fires once with this party's shares of the L
// output triples.
func NewTripSh(rt *proto.Runtime, inst string, dealer, l int, cfg proto.Config, coin aba.CoinSource, start sim.Time, onDone func([]Triple)) *TripSh {
	t := &TripSh{
		rt:     rt,
		inst:   inst,
		dealer: dealer,
		L:      l,
		cfg:    cfg,
		start:  start,
		trans:  make([]*TripTrans, l),
		transR: make([]*TransResult, l),
		onDone: onDone,
	}
	nPolys := 3 * l * (2*cfg.Ts + 1)
	t.vssInst = vss.New(rt, proto.Join(inst, "vss"), dealer, nPolys, cfg, coin, start,
		func(shares []field.Element) { t.onVSS(shares) })
	n := cfg.N
	t.verBeaver = make([][]*Beaver, l)
	t.gamma = make([][]*Recon, l)
	t.open = make([][]*Recon, l)
	t.resolved = make([][]*bool, l)
	t.verStart = make([][]bool, l)
	t.pendingOpen = make([][]bool, l)
	t.openStart = make([][]bool, l)
	t.zAt = make([][]field.Element, l)
	for m := 0; m < l; m++ {
		m := m
		t.trans[m] = NewTripTrans(rt, proto.Join(inst, "tt", fmt.Sprint(m)), cfg, cfg.Ts, func(res *TransResult) {
			t.transR[m] = res
			t.tryVerifySlot(m)
			for j := 1; j <= cfg.N; j++ {
				t.tryOpen(m, j)
			}
			t.maybeFinish()
		})
		t.verBeaver[m] = make([]*Beaver, n+1)
		t.gamma[m] = make([]*Recon, n+1)
		t.open[m] = make([]*Recon, n+1)
		t.resolved[m] = make([]*bool, n+1)
		t.verStart[m] = make([]bool, n+1)
		t.pendingOpen[m] = make([]bool, n+1)
		t.openStart[m] = make([]bool, n+1)
		t.zAt[m] = make([]field.Element, n+1)
		for j := 1; j <= n; j++ {
			j := j
			t.verBeaver[m][j] = NewBeaver(rt, proto.Join(inst, "vb", fmt.Sprint(m), fmt.Sprint(j)), cfg, func(zp field.Element) {
				// γ_j = z'_j - Z(α_j), publicly reconstructed.
				t.gamma[m][j].Start([]field.Element{zp.Sub(t.zAt[m][j])})
			})
			t.gamma[m][j] = NewRecon(rt, proto.Join(inst, "g", fmt.Sprint(m), fmt.Sprint(j)), cfg, 1, func(vals []field.Element) {
				t.onGamma(m, j, vals[0])
			})
			t.open[m][j] = NewRecon(rt, proto.Join(inst, "o", fmt.Sprint(m), fmt.Sprint(j)), cfg, 3, func(vals []field.Element) {
				ok := vals[2] == vals[0].Mul(vals[1])
				t.resolve(m, j, ok)
			})
		}
	}
	return t
}

// Start picks L·(2ts+1) random multiplication triples and VSS-shares
// their component polynomials. Dealer only.
func (t *TripSh) Start(rng *rand.Rand) {
	if t.rt.ID() != t.dealer {
		panic("triples: TripSh.Start called by non-dealer")
	}
	k := 2*t.cfg.Ts + 1
	polys := make([]poly.Poly, 0, 3*t.L*k)
	for m := 0; m < t.L; m++ {
		for i := 0; i < k; i++ {
			x := field.Random(rng)
			y := field.Random(rng)
			z := x.Mul(y)
			polys = append(polys,
				poly.Random(rng, t.cfg.Ts, x),
				poly.Random(rng, t.cfg.Ts, y),
				poly.Random(rng, t.cfg.Ts, z))
		}
	}
	t.vssInst.Start(polys)
}

// StartTriples lets adversarial tests share explicit (possibly
// non-multiplicative) triples.
func (t *TripSh) StartTriples(rng *rand.Rand, vals [][3]field.Element) {
	if t.rt.ID() != t.dealer {
		panic("triples: TripSh.StartTriples called by non-dealer")
	}
	k := 2*t.cfg.Ts + 1
	if len(vals) != t.L*k {
		panic("triples: StartTriples needs L*(2ts+1) triples")
	}
	polys := make([]poly.Poly, 0, 3*len(vals))
	for _, v := range vals {
		polys = append(polys,
			poly.Random(rng, t.cfg.Ts, v[0]),
			poly.Random(rng, t.cfg.Ts, v[1]),
			poly.Random(rng, t.cfg.Ts, v[2]))
	}
	t.vssInst.Start(polys)
}

// SetVerification supplies the agreed verification providers and this
// party's shares of their verification triples.
func (t *TripSh) SetVerification(v Verification) {
	if t.verif != nil {
		return
	}
	t.verif = &v
	for m := 0; m < t.L; m++ {
		t.tryVerifySlot(m)
	}
}

// Done reports whether the L output triples have been computed.
func (t *TripSh) Done() bool { return t.done }

// Triples returns this party's output triple shares; valid after Done.
func (t *TripSh) Triples() []Triple { return t.out }

func (t *TripSh) onVSS(shares []field.Element) {
	k := 2*t.cfg.Ts + 1
	for m := 0; m < t.L; m++ {
		batch := make([]Triple, k)
		for i := 0; i < k; i++ {
			base := (m*k + i) * 3
			batch[i] = Triple{X: shares[base], Y: shares[base+1], Z: shares[base+2]}
		}
		t.trans[m].Start(batch)
	}
}

// tryVerifySlot launches the supervised verification of slot m once
// both the transformed triples and the verification material exist.
func (t *TripSh) tryVerifySlot(m int) {
	if t.transR[m] == nil || t.verif == nil {
		return
	}
	res := t.transR[m]
	for _, j := range t.verif.W {
		if t.verStart[m][j] {
			continue
		}
		t.verStart[m][j] = true
		pt, err := res.ShareAt(poly.Alpha(j))
		if err != nil {
			panic(err)
		}
		t.zAt[m][j] = pt.Z
		vs := t.verif.Shares[j]
		u, v, w := vs[3*m], vs[3*m+1], vs[3*m+2]
		t.verBeaver[m][j].Start(pt.X, pt.Y, u, v, w)
	}
}

func (t *TripSh) onGamma(m, j int, gamma field.Element) {
	if gamma.IsZero() {
		t.resolve(m, j, true)
		return
	}
	t.pendingOpen[m][j] = true
	t.tryOpen(m, j)
}

// tryOpen starts the suspected-triple reconstruction once this party's
// own transform exists (the γ value may arrive from other parties'
// shares first).
func (t *TripSh) tryOpen(m, j int) {
	if !t.pendingOpen[m][j] || t.openStart[m][j] || t.transR[m] == nil {
		return
	}
	t.openStart[m][j] = true
	// Suspected slot: publicly reconstruct (X(α_j), Y(α_j), Z(α_j)).
	pt, err := t.transR[m].ShareAt(poly.Alpha(j))
	if err != nil {
		panic(err)
	}
	t.open[m][j].Start([]field.Element{pt.X, pt.Y, pt.Z})
}

func (t *TripSh) resolve(m, j int, ok bool) {
	if t.resolved[m][j] != nil {
		return
	}
	t.resolved[m][j] = &ok
	t.maybeFinish()
}

func (t *TripSh) maybeFinish() {
	if t.done || t.verif == nil {
		return
	}
	out := make([]Triple, t.L)
	for m := 0; m < t.L; m++ {
		if t.transR[m] == nil {
			return
		}
		okAll := true
		for _, j := range t.verif.W {
			r := t.resolved[m][j]
			if r == nil {
				return
			}
			okAll = okAll && *r
		}
		if okAll {
			pt, err := t.transR[m].ShareAt(poly.Beta(t.cfg.N, 1))
			if err != nil {
				panic(err)
			}
			out[m] = pt
		} else {
			out[m] = Triple{} // default (0,0,0) sharing on behalf of D
		}
	}
	t.done = true
	t.out = out
	if t.onDone != nil {
		t.onDone(out)
	}
}
