package triples

import (
	"fmt"

	"repro/field"
	"repro/internal/aba"
	"repro/internal/acs"
	"repro/internal/ba"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/poly"
)

// ExtractParams returns the extraction geometry of Fig 10: the
// transformation degree d = ⌊(n-ts-1)/2⌋ (so that 2d+1 ≤ n-ts triple
// providers are used), the per-extraction yield d+1-ts, and the batch
// count L needed to produce cM triples.
func ExtractParams(cfg proto.Config, cM int) (d, yield, l int) {
	d = (cfg.N - cfg.Ts - 1) / 2
	yield = d + 1 - cfg.Ts
	if yield < 1 {
		panic(fmt.Sprintf("triples: no extraction yield for n=%d ts=%d", cfg.N, cfg.Ts))
	}
	l = (cM + yield - 1) / yield
	return d, yield, l
}

// PreprocessingDeadline returns TTripGen - T0 = TTripSh + 2·TBA + Δ.
func PreprocessingDeadline(cfg proto.Config) sim.Time {
	tb := timing.New(cfg.N, cfg.Ts, cfg.Delta, cfg.CoinRounds)
	return TripShDeadline(cfg) + 2*tb.BA + cfg.Delta
}

// Preprocessing implements ΠPreProcessing (Fig 10, Theorem 6.5): it
// outputs cM ts-shared multiplication triples that are uniformly random
// from the adversary's point of view.
//
// Every party runs ΠTripSh as a dealer for L triples. One *shared*
// verification ΠACS serves all n ΠTripSh instances: each party inputs
// L verification triples per dealer slot (3·L·n polynomials), and the
// agreed provider set W is reused across dealers — a faithful
// constant-factor optimisation over Fig 8's per-dealer ΠACS (each
// supervised verification still consumes its own fresh verification
// triple; see DESIGN.md). A ΠBA per dealer then fixes the set CS of
// the first n-ts dealers with completed sharings, and L runs of
// ΠTripExt (Fig 9) extract d+1-ts fresh random triples each from the
// first 2d+1 members of CS.
type Preprocessing struct {
	rt    *proto.Runtime
	inst  string
	cfg   proto.Config
	cM    int
	d     int
	yield int
	L     int
	start sim.Time

	verifACS *acs.ACS
	dealers  []*TripSh
	bas      []*ba.BA
	baGiven  map[int]bool
	baOut    map[int]*uint8
	phase2   bool
	zeroWave bool
	ones     int
	cs       []int

	dealerOut map[int][]Triple
	exts      []*TripTrans
	extDone   []bool

	done   bool
	out    []Triple
	onDone func([]Triple)
}

// NewPreprocessing registers a preprocessing instance anchored at
// start; every party must call Start there.
func NewPreprocessing(rt *proto.Runtime, inst string, cM int, cfg proto.Config, coin aba.CoinSource, start sim.Time, onDone func([]Triple)) *Preprocessing {
	d, yield, l := ExtractParams(cfg, cM)
	p := &Preprocessing{
		rt:        rt,
		inst:      inst,
		cfg:       cfg,
		cM:        cM,
		d:         d,
		yield:     yield,
		L:         l,
		start:     start,
		dealers:   make([]*TripSh, cfg.N+1),
		bas:       make([]*ba.BA, cfg.N+1),
		baGiven:   make(map[int]bool),
		baOut:     make(map[int]*uint8),
		dealerOut: make(map[int][]Triple),
		exts:      make([]*TripTrans, l),
		extDone:   make([]bool, l),
		onDone:    onDone,
	}
	n := cfg.N
	// Shared verification ACS: 3·L·n polynomials per provider.
	p.verifACS = acs.New(rt, proto.Join(inst, "vacs"), 3*l*n, cfg, coin, start,
		func(cs []int, shares map[int][]field.Element) { p.onVerifACS(cs, shares) })
	for j := 1; j <= n; j++ {
		j := j
		p.dealers[j] = NewTripSh(rt, proto.Join(inst, "ts", fmt.Sprint(j)), j, l, cfg, coin, start,
			func(ts []Triple) { p.onDealer(j, ts) })
		p.bas[j] = ba.New(rt, proto.Join(inst, "ba", fmt.Sprint(j)), cfg.Ts, cfg.Delta,
			start+TripShDeadline(cfg), coin,
			func(v uint8) { p.onBA(j, v) })
	}
	for m := 0; m < l; m++ {
		m := m
		p.exts[m] = NewTripTrans(rt, proto.Join(inst, "ext", fmt.Sprint(m)), cfg, d, func(res *TransResult) {
			p.extDone[m] = true
			p.maybeFinish()
		})
	}
	rt.AtProcessing(start+TripShDeadline(cfg), func() { p.enterPhase2() })
	return p
}

// Start draws this party's dealer triples and verification triples and
// launches its dealer ΠTripSh plus its verification-ACS contribution.
func (p *Preprocessing) Start() {
	rng := p.rt.Rand()
	p.dealers[p.rt.ID()].Start(rng)
	// Verification triples: L per dealer slot, each a fresh random
	// multiplication triple shared through degree-ts polynomials.
	polys := make([]poly.Poly, 0, 3*p.L*p.cfg.N)
	for jd := 1; jd <= p.cfg.N; jd++ {
		for m := 0; m < p.L; m++ {
			u := field.Random(rng)
			v := field.Random(rng)
			w := u.Mul(v)
			polys = append(polys,
				poly.Random(rng, p.cfg.Ts, u),
				poly.Random(rng, p.cfg.Ts, v),
				poly.Random(rng, p.cfg.Ts, w))
		}
	}
	p.verifACS.Start(polys)
}

// Done reports completion.
func (p *Preprocessing) Done() bool { return p.done }

// Triples returns the cM output triple shares; valid after Done.
func (p *Preprocessing) Triples() []Triple { return p.out }

// CS returns the agreed dealer subset; valid once decided.
func (p *Preprocessing) CS() []int { return p.cs }

func (p *Preprocessing) onVerifACS(cs []int, shares map[int][]field.Element) {
	// Slice each provider's flattened polynomials per dealer slot:
	// provider's layout is [dealer jd][slot m][u,v,w].
	for jd := 1; jd <= p.cfg.N; jd++ {
		ver := Verification{W: cs, Shares: make(map[int][]field.Element, len(cs))}
		for _, prov := range cs {
			all := shares[prov]
			base := (jd - 1) * 3 * p.L
			ver.Shares[prov] = all[base : base+3*p.L]
		}
		p.dealers[jd].SetVerification(ver)
	}
}

func (p *Preprocessing) onDealer(j int, ts []Triple) {
	if _, dup := p.dealerOut[j]; dup {
		return
	}
	p.dealerOut[j] = ts
	if p.phase2 && !p.baGiven[j] {
		p.baGiven[j] = true
		p.bas[j].Start(1)
	}
	p.tryExtract()
}

func (p *Preprocessing) enterPhase2() {
	p.phase2 = true
	for j := 1; j <= p.cfg.N; j++ {
		if _, ok := p.dealerOut[j]; ok && !p.baGiven[j] {
			p.baGiven[j] = true
			p.bas[j].Start(1)
		}
	}
}

func (p *Preprocessing) onBA(j int, v uint8) {
	vv := v
	p.baOut[j] = &vv
	if v == 1 {
		p.ones++
		if p.ones >= p.cfg.N-p.cfg.Ts && !p.zeroWave {
			p.zeroWave = true
			for k := 1; k <= p.cfg.N; k++ {
				if !p.baGiven[k] {
					p.baGiven[k] = true
					p.bas[k].Start(0)
				}
			}
		}
	}
	if p.cs == nil {
		for k := 1; k <= p.cfg.N; k++ {
			if p.baOut[k] == nil {
				return
			}
		}
		// CS = first n-ts parties whose ΠBA output 1 (Fig 10).
		var cs []int
		for k := 1; k <= p.cfg.N && len(cs) < p.cfg.N-p.cfg.Ts; k++ {
			if *p.baOut[k] == 1 {
				cs = append(cs, k)
			}
		}
		p.cs = cs
	}
	p.tryExtract()
}

// tryExtract starts the L ΠTripExt transformations once CS is decided
// and the first 2d+1 CS dealers' outputs are held.
func (p *Preprocessing) tryExtract() {
	if p.cs == nil {
		return
	}
	if len(p.cs) < 2*p.d+1 {
		// Cannot happen: |CS| = n-ts ≥ 2d+1 by construction.
		panic("triples: CS smaller than extraction width")
	}
	providers := p.cs[:2*p.d+1]
	for _, j := range providers {
		if _, ok := p.dealerOut[j]; !ok {
			return
		}
	}
	for m := 0; m < p.L; m++ {
		batch := make([]Triple, 0, 2*p.d+1)
		for _, j := range providers {
			batch = append(batch, p.dealerOut[j][m])
		}
		p.exts[m].Start(batch)
	}
}

func (p *Preprocessing) maybeFinish() {
	if p.done {
		return
	}
	for m := 0; m < p.L; m++ {
		if !p.extDone[m] {
			return
		}
	}
	out := make([]Triple, 0, p.L*p.yield)
	for m := 0; m < p.L; m++ {
		res := p.exts[m].Result()
		for k := 1; k <= p.yield; k++ {
			pt, err := res.ShareAt(poly.Beta(p.cfg.N, k))
			if err != nil {
				panic(err)
			}
			out = append(out, pt)
		}
	}
	p.done = true
	p.out = out[:p.cM]
	if p.onDone != nil {
		p.onDone(p.out)
	}
}
