// Package triples implements the paper's Section 6 preprocessing stack:
// public reconstruction of shared values, Beaver multiplication
// (Fig 6), triple transformation ΠTripTrans (Fig 7), verifiable triple
// sharing ΠTripSh (Fig 8), triple extraction ΠTripExt (Fig 9), and the
// full preprocessing protocol ΠPreProcessing (Fig 10) that produces cM
// random ts-shared multiplication triples in either network type.
package triples

import (
	"repro/field"
	"repro/internal/proto"
	"repro/internal/rs"
	"repro/internal/wire"
	"repro/poly"
)

// msgShares carries a party's shares of a batch of values under public
// reconstruction.
const msgShares uint8 = 1

// Recon publicly reconstructs a batch of ts-shared values: every party
// sends its shares to every party, and each applies OEC(ts, ts, P) per
// value (Fig 6's reconstruction step). All honest parties obtain the
// same values: within Δ in a synchronous network, eventually in an
// asynchronous one.
type Recon struct {
	rt      *proto.Runtime
	inst    string
	cfg     proto.Config
	batch   int
	started bool
	oecs    []*rs.OEC
	pending map[int][]field.Element
	done    bool
	values  []field.Element
	onDone  func(values []field.Element)
}

// NewRecon registers a public-reconstruction instance for a batch of
// values. Start must be called with this party's shares.
func NewRecon(rt *proto.Runtime, inst string, cfg proto.Config, batch int, onDone func([]field.Element)) *Recon {
	r := &Recon{
		rt:      rt,
		inst:    inst,
		cfg:     cfg,
		batch:   batch,
		oecs:    make([]*rs.OEC, batch),
		pending: make(map[int][]field.Element),
		onDone:  onDone,
	}
	for i := range r.oecs {
		// Batched decoders see identical point sequences; share one
		// interpolation kernel through the per-run cache.
		r.oecs[i] = rs.NewOECCached(cfg.Ts, cfg.Ts, rt.Kernels())
	}
	rt.Register(inst, r)
	return r
}

// Start contributes this party's shares and begins reconstruction.
func (r *Recon) Start(shares []field.Element) {
	if r.started {
		return
	}
	if len(shares) != r.batch {
		panic("triples: Recon.Start with wrong batch size")
	}
	r.started = true
	r.rt.SendAll(r.inst, msgShares, wire.NewWriterCap(2+8*len(shares)).Elements(shares).Bytes())
}

// Done reports whether the values have been reconstructed.
func (r *Recon) Done() bool { return r.done }

// Values returns the reconstructed batch; valid only after Done.
func (r *Recon) Values() []field.Element { return r.values }

// Deliver implements proto.Handler.
func (r *Recon) Deliver(from int, msgType uint8, body []byte) {
	if msgType != msgShares || r.done {
		return
	}
	if _, dup := r.pending[from]; dup {
		return
	}
	rd := wire.NewReader(body)
	shares := rd.Elements()
	if rd.Done() != nil || len(shares) != r.batch {
		return
	}
	r.pending[from] = shares
	for i, o := range r.oecs {
		o.Add(poly.Alpha(from), shares[i])
	}
	r.poll()
}

func (r *Recon) poll() {
	values := make([]field.Element, r.batch)
	for i, o := range r.oecs {
		q, ok := o.Poll()
		if !ok {
			return
		}
		values[i] = q.Eval(field.Zero)
	}
	r.done = true
	r.values = values
	if r.onDone != nil {
		r.onDone(values)
	}
}
