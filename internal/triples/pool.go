package triples

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/aba"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/sim"
)

// ErrPoolExhausted is the sentinel wrapped by every Reserve failure: the
// pool holds fewer unreserved triples than the request. It is a typed,
// recoverable condition — the caller refills the pool (Fill) and
// retries; nothing about the party's World is damaged.
var ErrPoolExhausted = errors.New("triples: pool exhausted")

// ExhaustedError reports a failed reservation with its accounting, and
// matches ErrPoolExhausted under errors.Is.
type ExhaustedError struct {
	// Need is the requested triple count, Have the unreserved triples
	// available at the time of the request.
	Need, Have int
	// Pending is the triple count an in-flight Fill will add when it
	// completes (0 = no fill in flight). It distinguishes "empty — the
	// caller must Fill" from "refilling — the caller should let the
	// batch land and retry".
	Pending int
}

func (e *ExhaustedError) Error() string {
	if e.Pending > 0 {
		return fmt.Sprintf("triples: pool exhausted: need %d triples, have %d, refill of %d in flight (retry once it lands)",
			e.Need, e.Have, e.Pending)
	}
	return fmt.Sprintf("triples: pool exhausted: need %d triples, have %d (refill with Fill)", e.Need, e.Have)
}

// Unwrap lets errors.Is(err, ErrPoolExhausted) succeed.
func (e *ExhaustedError) Unwrap() error { return ErrPoolExhausted }

// PoolStats is the pool's cumulative reservation/consume accounting,
// JSON-tagged so engine stats and checkpoint inspection can report pool
// depth without reaching into internals.
type PoolStats struct {
	// Batches is the number of ΠPreProcessing fills spawned so far.
	Batches int `json:"batches"`
	// Generated counts every triple a completed fill produced;
	// Reserved counts triples handed out through Reserve (net of
	// releases); Available = Generated - Reserved.
	Generated int `json:"generated"`
	Reserved  int `json:"reserved"`
	Available int `json:"available"`
	// Filling is the triple count of the in-flight fill batch (0 = no
	// fill in flight).
	Filling int `json:"filling"`
}

// Pool is one party's budgeted multiplication-triple store: a
// ΠPreProcessing front-end decoupled from any single circuit's cM.
//
// Where Preprocessing generates exactly the triples one evaluation
// consumes, a Pool is filled by *budget* — each Fill spawns one
// ΠPreProcessing batch in its own instance namespace ("<inst>/b<k>"),
// rounded up to whole extraction batches so nothing Fig 9 produces is
// discarded — and drained by *reservation*: an evaluation reserves the
// cM triples it needs and consumes them, and the next evaluation
// reserves the following cM, until the pool is exhausted
// (ErrPoolExhausted) and a refill batch tops it up. All parties of a
// World drive their pools through the same deterministic sequence of
// fills and reservations, so slot k of every party's pool holds that
// party's share of the same ts-shared triple.
type Pool struct {
	rt   *proto.Runtime
	inst string
	cfg  proto.Config
	coin aba.CoinSource

	batches int
	filling *Preprocessing
	// fillPending is the triple count the in-flight fill will add (0
	// when filling == nil). Kept separately because a restored pool
	// records that a fill was in flight (see PoolState.FillPending)
	// without holding a live Preprocessing.
	fillPending int

	avail []Triple
	// seqs[k] is the generation sequence number of avail[k]. The pool
	// hands triples out strictly in generation order, and Release
	// reinserts at the reservation's original offset, so seqs (and
	// therefore avail) is always sorted ascending. Without the ordering,
	// two overlapping epochs releasing out of order would permute the
	// pool against generation order and break bit-identical replay.
	seqs      []int64
	nextSeq   int64
	generated int
	reserved  int
}

// NewPool creates an empty pool rooted at instance namespace inst.
func NewPool(rt *proto.Runtime, inst string, cfg proto.Config, coin aba.CoinSource) *Pool {
	return &Pool{rt: rt, inst: inst, cfg: cfg, coin: coin}
}

// trace emits a pool event through the owning runtime's tracer. inst
// carries the batch namespace for fill events and is "" elsewhere; a
// and b are the kind-specific slots documented on the obs kinds.
func (p *Pool) trace(kind obs.Kind, inst string, a, b int) {
	if tr := p.rt.Tracer(); tr != nil {
		tr.Emit(obs.Event{
			Kind: kind, Tick: int64(p.rt.Now()), Party: p.rt.ID(),
			Inst: inst, A: int64(a), B: int64(b),
		})
	}
}

// BatchSize returns the number of triples one Fill(budget) batch
// actually generates: budget rounded up to whole ΠTripExt extractions
// (L·(d+1-ts), Fig 9/10 geometry), so no extracted triple is wasted.
func BatchSize(cfg proto.Config, budget int) int {
	_, yield, l := ExtractParams(cfg, budget)
	return l * yield
}

// Fill spawns one budgeted ΠPreProcessing batch anchored at start and
// returns the number of triples it will add (BatchSize(cfg, budget)).
// Every party must call Fill with the same budget at the same
// structural time; when the batch's protocol completes, the new triples
// are appended to the pool and onDone (optional) fires with the batch
// yield. launch=false registers the batch instance without starting
// this party's dealer contribution (a party the adversary silenced
// from the start still receives and processes the others' traffic). A
// second Fill may not start while one is in flight.
func (p *Pool) Fill(budget int, start sim.Time, launch bool, onDone func(got int)) (int, error) {
	if budget < 1 {
		return 0, fmt.Errorf("triples: pool fill budget must be >= 1, have %d", budget)
	}
	if p.filling != nil {
		return 0, fmt.Errorf("triples: pool %q already has a fill in flight", p.inst)
	}
	cM := BatchSize(p.cfg, budget)
	inst := proto.Join(p.inst, fmt.Sprintf("b%d", p.batches))
	p.batches++
	p.trace(obs.KPoolFill, inst, cM, len(p.avail))
	p.fillPending = cM
	p.filling = NewPreprocessing(p.rt, inst, cM, p.cfg, p.coin, start, func(ts []Triple) {
		p.filling = nil
		p.fillPending = 0
		p.avail = append(p.avail, ts...)
		for range ts {
			p.seqs = append(p.seqs, p.nextSeq)
			p.nextSeq++
		}
		p.generated += len(ts)
		p.trace(obs.KPoolFillDone, inst, len(ts), len(p.avail))
		if onDone != nil {
			onDone(len(ts))
		}
	})
	if launch {
		// Launch the dealer contribution at the structural anchor, not
		// at call time: a refill batch is requested mid-session, but the
		// synchronous sub-protocols assume sends begin at start.
		pp := p.filling
		if start > p.rt.Now() {
			p.rt.At(start, func() { pp.Start() })
		} else {
			pp.Start()
		}
	}
	return cM, nil
}

// Filling reports whether a fill batch is still in flight.
func (p *Pool) Filling() bool { return p.filling != nil }

// Available returns the number of unreserved triples.
func (p *Pool) Available() int { return len(p.avail) }

// Stats returns the cumulative accounting.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Batches:   p.batches,
		Generated: p.generated,
		Reserved:  p.reserved,
		Available: len(p.avail),
		Filling:   p.fillPending,
	}
}

// Reserve hands out the next k triples in generation order. On
// exhaustion it returns an *ExhaustedError (errors.Is-matching
// ErrPoolExhausted) and leaves the pool untouched: the caller can Fill
// and retry. k = 0 is a valid empty reservation (a linear circuit).
func (p *Pool) Reserve(k int) (*Reservation, error) {
	if k < 0 {
		return nil, fmt.Errorf("triples: reserve of %d triples", k)
	}
	if k > len(p.avail) {
		p.trace(obs.KPoolExhaust, "", k, len(p.avail))
		return nil, &ExhaustedError{Need: k, Have: len(p.avail), Pending: p.fillPending}
	}
	r := &Reservation{pool: p, trips: p.avail[:k:k], seqs: p.seqs[:k:k]}
	p.avail = p.avail[k:]
	p.seqs = p.seqs[k:]
	p.reserved += k
	p.trace(obs.KPoolReserve, "", k, len(p.avail))
	return r, nil
}

// Reservation is a claim on a contiguous run of pool triples, handed to
// exactly one evaluation. Triples returns the shares; Release returns
// an unconsumed reservation to the pool at its original generation
// offset (the error path where a sibling party's reservation failed and
// the evaluation never started).
type Reservation struct {
	pool     *Pool
	trips    []Triple
	seqs     []int64
	released bool
}

// Count returns the number of reserved triples.
func (r *Reservation) Count() int { return len(r.trips) }

// Triples returns this party's shares of the reserved triples, in
// generation order.
func (r *Reservation) Triples() []Triple { return r.trips }

// Release puts the reservation back into the pool at its original
// generation offset, undoing Reserve. Reinsertion is by sequence
// number, not at the pool front: overlapping epochs may release out of
// order, and a front-prepend would permute the pool against generation
// order, silently diverging a replay of the same call sequence.
// Releasing twice is a no-op.
func (r *Reservation) Release() {
	if r.released || len(r.trips) == 0 {
		r.released = true
		return
	}
	r.released = true
	p := r.pool
	// The reservation's seqs are a contiguous run no live pool entry
	// falls inside (Reserve takes prefixes; releases restore sorted
	// order), so the whole run splices in at one point.
	at := sort.Search(len(p.seqs), func(k int) bool { return p.seqs[k] > r.seqs[0] })
	avail := make([]Triple, 0, len(p.avail)+len(r.trips))
	avail = append(avail, p.avail[:at]...)
	avail = append(avail, r.trips...)
	avail = append(avail, p.avail[at:]...)
	seqs := make([]int64, 0, len(p.seqs)+len(r.seqs))
	seqs = append(seqs, p.seqs[:at]...)
	seqs = append(seqs, r.seqs...)
	seqs = append(seqs, p.seqs[at:]...)
	p.avail, p.seqs = avail, seqs
	p.reserved -= len(r.trips)
	p.trace(obs.KPoolRelease, "", len(r.trips), len(p.avail))
}
