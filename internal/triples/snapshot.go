package triples

import (
	"encoding/binary"
	"fmt"

	"repro/field"
	"repro/internal/aba"
	"repro/internal/proto"
)

// tripleWire is the encoded size of one Triple: X, Y, Z as fixed-width
// little-endian words.
const tripleWire = 3 * field.ElementSize

// PoolState is a Pool's serializable state: the accounting counters,
// the in-flight-fill marker and the available (unreserved) triples. A
// checkpoint must happen with no outstanding Reservation — reservations
// are handed to exactly one evaluation and die with it — so Reserved
// here counts *consumed* triples, and the invariant
// Generated == Reserved + len(avail) must hold on restore.
type PoolState struct {
	// Batches is the fill counter: restored pools continue batch
	// namespaces at "<inst>/b<Batches>", so a post-restore refill can
	// never collide with a pre-checkpoint batch's instance paths.
	Batches   int `json:"batches"`
	Generated int `json:"generated"`
	Reserved  int `json:"reserved"`
	// FillPending is the batch size of a fill that was in flight at
	// snapshot time (0 = none). An honest engine refuses to snapshot
	// mid-fill, but a corrupt party's pool can be stuck filling forever
	// (its batch never completes on a sabotaged world); recording the
	// fact keeps a restored run's Fill/Reserve behaviour — including
	// the "already has a fill in flight" refusal and ExhaustedError's
	// Pending count — identical to the uninterrupted run's.
	FillPending int `json:"fillPending,omitempty"`
	// Triples is the EncodeTriples encoding of the available triples.
	Triples []byte `json:"triples,omitempty"`
}

// EncodeTriples renders triples as fixed-width binary: 24 bytes per
// triple (X, Y, Z little-endian), the format PoolState.Triples carries.
func EncodeTriples(ts []Triple) []byte {
	out := make([]byte, 0, len(ts)*tripleWire)
	for _, t := range ts {
		out = binary.LittleEndian.AppendUint64(out, uint64(t.X))
		out = binary.LittleEndian.AppendUint64(out, uint64(t.Y))
		out = binary.LittleEndian.AppendUint64(out, uint64(t.Z))
	}
	return out
}

// DecodeTriples parses an EncodeTriples blob, rejecting truncation and
// non-canonical (≥ modulus) share words.
func DecodeTriples(b []byte) ([]Triple, error) {
	if len(b)%tripleWire != 0 {
		return nil, fmt.Errorf("triples: triple blob of %d bytes is not a multiple of %d", len(b), tripleWire)
	}
	ts := make([]Triple, len(b)/tripleWire)
	for i := range ts {
		var w [3]field.Element
		for j := range w {
			v := binary.LittleEndian.Uint64(b[i*tripleWire+j*field.ElementSize:])
			if v >= field.Modulus {
				return nil, fmt.Errorf("triples: non-canonical share word %d in triple %d", v, i)
			}
			w[j] = field.Element(v)
		}
		ts[i] = Triple{X: w[0], Y: w[1], Z: w[2]}
	}
	return ts, nil
}

// Stats derives the pool-depth accounting a PoolState describes,
// without decoding the triple blob (Available is its triple count).
func (st *PoolState) Stats() PoolStats {
	return PoolStats{
		Batches:   st.Batches,
		Generated: st.Generated,
		Reserved:  st.Reserved,
		Available: len(st.Triples) / tripleWire,
		Filling:   st.FillPending,
	}
}

// Snapshot captures the pool's state. It must be taken with no
// outstanding Reservation (reservations are transient, owned by one
// evaluation); an in-flight fill is recorded, not serialized — the
// batch's protocol messages live in the scheduler, which the owning
// World refuses to checkpoint while they are pending.
func (p *Pool) Snapshot() *PoolState {
	return &PoolState{
		Batches:     p.batches,
		Generated:   p.generated,
		Reserved:    p.reserved,
		FillPending: p.fillPending,
		Triples:     EncodeTriples(p.avail),
	}
}

// abandonedFill marks a restored pool whose snapshot had a fill in
// flight: the batch's protocol state is gone (it lived in the crashed
// scheduler), but the pool must keep refusing a second Fill and
// reporting the pending count, exactly as the uninterrupted pool would.
var abandonedFill = &Preprocessing{}

// RestorePool rebuilds a pool from a snapshot, validating the
// accounting invariant and the triple encoding. rt/inst/cfg/coin must
// match the checkpointed pool's construction (the engine layer enforces
// config equality; this constructor validates only internal shape).
func RestorePool(rt *proto.Runtime, inst string, cfg proto.Config, coin aba.CoinSource, st *PoolState) (*Pool, error) {
	if st == nil {
		return nil, fmt.Errorf("triples: restore from nil pool state")
	}
	if st.Batches < 0 || st.Generated < 0 || st.Reserved < 0 || st.FillPending < 0 {
		return nil, fmt.Errorf("triples: pool state has negative counters (batches %d, generated %d, reserved %d, fillPending %d)",
			st.Batches, st.Generated, st.Reserved, st.FillPending)
	}
	ts, err := DecodeTriples(st.Triples)
	if err != nil {
		return nil, err
	}
	if st.Generated != st.Reserved+len(ts) {
		return nil, fmt.Errorf("triples: pool state violates generated == reserved + available: %d != %d + %d",
			st.Generated, st.Reserved, len(ts))
	}
	if st.FillPending > 0 && st.Batches == 0 {
		return nil, fmt.Errorf("triples: pool state has a pending fill but no batch ever started")
	}
	p := NewPool(rt, inst, cfg, coin)
	p.batches = st.Batches
	p.generated = st.Generated
	p.reserved = st.Reserved
	p.avail = ts
	// A snapshot never has outstanding reservations, so the available
	// triples ARE generation order: fresh consecutive sequence numbers
	// reproduce the live pool's ordering behaviour exactly.
	p.seqs = make([]int64, len(ts))
	for i := range p.seqs {
		p.seqs[i] = int64(i)
	}
	p.nextSeq = int64(len(ts))
	if st.FillPending > 0 {
		p.filling = abandonedFill
		p.fillPending = st.FillPending
	}
	return p, nil
}
