package triples

import (
	"fmt"

	"repro/field"
	"repro/internal/proto"
	"repro/poly"
)

// Triple is one party's shares of a shared triple (x, y, z).
type Triple struct {
	X, Y, Z field.Element
}

// TransResult is the outcome of ΠTripTrans at one party: shares of the
// correlated triples (X(α_i), Y(α_i), Z(α_i)) for i = 1..2d+1, where
// X, Y have degree d and Z degree 2d, plus the Lagrange machinery to
// evaluate shares of X, Y, Z at further points.
type TransResult struct {
	D       int
	Triples []Triple // index i-1 holds shares of (X(α_i), Y(α_i), Z(α_i))
}

// ShareAt returns this party's shares of (X(p), Y(p), Z(p)) for an
// arbitrary evaluation point p, by Lagrange combination of the
// transformed shares (the paper's "Lagrange linear function").
func (t *TransResult) ShareAt(p field.Element) (Triple, error) {
	d := t.D
	xsPts := make([]field.Element, d+1)
	for i := 0; i <= d; i++ {
		xsPts[i] = poly.Alpha(i + 1)
	}
	cs, err := poly.LagrangeCoeffsAt(xsPts, p)
	if err != nil {
		return Triple{}, err
	}
	var out Triple
	for i := 0; i <= d; i++ {
		out.X = out.X.Add(cs[i].Mul(t.Triples[i].X))
		out.Y = out.Y.Add(cs[i].Mul(t.Triples[i].Y))
	}
	zsPts := make([]field.Element, 2*d+1)
	for i := 0; i <= 2*d; i++ {
		zsPts[i] = poly.Alpha(i + 1)
	}
	zs, err := poly.LagrangeCoeffsAt(zsPts, p)
	if err != nil {
		return Triple{}, err
	}
	for i := 0; i <= 2*d; i++ {
		out.Z = out.Z.Add(zs[i].Mul(t.Triples[i].Z))
	}
	return out, nil
}

// TripTrans implements ΠTripTrans (Fig 7, Lemma 6.2): it transforms
// 2d+1 independent ts-shared triples into correlated triples lying on
// polynomials X (degree d), Y (degree d) and Z (degree 2d) with
// X(α_i) = x̄_i, Y(α_i) = ȳ_i, Z(α_i) = z̄_i, preserving per-triple
// multiplicativity. The first d+1 triples are adopted unchanged; the
// remaining d supply the Beaver helpers for the new Z points. One
// communication round (the d parallel Beaver reconstructions).
type TripTrans struct {
	rt   *proto.Runtime
	inst string
	cfg  proto.Config
	d    int

	beavers []*Beaver
	outs    []*field.Element // z̄ shares for i = d+2..2d+1
	started bool
	input   []Triple

	done   bool
	result *TransResult
	onDone func(*TransResult)
}

// NewTripTrans registers a transformation instance for 2d+1 triples.
func NewTripTrans(rt *proto.Runtime, inst string, cfg proto.Config, d int, onDone func(*TransResult)) *TripTrans {
	t := &TripTrans{
		rt:      rt,
		inst:    inst,
		cfg:     cfg,
		d:       d,
		beavers: make([]*Beaver, d),
		outs:    make([]*field.Element, d),
		onDone:  onDone,
	}
	for k := 0; k < d; k++ {
		k := k
		t.beavers[k] = NewBeaver(rt, proto.Join(inst, "b", fmt.Sprint(k)), cfg, func(z field.Element) {
			t.outs[k] = &z
			t.maybeFinish()
		})
	}
	return t
}

// Start contributes this party's shares of the 2d+1 input triples.
func (t *TripTrans) Start(triples []Triple) {
	if t.started {
		return
	}
	if len(triples) != 2*t.d+1 {
		panic(fmt.Sprintf("triples: TripTrans.Start with %d triples, want %d", len(triples), 2*t.d+1))
	}
	t.started = true
	t.input = triples
	if t.d == 0 {
		t.maybeFinish()
		return
	}
	// New X and Y points at α_{d+2}..α_{2d+1} by Lagrange combination of
	// the first d+1 shares.
	base := make([]field.Element, t.d+1)
	for i := range base {
		base[i] = poly.Alpha(i + 1)
	}
	for k := 0; k < t.d; k++ {
		target := poly.Alpha(t.d + 2 + k)
		cs, err := poly.LagrangeCoeffsAt(base, target)
		if err != nil {
			panic(err)
		}
		var xNew, yNew field.Element
		for i := 0; i <= t.d; i++ {
			xNew = xNew.Add(cs[i].Mul(triples[i].X))
			yNew = yNew.Add(cs[i].Mul(triples[i].Y))
		}
		helper := triples[t.d+1+k]
		t.beavers[k].Start(xNew, yNew, helper.X, helper.Y, helper.Z)
	}
}

// Done reports completion.
func (t *TripTrans) Done() bool { return t.done }

// Result returns the transformed shares; valid only after Done.
func (t *TripTrans) Result() *TransResult { return t.result }

func (t *TripTrans) maybeFinish() {
	if t.done || !t.started {
		return
	}
	for _, o := range t.outs {
		if o == nil {
			return
		}
	}
	out := make([]Triple, 2*t.d+1)
	copy(out, t.input[:t.d+1])
	base := make([]field.Element, t.d+1)
	for i := range base {
		base[i] = poly.Alpha(i + 1)
	}
	for k := 0; k < t.d; k++ {
		target := poly.Alpha(t.d + 2 + k)
		cs, err := poly.LagrangeCoeffsAt(base, target)
		if err != nil {
			panic(err)
		}
		var xNew, yNew field.Element
		for i := 0; i <= t.d; i++ {
			xNew = xNew.Add(cs[i].Mul(t.input[i].X))
			yNew = yNew.Add(cs[i].Mul(t.input[i].Y))
		}
		out[t.d+1+k] = Triple{X: xNew, Y: yNew, Z: *t.outs[k]}
	}
	t.done = true
	t.result = &TransResult{D: t.d, Triples: out}
	if t.onDone != nil {
		t.onDone(t.result)
	}
}
