package triples

import (
	"fmt"

	"repro/field"
	"repro/internal/proto"
	"repro/poly"
)

// Triple is one party's shares of a shared triple (x, y, z).
type Triple struct {
	X, Y, Z field.Element
}

// TransResult is the outcome of ΠTripTrans at one party: shares of the
// correlated triples (X(α_i), Y(α_i), Z(α_i)) for i = 1..2d+1, where
// X, Y have degree d and Z degree 2d, plus the Lagrange machinery to
// evaluate shares of X, Y, Z at further points.
type TransResult struct {
	D       int
	Triples []Triple // index i-1 holds shares of (X(α_i), Y(α_i), Z(α_i))
	// kernels is the per-run interpolation-kernel cache (nil falls back
	// to the naive Lagrange path, e.g. for hand-built test values).
	kernels *poly.KernelCache
}

// coeffsAt returns the Lagrange coefficients for evaluating a shared
// degree-(m-1) polynomial over α_1..α_m at p, through the kernel cache
// when available.
func (t *TransResult) coeffsAt(m int, p field.Element) ([]field.Element, error) {
	if t.kernels != nil {
		kern, err := t.kernels.Alphas(m)
		if err != nil {
			return nil, err
		}
		return kern.CoeffsAt(p), nil
	}
	xs := make([]field.Element, m)
	for i := range xs {
		xs[i] = poly.Alpha(i + 1)
	}
	return poly.LagrangeCoeffsAt(xs, p)
}

// ShareAt returns this party's shares of (X(p), Y(p), Z(p)) for an
// arbitrary evaluation point p, by Lagrange combination of the
// transformed shares (the paper's "Lagrange linear function").
func (t *TransResult) ShareAt(p field.Element) (Triple, error) {
	d := t.D
	cs, err := t.coeffsAt(d+1, p)
	if err != nil {
		return Triple{}, err
	}
	var out Triple
	for i := 0; i <= d; i++ {
		out.X = out.X.MulAdd(cs[i], t.Triples[i].X)
		out.Y = out.Y.MulAdd(cs[i], t.Triples[i].Y)
	}
	zs, err := t.coeffsAt(2*d+1, p)
	if err != nil {
		return Triple{}, err
	}
	for i := 0; i <= 2*d; i++ {
		out.Z = out.Z.MulAdd(zs[i], t.Triples[i].Z)
	}
	return out, nil
}

// TripTrans implements ΠTripTrans (Fig 7, Lemma 6.2): it transforms
// 2d+1 independent ts-shared triples into correlated triples lying on
// polynomials X (degree d), Y (degree d) and Z (degree 2d) with
// X(α_i) = x̄_i, Y(α_i) = ȳ_i, Z(α_i) = z̄_i, preserving per-triple
// multiplicativity. The first d+1 triples are adopted unchanged; the
// remaining d supply the Beaver helpers for the new Z points. One
// communication round (the d parallel Beaver reconstructions).
type TripTrans struct {
	rt   *proto.Runtime
	inst string
	cfg  proto.Config
	d    int

	beavers []*Beaver
	outs    []*field.Element // z̄ shares for i = d+2..2d+1
	started bool
	input   []Triple

	done   bool
	result *TransResult
	onDone func(*TransResult)
}

// NewTripTrans registers a transformation instance for 2d+1 triples.
func NewTripTrans(rt *proto.Runtime, inst string, cfg proto.Config, d int, onDone func(*TransResult)) *TripTrans {
	t := &TripTrans{
		rt:      rt,
		inst:    inst,
		cfg:     cfg,
		d:       d,
		beavers: make([]*Beaver, d),
		outs:    make([]*field.Element, d),
		onDone:  onDone,
	}
	for k := 0; k < d; k++ {
		k := k
		t.beavers[k] = NewBeaver(rt, proto.Join(inst, "b", fmt.Sprint(k)), cfg, func(z field.Element) {
			t.outs[k] = &z
			t.maybeFinish()
		})
	}
	return t
}

// Start contributes this party's shares of the 2d+1 input triples.
func (t *TripTrans) Start(triples []Triple) {
	if t.started {
		return
	}
	if len(triples) != 2*t.d+1 {
		panic(fmt.Sprintf("triples: TripTrans.Start with %d triples, want %d", len(triples), 2*t.d+1))
	}
	t.started = true
	t.input = triples
	if t.d == 0 {
		t.maybeFinish()
		return
	}
	// New X and Y points at α_{d+2}..α_{2d+1} by Lagrange combination of
	// the first d+1 shares, through the cached kernel over α_1..α_{d+1}.
	kern, err := t.rt.Kernels().Alphas(t.d + 1)
	if err != nil {
		panic(err)
	}
	for k := 0; k < t.d; k++ {
		cs := kern.CoeffsAt(poly.Alpha(t.d + 2 + k))
		var xNew, yNew field.Element
		for i := 0; i <= t.d; i++ {
			xNew = xNew.MulAdd(cs[i], triples[i].X)
			yNew = yNew.MulAdd(cs[i], triples[i].Y)
		}
		helper := triples[t.d+1+k]
		t.beavers[k].Start(xNew, yNew, helper.X, helper.Y, helper.Z)
	}
}

// Done reports completion.
func (t *TripTrans) Done() bool { return t.done }

// Result returns the transformed shares; valid only after Done.
func (t *TripTrans) Result() *TransResult { return t.result }

func (t *TripTrans) maybeFinish() {
	if t.done || !t.started {
		return
	}
	for _, o := range t.outs {
		if o == nil {
			return
		}
	}
	out := make([]Triple, 2*t.d+1)
	copy(out, t.input[:t.d+1])
	if t.d > 0 {
		kern, err := t.rt.Kernels().Alphas(t.d + 1)
		if err != nil {
			panic(err)
		}
		for k := 0; k < t.d; k++ {
			cs := kern.CoeffsAt(poly.Alpha(t.d + 2 + k))
			var xNew, yNew field.Element
			for i := 0; i <= t.d; i++ {
				xNew = xNew.MulAdd(cs[i], t.input[i].X)
				yNew = yNew.MulAdd(cs[i], t.input[i].Y)
			}
			out[t.d+1+k] = Triple{X: xNew, Y: yNew, Z: *t.outs[k]}
		}
	}
	t.done = true
	t.result = &TransResult{D: t.d, Triples: out, kernels: t.rt.Kernels()}
	if t.onDone != nil {
		t.onDone(t.result)
	}
}
