package triples

import (
	"errors"
	"testing"

	"repro/internal/aba"
	"repro/internal/proto"
)

func poolWorld(t *testing.T) (*proto.World, []*Pool, proto.Config) {
	t.Helper()
	cfg := proto.Config{N: 5, Ts: 1, Ta: 1, Delta: 10, CoinRounds: 8}
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg, Network: proto.Sync, Seed: 1})
	coin := aba.DefaultCoin(1)
	pools := make([]*Pool, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		pools[i] = NewPool(w.Runtimes[i], "pool", cfg, coin)
	}
	return w, pools, cfg
}

// TestPoolFillReserveRefill walks the full pool lifecycle: a budgeted
// fill, sequential reservations down to exhaustion, the typed error,
// and a refill batch under a fresh instance namespace.
func TestPoolFillReserveRefill(t *testing.T) {
	w, pools, cfg := poolWorld(t)
	for i := 1; i <= cfg.N; i++ {
		got, err := pools[i].Fill(5, 0, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		if want := BatchSize(cfg, 5); got != want {
			t.Fatalf("Fill promised %d triples, BatchSize says %d", got, want)
		}
	}
	if !pools[1].Filling() {
		t.Fatal("pool not filling after Fill")
	}
	if _, err := pools[1].Fill(5, 0, true, nil); err == nil {
		t.Fatal("second Fill accepted while one is in flight")
	}
	w.RunToQuiescence()
	avail := pools[1].Available()
	if avail < 5 {
		t.Fatalf("pool holds %d triples, budget was 5", avail)
	}
	for i := 1; i <= cfg.N; i++ {
		if pools[i].Available() != avail {
			t.Fatalf("pool sizes diverge: party %d has %d, party 1 has %d", i, pools[i].Available(), avail)
		}
	}

	// The pool's slot k holds consistent shares across parties: spot-
	// check by reconstructing x·y = z from all parties' reservations.
	rsvs := make([]*Reservation, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		r, err := pools[i].Reserve(2)
		if err != nil {
			t.Fatal(err)
		}
		rsvs[i] = r
	}
	st := pools[1].Stats()
	if st.Reserved != 2 || st.Available != avail-2 || st.Generated != avail {
		t.Fatalf("accounting off after reserve: %+v", st)
	}

	// Exhaustion: ask for more than remains.
	_, err := pools[1].Reserve(avail)
	var ex *ExhaustedError
	if !errors.As(err, &ex) || !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("want ExhaustedError wrapping ErrPoolExhausted, got %v", err)
	}
	if ex.Need != avail || ex.Have != avail-2 {
		t.Fatalf("exhaustion accounting: %+v", ex)
	}
	if pools[1].Available() != avail-2 {
		t.Fatal("failed Reserve mutated the pool")
	}

	// Release puts a reservation back in front.
	rsvs[1].Release()
	if pools[1].Available() != avail {
		t.Fatalf("release did not restore: %d != %d", pools[1].Available(), avail)
	}
	rsvs[1].Release() // double release is a no-op
	if pools[1].Available() != avail {
		t.Fatal("double release duplicated triples")
	}

	// Refill appends a second batch in a new namespace.
	for i := 1; i <= cfg.N; i++ {
		if _, err := pools[i].Fill(3, w.Sched.Now(), true, nil); err != nil {
			t.Fatalf("refill: %v", err)
		}
	}
	w.RunToQuiescence()
	st = pools[2].Stats()
	if st.Batches != 2 {
		t.Fatalf("refill did not open batch 2: %+v", st)
	}
	if st.Generated <= avail {
		t.Fatalf("refill added nothing: %+v", st)
	}
}

// TestPoolReleaseOrderDeterminism is the regression test for the
// prepend-on-release bug: with overlapping epochs, reservations can be
// released in any order, and the pool must come back in generation
// order regardless — a front-prepend would leave the pool permuted and
// break bit-identical replay of the same call sequence.
func TestPoolReleaseOrderDeterminism(t *testing.T) {
	w, pools, cfg := poolWorld(t)
	for i := 1; i <= cfg.N; i++ {
		if _, err := pools[i].Fill(8, 0, true, nil); err != nil {
			t.Fatal(err)
		}
	}
	w.RunToQuiescence()
	p := pools[1]
	want := append([]Triple(nil), p.avail...)

	// Reserve three consecutive runs, then release them out of order
	// (middle, first, last): every interleaving must restore generation
	// order exactly.
	a, err := p.Reserve(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Reserve(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Reserve(3)
	if err != nil {
		t.Fatal(err)
	}
	b.Release()
	a.Release()
	c.Release()
	if p.Available() != len(want) {
		t.Fatalf("releases restored %d of %d triples", p.Available(), len(want))
	}
	for k, tr := range p.avail {
		if tr != want[k] {
			t.Fatalf("slot %d permuted after out-of-order release: %+v != %+v", k, tr, want[k])
		}
	}
	for k := 1; k < len(p.seqs); k++ {
		if p.seqs[k-1] >= p.seqs[k] {
			t.Fatalf("pool seqs unsorted at %d: %v", k, p.seqs[k-3:k+1])
		}
	}

	// A subsequent reserve hands out the same front run the pre-release
	// pool would have.
	r, err := p.Reserve(4)
	if err != nil {
		t.Fatal(err)
	}
	for k, tr := range r.Triples() {
		if tr != want[k] {
			t.Fatalf("post-release reserve slot %d: %+v != %+v", k, tr, want[k])
		}
	}
}

// TestPoolReserveZero: an all-linear circuit takes an empty
// reservation without touching the pool.
func TestPoolReserveZero(t *testing.T) {
	_, pools, _ := poolWorld(t)
	r, err := pools[1].Reserve(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 0 {
		t.Fatalf("empty reservation holds %d triples", r.Count())
	}
	if _, err := pools[1].Reserve(-1); err == nil {
		t.Fatal("negative reservation accepted")
	}
}

// TestPoolBadBudget: a non-positive fill budget is rejected.
func TestPoolBadBudget(t *testing.T) {
	_, pools, _ := poolWorld(t)
	if _, err := pools[1].Fill(0, 0, true, nil); err == nil {
		t.Fatal("Fill(0) accepted")
	}
}
