package proc_test

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/transport/proc"
	"repro/internal/wire"
)

// unixAddrs returns n socket paths under the test's temp dir.
func unixAddrs(t *testing.T, n int) []string {
	t.Helper()
	dir := t.TempDir()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = filepath.Join(dir, fmt.Sprintf("p%d.sock", i+1))
	}
	return addrs
}

// tcpAddrs returns n loopback listen specs with kernel-chosen ports.
func tcpAddrs(n int) []string {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	return addrs
}

// pingWorld assembles an n-party world over the given factory and runs
// a two-round ping/echo protocol, returning the delivery log (append
// order is the scheduler's delivery order — the determinism fingerprint),
// the final tick and the metrics snapshot.
func pingWorld(t *testing.T, n int, factory transport.Factory) ([]string, sim.Time, sim.MetricsSnapshot) {
	t.Helper()
	w, err := proto.NewWorldE(proto.WorldOpts{
		Cfg:       proto.Config{N: n, Ts: 1, Ta: 1},
		Network:   proto.Sync,
		Seed:      42,
		Transport: factory,
	})
	if err != nil {
		t.Fatalf("NewWorldE: %v", err)
	}
	defer w.Close()
	var log []string
	for i := 1; i <= n; i++ {
		rt := w.Runtimes[i]
		rt.Register("ping", proto.HandlerFunc(func(from int, msgType uint8, body []byte) {
			log = append(log, fmt.Sprintf("t%d p%d<-%d ty%d %q", rt.Now(), rt.ID(), from, msgType, body))
			if msgType == 0 {
				rt.Send("ping", from, 1, append([]byte("echo:"), body...))
			}
		}))
	}
	for to := 1; to <= n; to++ {
		w.Runtimes[1].Send("ping", to, 0, []byte{byte(to)})
	}
	w.RunToQuiescence()
	if err := w.TransportErr(); err != nil {
		t.Fatalf("transport fault: %v", err)
	}
	return log, w.Sched.Now(), w.Metrics().Snapshot()
}

// TestDifferentialPing runs the same seeded protocol over the in-memory
// simulator, unix sockets and TCP loopback; delivery order, final tick
// and metrics must be identical.
func TestDifferentialPing(t *testing.T) {
	const n = 5
	refLog, refTick, refMetrics := pingWorld(t, n, nil)
	if len(refLog) == 0 {
		t.Fatal("reference run delivered nothing")
	}
	backends := map[string]transport.Factory{
		"unix": proc.New(proc.Options{Kind: "unix", Addrs: unixAddrs(t, n)}),
		"tcp":  proc.New(proc.Options{Kind: "tcp", Addrs: tcpAddrs(n)}),
	}
	for name, factory := range backends {
		log, tick, metrics := pingWorld(t, n, factory)
		if tick != refTick {
			t.Errorf("%s: final tick %d, sim %d", name, tick, refTick)
		}
		if len(log) != len(refLog) {
			t.Fatalf("%s: %d deliveries, sim %d", name, len(log), len(refLog))
		}
		for i := range log {
			if log[i] != refLog[i] {
				t.Errorf("%s: delivery %d = %q, sim %q", name, i, log[i], refLog[i])
			}
		}
		if fmt.Sprintf("%+v", metrics) != fmt.Sprintf("%+v", refMetrics) {
			t.Errorf("%s: metrics diverge:\n%+v\nsim:\n%+v", name, metrics, refMetrics)
		}
	}
}

// TestWireStats checks that honest cross-party traffic physically
// crossed the sockets and self-sends stayed off the wire.
func TestWireStats(t *testing.T) {
	const n = 5
	factory := proc.New(proc.Options{Kind: "unix", Addrs: unixAddrs(t, n)})
	w, err := proto.NewWorldE(proto.WorldOpts{
		Cfg: proto.Config{N: n, Ts: 1, Ta: 0}, Network: proto.Sync, Seed: 7, Transport: factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 1; i <= n; i++ {
		w.Runtimes[i].Register("x", proto.HandlerFunc(func(int, uint8, []byte) {}))
	}
	w.Runtimes[1].SendAll("x", 0, []byte("payload"))
	w.RunToQuiescence()
	st := transport.Meter(w.Net)
	// n-1 cross-party frames; the self-send is direct.
	if st.FramesOut != n-1 || st.FramesIn != n-1 {
		t.Fatalf("frames out/in = %d/%d, want %d/%d", st.FramesOut, st.FramesIn, n-1, n-1)
	}
	if st.BytesOut == 0 || st.BytesOut != st.BytesIn {
		t.Fatalf("bytes out/in = %d/%d", st.BytesOut, st.BytesIn)
	}
}

// watchdog fails the test if fn does not return within the deadline:
// transport faults must surface as typed errors, never hangs.
func watchdog(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() { fn(); close(done) }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("run did not complete within watchdog deadline")
	}
}

// TestBringupAddressInUse: a listen address already bound elsewhere
// must fail bring-up with ErrBringup, not hang.
func TestBringupAddressInUse(t *testing.T) {
	addrs := tcpAddrs(5)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addrs[1] = ln.Addr().String()
	factory := proc.New(proc.Options{Kind: "tcp", Addrs: addrs, IOTimeout: 2 * time.Second})
	watchdog(t, 10*time.Second, func() {
		_, err = proto.NewWorldE(proto.WorldOpts{
			Cfg: proto.Config{N: 5, Ts: 1, Ta: 0}, Network: proto.Sync, Seed: 1, Transport: factory,
		})
	})
	if !errors.Is(err, proc.ErrBringup) {
		t.Fatalf("err = %v, want ErrBringup", err)
	}
}

// TestBringupDialRefused: a peer that cannot be dialed must fail
// bring-up with ErrBringup.
func TestBringupDialRefused(t *testing.T) {
	// Grab an ephemeral port and release it: dialing it is refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	factory := proc.New(proc.Options{
		Kind: "tcp", Addrs: tcpAddrs(5), IOTimeout: 2 * time.Second,
	}.WithDialOverride(2, dead))
	watchdog(t, 10*time.Second, func() {
		_, err = proto.NewWorldE(proto.WorldOpts{
			Cfg: proto.Config{N: 5, Ts: 1, Ta: 0}, Network: proto.Sync, Seed: 1, Transport: factory,
		})
	})
	if !errors.Is(err, proc.ErrBringup) {
		t.Fatalf("err = %v, want ErrBringup", err)
	}
}

// TestLargeBurstDoesNotWedge: a single-tick burst on one link far
// exceeding the kernel socket buffer plus the reader channel must
// drain cleanly. Send never blocks on a socket (frames queue for the
// link's writer goroutine), so a large burst cannot wedge the lockstep
// into a spurious write timeout — the failure mode large preprocessing
// batches over sockets used to hit.
func TestLargeBurstDoesNotWedge(t *testing.T) {
	const n, frames = 5, 2000
	factory := proc.New(proc.Options{
		Kind: "unix", Addrs: unixAddrs(t, n), IOTimeout: 2 * time.Second,
	})
	w, err := proto.NewWorldE(proto.WorldOpts{
		Cfg: proto.Config{N: n, Ts: 1, Ta: 0}, Network: proto.Sync, Seed: 11, Transport: factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var got int
	for i := 1; i <= n; i++ {
		w.Runtimes[i].Register("x", proto.HandlerFunc(func(int, uint8, []byte) { got++ }))
	}
	body := make([]byte, 8<<10)
	watchdog(t, 30*time.Second, func() {
		for k := 0; k < frames; k++ {
			w.Runtimes[1].Send("x", 2, 0, body)
		}
		w.RunToQuiescence()
	})
	if err := w.TransportErr(); err != nil {
		t.Fatalf("transport fault: %v", err)
	}
	if got != frames {
		t.Fatalf("delivered %d of %d burst messages", got, frames)
	}
	if st := transport.Meter(w.Net); st.FramesOut != frames || st.FramesIn != frames {
		t.Fatalf("frames out/in = %d/%d, want %d/%d", st.FramesOut, st.FramesIn, frames, frames)
	}
}

// buildFaultWorld assembles a 3-party world over unix sockets with a
// short IO timeout and returns it with its proc transport.
func buildFaultWorld(t *testing.T) (*proto.World, *proc.Transport) {
	t.Helper()
	factory := proc.New(proc.Options{
		Kind: "unix", Addrs: unixAddrs(t, 5), IOTimeout: 2 * time.Second,
	})
	w, err := proto.NewWorldE(proto.WorldOpts{
		Cfg: proto.Config{N: 5, Ts: 1, Ta: 0}, Network: proto.Sync, Seed: 9, Transport: factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		w.Runtimes[i].Register("x", proto.HandlerFunc(func(int, uint8, []byte) {}))
	}
	return w, w.Net.(*proc.Transport)
}

// TestConnDropSurfacesTypedError: a severed connection must drain the
// run and surface ErrConnLost, not hang or panic.
func TestConnDropSurfacesTypedError(t *testing.T) {
	w, tr := buildFaultWorld(t)
	defer w.Close()
	if err := tr.CloseLink(1, 2); err != nil {
		t.Fatal(err)
	}
	watchdog(t, 20*time.Second, func() {
		w.Runtimes[1].SendAll("x", 0, []byte("hello"))
		w.RunToQuiescence()
	})
	if err := w.TransportErr(); !errors.Is(err, proc.ErrConnLost) {
		t.Fatalf("err = %v, want ErrConnLost", err)
	}
}

// TestFrameCorruptionSurfacesTypedError: garbage on the wire must
// surface ErrConnLost wrapping the codec's CRC error.
func TestFrameCorruptionSurfacesTypedError(t *testing.T) {
	w, tr := buildFaultWorld(t)
	defer w.Close()
	if err := tr.InjectGarbage(1, 2); err != nil {
		t.Fatal(err)
	}
	watchdog(t, 20*time.Second, func() {
		w.Runtimes[1].SendAll("x", 0, []byte("hello"))
		w.RunToQuiescence()
	})
	err := w.TransportErr()
	if !errors.Is(err, proc.ErrConnLost) {
		t.Fatalf("err = %v, want ErrConnLost", err)
	}
	if !errors.Is(err, wire.ErrFrameCRC) {
		t.Fatalf("err = %v, want wire.ErrFrameCRC in chain", err)
	}
}
