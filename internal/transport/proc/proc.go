// Package proc implements the transport seam with parties as real
// goroutines exchanging CRC-framed, length-prefixed messages
// (wire.FrameWriter) over unix-domain or TCP-loopback sockets.
//
// The backend is a conservative lockstep design: the shared
// sim.Scheduler remains the sole time-and-order authority, exactly as
// in the in-memory simulator, and message bytes additionally make a
// physical round trip through the OS socket layer. Send executes the
// full simulator semantics synchronously in whichever goroutine calls
// it — interceptor for corrupt senders, metrics, policy delay drawn
// from the shared network RNG, KSend trace, typed delivery event — so
// the RNG consumption order, metrics, traces and the virtual schedule
// are bit-identical to the simulator's. Honest cross-party envelopes
// are also encoded as a CRC frame, tagged with the link's send
// sequence number, and queued for the link's writer goroutine to put
// on the (from -> to) socket — Send never blocks on a socket, so a
// preprocessing burst that momentarily exceeds the kernel's socket
// buffering cannot wedge the lockstep. When the scheduler later fires
// the delivery event, the coordinator awaits that exact frame off the
// wire (per-link reader goroutines assign arrival indices; socket FIFO
// makes arrival order equal send order), verifies it matches the
// scheduled envelope, and hands it to the addressee's party goroutine
// over an unbuffered rendezvous. The rendezvous is
// what makes the lockstep race-clean: while a party goroutine runs a
// handler the coordinator is blocked, so every access to the
// scheduler, RNG, metrics and link state is serialized with
// happens-before edges through the channels.
//
// Self-sends and corrupt senders' traffic (including interceptor
// output, whose envelopes the adversary may have rewritten) are
// delivered directly, tag 0, without touching a socket — exactly the
// traffic whose bytes the simulator's virtual accounting already
// treats specially.
//
// Faults never hang a run: socket writes carry deadlines, frame waits
// are bounded by IOTimeout, and the first fault latches a typed error
// (ErrBringup, ErrConnLost, ErrTimeout, ErrFrameMismatch) after which
// every remaining delivery is skipped, so the scheduler drains and the
// harness surfaces Transport.Err instead of a bogus protocol outcome.
package proc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Typed transport faults. Every failure mode of the backend wraps one
// of these sentinels, so harnesses can classify faults with errors.Is
// without parsing messages.
var (
	// ErrBringup marks a failure to assemble the socket mesh: a listen
	// address that cannot be bound, a peer that cannot be dialed, or a
	// broken handshake.
	ErrBringup = errors.New("proc: transport bring-up failed")
	// ErrConnLost marks a mid-run connection fault: a failed frame
	// write, a torn or corrupted read (wire.ErrFrameCRC is in its
	// chain), or a peer that vanished.
	ErrConnLost = errors.New("proc: connection lost")
	// ErrTimeout marks a scheduled delivery whose frame did not arrive
	// within IOTimeout.
	ErrTimeout = errors.New("proc: frame wait timed out")
	// ErrFrameMismatch marks a frame that arrived in sequence but does
	// not byte-match the envelope the scheduler delivered — the wire
	// and the virtual schedule disagree.
	ErrFrameMismatch = errors.New("proc: delivered frame does not match scheduled envelope")
)

// DefaultIOTimeout bounds socket writes and frame waits when Options
// leaves IOTimeout zero.
const DefaultIOTimeout = 10 * time.Second

// recvBuffer is the per-link channel capacity between a reader
// goroutine and the coordinator. A full channel parks the reader and
// lets the kernel socket buffer absorb the rest; no deadlock is
// possible because the coordinator never blocks on a socket (writes
// are queued to per-link writer goroutines) — it always progresses to
// the delivery that drains the link.
const recvBuffer = 256

// Options configures a socket-backed transport.
type Options struct {
	// Kind is the socket family: "unix" or "tcp".
	Kind string
	// Addrs holds one listen address per party, Addrs[i-1] for party i
	// (1-based). TCP addresses may use port 0; the bound port is
	// resolved before peers dial, and Addrs() reports the result.
	Addrs []string
	// IOTimeout bounds every socket write and every wait for a
	// scheduled frame; zero means DefaultIOTimeout.
	IOTimeout time.Duration

	// dialOverride reroutes the dial target for a party (test
	// instrumentation for bring-up fault coverage); keys are 1-based
	// party indices.
	dialOverride map[int]string
}

// WithDialOverride returns a copy of o that dials party i at addr
// instead of the party's resolved listen address. Test
// instrumentation: it forces the dial leg of bring-up to fail.
func (o Options) WithDialOverride(i int, addr string) Options {
	m := make(map[int]string, len(o.dialOverride)+1)
	for k, v := range o.dialOverride {
		m[k] = v
	}
	m[i] = addr
	o.dialOverride = m
	return o
}

// New returns a transport.Factory assembling a socket mesh with the
// given options when the world is built.
func New(opts Options) transport.Factory {
	return func(n int, sched *sim.Scheduler, policy sim.Policy, rng *rand.Rand) (transport.Transport, error) {
		return newTransport(n, sched, policy, rng, opts)
	}
}

// frameMsg is one decoded frame crossing from a reader goroutine to
// the coordinator, with its 1-based arrival index on the link.
type frameMsg struct {
	idx uint64
	env sim.Envelope
}

// link is one unidirectional (from -> to) connection. wconn is the
// sender-side endpoint, written only by the link's writer goroutine;
// rconn is the receiver-side endpoint, owned by the link's reader
// goroutine; sendSeq and stash are touched only under the lockstep
// (stash holds frames that arrived before their delivery event fired).
// outQ is the unbounded queue of encoded frames awaiting the writer —
// unbounded so that Send never blocks, which is what makes the
// lockstep deadlock-free under arbitrarily large send bursts; outBell
// is its 1-buffered doorbell.
type link struct {
	wconn   net.Conn
	rconn   net.Conn
	sendSeq uint64
	recv    chan frameMsg
	stash   map[uint64]sim.Envelope

	outMu   sync.Mutex
	outQ    [][]byte
	outBell chan struct{}
}

// party is one party's goroutine rendezvous: the coordinator pushes a
// delivered envelope on cmds and blocks on done until the handler
// returns.
type party struct {
	cmds chan sim.Envelope
	done chan struct{}
}

// Transport is the socket-backed transport backend. It implements
// transport.Transport and transport.WireMeter.
type Transport struct {
	n         int
	sched     *sim.Scheduler
	policy    sim.Policy
	rng       *rand.Rand
	ioTimeout time.Duration

	parties     []sim.Dispatcher // 1-based
	corrupt     map[int]bool
	interceptor sim.Interceptor
	metrics     *sim.Metrics
	tracer      obs.Tracer

	kind      string
	addrs     []string // resolved listen addresses, 1-based at [i-1]
	listeners []net.Listener
	links     [][]*link // [from][to]; nil on and outside the mesh
	procs     []*party  // 1-based

	framesOut atomic.Uint64
	bytesOut  atomic.Uint64
	framesIn  atomic.Uint64
	bytesIn   atomic.Uint64

	closed    atomic.Bool
	closedCh  chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	errMu    sync.Mutex
	err      error
	failCh   chan struct{}
	failOnce sync.Once
}

func newTransport(n int, sched *sim.Scheduler, policy sim.Policy, rng *rand.Rand, opts Options) (*Transport, error) {
	if opts.Kind != "unix" && opts.Kind != "tcp" {
		return nil, fmt.Errorf("%w: unknown socket kind %q", ErrBringup, opts.Kind)
	}
	if len(opts.Addrs) != n {
		return nil, fmt.Errorf("%w: %d addresses for %d parties", ErrBringup, len(opts.Addrs), n)
	}
	timeout := opts.IOTimeout
	if timeout <= 0 {
		timeout = DefaultIOTimeout
	}
	t := &Transport{
		n:         n,
		sched:     sched,
		policy:    policy,
		rng:       rng,
		ioTimeout: timeout,
		parties:   make([]sim.Dispatcher, n+1),
		corrupt:   make(map[int]bool),
		metrics:   sim.NewMetrics(n),
		kind:      opts.Kind,
		addrs:     make([]string, n),
		listeners: make([]net.Listener, n+1),
		links:     make([][]*link, n+1),
		procs:     make([]*party, n+1),
		closedCh:  make(chan struct{}),
		failCh:    make(chan struct{}),
	}
	for from := 1; from <= n; from++ {
		t.links[from] = make([]*link, n+1)
		for to := 1; to <= n; to++ {
			if from == to {
				continue
			}
			t.links[from][to] = &link{
				recv:    make(chan frameMsg, recvBuffer),
				stash:   make(map[uint64]sim.Envelope),
				outBell: make(chan struct{}, 1),
			}
		}
	}
	if err := t.bringup(opts); err != nil {
		t.Close()
		return nil, err
	}
	for i := 1; i <= n; i++ {
		p := &party{cmds: make(chan sim.Envelope), done: make(chan struct{})}
		t.procs[i] = p
		t.wg.Add(1)
		go t.partyLoop(p)
	}
	for from := 1; from <= n; from++ {
		for to := 1; to <= n; to++ {
			if l := t.links[from][to]; l != nil {
				t.wg.Add(2)
				go t.readLoop(from, to, l)
				go t.writeLoop(from, to, l)
			}
		}
	}
	return t, nil
}

// bringup assembles the n(n-1) unidirectional connection mesh: every
// party listens, every party dials every peer, and each dialer opens
// the connection with a 4-byte big-endian hello naming its own index
// so the acceptor can place the conn on the right link.
func (t *Transport) bringup(opts Options) error {
	for i := 1; i <= t.n; i++ {
		ln, err := net.Listen(t.kind, opts.Addrs[i-1])
		if err != nil {
			return fmt.Errorf("%w: listen party %d on %q: %v", ErrBringup, i, opts.Addrs[i-1], err)
		}
		t.listeners[i] = ln
		t.addrs[i-1] = ln.Addr().String()
	}
	deadline := time.Now().Add(t.ioTimeout)
	acceptErrs := make([]error, t.n+1)
	var accepts sync.WaitGroup
	for i := 1; i <= t.n; i++ {
		accepts.Add(1)
		go func(to int) {
			defer accepts.Done()
			acceptErrs[to] = t.acceptPeers(to, deadline)
		}(i)
	}
	var dialErr error
	for from := 1; from <= t.n && dialErr == nil; from++ {
		for to := 1; to <= t.n && dialErr == nil; to++ {
			if from == to {
				continue
			}
			dialErr = t.dialPeer(from, to, opts, deadline)
		}
	}
	if dialErr != nil {
		// Unblock the accept goroutines before reporting.
		for i := 1; i <= t.n; i++ {
			t.listeners[i].Close()
		}
	}
	accepts.Wait()
	for i := 1; i <= t.n; i++ {
		t.listeners[i].Close()
	}
	if dialErr != nil {
		return dialErr
	}
	for i := 1; i <= t.n; i++ {
		if acceptErrs[i] != nil {
			return acceptErrs[i]
		}
	}
	return nil
}

// acceptPeers accepts party to's n-1 inbound connections and places
// each on its (from -> to) link after reading the dialer's hello.
func (t *Transport) acceptPeers(to int, deadline time.Time) error {
	ln := t.listeners[to]
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := ln.(deadliner); ok {
		d.SetDeadline(deadline)
	}
	for k := 0; k < t.n-1; k++ {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("%w: accept for party %d: %v", ErrBringup, to, err)
		}
		conn.SetReadDeadline(deadline)
		var hello [4]byte
		if _, err := io.ReadFull(conn, hello[:]); err != nil {
			conn.Close()
			return fmt.Errorf("%w: hello for party %d: %v", ErrBringup, to, err)
		}
		conn.SetReadDeadline(time.Time{})
		from := int(binary.BigEndian.Uint32(hello[:]))
		if from < 1 || from > t.n || from == to {
			conn.Close()
			return fmt.Errorf("%w: party %d accepted hello from invalid party %d", ErrBringup, to, from)
		}
		l := t.links[from][to]
		if l.rconn != nil {
			conn.Close()
			return fmt.Errorf("%w: duplicate connection %d -> %d", ErrBringup, from, to)
		}
		l.rconn = conn
	}
	return nil
}

// dialPeer opens the (from -> to) sender-side connection.
func (t *Transport) dialPeer(from, to int, opts Options, deadline time.Time) error {
	addr := t.addrs[to-1]
	if o, ok := opts.dialOverride[to]; ok {
		addr = o
	}
	conn, err := net.DialTimeout(t.kind, addr, time.Until(deadline))
	if err != nil {
		return fmt.Errorf("%w: dial party %d at %q from party %d: %v", ErrBringup, to, addr, from, err)
	}
	conn.SetWriteDeadline(deadline)
	var hello [4]byte
	binary.BigEndian.PutUint32(hello[:], uint32(from))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return fmt.Errorf("%w: hello %d -> %d: %v", ErrBringup, from, to, err)
	}
	conn.SetWriteDeadline(time.Time{})
	t.links[from][to].wconn = conn
	return nil
}

// partyLoop is one party's goroutine: it dispatches each delivered
// envelope into the party's runtime and releases the coordinator. The
// handler may itself call Send — safe, because the coordinator is
// blocked on done for the duration, so the lockstep invariant holds.
func (t *Transport) partyLoop(p *party) {
	defer t.wg.Done()
	for env := range p.cmds {
		if d := t.parties[env.To]; d != nil {
			d.Dispatch(env)
		}
		p.done <- struct{}{}
	}
}

// readLoop drains the (from -> to) receiver endpoint, tagging frames
// with arrival indices (socket FIFO makes arrival order equal send
// order, so index k is the k-th frame sent on the link).
func (t *Transport) readLoop(from, to int, l *link) {
	defer t.wg.Done()
	fr := wire.NewFrameReader(l.rconn)
	var idx uint64
	for {
		f, nb, err := fr.ReadFrame()
		if err != nil {
			if !t.closed.Load() {
				t.fail(fmt.Errorf("%w: read %d -> %d: %w", ErrConnLost, from, to, err))
			}
			return
		}
		t.framesIn.Add(1)
		t.bytesIn.Add(uint64(nb))
		idx++
		msg := frameMsg{idx: idx, env: sim.Envelope{
			From: f.From, To: f.To, Inst: f.Inst, Type: f.Type, Body: f.Body,
		}}
		select {
		case l.recv <- msg:
		case <-t.closedCh:
			return
		}
	}
}

// Send transmits env with the exact simulator semantics (interceptor,
// metrics, policy delay from the shared RNG, trace, typed delivery
// event); honest cross-party envelopes additionally go on the wire.
// It runs under the lockstep: either in the coordinator (timers,
// harness setup) or in a party goroutine while the coordinator is
// blocked on its rendezvous.
func (t *Transport) Send(env sim.Envelope) {
	if env.To < 1 || env.To > t.n {
		panic(fmt.Sprintf("proc: send to party %d out of range", env.To))
	}
	if t.corrupt[env.From] && t.interceptor != nil {
		for _, d := range t.interceptor.Intercept(t.sched.Now(), env) {
			if d.Drop {
				continue
			}
			t.deliver(d.Env, d.DelayExtra)
		}
		return
	}
	t.deliver(env, 0)
}

func (t *Transport) deliver(env sim.Envelope, extra sim.Time) {
	now := t.sched.Now()
	t.metrics.Record(env, t.corrupt[env.From], now)
	delay := t.policy.Delay(t.rng, env.From, env.To, now) + extra
	if delay < 1 {
		delay = 1
	}
	if t.tracer != nil {
		t.tracer.Emit(obs.Event{
			Kind: obs.KSend, Tick: int64(now),
			Party: env.From, Peer: env.To,
			Inst: env.Inst, Type: env.Type,
			Bytes: int64(env.WireSize()),
			A:     int64(delay),
		})
	}
	// Self-sends and corrupt senders' traffic (interceptor output may
	// carry adversary-rewritten envelopes) stay off the wire: tag 0
	// means direct dispatch, exactly the simulator's path.
	var tag uint64
	if env.From != env.To && !t.corrupt[env.From] && !t.failed() && !t.closed.Load() {
		l := t.links[env.From][env.To]
		l.sendSeq++
		tag = l.sendSeq
		t.enqueueFrame(l, env)
	}
	t.sched.AfterDeliver(delay, t, tag, env)
}

// enqueueFrame encodes env and hands the bytes to the link's writer
// goroutine. It never blocks: the queue is unbounded, so even a send
// burst far larger than the kernel's socket buffering cannot stall the
// lockstep (the frames drain as the writer goroutine catches up).
func (t *Transport) enqueueFrame(l *link, env sim.Envelope) {
	buf, err := wire.AppendFrame(nil, wire.Frame{
		From: env.From, To: env.To, Type: env.Type, Inst: env.Inst, Body: env.Body,
	})
	if err != nil {
		t.fail(fmt.Errorf("%w: write %d -> %d: %w", ErrConnLost, env.From, env.To, err))
		return
	}
	l.outMu.Lock()
	l.outQ = append(l.outQ, buf)
	l.outMu.Unlock()
	select {
	case l.outBell <- struct{}{}:
	default:
	}
}

// writeLoop drains the (from -> to) outbound queue onto the socket.
// Each wakeup takes everything queued so far and coalesces it into a
// single Write — a tick's burst of frames to one destination costs one
// flush instead of one syscall per message. Each write carries a
// deadline, so a receiver that has genuinely stopped draining (as
// opposed to being momentarily behind) surfaces as ErrConnLost rather
// than a hang.
func (t *Transport) writeLoop(from, to int, l *link) {
	defer t.wg.Done()
	var batch []byte
	for {
		l.outMu.Lock()
		frames := len(l.outQ)
		if frames > 0 {
			batch = batch[:0]
			for _, buf := range l.outQ {
				batch = append(batch, buf...)
			}
			l.outQ = l.outQ[:0]
		}
		l.outMu.Unlock()
		if frames == 0 {
			select {
			case <-l.outBell:
				continue
			case <-t.closedCh:
				return
			}
		}
		l.wconn.SetWriteDeadline(time.Now().Add(t.ioTimeout))
		nb, err := l.wconn.Write(batch)
		if err != nil {
			if !t.closed.Load() {
				t.fail(fmt.Errorf("%w: write %d -> %d: wire: write frame: %w", ErrConnLost, from, to, err))
			}
			return
		}
		t.framesOut.Add(uint64(frames))
		t.bytesOut.Add(uint64(nb))
	}
}

// DispatchDelivered implements sim.DeliverSink: the scheduler fires a
// delivery event in the coordinator goroutine; wire-backed deliveries
// (tag != 0) first await their frame off the socket, then the envelope
// crosses the rendezvous into the addressee's party goroutine. After
// the first fault every delivery is skipped so the run drains.
func (t *Transport) DispatchDelivered(env sim.Envelope, tag uint64) {
	if t.failed() || t.closed.Load() {
		return
	}
	if tag != 0 {
		got, err := t.awaitFrame(env.From, env.To, tag)
		if err != nil {
			t.fail(err)
			return
		}
		if !envelopeEqual(got, env) {
			t.fail(fmt.Errorf("%w: link %d -> %d frame %d", ErrFrameMismatch, env.From, env.To, tag))
			return
		}
		// Dispatch the envelope that physically crossed the wire.
		env = got
	}
	p := t.procs[env.To]
	select {
	case p.cmds <- env:
	case <-t.closedCh:
		return
	}
	<-p.done
}

// awaitFrame blocks until the tag-th frame sent on (from -> to) has
// been read off the wire. Frames arriving ahead of their delivery
// events (shorter policy delay than a later send) wait in the
// coordinator-only stash.
func (t *Transport) awaitFrame(from, to int, tag uint64) (sim.Envelope, error) {
	l := t.links[from][to]
	if env, ok := l.stash[tag]; ok {
		delete(l.stash, tag)
		return env, nil
	}
	timer := time.NewTimer(t.ioTimeout)
	defer timer.Stop()
	for {
		select {
		case m := <-l.recv:
			if m.idx == tag {
				return m.env, nil
			}
			l.stash[m.idx] = m.env
		case <-t.failCh:
			return sim.Envelope{}, t.Err()
		case <-timer.C:
			return sim.Envelope{}, fmt.Errorf("%w: link %d -> %d frame %d after %v",
				ErrTimeout, from, to, tag, t.ioTimeout)
		}
	}
}

func envelopeEqual(a, b sim.Envelope) bool {
	return a.From == b.From && a.To == b.To && a.Type == b.Type &&
		a.Inst == b.Inst && bytes.Equal(a.Body, b.Body)
}

// Attach registers the dispatcher for party i.
func (t *Transport) Attach(i int, d sim.Dispatcher) {
	if i < 1 || i > t.n {
		panic(fmt.Sprintf("proc: attach party %d out of range", i))
	}
	t.parties[i] = d
}

// N returns the number of parties.
func (t *Transport) N() int { return t.n }

// SetCorrupt marks the given parties as corrupt and installs the
// adversary's interceptor for their traffic.
func (t *Transport) SetCorrupt(parties []int, ic sim.Interceptor) {
	for _, p := range parties {
		if p < 1 || p > t.n {
			panic(fmt.Sprintf("proc: corrupt party %d out of range", p))
		}
		t.corrupt[p] = true
	}
	t.interceptor = ic
}

// IsCorrupt reports whether party i is corrupt.
func (t *Transport) IsCorrupt(i int) bool { return t.corrupt[i] }

// CorruptSet returns the sorted list of corrupt parties.
func (t *Transport) CorruptSet() []int {
	var out []int
	for i := 1; i <= t.n; i++ {
		if t.corrupt[i] {
			out = append(out, i)
		}
	}
	return out
}

// Metrics returns the transport's communication metrics: virtual
// accounting (Envelope.WireSize), identical to the simulator's.
func (t *Transport) Metrics() *sim.Metrics { return t.metrics }

// SetTracer installs tr as the transport's trace sink.
func (t *Transport) SetTracer(tr obs.Tracer) { t.tracer = tr }

// Addrs returns the resolved listen addresses, Addrs()[i-1] for party
// i (ports chosen by the kernel for tcp ":0" specs are filled in).
func (t *Transport) Addrs() []string { return append([]string(nil), t.addrs...) }

// Err reports the first transport fault, nil while healthy.
func (t *Transport) Err() error {
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return t.err
}

// fail latches the first fault and wakes any frame wait; subsequent
// calls are no-ops.
func (t *Transport) fail(err error) {
	t.failOnce.Do(func() {
		t.errMu.Lock()
		t.err = err
		t.errMu.Unlock()
		close(t.failCh)
	})
}

func (t *Transport) failed() bool {
	select {
	case <-t.failCh:
		return true
	default:
		return false
	}
}

// WireStats implements transport.WireMeter: physical frame bytes that
// crossed the sockets (prefixes and CRC trailers included).
func (t *Transport) WireStats() transport.WireStats {
	return transport.WireStats{
		FramesOut: t.framesOut.Load(),
		BytesOut:  t.bytesOut.Load(),
		FramesIn:  t.framesIn.Load(),
		BytesIn:   t.bytesIn.Load(),
	}
}

// Close tears down the socket mesh and joins every transport
// goroutine. Idempotent; must be called from the coordinator (no
// delivery rendezvous in flight), which is where harnesses run.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		t.closed.Store(true)
		close(t.closedCh)
		for i := 1; i <= t.n; i++ {
			if ln := t.listeners[i]; ln != nil {
				ln.Close()
			}
		}
		for from := 1; from <= t.n; from++ {
			for to := 1; to <= t.n; to++ {
				l := t.links[from][to]
				if l == nil {
					continue
				}
				if l.wconn != nil {
					l.wconn.Close()
				}
				if l.rconn != nil {
					l.rconn.Close()
				}
			}
		}
		for i := 1; i <= t.n; i++ {
			if p := t.procs[i]; p != nil {
				close(p.cmds)
			}
		}
		t.wg.Wait()
	})
	return nil
}

// CloseLink severs the physical (from -> to) connection. Test
// instrumentation for fault-path coverage: the next frame written on
// the link fails and latches ErrConnLost. Must not race an active
// run's sends; call it between runs or before the first.
func (t *Transport) CloseLink(from, to int) error {
	l := t.linkAt(from, to)
	l.rconn.Close()
	return l.wconn.Close()
}

// InjectGarbage writes raw non-frame bytes onto the (from -> to)
// connection. Test instrumentation: the receiver's CRC check must
// surface a typed transport fault rather than a hang or a bogus
// delivery. Same non-racing rule as CloseLink.
func (t *Transport) InjectGarbage(from, to int) error {
	l := t.linkAt(from, to)
	// A plausible header (length 4) followed by a payload whose CRC
	// trailer is wrong.
	_, err := l.wconn.Write([]byte{0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0})
	return err
}

func (t *Transport) linkAt(from, to int) *link {
	if from < 1 || from > t.n || to < 1 || to > t.n || from == to {
		panic(fmt.Sprintf("proc: no link %d -> %d", from, to))
	}
	return t.links[from][to]
}
