// Package transport defines the message-plane seam between the
// protocol layers and the medium that carries their envelopes. The
// per-party Runtime and the World harness are assembled over the
// Transport interface; two backends implement it:
//
//   - sim.Network — the deterministic in-memory reference: envelopes
//     never leave the process, delivery is a typed scheduler event.
//   - transport/proc — parties as goroutines speaking CRC-framed,
//     length-prefixed messages (wire.FrameWriter) over unix-domain or
//     TCP-loopback sockets, with the shared virtual-time scheduler as
//     the order authority, so a fixed seed replays the simulator's
//     schedule bit-identically while the bytes physically cross
//     sockets.
//
// The clock/timer hooks the protocol layers use (Now/At/After/
// AfterDeliver) stay on sim.Scheduler: both backends share one
// scheduler, which is what makes real-transport runs differentially
// comparable against the simulator (docs/deployment.md).
package transport

import (
	"math/rand/v2"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Transport is the message plane an n-party protocol world sends
// through. The method set is exactly what the protocol-assembly layers
// (proto.Runtime, proto.World, the mpc engine) use; sim.Network
// implements it natively.
type Transport interface {
	// Send transmits env according to the backend's delivery policy.
	// Messages from corrupt senders pass through the adversary's
	// interceptor first.
	Send(env sim.Envelope)
	// Attach registers the dispatcher for party i (1-based).
	Attach(i int, d sim.Dispatcher)
	// N returns the number of parties.
	N() int
	// SetCorrupt marks parties as corrupt and installs the adversary's
	// interceptor for their traffic.
	SetCorrupt(parties []int, ic sim.Interceptor)
	// IsCorrupt reports whether party i is corrupt.
	IsCorrupt(i int) bool
	// CorruptSet returns the sorted corrupt parties.
	CorruptSet() []int
	// Metrics returns the backend's communication metrics — virtual
	// accounting (Envelope.WireSize), identical across backends.
	Metrics() *sim.Metrics
	// SetTracer installs tr as the trace sink (nil disables tracing).
	SetTracer(tr obs.Tracer)
	// Err reports the first transport fault (nil for the in-memory
	// network, which cannot fail). Harnesses check it after running to
	// quiescence: a faulted real transport stops delivering, so the run
	// drains without the fault masquerading as a protocol outcome.
	Err() error
	// Close releases OS resources (sockets, goroutines); a no-op for
	// the in-memory network. Close is idempotent.
	Close() error
}

// Factory builds a transport over n parties for a world being
// assembled: the world hands it the shared scheduler, the delivery
// policy and the network-delay RNG so every backend consumes delays in
// the same order (the determinism contract). A nil Factory in
// proto.WorldOpts means the in-memory simulator.
type Factory func(n int, sched *sim.Scheduler, policy sim.Policy, rng *rand.Rand) (Transport, error)

// Sim is the default factory: the deterministic in-memory network.
func Sim(n int, sched *sim.Scheduler, policy sim.Policy, rng *rand.Rand) (Transport, error) {
	return sim.NewNetwork(n, sched, policy, rng), nil
}

// WireStats is the physical-byte accounting of a real transport
// backend: actual frame bytes (length prefixes and CRC trailers
// included) that crossed sockets. The in-memory network reports zeros.
// These figures are deliberately kept out of sim.Metrics so virtual
// accounting stays bit-identical across backends.
type WireStats struct {
	// FramesOut/BytesOut count frames written to peer sockets;
	// FramesIn/BytesIn count frames read and verified.
	FramesOut uint64 `json:"framesOut"`
	BytesOut  uint64 `json:"bytesOut"`
	FramesIn  uint64 `json:"framesIn"`
	BytesIn   uint64 `json:"bytesIn"`
}

// WireMeter is implemented by backends that move physical bytes; the
// engine surfaces it for benchmarks and deployment reports.
type WireMeter interface {
	WireStats() WireStats
}

// Meter returns t's physical-byte accounting, or zeros when the
// backend moves no physical bytes (the in-memory network).
func Meter(t Transport) WireStats {
	if m, ok := t.(WireMeter); ok {
		return m.WireStats()
	}
	return WireStats{}
}
