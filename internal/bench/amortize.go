package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/circuit"
	"repro/field"
	"repro/internal/proto"
	"repro/mpc"
)

// AmortRow is one E14 amortization measurement: K sequential
// evaluations of one circuit served by a single session Engine (one
// pool preprocessing) against K independent one-shot runs.
type AmortRow struct {
	Name string `json:"name"`
	// K is the evaluation count; CM the per-evaluation triple need.
	K  int `json:"evaluations"`
	CM int `json:"c_m_per_eval"`
	// PreprocessMsgs and EvalMsgs are the engine's honest traffic,
	// split offline/online; EngineMsgsPerEval their amortized sum.
	PreprocessMsgs    uint64  `json:"preprocess_msgs"`
	EvalMsgs          uint64  `json:"eval_msgs"`
	EngineMsgsPerEval float64 `json:"engine_msgs_per_eval"`
	// OneShotMsgs is the honest traffic of one full mpc.Run of the same
	// circuit; Amortization = OneShotMsgs / EngineMsgsPerEval.
	OneShotMsgs  uint64  `json:"one_shot_msgs"`
	Amortization float64 `json:"amortization"`
	// OutputsOK requires every engine evaluation to reproduce the
	// one-shot outputs (the differential invariant of the session
	// refactor: amortization may change traffic, never results).
	OutputsOK bool `json:"outputs_ok"`
}

// AmortReport is the E14 section written to BENCH_PR5.json.
type AmortReport struct {
	Note string     `json:"note"`
	Rows []AmortRow `json:"amortization_pr5"`
	// OK is the gate: every row reproduces one-shot outputs and
	// amortizes (Amortization > 1).
	OK bool `json:"ok"`
}

// E14Amortized measures one amortization row: a session engine
// preprocesses k·cM triples once and serves k evaluations; the one-shot
// reference is a full mpc.Run at the same seed.
func E14Amortized(cfg proto.Config, name string, circ *circuit.Circuit, k int, seed uint64) AmortRow {
	mcfg := mpc.Config{
		N: cfg.N, Ts: cfg.Ts, Ta: cfg.Ta,
		Network: mpc.Sync, Delta: int64(cfg.Delta), Seed: seed,
	}
	inputs := make([]field.Element, cfg.N)
	for i := range inputs {
		inputs[i] = field.New(uint64(i + 1))
	}
	row := AmortRow{Name: name, K: k, CM: circ.MulCount}
	ref, err := mpc.Run(mcfg, circ, inputs, nil)
	if err != nil {
		return row
	}
	row.OneShotMsgs = ref.HonestMessages

	eng, err := mpc.NewEngine(mcfg)
	if err != nil {
		return row
	}
	budget := k * circ.MulCount
	if budget < 1 {
		budget = 1
	}
	if _, err := eng.Preprocess(budget); err != nil {
		return row
	}
	ok := true
	for round := 0; round < k; round++ {
		res, err := eng.Evaluate(circ, inputs)
		if err != nil {
			return row
		}
		if len(res.Outputs) != len(ref.Outputs) {
			ok = false
			break
		}
		for i := range ref.Outputs {
			if res.Outputs[i] != ref.Outputs[i] {
				ok = false
			}
		}
	}
	st := eng.Stats()
	row.PreprocessMsgs = st.PreprocessMessages
	row.EvalMsgs = st.EvalMessages
	row.EngineMsgsPerEval = float64(st.PreprocessMessages+st.EvalMessages) / float64(k)
	if row.EngineMsgsPerEval > 0 {
		row.Amortization = float64(row.OneShotMsgs) / row.EngineMsgsPerEval
	}
	row.OutputsOK = ok
	return row
}

// amortCases enumerates the tracked E14 workloads (K = 8, seed 1 — the
// acceptance floor of the session-engine refactor).
func amortCases() []struct {
	name string
	cfg  proto.Config
	circ *circuit.Circuit
} {
	return []struct {
		name string
		cfg  proto.Config
		circ *circuit.Circuit
	}{
		{"E14Amort/product/n5", Config5(), circuit.Product(5)},
		{"E14Amort/product/n8", Config8(), circuit.Product(8)},
		{"E14Amort/matmul/n8", Config8(), circuit.MatMul2x2()},
	}
}

// RunAmortization measures every tracked E14 row at K = 8, seed 1.
func RunAmortization() *AmortReport {
	report := &AmortReport{
		Note: "E14: one session Engine (single pool preprocessing) serving K=8 evaluations vs " +
			"8 independent one-shot runs; outputs must match bit-for-bit and engine_msgs_per_eval " +
			"must be below one_shot_msgs (amortization > 1)",
		OK: true,
	}
	for _, c := range amortCases() {
		row := E14Amortized(c.cfg, c.name, c.circ, 8, 1)
		report.Rows = append(report.Rows, row)
		if !row.OutputsOK || row.Amortization <= 1 {
			report.OK = false
		}
	}
	return report
}

// WriteAmort renders the report as indented JSON.
func WriteAmort(w io.Writer, report *AmortReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// FormatAmortRow renders a row for the stderr summary.
func FormatAmortRow(r AmortRow) string {
	return fmt.Sprintf("%-22s %8.0f msgs/eval vs %8d one-shot (%.2fx amortized)",
		r.Name, r.EngineMsgsPerEval, r.OneShotMsgs, r.Amortization)
}
