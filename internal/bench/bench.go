// Package bench contains the experiment runners behind both the
// repository-root testing.B benchmarks and the cmd/benchtables table
// generator. Each runner executes one configuration of one experiment
// from DESIGN.md's index (E1..E13) on the simulator and returns the
// measured communication and virtual-time figures that EXPERIMENTS.md
// compares against the paper's bounds.
package bench

import (
	"fmt"

	"repro/circuit"
	"repro/field"
	"repro/internal/aba"
	"repro/internal/acast"
	"repro/internal/acs"
	"repro/internal/ba"
	"repro/internal/bc"
	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/triples"
	"repro/internal/vss"
	"repro/internal/wps"
	"repro/mpc"
	"repro/poly"

	"math/rand/v2"
)

// Measure is one experiment row's observed figures.
type Measure struct {
	// HonestMsgs and HonestBytes count honest-party traffic.
	HonestMsgs, HonestBytes uint64
	// LastOutput is the virtual time of the last honest output.
	LastOutput sim.Time
	// Bound is the derived synchronous deadline for the run (0 if not
	// applicable).
	Bound sim.Time
	// Events is the number of simulator events processed.
	Events uint64
	// OK reports whether the run satisfied its correctness conditions.
	OK bool
}

// cfgFor builds a maximal-resilience BoBW config for n parties:
// ts = ⌈n/3⌉-1 adjusted to satisfy 3ts+ta<n with ta = min(ts, leftover).
func cfgFor(n int) proto.Config {
	ts := (n - 2) / 3
	if ts < 1 {
		ts = 1
	}
	ta := n - 3*ts - 1
	if ta > ts {
		ta = ts
	}
	if ta < 0 {
		ta = 0
	}
	return proto.Config{N: n, Ts: ts, Ta: ta, Delta: 10, CoinRounds: 8}
}

// Config8 is the paper's flagship (n=8, ts=2, ta=1) configuration.
func Config8() proto.Config { return proto.Config{N: 8, Ts: 2, Ta: 1, Delta: 10, CoinRounds: 8} }

// Config5 is the smallest best-of-both-worlds configuration
// (n=5, ts=1, ta=1).
func Config5() proto.Config { return proto.Config{N: 5, Ts: 1, Ta: 1, Delta: 10, CoinRounds: 8} }

// ConfigN returns cfgFor(n) for table sweeps.
func ConfigN(n int) proto.Config { return cfgFor(n) }

// Config16 is the first tracked big-n configuration, at the paper's
// feasibility boundary 3·ts + ta = n - 1 (n=16, ts=4, ta=3).
func Config16() proto.Config { return proto.Config{N: 16, Ts: 4, Ta: 3, Delta: 10, CoinRounds: 8} }

// Config32 is the n=32 scaling configuration, also at the boundary but
// ts-heavy (n=32, ts=10, ta=1): the synchronous threshold dominates,
// the shape where the O(n³)–O(n⁴) ΠACS/ΠPreProcessing cliffs bite.
func Config32() proto.Config { return proto.Config{N: 32, Ts: 10, Ta: 1, Delta: 10, CoinRounds: 8} }

// E1Acast measures Bracha's reliable broadcast (Lemma 2.4) with an
// honest sender and payload size l bytes.
func E1Acast(n, l int, seed uint64) Measure {
	cfg := cfgFor(n)
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg, Network: proto.Sync, Seed: seed})
	var last sim.Time
	delivered := 0
	casts := make([]*acast.Acast, n+1)
	for i := 1; i <= n; i++ {
		casts[i] = acast.New(w.Runtimes[i], "acast", 1, cfg.Ts, func(m []byte) {
			delivered++
			if w.Sched.Now() > last {
				last = w.Sched.Now()
			}
		})
	}
	casts[1].Broadcast(make([]byte, l))
	w.RunToQuiescence()
	return Measure{
		HonestMsgs:  w.Metrics().HonestMessages(),
		HonestBytes: w.Metrics().HonestBytes(),
		LastOutput:  last,
		Bound:       3 * cfg.Delta,
		Events:      w.Sched.Processed(),
		OK:          delivered == n && last <= 3*cfg.Delta,
	}
}

// E4BC measures ΠBC (Theorem 3.5) with an honest sender, sync network.
func E4BC(n, l int, seed uint64) Measure {
	cfg := cfgFor(n)
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg, Network: proto.Sync, Seed: seed})
	var last sim.Time
	good := 0
	bcs := make([]*bc.BC, n+1)
	for i := 1; i <= n; i++ {
		bcs[i] = bc.New(w.Runtimes[i], "bc", 1, cfg.Ts, cfg.Delta, 0, func(m []byte) {
			if m != nil {
				good++
			}
			if w.Sched.Now() > last {
				last = w.Sched.Now()
			}
		}, nil)
	}
	bcs[1].Broadcast(make([]byte, l))
	w.RunToQuiescence()
	bound := bc.Deadline(cfg.Ts, cfg.Delta)
	return Measure{
		HonestMsgs:  w.Metrics().HonestMessages(),
		HonestBytes: w.Metrics().HonestBytes(),
		LastOutput:  last,
		Bound:       bound,
		Events:      w.Sched.Processed(),
		OK:          good == n && last == bound,
	}
}

// E5BA measures ΠBA (Theorem 3.6) with unanimous inputs, sync network.
func E5BA(n int, seed uint64) Measure {
	cfg := cfgFor(n)
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg, Network: proto.Sync, Seed: seed})
	coin := aba.DefaultCoin(seed)
	var last sim.Time
	agreed := 0
	bas := make([]*ba.BA, n+1)
	for i := 1; i <= n; i++ {
		bas[i] = ba.New(w.Runtimes[i], "ba", cfg.Ts, cfg.Delta, 0, coin, func(v uint8) {
			if v == 1 {
				agreed++
			}
			if w.Sched.Now() > last {
				last = w.Sched.Now()
			}
		})
	}
	for i := 1; i <= n; i++ {
		bas[i].Start(1)
	}
	w.RunToQuiescence()
	bound := ba.Deadline(cfg.Ts, cfg.Delta, cfg.CoinRounds)
	return Measure{
		HonestMsgs:  w.Metrics().HonestMessages(),
		HonestBytes: w.Metrics().HonestBytes(),
		LastOutput:  last,
		Bound:       bound,
		Events:      w.Sched.Processed(),
		OK:          agreed == n && last <= bound,
	}
}

// E6WPS measures ΠWPS (Theorem 4.8) with an honest dealer and L
// polynomials, sync network.
func E6WPS(cfg proto.Config, l int, seed uint64) Measure {
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg, Network: proto.Sync, Seed: seed})
	coin := aba.DefaultCoin(seed)
	r := rand.New(rand.NewPCG(seed, 1))
	qs := make([]poly.Poly, l)
	for i := range qs {
		qs[i] = poly.Random(r, cfg.Ts, field.Random(r))
	}
	var last sim.Time
	done := 0
	insts := make([]*wps.WPS, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		insts[i] = wps.New(w.Runtimes[i], "wps", 1, l, cfg, coin, 0, func(s []field.Element) {
			done++
			if w.Sched.Now() > last {
				last = w.Sched.Now()
			}
		})
	}
	insts[1].Start(qs)
	w.RunToQuiescence()
	bound := wps.Deadline(cfg)
	return Measure{
		HonestMsgs:  w.Metrics().HonestMessages(),
		HonestBytes: w.Metrics().HonestBytes(),
		LastOutput:  last,
		Bound:       bound,
		Events:      w.Sched.Processed(),
		OK:          done == cfg.N && last <= bound,
	}
}

// E7VSS measures ΠVSS (Theorem 4.16), honest dealer, sync network.
func E7VSS(cfg proto.Config, l int, seed uint64) Measure {
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg, Network: proto.Sync, Seed: seed})
	coin := aba.DefaultCoin(seed)
	r := rand.New(rand.NewPCG(seed, 2))
	qs := make([]poly.Poly, l)
	for i := range qs {
		qs[i] = poly.Random(r, cfg.Ts, field.Random(r))
	}
	var last sim.Time
	done := 0
	insts := make([]*vss.VSS, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		insts[i] = vss.New(w.Runtimes[i], "vss", 1, l, cfg, coin, 0, func(s []field.Element) {
			done++
			if w.Sched.Now() > last {
				last = w.Sched.Now()
			}
		})
	}
	insts[1].Start(qs)
	w.RunToQuiescence()
	bound := vss.Deadline(cfg)
	return Measure{
		HonestMsgs:  w.Metrics().HonestMessages(),
		HonestBytes: w.Metrics().HonestBytes(),
		LastOutput:  last,
		Bound:       bound,
		Events:      w.Sched.Processed(),
		OK:          done == cfg.N && last <= bound,
	}
}

// E8ACS measures ΠACS (Lemma 5.1), all dealers honest, sync network.
func E8ACS(cfg proto.Config, l int, seed uint64) Measure {
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg, Network: proto.Sync, Seed: seed})
	coin := aba.DefaultCoin(seed)
	r := rand.New(rand.NewPCG(seed, 3))
	var last sim.Time
	done := 0
	insts := make([]*acs.ACS, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		insts[i] = acs.New(w.Runtimes[i], "acs", l, cfg, coin, 0, func(cs []int, _ map[int][]field.Element) {
			done++
			if w.Sched.Now() > last {
				last = w.Sched.Now()
			}
		})
	}
	for i := 1; i <= cfg.N; i++ {
		qs := make([]poly.Poly, l)
		for k := range qs {
			qs[k] = poly.Random(r, cfg.Ts, field.Random(r))
		}
		insts[i].Start(qs)
	}
	w.RunToQuiescence()
	bound := acs.Deadline(cfg)
	return Measure{
		HonestMsgs:  w.Metrics().HonestMessages(),
		HonestBytes: w.Metrics().HonestBytes(),
		LastOutput:  last,
		Bound:       bound,
		Events:      w.Sched.Processed(),
		OK:          done == cfg.N && last <= bound,
	}
}

// E9Beaver measures a single ΠBeaver multiplication (Lemma 6.1).
func E9Beaver(cfg proto.Config, seed uint64) Measure {
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg, Network: proto.Sync, Seed: seed})
	r := rand.New(rand.NewPCG(seed, 4))
	x, y, a := field.Random(r), field.Random(r), field.Random(r)
	bb := field.Random(r)
	shares := func(v field.Element) []field.Element {
		return poly.Random(r, cfg.Ts, v).Shares(cfg.N)
	}
	xs, ys, as, bs, cs := shares(x), shares(y), shares(a), shares(bb), shares(a.Mul(bb))
	var last sim.Time
	done := 0
	insts := make([]*triples.Beaver, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		insts[i] = triples.NewBeaver(w.Runtimes[i], "bv", cfg, func(z field.Element) {
			done++
			if w.Sched.Now() > last {
				last = w.Sched.Now()
			}
		})
	}
	for i := 1; i <= cfg.N; i++ {
		insts[i].Start(xs[i-1], ys[i-1], as[i-1], bs[i-1], cs[i-1])
	}
	w.RunToQuiescence()
	return Measure{
		HonestMsgs:  w.Metrics().HonestMessages(),
		HonestBytes: w.Metrics().HonestBytes(),
		LastOutput:  last,
		Bound:       cfg.Delta,
		Events:      w.Sched.Processed(),
		OK:          done == cfg.N && last <= cfg.Delta,
	}
}

// E10Preprocessing measures ΠPreProcessing (Theorem 6.5) for cM
// triples, sync network.
func E10Preprocessing(cfg proto.Config, cM int, seed uint64) Measure {
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg, Network: proto.Sync, Seed: seed})
	coin := aba.DefaultCoin(seed)
	var last sim.Time
	done := 0
	insts := make([]*triples.Preprocessing, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		insts[i] = triples.NewPreprocessing(w.Runtimes[i], "pp", cM, cfg, coin, 0, func(ts []triples.Triple) {
			done++
			if w.Sched.Now() > last {
				last = w.Sched.Now()
			}
		})
	}
	for i := 1; i <= cfg.N; i++ {
		insts[i].Start()
	}
	w.RunToQuiescence()
	bound := triples.PreprocessingDeadline(cfg)
	return Measure{
		HonestMsgs:  w.Metrics().HonestMessages(),
		HonestBytes: w.Metrics().HonestBytes(),
		LastOutput:  last,
		Bound:       bound,
		Events:      w.Sched.Processed(),
		OK:          done == cfg.N && last <= bound,
	}
}

// E11CirEval measures the full MPC engine on a circuit, via the public
// API, in the given network.
func E11CirEval(cfg proto.Config, circ *circuit.Circuit, network mpc.Network, seed uint64) Measure {
	inputs := make([]field.Element, cfg.N)
	for i := range inputs {
		inputs[i] = field.New(uint64(i + 1))
	}
	res, err := mpc.Run(mpc.Config{
		N: cfg.N, Ts: cfg.Ts, Ta: cfg.Ta,
		Network: network, Delta: int64(cfg.Delta), Seed: seed,
	}, circ, inputs, nil)
	m := Measure{}
	if err != nil {
		return m
	}
	want, err := mpc.ExpectedOutputs(circ, inputs, res.CS)
	if err != nil {
		return m
	}
	ok := true
	for i := range want {
		if res.Outputs[i] != want[i] {
			ok = false
		}
	}
	var last int64
	for _, t := range res.TerminatedAt {
		if t > last {
			last = t
		}
	}
	return Measure{
		HonestMsgs:  res.HonestMessages,
		HonestBytes: res.HonestBytes,
		LastOutput:  sim.Time(last),
		Bound:       sim.Time(res.Deadline),
		Events:      res.Events,
		OK:          ok && (network != mpc.Sync || last <= res.Deadline),
	}
}

// E13Online measures the *online phase* in isolation — shared circuit
// evaluation, output reconstruction and Bracha termination — from a
// trusted-dealer setup: input sharings and multiplication triples are
// dealt locally instead of running ΠACS/ΠPreProcessing, so the
// honest-origin traffic is exactly the evaluation-phase traffic the
// layer-batching work targets. perGate selects the retained per-gate
// reference evaluator; the default is the layered batched one. OK
// requires every party to terminate with the clear-circuit outputs.
func E13Online(cfg proto.Config, circ *circuit.Circuit, perGate bool, seed uint64) Measure {
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg, Network: proto.Sync, Seed: seed})
	r := rand.New(rand.NewPCG(seed, 13))

	inputs := make([]field.Element, cfg.N)
	cs := make([]int, cfg.N)
	inShares := make([]map[int][]field.Element, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		inShares[i] = make(map[int][]field.Element, cfg.N)
		cs[i-1] = i
	}
	for j := 1; j <= cfg.N; j++ {
		inputs[j-1] = field.New(uint64(j))
		sh := poly.Random(r, cfg.Ts, inputs[j-1]).Shares(cfg.N)
		for i := 1; i <= cfg.N; i++ {
			inShares[i][j] = []field.Element{sh[i-1]}
		}
	}
	trips := make([][]triples.Triple, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		trips[i] = make([]triples.Triple, circ.MulCount)
	}
	for k := 0; k < circ.MulCount; k++ {
		a, b := field.Random(r), field.Random(r)
		sa := poly.Random(r, cfg.Ts, a).Shares(cfg.N)
		sb := poly.Random(r, cfg.Ts, b).Shares(cfg.N)
		sc := poly.Random(r, cfg.Ts, a.Mul(b)).Shares(cfg.N)
		for i := 1; i <= cfg.N; i++ {
			trips[i][k] = triples.Triple{X: sa[i-1], Y: sb[i-1], Z: sc[i-1]}
		}
	}

	mode := core.EvalLayered
	if perGate {
		mode = core.EvalPerGate
	}
	var last sim.Time
	outs := make([][]field.Element, cfg.N+1)
	engines := make([]*core.CirEval, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		i := i
		engines[i] = core.NewOnline(w.Runtimes[i], "mpc", circ, cfg, 0, mode, func(out []field.Element) {
			outs[i] = out
			if w.Sched.Now() > last {
				last = w.Sched.Now()
			}
		})
	}
	for i := 1; i <= cfg.N; i++ {
		engines[i].StartOnline(inShares[i], cs, trips[i])
	}
	w.RunToQuiescence()

	want, err := circ.Eval(inputs)
	ok := err == nil
	for i := 1; i <= cfg.N && ok; i++ {
		if outs[i] == nil || len(outs[i]) != len(want) {
			ok = false
			break
		}
		for k := range want {
			if outs[i][k] != want[k] {
				ok = false
			}
		}
	}
	return Measure{
		HonestMsgs:  w.Metrics().HonestMessages(),
		HonestBytes: w.Metrics().HonestBytes(),
		LastOutput:  last,
		Bound:       sim.Time(circ.MulDepth+3) * cfg.Delta,
		Events:      w.Sched.Processed(),
		OK:          ok,
	}
}

// MulDeepCircuit is the tracked depth-heavy workload: an 8×8
// multiplication grid (cM = 64, DM = 8) on the flagship n = 8 config —
// every multiplicative layer holds 8 gates, the shape where per-layer
// batching collapses 2·cM reconstruction instances to 2·DM.
func MulDeepCircuit() *circuit.Circuit { return circuit.MulGrid(8, 8, 8) }

// MatrixMode identifies a protocol variant in the E12 comparison.
type MatrixMode string

// E12 matrix modes.
const (
	ModeBoBW      MatrixMode = "bobw"
	ModeSyncOnly  MatrixMode = "sync-only"
	ModeAsyncOnly MatrixMode = "async-envelope"
)

// E12Matrix runs one cell of the headline comparison: mode × network ×
// fault count (garbling corruptions; under async one link-starved
// schedule). It reports whether the run both terminated and produced
// the correct output — or whether the fault budget is structurally
// unsupportable for the mode.
func E12Matrix(mode MatrixMode, network mpc.Network, faults int, seed uint64) (ok, tolerated bool) {
	cfg := mpc.Config{N: 8, Ts: 2, Ta: 1, Network: network, Seed: seed, EventLimit: 60_000_000}
	switch mode {
	case ModeSyncOnly:
		cfg.SyncOnly = true
	case ModeAsyncOnly:
		cfg.Ts, cfg.Ta = 1, 1 // the t < n/4 AMPC envelope
	}
	budget := cfg.Ts
	if network == mpc.Async {
		budget = cfg.Ta
	}
	if faults > budget {
		return false, false
	}
	adv := &mpc.Adversary{}
	for f := 0; f < faults; f++ {
		adv.Garble = append(adv.Garble, 2+3*f)
	}
	if network == mpc.Async {
		adv.StarveFrom = []int{8}
		adv.StarveUntil = 6000
	}
	inputs := make([]field.Element, 8)
	for i := range inputs {
		inputs[i] = field.New(uint64(i + 1))
	}
	circ := circuit.Sum(8)
	res, err := mpc.Run(cfg, circ, inputs, adv)
	if err != nil {
		return false, true
	}
	want, err := mpc.ExpectedOutputs(circ, inputs, res.CS)
	if err != nil {
		return false, true
	}
	return res.Outputs[0] == want[0] && res.AllHonestTerminated(adv), true
}

// FormatRow renders a measure for the tables.
func FormatRow(label string, m Measure) string {
	status := "ok"
	if !m.OK {
		status = "VIOLATED"
	}
	return fmt.Sprintf("%-28s %10d msgs %14d bytes   t=%6d (bound %6d)  %s",
		label, m.HonestMsgs, m.HonestBytes, m.LastOutput, m.Bound, status)
}
