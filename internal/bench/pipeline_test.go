package bench

import (
	"testing"

	"repro/circuit"
)

// TestE15Pipeline is the PR 9 acceptance gate behind `make bench-json`:
// every tracked pipelined-serving row must reproduce the one-shot
// outputs bit-for-bit, every depth >= 4 row must beat the depth-1
// virtual ticks/eval, and its msgs/eval must stay within 1% of the
// depth-1 figure.
func TestE15Pipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("E15 runs 16 evaluations per row across three depths; skipped under -short")
	}
	report := RunPipeline()
	byName := map[string]PipelineRow{}
	for _, row := range report.Rows {
		if row.Depth == 1 {
			byName[row.Name] = row
		}
	}
	for _, row := range report.Rows {
		if !row.OutputsOK {
			t.Errorf("%s depth %d: outputs diverged from the one-shot reference", row.Name, row.Depth)
		}
		if base, ok := byName[row.Name]; ok && row.Depth >= 4 {
			if row.TicksPerEval >= base.TicksPerEval {
				t.Errorf("%s depth %d: %.1f ticks/eval does not beat depth-1 %.1f",
					row.Name, row.Depth, row.TicksPerEval, base.TicksPerEval)
			}
			drift := row.MsgsPerEval/base.MsgsPerEval - 1
			if drift < 0 {
				drift = -drift
			}
			if drift > 0.01 {
				t.Errorf("%s depth %d: msgs/eval %.0f drifted %.2f%% from depth-1 %.0f",
					row.Name, row.Depth, row.MsgsPerEval, 100*drift, base.MsgsPerEval)
			}
		}
		t.Log(FormatPipelineRow(row))
	}
	if !report.OK {
		t.Error("report gate is false")
	}
}

// TestE15SmallRow keeps a cheap fixed row under plain `go test`: K=4 at
// depth 4, outputs identical and the span strictly below 4 sequential
// spans laid end to end.
func TestE15SmallRow(t *testing.T) {
	circ := circuit.Product(5)
	seq := E15Pipelined(Config5(), "E15Pipeline/product/n5/k4", circ, 4, 1, 1)
	pipe := E15Pipelined(Config5(), "E15Pipeline/product/n5/k4", circ, 4, 4, 1)
	if !seq.OutputsOK || !pipe.OutputsOK {
		t.Fatalf("outputs diverged from the one-shot reference: %+v / %+v", seq, pipe)
	}
	if pipe.TicksSpan >= seq.TicksSpan {
		t.Fatalf("depth-4 span %d ticks not below depth-1 span %d", pipe.TicksSpan, seq.TicksSpan)
	}
}
