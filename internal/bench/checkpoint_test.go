package bench

import (
	"testing"

	"repro/circuit"
)

// TestE16Checkpoint is the PR 7 acceptance gate behind
// `make bench-json`: every tracked row's restored engine must
// reproduce the original's next evaluation bit-for-bit, and restoring
// must be cheaper than re-running the preprocessing protocol.
func TestE16Checkpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("E16 preprocesses a K=8 budget per row; skipped under -short")
	}
	report := RunCheckpoint()
	for _, row := range report.Rows {
		if !row.OutputsOK {
			t.Errorf("%s: restored engine diverged from the original", row.Name)
		}
		if row.RestoreNs <= 0 || row.RestoreNs >= row.PreprocessNs {
			t.Errorf("%s: restore (%d ns) is not below preprocess (%d ns)",
				row.Name, row.RestoreNs, row.PreprocessNs)
		}
		if row.CheckpointBytes == 0 {
			t.Errorf("%s: empty checkpoint", row.Name)
		}
		t.Log(FormatCheckpointRow(row))
	}
	if !report.OK {
		t.Error("report gate is false")
	}
}

// TestE16SmallRow keeps a cheap fixed row under plain `go test`: K=2
// on the smallest config.
func TestE16SmallRow(t *testing.T) {
	row := E16Checkpoint(Config5(), "E16Ckpt/product/n5/k2", circuit.Product(5), 2, 1)
	if !row.OutputsOK {
		t.Fatal("restored engine diverged from the original")
	}
	if row.RestoreNs <= 0 || row.RestoreNs >= row.PreprocessNs {
		t.Fatalf("restore not cheaper than preprocess: %+v", row)
	}
}
