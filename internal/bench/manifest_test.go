package bench

import (
	"testing"

	"repro/circuit"
	"repro/mpc"
	"repro/scenario"
)

func mustCircuit(t *testing.T, m *scenario.Manifest) *circuit.Circuit {
	t.Helper()
	c, err := m.Circuit.Build(m.Parties.N)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestManifestRowMatchesDirectRow checks the manifest path reproduces
// E11CirEval exactly: same engine, same seed, same figures.
func TestManifestRowMatchesDirectRow(t *testing.T) {
	cfg := Config5()
	m := E11Manifest(cfg, "sum", mpc.Sync, 11)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := FromManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	want := E11CirEval(cfg, mustCircuit(t, m), mpc.Sync, 11)
	if got != want {
		t.Fatalf("manifest row differs from direct row:\n%+v\nvs\n%+v", got, want)
	}
	if !got.OK {
		t.Fatal("manifest row failed its assertions")
	}
}
