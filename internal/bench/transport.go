package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/circuit"
	"repro/field"
	"repro/mpc"
)

// TransportRow is one transport-backend measurement: the same tracked
// protocol run carried by the in-memory simulator, unix-domain sockets
// or TCP loopback. The virtual accounting (honest msgs/bytes) is
// backend-invariant by construction — the lockstep proc transport
// replays the simulator's schedule — so the row's physics are WallMs
// and the physical wire bytes.
type TransportRow struct {
	Name    string `json:"name"`
	Backend string `json:"backend"`
	// Evals is the number of circuit evaluations the run served (1 for
	// one-shot, K for the amortized session).
	Evals  int     `json:"evaluations"`
	WallMs float64 `json:"wall_ms"`
	// WallMsPerEval amortizes wall time over the served evaluations.
	WallMsPerEval float64 `json:"wall_ms_per_eval"`
	// HonestMsgs/HonestBytes are the virtual (simulator-unit) honest
	// traffic — identical across backends on the same seed.
	HonestMsgs  uint64 `json:"honest_msgs"`
	HonestBytes uint64 `json:"honest_bytes"`
	// WireFrames/WireBytes are the physical frames that crossed sockets
	// (zero on sim).
	WireFrames uint64 `json:"wire_frames"`
	WireBytes  uint64 `json:"wire_bytes"`
	// OutputsOK requires the run's outputs to match the simulator
	// reference bit-for-bit — the differential gate.
	OutputsOK bool `json:"outputs_ok"`
}

// TransportReport is the PR8 section written to BENCH_PR8.json.
type TransportReport struct {
	Note string         `json:"note"`
	Rows []TransportRow `json:"transport_pr8"`
	// OK is the gate: every socket-backed row reproduces the simulator
	// outputs and carries nonzero physical traffic.
	OK bool `json:"ok"`
}

// transportBackends enumerates the measured backends: nil is the
// simulator reference.
func transportBackends() []struct {
	name string
	spec *mpc.TransportSpec
} {
	return []struct {
		name string
		spec *mpc.TransportSpec
	}{
		{"sim", nil},
		{"unix", &mpc.TransportSpec{Kind: "unix"}},
		{"tcp", &mpc.TransportSpec{Kind: "tcp"}},
	}
}

// benchInputs builds the canonical 1..n input vector.
func benchInputs(n int) []field.Element {
	inputs := make([]field.Element, n)
	for i := range inputs {
		inputs[i] = field.New(uint64(i + 1))
	}
	return inputs
}

// oneShotOver runs one full evaluation over the given backend.
func oneShotOver(name, backend string, cfg mpc.Config, spec *mpc.TransportSpec,
	circ *circuit.Circuit, inputs []field.Element, ref []field.Element) TransportRow {
	row := TransportRow{Name: name, Backend: backend, Evals: 1}
	eng, err := mpc.NewEngineOpts(cfg, mpc.EngineOptions{Transport: spec})
	if err != nil {
		return row
	}
	defer eng.Close()
	start := time.Now()
	res, err := eng.OneShot(circ, inputs)
	row.WallMs = float64(time.Since(start).Microseconds()) / 1000
	row.WallMsPerEval = row.WallMs
	st := eng.WireStats()
	row.WireFrames, row.WireBytes = st.FramesOut, st.BytesOut
	if err != nil {
		return row
	}
	row.HonestMsgs, row.HonestBytes = res.HonestMessages, res.HonestBytes
	row.OutputsOK = outputsEqual(res.Outputs, ref)
	return row
}

// sessionOver preprocesses once and serves k evaluations over the
// given backend, mirroring the E14 amortized session.
func sessionOver(name, backend string, cfg mpc.Config, spec *mpc.TransportSpec,
	circ *circuit.Circuit, inputs []field.Element, k int, ref []field.Element) TransportRow {
	row := TransportRow{Name: name, Backend: backend, Evals: k}
	eng, err := mpc.NewEngineOpts(cfg, mpc.EngineOptions{Transport: spec})
	if err != nil {
		return row
	}
	defer eng.Close()
	budget := k * circ.MulCount
	if budget < 1 {
		budget = 1
	}
	start := time.Now()
	if _, err := eng.Preprocess(budget); err != nil {
		return row
	}
	ok := true
	var msgs, bytes uint64
	for round := 0; round < k; round++ {
		res, err := eng.Evaluate(circ, inputs)
		if err != nil {
			return row
		}
		if !outputsEqual(res.Outputs, ref) {
			ok = false
		}
		msgs, bytes = res.HonestMessages, res.HonestBytes
	}
	row.WallMs = float64(time.Since(start).Microseconds()) / 1000
	row.WallMsPerEval = row.WallMs / float64(k)
	st := eng.WireStats()
	row.WireFrames, row.WireBytes = st.FramesOut, st.BytesOut
	row.HonestMsgs, row.HonestBytes = msgs, bytes
	row.OutputsOK = ok
	return row
}

func outputsEqual(got, want []field.Element) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// RunTransport measures the tracked configurations over every backend:
// the E11 one-shot and the E14 amortized session (K = 8, seed 1), both
// at the boundary configuration n=5. The simulator row of each
// configuration is the differential reference for OutputsOK.
func RunTransport() *TransportReport {
	report := &TransportReport{
		Note: "PR8: the same tracked runs carried by the in-memory simulator, unix-domain " +
			"sockets and TCP loopback (lockstep proc transport). honest_msgs/bytes are " +
			"backend-invariant virtual accounting; wall_ms and wire_bytes are the physical " +
			"cost of real framing; outputs must match the simulator bit-for-bit",
		OK: true,
	}
	cfg := Config5()
	mcfg := mpc.Config{
		N: cfg.N, Ts: cfg.Ts, Ta: cfg.Ta,
		Network: mpc.Sync, Delta: int64(cfg.Delta), Seed: 1,
	}
	circ := circuit.Product(5)
	inputs := benchInputs(cfg.N)
	ref, err := mpc.Run(mcfg, circ, inputs, nil)
	if err != nil {
		report.OK = false
		return report
	}
	const k = 8
	for _, b := range transportBackends() {
		report.Rows = append(report.Rows,
			oneShotOver("E11CirEval/product/n5", b.name, mcfg, b.spec, circ, inputs, ref.Outputs))
		report.Rows = append(report.Rows,
			sessionOver("E14Amort/product/n5", b.name, mcfg, b.spec, circ, inputs, k, ref.Outputs))
	}
	for _, r := range report.Rows {
		if !r.OutputsOK {
			report.OK = false
		}
		if r.Backend != "sim" && r.WireBytes == 0 {
			report.OK = false
		}
		if r.Backend == "sim" && r.WireBytes != 0 {
			report.OK = false
		}
	}
	return report
}

// WriteTransport renders the report as indented JSON.
func WriteTransport(w io.Writer, report *TransportReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// FormatTransportRow renders a row for the stderr summary.
func FormatTransportRow(r TransportRow) string {
	return fmt.Sprintf("%-22s %-4s %9.1f ms (%7.1f ms/eval) %10d wire bytes ok=%v",
		r.Name, r.Backend, r.WallMs, r.WallMsPerEval, r.WireBytes, r.OutputsOK)
}
