package bench

import "testing"

// TestMulDeepMessageBudget is the CI guard behind `make bench-msgs`:
// the tracked mul-deep online bench (8×8 multiplication grid, cM=64,
// DM=8) must stay at or below the recorded per-layer honest-message
// baseline, and the layered evaluator must keep its ≥ 3× reduction
// over the per-gate reference. The run is deterministic (seed 1), so a
// single regressed message is a failure, not noise.
func TestMulDeepMessageBudget(t *testing.T) {
	circ := MulDeepCircuit()
	lay := E13Online(Config8(), circ, false, 1)
	per := E13Online(Config8(), circ, true, 1)
	if !lay.OK || !per.OK {
		t.Fatalf("mul-deep online run incorrect: layered ok=%v, per-gate ok=%v", lay.OK, per.OK)
	}
	if lay.HonestMsgs > MulDeepLayeredMsgsBaseline {
		t.Errorf("layered honest messages %d regressed above the recorded baseline %d",
			lay.HonestMsgs, MulDeepLayeredMsgsBaseline)
	}
	if per.HonestMsgs != MulDeepPerGateMsgsBaseline {
		t.Errorf("per-gate reference sends %d honest messages, recorded %d (reference drifted)",
			per.HonestMsgs, MulDeepPerGateMsgsBaseline)
	}
	if ratio := float64(per.HonestMsgs) / float64(lay.HonestMsgs); ratio < 3 {
		t.Errorf("per-layer batching ratio %.2fx below the 3x acceptance floor", ratio)
	}
}

// TestE13OnlineInvariants pins the analytical message counts: the
// online phase is (#recon instances + ready) · n² honest messages —
// per-gate one recon per mul gate, layered one per layer.
func TestE13OnlineInvariants(t *testing.T) {
	cfg := Config8()
	n2 := uint64(cfg.N * cfg.N)
	circ := MulDeepCircuit()
	lay := E13Online(cfg, circ, false, 1)
	per := E13Online(cfg, circ, true, 1)
	// layered: DM layer recons + output recon + ready broadcast.
	if want := uint64(circ.MulDepth+2) * n2; lay.HonestMsgs != want {
		t.Errorf("layered msgs = %d, want (DM+2)·n² = %d", lay.HonestMsgs, want)
	}
	// per-gate: cM gate recons + output recon + ready broadcast.
	if want := uint64(circ.MulCount+2) * n2; per.HonestMsgs != want {
		t.Errorf("per-gate msgs = %d, want (cM+2)·n² = %d", per.HonestMsgs, want)
	}
	if lay.LastOutput > lay.Bound {
		t.Errorf("layered online phase finished at %d > bound %d", lay.LastOutput, lay.Bound)
	}
}

// TestLayerBatchingRows: every comparison workload terminates with the
// clear-circuit outputs under both evaluators and the batched mode
// never sends more messages.
func TestLayerBatchingRows(t *testing.T) {
	for _, row := range RunLayerBatching() {
		if !row.OutputsOK {
			t.Errorf("%s: outputs diverged", row.Name)
		}
		if row.LayeredMsgs > row.PerGateMsgs {
			t.Errorf("%s: layered sends more messages (%d) than per-gate (%d)",
				row.Name, row.LayeredMsgs, row.PerGateMsgs)
		}
	}
}
