package bench

import (
	"testing"

	"repro/circuit"
	"repro/mpc"
)

// Every experiment runner must satisfy its own correctness predicate
// at the default configuration; the full sweeps live in bench_test.go
// at the repository root and cmd/benchtables.

func TestRunnersSatisfyInvariants(t *testing.T) {
	if m := E1Acast(8, 32, 1); !m.OK {
		t.Errorf("E1: %+v", m)
	}
	if m := E4BC(8, 32, 1); !m.OK {
		t.Errorf("E4: %+v", m)
	}
	if m := E5BA(8, 1); !m.OK {
		t.Errorf("E5: %+v", m)
	}
	if m := E6WPS(Config8(), 2, 1); !m.OK {
		t.Errorf("E6: %+v", m)
	}
	if m := E9Beaver(Config5(), 1); !m.OK {
		t.Errorf("E9: %+v", m)
	}
}

func TestHeavyRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy runners skipped in -short mode")
	}
	if m := E7VSS(Config5(), 1, 1); !m.OK {
		t.Errorf("E7: %+v", m)
	}
	if m := E8ACS(Config5(), 1, 1); !m.OK {
		t.Errorf("E8: %+v", m)
	}
	if m := E10Preprocessing(Config5(), 1, 1); !m.OK {
		t.Errorf("E10: %+v", m)
	}
	if m := E11CirEval(Config5(), circuit.Sum(5), mpc.Sync, 1); !m.OK {
		t.Errorf("E11 sync: %+v", m)
	}
	if m := E11CirEval(Config5(), circuit.Sum(5), mpc.Async, 1); !m.OK {
		t.Errorf("E11 async: %+v", m)
	}
}

func TestMatrixCells(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix skipped in -short mode")
	}
	// The three decisive cells of the E12 matrix.
	if ok, tol := E12Matrix(ModeBoBW, mpc.Sync, 2, 10); !tol || !ok {
		t.Errorf("BoBW sync 2 faults: ok=%v tol=%v", ok, tol)
	}
	if ok, tol := E12Matrix(ModeBoBW, mpc.Async, 1, 10); !tol || !ok {
		t.Errorf("BoBW async 1 fault: ok=%v tol=%v", ok, tol)
	}
	if _, tol := E12Matrix(ModeAsyncOnly, mpc.Sync, 2, 10); tol {
		t.Error("async envelope should not tolerate 2 faults")
	}
}

func TestConfigHelpers(t *testing.T) {
	for _, n := range []int{5, 8, 11, 13, 16} {
		cfg := ConfigN(n)
		if err := cfg.Validate(); err != nil {
			t.Errorf("ConfigN(%d) invalid: %v", n, err)
		}
	}
	if Config8().Ts != 2 || Config8().Ta != 1 || Config5().Ts != 1 {
		t.Error("flagship configs wrong")
	}
}

func TestFormatRow(t *testing.T) {
	s := FormatRow("x", Measure{OK: true})
	if s == "" {
		t.Fatal("empty row")
	}
	bad := FormatRow("x", Measure{OK: false})
	if bad == s {
		t.Fatal("violation not visible in row")
	}
}
