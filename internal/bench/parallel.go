package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/field"
	"repro/internal/aba"
	"repro/internal/acs"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/vss"
	"repro/poly"

	"math/rand/v2"
)

// ParallelRow is one PR10 parallel-ticks measurement: the same
// experiment run at one intra-tick worker-pool size. The protocol
// figures (msgs, bytes, ticks, events, outputs) must be bit-identical
// to the workers=0 row of the same experiment — parallelism is only
// allowed to buy host wall-clock.
type ParallelRow struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	// HostNS is the real host time of the run; Speedup divides the
	// workers=0 row's HostNS by this row's (1.0 on the serial row).
	HostNS  int64   `json:"host_ns"`
	Speedup float64 `json:"speedup"`
	// The protocol invariants, gated bit-identical across the ladder.
	HonestMsgs  uint64 `json:"honest_msgs"`
	HonestBytes uint64 `json:"honest_bytes"`
	Ticks       int64  `json:"ticks"`
	Events      uint64 `json:"events"`
	// OK is the run's own correctness condition (all parties produced
	// output within the derived bound); Identical is the cross-worker
	// gate against the serial row (includes an output fingerprint).
	OK        bool `json:"ok"`
	Identical bool `json:"identical"`
}

// ParallelReport is the PR10 section written to BENCH_PR10.json.
type ParallelReport struct {
	Note string `json:"note"`
	// HostCPUs is runtime.NumCPU() on the measuring host. The identity
	// gate is host-independent; the speedup gate only applies when the
	// host has at least 4 CPUs to express a workers=4 speedup (a
	// single-core host can only measure the barrier's overhead).
	HostCPUs int           `json:"host_cpus"`
	Rows     []ParallelRow `json:"parallel_pr10"`
	// OK is the gate: every row is correct and bit-identical to its
	// serial twin, and — on a host with >= 4 CPUs — the flagship E8ACS
	// row reaches >= 2x host wall-clock speedup at workers=4.
	OK bool `json:"ok"`
}

// parallelMeasure is one run's observed figures plus an output
// fingerprint for the cross-worker identity compare.
type parallelMeasure struct {
	m  Measure
	fp string
}

// parallelACS is E8ACS with a workers knob and merge-safe
// instrumentation: the per-party callbacks write only disjoint slots
// (no shared counters), so the same runner measures every pool size
// under -race.
func parallelACS(cfg proto.Config, l int, seed uint64, workers int) parallelMeasure {
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg, Network: proto.Sync, Seed: seed, Workers: workers})
	coin := aba.DefaultCoin(seed)
	r := rand.New(rand.NewPCG(seed, 3))
	doneAt := make([]sim.Time, cfg.N+1)
	css := make([][]int, cfg.N+1)
	insts := make([]*acs.ACS, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		i := i
		insts[i] = acs.New(w.Runtimes[i], "acs", l, cfg, coin, 0, func(cs []int, _ map[int][]field.Element) {
			doneAt[i] = w.Sched.Now()
			css[i] = append([]int(nil), cs...)
		})
	}
	for i := 1; i <= cfg.N; i++ {
		qs := make([]poly.Poly, l)
		for k := range qs {
			qs[k] = poly.Random(r, cfg.Ts, field.Random(r))
		}
		insts[i].Start(qs)
	}
	w.RunToQuiescence()
	done := 0
	var last sim.Time
	for i := 1; i <= cfg.N; i++ {
		if doneAt[i] > 0 {
			done++
		}
		if doneAt[i] > last {
			last = doneAt[i]
		}
	}
	bound := acs.Deadline(cfg)
	return parallelMeasure{
		m: Measure{
			HonestMsgs:  w.Metrics().HonestMessages(),
			HonestBytes: w.Metrics().HonestBytes(),
			LastOutput:  last,
			Bound:       bound,
			Events:      w.Sched.Processed(),
			OK:          done == cfg.N && last <= bound,
		},
		fp: fmt.Sprint(css[1:], doneAt[1:]),
	}
}

// parallelVSS is E7VSS with a workers knob, instrumented like
// parallelACS (disjoint per-party slots, output shares in the
// fingerprint).
func parallelVSS(cfg proto.Config, l int, seed uint64, workers int) parallelMeasure {
	w := proto.NewWorld(proto.WorldOpts{Cfg: cfg, Network: proto.Sync, Seed: seed, Workers: workers})
	coin := aba.DefaultCoin(seed)
	r := rand.New(rand.NewPCG(seed, 2))
	qs := make([]poly.Poly, l)
	for i := range qs {
		qs[i] = poly.Random(r, cfg.Ts, field.Random(r))
	}
	doneAt := make([]sim.Time, cfg.N+1)
	shares := make([][]field.Element, cfg.N+1)
	insts := make([]*vss.VSS, cfg.N+1)
	for i := 1; i <= cfg.N; i++ {
		i := i
		insts[i] = vss.New(w.Runtimes[i], "vss", 1, l, cfg, coin, 0, func(s []field.Element) {
			doneAt[i] = w.Sched.Now()
			shares[i] = append([]field.Element(nil), s...)
		})
	}
	insts[1].Start(qs)
	w.RunToQuiescence()
	done := 0
	var last sim.Time
	for i := 1; i <= cfg.N; i++ {
		if doneAt[i] > 0 {
			done++
		}
		if doneAt[i] > last {
			last = doneAt[i]
		}
	}
	bound := vss.Deadline(cfg)
	return parallelMeasure{
		m: Measure{
			HonestMsgs:  w.Metrics().HonestMessages(),
			HonestBytes: w.Metrics().HonestBytes(),
			LastOutput:  last,
			Bound:       bound,
			Events:      w.Sched.Processed(),
			OK:          done == cfg.N && last <= bound,
		},
		fp: fmt.Sprint(shares[1:], doneAt[1:]),
	}
}

// parallelWorkers is the tracked PR10 worker ladder.
var parallelWorkers = []int{0, 1, 4}

// RunParallel measures the tracked PR10 rows: the flagship E8ACS at
// n=8 and the first n>=16 rows (E8ACS/n16, E7VSS/n32), each across the
// worker ladder. The gate requires bit-identical protocol figures at
// every pool size and >= 2x host wall-clock on E8ACS (n8 or n16) at
// workers=4.
func RunParallel() *ParallelReport {
	report := &ParallelReport{
		Note: "PR10 parallel ticks: each experiment re-run at workers 0/1/4; honest msgs/bytes, " +
			"final tick, event count and the per-party output fingerprint must be bit-identical " +
			"across the ladder (parallelism buys host wall-clock only), and E8ACS at workers=4 " +
			"must reach >= 2x the serial wall clock on n=8 or n=16 when the host has >= 4 CPUs",
		HostCPUs: runtime.NumCPU(),
		OK:       true,
	}
	cases := []struct {
		name string
		run  func(workers int) parallelMeasure
	}{
		{"E8ACS/n8", func(workers int) parallelMeasure { return parallelACS(Config8(), 1, 1, workers) }},
		{"E8ACS/n16", func(workers int) parallelMeasure { return parallelACS(Config16(), 1, 1, workers) }},
		{"E7VSS/n32", func(workers int) parallelMeasure { return parallelVSS(Config32(), 1, 1, workers) }},
	}
	acsSpeedup := 0.0
	for _, c := range cases {
		var base parallelMeasure
		var baseNS int64
		for _, workers := range parallelWorkers {
			begin := time.Now()
			pm := c.run(workers)
			host := time.Since(begin).Nanoseconds()
			row := ParallelRow{
				Name:        c.name,
				Workers:     workers,
				HostNS:      host,
				HonestMsgs:  pm.m.HonestMsgs,
				HonestBytes: pm.m.HonestBytes,
				Ticks:       int64(pm.m.LastOutput),
				Events:      pm.m.Events,
				OK:          pm.m.OK,
			}
			if workers == 0 {
				base, baseNS = pm, host
			}
			row.Identical = pm.m.HonestMsgs == base.m.HonestMsgs &&
				pm.m.HonestBytes == base.m.HonestBytes &&
				pm.m.LastOutput == base.m.LastOutput &&
				pm.m.Events == base.m.Events &&
				pm.fp == base.fp
			if host > 0 {
				row.Speedup = float64(baseNS) / float64(host)
			}
			if workers == 4 && (c.name == "E8ACS/n8" || c.name == "E8ACS/n16") && row.Speedup > acsSpeedup {
				acsSpeedup = row.Speedup
			}
			if !row.OK || !row.Identical {
				report.OK = false
			}
			report.Rows = append(report.Rows, row)
		}
	}
	if report.HostCPUs >= 4 && acsSpeedup < 2 {
		report.OK = false
	}
	return report
}

// WriteParallel renders the report as indented JSON.
func WriteParallel(w io.Writer, report *ParallelReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// FormatParallelRow renders a row for the stderr summary.
func FormatParallelRow(r ParallelRow) string {
	ident := "identical"
	if !r.Identical {
		ident = "DIVERGED"
	}
	return fmt.Sprintf("%-12s workers %-2d %8.0f ms  %6.2fx  %10d msgs  t=%-6d %s",
		r.Name, r.Workers, float64(r.HostNS)/1e6, r.Speedup, r.HonestMsgs, r.Ticks, ident)
}
